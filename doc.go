// Package mcmsim is a deterministic cycle-level shared-memory multiprocessor
// simulator reproducing Gharachorloo, Gupta and Hennessy, "Two Techniques to
// Enhance the Performance of Memory Consistency Models" (ICPP 1991).
//
// The paper's two techniques — hardware non-binding prefetch for delayed
// accesses (§3) and speculative execution for loads with coherence-snooping
// detection and rollback (§4) — let the strictest consistency model run
// nearly as fast as the most relaxed one. This module rebuilds the whole
// machine the paper analyses and regenerates every figure plus an E1-E16
// extension suite (see DESIGN.md for the S1-S26 system inventory the
// packages below realize, EXPERIMENTS.md for the paper-versus-measured
// record, and README.md for the guided tour).
//
// The root package holds only this overview and the benchmark harness
// (bench_test.go), which regenerates every figure and experiment via
// `go test -bench=.`.
//
// # Package tree
//
// Substrate (DESIGN.md S1-S2):
//
//   - internal/memsys — word-addressed main memory plus the line geometry
//     (line size, address-to-line mapping) every other layer shares. The
//     home for data when no cache holds it dirty.
//   - internal/network — deterministic point-to-point interconnect with
//     per-endpoint FIFO queues and a pluggable topology: uniform one-way
//     latency (the seed model) or a 2-D mesh with XY dimension-order
//     routing and per-link store-and-forward contention (S24).
//
// Memory-system hierarchy (S3-S4, S16, S20, S22):
//
//   - internal/coherence — the directory: a DASH-style write-invalidate
//     protocol (recalls, requester-collected invalidation acks, per-line
//     versioning) plus a Dragon-style write-update protocol (§3.1's
//     caveat) and the cacheless NST memory for the Stenstrom comparator.
//     Supports multiple interleaved home modules with bounded service
//     bandwidth (the §6 scalability experiments) and limited-pointer
//     sharer tracking with coarse-vector overflow for many-core
//     machines (S25).
//   - internal/cache — the lockup-free L1: MSHRs, request merging (a
//     demand access joins an in-flight prefetch for free), replacement
//     and writeback races resolved by versioning, line pinning per the
//     paper's footnote 3, and a bypass mode for the NST comparator.
//
// Processor (S5-S10, S15, S17-S19, S23):
//
//   - internal/cpu — the dynamically scheduled core of Figure 3: reorder
//     buffer, register renaming via ROB tags, reservation stations, 2-bit
//     branch prediction with speculative fetch, precise state.
//   - internal/core — THE PAPER (Figure 4): the consistency models SC, PC,
//     WCsc, RCsc and RCpc expressed as issue predicates over delay arcs;
//     the store buffer and address unit; the hardware prefetch engine
//     (§3); the speculative-load buffer with detection and correction
//     (§4), including §4.2's reissue-only optimization and §4.1's
//     repeat-and-compare alternative; Appendix A's atomic read-modify-write
//     splitting; and the §6 comparators (Adve-Hill ownership SC, the
//     SC-violation detector of reference [6]).
//
// Assembly and instruction supply (S11-S14):
//
//   - internal/isa — the small RISC ISA (loads/stores, acquire/release,
//     atomics, ALU, branches, software prefetch) and the program Builder.
//   - internal/workload — program generators: the Figure 2/5 examples, the
//     litmus battery, producer/consumer, critical sections, data-race-free
//     random sharing, barriers.
//   - internal/sim — machine assembly and the deterministic cycle loop;
//     configurations (PaperConfig, RealisticConfig), scheduled external
//     writes, warmed-cache program reloading, coherent-snapshot readback.
//   - internal/machine — the machine builder (S26): a fluent API that
//     turns "64 CPUs on a mesh under RC with both techniques" into a
//     validated sim.Config with scale-appropriate defaults (auto-sized
//     mesh, one home module per tile, limited-pointer directory past 8
//     CPUs). Carries its own runnable godoc Example.
//   - internal/stats, internal/tracebuf — counters/metrics and the
//     Figure-5-style buffer-snapshot tracing.
//
// Experiments and execution:
//
//   - internal/experiments — one enumerator per figure and E-row: each
//     sweep expands its configuration grid into independent jobs and the
//     plain entry points execute them; the Suite registry names every
//     cmd/sweep experiment.
//   - internal/runner — the parallel sweep-execution engine: a bounded
//     worker pool that runs whole simulations as jobs, preserves
//     enumeration order, contains per-job panics, reports progress, and
//     renders result tables (table/json/csv). Single simulations stay
//     single-goroutine; parallelism is strictly across jobs.
//
// Binaries under cmd/:
//
//   - cmd/mcsim — run one workload/configuration, print cycles and stats
//     (-cpus and -topo scale the machine up to a contended mesh).
//   - cmd/paperfigs — regenerate Figures 1, 2a, 2b and 5 in paper format.
//   - cmd/sweep — the E1-E16 evaluation sweeps on the parallel runner
//     (-j workers, -format table|json|csv, -out file).
//
// Runnable introductions live in examples/ (quickstart, producer_consumer,
// critical_section, equalization, litmus) and as godoc examples in
// internal/sim, internal/isa and internal/machine.
package mcmsim
