// Package mcmsim is a deterministic cycle-level shared-memory multiprocessor
// simulator reproducing Gharachorloo, Gupta and Hennessy, "Two Techniques to
// Enhance the Performance of Memory Consistency Models" (ICPP 1991).
//
// The library lives under internal/: the consistency engine and the paper's
// two techniques in internal/core, the out-of-order processor in
// internal/cpu, the lockup-free cache in internal/cache, the directory
// protocols in internal/coherence, and the experiment runners in
// internal/experiments. See README.md for the tour and EXPERIMENTS.md for
// the paper-versus-measured record. The root package holds the benchmark
// harness (bench_test.go) that regenerates every figure of the paper.
package mcmsim
