module mcmsim

go 1.22
