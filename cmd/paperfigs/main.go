// Command paperfigs regenerates the paper's figures in their original
// presentation:
//
//	paperfigs -fig 1    the Figure 1 ordering matrix, verified by litmus tests
//	paperfigs -fig 2a   Example 1 cycle counts (§3.3)
//	paperfigs -fig 2b   Example 2 cycle counts (§3.3 / §4.1)
//	paperfigs -fig 5    the §4.3 execution trace with buffer snapshots
//	paperfigs -fig all  every paper figure
//
// Beyond the paper's own figures, -fig scale prints the E16 many-core
// extension table (16/64/256-CPU mesh machines, SC vs RC); it is not part
// of -fig all because the paper has no such figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mcmsim/internal/core"
	"mcmsim/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 5, all, or scale (E16 extension)")
	flag.Parse()

	var err error
	switch *fig {
	case "1":
		err = figure1()
	case "2a":
		err = figure2("example1")
	case "2b":
		err = figure2("example2")
	case "2":
		if err = figure2("example1"); err == nil {
			err = figure2("example2")
		}
	case "5":
		err = figure5()
	case "scale":
		err = figureScale()
	case "all":
		for _, f := range []func() error{figure1, func() error { return figure2("example1") },
			func() error { return figure2("example2") }, figure5} {
			if err = f(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func figure1() error {
	fmt.Println("Figure 1 — ordering restrictions per consistency model")
	fmt.Println("(litmus outcomes: 'relaxed' = the SC-forbidden reordering was observed)")
	cells, err := experiments.Figure1Matrix()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "litmus\tmodel\ttechniques\trelaxed observed\tmodel permits\tverdict")
	for _, c := range cells {
		verdict := "ok"
		if c.Relaxed && !c.Allowed {
			verdict = "VIOLATION"
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%v\t%s\n",
			c.Litmus, c.Model, c.Tech, c.Relaxed, c.Allowed, verdict)
	}
	return w.Flush()
}

func figure2(example string) error {
	fmt.Printf("Figure 2 — %s cycle counts (paper §3.3/§4.1; PC/WC/RCsc rows are extension data)\n", example)
	results, err := experiments.Figure2GridAll()
	if err != nil {
		return err
	}
	paper := experiments.PaperFigure2()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\ttechniques\tmeasured\tpaper\tmatch")
	for _, r := range results {
		if r.Example != example {
			continue
		}
		if want, ok := paper[r.Key()]; ok {
			match := "YES"
			if r.Cycles != want {
				match = "no"
			}
			fmt.Fprintf(w, "%v\t%v\t%d\t%d\t%s\n", r.Model, r.Tech, r.Cycles, want, match)
		} else {
			fmt.Fprintf(w, "%v\t%v\t%d\t-\t(extension)\n", r.Model, r.Tech, r.Cycles)
		}
	}
	return w.Flush()
}

// figureScale prints the E16 extension table: the §5 equalization question
// on mesh machines the paper's 16-processor study could not reach.
func figureScale() error {
	fmt.Println("E16 — many-core mesh scale sweep (extension; the paper has no such figure)")
	fmt.Println("(does prefetch+speculation still close the SC/RC gap at 16/64/256 CPUs?)")
	rows, err := experiments.ScaleSweep(experiments.ScaleCPUCounts, "mesh")
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cpus\ttopo\tmodel\ttechniques\tcycles\tmessages\thops\tlink waits\tinvalidations\tcoarse sweeps")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Labels["cpus"], r.Labels["topo"], r.Labels["model"], r.Labels["tech"], r.Cycles,
			r.Extra["messages"], r.Extra["hops"], r.Extra["link_waits"],
			r.Extra["invalidations"], r.Extra["coarse_sweeps"])
	}
	return w.Flush()
}

func figure5() error {
	fmt.Println("Figure 5 — execution trace of the §4.3 walkthrough")
	fmt.Printf("(SC, speculative loads + store prefetching; model %v)\n\n", core.SC)
	res, err := experiments.RunFigure5()
	if err != nil {
		return err
	}
	fmt.Print(res.Trace.String())
	fmt.Printf("total: %d cycles\n", res.Cycles)
	return nil
}
