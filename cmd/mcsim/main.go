// Command mcsim runs one simulated multiprocessor configuration on a chosen
// workload and prints the cycle count plus component statistics. It is the
// general entry point for exploring the simulator; cmd/paperfigs and
// cmd/sweep drive the paper's specific experiments.
//
// Examples:
//
//	mcsim -workload example1 -model SC
//	mcsim -workload example2 -model RC -prefetch -spec
//	mcsim -workload critical -procs 4 -model WC -prefetch -stats
//	mcsim -workload mix -procs 3 -model SC -spec -prefetch -miss 200
//	mcsim -workload wide -cpus 64 -topo mesh -model RC -prefetch -spec -stats
//
// A warmed machine can be saved once and measured many times: -save-state
// snapshots the machine right after the workload's warmup phase (or after
// the run, for workloads without one), and -load-state restores it and runs
// only the measured phase. The restored run is byte-identical to the
// corresponding cold run; -cpuprofile covers only the measured phase, so a
// profile taken with -load-state excludes warmup entirely. Model and
// technique flags still apply on load — structural flags (-miss, -modules,
// -dirbw, -update, -nst, -realistic) are pinned by the snapshot:
//
//	mcsim -workload example2 -save-state warm.snap
//	mcsim -workload example2 -load-state warm.snap -prefetch -spec -cpuprofile measured.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"
	"mcmsim/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "example1", "workload: example1, example2, critical, producer, mix, array, swprefetch, barrier, falseshare, wide")
		model     = flag.String("model", "SC", "consistency model: SC, PC, WC, RC")
		procs     = flag.Int("procs", 0, "processor count (0 = workload default)")
		topo      = flag.String("topo", "", "interconnect: uniform (default), mesh (auto-sized), or mesh:WxH")
		hoplat    = flag.Uint64("hoplat", 0, "mesh per-hop latency in cycles (0 = default 10)")
		linkgap   = flag.Uint64("linkgap", 0, "mesh per-link occupancy per message in cycles (0 = default 1)")
		dirptrs   = flag.Int("dirptrs", 0, "directory exact-pointer capacity with coarse-vector overflow (0 = full bit-vector)")
		prefetch  = flag.Bool("prefetch", false, "enable hardware non-binding prefetch (§3)")
		spec      = flag.Bool("spec", false, "enable speculative loads (§4)")
		reissue   = flag.Bool("reissue", true, "with -spec: reissue-only correction for undone loads")
		adveHill  = flag.Bool("advehill", false, "Adve-Hill SC ownership comparator (§6)")
		nst       = flag.Bool("nst", false, "Stenstrom cacheless comparator (§6)")
		detectSC  = flag.Bool("detect-sc", false, "SC-violation detector on relaxed hardware (§6, ref [6])")
		update    = flag.Bool("update", false, "write-update coherence protocol instead of invalidation")
		modules   = flag.Int("modules", 1, "interleaved home memory modules")
		dirBW     = flag.Int("dirbw", 0, "messages each home module services per cycle (0 = unlimited)")
		miss      = flag.Uint64("miss", 100, "end-to-end clean miss latency in cycles")
		realistic = flag.Bool("realistic", false, "4-wide realistic pipeline instead of the paper's abstract machine")
		seed      = flag.Int64("seed", 7, "seed for randomized workloads")
		showStats = flag.Bool("stats", false, "print component statistics after the run")
		disasm    = flag.Bool("disasm", false, "print the program(s) before running")
		dense     = flag.Bool("dense", false, "disable the idle-cycle fast-forward scheduler (step every cycle)")
		par       = flag.Int("par", 1, "shard the simulation across up to N goroutines (results are byte-identical for every N)")
		engine    = flag.String("engine", "auto", "parallel engine with -par: auto, conservative, or optimistic (all byte-identical)")
		schedWant = flag.Bool("schedstats", false, "print the parallel scheduler's per-shard counters after the run (requires -par > 1)")
		saveState = flag.String("save-state", "", "write a machine snapshot to this file (after warmup if the workload has one, else after the run)")
		loadState = flag.String("load-state", "", "restore the machine from this snapshot instead of simulating the warmup; a mid-flight checkpoint resumes in place")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "with -save-state: overwrite the snapshot file with a mid-flight checkpoint every N cycles of the measured phase (drives the sequential loop)")
		stopAt    = flag.Uint64("stop-at", 0, "stop the measured phase at this absolute cycle; with -save-state, leaves a mid-flight checkpoint that -load-state resumes")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (covers the measured phase only)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.IntVar(procs, "cpus", 0, "alias for -procs")
	flag.Parse()

	sim.ForceDense = *dense
	sim.ParWorkers = *par
	switch *engine {
	case "auto", "conservative", "optimistic":
		sim.ParEngine = *engine
	default:
		fatal(fmt.Errorf("unknown -engine %q (want auto, conservative or optimistic)", *engine))
	}
	if *par > 1 {
		// The engine's worker pool takes the caller's goroutine plus extras
		// from this budget; honor an explicit -par above the core count.
		n := runtime.NumCPU()
		if *par > n {
			n = *par
		}
		parsim.SetWorkerBudget(n - 1)
	}
	m, err := core.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	cfg := sim.PaperConfig()
	if *realistic {
		cfg = sim.RealisticConfig()
	}
	cfg = cfg.WithMissLatency(*miss)
	cfg.Model = m
	cfg.Tech = core.Technique{
		Prefetch: *prefetch, SpecLoad: *spec, ReissueOpt: *spec && *reissue,
		AdveHill: *adveHill, DetectSC: *detectSC,
	}
	cfg.NST = *nst
	cfg.MemModules = *modules
	cfg.DirBandwidth = *dirBW
	cfg.Topo = *topo
	cfg.HopLatency = *hoplat
	cfg.LinkGap = *linkgap
	cfg.DirPointers = *dirptrs
	if *update {
		cfg.Protocol = coherence.ProtoUpdate
	}

	progs, warmups, preload, check := buildWorkload(*wl, *procs, *seed)
	cfg.Procs = len(progs)
	if err := sim.ValidateTopo(cfg.Topo, cfg.Procs); err != nil {
		fatal(err)
	}
	if sim.IsMeshTopo(cfg.Topo) {
		// Normalize now so the run header and snapshot-conflict checks name
		// the concrete geometry.
		w, h, _ := sim.MeshDims(cfg.Topo, cfg.Procs)
		cfg.Topo = fmt.Sprintf("mesh:%dx%d", w, h)
		if *modules == 1 && !flagSet("modules") {
			// Mesh machines distribute memory DASH-style unless -modules
			// was given explicitly.
			cfg.MemModules = cfg.Procs
		}
	}

	if *disasm {
		for i, p := range progs {
			fmt.Printf("--- processor %d ---\n%s", i, p.Disassemble())
		}
	}

	var s *sim.System
	savedPostWarmup := false
	switch {
	case *loadState != "":
		s = restoreState(*loadState, cfg, len(progs))
		if s.Done() {
			s.Cfg.Model = cfg.Model
			s.Cfg.Tech = cfg.Tech
			// The snapshot's memory image is authoritative: it already holds
			// the preload (applied before the warmup that produced it) plus
			// everything the warmup wrote, so it is not re-applied here.
			s.LoadPrograms(progs)
		} else if s.Cfg.Model != cfg.Model || s.Cfg.Tech != cfg.Tech {
			// A mid-flight checkpoint resumes the captured pipelines in
			// place, so model and technique are pinned by the snapshot just
			// like the structural flags.
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "model", "prefetch", "spec", "reissue", "advehill", "detect-sc":
					fatal(fmt.Errorf("load-state: -%s conflicts with the mid-flight machine saved in %s", f.Name, *loadState))
				}
			})
		}
	case warmups != nil:
		s = sim.New(cfg, warmups)
		s.Preload(preload)
		if _, err := s.Run(); err != nil {
			fatal(fmt.Errorf("warmup: %w", err))
		}
		if *saveState != "" {
			writeState(s, *saveState)
			savedPostWarmup = true
		}
		s.LoadPrograms(progs)
	default:
		s = sim.New(cfg, progs)
		s.Preload(preload)
	}

	// Profiles cover only the measured phase: warmup simulation and state
	// restore are setup, and excluding them is the point of -load-state.
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var cycles uint64
	finished := true
	if *ckptEvery > 0 || *stopAt > 0 {
		if *ckptEvery > 0 && *saveState == "" {
			fatal(fmt.Errorf("-checkpoint-every requires -save-state"))
		}
		for {
			target := *stopAt
			if *ckptEvery > 0 {
				target = s.Cycle + *ckptEvery
				if *stopAt > 0 && target > *stopAt {
					target = *stopAt
				}
			}
			done, err := s.RunUntil(target)
			if err != nil {
				fatal(err)
			}
			if *saveState != "" {
				writeState(s, *saveState)
				savedPostWarmup = true // the loop's last write wins
			}
			if done {
				break
			}
			if *stopAt > 0 && s.Cycle >= *stopAt {
				finished = false
				break
			}
		}
		if finished {
			cycles = s.HaltCycle() - s.BaseCycle()
		} else {
			cycles = s.Cycle - s.BaseCycle()
		}
	} else if cycles, err = s.Run(); err != nil {
		fatal(err)
	}
	if *saveState != "" && !savedPostWarmup {
		writeState(s, *saveState)
	}
	topoName := s.Cfg.Topo
	if topoName == "" {
		topoName = "uniform"
	}
	fmt.Printf("workload=%s model=%v tech=%v protocol=%v miss=%d procs=%d topo=%s\n",
		*wl, m, cfg.Tech, cfg.Protocol, cfg.MissLatency(), cfg.Procs, topoName)
	if finished {
		fmt.Printf("cycles: %d\n", cycles)
	} else {
		fmt.Printf("cycles: %d (stopped mid-flight; resume with -load-state)\n", cycles)
	}
	if *detectSC && finished {
		var det uint64
		for _, u := range s.LSUs {
			det += u.SCViolations()
		}
		if det == 0 {
			fmt.Println("sc-detector: execution certified sequentially consistent")
		} else {
			fmt.Printf("sc-detector: %d possible SC violations (program has data races)\n", det)
		}
	}
	if check != nil && finished {
		check(s)
	}
	if *showStats {
		fmt.Println()
		fmt.Print(s.StatsReport())
	}
	if *schedWant {
		fmt.Println()
		if s.ParReport == "" {
			fmt.Println("parsim: sequential run (use -par N with N > 1; zero-latency networks and traced runs always fall back, whichever -engine is asked for)")
		} else {
			fmt.Print(s.ParReport)
		}
	}
}

// buildWorkload returns the programs, optional warmup programs, memory
// preload and an optional result check for a named workload.
func buildWorkload(name string, procs int, seed int64) (progs, warmups []*isa.Program, preload map[uint64]int64, check func(*sim.System)) {
	def := func(n int) int {
		if procs > 0 {
			return procs
		}
		return n
	}
	switch name {
	case "example1":
		return []*isa.Program{workload.Example1()}, nil, nil, nil
	case "example2":
		return []*isa.Program{workload.Example2()},
			[]*isa.Program{workload.Example2Warmup()},
			map[uint64]int64{workload.AddrD: workload.DValue},
			nil
	case "critical":
		n := def(4)
		ps := make([]*isa.Program, n)
		for p := 0; p < n; p++ {
			ps[p] = workload.CriticalSection(p, n, 4, 2, 1)
		}
		return ps, nil, nil, func(s *sim.System) {
			fmt.Printf("counter: %d (expected %d)\n", s.ReadCoherent(workload.CounterAddr(0)), n*4*2)
		}
	case "producer":
		prod, cons := workload.ProducerConsumer(16)
		return []*isa.Program{prod, cons}, nil, nil, func(s *sim.System) {
			fmt.Printf("consumer checksum: %d (expected %d)\n", s.ReadCoherent(workload.SumAddr), 16*17/2)
		}
	case "mix":
		n := def(3)
		ps := make([]*isa.Program, n)
		for p := 0; p < n; p++ {
			ps[p] = workload.RandomSharing(p, n, workload.EqualizationMix(seed))
		}
		return ps, nil, nil, nil
	case "array":
		return []*isa.Program{workload.ArraySweep(0, 64)}, nil, nil, nil
	case "swprefetch":
		return []*isa.Program{workload.SoftwarePrefetchSweep(0, 64, 16)}, nil, nil, nil
	case "barrier":
		n := def(4)
		ps := make([]*isa.Program, n)
		for p := 0; p < n; p++ {
			ps[p] = workload.BarrierPhases(p, n, 5, 4)
		}
		return ps, nil, nil, func(s *sim.System) {
			fmt.Printf("final sense: %d (expected 5)\n", s.ReadCoherent(workload.BarrierSenseAddr))
		}
	case "falseshare":
		n := def(4)
		ps := make([]*isa.Program, n)
		for p := 0; p < n; p++ {
			ps[p] = workload.FalseSharing(p, 8)
		}
		return ps, nil, nil, nil
	case "wide":
		// Machine-wide read sharing with rotating writers — the scale
		// workload: every CPU becomes a sharer of every hot line, so an
		// invalidation fans out across the whole machine (E16).
		n := def(16)
		ps := make([]*isa.Program, n)
		for p := 0; p < n; p++ {
			ps[p] = workload.WideSharing(p, n, 4, 4)
		}
		return ps, nil, nil, nil
	default:
		fatal(fmt.Errorf("unknown workload %q", name))
		return nil, nil, nil, nil
	}
}

// writeState snapshots the machine (quiescent or mid-flight) to a file.
func writeState(s *sim.System, path string) {
	m, err := s.Snapshot()
	if err != nil {
		fatal(fmt.Errorf("save-state: %w", err))
	}
	if err := snapshot.WriteFile(path, m); err != nil {
		fatal(fmt.Errorf("save-state: %w", err))
	}
	fmt.Fprintf(os.Stderr, "mcsim: machine state saved to %s (cycle %d)\n", path, s.Cycle)
}

// restoreState rebuilds a machine from a snapshot file. Structural
// parameters (latencies, module count, protocol, cache geometry, processor
// count) come from the snapshot; an explicit flag that contradicts it is an
// error rather than a silent override, since the restored machine cannot
// change shape. Model and technique are applied by the caller — they only
// affect the LSUs and CPUs, which LoadPrograms rebuilds.
func restoreState(path string, cfg sim.Config, nprogs int) *sim.System {
	m, err := snapshot.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("load-state: %w", err))
	}
	s, err := sim.Restore(m)
	if err != nil {
		fatal(fmt.Errorf("load-state: %w", err))
	}
	conflicts := map[string]bool{
		"miss":      s.Cfg.MissLatency() != cfg.MissLatency(),
		"modules":   s.Cfg.MemModules != cfg.MemModules,
		"dirbw":     s.Cfg.DirBandwidth != cfg.DirBandwidth,
		"update":    s.Cfg.Protocol != cfg.Protocol,
		"nst":       s.Cfg.NST != cfg.NST,
		"realistic": s.Cfg.Cache != cfg.Cache || s.Cfg.CPU != cfg.CPU,
	}
	conflicts["topo"] = s.Cfg.Topo != cfg.Topo
	conflicts["hoplat"] = s.Cfg.HopLatency != cfg.HopLatency
	conflicts["linkgap"] = s.Cfg.LinkGap != cfg.LinkGap
	conflicts["dirptrs"] = s.Cfg.DirPointers != cfg.DirPointers
	flag.Visit(func(f *flag.Flag) {
		if conflicts[f.Name] {
			fatal(fmt.Errorf("load-state: -%s conflicts with the machine saved in %s", f.Name, path))
		}
	})
	if s.Cfg.Procs != nprogs {
		fatal(fmt.Errorf("load-state: snapshot has %d processors, workload builds %d programs", s.Cfg.Procs, nprogs))
	}
	return s
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}
