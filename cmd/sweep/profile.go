package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts CPU profiling and/or arranges a heap profile,
// according to the -cpuprofile/-memprofile flags. The returned stop
// function ends the CPU profile and writes the heap profile; call it
// exactly once, on the normal exit path (profiles are lost on fatal exits,
// like with `go test`).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
