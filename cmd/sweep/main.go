// Command sweep runs the evaluation experiments (DESIGN.md rows E1-E16)
// and prints their result tables. Each experiment is a list of independent
// deterministic simulations; sweep fans them out across a bounded worker
// pool (internal/runner) and reassembles the rows in enumeration order, so
// the output is byte-identical for every -j value.
//
//	sweep -exp equalization   model x technique grid (the §5 claim)
//	sweep -exp latency        miss-latency sweep, SC vs RC
//	sweep -exp contention     speculation squash rate vs write sharing
//	sweep -exp lookahead      reorder-buffer size vs technique benefit
//	sweep -exp protocol       invalidation vs update coherence
//	sweep -exp advehill       Adve-Hill SC comparator (§6)
//	sweep -exp nst            Stenstrom cacheless comparator (§6)
//	sweep -exp swprefetch     hardware vs software prefetch windows (§6)
//	sweep -exp scdetect       SC-violation detection on relaxed hardware
//	sweep -exp detection      conservative vs repeat-and-compare (§4.1)
//	sweep -exp bandwidth      home-module bandwidth and interleaving
//	sweep -exp mshr           lockup-free cache MSHR sweep (§3.2)
//	sweep -exp reissue        reissue-only correction ablation (§4.2)
//	sweep -exp warmequal      model x technique grid on warmed caches
//	sweep -exp scale          many-core mesh scale sweep, SC vs RC (E16)
//	sweep -exp all            everything, on one shared worker pool
//
// Execution and output flags:
//
//	-cpus LIST        machine sizes for the scale sweep (default 16,64,256)
//	-topo T           scale-sweep interconnect: mesh or mesh:WxH
//	-j N              worker-pool size (default: all CPUs)
//	-workers LIST     worker fleet: comma-separated local:N and daemon
//	                  host:port entries. Only-local lists run today's
//	                  in-process pool (local:8 == -j 8); any remote entry
//	                  starts a farm coordinator (internal/farm) that leases
//	                  jobs to the fleet and reassembles the report to the
//	                  same bytes. Remote entries dial `sweepd -worker
//	                  -listen` daemons. Farm-only companions: -listen,
//	                  -advertise, -lease-ttl, -checkpoint-every
//	-format table|json|csv
//	-out FILE         write the report to FILE instead of stdout
//	-quiet            suppress the per-job progress log on stderr
//	-dense            step every cycle (disable idle-cycle fast-forward)
//	-snapshot-cache   dedupe identical warmup phases via machine snapshots
//	                  (default true; output is byte-identical either way)
//	-protocol P       base coherence protocol, msi (default) or mesi;
//	                  experiments with their own protocol axis are unaffected
//	-engine E         parallel shard engine for -par: auto (default),
//	                  conservative, or optimistic (output is identical)
//	-cpuprofile FILE  write a pprof CPU profile
//	-memprofile FILE  write a pprof heap profile at exit
//
// Progress (jobs done/total, per-job simulated cycles and wall time) goes
// to stderr; the report goes to stdout or -out, so archived tables never
// interleave with progress lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mcmsim/internal/coherence"
	"mcmsim/internal/experiments"
	"mcmsim/internal/farm"
	"mcmsim/internal/parsim"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: "+strings.Join(experiments.SuiteNames(), ", ")+", or all; comma-separated lists are accepted")
		procs   = flag.Int("procs", 3, "processors for the workload experiments")
		seed    = flag.Int64("seed", 7, "workload seed")
		cpus    = flag.String("cpus", "", "comma-separated machine sizes for the scale sweep (default 16,64,256)")
		topo    = flag.String("topo", "", "interconnect for the scale sweep: mesh (default, auto-sized) or mesh:WxH")
		jobs    = flag.Int("j", runtime.NumCPU(), "worker-pool size (simulations run concurrently; <=0 means all CPUs)")
		fleet   = flag.String("workers", "", "worker fleet: comma-separated local:N and sweepd daemon host:port entries (only-local lists use the in-process pool; any remote entry runs the farm)")
		listen  = flag.String("listen", "", "farm coordinator bind address (default: an ephemeral loopback port)")
		adv     = flag.String("advertise", "", "address remote farm workers dial back (default: the listener's)")
		ttl     = flag.Duration("lease-ttl", farm.DefaultLeaseTTL, "farm: reassign a silent worker's job after this long")
		every   = flag.Uint64("checkpoint-every", 0, "farm: checkpoint measured jobs every N cycles so reassigned jobs resume mid-flight (0 = off)")
		format  = flag.String("format", "table", "output format: table, json, csv")
		out     = flag.String("out", "", "write the report to this file instead of stdout")
		quiet   = flag.Bool("quiet", false, "suppress per-job progress on stderr")
		dense   = flag.Bool("dense", false, "disable the idle-cycle fast-forward scheduler (step every cycle)")
		par     = flag.Int("par", 1, "shard each simulation across up to N goroutines (output stays byte-identical for every N)")
		engine  = flag.String("engine", "auto", "parallel shard engine: auto, conservative, or optimistic")
		snapC   = flag.Bool("snapshot-cache", true, "simulate each distinct warmup phase once and clone it via machine snapshots (output stays byte-identical either way)")
		proto   = flag.String("protocol", "msi", "base coherence protocol for experiments that do not set their own: msi or mesi")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	switch *proto {
	case "msi", "":
		sim.BaseProtocol = coherence.ProtoInvalidate
	case "mesi":
		sim.BaseProtocol = coherence.ProtoMESI
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown -protocol %q (want msi or mesi)\n", *proto)
		os.Exit(1)
	}
	switch *engine {
	case "auto", "conservative", "optimistic":
		sim.ParEngine = *engine
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown -engine %q (want auto, conservative, or optimistic)\n", *engine)
		os.Exit(1)
	}
	sim.ForceDense = *dense
	sim.ParWorkers = *par
	if *par > 1 {
		// Shard workers and job workers share one machine: give the shard
		// engines only the cores the job pool is not already claiming, so
		// `-j 8 -par 8` degrades to per-simulation sequential runs instead
		// of oversubscribing 64 goroutines. Each running job contributes its
		// own goroutine on top of this extra-worker budget.
		parsim.SetWorkerBudget(runtime.NumCPU() - effectiveWorkers(*jobs, runtime.NumCPU()))
	}
	params := experiments.Params{Procs: *procs, Seed: *seed, ScaleTopo: *topo}
	if *cpus != "" {
		var err error
		if params.ScaleCPUs, err = parseCPUList(*cpus); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	}
	if err := validateScaleMachines(params); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	localN, invites, err := parseWorkers(*fleet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if *fleet != "" && len(invites) == 0 && *listen == "" {
		// Only local:N entries: the fleet is this process, so the farm
		// machinery buys nothing — degrade to the classic pool at that width.
		*jobs = localN
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if len(invites) > 0 || *listen != "" {
		err = runFarm(*exp, params, *proto, *engine, *par, *dense, localN, invites,
			*listen, *adv, *ttl, *every, *format, *out, *quiet)
	} else {
		err = run(*exp, params, *jobs, *format, *out, *quiet, *snapC, *par)
	}
	if err != nil {
		stopProf()
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	stopProf()
}

// parseWorkers splits a -workers list into the local worker count and the
// remote daemon addresses to invite.
func parseWorkers(s string) (local int, invites []string, err error) {
	if s == "" {
		return 0, nil, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if strings.HasPrefix(f, "local:") {
			n, err := strconv.Atoi(strings.TrimPrefix(f, "local:"))
			if err != nil || n < 0 {
				return 0, nil, fmt.Errorf("bad -workers entry %q (want local:N or host:port)", f)
			}
			local += n
			continue
		}
		if !strings.Contains(f, ":") {
			return 0, nil, fmt.Errorf("bad -workers entry %q (want local:N or host:port)", f)
		}
		invites = append(invites, f)
	}
	return local, invites, nil
}

// runFarm executes the selected sweeps on a farm coordinator instead of
// the in-process pool: local:N workers attach over loopback, remote
// entries are invited sweepd daemons. The report is byte-identical to
// run()'s for the same flags — `make differential` gates it.
func runFarm(exp string, params experiments.Params, proto, engine string, par int, dense bool, localN int, invites []string, listen, advertise string, ttl time.Duration, every uint64, format, out string, quiet bool) error {
	if err := runner.CheckFormat(format); err != nil {
		return err
	}
	spec := farm.JobSpec{
		Kind:      "sweep",
		Protocol:  proto,
		Engine:    engine,
		Par:       par,
		Dense:     dense,
		Procs:     params.Procs,
		Seed:      params.Seed,
		ScaleCPUs: params.ScaleCPUs,
		ScaleTopo: params.ScaleTopo,
	}
	if exp != "all" {
		for _, name := range strings.Split(exp, ",") {
			spec.Exps = append(spec.Exps, strings.TrimSpace(name))
		}
	}
	opts := farm.Options{
		Listen:          listen,
		Advertise:       advertise,
		LocalWorkers:    localN,
		Invite:          invites,
		LeaseTTL:        ttl,
		CheckpointEvery: every,
		OnWorkerError:   func(name string, err error) { fmt.Fprintf(os.Stderr, "sweep: worker %s: %v\n", name, err) },
	}
	if !quiet {
		opts.OnProgress = func(p runner.Progress) {
			status := fmt.Sprintf("cycles=%d", p.Cycles)
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-40s %s wall=%s\n",
				len(fmt.Sprint(p.Total)), p.Done, p.Total, p.Name, status, p.Wall.Round(time.Microsecond))
		}
	}
	start := time.Now()
	results, stats, err := farm.Run(spec, opts)
	if err != nil {
		return err
	}
	rows, err := runner.Rows(results)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "%d jobs in %s (farm: %d workers, %d reassigned, %d resumed, %d warmups built for %d keys)\n",
			stats.Completed, time.Since(start).Round(time.Millisecond),
			stats.Workers, stats.Reassigned, stats.Resumed, stats.WarmBuilds, stats.WarmKeys)
	}
	tables, err := farm.SweepTables(spec, rows)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return runner.WriteReport(w, format, tables)
}

func run(exp string, params experiments.Params, workers int, format, out string, quiet bool, snapCache bool, par int) error {
	sweeps, err := selectSweeps(exp)
	if err != nil {
		return err
	}
	// Reject a bad -format before any simulation runs; -exp all is seconds
	// of work that would otherwise be thrown away on a typo.
	if err := runner.CheckFormat(format); err != nil {
		return err
	}

	// Enumerate every selected sweep's jobs into one list so a single
	// worker pool drains them all; remember each sweep's slice bounds to
	// partition the results again (job order is preserved by the runner).
	var all []runner.Job
	bounds := make([][2]int, len(sweeps))
	for i, s := range sweeps {
		js := s.Jobs(params)
		bounds[i] = [2]int{len(all), len(all) + len(js)}
		all = append(all, js...)
	}

	opts := runner.Options{Workers: workers}
	if snapCache {
		opts.WarmupCache = runner.NewWarmupCache()
	}
	if par > 1 {
		// The static budget split above assumed every job worker stays
		// busy; as the queue drains, each idling worker hands its CPU share
		// to the shard engines of the simulations still running.
		opts.OnWorkerIdle = func() { parsim.AddWorkerBudget(1) }
	}
	if !quiet {
		opts.OnProgress = func(p runner.Progress) {
			status := fmt.Sprintf("cycles=%d", p.Cycles)
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-40s %s wall=%s\n",
				len(fmt.Sprint(p.Total)), p.Done, p.Total, p.Name, status, p.Wall.Round(time.Microsecond))
		}
	}
	start := time.Now()
	results := runner.Run(all, opts)
	rows, err := runner.Rows(results)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "%d jobs in %s (%d workers)\n",
			len(all), time.Since(start).Round(time.Millisecond), effectiveWorkers(workers, len(all)))
	}

	tables := make([]runner.Table, len(sweeps))
	for i, s := range sweeps {
		tables[i] = runner.Table{Name: s.Name, Rows: rows[bounds[i][0]:bounds[i][1]]}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return runner.WriteReport(w, format, tables)
}

// selectSweeps resolves the -exp argument ("all", one name, or a
// comma-separated list) against the suite registry.
func selectSweeps(exp string) ([]experiments.Sweep, error) {
	if exp == "all" {
		return experiments.Suite(), nil
	}
	var sweeps []experiments.Sweep
	for _, name := range strings.Split(exp, ",") {
		name = strings.TrimSpace(name)
		s, ok := experiments.SweepByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (want one of %s, or all)",
				name, strings.Join(experiments.SuiteNames(), ", "))
		}
		sweeps = append(sweeps, s)
	}
	return sweeps, nil
}

// parseCPUList parses a comma-separated list of machine sizes.
func parseCPUList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpus entry %q (want positive integers, e.g. 16,64,256)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateScaleMachines rejects a scale-sweep machine shape that cannot be
// built before any simulation runs (the scale sweep itself would panic).
func validateScaleMachines(p experiments.Params) error {
	cpus, topo := p.ScaleCPUs, p.ScaleTopo
	if len(cpus) == 0 {
		cpus = experiments.ScaleCPUCounts
	}
	if topo == "" {
		topo = "mesh"
	}
	for _, n := range cpus {
		if err := sim.ValidateTopo(topo, n); err != nil {
			return err
		}
	}
	return nil
}

// effectiveWorkers mirrors the runner's worker-count clamping for the
// summary line.
func effectiveWorkers(requested, jobs int) int {
	if requested <= 0 {
		requested = runtime.NumCPU()
	}
	if requested > jobs {
		requested = jobs
	}
	return requested
}
