// Command sweep runs the evaluation experiments (DESIGN.md rows E1-E7) and
// prints their result tables:
//
//	sweep -exp equalization   model x technique grid (the §5 claim)
//	sweep -exp latency        miss-latency sweep, SC vs RC
//	sweep -exp contention     speculation squash rate vs write sharing
//	sweep -exp lookahead      reorder-buffer size vs technique benefit
//	sweep -exp protocol       invalidation vs update coherence
//	sweep -exp advehill       Adve-Hill SC comparator (§6)
//	sweep -exp nst            Stenstrom cacheless comparator (§6)
//	sweep -exp all            everything
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"mcmsim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: equalization, latency, contention, lookahead, protocol, advehill, swprefetch, nst, scdetect, detection, bandwidth, mshr, reissue, all")
	procs := flag.Int("procs", 3, "processors for the workload experiments")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	runners := map[string]func() ([]experiments.Row, error){
		"equalization": func() ([]experiments.Row, error) { return experiments.Equalization(*procs, *seed) },
		"latency": func() ([]experiments.Row, error) {
			return experiments.LatencySweep(*procs, *seed, []uint64{20, 50, 100, 200, 400})
		},
		"contention": func() ([]experiments.Row, error) {
			return experiments.ContentionSweep(*procs, *seed, []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8})
		},
		"lookahead": func() ([]experiments.Row, error) {
			return experiments.LookaheadSweep([]int{2, 4, 8, 16, 32, 64})
		},
		"protocol": func() ([]experiments.Row, error) { return experiments.ProtocolComparison(*procs, *seed) },
		"advehill": func() ([]experiments.Row, error) { return experiments.AdveHillComparison(32) },
		"swprefetch": func() ([]experiments.Row, error) {
			return experiments.SoftwarePrefetchComparison([]int{4, 8, 16, 32, 64})
		},
		"nst":       func() ([]experiments.Row, error) { return experiments.StenstromComparison(32) },
		"scdetect":  func() ([]experiments.Row, error) { return experiments.SCDetection() },
		"detection": func() ([]experiments.Row, error) { return experiments.DetectionPolicyComparison(3, 8) },
		"bandwidth": func() ([]experiments.Row, error) { return experiments.BandwidthComparison(8) },
		"mshr":      func() ([]experiments.Row, error) { return experiments.MSHRSweep([]int{1, 2, 4, 8, 16}) },
		"reissue":   func() ([]experiments.Row, error) { return experiments.ReissueAblation(*procs, *seed) },
	}

	names := []string{*exp}
	if *exp == "all" {
		names = names[:0]
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", name)
			os.Exit(1)
		}
		rows, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", name)
		printRows(rows)
		fmt.Println()
	}
}

// printRows renders rows as an aligned table with a stable column order.
func printRows(rows []experiments.Row) {
	if len(rows) == 0 {
		return
	}
	var cols []string
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.Labels {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	var extras []string
	seenX := map[string]bool{}
	for _, r := range rows {
		for k := range r.Extra {
			if !seenX[k] {
				seenX[k] = true
				extras = append(extras, k)
			}
		}
	}
	sort.Strings(extras)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := append(append([]string{}, cols...), "cycles")
	header = append(header, extras...)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		parts := make([]string, 0, len(header))
		for _, c := range cols {
			parts = append(parts, r.Labels[c])
		}
		parts = append(parts, fmt.Sprint(r.Cycles))
		for _, x := range extras {
			parts = append(parts, fmt.Sprintf("%.4f", r.Extra[x]))
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
	w.Flush()
}
