package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkStepDense-8   \t      12\t  98765432 ns/op\t  1024 B/op\t  7 allocs/op\t  1234567 simcycles/s")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkStepDense-8" || r.Runs != 12 {
		t.Errorf("name/runs = %q/%d", r.Name, r.Runs)
	}
	want := map[string]float64{"ns/op": 98765432, "B/op": 1024, "allocs/op": 7, "simcycles/s": 1234567}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tmcmsim\t12.3s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted non-benchmark line %q", line)
		}
	}
}
