package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkStepDense-8   \t      12\t  98765432 ns/op\t  1024 B/op\t  7 allocs/op\t  1234567 simcycles/s")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkStepDense-8" || r.Runs != 12 {
		t.Errorf("name/runs = %q/%d", r.Name, r.Runs)
	}
	want := map[string]float64{"ns/op": 98765432, "B/op": 1024, "allocs/op": 7, "simcycles/s": 1234567}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tmcmsim\t12.3s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted non-benchmark line %q", line)
		}
	}
}

func bench(name string, ns, allocs float64) Result {
	return Result{Name: name, Runs: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []Result{
		bench("BenchmarkA-8", 1000, 10),
		bench("BenchmarkB-8", 2000, 0),
		bench("BenchmarkGone-8", 500, 1),
	}
	current := []Result{
		bench("BenchmarkA-8", 1300, 10), // +30% ns/op: regression
		bench("BenchmarkB-8", 2100, 3),  // +5% ns/op within tolerance; allocs grew from 0 (skipped: was<=0)
		bench("BenchmarkNew-8", 42, 0),  // no baseline: note only
	}
	rep := compare(baseline, current, 0.15)
	if rep.Compared != 2 {
		t.Errorf("Compared = %d, want 2", rep.Compared)
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "BenchmarkA-8 ns/op") {
		t.Errorf("Regressions = %q, want one BenchmarkA-8 ns/op entry", rep.Regressions)
	}
	joined := strings.Join(rep.Notes, "\n")
	if !strings.Contains(joined, "BenchmarkNew-8") || !strings.Contains(joined, "BenchmarkGone-8") {
		t.Errorf("Notes = %q, want added and removed benchmarks mentioned", rep.Notes)
	}
}

func TestCompareAllocGrowthFails(t *testing.T) {
	baseline := []Result{bench("BenchmarkHot-8", 1000, 4)}
	current := []Result{bench("BenchmarkHot-8", 900, 6)} // faster, but +50% allocs
	rep := compare(baseline, current, 0.15)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "allocs/op") {
		t.Errorf("Regressions = %q, want one allocs/op entry", rep.Regressions)
	}
}

func TestCompareCleanPass(t *testing.T) {
	baseline := []Result{bench("BenchmarkA-8", 1000, 10)}
	current := []Result{bench("BenchmarkA-8", 1100, 10)} // +10% within tolerance
	rep := compare(baseline, current, 0.15)
	if len(rep.Regressions) != 0 || len(rep.Notes) != 0 || rep.Compared != 1 {
		t.Errorf("want clean pass, got %+v", rep)
	}
}
