// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON file, so benchmark results can be
// archived and diffed across commits. It understands the standard
// benchmark line format
//
//	BenchmarkName-8   	 1000	 123456 ns/op	 12 B/op	 3 allocs/op	 42.0 cycles
//
// capturing ns/op, B/op, allocs/op and every custom b.ReportMetric unit
// (cycles, simcycles/s, ...) into a per-benchmark metrics map. Non-bench
// lines (PASS, ok, goos/goarch headers) pass through to stderr untouched
// so the human-readable run log is not lost.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_sim.json
//
// With -compare OLD.json the freshly parsed results are additionally
// checked against an archived baseline: any benchmark present in both
// whose ns/op or allocs/op grew by more than -tolerance (default 15%)
// is reported as a regression and the exit status is 1. Benchmarks that
// only exist on one side are listed but never fail the run, so adding or
// retiring a benchmark does not break the gate.
//
//	go test -bench=. -benchmem ./... | benchjson -out new.json -compare BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the trimmed name (GOMAXPROCS suffix kept,
// it is part of the identity), the iteration count, and every reported
// metric keyed by its unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON file")
	compareWith := flag.String("compare", "", "baseline JSON file to diff against; regressions beyond -tolerance exit 1")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional growth in ns/op and allocs/op before -compare fails")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
		// Mirror everything so the pipe stays as readable as the bare run.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)

	if *compareWith != "" {
		baseline, err := readResults(*compareWith)
		if err != nil {
			fatal(err)
		}
		report := compare(baseline, results, *tolerance)
		for _, line := range report.Notes {
			fmt.Fprintf(os.Stderr, "benchjson: %s\n", line)
		}
		for _, line := range report.Regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", line)
		}
		if len(report.Regressions) > 0 {
			fatal(fmt.Errorf("%d benchmark regression(s) vs %s (tolerance %.0f%%)",
				len(report.Regressions), *compareWith, *tolerance*100))
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s (%d benchmarks compared, tolerance %.0f%%)\n",
			*compareWith, report.Compared, *tolerance*100)
	}
}

// readResults loads an archived benchjson file.
func readResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// compareReport is the outcome of diffing a run against a baseline:
// regressions fail the gate, notes (added/removed benchmarks) do not.
type compareReport struct {
	Compared    int
	Regressions []string
	Notes       []string
}

// compare diffs new results against a baseline. A benchmark regresses when
// a gated metric grows beyond the fractional tolerance: ns/op (wall time)
// and allocs/op (allocation count — machine-independent, so any growth
// beyond rounding is a real hot-path change). Improvements and metrics
// missing from either side are ignored; benchmarks present on only one
// side are noted but never fail.
func compare(baseline, current []Result, tol float64) compareReport {
	old := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		old[r.Name] = r
	}
	var rep compareReport
	seen := make(map[string]bool, len(current))
	for _, r := range current {
		seen[r.Name] = true
		b, ok := old[r.Name]
		if !ok {
			rep.Notes = append(rep.Notes, fmt.Sprintf("new benchmark %s (no baseline)", r.Name))
			continue
		}
		rep.Compared++
		for _, unit := range []string{"ns/op", "allocs/op"} {
			was, okOld := b.Metrics[unit]
			now, okNew := r.Metrics[unit]
			if !okOld || !okNew || was <= 0 {
				continue
			}
			if now > was*(1+tol) {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
					r.Name, unit, was, now, (now/was-1)*100, tol*100))
			}
		}
	}
	for _, r := range baseline {
		if !seen[r.Name] {
			rep.Notes = append(rep.Notes, fmt.Sprintf("benchmark %s missing from this run", r.Name))
		}
	}
	return rep
}

// parseBenchLine parses one `go test -bench` result line. The format is
// whitespace-separated: name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
