// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON file, so benchmark results can be
// archived and diffed across commits. It understands the standard
// benchmark line format
//
//	BenchmarkName-8   	 1000	 123456 ns/op	 12 B/op	 3 allocs/op	 42.0 cycles
//
// capturing ns/op, B/op, allocs/op and every custom b.ReportMetric unit
// (cycles, simcycles/s, ...) into a per-benchmark metrics map. Non-bench
// lines (PASS, ok, goos/goarch headers) pass through to stderr untouched
// so the human-readable run log is not lost.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the trimmed name (GOMAXPROCS suffix kept,
// it is part of the identity), the iteration count, and every reported
// metric keyed by its unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON file")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
		// Mirror everything so the pipe stays as readable as the bare run.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBenchLine parses one `go test -bench` result line. The format is
// whitespace-separated: name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
