// Command conform is the model-conformance fuzzing driver: it generates
// seeded random litmus programs, computes each program's exhaustive
// allowed-outcome set per consistency model with the reference oracle,
// runs the program through the simulator across the full model x
// technique x timing grid, and checks the paper's invariants — outcome
// containment per model, the §6 detector's zero-detections-implies-SC
// certificate, and fast-forward/dense equivalence (see
// internal/conformance).
//
//	conform -seed 1 -n 256        check 256 programs from seed 1
//	conform -procs 3 -ops 4       force 3 processors, up to 4 ops each
//	conform -cpus 16 -topo mesh   run every cell on a padded 16-CPU mesh
//
// Flags:
//
//	-seed N   first generator seed (programs use seed..seed+n-1)
//	-n N      number of programs
//	-procs N  processors per program (0 = random 2-3)
//	-ops N    max ops per processor (0 = default 5)
//	-cpus N   pad the machine to N processors (extra CPUs halt at once;
//	          the oracle stays on the program's own processors)
//	-topo T   interconnect: uniform (default), mesh, or mesh:WxH
//	-j N      worker-pool size (<=0 means all CPUs)
//	-par N    shard each simulation across up to N goroutines
//	-engine E parallel shard engine: auto (default), conservative, optimistic
//	-quick    paper timing only (the fuzz target's reduced grid)
//	-protocol coherence-protocol axis: both (default), msi, or mesi
//	-quiet    suppress the progress line on stderr
//	-out FILE write the report to FILE instead of stdout
//	-notime   omit the elapsed-seconds figure from the OK line, making the
//	          report byte-stable (what the farm-vs-local CI diff compares)
//
// Any violation is minimized to a 1-minimal reproducer and printed with
// the failing cell, the observed outcome, and the oracle's allowed set;
// the exit status is 1. Output is deterministic for every -j value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mcmsim/internal/coherence"
	"mcmsim/internal/conformance"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "first generator seed")
		n      = flag.Int("n", 64, "number of programs to check")
		procs  = flag.Int("procs", 0, "processors per program (0 = random 2-3)")
		ops    = flag.Int("ops", 0, "max operations per processor (0 = default)")
		jobs   = flag.Int("j", runtime.NumCPU(), "worker-pool size (<=0 means all CPUs)")
		par    = flag.Int("par", 1, "shard each simulation across up to N goroutines (verdicts are identical for every N)")
		engine = flag.String("engine", "auto", "parallel shard engine: auto, conservative, or optimistic")
		quick  = flag.Bool("quick", false, "paper timing only instead of the full timing axis")
		cpus   = flag.Int("cpus", 0, "pad the machine to this many processors (extra CPUs halt immediately; 0 = program size)")
		topo   = flag.String("topo", "", "interconnect for every cell: uniform (default), mesh, or mesh:WxH")
		proto  = flag.String("protocol", "both", "coherence-protocol axis: both, msi, or mesi")
		quiet  = flag.Bool("quiet", false, "suppress progress on stderr")
		outF   = flag.String("out", "", "write the report to this file instead of stdout")
		notime = flag.Bool("notime", false, "omit elapsed seconds from the OK line (byte-stable output)")
	)
	flag.Parse()
	var protocols []coherence.Protocol
	switch *proto {
	case "both", "":
	case "msi":
		protocols = []coherence.Protocol{coherence.ProtoInvalidate}
	case "mesi":
		protocols = []coherence.Protocol{coherence.ProtoMESI}
	default:
		fmt.Fprintf(os.Stderr, "conform: unknown -protocol %q (want both, msi, or mesi)\n", *proto)
		os.Exit(2)
	}
	if *topo != "" {
		machineCPUs := *cpus
		if machineCPUs < 2 {
			machineCPUs = 2 // smallest generated program
		}
		if err := sim.ValidateTopo(*topo, machineCPUs); err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			os.Exit(2)
		}
	}
	switch *engine {
	case "auto", "conservative", "optimistic":
		sim.ParEngine = *engine
	default:
		fmt.Fprintf(os.Stderr, "conform: unknown -engine %q (want auto, conservative, or optimistic)\n", *engine)
		os.Exit(2)
	}
	sim.ParWorkers = *par
	if *par > 1 {
		// Batch workers and shard workers share the machine; the shard pool
		// gets whatever the batch pool leaves free (conformance programs are
		// tiny, so -par mainly exists for the differential gate).
		extra := runtime.NumCPU() - *jobs
		if *jobs <= 0 || *jobs > runtime.NumCPU() {
			extra = 0
		}
		parsim.SetWorkerBudget(extra)
	}

	params := conformance.Params{Procs: *procs, ProcOps: *ops}
	opts := conformance.CheckOptions{Quick: *quick, CPUs: *cpus, Topo: *topo, Protocols: protocols}

	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rconform: %d/%d programs", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	if *quiet {
		progress = nil
	}

	start := time.Now()
	rep := conformance.CheckBatch(*seed, *n, params, *jobs, opts, progress)
	elapsed := time.Since(start)
	if *notime {
		elapsed = -1
	}

	w := os.Stdout
	if *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if !conformance.Summarize(w, rep, *seed, *n, opts, elapsed) {
		os.Exit(1)
	}
}
