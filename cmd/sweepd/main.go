// Command sweepd runs the distributed sweep farm: a coordinator that
// serves a job enumeration to a pull-based worker fleet, or a worker that
// attaches to one. The farm's report is byte-identical to the same
// workload run locally (`sweep -j N`, `conform`) — the coordinator leases
// job indices into a spec both sides re-enumerate, reassembles results in
// enumeration order, ships warmup snapshots content-addressed, and
// resumes reassigned jobs from interval checkpoints (see internal/farm).
//
// Coordinator (default mode): serve a sweep and print its report.
//
//	sweepd -listen :7333 -exp equalization -local 2
//	sweepd -listen :7333 -exp all -local 0        # wait for remote workers
//	sweepd -listen :7333 -conform -n 64 -quick    # conformance batch
//
// Worker: attach to a coordinator and pull jobs until the farm drains.
//
//	sweepd -worker -coordinator host:7333 -j 8
//
// Worker daemon: listen for coordinators' invitations (cmd/sweep -workers
// host:port entries dial this).
//
//	sweepd -worker -listen :7334 -j 8
//
// Coordinator flags mirror cmd/sweep (-exp, -procs, -seed, -cpus, -topo,
// -protocol, -engine, -par, -dense, -format, -out, -quiet) and
// cmd/conform (-conform selects the batch; -seed, -n, -ops, -quick,
// -pad-cpus then apply; the report matches `conform -notime`). Farm
// flags:
//
//	-listen ADDR           coordinator (or worker daemon) bind address
//	-advertise ADDR        address remote workers dial back (default: -listen)
//	-local N               in-process loopback workers to attach
//	-invite LIST           comma-separated worker daemons to invite
//	-lease-ttl D           reassign a silent worker's job after D (default 1m)
//	-checkpoint-every N    interval checkpoints every N cycles (0 = off)
//
// Exit status: 0 on a clean report, 1 on failure (or, with -conform, on
// any violation) — the same contract as the local commands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"mcmsim/internal/conformance"
	"mcmsim/internal/farm"
	"mcmsim/internal/runner"
)

func main() {
	var (
		worker  = flag.Bool("worker", false, "run as a worker instead of a coordinator")
		coord   = flag.String("coordinator", "", "worker mode: coordinator address to attach to")
		listen  = flag.String("listen", "", "bind address (coordinator, or worker daemon awaiting invites)")
		adv     = flag.String("advertise", "", "address remote workers dial back (default: the listener's)")
		local   = flag.Int("local", runtime.NumCPU(), "in-process loopback workers")
		invite  = flag.String("invite", "", "comma-separated worker daemons to invite")
		jobs    = flag.Int("j", runtime.NumCPU(), "worker mode: concurrent worker loops")
		name    = flag.String("name", hostname(), "worker name prefix in coordinator logs")
		ttl     = flag.Duration("lease-ttl", farm.DefaultLeaseTTL, "reassign a silent worker's job after this long")
		every   = flag.Uint64("checkpoint-every", 0, "checkpoint Measure jobs every N cycles (0 = off)")
		conform = flag.Bool("conform", false, "serve a conformance batch instead of a sweep")

		// Sweep spec (mirrors cmd/sweep).
		exp    = flag.String("exp", "all", "experiments to serve (comma-separated, or all)")
		procs  = flag.Int("procs", 3, "processors for the workload experiments (conform: 0 = random 2-3)")
		seed   = flag.Int64("seed", 7, "workload seed (conform: first generator seed, default 1)")
		cpus   = flag.String("cpus", "", "comma-separated machine sizes for the scale sweep")
		topo   = flag.String("topo", "", "scale-sweep interconnect (conform: every cell's interconnect)")
		proto  = flag.String("protocol", "msi", "base coherence protocol: msi or mesi (conform: both, msi, or mesi)")
		engine = flag.String("engine", "auto", "parallel shard engine: auto, conservative, or optimistic")
		par    = flag.Int("par", 1, "shard each simulation across up to N goroutines")
		dense  = flag.Bool("dense", false, "disable the idle-cycle fast-forward scheduler")

		// Conform spec extras (mirror cmd/conform).
		n       = flag.Int("n", 64, "conform: number of programs")
		ops     = flag.Int("ops", 0, "conform: max operations per processor (0 = default)")
		quick   = flag.Bool("quick", false, "conform: paper timing only")
		padCPUs = flag.Int("pad-cpus", 0, "conform: pad the machine to this many processors")

		format = flag.String("format", "table", "sweep output format: table, json, csv")
		out    = flag.String("out", "", "write the report to this file instead of stdout")
		quiet  = flag.Bool("quiet", false, "suppress progress on stderr")
	)
	flag.Parse()
	// -conform shifts three defaults to cmd/conform's: the first generator
	// seed (1, not the workload seed 7), the protocol axis (both, not the
	// sweep's msi), and the processor count (0 = random 2-3, not the
	// workload experiments' 3). Explicit flags always win.
	seedSet, protoSet, procsSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "protocol":
			protoSet = true
		case "procs":
			procsSet = true
		}
	})
	if *conform && !seedSet {
		*seed = 1
	}
	if *conform && !protoSet {
		*proto = "both"
	}
	if *conform && !procsSet {
		*procs = 0
	}

	if *worker {
		if err := runWorker(*coord, *listen, *name, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		return
	}

	spec, err := buildSpec(*conform, *exp, *procs, *seed, *cpus, *topo, *proto, *engine, *par, *dense, *n, *ops, *quick, *padCPUs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	opts := farm.Options{
		Listen:          *listen,
		Advertise:       *adv,
		LocalWorkers:    *local,
		LeaseTTL:        *ttl,
		CheckpointEvery: *every,
		OnWorkerError:   func(name string, err error) { fmt.Fprintf(os.Stderr, "sweepd: worker %s: %v\n", name, err) },
	}
	if *invite != "" {
		opts.Invite = strings.Split(*invite, ",")
	}
	if !*quiet {
		opts.OnProgress = func(p runner.Progress) {
			status := fmt.Sprintf("cycles=%d", p.Cycles)
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-40s %s wall=%s\n",
				len(fmt.Sprint(p.Total)), p.Done, p.Total, p.Name, status, p.Wall.Round(time.Microsecond))
		}
	}

	start := time.Now()
	results, stats, err := farm.Run(spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%d jobs in %s (%d workers, %d reassigned, %d resumed, %d warmups built for %d keys)\n",
			stats.Completed, time.Since(start).Round(time.Millisecond),
			stats.Workers, stats.Reassigned, stats.Resumed, stats.WarmBuilds, stats.WarmKeys)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *conform {
		params, copts, err := farm.ConformOptions(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		rep := conformance.BatchReport(spec.CSeed, spec.N, params, results)
		// Wall time is omitted (like conform -notime): the farm report is
		// byte-comparable against a local run by design.
		if !conformance.Summarize(w, rep, spec.CSeed, spec.N, copts, -1) {
			os.Exit(1)
		}
		return
	}
	if err := writeSweepReport(w, spec, results, *format); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// buildSpec assembles the farm spec from the flag values.
func buildSpec(conform bool, exp string, procs int, seed int64, cpus, topo, proto, engine string, par int, dense bool, n, ops int, quick bool, padCPUs int) (farm.JobSpec, error) {
	spec := farm.JobSpec{
		Protocol: proto,
		Engine:   engine,
		Par:      par,
		Dense:    dense,
	}
	if proto == "both" && !conform {
		return spec, fmt.Errorf("-protocol both is a conformance axis; sweeps take msi or mesi")
	}
	if conform {
		spec.Kind = "conform"
		spec.CSeed = seed
		spec.N = n
		spec.CProcs = procs
		spec.Ops = ops
		spec.Quick = quick
		spec.PadCPUs = padCPUs
		spec.Topo = topo
		spec.Protocols = proto
		// The conformance grid sets each cell's protocol itself; the
		// process-global default must stay untouched.
		spec.Protocol = "msi"
		return spec, nil
	}
	spec.Kind = "sweep"
	spec.Procs = procs
	spec.Seed = seed
	spec.ScaleTopo = topo
	if exp != "all" {
		for _, name := range strings.Split(exp, ",") {
			spec.Exps = append(spec.Exps, strings.TrimSpace(name))
		}
	}
	if cpus != "" {
		var err error
		if spec.ScaleCPUs, err = parseCPUList(cpus); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

// writeSweepReport partitions the results per sweep and renders them with
// the shared formatters, exactly as cmd/sweep does.
func writeSweepReport(w *os.File, spec farm.JobSpec, results []runner.Result, format string) error {
	rows, err := runner.Rows(results)
	if err != nil {
		return err
	}
	tables, err := farm.SweepTables(spec, rows)
	if err != nil {
		return err
	}
	return runner.WriteReport(w, format, tables)
}

// runWorker runs worker mode: attach to a coordinator, or listen as a
// daemon for invitations.
func runWorker(coord, listen, name string, jobs int) error {
	switch {
	case coord != "" && listen != "":
		return fmt.Errorf("worker mode takes -coordinator or -listen, not both")
	case coord != "":
		errCh := make(chan error, jobs)
		for i := 0; i < jobs; i++ {
			go func(i int) {
				errCh <- (&farm.Worker{Name: fmt.Sprintf("%s-%d", name, i)}).Run(coord)
			}(i)
		}
		var first error
		for i := 0; i < jobs; i++ {
			if err := <-errCh; err != nil && first == nil {
				first = err
			}
		}
		return first
	case listen != "":
		d := &farm.Daemon{Name: name + "-", Workers: jobs, Logf: log.Printf}
		return d.ListenAndServe(listen)
	default:
		return fmt.Errorf("worker mode needs -coordinator ADDR (attach) or -listen ADDR (await invites)")
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}

// parseCPUList parses a comma-separated list of machine sizes.
func parseCPUList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpus entry %q (want positive integers, e.g. 16,64,256)", f)
		}
		out = append(out, n)
	}
	return out, nil
}
