package mcmsim

// The benchmark harness: one benchmark per table/figure of the paper plus
// one per extension experiment, as indexed in DESIGN.md. Each benchmark
// runs the corresponding experiment end to end and reports the headline
// quantity (simulated cycles) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation in one command. Wall-clock ns/op
// measures simulator speed; the "cycles" metrics are the architectural
// results the paper reports.

import (
	"fmt"
	"runtime"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/experiments"
	"mcmsim/internal/isa"
	"mcmsim/internal/machine"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// BenchmarkExample1 regenerates Figure 2's Example 1 row (F2a): the
// lock/write/write/unlock producer under SC and RC, conventional vs
// prefetch vs both techniques.
func BenchmarkExample1(b *testing.B) {
	for _, m := range []core.Model{core.SC, core.RC} {
		for _, t := range []core.Technique{experiments.TechConv, experiments.TechPf, experiments.TechBoth} {
			b.Run(fmt.Sprintf("%v/%v", m, t), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					var err error
					cycles, err = experiments.RunExample1(m, t)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}

// BenchmarkExample2 regenerates Figure 2's Example 2 row (F2b): the
// consumer with a dependent access (read E[D]), where prefetching alone
// falls short and speculative loads recover the full overlap.
func BenchmarkExample2(b *testing.B) {
	for _, m := range []core.Model{core.SC, core.RC} {
		for _, t := range []core.Technique{experiments.TechConv, experiments.TechPf, experiments.TechBoth} {
			b.Run(fmt.Sprintf("%v/%v", m, t), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					var err error
					cycles, err = experiments.RunExample2(m, t)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}

// BenchmarkFigure1Litmus regenerates the Figure 1 ordering matrix (F1):
// the litmus battery across all four models, conventional and with both
// techniques. The metric is the number of cells whose outcome matches the
// model's delay arcs (48 = all).
func BenchmarkFigure1Litmus(b *testing.B) {
	var okCells int
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure1Matrix()
		if err != nil {
			b.Fatal(err)
		}
		okCells = 0
		for _, c := range cells {
			if !(c.Relaxed && !c.Allowed) {
				okCells++
			}
		}
	}
	b.ReportMetric(float64(okCells), "cells-ok")
}

// BenchmarkFigure5Trace regenerates the §4.3 execution trace (F5),
// reporting the run length of the traced walkthrough.
func BenchmarkFigure5Trace(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5()
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkEqualization regenerates experiment E1: the model x technique
// grid on the data-race-free mixed workload, reporting the SC/RC cycle
// ratio with both techniques (the §5 equalization claim; ~1.0 is perfect).
func BenchmarkEqualization(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Equalization(3, 7)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["model"]+"/"+r.Labels["tech"]] = r.Cycles
		}
		ratio = float64(byKey["SC/pf+spec"]) / float64(byKey["RC/pf+spec"])
	}
	b.ReportMetric(ratio, "SC:RC-ratio")
}

// BenchmarkLatencySweep regenerates experiment E2 at its largest point
// (400-cycle misses), reporting SC-with-techniques cycles.
func BenchmarkLatencySweep(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencySweep(3, 7, []uint64{400})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Labels["model"] == "SC" && r.Labels["tech"] == "pf+spec" {
				cycles = r.Cycles
			}
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkContentionSweep regenerates experiment E3 at heavy sharing,
// reporting the speculation squash rate.
func BenchmarkContentionSweep(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ContentionSweep(3, 11, []float64{0.6})
		if err != nil {
			b.Fatal(err)
		}
		rate = rows[0].Extra["squash_rate"]
	}
	b.ReportMetric(rate, "squash-rate")
}

// BenchmarkLookaheadSweep regenerates experiment E4, reporting the
// technique speedup at a 64-entry window.
func BenchmarkLookaheadSweep(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LookaheadSweep([]int{64})
		if err != nil {
			b.Fatal(err)
		}
		byTech := map[string]uint64{}
		for _, r := range rows {
			byTech[r.Labels["tech"]] = r.Cycles
		}
		speedup = float64(byTech["conv"]) / float64(byTech["pf+spec"])
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkProtocolComparison regenerates experiment E5, reporting the
// prefetch speedup under the invalidation protocol (the update protocol's
// is structurally smaller — no read-exclusive prefetch).
func BenchmarkProtocolComparison(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProtocolComparison(2, 7)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["protocol"]+"/"+r.Labels["tech"]] = r.Cycles
		}
		gain = float64(byKey["invalidate/conv"]) / float64(byKey["invalidate/pf"])
	}
	b.ReportMetric(gain, "pf-speedup")
}

// BenchmarkAdveHill regenerates experiment E6, reporting the Adve-Hill
// speedup over conventional SC (the paper predicts it is limited).
func BenchmarkAdveHill(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AdveHillComparison(32)
		if err != nil {
			b.Fatal(err)
		}
		byImpl := map[string]uint64{}
		for _, r := range rows {
			byImpl[r.Labels["impl"]] = r.Cycles
		}
		gain = float64(byImpl["conv"]) / float64(byImpl["advehill"])
	}
	b.ReportMetric(gain, "ah-speedup")
}

// BenchmarkStenstromNST regenerates experiment E7, reporting how many times
// slower the cacheless NST scheme is than cached conventional SC on a
// workload with reuse.
func BenchmarkStenstromNST(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StenstromComparison(32)
		if err != nil {
			b.Fatal(err)
		}
		byImpl := map[string]uint64{}
		for _, r := range rows {
			byImpl[r.Labels["impl"]] = r.Cycles
		}
		slowdown = float64(byImpl["stenstrom-NST"]) / float64(byImpl["cached-SC"])
	}
	b.ReportMetric(slowdown, "nst-slowdown")
}

// BenchmarkRMW regenerates experiment E8's headline: contended atomic
// read-modify-writes with the full Appendix A machinery (speculative
// read-exclusive + squash-after-issue), reporting cycles for a 4-processor
// counter run.
func BenchmarkRMW(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.RealisticConfig()
		cfg.Procs = 4
		cfg.Model = core.SC
		cfg.Tech = experiments.TechBoth
		progs := make([]*isa.Program, 4)
		for p := 0; p < 4; p++ {
			progs[p] = workload.CriticalSection(p, 4, 3, 2, 1)
		}
		s := sim.New(cfg, progs)
		var err error
		cycles, err = s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if got := s.ReadCoherent(workload.CounterAddr(0)); got != 24 {
			b.Fatalf("counter = %d, want 24", got)
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkSweepSuite runs the entire E-series evaluation (every suite
// sweep's full job list, 110 independent simulations) through the parallel
// execution engine at several worker counts. ns/op is the wall time of one
// complete `sweep -exp all` equivalent; "simcycles/s" is aggregate
// simulation throughput. Comparing the j1 and jN sub-benchmarks measures
// the run-level parallel speedup on the host (bounded by GOMAXPROCS and by
// the longest single job).
func BenchmarkSweepSuite(b *testing.B) {
	params := experiments.DefaultParams()
	var jobs []runner.Job
	for _, s := range experiments.Suite() {
		jobs = append(jobs, s.Jobs(params)...)
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				results := runner.Run(jobs, runner.Options{Workers: workers})
				rows, err := runner.Rows(results)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, r := range rows {
					total += r.Cycles
				}
			}
			b.ReportMetric(float64(len(jobs)), "jobs")
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// benchmarkSuiteWarmup runs the suite's warmup-declaring sweeps — E6's
// Adve-Hill comparison (three variants sharing one warmup) and E15's
// warmed-cache grid (ten variants sharing one warmup) — with and without
// the warmup-snapshot cache. A fresh cache per iteration keeps the
// measurement honest: every iteration simulates each distinct warmup
// exactly once and clones it for the remaining points, versus thirteen
// cold warmup simulations without the cache. The cycles metric must not
// move between the two variants (the cache is observationally inert); the
// cold/cache ns/op ratio is the suite wall-clock win EXPERIMENTS.md
// reports.
func benchmarkSuiteWarmup(b *testing.B, cached bool) {
	jobs := append(experiments.AdveHillComparisonJobs(32), experiments.WarmedEqualizationJobs()...)
	var rowsSum uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := runner.Options{Workers: 1}
		if cached {
			opts.WarmupCache = runner.NewWarmupCache()
		}
		rows, err := runner.Rows(runner.Run(jobs, opts))
		if err != nil {
			b.Fatal(err)
		}
		rowsSum = 0
		for _, r := range rows {
			rowsSum += r.Cycles
		}
	}
	b.ReportMetric(float64(rowsSum), "cycles")
}

func BenchmarkSuiteWarmupCold(b *testing.B)  { benchmarkSuiteWarmup(b, false) }
func BenchmarkSuiteWarmupCache(b *testing.B) { benchmarkSuiteWarmup(b, true) }

// BenchmarkSnapshotRoundTrip measures the snapshot machinery itself: one
// iteration serializes a warmed 3-processor machine and restores a private
// clone from it — the per-job cost a cache hit pays instead of simulating
// the warmup.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 3
	cfg.Model = core.SC
	cfg.Tech = experiments.TechBoth
	progs := make([]*isa.Program, 3)
	for p := 0; p < 3; p++ {
		progs[p] = workload.RandomSharing(p, 3, workload.EqualizationMix(7))
	}
	s := sim.New(cfg, progs)
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := s.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// cycles per wall-clock second on the mixed workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	progs := make([]*isa.Program, 3)
	for p := 0; p < 3; p++ {
		progs[p] = workload.RandomSharing(p, 3, workload.EqualizationMix(7))
	}
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.RealisticConfig()
		cfg.Tech = experiments.TechBoth
		cfg.Procs = 3
		s := sim.New(cfg, progs)
		cycles, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSoftwarePrefetch regenerates experiment E9 (hardware vs software
// prefetch windows, §6), reporting the hw/sw cycle ratio at a 4-entry
// instruction window (large = software's arbitrarily-large window wins).
func BenchmarkSoftwarePrefetch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SoftwarePrefetchComparison([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["prefetch"]] = r.Cycles
		}
		ratio = float64(byKey["hw"]) / float64(byKey["sw"])
	}
	b.ReportMetric(ratio, "hw:sw-ratio")
}

// BenchmarkSCDetection regenerates experiment E10 (the §6 detection
// extension), reporting detections on the racy run (>0 proves the monitor
// sees real violations; the DRF run is asserted zero in tests).
func BenchmarkSCDetection(b *testing.B) {
	var det float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SCDetection()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Labels["program"] == "MP-racy" {
				det = r.Extra["detections"]
			}
		}
	}
	b.ReportMetric(det, "racy-detections")
}

// BenchmarkDetectionPolicy regenerates experiment E11 (§4.1's two detection
// mechanisms), reporting the conservative/revalidate cycle ratio under pure
// false sharing (>1 means repeat-and-compare wins).
func BenchmarkDetectionPolicy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DetectionPolicyComparison(3, 8)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["workload"]+"/"+r.Labels["policy"]] = r.Cycles
		}
		ratio = float64(byKey["false-sharing/conservative"]) / float64(byKey["false-sharing/revalidate"])
	}
	b.ReportMetric(ratio, "conservative:revalidate")
}

// BenchmarkBandwidth regenerates experiment E12 (home-module bandwidth),
// reporting the single-module slowdown under bounded service.
func BenchmarkBandwidth(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BandwidthComparison(8)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["modules"]+"/"+r.Labels["bw"]] = r.Cycles
		}
		slowdown = float64(byKey["1/1"]) / float64(byKey["1/inf"])
	}
	b.ReportMetric(slowdown, "single-module-slowdown")
}

// BenchmarkReissueOpt regenerates experiment E14 (§4.2's reissue-only
// correction), reporting the flush-always/reissue-opt cycle ratio.
func BenchmarkReissueOpt(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReissueAblation(3, 11)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]uint64{}
		for _, r := range rows {
			byKey[r.Labels["policy"]] = r.Cycles
		}
		ratio = float64(byKey["flush-always"]) / float64(byKey["reissue-opt"])
	}
	b.ReportMetric(ratio, "flush:reissue")
}

// benchmarkMesh regenerates one machine size of experiment E16: a
// builder-assembled mesh multiprocessor running the machine-wide sharing
// workload under the boundary configurations. ns/op is the simulator's
// cost per many-core run (the scaling burden the mesh network and
// limited-pointer directory must keep affordable); the cycles metric is
// the architectural result.
func benchmarkMesh(b *testing.B, cpus int) {
	rounds := 4
	if cpus >= 32 {
		rounds = 2
	}
	progs := make([]*isa.Program, cpus)
	for p := 0; p < cpus; p++ {
		progs[p] = workload.WideSharing(p, cpus, 4, rounds)
	}
	for _, pt := range []struct {
		m core.Model
		t core.Technique
	}{
		{core.SC, experiments.TechConv},
		{core.SC, experiments.TechBoth},
		{core.RC, experiments.TechBoth},
	} {
		b.Run(fmt.Sprintf("%v/%v", pt.m, pt.t), func(b *testing.B) {
			cfg, err := machine.New().
				CPUs(cpus).
				Topology("mesh").
				Model(pt.m).
				Technique(pt.t).
				Config()
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s := sim.New(cfg, progs)
				cycles, err = s.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func BenchmarkMesh16(b *testing.B) { benchmarkMesh(b, 16) }
func BenchmarkMesh64(b *testing.B) { benchmarkMesh(b, 64) }
