// Producer/consumer: the workload shape the paper's two worked examples are
// distilled from. A producer fills a buffer and publishes it with a release
// store; a consumer spins on the flag with acquire loads and sums the
// buffer. The example runs the pair under every consistency model, with and
// without the paper's techniques, and verifies the checksum every time —
// showing both the performance effect and that synchronization stays
// correct under aggressive speculation.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

const items = 24

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\tconventional\tprefetch\tprefetch+speculation")
	for _, model := range core.AllModels {
		fmt.Fprintf(w, "%v", model)
		for _, tech := range []core.Technique{
			{},
			{Prefetch: true},
			{Prefetch: true, SpecLoad: true, ReissueOpt: true},
		} {
			cycles := run(model, tech)
			fmt.Fprintf(w, "\t%d", cycles)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\nEvery cell verified the checksum: the flag handoff is data-race-free,")
	fmt.Println("so speculative loads never retire a stale buffer value — invalidations")
	fmt.Println("arriving before the acquire completes squash and re-execute them (§4).")
}

func run(model core.Model, tech core.Technique) uint64 {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = model
	cfg.Tech = tech
	prod, cons := workload.ProducerConsumer(items)
	s := sim.New(cfg, []*isa.Program{prod, cons})
	cycles, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	want := int64(items * (items + 1) / 2)
	if got := s.ReadCoherent(workload.SumAddr); got != want {
		log.Fatalf("%v/%v: checksum %d, want %d", model, tech, got, want)
	}
	return cycles
}
