// Litmus: run the Figure 1 ordering battery interactively. For each litmus
// test and each consistency model the example shows whether the relaxed
// (SC-forbidden) outcome occurred, conventionally and with the paper's two
// techniques enabled — making Figure 1's delay arcs observable and showing
// that speculation never weakens a model.
//
//	go run ./examples/litmus
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mcmsim/internal/core"
	"mcmsim/internal/experiments"
	"mcmsim/internal/workload"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "litmus\tmodel\tpermits relaxed?\tconventional\twith pf+spec")
	for _, l := range workload.AllLitmus() {
		for _, m := range core.AllModels {
			conv, err := experiments.RunLitmus(l, m, experiments.TechConv)
			if err != nil {
				log.Fatal(err)
			}
			both, err := experiments.RunLitmus(l, m, experiments.TechBoth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%v\t%v\t%s\t%s\n",
				l.Name, m, conv.Allowed, outcome(conv), outcome(both))
			if both.Relaxed && !both.Allowed {
				log.Fatalf("%s/%v: the techniques produced a forbidden outcome!", l.Name, m)
			}
		}
	}
	w.Flush()
	fmt.Println("\nEvery 'relaxed' cell is an ordering the model's Figure 1 arcs permit;")
	fmt.Println("no forbidden outcome ever appears, even with loads issuing speculatively —")
	fmt.Println("the speculative-load buffer squashes any stale value before it can retire.")
}

func outcome(c experiments.Figure1Cell) string {
	if c.Relaxed {
		return "relaxed"
	}
	return "ordered"
}
