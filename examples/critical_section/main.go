// Critical sections under contention: four processors increment shared
// counters behind test-and-set locks. The example contrasts a single hot
// lock against striped locks, under sequential consistency with and without
// the paper's techniques, and prints the speculation statistics — showing
// where latency hiding works (pipelining each processor's own stream) and
// where it cannot help (serialized lock handoffs), plus the cost of
// squashed speculation under contention (§5's caveat).
//
//	go run ./examples/critical_section
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

const (
	procs   = 4
	rounds  = 4
	updates = 2
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "locks\ttechniques\tcycles\tspec squashes\tcounter ok")
	for _, nlocks := range []int{1, procs} {
		for _, tech := range []core.Technique{
			{},
			{Prefetch: true},
			{Prefetch: true, SpecLoad: true, ReissueOpt: true},
		} {
			cycles, squashes, ok := run(nlocks, tech)
			fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%v\n", nlocks, tech, cycles, squashes, ok)
		}
	}
	w.Flush()
	fmt.Println("\nWith one hot lock the handoff chain dominates and no amount of")
	fmt.Println("buffering or pipelining shortens it; with striped locks the techniques")
	fmt.Println("hide each processor's own miss latency. Squash counts show speculation")
	fmt.Println("paying for contended lines (footnote 2's conservative policy).")
}

func run(nlocks int, tech core.Technique) (uint64, uint64, bool) {
	cfg := sim.RealisticConfig()
	cfg.Procs = procs
	cfg.Model = core.SC
	cfg.Tech = tech
	progs := make([]*isa.Program, procs)
	for p := 0; p < procs; p++ {
		progs[p] = workload.CriticalSection(p, procs, rounds, updates, nlocks)
	}
	s := sim.New(cfg, progs)
	cycles, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	var squashes uint64
	for _, u := range s.LSUs {
		squashes += u.Stats.Counter("spec_squashes").Value()
	}
	// Mutual exclusion check: no increment lost anywhere.
	total := int64(0)
	for i := 0; i < nlocks; i++ {
		total += s.ReadCoherent(workload.CounterAddr(i))
	}
	return cycles, squashes, total == int64(procs*rounds*updates)
}
