// Quickstart: build a machine, run the paper's Example 1 under sequential
// consistency with and without the two techniques, and watch the 301-cycle
// critical section collapse to 103 cycles.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

func main() {
	// A producer updating two locations inside a critical section — the
	// paper's Example 1 (Figure 2, left).
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	b.Lock(isa.R1, 0x100)     // lock L   (miss)
	b.StoreAbs(isa.R2, 0x110) // write A  (miss)
	b.StoreAbs(isa.R2, 0x120) // write B  (miss)
	b.Unlock(0x100)           // unlock L (hit)
	b.Halt()
	prog := b.Build()

	for _, tech := range []core.Technique{
		{},               // conventional
		{Prefetch: true}, // §3: hardware non-binding prefetch
		{Prefetch: true, SpecLoad: true, ReissueOpt: true}, // §3 + §4 combined
	} {
		// PaperConfig is the abstract machine of the paper's analysis:
		// 1-cycle hits, 100-cycle misses, free instruction supply.
		cfg := sim.PaperConfig()
		cfg.Model = core.SC
		cfg.Tech = tech

		cycles, err := sim.RunProgram(cfg, []*isa.Program{prog})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SC with %-8v : %3d cycles\n", tech, cycles)
	}

	fmt.Println()
	fmt.Println("The paper's §3.3 analysis gives 301 (conventional), 103 (prefetch),")
	fmt.Println("and 103 (both) — prefetching pipelines the delayed writes, so the")
	fmt.Println("strictest model runs as fast as release consistency on this code.")
}
