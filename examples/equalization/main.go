// Equalization: the paper's central claim (§5) on a full workload. A
// data-race-free mix of private computation and lock-protected sharing runs
// under all four consistency models and all technique combinations; the
// table shows the model gap collapsing once prefetching and speculative
// loads are enabled.
//
//	go run ./examples/equalization
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mcmsim/internal/experiments"
)

func main() {
	rows, err := experiments.Equalization(3, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Pivot into model x technique.
	cell := map[string]map[string]uint64{}
	var techs []string
	seen := map[string]bool{}
	for _, r := range rows {
		m, t := r.Labels["model"], r.Labels["tech"]
		if cell[m] == nil {
			cell[m] = map[string]uint64{}
		}
		cell[m][t] = r.Cycles
		if !seen[t] {
			seen[t] = true
			techs = append(techs, t)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "model")
	for _, t := range techs {
		fmt.Fprintf(w, "\t%s", t)
	}
	fmt.Fprintln(w)
	for _, m := range []string{"SC", "PC", "WC", "RCsc", "RC"} {
		fmt.Fprint(w, m)
		for _, t := range techs {
			fmt.Fprintf(w, "\t%d", cell[m][t])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	gap := func(t string) float64 { return float64(cell["SC"][t]) / float64(cell["RC"][t]) }
	fmt.Printf("\nSC/RC ratio: %.2f conventional -> %.2f with prefetch+speculation\n",
		gap("conv"), gap("pf+spec"))
	fmt.Println("\"...the performance of different consistency models is equalized, thus")
	fmt.Println("reducing the impact of the consistency model on performance.\" (§1)")
}
