# Pre-PR gate and convenience targets. `make check` is what every change
# must pass before review (documented in README.md): vet, formatting,
# build, the full test suite, and the race-detector tier over the packages
# that exercise goroutine concurrency (the parallel runner and the
# simulator integration tests it drives).

GO ?= go

.PHONY: check vet fmtcheck build test race differential bench sweep fmt

check: vet fmtcheck build test race differential
	@echo "check: OK"

vet:
	$(GO) vet ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency tier: the worker pool and the simulations it fans out
# must be race-clean at every worker count.
race:
	$(GO) test -race ./internal/runner ./internal/sim

# The fast-forward differential tier: the idle-cycle scheduler must be
# observationally identical to stepping every cycle — across the model x
# technique grid, the full experiment suite in every output format, and
# the Figure 5 cycle-level trace.
differential:
	$(GO) test -run 'TestFastForward' ./internal/sim ./internal/experiments

# Regenerate every figure/experiment headline via the benchmark harness,
# archiving the results (ns/op, allocs/op, simulated cycles/sec) as
# machine-readable JSON in BENCH_sim.json.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/sim | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# The full evaluation suite on all CPUs.
sweep:
	$(GO) run ./cmd/sweep -exp all

fmt:
	gofmt -w .
