# Pre-PR gate and convenience targets. `make check` is what every change
# must pass before review (documented in README.md): vet, formatting,
# build, the full test suite, the race-detector tier over every package,
# the fast-forward differential tier, a conformance smoke batch against
# the exact per-model oracles (internal/conformance), and the
# exact-vs-legacy oracle differential.

GO ?= go

.PHONY: check vet fmtcheck build test race differential conform oracle-diff cover fuzz bench benchdiff sweep fmt

check: vet fmtcheck build test race differential conform oracle-diff
	@echo "check: OK"

vet:
	$(GO) vet ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency tier: every package must be race-clean — the worker
# pool fans simulations out across goroutines, so any shared state in the
# simulator shows up here.
race:
	$(GO) test -race ./...

# The differential tier: the idle-cycle fast-forward scheduler, the
# conservative and optimistic (rollback) parallel engines, machine
# snapshot/restore, and the warmup-snapshot cache must all be
# observationally identical to the plain sequential cold-start run —
# across the model x technique grid, every execution engine, shard-worker
# counts {2,4,8}, the full experiment suite in every output format with
# the cache on and off, a conformance batch, and the Figure 5 cycle-level
# trace. The second leg re-checks a conformance batch with every
# simulation sharded by the optimistic engine: verdicts must be identical
# to the sequential run at every worker count. The farm tier holds the
# distributed coordinator to the same bar: a farmed suite and conformance
# batch must be byte-identical to the local pool, through worker deaths,
# lease expiries, and checkpoint resumes.
differential:
	$(GO) test -run 'TestFastForward|TestParallelEngine|TestSnapshot|TestWarmupCache|TestFarm' ./internal/sim ./internal/experiments ./internal/parsim ./internal/runner ./internal/farm
	$(GO) run ./cmd/conform -seed 1 -n 32 -quick -par 4 -engine optimistic -quiet

# The conformance tier: a smoke batch of generated litmus programs checked
# against the exact per-model oracles across the model x technique x
# timing x protocol grid (cmd/conform runs larger batches; any failure
# prints a minimized reproducer).
conform:
	$(GO) run ./cmd/conform -seed 1 -n 64 -quiet

# The oracle tier: the exact-vs-legacy differential over a seeded batch
# (exact ⊆ legacy for every model, equality under SC, 1-minimal shrinking
# on failure), the pinned divergence programs, the named litmus corpus,
# and the state-cap hard-error contract.
oracle-diff:
	$(GO) test -run 'TestOracleDifferential|TestExact|TestLitmusCorpus|TestOracleStateCap' ./internal/conformance

# Per-package statement coverage for the simulator core.
cover:
	$(GO) test -cover ./internal/...

# The native fuzz target: arbitrary byte strings decode to litmus programs
# that are checked against the oracle on the reduced (paper-timing) grid.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzConformance -fuzztime 30s ./internal/conformance

# Regenerate every figure/experiment headline via the benchmark harness,
# archiving the results (ns/op, allocs/op, simulated cycles/sec) as
# machine-readable JSON in BENCH_sim.json.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/sim ./internal/parsim ./internal/farm | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# Re-run the benchmark suite and diff it against the committed
# BENCH_sim.json baseline: any benchmark whose ns/op or allocs/op grew by
# more than 15% fails (cmd/benchjson -compare). The fresh results go to a
# scratch file so the baseline only changes via an explicit `make bench`.
benchdiff:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/sim ./internal/parsim ./internal/farm | $(GO) run ./cmd/benchjson -out /tmp/BENCH_sim.new.json -compare BENCH_sim.json

# The full evaluation suite on all CPUs.
sweep:
	$(GO) run ./cmd/sweep -exp all

fmt:
	gofmt -w .
