package cpu

import (
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
)

// TickFrontend fetches and decodes up to FetchWidth instructions along the
// predicted path, allocating reorder-buffer entries and dispatching memory
// instructions to the load/store unit. Runs at the start of each cycle.
func (p *Proc) TickFrontend(now uint64) {
	if p.halted || p.haltFetched || now < p.fetchResumeAt {
		return
	}
	for slots := p.cfg.FetchWidth; slots > 0 && len(p.rob) < p.cfg.ROBSize; slots-- {
		in := p.prog.At(p.pc)
		e := &robEntry{id: p.nextID, pc: p.pc, instr: in}
		p.nextID++

		switch in.Op {
		case isa.OpHalt:
			p.haltFetched = true
			e.executed = true
			p.pushEntry(e)
			p.Stats.Counter("decoded").Inc()
			return
		case isa.OpNop:
			e.executed = true
			p.pc++
		case isa.OpJmp:
			// Unconditional direct jump: redirect fetch immediately.
			e.executed = true
			p.pc = int(in.Imm)
		case isa.OpBeqz, isa.OpBnez:
			e.src = p.readReg(in.Src)
			e.predTaken = p.predictTaken(p.pc)
			if e.predTaken {
				e.predTarget = int(in.Imm)
			} else {
				e.predTarget = p.pc + 1
			}
			p.pc = e.predTarget
		case isa.OpLoad, isa.OpStore, isa.OpAcquire, isa.OpRelease, isa.OpRMW,
			isa.OpPrefetch, isa.OpPrefetchEx:
			e.isMem = true
			base := p.readReg(in.Base)
			data := operand{ready: true}
			if in.IsStore() || in.Op == isa.OpRMW {
				data = p.readReg(in.Src)
			}
			e.src = base  // base-address operand
			e.src2 = data // store-data operand
			e.baseSent = base.ready
			e.dataSent = data.ready
			p.lsu.Dispatch(e.id, in, base.ready, base.value, data.ready, data.value)
			p.pc++
		default: // ALU
			e.src = p.readReg(in.Src)
			if usesSrc2(in.Op) {
				e.src2 = p.readReg(in.Src2)
			} else {
				e.src2 = operand{ready: true}
			}
			p.pc++
		}
		if in.WritesReg() {
			p.rat[in.Dst] = ratEntry{producer: e.id, valid: true}
		}
		p.pushEntry(e)
		p.Stats.Counter("decoded").Inc()
	}
}

func usesSrc2(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt:
		return true
	}
	return false
}

func (p *Proc) pushEntry(e *robEntry) {
	p.rob = append(p.rob, e)
	p.byID[e.id] = e
}

// predictTaken consults the 2-bit counter for a branch PC. Counters start
// weakly not-taken so a test-and-set spin loop predicts the success path,
// as the paper assumes.
func (p *Proc) predictTaken(pc int) bool {
	c, ok := p.predictor[pc]
	if !ok {
		c = 1
		p.predictor[pc] = c
	}
	return c >= 2
}

func (p *Proc) trainPredictor(pc int, taken bool) {
	c, ok := p.predictor[pc]
	if !ok {
		c = 1
	}
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.predictor[pc] = c
}

// TickExecute runs the functional units: ALU operations and branch
// resolution for entries whose operands are available, and forwards late
// operands to the load/store unit. With zero-latency units the loop
// iterates to a fixpoint so same-cycle dependence chains resolve, matching
// the paper's abstract timing.
func (p *Proc) TickExecute(now uint64) {
	for progress := true; progress; {
		progress = false
		for _, e := range p.rob {
			if e.isMem {
				if !e.baseSent && p.resolve(&e.src) {
					e.baseSent = true
					p.lsu.SetBaseOperand(e.id, e.src.value)
					progress = true
				}
				if !e.dataSent && p.resolve(&e.src2) {
					e.dataSent = true
					p.lsu.SetDataOperand(e.id, e.src2.value)
					progress = true
				}
				continue
			}
			if e.executed {
				continue
			}
			if !p.resolve(&e.src) || !p.resolve(&e.src2) {
				continue
			}
			lat := p.cfg.ALULatency
			if e.instr.IsBranch() {
				lat = p.cfg.BranchLatency
			}
			if !e.execSet {
				e.execSet = true
				e.execAt = now + lat
			}
			if now < e.execAt {
				continue
			}
			if e.instr.IsBranch() {
				if p.resolveBranch(e, now) {
					// Misprediction flushed everything after the branch;
					// restart the scan against the truncated buffer.
					progress = false
					break
				}
				progress = true
				continue
			}
			e.value = alu(e.instr, e.src.value, e.src2.value)
			e.executed = true
			progress = true
		}
	}
}

// alu computes an integer operation.
func alu(in isa.Instruction, a, b int64) int64 {
	switch in.Op {
	case isa.OpAdd:
		return a + b
	case isa.OpAddI:
		return a + in.Imm
	case isa.OpSub:
		return a - b
	case isa.OpMul:
		return a * b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpSlt:
		if a < b {
			return 1
		}
		return 0
	case isa.OpSltI:
		if a < in.Imm {
			return 1
		}
		return 0
	case isa.OpNop:
		return 0
	default:
		panic(fmt.Sprintf("cpu: not an ALU op: %v", in))
	}
}

// resolveBranch resolves a conditional branch; returns true when a
// misprediction flushed the pipeline.
func (p *Proc) resolveBranch(e *robEntry, now uint64) bool {
	taken := false
	switch e.instr.Op {
	case isa.OpBeqz:
		taken = e.src.value == 0
	case isa.OpBnez:
		taken = e.src.value != 0
	}
	p.trainPredictor(e.pc, taken)
	e.executed = true
	target := e.pc + 1
	if taken {
		target = int(e.instr.Imm)
	}
	if taken == e.predTaken {
		p.Stats.Counter("branches_correct").Inc()
		return false
	}
	p.Stats.Counter("branches_mispredicted").Inc()
	p.squashAfter(e.id, target, now, p.cfg.MispredictPenalty)
	return true
}

// TickRetire commits completed instructions in order from the head of the
// reorder buffer, up to RetireWidth per cycle. Stores are signaled to the
// store buffer when they reach the head (the precise-interrupt gate of
// §4.2); under SC a store stays at the head until it completes.
func (p *Proc) TickRetire(now uint64) {
	for retired := 0; retired < p.cfg.RetireWidth && len(p.rob) > 0; retired++ {
		e := p.rob[0]
		in := e.instr

		// Signal the store buffer the first time a store or RMW is at the
		// head.
		if e.isMem && (in.IsStore() || in.Op == isa.OpRMW) && !e.storeSignaled {
			e.storeSignaled = true
			p.lsu.StoreAtHead(e.id)
		}

		if !p.canRetire(e) {
			return
		}

		if in.Op == isa.OpHalt {
			if !p.lsu.Drained() {
				return
			}
			p.popHead()
			p.halted = true
			p.HaltCycle = now
			p.Stats.Counter("retired").Inc()
			return
		}
		if in.WritesReg() {
			p.regfile[in.Dst] = e.value
			if r := p.rat[in.Dst]; r.valid && r.producer == e.id {
				p.rat[in.Dst] = ratEntry{}
			}
		}
		if e.isMem {
			p.lsu.MarkRetired(e.id)
		}
		p.popHead()
		p.Stats.Counter("retired").Inc()
	}
}

// canRetire evaluates the head entry's retirement condition.
func (p *Proc) canRetire(e *robEntry) bool {
	in := e.instr
	switch {
	case in.Op == isa.OpHalt:
		return len(p.rob) == 1 // everything before the halt retired
	case !e.isMem:
		return e.executed
	case in.IsPrefetch():
		// Software prefetches retire once issued; they bind nothing.
		return p.lsu.PrefetchDone(e.id)
	case in.IsLoad() || in.Op == isa.OpRMW:
		// Loads (and RMWs) retire when the value arrived and the entry has
		// left the speculative-load buffer (Figure 5, event 8).
		return p.lsu.CanRetireLoad(e.id)
	default: // store or release
		if p.lsu.Model() == core.SC {
			// SC retirement policy: the store at the head is not retired
			// until it completes, so the store buffer issues one store at a
			// time (§4.2).
			return p.lsu.StoreDone(e.id)
		}
		return p.lsu.StoreAddrReady(e.id)
	}
}

func (p *Proc) popHead() {
	e := p.rob[0]
	delete(p.byID, e.id)
	copy(p.rob, p.rob[1:])
	p.rob = p.rob[:len(p.rob)-1]
}

// LoadComplete implements core.CPU: the LSU delivers a load/RMW value. The
// result becomes visible to dependents immediately — before retirement —
// which is what lets speculative loads overlap with consistency delays.
func (p *Proc) LoadComplete(rob uint64, value int64, now uint64) {
	if e := p.byID[rob]; e != nil {
		e.value = value
		e.complete = true
	}
}

// StoreComplete implements core.CPU.
func (p *Proc) StoreComplete(rob uint64, now uint64) {
	if e := p.byID[rob]; e != nil {
		e.complete = true
	}
}

// InvalidateLoadValue implements core.CPU: a speculated value is withdrawn;
// dependents decoded from now on wait for the fresh LoadComplete.
func (p *Proc) InvalidateLoadValue(rob uint64) {
	if e := p.byID[rob]; e != nil {
		e.complete = false
	}
}

// FlushFrom implements core.CPU: squash the entry rob and everything after
// it and re-fetch from its PC — the branch-misprediction machinery reused
// as the speculative-load correction mechanism (§4.1).
func (p *Proc) FlushFrom(rob uint64, now uint64) {
	idx := -1
	for i, e := range p.rob {
		if e.id >= rob {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // nothing younger in flight
	}
	pc := p.rob[idx].pc
	p.truncate(idx)
	p.lsu.Flush(rob)
	p.pc = pc
	p.haltFetched = false
	p.fetchResumeAt = now + 1 + p.cfg.RollbackPenalty
	p.Stats.Counter("spec_flushes").Inc()
}

// squashAfter flushes everything after entry id (exclusive) and redirects
// fetch to target.
func (p *Proc) squashAfter(id uint64, target int, now uint64, penalty uint64) {
	idx := -1
	for i, e := range p.rob {
		if e.id > id {
			idx = i
			break
		}
	}
	if idx >= 0 {
		p.truncate(idx)
	}
	p.lsu.Flush(id + 1)
	p.pc = target
	p.haltFetched = false
	p.fetchResumeAt = now + 1 + penalty
}

// truncate removes reorder-buffer entries from index idx onward and rebuilds
// the register alias table from the survivors.
func (p *Proc) truncate(idx int) {
	for _, e := range p.rob[idx:] {
		delete(p.byID, e.id)
	}
	p.rob = p.rob[:idx]
	p.rat = [isa.NumRegs]ratEntry{}
	for _, e := range p.rob {
		if e.instr.WritesReg() {
			p.rat[e.instr.Dst] = ratEntry{producer: e.id, valid: true}
		}
	}
}
