// Package cpu models the dynamically scheduled processor the paper builds
// on (§4.2, Figure 3): Johnson's design with a reorder buffer providing
// register renaming, speculative execution past unresolved conditional
// branches via a branch target buffer, and precise interrupts through
// in-order retirement. Memory instructions are dispatched to the load/store
// unit of internal/core, which enforces the consistency model and
// implements the paper's two techniques.
//
// The model is architectural, not structural: reservation stations are
// folded into the reorder-buffer entries (operands are resolved by polling
// producers), which is behaviourally equivalent and keeps the simulator
// deterministic and simple.
package cpu

import (
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/stats"
)

// Config holds the pipeline parameters.
type Config struct {
	FetchWidth  int    // instructions decoded per cycle
	RetireWidth int    // maximum instructions retired per cycle
	ROBSize     int    // reorder-buffer entries
	ALULatency  uint64 // cycles from operands-ready to result (0 = same cycle)
	// BranchLatency is the delay from operands-ready to branch resolution
	// (0 = same cycle, which the paper's analytical examples assume).
	BranchLatency uint64
	// MispredictPenalty is the extra bubble after a branch misprediction
	// before fetch resumes (a 1-cycle bubble always exists because fetch
	// runs at the start of the cycle).
	MispredictPenalty uint64
	// RollbackPenalty is the extra bubble after a speculative-load squash.
	RollbackPenalty uint64
}

// PaperConfig reproduces the paper's abstract machine: instruction supply,
// ALU work and branch resolution are free, so memory access time dominates
// exactly as in the §3.3/§4.1 cycle counts.
func PaperConfig() Config {
	return Config{
		FetchWidth:  16,
		RetireWidth: 16,
		ROBSize:     64,
		ALULatency:  0,
	}
}

// RealisticConfig models a plausible early-90s superscalar: 4-wide, 32-entry
// reorder buffer, 1-cycle ALU and branch, short rollback bubbles.
func RealisticConfig() Config {
	return Config{
		FetchWidth:        4,
		RetireWidth:       4,
		ROBSize:           32,
		ALULatency:        1,
		BranchLatency:     1,
		MispredictPenalty: 2,
		RollbackPenalty:   2,
	}
}

// operand is one source of an instruction: either an immediate/committed
// value or a reference to an in-flight producer.
type operand struct {
	ready    bool
	value    int64
	producer uint64 // ROB id, when !ready
	reg      isa.Reg
}

type robEntry struct {
	id    uint64
	pc    int
	instr isa.Instruction

	src, src2 operand // ALU/branch sources; store data uses src

	isMem    bool
	executed bool // ALU computed / branch resolved
	execAt   uint64
	execSet  bool
	value    int64 // result (ALU, or load value delivered by the LSU)
	complete bool  // memory access performed

	baseSent bool // base operand pushed to the LSU
	dataSent bool // store-data operand pushed to the LSU

	storeSignaled bool // StoreAtHead issued
	predTaken     bool
	predTarget    int
}

type ratEntry struct {
	producer uint64
	valid    bool
}

// Proc is one simulated processor core.
type Proc struct {
	ID   int
	cfg  Config
	prog *isa.Program
	lsu  *core.LSU

	rob    []*robEntry
	byID   map[uint64]*robEntry
	nextID uint64

	rat     [isa.NumRegs]ratEntry
	regfile [isa.NumRegs]int64

	pc            int
	fetchResumeAt uint64
	haltFetched   bool
	halted        bool

	predictor map[int]uint8 // pc -> 2-bit counter, init weakly-not-taken

	// HaltCycle records when the processor halted (all work drained).
	HaltCycle uint64

	Stats *stats.Set
}

// New creates a processor bound to a program and a load/store unit. It
// registers itself as the LSU's CPU callback.
func New(id int, cfg Config, prog *isa.Program, lsu *core.LSU) *Proc {
	if cfg.FetchWidth <= 0 || cfg.RetireWidth <= 0 || cfg.ROBSize <= 0 {
		panic("cpu: widths and ROB size must be positive")
	}
	p := &Proc{
		ID:        id,
		cfg:       cfg,
		prog:      prog,
		lsu:       lsu,
		byID:      make(map[uint64]*robEntry),
		predictor: make(map[int]uint8),
		Stats:     stats.NewSet(fmt.Sprintf("cpu%d", id)),
	}
	lsu.SetCPU(p)
	return p
}

// Halted reports whether the processor has retired its halt instruction and
// drained the load/store unit.
func (p *Proc) Halted() bool { return p.halted }

// Reg returns the committed architectural value of a register, for tests
// and examples inspecting final state.
func (p *Proc) Reg(r isa.Reg) int64 { return p.regfile[r] }

// ROBLen reports the current reorder-buffer occupancy.
func (p *Proc) ROBLen() int { return len(p.rob) }

// readReg resolves a register read at decode time against the renaming
// state: a committed value, or a reference to the in-flight producer.
func (p *Proc) readReg(r isa.Reg) operand {
	if r == isa.R0 {
		return operand{ready: true, reg: r}
	}
	if re := p.rat[r]; re.valid {
		if e := p.byID[re.producer]; e != nil {
			if v, ok := producerValue(e); ok {
				return operand{ready: true, value: v, reg: r}
			}
			return operand{producer: re.producer, reg: r}
		}
		// Producer already committed; the architectural register holds it.
	}
	return operand{ready: true, value: p.regfile[r], reg: r}
}

// producerValue returns the result of a producer entry if available.
func producerValue(e *robEntry) (int64, bool) {
	if e.isMem {
		if e.complete {
			return e.value, true
		}
		return 0, false
	}
	if e.executed {
		return e.value, true
	}
	return 0, false
}

// resolve re-polls an operand against the current pipeline state.
func (p *Proc) resolve(o *operand) bool {
	if o.ready {
		return true
	}
	e := p.byID[o.producer]
	if e == nil {
		// Producer retired after we recorded the reference; in-order
		// retirement guarantees the architectural register still holds its
		// value (no intervening writer can have committed).
		o.value = p.regfile[o.reg]
		o.ready = true
		return true
	}
	if v, ok := producerValue(e); ok {
		o.value = v
		o.ready = true
		return true
	}
	return false
}

// ROBSnapshot renders the reorder buffer head-first: one mnemonic per
// entry, for trace output (Figure 5 shows the reorder buffer's contents at
// each event).
func (p *Proc) ROBSnapshot() []string {
	out := make([]string, 0, len(p.rob))
	for _, e := range p.rob {
		out = append(out, e.instr.String())
	}
	return out
}

// DebugHead reports the reorder-buffer head's id, mnemonic and whether it
// is currently retirable (diagnostic aid).
func (p *Proc) DebugHead() (uint64, string, bool) {
	if len(p.rob) == 0 {
		return 0, "", false
	}
	e := p.rob[0]
	return e.id, e.instr.String(), p.canRetire(e)
}
