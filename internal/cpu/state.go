package cpu

import (
	"fmt"
	"sort"

	"mcmsim/internal/isa"
	"mcmsim/internal/stats"
)

// PredictorState is one trained branch-predictor entry (pc -> 2-bit
// counter), listed in ascending pc order for deterministic encoding.
type PredictorState struct {
	PC      int
	Counter uint8
}

// OperandState mirrors one instruction source operand. Producer references
// are ROB ids; a reference to an already-committed producer is kept as-is,
// since operand resolution falls back to the architectural register file
// exactly as the live pipeline would.
type OperandState struct {
	Ready    bool
	Value    int64
	Producer uint64
	Reg      isa.Reg
}

// ROBEntryState mirrors one reorder-buffer entry. The instruction itself is
// not stored: it is re-derived from the program via the recorded fetch PC.
type ROBEntryState struct {
	ID        uint64
	PC        int
	Src, Src2 OperandState

	IsMem    bool
	Executed bool
	ExecAt   uint64
	ExecSet  bool
	Value    int64
	Complete bool

	BaseSent bool
	DataSent bool

	StoreSignaled bool
	PredTaken     bool
	PredTarget    int
}

// State is the serializable processor state, mid-flight included: the
// architectural registers, the fetch/halt bookkeeping, the instruction-ID
// counter (ROB ids persist across program phases and tag the LSU's
// entries), the reorder buffer in program order, the trained predictor, and
// the statistics. The register-alias table needs no capture: it is rebuilt
// from the surviving entries, and a rebuilt table is behaviourally
// identical — a RAT entry whose producer has committed is treated as
// invalid by operand lookup (readReg falls back to the architectural
// register file), and committed producer ids are never reused.
type State struct {
	PC            int
	FetchResumeAt uint64
	HaltFetched   bool
	Halted        bool
	HaltCycle     uint64
	NextID        uint64
	Regfile       []int64
	ROB           []ROBEntryState // program order (head first); empty at quiescence
	Predictor     []PredictorState
	Stats         stats.State
}

func exportOperand(o operand) OperandState {
	return OperandState{Ready: o.ready, Value: o.value, Producer: o.producer, Reg: o.reg}
}

func restoreOperand(o OperandState) operand {
	return operand{ready: o.Ready, value: o.Value, producer: o.Producer, reg: o.Reg}
}

// Program returns the program the processor is bound to (captured by the
// machine snapshot so a restored system can rebuild the processor).
func (p *Proc) Program() *isa.Program { return p.prog }

// ExportState captures the processor state, in-flight instructions
// included.
func (p *Proc) ExportState() (State, error) {
	var st State
	if err := p.ExportStateInto(&st); err != nil {
		return State{}, err
	}
	return st, nil
}

// ExportStateInto captures the processor state into st, reusing st's
// backing storage (the optimistic shard engine checkpoints every dispatched
// shard once per window).
func (p *Proc) ExportStateInto(st *State) error {
	st.PC = p.pc
	st.FetchResumeAt = p.fetchResumeAt
	st.HaltFetched = p.haltFetched
	st.Halted = p.halted
	st.HaltCycle = p.HaltCycle
	st.NextID = p.nextID
	if cap(st.Regfile) < int(isa.NumRegs) {
		st.Regfile = make([]int64, isa.NumRegs)
	}
	st.Regfile = st.Regfile[:isa.NumRegs]
	copy(st.Regfile, p.regfile[:])
	st.ROB = st.ROB[:0]
	for _, e := range p.rob {
		st.ROB = append(st.ROB, ROBEntryState{
			ID: e.id, PC: e.pc,
			Src: exportOperand(e.src), Src2: exportOperand(e.src2),
			IsMem: e.isMem, Executed: e.executed,
			ExecAt: e.execAt, ExecSet: e.execSet,
			Value: e.value, Complete: e.complete,
			BaseSent: e.baseSent, DataSent: e.dataSent,
			StoreSignaled: e.storeSignaled,
			PredTaken:     e.predTaken, PredTarget: e.predTarget,
		})
	}
	st.Predictor = st.Predictor[:0]
	for pc, ctr := range p.predictor {
		st.Predictor = append(st.Predictor, PredictorState{PC: pc, Counter: ctr})
	}
	sort.Slice(st.Predictor, func(i, j int) bool { return st.Predictor[i].PC < st.Predictor[j].PC })
	p.Stats.ExportStateInto(&st.Stats)
	return nil
}

// RestoreState replaces the processor's entire state — architectural
// registers, reorder buffer, renaming table, predictor and statistics —
// with the exported one. Any in-flight instructions the processor held are
// discarded (the optimistic engine's rollback path).
func (p *Proc) RestoreState(st State) error {
	if len(st.Regfile) != int(isa.NumRegs) {
		return fmt.Errorf("cpu %d: snapshot has %d registers, machine has %d", p.ID, len(st.Regfile), isa.NumRegs)
	}
	p.pc = st.PC
	p.fetchResumeAt = st.FetchResumeAt
	p.haltFetched = st.HaltFetched
	p.halted = st.Halted
	p.HaltCycle = st.HaltCycle
	p.nextID = st.NextID
	copy(p.regfile[:], st.Regfile)
	// Reuse the discarded entries' allocations: *robEntry pointers never
	// escape the package (cross-component references are by ROB id), so the
	// old entries can be overwritten in place. old[i] is read before append
	// writes slot i of the shared backing array.
	old := p.rob
	p.rob = p.rob[:0]
	if p.byID == nil {
		p.byID = make(map[uint64]*robEntry, len(st.ROB))
	} else {
		clear(p.byID)
	}
	for i, es := range st.ROB {
		if es.PC < 0 || es.PC >= p.prog.Len() {
			return fmt.Errorf("cpu %d: snapshot entry %d fetched from pc %d, program has %d instructions", p.ID, es.ID, es.PC, p.prog.Len())
		}
		var e *robEntry
		if i < len(old) {
			e = old[i]
		} else {
			e = new(robEntry)
		}
		*e = robEntry{
			id: es.ID, pc: es.PC, instr: p.prog.At(es.PC),
			src: restoreOperand(es.Src), src2: restoreOperand(es.Src2),
			isMem: es.IsMem, executed: es.Executed,
			execAt: es.ExecAt, execSet: es.ExecSet,
			value: es.Value, complete: es.Complete,
			baseSent: es.BaseSent, dataSent: es.DataSent,
			storeSignaled: es.StoreSignaled,
			predTaken:     es.PredTaken, predTarget: es.PredTarget,
		}
		p.rob = append(p.rob, e)
		p.byID[e.id] = e
	}
	// Rebuild the renaming table from the survivors; behaviourally identical
	// to the live table (see the State doc comment).
	p.rat = [isa.NumRegs]ratEntry{}
	for _, e := range p.rob {
		if e.instr.WritesReg() {
			p.rat[e.instr.Dst] = ratEntry{producer: e.id, valid: true}
		}
	}
	if p.predictor == nil {
		p.predictor = make(map[int]uint8, len(st.Predictor))
	} else {
		clear(p.predictor)
	}
	for _, e := range st.Predictor {
		p.predictor[e.PC] = e.Counter
	}
	p.Stats.RestoreState(st.Stats)
	return nil
}
