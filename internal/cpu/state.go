package cpu

import (
	"fmt"
	"sort"

	"mcmsim/internal/isa"
	"mcmsim/internal/stats"
)

// PredictorState is one trained branch-predictor entry (pc -> 2-bit
// counter), listed in ascending pc order for deterministic encoding.
type PredictorState struct {
	PC      int
	Counter uint8
}

// State is the serializable processor state at quiescence: the
// architectural registers, the fetch/halt bookkeeping, the instruction-ID
// counter (ROB ids persist across program phases and tag the LSU's
// entries), the trained predictor, and the statistics. The reorder buffer
// itself is empty on a halted processor, and the register-alias table needs
// no capture: a RAT entry whose producer has committed is treated as
// invalid by operand lookup (readReg falls back to the architectural
// register file), so a drained pipeline's RAT is behaviourally blank.
type State struct {
	PC            int
	FetchResumeAt uint64
	HaltFetched   bool
	Halted        bool
	HaltCycle     uint64
	NextID        uint64
	Regfile       []int64
	Predictor     []PredictorState
	Stats         stats.State
}

// Program returns the program the processor is bound to (captured by the
// machine snapshot so a restored system can rebuild the processor).
func (p *Proc) Program() *isa.Program { return p.prog }

// ExportState captures the processor state. It fails while instructions
// are in flight.
func (p *Proc) ExportState() (State, error) {
	if len(p.rob) != 0 {
		return State{}, fmt.Errorf("cpu %d: export with %d in-flight instructions", p.ID, len(p.rob))
	}
	st := State{
		PC:            p.pc,
		FetchResumeAt: p.fetchResumeAt,
		HaltFetched:   p.haltFetched,
		Halted:        p.halted,
		HaltCycle:     p.HaltCycle,
		NextID:        p.nextID,
		Regfile:       make([]int64, isa.NumRegs),
		Predictor:     make([]PredictorState, 0, len(p.predictor)),
		Stats:         p.Stats.ExportState(),
	}
	copy(st.Regfile, p.regfile[:])
	for pc, ctr := range p.predictor {
		st.Predictor = append(st.Predictor, PredictorState{PC: pc, Counter: ctr})
	}
	sort.Slice(st.Predictor, func(i, j int) bool { return st.Predictor[i].PC < st.Predictor[j].PC })
	return st, nil
}

// RestoreState replaces the processor's architectural state with the
// exported one. The processor must be idle (freshly constructed or
// halted).
func (p *Proc) RestoreState(st State) error {
	if len(p.rob) != 0 {
		return fmt.Errorf("cpu %d: restore with %d in-flight instructions", p.ID, len(p.rob))
	}
	if len(st.Regfile) != int(isa.NumRegs) {
		return fmt.Errorf("cpu %d: snapshot has %d registers, machine has %d", p.ID, len(st.Regfile), isa.NumRegs)
	}
	p.pc = st.PC
	p.fetchResumeAt = st.FetchResumeAt
	p.haltFetched = st.HaltFetched
	p.halted = st.Halted
	p.HaltCycle = st.HaltCycle
	p.nextID = st.NextID
	copy(p.regfile[:], st.Regfile)
	p.rat = [isa.NumRegs]ratEntry{}
	p.predictor = make(map[int]uint8, len(st.Predictor))
	for _, e := range st.Predictor {
		p.predictor[e.PC] = e.Counter
	}
	p.Stats.RestoreState(st.Stats)
	return nil
}
