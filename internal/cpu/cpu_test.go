package cpu_test

import (
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// run executes one single-processor program on the paper machine and
// returns the system and halt cycle.
func run(t *testing.T, build func(b *isa.Builder)) (*sim.System, uint64) {
	t.Helper()
	b := isa.NewBuilder()
	build(b)
	b.Halt()
	cfg := sim.PaperConfig()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	cycles, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, cycles
}

func TestALUOperations(t *testing.T) {
	s, _ := run(t, func(b *isa.Builder) {
		b.Li(isa.R1, 6)
		b.Li(isa.R2, 7)
		b.Add(isa.R3, isa.R1, isa.R2) // 13
		b.Sub(isa.R4, isa.R2, isa.R1) // 1
		b.Mul(isa.R5, isa.R1, isa.R2) // 42
		b.And(isa.R6, isa.R1, isa.R2) // 6
		b.Or(isa.R7, isa.R1, isa.R2)  // 7
		b.Xor(isa.R8, isa.R1, isa.R2) // 1
		b.Slt(isa.R9, isa.R1, isa.R2) // 1
		b.SltI(isa.R10, isa.R2, 3)    // 0
		b.AddI(isa.R11, isa.R3, 100)  // 113
	})
	p := s.Procs[0]
	want := map[isa.Reg]int64{
		isa.R3: 13, isa.R4: 1, isa.R5: 42, isa.R6: 6, isa.R7: 7,
		isa.R8: 1, isa.R9: 1, isa.R10: 0, isa.R11: 113,
	}
	for r, w := range want {
		if got := p.Reg(r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	s, _ := run(t, func(b *isa.Builder) {
		b.AddI(isa.R0, isa.R0, 99) // write to R0 discarded
		b.Add(isa.R1, isa.R0, isa.R0)
	})
	if s.Procs[0].Reg(isa.R0) != 0 || s.Procs[0].Reg(isa.R1) != 0 {
		t.Error("R0 must stay zero")
	}
}

func TestCountedLoopExecutes(t *testing.T) {
	s, _ := run(t, func(b *isa.Builder) {
		b.Li(isa.R1, 10) // counter
		b.Li(isa.R2, 0)  // accumulator
		b.Label("loop")
		b.AddI(isa.R2, isa.R2, 3)
		b.AddI(isa.R1, isa.R1, -1)
		b.Bnez(isa.R1, "loop")
	})
	if got := s.Procs[0].Reg(isa.R2); got != 30 {
		t.Errorf("loop accumulated %d, want 30", got)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	s, _ := run(t, func(b *isa.Builder) {
		b.Li(isa.R1, 50)
		b.Label("loop")
		b.AddI(isa.R1, isa.R1, -1)
		b.Bnez(isa.R1, "loop")
	})
	st := s.Procs[0].Stats
	correct := st.Counter("branches_correct").Value()
	wrong := st.Counter("branches_mispredicted").Value()
	if correct+wrong != 50 {
		t.Fatalf("resolved %d branches, want 50", correct+wrong)
	}
	// The 2-bit counter should mispredict only the first iterations and the
	// final exit — a handful, not dozens.
	if wrong > 5 {
		t.Errorf("predictor mispredicted %d of 50 loop branches", wrong)
	}
}

func TestMispredictSquashesWrongPathStore(t *testing.T) {
	// The not-taken path (predicted at first encounter) stores to 0x500;
	// the branch is actually taken, so that store must never happen.
	s, _ := run(t, func(b *isa.Builder) {
		b.Li(isa.R1, 1)
		b.Bnez(isa.R1, "taken")
		b.Li(isa.R2, 99)
		b.StoreAbs(isa.R2, 0x500) // wrong path
		b.Label("taken")
		b.Li(isa.R3, 42)
		b.StoreAbs(isa.R3, 0x600)
	})
	if got := s.ReadCoherent(0x500); got != 0 {
		t.Errorf("wrong-path store escaped to memory: %d", got)
	}
	if got := s.ReadCoherent(0x600); got != 42 {
		t.Errorf("taken-path store missing: %d", got)
	}
}

func TestJumpRedirectsFetch(t *testing.T) {
	s, _ := run(t, func(b *isa.Builder) {
		b.Jmp("over")
		b.Li(isa.R1, 111) // skipped
		b.Label("over")
		b.Li(isa.R2, 222)
	})
	if s.Procs[0].Reg(isa.R1) != 0 || s.Procs[0].Reg(isa.R2) != 222 {
		t.Error("jump did not skip the intermediate instruction")
	}
}

func TestLoadUseDependency(t *testing.T) {
	// A load's value feeds an ALU op and then an address: the classic
	// pointer-chase must produce the right result.
	cfg := sim.PaperConfig()
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x100)      // = 5
	b.AddI(isa.R2, isa.R1, 1)     // 6
	b.Load(isa.R3, isa.R2, 0x200) // mem[0x206] = 77
	b.StoreAbs(isa.R3, 0x300)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	s.Preload(map[uint64]int64{0x100: 5, 0x206: 77})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadCoherent(0x300); got != 77 {
		t.Errorf("dependent chain result = %d, want 77", got)
	}
}

func TestRegisterRenamingWAW(t *testing.T) {
	// Two writes to the same register with an interleaved reader: the
	// reader must see the first value, the final state the second.
	cfg := sim.PaperConfig()
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x100)  // slow miss = 10
	b.AddI(isa.R2, isa.R1, 0) // reads first R1
	b.Li(isa.R1, 5)           // overwrites R1 quickly
	b.StoreAbs(isa.R2, 0x300)
	b.StoreAbs(isa.R1, 0x310)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	s.Preload(map[uint64]int64{0x100: 10})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadCoherent(0x300); got != 10 {
		t.Errorf("anti-dependent reader saw %d, want 10", got)
	}
	if got := s.ReadCoherent(0x310); got != 5 {
		t.Errorf("final R1 = %d, want 5", got)
	}
}

func TestROBSizeBoundsLookahead(t *testing.T) {
	// With ROB size 2, two long-latency loads cannot overlap even with
	// speculation (no room to hold both); with a large ROB they do.
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.LoadAbs(isa.R1, 0x100)
		b.LoadAbs(isa.R2, 0x200)
		b.Halt()
		return b.Build()
	}
	cycles := func(robSize int) uint64 {
		cfg := sim.PaperConfig()
		cfg.CPU.ROBSize = robSize
		cfg.Tech = core.Technique{SpecLoad: true}
		c, err := sim.RunProgram(cfg, []*isa.Program{prog()})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	small, big := cycles(1), cycles(8)
	if big >= small {
		t.Errorf("bigger window not faster: rob1=%d rob8=%d", small, big)
	}
	if small < 200 {
		t.Errorf("rob=1 should serialize the two misses: %d cycles", small)
	}
	if big > 110 {
		t.Errorf("rob=8 should overlap the two misses: %d cycles", big)
	}
}

func TestHaltWaitsForDrain(t *testing.T) {
	// A store issued under RC retires from the ROB before completing; the
	// halt must still wait for it to perform.
	cfg := sim.PaperConfig()
	cfg.Model = core.RC
	b := isa.NewBuilder()
	b.Li(isa.R1, 9)
	b.StoreAbs(isa.R1, 0x100)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	cycles, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles < 100 {
		t.Errorf("halt retired before the store performed: %d cycles", cycles)
	}
	if got := s.ReadCoherent(0x100); got != 9 {
		t.Errorf("store lost: %d", got)
	}
}

func TestROBSnapshotShowsPending(t *testing.T) {
	cfg := sim.PaperConfig()
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x100)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	s.Step()
	snap := s.Procs[0].ROBSnapshot()
	if len(snap) == 0 {
		t.Fatal("ROB empty after decode cycle")
	}
	if snap[0] == "" {
		t.Error("empty mnemonic")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Procs[0].ROBSnapshot()) != 0 {
		t.Error("ROB not empty after halt")
	}
}
