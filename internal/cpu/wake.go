package cpu

import "mcmsim/internal/isa"

// This file is the processor's quiescence interface for the simulator's
// idle-cycle fast-forward scheduler (sim.System). NextWake must answer,
// without mutating any pipeline state: would TickFrontend, TickExecute or
// TickRetire change anything at cycle `now`, and if not, at which future
// cycle could they? Every condition below mirrors the corresponding tick's
// gate exactly; a verdict that is too optimistic would skip a cycle the
// dense loop would have used and silently change cycle counts, so when in
// doubt the answer is "busy now" (which merely costs a dense step).

// NextWake reports the next cycle at which the processor can make progress
// on its own (ok=false when it is fully event-driven or halted: it then
// wakes only via LSU/cache callbacks, which the simulator accounts for
// through the other components' wake times).
func (p *Proc) NextWake(now uint64) (uint64, bool) {
	if p.halted {
		return 0, false
	}
	wake := uint64(0)
	ok := false

	// Frontend: decoding proceeds whenever there is ROB space and the fetch
	// stage is not serving a redirect penalty.
	if !p.haltFetched && len(p.rob) < p.cfg.ROBSize {
		if now >= p.fetchResumeAt {
			return now, true
		}
		wake, ok = p.fetchResumeAt, true
	}

	// Execute: an entry whose operands just became available makes progress
	// this cycle (operand capture for memory ops, ALU/branch scheduling for
	// the rest); an already-scheduled ALU/branch op wakes at its execAt.
	for _, e := range p.rob {
		if e.isMem {
			if (!e.baseSent && p.operandReady(&e.src)) ||
				(!e.dataSent && p.operandReady(&e.src2)) {
				return now, true
			}
			continue
		}
		if e.executed {
			continue
		}
		if !p.operandReady(&e.src) || !p.operandReady(&e.src2) {
			continue
		}
		if !e.execSet || e.execAt <= now {
			return now, true
		}
		if !ok || e.execAt < wake {
			wake, ok = e.execAt, true
		}
	}

	// Retire: the head makes progress if it still has to signal the store
	// buffer or if it can retire. A halt retires only once it is alone in
	// the buffer and the LSU drained (TickRetire's extra gate).
	if len(p.rob) > 0 {
		e := p.rob[0]
		in := e.instr
		if in.Op == isa.OpHalt {
			if len(p.rob) == 1 && p.lsu.Drained() {
				return now, true
			}
		} else {
			if e.isMem && (in.IsStore() || in.Op == isa.OpRMW) && !e.storeSignaled {
				return now, true
			}
			if p.canRetire(e) {
				return now, true
			}
		}
	}
	return wake, ok
}

// operandReady reports whether resolve would succeed for o, without the
// mutation (NextWake must leave operand state untouched so the dense and
// fast-forward schedules stay identical).
func (p *Proc) operandReady(o *operand) bool {
	if o.ready {
		return true
	}
	e := p.byID[o.producer]
	if e == nil {
		return true // producer retired; register file holds the value
	}
	_, ready := producerValue(e)
	return ready
}
