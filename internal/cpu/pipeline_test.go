package cpu_test

import (
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// TestRealisticConfigLoop runs a dependence chain and a loop on the
// realistic 4-wide machine: nonzero ALU/branch latencies, mispredict and
// rollback penalties, 4-word lines. The result must match the abstract
// paper machine — timing knobs must never change architectural state.
func TestRealisticConfigLoop(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R1, 10)
	b.Li(isa.R2, 0)
	b.Label("loop")
	b.AddI(isa.R2, isa.R2, 7)
	b.AddI(isa.R1, isa.R1, -1)
	b.Bnez(isa.R1, "loop")
	b.Mul(isa.R3, isa.R2, isa.R2)
	b.StoreAbs(isa.R3, 0x400)
	b.Halt()

	cfg := sim.RealisticConfig()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Procs[0].Reg(isa.R2); got != 70 {
		t.Errorf("loop accumulated %d, want 70", got)
	}
	if got := s.ReadCoherent(0x400); got != 4900 {
		t.Errorf("mem[0x400] = %d, want 4900", got)
	}
}

// TestSpeculativeSquashReexecutes drives the pipeline's speculative-load
// correction path (FlushFrom, the §4.1 reuse of the branch-misprediction
// machinery): under a relaxed model with speculative loads, a remote write
// that invalidates a speculated line must squash and re-execute the load,
// and the architectural result must still be one the model allows. The
// program is the conformance fuzzer's seed-62 reproducer, which forces a
// squash of a speculatively-issued RMW in the pf+spec configurations.
func TestSpeculativeSquashReexecutes(t *testing.T) {
	build := func() []*isa.Program {
		p0 := isa.NewBuilder()
		p0.LoadAbs(isa.R2, 0x300)
		p0.Li(isa.R1, 2)
		p0.StoreAbs(isa.R1, 0x340)
		p0.StoreAbs(isa.R2, 0xA00)
		p0.Halt()

		p1 := isa.NewBuilder()
		p1.Li(isa.R1, 3)
		p1.RMW(isa.RMWFetchAdd, isa.R2, isa.R1, isa.R0, 0x300)
		p1.Li(isa.R3, 4)
		p1.RMW(isa.RMWTestAndSet, isa.R4, isa.R3, isa.R0, 0x340)
		p1.StoreAbs(isa.R2, 0xB00)
		p1.StoreAbs(isa.R4, 0xB10)
		p1.Halt()

		p2 := isa.NewBuilder()
		p2.LoadAbs(isa.R2, 0x380)
		p2.LoadAbs(isa.R3, 0x340)
		p2.StoreAbs(isa.R2, 0xC00)
		p2.StoreAbs(isa.R3, 0xC10)
		p2.Halt()
		return []*isa.Program{p0.Build(), p1.Build(), p2.Build()}
	}

	var flushes uint64
	for _, m := range []core.Model{core.WC, core.RCsc, core.RC} {
		cfg := sim.PaperConfig()
		cfg.Procs = 3
		cfg.Model = m
		cfg.Tech = core.Technique{SpecLoad: true, ReissueOpt: true}
		s := sim.New(cfg, build())
		if _, err := s.Run(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// The RMW on 0x340 and P0's store race; whoever loses observes the
		// other. Check fetch-add atomicity: 0x300 must end at exactly 3.
		if got := s.ReadCoherent(0x300); got != 3 {
			t.Errorf("%v: fetch-add result %d, want 3", m, got)
		}
		// P1's test-and-set observed either 0 or P0's store value 2.
		if got := s.ReadCoherent(0xB10); got != 0 && got != 2 {
			t.Errorf("%v: TAS old value %d, want 0 or 2", m, got)
		}
		for _, p := range s.Procs {
			flushes += p.Stats.Counter("spec_flushes").Value()
		}
	}
	if flushes == 0 {
		t.Error("no speculative flush occurred in any model; the squash path went unexercised")
	}
}

// TestFlushRestoresRegisterState checks that a speculative squash rebuilds
// the register alias table correctly: instructions re-fetched after the
// flush must see the committed values of their sources, not values produced
// by squashed wrong-path entries.
func TestFlushRestoresRegisterState(t *testing.T) {
	// P1 speculatively loads flag (0x340) before its miss on 0x300
	// completes; P0's store to 0x340 invalidates the speculated line,
	// forcing a squash. The dependent AddI must then use the re-executed
	// load's value.
	p0 := isa.NewBuilder()
	p0.Li(isa.R1, 50)
	p0.StoreAbs(isa.R1, 0x340)
	p0.Halt()

	p1 := isa.NewBuilder()
	p1.LoadAbs(isa.R2, 0x300) // long miss the spec load overlaps
	p1.LoadAbs(isa.R3, 0x340) // speculated past the miss
	p1.AddI(isa.R4, isa.R3, 1)
	p1.StoreAbs(isa.R4, 0xB00)
	p1.Halt()

	cfg := sim.PaperConfig()
	cfg.Procs = 2
	cfg.Model = core.SC
	cfg.Tech = core.Technique{SpecLoad: true}
	s := sim.New(cfg, []*isa.Program{p0.Build(), p1.Build()})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := s.ReadCoherent(0xB00)
	want := s.Procs[1].Reg(isa.R3) + 1
	if got != want {
		t.Errorf("dependent of squashed load stored %d, want R3+1 = %d", got, want)
	}
	if got != 1 && got != 51 {
		t.Errorf("observed flag+1 = %d, want 1 or 51", got)
	}
}

// TestROBIntrospection covers the diagnostic surface: stepping a system by
// hand and inspecting the reorder buffer mid-flight.
func TestROBIntrospection(t *testing.T) {
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x300) // a miss keeps the ROB occupied for ~100 cycles
	b.AddI(isa.R2, isa.R1, 1)
	b.Halt()
	s := sim.New(sim.PaperConfig(), []*isa.Program{b.Build()})
	p := s.Procs[0]
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if n := p.ROBLen(); n == 0 {
		t.Fatal("ROB empty while a miss is outstanding")
	}
	snap := p.ROBSnapshot()
	if len(snap) != p.ROBLen() {
		t.Fatalf("snapshot has %d entries, ROBLen %d", len(snap), p.ROBLen())
	}
	id, mnemonic, retirable := p.DebugHead()
	if mnemonic == "" || mnemonic != snap[0] {
		t.Errorf("head mnemonic %q, snapshot head %q", mnemonic, snap[0])
	}
	if retirable {
		t.Errorf("head (id %d, %s) retirable while its miss is in flight", id, mnemonic)
	}
	for !s.Done() {
		s.Step()
	}
	if p.ROBLen() != 0 {
		t.Error("ROB not drained at halt")
	}
	if _, _, ok := p.DebugHead(); ok {
		t.Error("DebugHead reports a retirable head on an empty ROB")
	}
}
