package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a named group of rows — one experiment's result set. The
// formatters below render a report of one or more tables; cmd/sweep, the
// benchmarks and the determinism tests all share them, so every consumer
// sees byte-identical output for identical rows.
type Table struct {
	Name string `json:"experiment"`
	Rows []Row  `json:"rows"`
}

// Formats accepted by WriteReport.
const (
	FormatTable = "table"
	FormatJSON  = "json"
	FormatCSV   = "csv"
)

// CheckFormat reports whether WriteReport accepts the format. Callers that
// run expensive jobs before rendering should check up front so a typo fails
// before the work, not after.
func CheckFormat(format string) error {
	switch format {
	case FormatTable, "", FormatJSON, FormatCSV:
		return nil
	}
	return fmt.Errorf("runner: unknown format %q (want table, json or csv)", format)
}

// WriteReport renders the tables in the requested format. Output depends
// only on the table contents: label and extra columns are emitted in sorted
// order and rows in slice order, so a report is deterministic whenever the
// rows are.
func WriteReport(w io.Writer, format string, tables []Table) error {
	if err := CheckFormat(format); err != nil {
		return err
	}
	switch format {
	case FormatJSON:
		return writeJSON(w, tables)
	case FormatCSV:
		return writeCSV(w, tables)
	default:
		return writeTables(w, tables)
	}
}

// labelColumns returns the union of label (or extra) keys over rows, sorted.
func labelColumns(rows []Row) (labels, extras []string) {
	ls := map[string]bool{}
	xs := map[string]bool{}
	for _, r := range rows {
		for k := range r.Labels {
			ls[k] = true
		}
		for k := range r.Extra {
			xs[k] = true
		}
	}
	return sortedKeys(ls), sortedKeys(xs)
}

// writeTables renders each table as an aligned text table under a
// "== name ==" heading (the historical cmd/sweep format).
func writeTables(w io.Writer, tables []Table) error {
	for _, t := range tables {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Name); err != nil {
			return err
		}
		if err := WriteTable(w, t.Rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders one row set as an aligned table with a stable column
// order: sorted label columns, then cycles, then sorted extra columns.
func WriteTable(w io.Writer, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	labels, extras := labelColumns(rows)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := append(append([]string{}, labels...), "cycles")
	header = append(header, extras...)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		parts := make([]string, 0, len(header))
		for _, c := range labels {
			parts = append(parts, r.Labels[c])
		}
		parts = append(parts, fmt.Sprint(r.Cycles))
		for _, x := range extras {
			parts = append(parts, fmt.Sprintf("%.4f", r.Extra[x]))
		}
		fmt.Fprintln(tw, strings.Join(parts, "\t"))
	}
	return tw.Flush()
}

// writeJSON emits the tables as an indented JSON array. Go marshals maps
// with sorted keys, so the encoding is deterministic.
func writeJSON(w io.Writer, tables []Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}

// writeCSV emits one flat CSV: an experiment column, the union of all label
// columns, cycles, and the union of all extra columns. Cells a row does not
// define are empty, which keeps heterogeneous experiments in one archive
// file without inventing values.
func writeCSV(w io.Writer, tables []Table) error {
	var all []Row
	for _, t := range tables {
		all = append(all, t.Rows...)
	}
	labels, extras := labelColumns(all)
	cw := csv.NewWriter(w)
	header := append([]string{"experiment"}, labels...)
	header = append(header, "cycles")
	header = append(header, extras...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range tables {
		for _, r := range t.Rows {
			rec := make([]string, 0, len(header))
			rec = append(rec, t.Name)
			for _, c := range labels {
				rec = append(rec, r.Labels[c])
			}
			rec = append(rec, fmt.Sprint(r.Cycles))
			for _, x := range extras {
				if v, ok := r.Extra[x]; ok {
					rec = append(rec, fmt.Sprintf("%.4f", v))
				} else {
					rec = append(rec, "")
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
