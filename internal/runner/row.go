package runner

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one measurement produced by a job: a labelled configuration and
// its simulated cycle count plus optional derived rates. It is the common
// currency between the experiment enumerators (internal/experiments), the
// execution engine (this package) and the output formatters.
type Row struct {
	Labels map[string]string  `json:"labels"`
	Cycles uint64             `json:"cycles"`
	Extra  map[string]float64 `json:"extra,omitempty"`
}

// String renders the row with its label and extra keys in sorted order, so
// logging a row is as deterministic as the simulation that produced it.
func (r Row) String() string {
	var b strings.Builder
	for _, k := range sortedKeys(r.Labels) {
		fmt.Fprintf(&b, "%s=%s ", k, r.Labels[k])
	}
	fmt.Fprintf(&b, "cycles=%d", r.Cycles)
	for _, k := range sortedKeys(r.Extra) {
		fmt.Fprintf(&b, " %s=%.4f", k, r.Extra[k])
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
