package runner

import (
	"fmt"
	"sort"
	"strings"

	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// WarmupKey renders a deterministic, conservative fingerprint of a warmup
// declaration: the complete machine configuration the warmup runs under,
// the warmup programs, and the memory preload. Two declarations with equal
// keys simulate to identical quiescent machines, because the simulator is
// deterministic and the key covers every input New/Preload/Run consume.
// The key deliberately over-distinguishes — any config field difference
// splits the key even if it could not affect the warmup — because a
// duplicate warmup only costs time, while a wrong share would corrupt the
// measurement.
func WarmupKey(cfg sim.Config, progs []*isa.Program, preload map[uint64]int64) string {
	var b strings.Builder
	// The config's only map field is listed sorted; the rest of the struct
	// (plain values and nested plain structs) prints deterministically.
	rmw := make([]uint64, 0, len(cfg.UncachedRMW))
	for a, on := range cfg.UncachedRMW {
		if on {
			rmw = append(rmw, a)
		}
	}
	sort.Slice(rmw, func(i, j int) bool { return rmw[i] < rmw[j] })
	flat := cfg
	flat.UncachedRMW = nil
	fmt.Fprintf(&b, "cfg:%+v rmw:%v\n", flat, rmw)
	for i, p := range progs {
		fmt.Fprintf(&b, "prog%d:%v\n", i, p.Instrs)
	}
	addrs := make([]uint64, 0, len(preload))
	for a := range preload {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&b, "pre:%d=%d\n", a, preload[a])
	}
	return b.String()
}
