// Package runner executes independent simulations in parallel without
// giving up the repository's determinism guarantee.
//
// Every experiment in this repository is a sweep: a nested loop over
// configurations (model x technique, miss latency, sharing fraction, ...)
// where each iteration builds a fresh machine, runs it to completion and
// records one measurement. The simulations are single-goroutine and share
// no mutable state, so the sweep is embarrassingly parallel at the job
// level — the same run-level parallelism production architectural
// simulators use, with each individual simulation kept strictly
// deterministic.
//
// The package splits a sweep into enumeration and execution:
//
//   - The experiment code enumerates []Job values instead of executing its
//     loop bodies inline. A Job carries a name, an optional Configure step
//     (assemble the sim.System, including warmup runs) and a Run step
//     (drive it, extract a Row).
//   - Run executes the job list on a bounded worker pool (Options.Workers,
//     default runtime.NumCPU()) and returns results in job order
//     regardless of completion order, so a parallel sweep yields exactly
//     the rows, in exactly the order, of the serial one.
//
// Failure containment: a panic inside a job is recovered into that job's
// Result.Err (with stack) and the pool keeps draining; an error in
// Configure or Run likewise stays with its job. Rows collapses results
// into rows, surfacing the first failure tagged with the job's name.
//
// Usage:
//
//	jobs := experiments.EqualizationJobs(3, 7)
//	rows, err := runner.Execute(jobs, 8) // 8 workers
//
// Progress (jobs done / total, per-job wall time and simulated cycles) is
// observable via Options.OnProgress; cmd/sweep prints it to stderr so the
// result tables on stdout stay byte-identical for every worker count.
//
// The package also owns the measurement Row type and the report
// formatters (WriteReport: table, json, csv) shared by cmd/sweep, the
// benchmarks and the determinism regression tests.
package runner
