package runner

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTables() []Table {
	return []Table{
		{
			Name: "latency",
			Rows: []Row{
				{Labels: map[string]string{"model": "SC", "miss": "100"}, Cycles: 24363},
				{Labels: map[string]string{"model": "RC", "miss": "100"}, Cycles: 14148},
			},
		},
		{
			Name: "contention",
			Rows: []Row{
				{Labels: map[string]string{"share": "0.40"}, Cycles: 10102,
					Extra: map[string]float64{"squash_rate": 0.086}},
			},
		},
	}
}

func render(t *testing.T, format string) string {
	t.Helper()
	var b strings.Builder
	if err := WriteReport(&b, format, sampleTables()); err != nil {
		t.Fatalf("WriteReport(%s): %v", format, err)
	}
	return b.String()
}

func TestWriteTableFormat(t *testing.T) {
	out := render(t, FormatTable)
	for _, want := range []string{"== latency ==", "miss  model  cycles", "100   SC     24363", "== contention ==", "squash_rate", "0.0860"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONFormat(t *testing.T) {
	out := render(t, FormatJSON)
	var decoded []Table
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Name != "latency" || decoded[1].Rows[0].Cycles != 10102 {
		t.Errorf("JSON round trip mangled tables: %+v", decoded)
	}
	if decoded[0].Rows[0].Labels["model"] != "SC" {
		t.Errorf("labels lost in JSON: %+v", decoded[0].Rows[0])
	}
}

func TestWriteCSVFormat(t *testing.T) {
	out := render(t, FormatCSV)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 records, got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "experiment,miss,model,share,cycles,squash_rate" {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if lines[1] != "latency,100,SC,,24363," {
		t.Errorf("unexpected first record %q", lines[1])
	}
	if lines[3] != "contention,,,0.40,10102,0.0860" {
		t.Errorf("unexpected contention record %q", lines[3])
	}
}

func TestWriteReportUnknownFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteReport(&b, "yaml", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRowStringSorted(t *testing.T) {
	r := Row{
		Labels: map[string]string{"b": "2", "a": "1"},
		Cycles: 7,
		Extra:  map[string]float64{"z": 1, "y": 0.5},
	}
	want := "a=1 b=2 cycles=7 y=0.5000 z=1.0000"
	if got := r.String(); got != want {
		t.Errorf("Row.String() = %q, want %q", got, want)
	}
}
