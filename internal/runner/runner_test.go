package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// rowJob returns a job that sleeps and then yields a row tagged i.
func rowJob(i int, sleep time.Duration) Job {
	return Job{
		Name: fmt.Sprintf("job%d", i),
		Run: func(*sim.System) (Row, error) {
			time.Sleep(sleep)
			return Row{Labels: map[string]string{"i": fmt.Sprint(i)}, Cycles: uint64(i)}, nil
		},
	}
}

// TestOrderPreserved runs jobs whose completion order is the reverse of
// their submission order and checks the results still come back in job
// order.
func TestOrderPreserved(t *testing.T) {
	var jobs []Job
	const n = 8
	for i := 0; i < n; i++ {
		// Earlier jobs sleep longer, so later jobs finish first.
		jobs = append(jobs, rowJob(i, time.Duration(n-i)*time.Millisecond))
	}
	results := Run(jobs, Options{Workers: n})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Name != fmt.Sprintf("job%d", i) || r.Row.Cycles != uint64(i) {
			t.Errorf("result %d is %s/cycles=%d, want job%d/cycles=%d", i, r.Name, r.Row.Cycles, i, i)
		}
	}
}

// TestPanicContained checks a panicking job becomes an error result with a
// stack trace and does not disturb its neighbours.
func TestPanicContained(t *testing.T) {
	jobs := []Job{
		rowJob(0, 0),
		{Name: "boom", Run: func(*sim.System) (Row, error) { panic("kaboom") }},
		rowJob(2, 0),
	}
	results := Run(jobs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("panic not converted to an error")
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "runner_test.go") {
		t.Errorf("panic error missing message or stack: %v", err)
	}
	if _, rerr := Rows(results); rerr == nil || !strings.Contains(rerr.Error(), "boom") {
		t.Errorf("Rows should surface the failed job by name, got %v", rerr)
	}
}

// TestConfigureError checks a failing Configure is attributed to its job
// and skips Run.
func TestConfigureError(t *testing.T) {
	sentinel := errors.New("no machine")
	ran := false
	jobs := []Job{{
		Name:      "cfgfail",
		Configure: func() (*sim.System, error) { return nil, sentinel },
		Run: func(*sim.System) (Row, error) {
			ran = true
			return Row{}, nil
		},
	}}
	results := Run(jobs, Options{Workers: 1})
	if !errors.Is(results[0].Err, sentinel) {
		t.Errorf("Configure error lost: %v", results[0].Err)
	}
	if ran {
		t.Error("Run executed after Configure failed")
	}
}

// TestProgress checks the progress callback fires exactly once per job
// with a monotonically increasing done count.
func TestProgress(t *testing.T) {
	var jobs []Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, rowJob(i, time.Millisecond))
	}
	seen := map[string]int{}
	lastDone := 0
	Run(jobs, Options{Workers: 3, OnProgress: func(p Progress) {
		// OnProgress calls are serialized by the collector, so plain
		// (non-atomic) state is safe here; the race detector verifies.
		seen[p.Name]++
		if p.Done != lastDone+1 || p.Total != len(jobs) {
			t.Errorf("progress done=%d total=%d after done=%d", p.Done, p.Total, lastDone)
		}
		lastDone = p.Done
	}})
	if len(seen) != len(jobs) {
		t.Fatalf("progress saw %d distinct jobs, want %d", len(seen), len(jobs))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("job %s reported %d times", name, n)
		}
	}
}

// TestEmptyAndDefaults covers the edge cases: no jobs, zero/negative
// worker counts, more workers than jobs.
func TestEmptyAndDefaults(t *testing.T) {
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Errorf("empty job list produced %d results", len(got))
	}
	for _, workers := range []int{-1, 0, 1, 100} {
		results := Run([]Job{rowJob(0, 0)}, Options{Workers: workers})
		if results[0].Err != nil || results[0].Row.Cycles != 0 {
			t.Errorf("workers=%d: unexpected result %+v", workers, results[0])
		}
	}
}

// example1Job builds the paper's Example 1 producer under SC with the given
// technique set — a real end-to-end simulation used to prove worker
// isolation under the race detector.
func example1Job(name string, tech core.Technique) Job {
	return Job{
		Name: name,
		Configure: func() (*sim.System, error) {
			b := isa.NewBuilder()
			b.Li(isa.R2, 1)
			b.Lock(isa.R1, 0x100)
			b.StoreAbs(isa.R2, 0x110)
			b.StoreAbs(isa.R2, 0x120)
			b.Unlock(0x100)
			b.Halt()
			cfg := sim.PaperConfig()
			cfg.Model = core.SC
			cfg.Tech = tech
			return sim.New(cfg, []*isa.Program{b.Build()}), nil
		},
		Run: func(s *sim.System) (Row, error) {
			cycles, err := s.Run()
			if err != nil {
				return Row{}, err
			}
			return Row{Labels: map[string]string{"tech": tech.String()}, Cycles: cycles}, nil
		},
	}
}

// TestParallelMatchesSerial runs a grid of real simulations serially and
// on a saturated pool and requires identical results — the determinism
// contract the sweeps rely on. Run under -race this also proves the
// workers share no simulator state.
func TestParallelMatchesSerial(t *testing.T) {
	var jobs []Job
	techs := []core.Technique{
		{},
		{Prefetch: true},
		{SpecLoad: true, ReissueOpt: true},
		{Prefetch: true, SpecLoad: true, ReissueOpt: true},
	}
	for rep := 0; rep < 4; rep++ {
		for _, tech := range techs {
			jobs = append(jobs, example1Job(fmt.Sprintf("ex1/%d/%v", rep, tech), tech))
		}
	}
	serial, err := Rows(Run(jobs, Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Rows(Run(jobs, Options{Workers: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel run diverged from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
	// The simulated counts themselves are pinned by the paper: 301
	// conventional, 103 with prefetch.
	if serial[0].Cycles != 301 {
		t.Errorf("conventional SC Example 1 = %d cycles, want 301", serial[0].Cycles)
	}
	if serial[1].Cycles != 103 {
		t.Errorf("prefetch SC Example 1 = %d cycles, want 103", serial[1].Cycles)
	}
}
