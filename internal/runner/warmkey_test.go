package runner

import (
	"math/rand"
	"testing"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// warmProgs is a small fixed warmup workload for the key tests.
func warmProgs() []*isa.Program {
	p0 := isa.NewBuilder()
	p0.StoreAbs(0, 1)
	p0.LoadAbs(1, 8)
	p0.Halt()
	p1 := isa.NewBuilder()
	p1.LoadAbs(0, 0)
	p1.StoreAbs(8, 2)
	p1.Halt()
	return []*isa.Program{p0.Build(), p1.Build()}
}

func baseWarmCfg() sim.Config {
	cfg := sim.PaperConfig()
	cfg.Procs = 2
	return cfg
}

// TestWarmupKeyIgnoresProcessGlobals pins the property the farm's fleet-
// wide dedup depends on: the key is a pure function of (config, programs,
// preload). Execution-strategy knobs that live outside sim.Config — the
// worker-pool width, the shard engine and its worker count, the forced
// dense loop, profiling — cannot reach it, so a key computed on any fleet
// member names the same warmed machine on every other, whatever flags
// each process runs under.
func TestWarmupKeyIgnoresProcessGlobals(t *testing.T) {
	cfg, progs := baseWarmCfg(), warmProgs()
	pre := map[uint64]int64{16: 3}
	before := WarmupKey(cfg, progs, pre)

	savedPar, savedEngine, savedDense := sim.ParWorkers, sim.ParEngine, sim.ForceDense
	defer func() {
		sim.ParWorkers, sim.ParEngine, sim.ForceDense = savedPar, savedEngine, savedDense
	}()
	sim.ParWorkers = 8
	sim.ParEngine = "optimistic"
	sim.ForceDense = !savedDense
	if after := WarmupKey(cfg, progs, pre); after != before {
		t.Errorf("key depends on process globals:\nbefore: %q\nafter:  %q", before, after)
	}
}

// TestWarmupKeySplitsArchitecturalFields asserts every machine-shaping
// config field splits the key: sharing a warmed snapshot across any of
// these would hand a job a machine it did not describe.
func TestWarmupKeySplitsArchitecturalFields(t *testing.T) {
	progs := warmProgs()
	base := WarmupKey(baseWarmCfg(), progs, nil)

	mutations := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"protocol", func(c *sim.Config) { c.Protocol = coherence.ProtoMESI }},
		{"topology", func(c *sim.Config) { c.Topo = "mesh:2x1"; c.HopLatency = 10 }},
		{"dir-pointers", func(c *sim.Config) { c.DirPointers = 4 }},
		{"model", func(c *sim.Config) { c.Model = core.RC }},
		{"technique", func(c *sim.Config) { c.Tech.Prefetch = true }},
		{"miss-latency", func(c *sim.Config) { c.MemLatency += 10 }},
		{"line-size", func(c *sim.Config) { c.LineWords *= 2 }},
		{"mem-modules", func(c *sim.Config) { c.MemModules = 2 }},
		{"dir-bandwidth", func(c *sim.Config) { c.DirBandwidth = 1 }},
		{"procs", func(c *sim.Config) { c.Procs = 3 }},
		{"uncached-rmw", func(c *sim.Config) { c.UncachedRMW = map[uint64]bool{64: true} }},
		{"dense-loop", func(c *sim.Config) { c.DenseLoop = true }},
	}
	for _, m := range mutations {
		cfg := baseWarmCfg()
		m.mut(&cfg)
		if WarmupKey(cfg, progs, nil) == base {
			t.Errorf("%s change does not split the warmup key", m.name)
		}
	}
}

// TestWarmupKeyCanonicalForm asserts the key's canonicalization: Go map
// fields (UncachedRMW, preload) must key by content, not iteration or
// insertion order, and disabled UncachedRMW entries must not count.
func TestWarmupKeyCanonicalForm(t *testing.T) {
	progs := warmProgs()

	// Same RMW set, adversarial insertion orders, plus a disabled entry.
	addrs := []uint64{8, 64, 16, 512, 128, 0, 1024, 32}
	cfgA := baseWarmCfg()
	cfgA.UncachedRMW = map[uint64]bool{}
	for _, a := range addrs {
		cfgA.UncachedRMW[a] = true
	}
	cfgB := baseWarmCfg()
	cfgB.UncachedRMW = map[uint64]bool{2048: false} // disabled: no effect
	for i := len(addrs) - 1; i >= 0; i-- {
		cfgB.UncachedRMW[addrs[i]] = true
	}
	if WarmupKey(cfgA, progs, nil) != WarmupKey(cfgB, progs, nil) {
		t.Error("UncachedRMW key depends on insertion order or disabled entries")
	}

	// Same preload content, different insertion orders.
	preA, preB := map[uint64]int64{}, map[uint64]int64{}
	for i, a := range addrs {
		preA[a] = int64(i)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		preB[addrs[i]] = int64(i)
	}
	if WarmupKey(cfgA, progs, preA) != WarmupKey(cfgA, progs, preB) {
		t.Error("preload key depends on insertion order")
	}
	if WarmupKey(cfgA, progs, preA) == WarmupKey(cfgA, progs, nil) {
		t.Error("preload does not reach the key")
	}

	// Different programs split; identical program content agrees even
	// across distinct builds.
	again := warmProgs()
	if WarmupKey(cfgA, again, nil) != WarmupKey(cfgA, warmProgs(), nil) {
		t.Error("identical programs disagree")
	}
	other := isa.NewBuilder()
	other.StoreAbs(0, 99)
	other.Halt()
	if WarmupKey(cfgA, []*isa.Program{other.Build(), again[1]}, nil) == WarmupKey(cfgA, again, nil) {
		t.Error("different programs share a key")
	}
}

// TestWarmupKeyDeterministic is the property sweep: random preloads and
// RMW sets, built twice in independent random orders, must agree — 200
// trials of the map-canonicalization property with adversarial shapes.
func TestWarmupKeyDeterministic(t *testing.T) {
	progs := warmProgs()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		addrs := make([]uint64, n)
		vals := make([]int64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(256)) * 8
			vals[i] = int64(rng.Intn(100))
		}
		build := func(order []int) (sim.Config, map[uint64]int64) {
			cfg := baseWarmCfg()
			cfg.UncachedRMW = map[uint64]bool{}
			pre := map[uint64]int64{}
			for _, i := range order {
				cfg.UncachedRMW[addrs[i]] = true
				pre[addrs[i]] = vals[i]
			}
			return cfg, pre
		}
		fwd := rng.Perm(n)
		rev := rng.Perm(n)
		// Duplicate addrs can map to different values depending on order;
		// canonicalize the expectation by last-write like the maps do.
		want := map[uint64]int64{}
		for _, i := range fwd {
			want[addrs[i]] = vals[i]
		}
		got := map[uint64]int64{}
		for _, i := range rev {
			got[addrs[i]] = vals[i]
		}
		if len(want) != len(got) {
			continue
		}
		same := true
		for a, v := range want {
			if got[a] != v {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		cfgA, preA := build(fwd)
		cfgB, preB := build(rev)
		if WarmupKey(cfgA, progs, preA) != WarmupKey(cfgB, progs, preB) {
			t.Fatalf("trial %d: identical content, different keys", trial)
		}
	}
}
