package runner

import (
	"sync"

	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"
)

// WarmupSpec declares a job's warmup phase so the pool can deduplicate it:
// jobs whose Keys are equal share one simulated warmup, cloned through a
// machine snapshot for every other job.
type WarmupSpec struct {
	// Key fingerprints everything that can influence the warmed machine:
	// the complete configuration the warmup runs under, the warmup
	// programs, preloads and scheduled writes. Jobs may share a key only
	// when their warmed machines are identical; conservative keys (extra
	// distinctions) cost duplicate warmups, never correctness.
	Key string

	// Build constructs the machine and runs its warmup to quiescence.
	Build func() (*sim.System, error)

	// Finish turns the warmed machine into the measured configuration —
	// typically switching the measured technique and loading the measured
	// programs. It runs per job, on the job's own clone. May be nil.
	Finish func(s *sim.System) error
}

// WarmupSource provides warmed machines by key. The in-process WarmupCache
// is one implementation; the farm worker's wire source (fetch the snapshot
// from the coordinator, or build it once for the whole fleet and upload
// it) is another. Implementations must return a snapshot every consumer
// can restore privately, and must call build at most once per key across
// whatever population they deduplicate over.
type WarmupSource interface {
	// Machine returns the warmup snapshot for key, invoking build to
	// simulate the warmup if no other consumer has produced it yet.
	Machine(key string, build func() (*sim.System, error)) (*snapshot.Machine, error)
}

// WarmupCache memoizes warmup phases across the jobs of one Run by key:
// the first job with a given key simulates the warmup and snapshots it;
// every job (including the builder) then restores a private clone from the
// snapshot, so a cached and an uncached sweep execute the measured phase
// on byte-identical machines. Safe for concurrent use by the pool's
// workers.
type WarmupCache struct {
	mu      sync.Mutex
	entries map[string]*warmEntry

	hits, misses uint64
}

type warmEntry struct {
	ready chan struct{} // closed once snap/err are set
	snap  *snapshot.Machine
	err   error
}

// NewWarmupCache returns an empty cache, typically shared across all jobs
// of one sweep invocation via Options.WarmupCache.
func NewWarmupCache() *WarmupCache {
	return &WarmupCache{entries: make(map[string]*warmEntry)}
}

// Stats reports how many warmup requests hit the memo versus simulating.
func (c *WarmupCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Machine returns the snapshot for a warmup key, simulating the warmup via
// build exactly once per key (other callers wait for the builder).
func (c *WarmupCache) Machine(key string, build func() (*sim.System, error)) (*snapshot.Machine, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &warmEntry{ready: make(chan struct{})}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if !ok {
		func() {
			defer close(e.ready)
			s, err := build()
			if err != nil {
				e.err = err
				return
			}
			e.snap, e.err = s.Snapshot()
		}()
	}
	<-e.ready
	return e.snap, e.err
}

// configureWarm produces the job's measured machine from its warmup spec:
// through the source when one is installed (build or reuse the snapshot,
// then restore a private clone), or by simulating the warmup directly when
// not. Finish then runs on the job's machine either way.
func configureWarm(w *WarmupSpec, src WarmupSource) (*sim.System, error) {
	var s *sim.System
	if src == nil {
		var err error
		if s, err = w.Build(); err != nil {
			return nil, err
		}
	} else {
		snap, err := src.Machine(w.Key, w.Build)
		if err != nil {
			return nil, err
		}
		if s, err = sim.Restore(snap); err != nil {
			return nil, err
		}
	}
	if w.Finish != nil {
		if err := w.Finish(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}
