package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"mcmsim/internal/sim"
)

// Job is one independent simulation to execute: a human-readable name, an
// optional Configure step that assembles (and possibly warms up) the
// machine, and a Run step that drives it and extracts the measurement.
//
// Both steps execute on the worker that picks the job up, so every worker
// constructs its own sim.System and no machine state is ever shared between
// jobs. A job must therefore not capture mutable state shared with other
// jobs; capturing configuration values (model, technique, latencies, seeds)
// is the intended pattern.
type Job struct {
	// Name identifies the job in progress reports and error messages,
	// conventionally "experiment/label1/label2".
	Name string

	// Configure builds the simulated machine, including any warmup runs
	// (e.g. priming caches before the measured phase). It may be nil for
	// jobs that assemble the system inside Run; then Run receives nil.
	Configure func() (*sim.System, error)

	// Warmup, when non-nil, replaces Configure with a declared warmup the
	// pool can deduplicate: jobs with equal Warmup.Key share one simulated
	// warmup through the snapshot cache (Options.WarmupCache). Without a
	// cache the warmup is simulated per job, exactly like Configure.
	Warmup *WarmupSpec

	// Run drives the configured system to completion and returns the
	// measurement row. Exactly one of Run and Measure must be non-nil: Run
	// owns the whole measured phase (multi-phase drives, oracle checks,
	// jobs with no machine at all), which makes it opaque to the executor.
	Run func(s *sim.System) (Row, error)

	// Measure is the declarative alternative to Run for the common
	// drive-then-extract job shape: the executor drives the configured
	// machine to completion itself (s.Run() on the local pool) and then
	// calls Measure with the finished machine and its halt cycle. Because
	// the executor owns the clock, Measure jobs can be driven through
	// interval checkpoints and resumed from a mid-flight snapshot by
	// executors that support it (the sweep farm) — with identical rows,
	// since snapshot restore and RunUntil slicing are observation-
	// transparent.
	Measure func(s *sim.System, halt uint64) (Row, error)
}

// Result is the outcome of one job. Exactly one of Row/Err is meaningful:
// Err is non-nil if Configure or Run failed or panicked.
type Result struct {
	Name string
	Row  Row
	Err  error
	// Wall is the host wall-clock time the job took (configure + run).
	Wall time.Duration
}

// Progress describes one completed job, delivered to Options.OnProgress in
// completion order. Done counts completed jobs including this one.
type Progress struct {
	Done, Total int
	Name        string
	Cycles      uint64 // simulated cycles of the job's measured run
	Wall        time.Duration
	Err         error
}

// Options controls Run.
type Options struct {
	// Workers bounds the number of jobs executing concurrently.
	// Values <= 0 mean runtime.NumCPU().
	Workers int

	// OnProgress, if non-nil, is called after each job completes. Calls
	// are serialized (never concurrent) but arrive in completion order,
	// which is not deterministic; anything order-sensitive should read
	// the returned results instead.
	OnProgress func(Progress)

	// WarmupCache, if non-nil, deduplicates declared warmups (Job.Warmup)
	// across the run's jobs: each distinct key is simulated once and every
	// job restores a private machine from its snapshot. Results are
	// byte-identical with and without a cache (`make differential` gates
	// this); nil simply re-simulates each job's warmup.
	WarmupCache *WarmupCache

	// OnWorkerIdle, if non-nil, is called once by each worker goroutine
	// when it finds the job queue closed and drained — the hook cmd/sweep
	// uses to release the idle worker's CPU share into the shard engines'
	// goroutine budget (parsim.AddWorkerBudget) for the simulations still
	// running at the sweep's tail.
	OnWorkerIdle func()
}

// Run executes the jobs on a bounded worker pool and returns one Result
// per job, in job order regardless of completion order. Each simulation
// stays single-goroutine: parallelism is across jobs only. A panic inside
// a job is recovered into that job's Err; it never takes down the pool.
func Run(jobs []Job, opts Options) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var src WarmupSource
	if opts.WarmupCache != nil {
		src = opts.WarmupCache
	}
	jobCh := make(chan int)
	doneCh := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobCh {
				results[i] = RunJob(jobs[i], JobOptions{Warmups: src})
				doneCh <- i
			}
			if opts.OnWorkerIdle != nil {
				opts.OnWorkerIdle()
			}
		}()
	}
	go func() {
		for i := range jobs {
			jobCh <- i
		}
		close(jobCh)
	}()
	for done := 1; done <= len(jobs); done++ {
		i := <-doneCh
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				Done:   done,
				Total:  len(jobs),
				Name:   results[i].Name,
				Cycles: results[i].Row.Cycles,
				Wall:   results[i].Wall,
				Err:    results[i].Err,
			})
		}
	}
	return results
}

// JobOptions parameterizes RunJob for executors beyond the local pool.
// The zero value reproduces the pool's behavior exactly: warmups simulate
// in place and Measure jobs are driven by one s.Run() call.
type JobOptions struct {
	// Warmups sources declared warmups (Job.Warmup); nil simulates the
	// warmup directly on this executor.
	Warmups WarmupSource

	// Drive, if non-nil, replaces the executor's s.Run() call for Measure
	// jobs — the farm worker substitutes a RunCheckpointed drive here. It
	// must leave the machine in the exact state s.Run() would (interval
	// checkpointing qualifies; anything observable does not). Opaque Run
	// jobs ignore it.
	Drive func(s *sim.System) (uint64, error)

	// Start, if non-nil, is an already-configured machine — typically
	// restored from a mid-flight checkpoint. Configure and Warmup are
	// skipped; the job's measured phase continues on this machine. Only
	// meaningful for Measure jobs, whose measured phase is executor-driven.
	Start *sim.System
}

// RunJob executes a single job with panic containment, exactly as one of
// the pool's workers would. Exported for executors that schedule jobs
// themselves (the farm worker) but must preserve the pool's execution
// semantics byte for byte.
func RunJob(j Job, o JobOptions) (res Result) {
	start := time.Now()
	res.Name = j.Name
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	s := o.Start
	if s == nil {
		switch {
		case j.Warmup != nil:
			var err error
			if s, err = configureWarm(j.Warmup, o.Warmups); err != nil {
				res.Err = err
				return
			}
		case j.Configure != nil:
			var err error
			if s, err = j.Configure(); err != nil {
				res.Err = err
				return
			}
		}
	}
	var row Row
	var err error
	switch {
	case j.Run != nil:
		row, err = j.Run(s)
	case j.Measure != nil:
		drive := o.Drive
		if drive == nil {
			drive = func(s *sim.System) (uint64, error) { return s.Run() }
		}
		var halt uint64
		if halt, err = drive(s); err == nil {
			row, err = j.Measure(s, halt)
		}
	default:
		err = fmt.Errorf("job has neither Run nor Measure")
	}
	if err != nil {
		res.Err = err
		return
	}
	res.Row = row
	return
}

// Rows collapses results into their rows, preserving job order. The first
// failed job aborts the collapse and is returned as an error carrying the
// job's name.
func Rows(results []Result) ([]Row, error) {
	rows := make([]Row, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
		rows = append(rows, r.Row)
	}
	return rows, nil
}

// Execute is the common enumerate-then-collect path: run the jobs with the
// given worker bound and return the rows in job order.
func Execute(jobs []Job, workers int) ([]Row, error) {
	return Rows(Run(jobs, Options{Workers: workers}))
}
