package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// warmJob is a job whose warmup runs Example 1's producer and whose
// measured phase is empty; builds is incremented each time the warmup is
// actually simulated rather than served from the cache.
func warmJob(name, key string, builds *atomic.Int64) Job {
	return Job{
		Name: name,
		Warmup: &WarmupSpec{
			Key: key,
			Build: func() (*sim.System, error) {
				builds.Add(1)
				b := isa.NewBuilder()
				b.Li(isa.R2, 1)
				b.StoreAbs(isa.R2, 0x110)
				b.Halt()
				cfg := sim.PaperConfig()
				cfg.Model = core.SC
				s := sim.New(cfg, []*isa.Program{b.Build()})
				if _, err := s.Run(); err != nil {
					return nil, err
				}
				return s, nil
			},
			Finish: func(s *sim.System) error {
				b := isa.NewBuilder()
				b.LoadAbs(isa.R1, 0x110)
				b.Halt()
				s.LoadPrograms([]*isa.Program{b.Build()})
				return nil
			},
		},
		Run: func(s *sim.System) (Row, error) {
			cycles, err := s.Run()
			if err != nil {
				return Row{}, err
			}
			return Row{Labels: map[string]string{"job": name}, Cycles: cycles}, nil
		},
	}
}

// TestWarmupCacheSingleflight saturates a pool with jobs sharing two warmup
// keys and requires each key to be simulated exactly once no matter how
// many workers race for it, with every job's measurement intact. Run under
// -race this also proves the cache's synchronization.
func TestWarmupCacheSingleflight(t *testing.T) {
	var builds atomic.Int64
	var jobs []Job
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("key%d", i%2)
		jobs = append(jobs, warmJob(fmt.Sprintf("warm/%d", i), key, &builds))
	}
	cache := NewWarmupCache()
	rows, err := Rows(Run(jobs, Options{Workers: 8, WarmupCache: cache}))
	if err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("simulated %d warmups for 2 distinct keys, want 2", got)
	}
	hits, misses := cache.Stats()
	if misses != 2 || hits != 14 {
		t.Errorf("cache stats: hits=%d misses=%d, want 14/2", hits, misses)
	}
	for i, r := range rows {
		if r.Cycles == 0 || r.Cycles != rows[0].Cycles {
			t.Errorf("row %d: cycles=%d, want every job to measure the same nonzero phase (%d)", i, r.Cycles, rows[0].Cycles)
		}
	}

	// Without a cache the same jobs simulate every warmup themselves.
	builds.Store(0)
	if _, err := Rows(Run(jobs, Options{Workers: 8})); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 16 {
		t.Errorf("uncached run simulated %d warmups, want 16", got)
	}
}

// TestWarmupCacheBuildError pins the failure path: a warmup whose Build
// fails must fail every job sharing the key (the error is cached, not
// retried) without wedging waiting workers.
func TestWarmupCacheBuildError(t *testing.T) {
	sentinel := errors.New("warmup exploded")
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{
			Name: fmt.Sprintf("bad/%d", i),
			Warmup: &WarmupSpec{
				Key:    "badkey",
				Build:  func() (*sim.System, error) { return nil, sentinel },
				Finish: func(*sim.System) error { return nil },
			},
			Run: func(*sim.System) (Row, error) { return Row{}, nil },
		})
	}
	results := Run(jobs, Options{Workers: 4, WarmupCache: NewWarmupCache()})
	for _, r := range results {
		if !errors.Is(r.Err, sentinel) {
			t.Errorf("%s: err=%v, want the warmup error", r.Name, r.Err)
		}
	}
}
