package isa

import "fmt"

// Builder constructs Programs with forward-label resolution. All emit
// methods return the Builder so calls can be chained.
//
//	b := isa.NewBuilder()
//	b.Lock(isa.R1, lockAddr)
//	b.StoreAbs(valueA, isa.R2)
//	b.Unlock(lockAddr)
//	b.Halt()
//	prog := b.Build()
type Builder struct {
	instrs  []Instruction
	labels  map[string]int
	fixups  map[string][]int // label -> instruction indices needing Imm patch
	nextLbl int
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[string][]int),
	}
}

// Len returns the number of instructions emitted so far (== the PC of the
// next instruction).
func (b *Builder) Len() int { return len(b.instrs) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instruction) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// Label defines a symbolic label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

// FreshLabel returns a unique label name (not yet bound).
func (b *Builder) FreshLabel(prefix string) string {
	b.nextLbl++
	return fmt.Sprintf("%s_%d", prefix, b.nextLbl)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(Instruction{Op: OpNop}) }

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpLoad, Dst: dst, Base: base, Imm: off})
}

// LoadAbs emits dst = mem[addr] using R0 as the base register, so the
// effective address is available at decode with no register dependence.
func (b *Builder) LoadAbs(dst Reg, addr int64) *Builder {
	return b.Load(dst, R0, addr)
}

// Store emits mem[base+off] = src.
func (b *Builder) Store(src, base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpStore, Src: src, Base: base, Imm: off})
}

// StoreAbs emits mem[addr] = src with an immediate address.
func (b *Builder) StoreAbs(src Reg, addr int64) *Builder {
	return b.Store(src, R0, addr)
}

// AcquireLoad emits a synchronization read (e.g. spinning on a flag).
func (b *Builder) AcquireLoad(dst, base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpAcquire, Dst: dst, Base: base, Imm: off})
}

// AcquireLoadAbs emits a synchronization read of an absolute address.
func (b *Builder) AcquireLoadAbs(dst Reg, addr int64) *Builder {
	return b.AcquireLoad(dst, R0, addr)
}

// ReleaseStore emits a synchronization write (e.g. setting a flag).
func (b *Builder) ReleaseStore(src, base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpRelease, Src: src, Base: base, Imm: off})
}

// ReleaseStoreAbs emits a synchronization write to an absolute address.
func (b *Builder) ReleaseStoreAbs(src Reg, addr int64) *Builder {
	return b.ReleaseStore(src, R0, addr)
}

// Prefetch emits a software non-binding read prefetch of mem[base+off].
func (b *Builder) Prefetch(base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpPrefetch, Base: base, Imm: off})
}

// PrefetchAbs emits a software read prefetch of an absolute address.
func (b *Builder) PrefetchAbs(addr int64) *Builder { return b.Prefetch(R0, addr) }

// PrefetchEx emits a software read-exclusive prefetch of mem[base+off].
func (b *Builder) PrefetchEx(base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpPrefetchEx, Base: base, Imm: off})
}

// PrefetchExAbs emits a software read-exclusive prefetch of an absolute
// address.
func (b *Builder) PrefetchExAbs(addr int64) *Builder { return b.PrefetchEx(R0, addr) }

// RMW emits dst = atomic(kind, mem[base+off], src).
func (b *Builder) RMW(kind RMWKind, dst, src, base Reg, off int64) *Builder {
	return b.Emit(Instruction{Op: OpRMW, RMW: kind, Dst: dst, Src: src, Base: base, Imm: off})
}

// Add emits dst = src + src2.
func (b *Builder) Add(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpAdd, Dst: dst, Src: src, Src2: src2})
}

// AddI emits dst = src + imm.
func (b *Builder) AddI(dst, src Reg, imm int64) *Builder {
	return b.Emit(Instruction{Op: OpAddI, Dst: dst, Src: src, Imm: imm})
}

// Li emits dst = imm (encoded as addi dst, r0, imm).
func (b *Builder) Li(dst Reg, imm int64) *Builder { return b.AddI(dst, R0, imm) }

// Sub emits dst = src - src2.
func (b *Builder) Sub(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpSub, Dst: dst, Src: src, Src2: src2})
}

// Mul emits dst = src * src2.
func (b *Builder) Mul(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpMul, Dst: dst, Src: src, Src2: src2})
}

// And emits dst = src & src2.
func (b *Builder) And(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpAnd, Dst: dst, Src: src, Src2: src2})
}

// Or emits dst = src | src2.
func (b *Builder) Or(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpOr, Dst: dst, Src: src, Src2: src2})
}

// Xor emits dst = src ^ src2.
func (b *Builder) Xor(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpXor, Dst: dst, Src: src, Src2: src2})
}

// Slt emits dst = (src < src2) ? 1 : 0.
func (b *Builder) Slt(dst, src, src2 Reg) *Builder {
	return b.Emit(Instruction{Op: OpSlt, Dst: dst, Src: src, Src2: src2})
}

// SltI emits dst = (src < imm) ? 1 : 0.
func (b *Builder) SltI(dst, src Reg, imm int64) *Builder {
	return b.Emit(Instruction{Op: OpSltI, Dst: dst, Src: src, Imm: imm})
}

// Beqz emits a branch to label when src == 0.
func (b *Builder) Beqz(src Reg, label string) *Builder {
	b.fixup(label)
	return b.Emit(Instruction{Op: OpBeqz, Src: src, Imm: b.resolve(label)})
}

// Bnez emits a branch to label when src != 0.
func (b *Builder) Bnez(src Reg, label string) *Builder {
	b.fixup(label)
	return b.Emit(Instruction{Op: OpBnez, Src: src, Imm: b.resolve(label)})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixup(label)
	return b.Emit(Instruction{Op: OpJmp, Imm: b.resolve(label)})
}

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.Emit(Instruction{Op: OpHalt}) }

// Lock emits the canonical test-and-set spin lock acquire:
//
//	spin: rmw.tas tmp, r0, addr
//	      bnez    tmp, spin
//
// The RMW has acquire semantics. When the lock is free the branch falls
// through, which is the path the branch predictor assumes (the paper's
// examples assume the lock succeeds).
func (b *Builder) Lock(tmp Reg, addr int64) *Builder {
	spin := b.FreshLabel("spin")
	b.Label(spin)
	b.RMW(RMWTestAndSet, tmp, R0, R0, addr)
	b.Bnez(tmp, spin)
	return b
}

// Unlock emits the release store that frees a test-and-set lock.
func (b *Builder) Unlock(addr int64) *Builder {
	return b.ReleaseStoreAbs(R0, addr)
}

// Build resolves all labels and returns the finished Program. It panics on
// undefined labels, which indicates a bug in the workload generator.
func (b *Builder) Build() *Program {
	for label, sites := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q", label))
		}
		for _, site := range sites {
			b.instrs[site].Imm = int64(target)
		}
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	instrs := make([]Instruction, len(b.instrs))
	copy(instrs, b.instrs)
	return &Program{Instrs: instrs, Labels: labels}
}

// resolve returns the label target if already bound, else 0 (patched later).
func (b *Builder) resolve(label string) int64 {
	if t, ok := b.labels[label]; ok {
		return int64(t)
	}
	return 0
}

// fixup records that the next emitted instruction's Imm must be patched to
// the label target at Build time (covers forward references; backward
// references are patched too for uniformity).
func (b *Builder) fixup(label string) {
	b.fixups[label] = append(b.fixups[label], len(b.instrs))
}
