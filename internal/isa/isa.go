// Package isa defines the small RISC-like instruction set executed by the
// simulated processors, along with a convenience builder for constructing
// programs.
//
// The instruction set is deliberately minimal: the paper's techniques concern
// memory accesses, so the ISA provides loads, stores, synchronizing variants
// (acquire loads, release stores, atomic read-modify-writes), simple integer
// ALU operations and conditional branches. Addresses are word granular.
package isa

import "fmt"

// Reg identifies an architectural register. R0 is hardwired to zero, as in
// MIPS. There are 32 architectural registers.
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Named registers for readability in workload code.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Op enumerates instruction opcodes.
type Op uint8

// Opcode values.
const (
	OpNop Op = iota

	// Memory operations. Effective address = value(Base) + Imm.
	OpLoad    // Dst = mem[Base+Imm]
	OpStore   // mem[Base+Imm] = value(Src)
	OpAcquire // acquire load: Dst = mem[Base+Imm], synchronization read
	OpRelease // release store: mem[Base+Imm] = value(Src), synchronization write
	OpRMW     // atomic read-modify-write (acquire): Dst = old, new = f(old, Src)

	// Software prefetches (paper §6: software-controlled non-binding
	// prefetching a la Porterfield/Mowry/Gharachorloo). Non-binding and
	// non-faulting: they bring the line toward the cache and retire
	// immediately; the window is wherever the compiler put them.
	OpPrefetch   // prefetch mem[Base+Imm] shared
	OpPrefetchEx // prefetch mem[Base+Imm] exclusive

	// ALU operations: Dst = Src op Src2, or Dst = Src op Imm for *I forms.
	OpAdd
	OpAddI
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpSlt  // Dst = 1 if value(Src) < value(Src2) else 0
	OpSltI // Dst = 1 if value(Src) < Imm else 0

	// Control flow. Branch target is an absolute instruction index (Imm).
	OpBeqz // branch to Imm if value(Src) == 0
	OpBnez // branch to Imm if value(Src) != 0
	OpJmp  // unconditional jump to Imm

	// Halt stops the processor.
	OpHalt
)

// RMWKind selects the atomic operation performed by OpRMW.
type RMWKind uint8

// Atomic read-modify-write flavours.
const (
	RMWTestAndSet RMWKind = iota // old = mem; mem = 1
	RMWFetchAdd                  // old = mem; mem = old + value(Src)
	RMWSwap                      // old = mem; mem = value(Src)
)

func (k RMWKind) String() string {
	switch k {
	case RMWTestAndSet:
		return "tas"
	case RMWFetchAdd:
		return "fadd"
	case RMWSwap:
		return "swap"
	default:
		return fmt.Sprintf("rmw(%d)", uint8(k))
	}
}

// Apply computes the new memory value for the RMW given the old value and
// the source operand.
func (k RMWKind) Apply(old, src int64) int64 {
	switch k {
	case RMWTestAndSet:
		return 1
	case RMWFetchAdd:
		return old + src
	case RMWSwap:
		return src
	default:
		return old
	}
}

// Instruction is a single decoded instruction. The zero value is a Nop.
type Instruction struct {
	Op   Op
	Dst  Reg     // destination register (loads, ALU, RMW old value)
	Src  Reg     // first source (store data, ALU lhs, branch condition, RMW operand)
	Src2 Reg     // second source (ALU rhs)
	Base Reg     // base register for memory effective address
	Imm  int64   // immediate: address offset, ALU immediate, or branch target
	RMW  RMWKind // atomic flavour when Op == OpRMW
}

// IsMemory reports whether the instruction accesses memory.
func (in Instruction) IsMemory() bool {
	switch in.Op {
	case OpLoad, OpStore, OpAcquire, OpRelease, OpRMW, OpPrefetch, OpPrefetchEx:
		return true
	}
	return false
}

// IsPrefetch reports whether the instruction is a software prefetch.
func (in Instruction) IsPrefetch() bool {
	return in.Op == OpPrefetch || in.Op == OpPrefetchEx
}

// IsLoad reports whether the instruction performs a memory read that binds a
// register (OpRMW reads memory but is classified separately).
func (in Instruction) IsLoad() bool {
	return in.Op == OpLoad || in.Op == OpAcquire
}

// IsStore reports whether the instruction performs a memory write
// (OpRMW writes memory but is classified separately).
func (in Instruction) IsStore() bool {
	return in.Op == OpStore || in.Op == OpRelease
}

// IsSync reports whether the instruction is a synchronization access
// (acquire, release, or atomic read-modify-write).
func (in Instruction) IsSync() bool {
	switch in.Op {
	case OpAcquire, OpRelease, OpRMW:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a conditional branch or jump.
func (in Instruction) IsBranch() bool {
	switch in.Op {
	case OpBeqz, OpBnez, OpJmp:
		return true
	}
	return false
}

// WritesReg reports whether the instruction produces a register result.
func (in Instruction) WritesReg() bool {
	switch in.Op {
	case OpLoad, OpAcquire, OpRMW, OpAdd, OpAddI, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSlt, OpSltI:
		return in.Dst != R0
	}
	return false
}

// String renders the instruction in a compact assembly-like syntax.
func (in Instruction) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpLoad:
		return fmt.Sprintf("ld   r%d, %d(r%d)", in.Dst, in.Imm, in.Base)
	case OpStore:
		return fmt.Sprintf("st   r%d, %d(r%d)", in.Src, in.Imm, in.Base)
	case OpAcquire:
		return fmt.Sprintf("ld.acq r%d, %d(r%d)", in.Dst, in.Imm, in.Base)
	case OpRelease:
		return fmt.Sprintf("st.rel r%d, %d(r%d)", in.Src, in.Imm, in.Base)
	case OpRMW:
		return fmt.Sprintf("rmw.%s r%d, r%d, %d(r%d)", in.RMW, in.Dst, in.Src, in.Imm, in.Base)
	case OpPrefetch:
		return fmt.Sprintf("pf   %d(r%d)", in.Imm, in.Base)
	case OpPrefetchEx:
		return fmt.Sprintf("pf.x %d(r%d)", in.Imm, in.Base)
	case OpAdd:
		return fmt.Sprintf("add  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpAddI:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Dst, in.Src, in.Imm)
	case OpSub:
		return fmt.Sprintf("sub  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpMul:
		return fmt.Sprintf("mul  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpAnd:
		return fmt.Sprintf("and  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpOr:
		return fmt.Sprintf("or   r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpXor:
		return fmt.Sprintf("xor  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpSlt:
		return fmt.Sprintf("slt  r%d, r%d, r%d", in.Dst, in.Src, in.Src2)
	case OpSltI:
		return fmt.Sprintf("slti r%d, r%d, %d", in.Dst, in.Src, in.Imm)
	case OpBeqz:
		return fmt.Sprintf("beqz r%d, @%d", in.Src, in.Imm)
	case OpBnez:
		return fmt.Sprintf("bnez r%d, @%d", in.Src, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp  @%d", in.Imm)
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("op(%d)", uint8(in.Op))
	}
}

// Program is a sequence of instructions for one processor. Instruction
// indices serve as program counters.
type Program struct {
	Instrs []Instruction
	// Labels maps symbolic names to instruction indices; populated by the
	// Builder, useful for debugging and trace output.
	Labels map[string]int
}

// Len returns the number of instructions in the program.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at pc. Out-of-range PCs decode as Halt so a
// runaway processor stops rather than wrapping.
func (p *Program) At(pc int) Instruction {
	if pc < 0 || pc >= len(p.Instrs) {
		return Instruction{Op: OpHalt}
	}
	return p.Instrs[pc]
}

// Disassemble renders the whole program with instruction indices and labels.
func (p *Program) Disassemble() string {
	rev := make(map[int][]string)
	for name, idx := range p.Labels {
		rev[idx] = append(rev[idx], name)
	}
	out := ""
	for i, in := range p.Instrs {
		for _, name := range rev[i] {
			out += name + ":\n"
		}
		out += fmt.Sprintf("  %3d: %s\n", i, in)
	}
	return out
}
