package isa_test

import (
	"fmt"

	"mcmsim/internal/isa"
)

// ExampleBuilder assembles a tiny producer: write data, then publish a
// flag with release semantics. The builder methods chainable-append
// instructions; Build resolves labels and freezes the program.
func ExampleBuilder() {
	b := isa.NewBuilder()
	b.Li(isa.R1, 42)                 // r1 = 42
	b.StoreAbs(isa.R1, 0x200)        // mem[0x200] = r1 (the data)
	b.Li(isa.R2, 1)                  // r2 = 1
	b.ReleaseStoreAbs(isa.R2, 0x100) // mem[0x100] = r2 (release: the flag)
	b.Halt()
	p := b.Build()

	fmt.Print(p.Disassemble())
	fmt.Println("instructions:", p.Len())
	// Output:
	//     0: addi r1, r0, 42
	//     1: st   r1, 512(r0)
	//     2: addi r2, r0, 1
	//     3: st.rel r2, 256(r0)
	//     4: halt
	// instructions: 5
}

// ExampleBuilder_labels assembles the matching consumer: spin on the flag
// with acquire loads, then read the data. Labels may be referenced before
// or after they are defined; Build patches the branch offsets.
func ExampleBuilder_labels() {
	b := isa.NewBuilder()
	b.Label("spin")
	b.AcquireLoadAbs(isa.R3, 0x100) // r3 = mem[0x100] (acquire: the flag)
	b.Beqz(isa.R3, "spin")          // retry until the flag is set
	b.LoadAbs(isa.R4, 0x200)        // r4 = mem[0x200] (the data)
	b.Halt()

	fmt.Print(b.Build().Disassemble())
	// Output:
	// spin:
	//     0: ld.acq r3, 256(r0)
	//     1: beqz r3, @0
	//     2: ld   r4, 512(r0)
	//     3: halt
}
