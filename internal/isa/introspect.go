package isa

// Program introspection for reference interpreters (the conformance tier's
// SC oracle): a straight-line program's memory behaviour is recovered as a
// sequence of MemOps with concrete addresses and symbolic data values, by
// abstract execution over the register file.
//
// The extraction is deliberately conservative. It supports exactly the
// program shapes the litmus battery and the conformance generator emit:
// no branches or jumps, ALU results that are either compile-time constants
// or the unmodified value of one earlier load, and effective addresses that
// are constants. Anything else makes MemOps report ok == false, never a
// wrong answer.

// DataConst and DataLoad discriminate a DataRef.
const (
	// DataConst marks a DataRef whose value is a compile-time constant.
	DataConst = -1
)

// DataRef is a symbolic data value: either a constant or the value bound by
// the n-th register-writing memory read (load, acquire load, or RMW old
// value) of the same program, counted from zero in program order.
type DataRef struct {
	// FromLoad is the read index the value came from, or DataConst.
	FromLoad int
	// Const is the constant value when FromLoad == DataConst.
	Const int64
}

// IsConst reports whether the reference is a compile-time constant.
func (d DataRef) IsConst() bool { return d.FromLoad == DataConst }

// MemOp is one memory operation of a straight-line program with its
// effective address resolved and its store data expressed symbolically.
type MemOp struct {
	// Op is the memory opcode (OpLoad, OpStore, OpAcquire, OpRelease,
	// OpRMW, OpPrefetch, OpPrefetchEx).
	Op Op
	// Addr is the concrete effective address.
	Addr uint64
	// Data is the store data (stores, releases) or the RMW source operand.
	// Meaningless for loads and prefetches.
	Data DataRef
	// RMW is the atomic flavour when Op == OpRMW.
	RMW RMWKind
	// ReadIdx numbers the register-writing reads (loads, acquire loads,
	// RMWs) of the program in program order; -1 for every other op. It is
	// the index DataRef.FromLoad refers to.
	ReadIdx int
	// PC is the instruction index the op was decoded from.
	PC int
}

// IsRead reports whether the op binds a register value from memory.
func (m MemOp) IsRead() bool { return m.Op == OpLoad || m.Op == OpAcquire || m.Op == OpRMW }

// IsWrite reports whether the op modifies memory.
func (m MemOp) IsWrite() bool { return m.Op == OpStore || m.Op == OpRelease || m.Op == OpRMW }

// absVal is the abstract value of a register during extraction: a constant,
// the value of read #load, or unknown.
type absVal struct {
	known bool
	load  int // DataConst for constants
	c     int64
}

// MemOps symbolically executes a straight-line program and returns its
// memory operations in program order. ok is false when the program is not
// straight-line (contains a branch or jump), when an effective address
// depends on a loaded or unknown value, or when store data is neither a
// constant nor exactly the value of one earlier load.
func (p *Program) MemOps() (ops []MemOp, ok bool) {
	var regs [NumRegs]absVal
	regs[R0] = absVal{known: true, load: DataConst}
	reads := 0

	read := func(r Reg) absVal { return regs[r] }
	write := func(r Reg, v absVal) {
		if r != R0 {
			regs[r] = v
		}
	}
	// dataRef converts an abstract value to a DataRef, failing on unknowns.
	dataRef := func(v absVal) (DataRef, bool) {
		if !v.known {
			return DataRef{}, false
		}
		return DataRef{FromLoad: v.load, Const: v.c}, true
	}

	for pc, in := range p.Instrs {
		switch in.Op {
		case OpNop:
		case OpHalt:
			// Anything after a halt is unreachable; accept and stop.
			return ops, true
		case OpLoad, OpAcquire:
			base := read(in.Base)
			if !base.known || base.load != DataConst {
				return nil, false
			}
			ops = append(ops, MemOp{
				Op: in.Op, Addr: uint64(base.c + in.Imm),
				Data: DataRef{FromLoad: DataConst}, ReadIdx: reads, PC: pc,
			})
			write(in.Dst, absVal{known: true, load: reads})
			reads++
		case OpStore, OpRelease:
			base := read(in.Base)
			if !base.known || base.load != DataConst {
				return nil, false
			}
			data, dok := dataRef(read(in.Src))
			if !dok {
				return nil, false
			}
			ops = append(ops, MemOp{
				Op: in.Op, Addr: uint64(base.c + in.Imm),
				Data: data, ReadIdx: -1, PC: pc,
			})
		case OpRMW:
			base := read(in.Base)
			if !base.known || base.load != DataConst {
				return nil, false
			}
			data, dok := dataRef(read(in.Src))
			if !dok {
				return nil, false
			}
			ops = append(ops, MemOp{
				Op: in.Op, Addr: uint64(base.c + in.Imm),
				Data: data, RMW: in.RMW, ReadIdx: reads, PC: pc,
			})
			write(in.Dst, absVal{known: true, load: reads})
			reads++
		case OpPrefetch, OpPrefetchEx:
			base := read(in.Base)
			if !base.known || base.load != DataConst {
				return nil, false
			}
			ops = append(ops, MemOp{
				Op: in.Op, Addr: uint64(base.c + in.Imm),
				Data: DataRef{FromLoad: DataConst}, ReadIdx: -1, PC: pc,
			})
		case OpAddI:
			// The only ALU form the extractor tracks exactly: constant
			// arithmetic, or a no-op move of a load's value (imm == 0).
			src := read(in.Src)
			switch {
			case src.known && src.load == DataConst:
				write(in.Dst, absVal{known: true, load: DataConst, c: src.c + in.Imm})
			case src.known && in.Imm == 0:
				write(in.Dst, src)
			default:
				write(in.Dst, absVal{})
			}
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSlt:
			a, b := read(in.Src), read(in.Src2)
			if a.known && a.load == DataConst && b.known && b.load == DataConst {
				write(in.Dst, absVal{known: true, load: DataConst,
					c: constALU(in.Op, a.c, b.c)})
			} else {
				write(in.Dst, absVal{})
			}
		case OpSltI:
			a := read(in.Src)
			if a.known && a.load == DataConst {
				v := int64(0)
				if a.c < in.Imm {
					v = 1
				}
				write(in.Dst, absVal{known: true, load: DataConst, c: v})
			} else {
				write(in.Dst, absVal{})
			}
		case OpBeqz, OpBnez, OpJmp:
			return nil, false // not straight-line
		default:
			return nil, false
		}
	}
	return ops, true
}

// constALU evaluates a two-source ALU op over constants.
func constALU(op Op, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpSlt:
		if a < b {
			return 1
		}
		return 0
	default:
		return 0
	}
}
