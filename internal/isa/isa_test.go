package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestInstructionClassification(t *testing.T) {
	cases := []struct {
		in                               isa
		mem, load, store, sync, br, wreg bool
	}{
		{isa{OpNop, R0}, false, false, false, false, false, false},
		{isa{OpLoad, R1}, true, true, false, false, false, true},
		{isa{OpStore, R1}, true, false, true, false, false, false},
		{isa{OpAcquire, R1}, true, true, false, true, false, true},
		{isa{OpRelease, R1}, true, false, true, true, false, false},
		{isa{OpRMW, R1}, true, false, false, true, false, true},
		{isa{OpAdd, R1}, false, false, false, false, false, true},
		{isa{OpBeqz, R1}, false, false, false, false, true, false},
		{isa{OpBnez, R1}, false, false, false, false, true, false},
		{isa{OpJmp, R1}, false, false, false, false, true, false},
		{isa{OpHalt, R1}, false, false, false, false, false, false},
	}
	for _, c := range cases {
		in := Instruction{Op: c.in.op, Dst: c.in.dst}
		if in.IsMemory() != c.mem {
			t.Errorf("%v IsMemory = %v", in.Op, in.IsMemory())
		}
		if in.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", in.Op, in.IsLoad())
		}
		if in.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", in.Op, in.IsStore())
		}
		if in.IsSync() != c.sync {
			t.Errorf("%v IsSync = %v", in.Op, in.IsSync())
		}
		if in.IsBranch() != c.br {
			t.Errorf("%v IsBranch = %v", in.Op, in.IsBranch())
		}
		if in.WritesReg() != c.wreg {
			t.Errorf("%v WritesReg = %v", in.Op, in.WritesReg())
		}
	}
}

type isa struct {
	op  Op
	dst Reg
}

func TestWritesRegR0Suppressed(t *testing.T) {
	in := Instruction{Op: OpLoad, Dst: R0}
	if in.WritesReg() {
		t.Error("write to R0 must not count as a register write")
	}
}

func TestRMWKindApply(t *testing.T) {
	cases := []struct {
		kind     RMWKind
		old, src int64
		want     int64
	}{
		{RMWTestAndSet, 0, 99, 1},
		{RMWTestAndSet, 1, 99, 1},
		{RMWFetchAdd, 10, 5, 15},
		{RMWFetchAdd, -3, 3, 0},
		{RMWSwap, 10, 42, 42},
	}
	for _, c := range cases {
		if got := c.kind.Apply(c.old, c.src); got != c.want {
			t.Errorf("%v.Apply(%d,%d) = %d, want %d", c.kind, c.old, c.src, got, c.want)
		}
	}
}

// TestRMWFetchAddCommutes property: fetch-add result is independent of
// operand order in its addition.
func TestRMWFetchAddCommutes(t *testing.T) {
	f := func(a, b int64) bool {
		return RMWFetchAdd.Apply(a, b) == RMWFetchAdd.Apply(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramAtOutOfRangeHalts(t *testing.T) {
	p := &Program{Instrs: []Instruction{{Op: OpNop}}}
	if p.At(-1).Op != OpHalt || p.At(5).Op != OpHalt {
		t.Error("out-of-range PC must decode as Halt")
	}
	if p.At(0).Op != OpNop {
		t.Error("in-range PC decoded wrong")
	}
}

func TestBuilderLabelsForwardAndBackward(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Nop()               // 0
	b.Beqz(R1, "forward") // 1 -> 3
	b.Jmp("start")        // 2 -> 0
	b.Label("forward")
	b.Halt() // 3
	p := b.Build()
	if p.Instrs[1].Imm != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Instrs[1].Imm)
	}
	if p.Instrs[2].Imm != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Instrs[2].Imm)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undefined label must panic at Build")
		}
	}()
	b := NewBuilder()
	b.Jmp("nowhere")
	b.Build()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label must panic")
		}
	}()
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
}

func TestBuilderLockUnlockShape(t *testing.T) {
	b := NewBuilder()
	b.Lock(R1, 0x100)
	b.Unlock(0x100)
	b.Halt()
	p := b.Build()
	if len(p.Instrs) != 4 {
		t.Fatalf("lock+unlock+halt = %d instrs, want 4", len(p.Instrs))
	}
	if p.Instrs[0].Op != OpRMW || p.Instrs[0].RMW != RMWTestAndSet {
		t.Error("lock must start with test-and-set")
	}
	if p.Instrs[1].Op != OpBnez || p.Instrs[1].Imm != 0 {
		t.Error("lock spin branch must loop back to the RMW")
	}
	if p.Instrs[2].Op != OpRelease {
		t.Error("unlock must be a release store")
	}
}

func TestBuilderFreshLabelsUnique(t *testing.T) {
	b := NewBuilder()
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		l := b.FreshLabel("spin")
		if seen[l] {
			t.Fatalf("duplicate fresh label %q", l)
		}
		seen[l] = true
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("entry")
	b.Li(R1, 42)
	b.Halt()
	out := b.Build().Disassemble()
	if !strings.Contains(out, "entry:") {
		t.Errorf("disassembly missing label:\n%s", out)
	}
	if !strings.Contains(out, "addi") {
		t.Errorf("disassembly missing instruction:\n%s", out)
	}
}

func TestInstructionStringsDistinct(t *testing.T) {
	ops := []Instruction{
		{Op: OpLoad, Dst: R1, Base: R2, Imm: 4},
		{Op: OpStore, Src: R1, Base: R2, Imm: 4},
		{Op: OpAcquire, Dst: R1},
		{Op: OpRelease, Src: R1},
		{Op: OpRMW, RMW: RMWTestAndSet},
		{Op: OpAdd}, {Op: OpAddI}, {Op: OpSub}, {Op: OpMul},
		{Op: OpAnd}, {Op: OpOr}, {Op: OpXor}, {Op: OpSlt}, {Op: OpSltI},
		{Op: OpBeqz}, {Op: OpBnez}, {Op: OpJmp}, {Op: OpHalt}, {Op: OpNop},
	}
	seen := map[string]Op{}
	for _, in := range ops {
		s := in.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v render identically as %q", prev, in.Op, s)
		}
		seen[s] = in.Op
	}
}

// TestBuilderEmitsAreImmutable property: Build returns a copy; later emits
// must not mutate a previously built program.
func TestBuilderBuildIsSnapshot(t *testing.T) {
	b := NewBuilder()
	b.Li(R1, 1)
	p1 := b.Build()
	b.Halt()
	p2 := b.Build()
	if p1.Len() != 1 || p2.Len() != 2 {
		t.Errorf("lens = %d/%d, want 1/2", p1.Len(), p2.Len())
	}
}

func TestPrefetchInstructions(t *testing.T) {
	b := NewBuilder()
	b.PrefetchAbs(0x40)
	b.PrefetchExAbs(0x50)
	b.Prefetch(R2, 8)
	b.PrefetchEx(R3, 16)
	b.Halt()
	p := b.Build()
	if p.Instrs[0].Op != OpPrefetch || p.Instrs[1].Op != OpPrefetchEx {
		t.Error("absolute prefetch opcodes wrong")
	}
	for i := 0; i < 4; i++ {
		in := p.Instrs[i]
		if !in.IsMemory() || !in.IsPrefetch() {
			t.Errorf("instr %d must classify as memory prefetch", i)
		}
		if in.IsLoad() || in.IsStore() || in.IsSync() || in.WritesReg() {
			t.Errorf("instr %d misclassified", i)
		}
	}
	if p.Instrs[0].String() == p.Instrs[1].String() {
		t.Error("pf and pf.x render identically")
	}
}
