package isa

import "testing"

func TestMemOpsStraightLine(t *testing.T) {
	b := NewBuilder()
	b.Li(R1, 7)
	b.StoreAbs(R1, 0x100)                 // op 0: st 0x100 = 7
	b.LoadAbs(R2, 0x200)                  // op 1: read 0 = ld 0x200
	b.StoreAbs(R2, 0x300)                 // op 2: st 0x300 = read 0
	b.AcquireLoadAbs(R3, 0x100)           // op 3: read 1
	b.RMW(RMWFetchAdd, R4, R1, R0, 0x200) // op 4: read 2, src const 7
	b.ReleaseStoreAbs(R4, 0x400)          // op 5: st.rel 0x400 = read 2
	b.PrefetchAbs(0x500)                  // op 6
	b.Halt()
	ops, ok := b.Build().MemOps()
	if !ok {
		t.Fatal("MemOps failed on a straight-line program")
	}
	if len(ops) != 7 {
		t.Fatalf("got %d ops, want 7", len(ops))
	}
	want := []struct {
		op      Op
		addr    uint64
		from    int
		c       int64
		readIdx int
	}{
		{OpStore, 0x100, DataConst, 7, -1},
		{OpLoad, 0x200, DataConst, 0, 0},
		{OpStore, 0x300, 0, 0, -1},
		{OpAcquire, 0x100, DataConst, 0, 1},
		{OpRMW, 0x200, DataConst, 7, 2},
		{OpRelease, 0x400, 2, 0, -1},
		{OpPrefetch, 0x500, DataConst, 0, -1},
	}
	for i, w := range want {
		g := ops[i]
		if g.Op != w.op || g.Addr != w.addr || g.ReadIdx != w.readIdx {
			t.Errorf("op %d = {%v %#x readIdx=%d}, want {%v %#x readIdx=%d}",
				i, g.Op, g.Addr, g.ReadIdx, w.op, w.addr, w.readIdx)
		}
		if g.Op == OpStore || g.Op == OpRelease || g.Op == OpRMW {
			if g.Data.FromLoad != w.from {
				t.Errorf("op %d data FromLoad = %d, want %d", i, g.Data.FromLoad, w.from)
			}
			if w.from == DataConst && g.Data.Const != w.c {
				t.Errorf("op %d data Const = %d, want %d", i, g.Data.Const, w.c)
			}
		}
	}
}

func TestMemOpsRejectsBranches(t *testing.T) {
	b := NewBuilder()
	lbl := b.FreshLabel("spin")
	b.Label(lbl)
	b.LoadAbs(R1, 0x100)
	b.Beqz(R1, lbl)
	b.Halt()
	if _, ok := b.Build().MemOps(); ok {
		t.Fatal("MemOps accepted a program with a branch")
	}
}

func TestMemOpsRejectsLoadedAddress(t *testing.T) {
	b := NewBuilder()
	b.LoadAbs(R1, 0x100)
	b.Load(R2, R1, 0) // address depends on a loaded value
	b.Halt()
	if _, ok := b.Build().MemOps(); ok {
		t.Fatal("MemOps accepted a load-dependent effective address")
	}
}

func TestMemOpsRejectsDerivedStoreData(t *testing.T) {
	b := NewBuilder()
	b.LoadAbs(R1, 0x100)
	b.AddI(R2, R1, 5) // load value plus a constant: not representable
	b.StoreAbs(R2, 0x200)
	b.Halt()
	if _, ok := b.Build().MemOps(); ok {
		t.Fatal("MemOps accepted store data derived from a load")
	}
}

func TestMemOpsConstantALU(t *testing.T) {
	b := NewBuilder()
	b.Li(R1, 6)
	b.Li(R2, 7)
	b.Mul(R3, R1, R2)
	b.StoreAbs(R3, 0x100)
	b.Halt()
	ops, ok := b.Build().MemOps()
	if !ok || len(ops) != 1 {
		t.Fatalf("ops=%v ok=%v", ops, ok)
	}
	if !ops[0].Data.IsConst() || ops[0].Data.Const != 42 {
		t.Fatalf("store data = %+v, want const 42", ops[0].Data)
	}
}

func TestMemOpsMoveOfLoad(t *testing.T) {
	b := NewBuilder()
	b.LoadAbs(R1, 0x100)
	b.AddI(R2, R1, 0) // move preserves the load reference
	b.StoreAbs(R2, 0x200)
	b.Halt()
	ops, ok := b.Build().MemOps()
	if !ok || len(ops) != 2 {
		t.Fatalf("ops=%v ok=%v", ops, ok)
	}
	if ops[1].Data.FromLoad != 0 {
		t.Fatalf("store data = %+v, want FromLoad 0", ops[1].Data)
	}
}
