package parsim_test

import (
	"reflect"
	"testing"

	"mcmsim/internal/conformance"
	"mcmsim/internal/sim"
)

// TestParallelEngineConformParity runs a conformance batch — generated
// litmus programs checked across the model × technique × timing grid
// against the exhaustive SC oracle — with the simulations routed through
// the parallel engine, and requires the verdict to be identical to the
// sequential batch down to every counter and violation. This is the
// `conform` leg of the -par differential: the harness observes outcomes,
// cycle counts and detector verdicts, so any engine divergence surfaces as
// a report mismatch (and a real consistency-model bug would too).
func TestParallelEngineConformParity(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance batch; skipped in -short mode")
	}
	run := func(par int) conformance.Report {
		prev := sim.ParWorkers
		sim.ParWorkers = par
		defer func() { sim.ParWorkers = prev }()
		return conformance.CheckBatch(1, 8, conformance.Params{}, 1, conformance.CheckOptions{}, nil)
	}
	seq := run(0)
	if seq.Stats.Cells == 0 {
		t.Fatal("sequential batch ran no cells")
	}
	for _, par := range []int{2, 4} {
		got := run(par)
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("conformance report differs between -par 1 and -par %d:\nseq: %+v\npar: %+v", par, seq, got)
		}
	}
}
