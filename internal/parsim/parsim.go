// Package parsim is the conservative parallel engine for sim.System: it
// partitions the machine into node shards (each processor with its LSU and
// private cache, each home directory with its memory bank, the external
// write agent) and advances them on separate goroutines in lookahead
// windows of W = network latency cycles, exchanging messages at a
// deterministic barrier between windows.
//
// Safety: shards share no mutable state — every cross-shard interaction is
// a network message, and every send is delivered at least W cycles after it
// is made (Network.Send/Post add the full one-way latency; nothing sends
// into the past). A message sent anywhere in window [T, T+W) therefore
// delivers at or after T+W: no shard can observe, during a window, anything
// another shard does in that window, so stepping them concurrently is
// indistinguishable from stepping them in the sequential loop's order.
//
// Determinism: the barrier (network.Exchange) sorts the window's sends by
// the position the sequential loop would have sent them at — (cycle, step
// phase, component rank or handled-message seq, per-endpoint ordinal) — and
// assigns global sequence numbers in that order, so each endpoint's
// (deliver, seq) delivery order is byte-for-byte the sequential one. Every
// stats counter, halt cycle, memory image and report is identical for any
// worker count, enforced by the differential tests in this package and
// `make differential`.
//
// The engine composes with the PR 2 fast-forward scheduler at two levels:
// inside a window each shard skips straight between its own event cycles,
// and between windows the engine jumps the global clock over stretches
// where no shard has any event. Run declines (and System.Run falls back to
// the sequential loop) when the network latency is zero (no lookahead),
// trace hooks are attached (they observe whole-machine state every cycle),
// or deliveries are already in flight.
package parsim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"mcmsim/internal/coherence"
	"mcmsim/internal/network"
	"mcmsim/internal/sim"
)

func init() { sim.RegisterParallelRunner(Run) }

// Worker budget: a process-wide pool of *extra* goroutines (beyond the
// goroutine calling Run) shared by every concurrently running engine, so
// cmd/sweep's job workers and per-simulation shard workers draw from one
// cap instead of multiplying (-j 8 × -par 8 ≠ 64 goroutines).
var budget = struct {
	mu   sync.Mutex
	free int
}{free: maxInt(runtime.NumCPU()-1, 0)}

// SetWorkerBudget sets the number of extra worker goroutines the engines in
// this process may use in total (the calling goroutine of each Run is
// always available on top). Call it only while no simulations are running.
// The default is NumCPU-1.
func SetWorkerBudget(n int) {
	budget.mu.Lock()
	budget.free = maxInt(n, 0)
	budget.mu.Unlock()
}

// AddWorkerBudget releases n extra worker goroutines into (or, negative,
// withdraws them from) the shared budget. Unlike SetWorkerBudget it is
// safe while simulations run: cmd/sweep's job workers call it as the job
// queue drains, so the tail of a sweep hands its idle CPU share to the
// shard engines of the simulations still running. Engines already past
// their acquire keep their current workers; the released share benefits
// engines that start (or would have acquired less) afterwards.
func AddWorkerBudget(n int) {
	budget.mu.Lock()
	budget.free = maxInt(budget.free+n, 0)
	budget.mu.Unlock()
}

func acquireExtra(want int) int {
	if want <= 0 {
		return 0
	}
	budget.mu.Lock()
	if want > budget.free {
		want = budget.free
	}
	budget.free -= want
	budget.mu.Unlock()
	return want
}

func releaseExtra(n int) {
	if n <= 0 {
		return
	}
	budget.mu.Lock()
	budget.free += n
	budget.mu.Unlock()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// shardStats is one shard's scheduler-observability record (the -schedstats
// report). Each entry is written only by the goroutine running that shard
// and read by the coordinator after the window barrier.
type shardStats struct {
	steps     uint64 // cycles actually stepped
	skipped   uint64 // cycles jumped by the shard-local fast-forward
	windows   uint64 // windows the shard was dispatched in
	idleTails uint64 // dispatched windows the shard finished early (barrier stall)
	// activeUntil is 1 + the last cycle the shard had work at — the exact
	// cycle the sequential loop would have stopped at is the max over
	// shards (see finishCycle).
	activeUntil uint64
}

type engine struct {
	s      *sim.System
	shards []*sim.NodeShard
	eps    []*network.Endpoint
	x      *network.Exchange
	st     []shardStats

	dense    bool
	from, to uint64 // current window [from, to)

	tasks   chan int
	wg      sync.WaitGroup
	workers int // goroutines total, including the caller

	windows     uint64
	globalJumps uint64

	// Optimistic-engine state (RunOptimistic): the adaptive optimism
	// horizon, the current window's rollback record, and the Time Warp
	// counters surfaced in the -schedstats report.
	opt         bool
	horizon     uint64
	ck          checkpoint
	checkpoints uint64
	rollbacks   uint64
	replayed    uint64 // cycles re-executed after rollbacks
	maxOptimism uint64 // largest single-window committed advance
	consWindows uint64 // windows run at conservative pacing (throttled)
}

// Run advances s to completion with up to par shard goroutines, selecting
// an engine per sim.ParEngine. It reports handled=false when no engine can
// run the configuration (the caller then falls back to the sequential
// loop); otherwise its results — halt cycle, error, every observable
// stat — are identical to the sequential engine's.
//
// Engine coverage, from sim.Run's perspective:
//
//   - conservative: any machine with nonzero minimum network delay, no
//     deliveries in flight, no tracing;
//   - optimistic: additionally accepts deliveries already in flight (a
//     machine restored from a mid-flight snapshot), which "auto" routes
//     here;
//   - sequential-only, by construction: zero-latency networks (the
//     sequential loop delivers a zero-latency send mid-phase of the same
//     cycle, which no window barrier can reproduce), trace hooks and
//     coherence line tracing (both observe whole-machine state every
//     cycle, undefined while shards sit at different local times), and
//     single-shard machines.
func Run(s *sim.System, par int) (halt uint64, handled bool, err error) {
	switch sim.ParEngine {
	case "conservative":
		return runConservative(s, par)
	case "optimistic":
		return RunOptimistic(s, par)
	default:
		if halt, handled, err = runConservative(s, par); handled {
			return halt, handled, err
		}
		return RunOptimistic(s, par)
	}
}

// runConservative advances s to completion in lookahead windows of the
// network's minimum delay. It reports handled=false when the configuration
// cannot be windowed.
func runConservative(s *sim.System, par int) (halt uint64, handled bool, err error) {
	w := s.Net.Latency()
	if par < 2 || w == 0 || len(s.TraceHooks) > 0 || s.Net.Pending() > 0 ||
		coherence.DebugTraceLine != 0 {
		return 0, false, nil
	}
	shards := s.Shards()
	if len(shards) < 2 {
		return 0, false, nil
	}

	e := &engine{
		s:      s,
		shards: shards,
		eps:    make([]*network.Endpoint, len(shards)),
		x:      network.NewExchange(s.Net),
		st:     make([]shardStats, len(shards)),
		dense:  s.Cfg.DenseLoop || sim.ForceDense,
		tasks:  make(chan int, len(shards)),
	}
	for i, sh := range shards {
		e.eps[i] = e.x.Endpoint(sh.NodeID(), sh.Rank(), sh.Handler())
		sh.BindPort(e.eps[i])
	}
	// Scheduled external writes become injected self-deliveries to the
	// agent shard: its window loop is then pure delivery, with no
	// special-case peek at the write queue.
	s.InjectScheduledWrites(e.x)
	extra := acquireExtra(minInt(par, len(shards)) - 1)
	e.workers = 1 + extra
	for k := 0; k < extra; k++ {
		go func() {
			for i := range e.tasks {
				e.runShard(i)
				e.wg.Done()
			}
		}()
	}
	teardown := func() {
		close(e.tasks)
		releaseExtra(extra)
		for _, sh := range e.shards {
			sh.BindPort(s.Net)
		}
		s.ParReport = e.report()
		e.x.Close()
	}

	start := s.Cycle
	limit := s.BaseCycle() + s.Cfg.MaxCycles
	work := make([]int, 0, len(shards))
	for {
		if e.done() {
			break
		}
		if s.Cycle-s.BaseCycle() > s.Cfg.MaxCycles {
			teardown()
			return 0, true, fmt.Errorf("sim: no convergence after %d cycles\n%s", s.Cfg.MaxCycles, s.Dump())
		}
		t := s.Cycle
		end := t + w
		if end > limit+1 {
			end = limit + 1
		}
		work = work[:0]
		if e.dense {
			for i := range e.shards {
				work = append(work, i)
			}
		} else {
			// Global fast-forward: jump the clock to the earliest event of
			// any shard (mirroring the sequential skipIdleCycles, including
			// its deadlock jump past the cycle budget), and dispatch only
			// the shards with an event inside this window.
			horizon, any := e.globalHorizon(t)
			if !any {
				s.FastForwarded += limit + 1 - t
				s.Cycle = limit + 1
				e.globalJumps++
				continue
			}
			if horizon > t {
				if horizon > limit+1 {
					horizon = limit + 1
				}
				s.FastForwarded += horizon - t
				s.Cycle = horizon
				e.globalJumps++
				continue
			}
			for i, sh := range e.shards {
				if c, ok := sh.NextEvent(t, e.eps[i]); ok && c < end {
					work = append(work, i)
				}
			}
		}
		e.from, e.to = t, end
		e.dispatch(work)
		e.windows++
		e.x.Barrier()
		s.Cycle = end
	}

	// The machine went quiescent somewhere inside the last window; rewind
	// the clock to the exact cycle the sequential loop exits at (one past
	// the last cycle any shard had work), so warmed-cache phase chaining
	// (LoadPrograms) sees identical absolute time.
	s.Cycle = e.finishCycle(start)
	teardown()
	return s.HaltCycle() - s.BaseCycle(), true, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dispatch fans the window's shard list out to the worker pool; the calling
// goroutine drains alongside the extra workers. Returns after every shard
// finished its window (the barrier's mutual-exclusion edge).
func (e *engine) dispatch(work []int) {
	e.wg.Add(len(work))
	for _, i := range work {
		e.tasks <- i
	}
	for {
		select {
		case i := <-e.tasks:
			e.runShard(i)
			e.wg.Done()
		default:
			e.wg.Wait()
			return
		}
	}
}

// runShard advances one shard through the current window, stepping only the
// cycles where the shard provably has work (unless dense mode insists on
// stepping them all — the step is a no-op then, by the NextWake contract).
func (e *engine) runShard(i int) {
	sh, ep, st := e.shards[i], e.eps[i], &e.st[i]
	for now := e.from; now < e.to; {
		c, ok := sh.NextEvent(now, ep)
		if active := ok && c <= now; active || e.dense {
			if active {
				st.activeUntil = now + 1
			}
			sh.StepCycle(now, ep)
			st.steps++
			now++
			continue
		}
		next := e.to
		if ok && c < next {
			next = c
		}
		st.skipped += next - now
		if next == e.to {
			st.idleTails++
		}
		now = next
	}
	st.windows++
}

// globalHorizon returns the earliest event cycle across all shards at or
// after t (single-threaded; runs between windows).
func (e *engine) globalHorizon(t uint64) (uint64, bool) {
	var best uint64
	any := false
	for i, sh := range e.shards {
		if c, ok := sh.NextEvent(t, e.eps[i]); ok {
			if c <= t {
				return t, true
			}
			if !any || c < best {
				best, any = c, true
			}
		}
	}
	return best, any
}

// done mirrors System.Done at a window boundary: every shard quiescent and
// no message anywhere in flight (outboxes are empty between windows, so the
// inboxes hold the entire in-flight set).
func (e *engine) done() bool {
	for _, sh := range e.shards {
		if !sh.Quiescent() {
			return false
		}
	}
	return e.x.PendingTotal() == 0
}

// finishCycle computes the exact cycle the sequential loop would have
// exited at: one past the last cycle any shard had work (state can only
// change on a cycle a shard's NextEvent flags, so from that point on Done
// held), but never before the run started.
func (e *engine) finishCycle(start uint64) uint64 {
	out := start
	for i := range e.st {
		if au := e.st[i].activeUntil; au > out {
			out = au
		}
	}
	return out
}

// report renders the scheduler-observability summary (mcsim -schedstats).
func (e *engine) report() string {
	var b strings.Builder
	var steps, skipped uint64
	for i := range e.st {
		steps += e.st[i].steps
		skipped += e.st[i].skipped
	}
	fmt.Fprintf(&b, "parsim: shards=%d workers=%d window=%d windows=%d exchanged=%d global_jumps=%d ff_cycles=%d shard_steps=%d shard_skipped=%d\n",
		len(e.shards), e.workers, e.s.Net.Latency(), e.windows, e.x.Exchanged, e.globalJumps, e.s.FastForwarded, steps, skipped)
	if e.opt {
		fmt.Fprintf(&b, "parsim: engine=optimistic horizon=%d checkpoints=%d rollbacks=%d replayed_cycles=%d max_optimism=%d cons_windows=%d\n",
			e.horizon, e.checkpoints, e.rollbacks, e.replayed, e.maxOptimism, e.consWindows)
	}
	for i, sh := range e.shards {
		st := &e.st[i]
		fmt.Fprintf(&b, "  %-6s windows=%d steps=%d skipped=%d idle_tails=%d delivered=%d sent=%d\n",
			sh.Label(), st.windows, st.steps, st.skipped, st.idleTails, e.eps[i].Received, e.eps[i].Sent())
	}
	return b.String()
}
