package parsim_test

import (
	"fmt"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

func wideProgs(nprocs, lines, rounds int) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.WideSharing(p, nprocs, lines, rounds)
	}
	return progs
}

// TestParallelEngineMeshMatchesSequential is the differential gate for the
// topology-aware network: on a mesh with per-hop latency and per-link
// contention, the sharded engine must reproduce the sequential run exactly
// for every worker count. This is the hardest case for the barrier design —
// arrival times depend on mutable link-occupancy state, so they are only
// engine-independent because Exchange.Barrier replays the topology's
// Arrival calls in exact sequential send order.
func TestParallelEngineMeshMatchesSequential(t *testing.T) {
	for _, m := range []core.Model{core.SC, core.RC} {
		for _, tc := range techniques {
			t.Run(fmt.Sprintf("%v/%s", m, tc.name), func(t *testing.T) {
				cfg := sim.RealisticConfig()
				cfg.Procs = 16
				cfg.Model = m
				cfg.Tech = tc.tech
				cfg.Topo = "mesh"
				cfg.MemModules = 16
				cfg.DirPointers = 8
				progs := wideProgs(16, 3, 3)
				seq := runSeq(t, cfg, progs)
				for _, par := range []int{2, 4, 8} {
					diffResults(t, fmt.Sprintf("par=%d", par), seq, runPar(t, cfg, progs, par))
				}
			})
		}
	}
}

// TestParallelEngineMeshCongested raises contention (LinkGap 4, a narrow
// 2x8 mesh, a single shared home column) so link queueing dominates
// timing; queueing delays must still be byte-identical across engines.
func TestParallelEngineMeshCongested(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 16
	cfg.Model = core.SC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	cfg.Topo = "mesh:2x8"
	cfg.LinkGap = 4
	cfg.MemModules = 2
	cfg.DirPointers = 4
	progs := wideProgs(16, 4, 2)
	seq := runSeq(t, cfg, progs)
	for _, par := range []int{2, 8} {
		diffResults(t, fmt.Sprintf("par=%d", par), seq, runPar(t, cfg, progs, par))
	}
}
