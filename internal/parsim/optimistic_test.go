package parsim_test

import (
	"fmt"
	"strings"
	"testing"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
)

// runOpt runs cfg through the optimistic engine and fails the test if the
// engine declined the configuration.
func runOpt(t testing.TB, cfg sim.Config, progs []*isa.Program, par int) runResult {
	t.Helper()
	s := sim.New(cfg, progs)
	cycles, handled, err := parsim.RunOptimistic(s, par)
	if !handled {
		t.Fatalf("optimistic engine declined par=%d (latency=%d)", par, cfg.NetLatency)
	}
	if err != nil {
		t.Fatalf("optimistic run par=%d: %v", par, err)
	}
	return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
}

// TestParallelEngineOptimisticMatchesSequential is the differential gate
// for the optimistic (Time Warp) engine on the uniform network: across the
// model x technique grid, in both dense and fast-forward mode, rollback
// and replay must reproduce the sequential run exactly — halt cycle, final
// clock, every stats counter, and the coherent memory image — for every
// worker count.
func TestParallelEngineOptimisticMatchesSequential(t *testing.T) {
	for _, m := range core.AllModels {
		for _, tc := range techniques {
			for _, dense := range []bool{false, true} {
				mode := "ff"
				if dense {
					mode = "dense"
				}
				t.Run(fmt.Sprintf("%v/%s/%s", m, tc.name, mode), func(t *testing.T) {
					cfg := sim.RealisticConfig()
					cfg.Procs = 3
					cfg.Model = m
					cfg.Tech = tc.tech
					cfg.DenseLoop = dense
					progs := mixProgs(3, 7)
					seq := runSeq(t, cfg, progs)
					for _, par := range []int{2, 4, 8} {
						diffResults(t, fmt.Sprintf("par=%d", par), seq, runOpt(t, cfg, progs, par))
					}
				})
			}
		}
	}
}

// TestParallelEngineOptimisticMesh is the low-lookahead differential: a
// mesh with per-hop latency has a 1-cycle conservative window, so nearly
// every optimistic window ends in a straggler rollback (the scheduler
// counters prove it below). Replayed windows must still commit the exact
// sequential send order for every worker count.
func TestParallelEngineOptimisticMesh(t *testing.T) {
	for _, m := range []core.Model{core.SC, core.RC} {
		for _, tc := range techniques {
			t.Run(fmt.Sprintf("%v/%s", m, tc.name), func(t *testing.T) {
				cfg := sim.RealisticConfig()
				cfg.Procs = 16
				cfg.Model = m
				cfg.Tech = tc.tech
				cfg.Topo = "mesh"
				cfg.MemModules = 16
				cfg.DirPointers = 8
				progs := wideProgs(16, 3, 3)
				seq := runSeq(t, cfg, progs)
				for _, par := range []int{2, 4, 8} {
					diffResults(t, fmt.Sprintf("par=%d", par), seq, runOpt(t, cfg, progs, par))
				}
			})
		}
	}
}

// TestParallelEngineOptimisticMeshCongested raises link contention (LinkGap
// 4, a narrow 2x8 mesh, two home columns) so queueing state dominates
// arrival times; Probe evaluates arrivals on a scratch copy of exactly that
// state, so congested replays are the hardest byte-identity case.
func TestParallelEngineOptimisticMeshCongested(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 16
	cfg.Model = core.SC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	cfg.Topo = "mesh:2x8"
	cfg.LinkGap = 4
	cfg.MemModules = 2
	cfg.DirPointers = 4
	progs := wideProgs(16, 4, 2)
	seq := runSeq(t, cfg, progs)
	for _, par := range []int{2, 8} {
		diffResults(t, fmt.Sprintf("par=%d", par), seq, runOpt(t, cfg, progs, par))
	}
}

// TestParallelEngineOptimisticMESI pins the protocol axis: exclusive-clean
// grants and silent MESI evictions are directory/cache transients the
// rollback checkpoints must capture exactly, on both network shapes.
func TestParallelEngineOptimisticMESI(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		cfg := sim.RealisticConfig()
		cfg.Procs = 3
		cfg.Model = core.RC
		cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
		cfg.Protocol = coherence.ProtoMESI
		progs := mixProgs(3, 7)
		seq := runSeq(t, cfg, progs)
		for _, par := range []int{2, 4, 8} {
			diffResults(t, fmt.Sprintf("par=%d", par), seq, runOpt(t, cfg, progs, par))
		}
	})
	t.Run("mesh", func(t *testing.T) {
		cfg := sim.RealisticConfig()
		cfg.Procs = 16
		cfg.Model = core.SC
		cfg.Tech = core.Technique{Prefetch: true}
		cfg.Protocol = coherence.ProtoMESI
		cfg.Topo = "mesh"
		cfg.MemModules = 16
		cfg.DirPointers = 8
		progs := wideProgs(16, 3, 3)
		seq := runSeq(t, cfg, progs)
		for _, par := range []int{2, 4} {
			diffResults(t, fmt.Sprintf("par=%d", par), seq, runOpt(t, cfg, progs, par))
		}
	})
}

// TestParallelEngineOptimisticScheduledWrites covers the external-write
// agent under rollback: injected writes live in the agent's inbox, so a
// rollback must restore them (checkpointed by value) without double-applying
// any write the aborted run-ahead already performed.
func TestParallelEngineOptimisticScheduledWrites(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = core.SC
	progs := mixProgs(2, 3)
	writes := []sim.ScheduledWrite{
		{Cycle: 0, Addr: 64, Value: 7},
		{Cycle: 10, Addr: 4, Value: 9},
		{Cycle: 500, Addr: 8, Value: -2},
		{Cycle: 501, Addr: 64, Value: 5},
	}
	runOne := func(par int) runResult {
		s := sim.New(cfg, progs)
		s.ScheduleWrites(writes)
		if par <= 1 {
			cycles, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
		}
		cycles, handled, err := parsim.RunOptimistic(s, par)
		if !handled || err != nil {
			t.Fatalf("par=%d handled=%v err=%v", par, handled, err)
		}
		return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
	}
	seq := runOne(1)
	for _, par := range []int{2, 4} {
		diffResults(t, fmt.Sprintf("par=%d", par), seq, runOne(par))
	}
}

// TestParallelEngineOptimisticMidFlight covers the capability the
// conservative engine lacks: a machine with deliveries already in flight
// (stopped mid-run). The conservative engine must decline it; the
// optimistic engine absorbs the pending messages and must finish the run
// byte-identically to the sequential continuation.
func TestParallelEngineOptimisticMidFlight(t *testing.T) {
	cfg := sim.RealisticConfig().WithMissLatency(100)
	cfg.Procs = 4
	cfg.Model = core.RC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	progs := mixProgs(4, 11)

	finish := func(stop uint64, par int) runResult {
		s := sim.New(cfg, progs)
		done, err := s.RunUntil(stop)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("machine finished before cycle %d; pick an earlier stop", stop)
		}
		if par <= 1 {
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			return runResult{s.HaltCycle() - s.BaseCycle(), s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
		}
		sim.ParEngine = "conservative"
		handled2, err2 := func() (bool, error) { _, h, e := parsim.Run(s, par); return h, e }()
		sim.ParEngine = "auto"
		if handled2 || err2 != nil {
			t.Fatalf("conservative engine accepted in-flight deliveries (handled=%v err=%v)", handled2, err2)
		}
		cycles, handled, err := parsim.RunOptimistic(s, par)
		if !handled || err != nil {
			t.Fatalf("par=%d handled=%v err=%v", par, handled, err)
		}
		_ = cycles
		return runResult{s.HaltCycle() - s.BaseCycle(), s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
	}

	for _, stop := range []uint64{40, 137, 400} {
		seq := finish(stop, 1)
		for _, par := range []int{2, 4} {
			diffResults(t, fmt.Sprintf("stop=%d/par=%d", stop, par), seq, finish(stop, par))
		}
	}
}

// TestParallelEngineOptimisticErrorParity pins the non-convergence path:
// with a cycle budget too small to finish, the optimistic engine must fail
// at the same cycle with the same error text as the sequential loop.
func TestParallelEngineOptimisticErrorParity(t *testing.T) {
	cfg := sim.RealisticConfig().WithMissLatency(100)
	cfg.Procs = 3
	cfg.Model = core.SC
	cfg.MaxCycles = 300 // far too few for this workload
	progs := mixProgs(3, 7)

	s1 := sim.New(cfg, progs)
	_, err1 := s1.Run()
	if err1 == nil {
		t.Fatal("sequential run converged; budget not small enough for the test")
	}
	for _, par := range []int{2, 8} {
		s2 := sim.New(cfg, progs)
		_, handled, err2 := parsim.RunOptimistic(s2, par)
		if !handled {
			t.Fatalf("engine declined par=%d", par)
		}
		if err2 == nil {
			t.Fatalf("par=%d converged where sequential errored", par)
		}
		if err1.Error() != err2.Error() {
			t.Errorf("par=%d error differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", par, err1, err2)
		}
		if s1.Cycle != s2.Cycle {
			t.Errorf("par=%d error cycle seq=%d par=%d", par, s1.Cycle, s2.Cycle)
		}
	}
}

// TestParallelEngineOptimisticDeclines pins the sequential-only cases: a
// zero-latency network (same-cycle mid-phase delivery) and whole-machine
// trace hooks cannot be windowed by any barrier engine.
func TestParallelEngineOptimisticDeclines(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.NetLatency = 0
	s := sim.New(cfg, mixProgs(2, 7))
	if _, handled, _ := parsim.RunOptimistic(s, 4); handled {
		t.Error("engine accepted a zero-latency network")
	}

	cfg = sim.RealisticConfig()
	cfg.Procs = 2
	s = sim.New(cfg, mixProgs(2, 7))
	s.TraceHooks = append(s.TraceHooks, func(*sim.System, uint64) {})
	if _, handled, _ := parsim.RunOptimistic(s, 4); handled {
		t.Error("engine accepted a system with trace hooks")
	}

	s = sim.New(cfg, mixProgs(2, 7))
	if _, handled, _ := parsim.RunOptimistic(s, 1); handled {
		t.Error("engine accepted par=1")
	}
}

// TestParallelEngineOptimisticViaRunKnob exercises the production entry
// point: sim.ParEngine = "optimistic" routes System.Run through the
// optimistic engine, and the scheduler report carries the Time Warp
// counters. The mesh config guarantees stragglers, so the rollback path is
// provably the one being differenced.
func TestParallelEngineOptimisticViaRunKnob(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 16
	cfg.Model = core.RC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	cfg.Topo = "mesh"
	cfg.MemModules = 16
	cfg.DirPointers = 8
	progs := wideProgs(16, 3, 3)
	seq := runSeq(t, cfg, progs)

	sim.ParWorkers = 4
	sim.ParEngine = "optimistic"
	defer func() { sim.ParWorkers = 0; sim.ParEngine = "auto" }()
	s := sim.New(cfg, progs)
	cycles, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "ParEngine=optimistic", seq, runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()})
	for _, want := range []string{"engine=optimistic", "checkpoints=", "rollbacks=", "replayed_cycles=", "max_optimism="} {
		if !strings.Contains(s.ParReport, want) {
			t.Errorf("ParReport missing %q:\n%s", want, s.ParReport)
		}
	}
	if strings.Contains(s.ParReport, "rollbacks=0 ") {
		t.Errorf("mesh run had no rollbacks; the straggler path went untested:\n%s", s.ParReport)
	}
}
