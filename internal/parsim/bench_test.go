package parsim_test

import (
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// benchmarkShards runs the largest E2-style row — the 8-processor mixed
// sharing workload at the sweep's longest miss latency (400 cycles), SC
// and RC under conventional and combined techniques — with the given shard
// worker count. par=1 is the sequential fast-forward engine; par>1 routes
// through the conservative window engine. "simcycles/s" is aggregate
// simulated throughput; the par=N / par=1 ns/op ratio is the scaling table
// in EXPERIMENTS.md.
func benchmarkShards(b *testing.B, par int) {
	const procs = 8
	progs := mixProgs(procs, 7)
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, m := range []core.Model{core.SC, core.RC} {
			for _, tc := range []core.Technique{
				{},
				{Prefetch: true, SpecLoad: true, ReissueOpt: true},
			} {
				cfg := sim.RealisticConfig().WithMissLatency(400)
				cfg.Procs = procs
				cfg.Model = m
				cfg.Tech = tc
				s := sim.New(cfg, progs)
				var cycles uint64
				var err error
				if par <= 1 {
					cycles, err = s.Run()
				} else {
					var handled bool
					cycles, handled, err = parsim.Run(s, par)
					if !handled {
						b.Fatal("parallel engine declined the benchmark config")
					}
				}
				if err != nil {
					b.Fatal(err)
				}
				total += cycles
			}
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkParallelShards1(b *testing.B) { benchmarkShards(b, 1) }
func BenchmarkParallelShards2(b *testing.B) { benchmarkShards(b, 2) }
func BenchmarkParallelShards4(b *testing.B) { benchmarkShards(b, 4) }
func BenchmarkParallelShards8(b *testing.B) { benchmarkShards(b, 8) }

// benchmarkMeshShards is the low-lookahead scaling benchmark: the
// wide-sharing workload on a 16-CPU mesh with 1-cycle hops, where the
// conservative engine's window collapses to a single cycle (a global
// barrier per simulated cycle). engine selects the shard engine; par=1 is
// the sequential fast-forward loop.
func benchmarkMeshShards(b *testing.B, par int, engine string) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 16
	cfg.Model = core.RC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	cfg.Topo = "mesh"
	cfg.HopLatency = 1
	cfg.MemModules = 16
	cfg.DirPointers = 8
	progs := wideProgs(16, 4, 4)
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(cfg, progs)
		var cycles uint64
		var err error
		switch {
		case par <= 1:
			cycles, err = s.Run()
		case engine == "optimistic":
			var handled bool
			cycles, handled, err = parsim.RunOptimistic(s, par)
			if !handled {
				b.Fatal("optimistic engine declined the benchmark config")
			}
		default:
			var handled bool
			cycles, handled, err = parsim.Run(s, par)
			if !handled {
				b.Fatal("conservative engine declined the benchmark config")
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		total = cycles
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkMeshShards1(b *testing.B)       { benchmarkMeshShards(b, 1, "") }
func BenchmarkMeshShards2(b *testing.B)       { benchmarkMeshShards(b, 2, "conservative") }
func BenchmarkMeshShards4(b *testing.B)       { benchmarkMeshShards(b, 4, "conservative") }
func BenchmarkMeshShards8(b *testing.B)       { benchmarkMeshShards(b, 8, "conservative") }
func BenchmarkOptimisticShards2(b *testing.B) { benchmarkMeshShards(b, 2, "optimistic") }
func BenchmarkOptimisticShards4(b *testing.B) { benchmarkMeshShards(b, 4, "optimistic") }
func BenchmarkOptimisticShards8(b *testing.B) { benchmarkMeshShards(b, 8, "optimistic") }

// benchmarkMeshBarrier is the bulk-synchronous low-lookahead benchmark:
// four CPUs on a memory-rich 1-cycle-hop mesh, each computing a long
// data-parallel phase on private lines (warm after a cold-miss trickle)
// and meeting at a sense-reversing barrier. The conservative engine's
// window collapses to one cycle on this machine, so it pays a work
// selection scan, a dispatch and a global barrier per simulated cycle of
// the compute stretch; the optimistic engine commits the same stretches
// in horizon-sized windows off a single checkpoint — the workload shape
// Time Warp optimism is built for.
func benchmarkMeshBarrier(b *testing.B, par int, engine string) {
	const procs = 4
	cfg := sim.RealisticConfig()
	cfg.Procs = procs
	cfg.Model = core.RC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	cfg.Topo = "mesh"
	cfg.HopLatency = 1
	cfg.MemModules = 16
	cfg.DirPointers = 8
	progs := make([]*isa.Program, procs)
	for p := range progs {
		progs[p] = workload.BarrierPhases(p, procs, 1, 32768)
	}
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(cfg, progs)
		var cycles uint64
		var err error
		switch {
		case par <= 1:
			cycles, err = s.Run()
		case engine == "optimistic":
			var handled bool
			cycles, handled, err = parsim.RunOptimistic(s, par)
			if !handled {
				b.Fatal("optimistic engine declined the benchmark config")
			}
		default:
			var handled bool
			cycles, handled, err = parsim.Run(s, par)
			if !handled {
				b.Fatal("conservative engine declined the benchmark config")
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		total = cycles
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkMeshBarrier1(b *testing.B)       { benchmarkMeshBarrier(b, 1, "") }
func BenchmarkMeshBarrier2(b *testing.B)       { benchmarkMeshBarrier(b, 2, "conservative") }
func BenchmarkMeshBarrier4(b *testing.B)       { benchmarkMeshBarrier(b, 4, "conservative") }
func BenchmarkMeshBarrier8(b *testing.B)       { benchmarkMeshBarrier(b, 8, "conservative") }
func BenchmarkOptimisticBarrier2(b *testing.B) { benchmarkMeshBarrier(b, 2, "optimistic") }
func BenchmarkOptimisticBarrier4(b *testing.B) { benchmarkMeshBarrier(b, 4, "optimistic") }
func BenchmarkOptimisticBarrier8(b *testing.B) { benchmarkMeshBarrier(b, 8, "optimistic") }
