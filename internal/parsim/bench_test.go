package parsim_test

import (
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
)

// benchmarkShards runs the largest E2-style row — the 8-processor mixed
// sharing workload at the sweep's longest miss latency (400 cycles), SC
// and RC under conventional and combined techniques — with the given shard
// worker count. par=1 is the sequential fast-forward engine; par>1 routes
// through the conservative window engine. "simcycles/s" is aggregate
// simulated throughput; the par=N / par=1 ns/op ratio is the scaling table
// in EXPERIMENTS.md.
func benchmarkShards(b *testing.B, par int) {
	const procs = 8
	progs := mixProgs(procs, 7)
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, m := range []core.Model{core.SC, core.RC} {
			for _, tc := range []core.Technique{
				{},
				{Prefetch: true, SpecLoad: true, ReissueOpt: true},
			} {
				cfg := sim.RealisticConfig().WithMissLatency(400)
				cfg.Procs = procs
				cfg.Model = m
				cfg.Tech = tc
				s := sim.New(cfg, progs)
				var cycles uint64
				var err error
				if par <= 1 {
					cycles, err = s.Run()
				} else {
					var handled bool
					cycles, handled, err = parsim.Run(s, par)
					if !handled {
						b.Fatal("parallel engine declined the benchmark config")
					}
				}
				if err != nil {
					b.Fatal(err)
				}
				total += cycles
			}
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkParallelShards1(b *testing.B) { benchmarkShards(b, 1) }
func BenchmarkParallelShards2(b *testing.B) { benchmarkShards(b, 2) }
func BenchmarkParallelShards4(b *testing.B) { benchmarkShards(b, 4) }
func BenchmarkParallelShards8(b *testing.B) { benchmarkShards(b, 8) }
