package parsim_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/parsim"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// The tests drive parsim.Run directly (not via sim.ParWorkers) so they
// never leak process-global state into other packages' tests; the budget is
// raised explicitly because the differential guarantee must hold — and be
// exercised — regardless of how many CPUs the host happens to have.
func init() { parsim.SetWorkerBudget(8) }

var techniques = []struct {
	name string
	tech core.Technique
}{
	{"conv", core.Technique{}},
	{"pf", core.Technique{Prefetch: true}},
	{"spec", core.Technique{SpecLoad: true, ReissueOpt: true}},
	{"pf+spec", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
}

func mixProgs(nprocs int, seed int64) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.RandomSharing(p, nprocs, workload.EqualizationMix(seed))
	}
	return progs
}

type runResult struct {
	cycles   uint64
	endCycle uint64
	stats    string
	mem      map[uint64]int64
}

// runSeq runs cfg sequentially; runPar runs it through the parallel engine
// and fails the test if the engine declined the configuration.
func runSeq(t testing.TB, cfg sim.Config, progs []*isa.Program) runResult {
	t.Helper()
	s := sim.New(cfg, progs)
	cycles, err := s.Run()
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
}

func runPar(t testing.TB, cfg sim.Config, progs []*isa.Program, par int) runResult {
	t.Helper()
	s := sim.New(cfg, progs)
	cycles, handled, err := parsim.Run(s, par)
	if !handled {
		t.Fatalf("parallel engine declined par=%d (latency=%d)", par, cfg.NetLatency)
	}
	if err != nil {
		t.Fatalf("parallel run par=%d: %v", par, err)
	}
	return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
}

func diffResults(t *testing.T, label string, seq, par runResult) {
	t.Helper()
	if seq.cycles != par.cycles {
		t.Errorf("%s: halt cycle seq=%d par=%d", label, seq.cycles, par.cycles)
	}
	if seq.endCycle != par.endCycle {
		t.Errorf("%s: final clock seq=%d par=%d", label, seq.endCycle, par.endCycle)
	}
	if seq.stats != par.stats {
		t.Errorf("%s: stats reports differ:\n--- sequential ---\n%s--- parallel ---\n%s", label, seq.stats, par.stats)
	}
	if !reflect.DeepEqual(seq.mem, par.mem) {
		t.Errorf("%s: coherent memory images differ: seq=%v par=%v", label, seq.mem, par.mem)
	}
}

// TestParallelEngineMatchesSequential is the differential gate for the
// conservative parallel engine: across the model × technique grid, in both
// dense and fast-forward mode, the sharded run must reproduce the
// sequential run exactly — halt cycle, final clock value, every stats
// counter, and the coherent memory image — for every worker count.
func TestParallelEngineMatchesSequential(t *testing.T) {
	for _, m := range core.AllModels {
		for _, tc := range techniques {
			for _, dense := range []bool{false, true} {
				mode := "ff"
				if dense {
					mode = "dense"
				}
				t.Run(fmt.Sprintf("%v/%s/%s", m, tc.name, mode), func(t *testing.T) {
					cfg := sim.RealisticConfig()
					cfg.Procs = 3
					cfg.Model = m
					cfg.Tech = tc.tech
					cfg.DenseLoop = dense
					progs := mixProgs(3, 7)
					seq := runSeq(t, cfg, progs)
					for _, par := range []int{2, 4, 8} {
						diffResults(t, fmt.Sprintf("par=%d", par), seq, runPar(t, cfg, progs, par))
					}
				})
			}
		}
	}
}

// TestParallelEngineDistributedMemory exercises the multi-home/banked
// memory and bounded-directory-bandwidth paths (the E12 configuration
// shape), where several directory shards serve interleaved lines.
func TestParallelEngineDistributedMemory(t *testing.T) {
	for _, mods := range []int{2, 4} {
		for _, bw := range []int{0, 1} {
			t.Run(fmt.Sprintf("modules=%d/bw=%d", mods, bw), func(t *testing.T) {
				cfg := sim.RealisticConfig().WithMissLatency(100)
				cfg.Procs = 4
				cfg.Model = core.RC
				cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
				cfg.MemModules = mods
				cfg.DirBandwidth = bw
				progs := mixProgs(4, 11)
				seq := runSeq(t, cfg, progs)
				for _, par := range []int{2, 8} {
					diffResults(t, fmt.Sprintf("par=%d", par), seq, runPar(t, cfg, progs, par))
				}
			})
		}
	}
}

// TestParallelEngineScheduledWrites covers the external-write agent shard:
// writes injected at fixed cycles (including a backlog before the first
// cycle the machine is busy) must land identically.
func TestParallelEngineScheduledWrites(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = core.SC
	progs := mixProgs(2, 3)
	writes := []sim.ScheduledWrite{
		{Cycle: 0, Addr: 64, Value: 7},
		{Cycle: 10, Addr: 4, Value: 9},
		{Cycle: 500, Addr: 8, Value: -2},
		{Cycle: 501, Addr: 64, Value: 5},
	}
	runOne := func(par int) runResult {
		s := sim.New(cfg, progs)
		s.ScheduleWrites(writes)
		if par <= 1 {
			cycles, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
		}
		cycles, handled, err := parsim.Run(s, par)
		if !handled || err != nil {
			t.Fatalf("par=%d handled=%v err=%v", par, handled, err)
		}
		return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
	}
	seq := runOne(1)
	for _, par := range []int{2, 4} {
		diffResults(t, fmt.Sprintf("par=%d", par), seq, runOne(par))
	}
}

// TestParallelEngineNSTBypass covers the Stenstrom NST comparator, whose
// cacheless accesses flow through the directory's MemRead/MemWrite path.
func TestParallelEngineNSTBypass(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 3
	cfg.Model = core.SC
	cfg.NST = true
	progs := mixProgs(3, 5)
	seq := runSeq(t, cfg, progs)
	diffResults(t, "par=4", seq, runPar(t, cfg, progs, 4))
}

// TestParallelEngineErrorParity pins the non-convergence path: with a cycle
// budget too small to finish, the parallel engine must fail at the same
// cycle with the same error text (including the machine dump) as the
// sequential loop.
func TestParallelEngineErrorParity(t *testing.T) {
	cfg := sim.RealisticConfig().WithMissLatency(100)
	cfg.Procs = 3
	cfg.Model = core.SC
	cfg.MaxCycles = 300 // far too few for this workload
	progs := mixProgs(3, 7)

	s1 := sim.New(cfg, progs)
	_, err1 := s1.Run()
	if err1 == nil {
		t.Fatal("sequential run converged; budget not small enough for the test")
	}
	for _, par := range []int{2, 8} {
		s2 := sim.New(cfg, progs)
		_, handled, err2 := parsim.Run(s2, par)
		if !handled {
			t.Fatalf("engine declined par=%d", par)
		}
		if err2 == nil {
			t.Fatalf("par=%d converged where sequential errored", par)
		}
		if err1.Error() != err2.Error() {
			t.Errorf("par=%d error differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", par, err1, err2)
		}
		if s1.Cycle != s2.Cycle {
			t.Errorf("par=%d error cycle seq=%d par=%d", par, s1.Cycle, s2.Cycle)
		}
	}
}

// TestParallelEngineWarmupChaining pins the LoadPrograms phase-chaining
// pattern (warm caches, then measure): a parallel warmup phase must leave
// the machine — clock included — in a state from which the second phase
// reproduces the sequential timings exactly, and vice versa.
func TestParallelEngineWarmupChaining(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = core.WC
	warm := mixProgs(2, 19)
	measure := mixProgs(2, 23)

	run := func(warmPar, measurePar int) runResult {
		s := sim.New(cfg, warm)
		phase := func(par int) uint64 {
			if par <= 1 {
				c, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			c, handled, err := parsim.Run(s, par)
			if !handled || err != nil {
				t.Fatalf("par=%d handled=%v err=%v", par, handled, err)
			}
			return c
		}
		phase(warmPar)
		s.LoadPrograms(measure)
		cycles := phase(measurePar)
		return runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
	}

	seq := run(1, 1)
	diffResults(t, "par-warm/seq-measure", seq, run(4, 1))
	diffResults(t, "seq-warm/par-measure", seq, run(1, 4))
	diffResults(t, "par-warm/par-measure", seq, run(4, 4))
}

// TestParallelEngineDeclines pins the fallback conditions: zero-latency
// networks and attached trace hooks cannot be windowed and must be declined
// (System.Run then transparently uses the sequential loop).
func TestParallelEngineDeclines(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.NetLatency = 0
	s := sim.New(cfg, mixProgs(2, 7))
	if _, handled, _ := parsim.Run(s, 4); handled {
		t.Error("engine accepted a zero-latency network")
	}

	cfg = sim.RealisticConfig()
	cfg.Procs = 2
	s = sim.New(cfg, mixProgs(2, 7))
	s.TraceHooks = append(s.TraceHooks, func(*sim.System, uint64) {})
	if _, handled, _ := parsim.Run(s, 4); handled {
		t.Error("engine accepted a system with trace hooks")
	}

	s = sim.New(cfg, mixProgs(2, 7))
	if _, handled, _ := parsim.Run(s, 1); handled {
		t.Error("engine accepted par=1")
	}
}

// TestParallelEngineViaRunKnob exercises the production entry point: the
// process-wide sim.ParWorkers knob routing System.Run through the
// registered engine, including the fallback path staying invisible.
func TestParallelEngineViaRunKnob(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 3
	cfg.Model = core.PC
	cfg.Tech = core.Technique{Prefetch: true}
	progs := mixProgs(3, 7)
	seq := runSeq(t, cfg, progs)

	sim.ParWorkers = 4
	defer func() { sim.ParWorkers = 0 }()
	s := sim.New(cfg, progs)
	cycles, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	par := runResult{cycles, s.Cycle, s.StatsReport(), s.CoherentSnapshot()}
	diffResults(t, "ParWorkers=4", seq, par)
	if s.ParReport == "" {
		t.Error("parallel run left ParReport empty")
	}
	if !strings.Contains(s.ParReport, "parsim: shards=5") {
		t.Errorf("unexpected ParReport header:\n%s", s.ParReport)
	}
}

// TestParallelEngineSchedStats sanity-checks the scheduler-observability
// counters: a real run must execute windows, step cycles on several shards,
// and exchange messages.
func TestParallelEngineSchedStats(t *testing.T) {
	cfg := sim.RealisticConfig().WithMissLatency(400)
	cfg.Procs = 3
	cfg.Model = core.SC
	s := sim.New(cfg, mixProgs(3, 7))
	if _, handled, err := parsim.Run(s, 4); !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	rep := s.ParReport
	for _, want := range []string{"windows=", "exchanged=", "proc0", "proc2", "home0", "agent"} {
		if !strings.Contains(rep, want) {
			t.Errorf("ParReport missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "exchanged=0 ") {
		t.Errorf("no messages exchanged at the barriers:\n%s", rep)
	}
}
