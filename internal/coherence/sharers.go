package coherence

import (
	"fmt"
	"math/bits"
	"sort"

	"mcmsim/internal/network"
)

// sharerConfig selects the directory's sharer-tracking scheme. The zero
// value is the seed behavior: an unbounded exact sharer list, which on a
// P-CPU machine is equivalent to a full P-bit vector per line.
//
// With pointers > 0 the directory is a limited-pointer scheme (Dir_i_B
// style): each line tracks up to that many exact sharer pointers, and on
// overflow falls back to a coarse vector — a single 64-bit word whose bits
// each cover a group of ceil(cpus/64) consecutive CPU node IDs (the SGI
// Origin scheme). Coarse lines over-invalidate (every CPU in a set group
// receives the invalidation; non-sharers just ack) and ignore replacement
// hints (a hint cannot clear a group bit other CPUs may still need), but
// storage per line stays O(pointers + 1 word) no matter how many CPUs the
// machine has.
type sharerConfig struct {
	cpus     int // CPU node IDs 0..cpus-1 are the only possible sharers
	pointers int // exact-pointer capacity; 0 = unbounded exact
	group    int // CPU IDs per coarse bit; >= ceil(cpus/64)
}

// ConfigureSharers switches the directory to limited-pointer tracking with
// the given pointer capacity, falling back to a coarse vector over groups
// of `group` CPUs on overflow (group 0 picks the smallest group that fits
// 64 bits). Call before any traffic; cpus is the machine's CPU count.
func (d *Directory) ConfigureSharers(cpus, pointers, group int) {
	if pointers <= 0 {
		d.sharerCfg = sharerConfig{}
		return
	}
	if cpus <= 0 {
		panic("coherence: limited-pointer tracking needs the CPU count")
	}
	minGroup := (cpus + 63) / 64
	if group < minGroup {
		group = minGroup
	}
	d.sharerCfg = sharerConfig{cpus: cpus, pointers: pointers, group: group}
}

// sharerSet is one line's sharer tracking: an ascending exact pointer list,
// or — after a limited-pointer overflow — a coarse group bit-vector. The
// coarse word is nonzero exactly when the set is in coarse mode (overflow
// implies at least one sharer, removal is ignored in coarse mode, and only
// clear() leaves the mode).
type sharerSet struct {
	ptrs   []network.NodeID
	coarse uint64
}

func (s *sharerSet) coarseMode() bool { return s.coarse != 0 }

func (s *sharerSet) empty() bool { return s.coarse == 0 && len(s.ptrs) == 0 }

// count returns the exact sharer count, or in coarse mode the number of
// CPUs the set bits cover (an upper bound on the true sharers).
func (s *sharerSet) count(cfg sharerConfig) int {
	if !s.coarseMode() {
		return len(s.ptrs)
	}
	n := 0
	for g := 0; g < 64; g++ {
		if s.coarse&(1<<g) == 0 {
			continue
		}
		hi := (g + 1) * cfg.group
		if hi > cfg.cpus {
			hi = cfg.cpus
		}
		n += hi - g*cfg.group
	}
	return n
}

func (s *sharerSet) groupBit(cfg sharerConfig, id network.NodeID) uint64 {
	g := int(id) / cfg.group
	if g >= 64 || int(id) >= cfg.cpus {
		panic(fmt.Sprintf("coherence: sharer %d outside %d-CPU coarse vector", id, cfg.cpus))
	}
	return 1 << g
}

// has reports membership; in coarse mode it is conservative (true for any
// CPU in a set group).
func (s *sharerSet) has(cfg sharerConfig, id network.NodeID) bool {
	if s.coarseMode() {
		return s.coarse&s.groupBit(cfg, id) != 0
	}
	i := sort.Search(len(s.ptrs), func(i int) bool { return s.ptrs[i] >= id })
	return i < len(s.ptrs) && s.ptrs[i] == id
}

// add inserts a sharer, converting to the coarse vector when the pointer
// capacity would overflow.
func (s *sharerSet) add(cfg sharerConfig, id network.NodeID) {
	if s.coarseMode() {
		s.coarse |= s.groupBit(cfg, id)
		return
	}
	i := sort.Search(len(s.ptrs), func(i int) bool { return s.ptrs[i] >= id })
	if i < len(s.ptrs) && s.ptrs[i] == id {
		return
	}
	if cfg.pointers > 0 && len(s.ptrs) >= cfg.pointers {
		// Overflow: fold every tracked pointer plus the newcomer into the
		// coarse vector and drop the pointer list.
		for _, p := range s.ptrs {
			s.coarse |= s.groupBit(cfg, p)
		}
		s.coarse |= s.groupBit(cfg, id)
		s.ptrs = s.ptrs[:0]
		return
	}
	s.ptrs = append(s.ptrs, 0)
	copy(s.ptrs[i+1:], s.ptrs[i:])
	s.ptrs[i] = id
}

// remove drops a sharer. In coarse mode it is a no-op: a single departure
// cannot prove its group bit is clearable (the caller counts the ignored
// hint instead).
func (s *sharerSet) remove(id network.NodeID) {
	if s.coarseMode() {
		return
	}
	i := sort.Search(len(s.ptrs), func(i int) bool { return s.ptrs[i] >= id })
	if i < len(s.ptrs) && s.ptrs[i] == id {
		s.ptrs = append(s.ptrs[:i], s.ptrs[i+1:]...)
	}
}

// clear empties the set and returns it to exact mode.
func (s *sharerSet) clear() {
	s.ptrs = s.ptrs[:0]
	s.coarse = 0
}

// forEach visits every tracked sharer except exclude, in ascending node-ID
// order — a fixed order, because the visit order decides the network send
// order of invalidations, which on a contended topology decides link
// occupancy and therefore timing. In coarse mode it expands each set group
// to all of its CPUs (the over-invalidation inherent to the scheme).
func (s *sharerSet) forEach(cfg sharerConfig, exclude network.NodeID, f func(network.NodeID)) {
	if !s.coarseMode() {
		for _, p := range s.ptrs {
			if p != exclude {
				f(p)
			}
		}
		return
	}
	for g := 0; g < 64; g++ {
		if s.coarse&(1<<g) == 0 {
			continue
		}
		hi := (g + 1) * cfg.group
		if hi > cfg.cpus {
			hi = cfg.cpus
		}
		for id := g * cfg.group; id < hi; id++ {
			if n := network.NodeID(id); n != exclude {
				f(n)
			}
		}
	}
}

// popcount of the coarse word (debug/stat use).
func (s *sharerSet) coarseGroups() int { return bits.OnesCount64(s.coarse) }
