package coherence

import (
	"fmt"
	"sort"

	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// LineState is the serializable directory entry for one line. Only stable
// fields appear: a quiescent directory (the only kind ExportState accepts)
// has no busy recalls, no queued requests and no pending ingress, so the
// entry reduces to the sharing vector and the version counter. The version
// must persist even for uncached lines — grants already handed out carry
// it, and caches order racing messages by it.
type LineState struct {
	Addr    uint64
	State   uint8
	Sharers []network.NodeID // ascending; exact-mode sharers (empty if coarse)
	Owner   network.NodeID
	Ver     uint64
	// Coarse is the line's coarse-vector word when limited-pointer tracking
	// overflowed (nonzero exactly in coarse mode); its group layout is the
	// writer's sharerConfig, so restore requires an identically configured
	// directory.
	Coarse uint64
}

// State is the serializable state of one home module.
type State struct {
	Lines []LineState // ascending by Addr
	Stats stats.State
}

// ExportState captures the directory state. It fails unless the directory
// is quiescent: busy transactions hold in-flight messages, which are
// transient state the snapshot layer refuses to chase.
func (d *Directory) ExportState() (State, error) {
	if !d.Quiescent() {
		return State{}, fmt.Errorf("coherence: export of non-quiescent directory %d", d.ID)
	}
	st := State{Lines: make([]LineState, 0, len(d.lines)), Stats: d.Stats.ExportState()}
	for addr, l := range d.lines {
		ls := LineState{Addr: addr, State: uint8(l.state), Owner: l.owner, Ver: l.ver, Coarse: l.sharers.coarse}
		ls.Sharers = append(ls.Sharers, l.sharers.ptrs...) // already ascending
		st.Lines = append(st.Lines, ls)
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Addr < st.Lines[j].Addr })
	return st, nil
}

// RestoreState replaces the directory's line table and statistics with the
// exported ones. The directory must be idle (freshly constructed or
// quiescent).
func (d *Directory) RestoreState(st State) error {
	if !d.Quiescent() {
		return fmt.Errorf("coherence: restore into non-quiescent directory %d", d.ID)
	}
	lines := make(map[uint64]*dirLine, len(st.Lines))
	for _, ls := range st.Lines {
		l := &dirLine{state: dirState(ls.State), owner: ls.Owner, ver: ls.Ver}
		if ls.Coarse != 0 {
			if d.sharerCfg.pointers <= 0 {
				return fmt.Errorf("coherence: coarse-vector line %#x restored into an exact-tracking directory", ls.Addr)
			}
			l.sharers.coarse = ls.Coarse
		} else {
			l.sharers.ptrs = append(l.sharers.ptrs, ls.Sharers...)
			sort.Slice(l.sharers.ptrs, func(i, j int) bool { return l.sharers.ptrs[i] < l.sharers.ptrs[j] })
		}
		lines[ls.Addr] = l
	}
	d.lines = lines
	d.Stats.RestoreState(st.Stats)
	return nil
}
