package coherence

import (
	"fmt"
	"sort"

	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// LineState is the serializable directory entry for one line, including a
// busy recall transaction mid-flight: the recall tag, the request being
// served and the requests queued behind it are captured by value (the
// directory retained the live messages past delivery, so the snapshot must
// not alias the pool). The version must persist even for uncached lines —
// grants already handed out carry it, and caches order racing messages by
// it.
type LineState struct {
	Addr    uint64
	State   uint8
	Sharers []network.NodeID // ascending; exact-mode sharers (empty if coarse)
	Owner   network.NodeID
	Ver     uint64
	// Coarse is the line's coarse-vector word when limited-pointer tracking
	// overflowed (nonzero exactly in coarse mode); its group layout is the
	// writer's sharerConfig, so restore requires an identically configured
	// directory.
	Coarse uint64

	// Busy recall transaction (empty at quiescence).
	Busy       bool
	RecallTag  uint64
	PendingReq *network.MessageState
	WaitQ      []network.MessageState // FIFO order preserved
}

// State is the serializable state of one home module. Ingress holds the
// requests admitted but not yet serviced under bounded directory bandwidth,
// in arrival order; empty at quiescence.
type State struct {
	Lines   []LineState // ascending by Addr
	Stats   stats.State
	Ingress []network.MessageState
}

// ExportState captures the directory state, busy transactions included.
func (d *Directory) ExportState() (State, error) {
	var st State
	if err := d.ExportStateInto(&st); err != nil {
		return State{}, err
	}
	return st, nil
}

// ExportStateInto captures the directory into st, reusing st's backing
// storage (per-window engine checkpoints call this on every dispatched home
// shard). Reused inner buffers are read out of the previous capture's slot
// before append overwrites that slot of the shared backing array.
func (d *Directory) ExportStateInto(st *State) error {
	d.Stats.ExportStateInto(&st.Stats)
	prev := st.Lines
	st.Lines = st.Lines[:0]
	li := 0
	for addr, l := range d.lines {
		var sharerBuf []network.NodeID
		var waitBuf []network.MessageState
		if li < len(prev) {
			sharerBuf, waitBuf = prev[li].Sharers[:0], prev[li].WaitQ[:0]
		}
		li++
		ls := LineState{
			Addr: addr, State: uint8(l.state), Owner: l.owner, Ver: l.ver,
			Coarse: l.sharers.coarse,
			Busy:   l.busy, RecallTag: l.recallTag,
		}
		ls.Sharers = append(sharerBuf, l.sharers.ptrs...) // already ascending
		if l.pendingReq != nil {
			ms := network.ExportMessage(l.pendingReq)
			ls.PendingReq = &ms
		}
		ls.WaitQ = waitBuf
		for _, m := range l.waitQ {
			ls.WaitQ = append(ls.WaitQ, network.ExportMessage(m))
		}
		st.Lines = append(st.Lines, ls)
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Addr < st.Lines[j].Addr })
	st.Ingress = st.Ingress[:0]
	for _, m := range d.ingress {
		st.Ingress = append(st.Ingress, network.ExportMessage(m))
	}
	return nil
}

// RestoreState replaces the directory's entire state — line table, busy
// transactions, ingress queue and statistics — with the exported one. Any
// in-progress state the directory held is discarded (the optimistic
// engine's rollback path); retained messages are materialized as fresh
// unpooled allocations, since the originals may have been recycled.
func (d *Directory) RestoreState(st State) error {
	// Rollback restores once per mis-speculated window; reuse the discarded
	// table's dirLine objects and inner buffers in place (*dirLine never
	// escapes the package).
	d.linePool = d.linePool[:0]
	for _, l := range d.lines {
		d.linePool = append(d.linePool, l)
	}
	if d.lines == nil {
		d.lines = make(map[uint64]*dirLine, len(st.Lines))
	} else {
		clear(d.lines)
	}
	for i, ls := range st.Lines {
		var l *dirLine
		if i < len(d.linePool) {
			l = d.linePool[i]
		} else {
			l = new(dirLine)
		}
		ptrBuf, waitBuf := l.sharers.ptrs[:0], l.waitQ[:0]
		*l = dirLine{state: dirState(ls.State), owner: ls.Owner, ver: ls.Ver, busy: ls.Busy, recallTag: ls.RecallTag}
		if ls.Coarse != 0 {
			if d.sharerCfg.pointers <= 0 {
				return fmt.Errorf("coherence: coarse-vector line %#x restored into an exact-tracking directory", ls.Addr)
			}
			l.sharers.coarse = ls.Coarse
		} else {
			l.sharers.ptrs = append(ptrBuf, ls.Sharers...)
			sort.Slice(l.sharers.ptrs, func(i, j int) bool { return l.sharers.ptrs[i] < l.sharers.ptrs[j] })
		}
		if ls.PendingReq != nil {
			l.pendingReq = ls.PendingReq.Instantiate()
		}
		l.waitQ = waitBuf
		for _, ms := range ls.WaitQ {
			l.waitQ = append(l.waitQ, ms.Instantiate())
		}
		d.lines[ls.Addr] = l
	}
	d.ingress = d.ingress[:0]
	for _, ms := range st.Ingress {
		d.ingress = append(d.ingress, ms.Instantiate())
	}
	d.Stats.RestoreState(st.Stats)
	return nil
}
