package coherence

import "fmt"

// DebugBusy renders all busy or queued lines for diagnostics.
func (d *Directory) DebugBusy() []string {
	var out []string
	for a, l := range d.lines {
		if l.busy || len(l.waitQ) > 0 {
			out = append(out, fmt.Sprintf("line=%#x state=%v owner=%d ver=%d busy=%v recallTag=%d waitQ=%d",
				a, l.state, l.owner, l.ver, l.busy, l.recallTag, len(l.waitQ)))
		}
	}
	return out
}

// DebugTraceLine, when nonzero, prints every message the directory handles
// for that line (diagnostic aid; off by default).
var DebugTraceLine uint64

// DebugTraceSink receives the trace lines (defaults to stdout via println).
var DebugTraceSink = func(s string) { println(s) }
