package coherence

import (
	"testing"

	"mcmsim/internal/network"
)

// TestMESIExclusiveCleanGrant: under MESI a GetS for an uncached line is
// granted exclusive-clean — a DataEx with zero pending acks — and the
// directory tracks the reader as owner. Under MSI the same request stays a
// plain shared Data grant.
func TestMESIExclusiveCleanGrant(t *testing.T) {
	r := newDirRig(2, ProtoMESI)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	grants := r.nodes[0].byType(MsgDataEx)
	if len(grants) != 1 || grants[0].AckCount != 0 {
		t.Fatalf("DataEx grants = %+v, want one grant with zero acks", grants)
	}
	if got := r.dir.StateOf(0x40); got != "exclusive(0)" {
		t.Fatalf("dir state = %s, want exclusive(0)", got)
	}
	if r.dir.Stats.Counter("exclusive_clean_grants").Value() != 1 {
		t.Error("exclusive-clean grant not counted")
	}
	// A second reader must demote the line to shared via a recall, exactly
	// like an MSI dirty owner.
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	if recalls := r.nodes[0].byType(network.MsgRecallShare); len(recalls) != 1 {
		t.Fatalf("recalls to the exclusive-clean owner = %d, want 1", len(recalls))
	}

	m := newDirRig(2, ProtoInvalidate)
	m.send(&network.Message{Type: MsgGetS, Src: 0, Dst: m.dir.ID, Line: 0x40})
	if ex := m.nodes[0].byType(MsgDataEx); len(ex) != 0 {
		t.Fatalf("MSI granted DataEx on a read: %+v", ex)
	}
	if data := m.nodes[0].byType(MsgData); len(data) != 1 {
		t.Fatalf("MSI shared grants = %d, want 1", len(data))
	}
}

// TestMESISilentEvictionRegrant: an exclusive-clean owner may drop its line
// without telling the directory. Its own later re-request is the proof of
// that eviction — a writeback for a dirty line would still be blocking the
// cache's re-request — so the directory re-grants exclusively with zero
// acks instead of recalling the requester from itself.
func TestMESISilentEvictionRegrant(t *testing.T) {
	for _, req := range []network.MsgType{MsgGetS, MsgGetX} {
		r := newDirRig(2, ProtoMESI)
		r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
		if got := r.dir.StateOf(0x40); got != "exclusive(0)" {
			t.Fatalf("%v: dir state = %s", req, got)
		}
		// Cache 0 silently evicts (no message at all), then requests again.
		r.send(&network.Message{Type: req, Src: 0, Dst: r.dir.ID, Line: 0x40})
		grants := r.nodes[0].byType(MsgDataEx)
		if len(grants) != 2 || grants[1].AckCount != 0 {
			t.Fatalf("%v: DataEx grants = %+v, want re-grant with zero acks", req, grants)
		}
		if got := r.dir.StateOf(0x40); got != "exclusive(0)" {
			t.Fatalf("%v: dir state after re-grant = %s", req, got)
		}
		if r.dir.Stats.Counter("silent_eviction_regrants").Value() != 1 {
			t.Errorf("%v: re-grant not counted", req)
		}
		if recalls := r.nodes[0].byType(network.MsgRecallInv); len(recalls) != 0 {
			t.Errorf("%v: directory recalled the requester from itself", req)
		}
	}
}

// TestMESIRecallNoCopyCompletion: a recall answered with a no-copy
// writeback (nil data — the owner held the line exclusive-clean or had
// silently dropped it) must complete without touching memory, and the
// waiting request is served from memory's still-valid copy.
func TestMESIRecallNoCopyCompletion(t *testing.T) {
	r := newDirRig(2, ProtoMESI)
	r.mem.WriteWord(0x40, 7)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})

	// Cache 1 wants to write; the exclusive-clean owner is recalled.
	r.send(&network.Message{Type: MsgGetX, Src: 1, Dst: r.dir.ID, Line: 0x40})
	recalls := r.nodes[0].byType(network.MsgRecallInv)
	if len(recalls) != 1 {
		t.Fatalf("recalls = %d, want 1", len(recalls))
	}
	// The owner answers without a copy: silent eviction already happened
	// (or the line was clean and invalidated on the spot).
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: nil, Tag: recalls[0].Tag, AckCount: 0,
	})
	if got := r.mem.ReadWord(0x40); got != 7 {
		t.Errorf("no-copy recall response disturbed memory: %d, want 7", got)
	}
	grants := r.nodes[1].byType(MsgDataEx)
	if len(grants) != 1 || grants[0].AckCount != 0 {
		t.Fatalf("writer grants = %+v, want one DataEx with zero acks", grants)
	}
	if grants[0].Data[0] != 7 {
		t.Errorf("writer granted data %v, want memory's copy 7", grants[0].Data)
	}
	if got := r.dir.StateOf(0x40); got != "exclusive(1)" {
		t.Errorf("dir state = %s, want exclusive(1)", got)
	}
}

// TestMESIBusyLineSelfCompletion: the three-way race behind the dispatch
// fix. Cache 0 silently evicts its exclusive-clean line; cache 1's GetX
// makes the directory recall cache 0 (line busy); cache 0's own re-request
// then arrives at the busy line. That request proves the recall can never
// be answered with data — the directory completes the recall with no copy,
// grants cache 1, and only then lets cache 0's request contend (recalling
// the new owner). Nothing deadlocks and both requesters are served.
func TestMESIBusyLineSelfCompletion(t *testing.T) {
	r := newDirRig(2, ProtoMESI)
	r.mem.WriteWord(0x40, 7)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})

	// Deliver GetX and GetS in one drain so the GetS hits the busy window.
	r.net.Send(&network.Message{Type: MsgGetX, Src: 1, Dst: r.dir.ID, Line: 0x40}, r.cycle)
	r.net.Send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40}, r.cycle)
	r.drain()

	if r.dir.Stats.Counter("recall_self_completions").Value() != 1 {
		t.Error("self-completion not taken")
	}
	if got := r.mem.ReadWord(0x40); got != 7 {
		t.Errorf("self-completed recall disturbed memory: %d, want 7", got)
	}
	// Cache 1 was granted exclusivity; cache 0's follow-up GetS now recalls
	// cache 1 — answer it and check cache 0 is finally served.
	if grants := r.nodes[1].byType(MsgDataEx); len(grants) != 1 || grants[0].AckCount != 0 {
		t.Fatalf("writer grants = %+v, want one DataEx with zero acks", grants)
	}
	recalls := r.nodes[1].byType(network.MsgRecallShare)
	if len(recalls) != 1 {
		t.Fatalf("recalls to the new owner = %d, want 1", len(recalls))
	}
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 1, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{9, 9, 9, 9}, Tag: recalls[0].Tag, AckCount: 1,
	})
	if data := r.nodes[0].byType(MsgData); len(data) != 1 || data[0].Data[0] != 9 {
		t.Fatalf("cache 0's queued GetS answered with %+v, want the recalled data 9", data)
	}
	if got := r.dir.StateOf(0x40); got != "shared(x2)" {
		t.Errorf("final dir state = %s, want shared(x2)", got)
	}
}
