// Package coherence implements the directory-based cache-coherence
// protocols of the simulated machine: an invalidation protocol in the style
// of the Stanford DASH directory (the paper's host architecture) and a
// write-update protocol used by the update-vs-invalidation experiment.
//
// The directory is the serialization point for each line. Simple
// transactions (grants from memory, possibly with invalidations whose acks
// are collected by the requester, as in DASH) complete at the directory
// instantly; transactions that must recall a dirty line from its owner mark
// the line busy and queue subsequent requests for it.
//
// Every directory-state transition for a line increments the line's version
// number, and every grant and invalidation carries the version that caused
// it. Caches use the version to order messages that arrive while a fill is
// pending, which resolves all protocol races without NACKs or retries.
package coherence

import (
	"fmt"

	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// Protocol selects the coherence scheme.
type Protocol uint8

// Supported protocols.
const (
	// ProtoInvalidate is the DASH-style write-invalidate directory protocol.
	// Both read and read-exclusive prefetches are possible (paper §3.1).
	ProtoInvalidate Protocol = iota
	// ProtoUpdate is a write-update protocol: writes update memory at the
	// directory and propagate word updates to sharers. Read-exclusive
	// prefetch is not possible (paper §3.1: servicing a write partially
	// would make the new value visible).
	ProtoUpdate
	// ProtoMESI extends the invalidation protocol with an Exclusive-clean
	// cache state: a read miss on an uncached line is granted exclusively,
	// a store to the granted copy upgrades it silently, and a clean
	// exclusive copy is evicted silently. The directory cannot distinguish
	// Exclusive from Modified at the owner, so recalls may discover the
	// copy is gone (a "no copy" response with no data) and a request from
	// the presumed owner is itself proof of a silent eviction.
	ProtoMESI
)

func (p Protocol) String() string {
	switch p {
	case ProtoUpdate:
		return "update"
	case ProtoMESI:
		return "mesi"
	default:
		return "invalidate"
	}
}

// dirState is the directory's view of one line.
type dirState uint8

const (
	dirUncached  dirState = iota // no cached copies
	dirShared                    // one or more read-only copies
	dirExclusive                 // exactly one dirty copy at owner
)

// dirLine is the directory entry for one line.
type dirLine struct {
	state   dirState
	sharers sharerSet
	owner   network.NodeID
	ver     uint64 // bumped on every state transition

	// busy recall transaction, when state changes require the owner's data.
	busy       bool
	recallTag  uint64
	pendingReq *network.Message   // request being served by the recall
	waitQ      []*network.Message // requests queued while busy
}

// Directory is a home node: it owns the coherence state (and the backing
// memory) for the lines that map to it. A machine may interleave lines
// across several Directory instances (DASH-style distributed memory).
type Directory struct {
	ID       network.NodeID
	net      network.Port
	mem      *memsys.Memory
	geom     memsys.Geometry
	memLat   uint64 // service latency for a memory access at the home node
	protocol Protocol
	lines    map[uint64]*dirLine
	Stats    *stats.Set

	// linePool is RestoreState scratch: the discarded table's dirLine
	// objects, collected for in-place reuse on the rollback path.
	linePool []*dirLine

	// sharerCfg selects exact vs limited-pointer/coarse sharer tracking
	// (ConfigureSharers); the zero value is the seed's unbounded exact list.
	sharerCfg sharerConfig

	// MaxPerCycle bounds how many incoming messages the module services per
	// cycle (0 = unlimited, the paper's pipelined memory assumption).
	// Overflow waits in the ingress queue; Tick drains it.
	MaxPerCycle int
	ingress     []*network.Message
	batch       []*network.Message // Tick scratch, reused across cycles
}

// New creates a directory attached to the network at node id.
// memLat is the memory access latency added to each response that reads or
// writes the backing store.
func New(id network.NodeID, net *network.Network, mem *memsys.Memory, memLat uint64, protocol Protocol) *Directory {
	d := &Directory{
		ID:       id,
		net:      net,
		mem:      mem,
		geom:     mem.Geometry(),
		memLat:   memLat,
		protocol: protocol,
		lines:    make(map[uint64]*dirLine),
		Stats:    stats.NewSet("directory"),
	}
	net.Attach(id, d)
	return d
}

// Protocol returns the active coherence protocol.
func (d *Directory) Protocol() Protocol { return d.protocol }

// SetPort rebinds the directory onto a different network port (a
// shard-private endpoint during a parallel run, the network itself after).
func (d *Directory) SetPort(p network.Port) { d.net = p }

func (d *Directory) line(addr uint64) *dirLine {
	l, ok := d.lines[addr]
	if !ok {
		l = &dirLine{state: dirUncached, owner: -1}
		d.lines[addr] = l
	}
	return l
}

// HandleMessage implements network.Handler. With unlimited bandwidth the
// message is serviced on delivery; with a service bound it queues for Tick.
// Any message the directory keeps past this call (ingress, a busy line's
// waitQ, a recall's pendingReq) is retained so the network's message pool
// does not reclaim it; the directory recycles it once fully served.
func (d *Directory) HandleMessage(m *network.Message, now uint64) {
	if d.MaxPerCycle > 0 {
		m.Retain()
		d.ingress = append(d.ingress, m)
		return
	}
	if d.dispatch(m, now) {
		m.Retain()
	}
}

// Tick services up to MaxPerCycle queued messages. A no-op with unlimited
// bandwidth. Call once per cycle right after network delivery.
func (d *Directory) Tick(now uint64) {
	if d.MaxPerCycle <= 0 {
		return
	}
	n := d.MaxPerCycle
	if n > len(d.ingress) {
		n = len(d.ingress)
	}
	// Copy the batch before compacting: the compaction reuses the slots the
	// batch would otherwise alias.
	batch := append(d.batch[:0], d.ingress[:n]...)
	d.ingress = d.ingress[:copy(d.ingress, d.ingress[n:])]
	for _, m := range batch {
		if !d.dispatch(m, now) {
			d.net.Recycle(m)
		}
	}
	d.batch = batch[:0]
	if n > 0 {
		d.Stats.Counter("serviced").Add(uint64(n))
	}
}

// dispatch serves one delivered message. It reports whether the directory
// kept a reference to m (queued on a busy line or held as a recall's
// pending request); the caller owns m's pool lifetime otherwise.
func (d *Directory) dispatch(m *network.Message, now uint64) bool {
	if DebugTraceLine != 0 && m.Line == DebugTraceLine {
		l := d.line(m.Line)
		if len(m.Data) > 0 {
			DebugTraceSink(fmt.Sprintf("dir@  data=%v", m.Data))
		}
		DebugTraceSink(fmt.Sprintf("dir@%d: %v from %d tag=%d ack=%d | state=%d owner=%d ver=%d busy=%v rt=%d wq=%d",
			now, m.Type, m.Src, m.Tag, m.AckCount, l.state, l.owner, l.ver, l.busy, l.recallTag, len(l.waitQ)))
	}
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpdateReq:
		l := d.line(m.Line)
		if l.busy && d.protocol == ProtoMESI && m.Src == l.owner {
			// The owner we are recalling from is itself requesting the line.
			// It can only miss if its copy is gone, and a dirty copy always
			// leaves a writeback (which blocks re-requests until it is
			// acknowledged), so the copy was clean-Exclusive and silently
			// evicted: the recall will never be answered with data. Complete
			// it now as a no-copy response; the owner's request then queues
			// or is served against the settled state below. The stale recall
			// reaches the owner before any newer grant (same-pair FIFO
			// delivery) and is dropped there as superseded.
			d.Stats.Counter("recall_self_completions").Inc()
			d.completeRecall(l, m.Line, nil, 0, now)
		}
		if l.busy {
			l.waitQ = append(l.waitQ, m)
			d.Stats.Counter("queued_requests").Inc()
			return true
		}
		return d.process(l, m, now)
	case MsgWriteBack:
		d.handleWriteBack(m, now)
	case network.MsgMemRead:
		// Stenstrom NST comparator: cacheless sequenced read served at the
		// memory module; FIFO delivery preserves each processor's program
		// order, which is what the next-sequence-number table guarantees.
		d.Stats.Counter("nst_reads").Inc()
		d.net.PostAfter(network.Message{
			Type: network.MsgMemRdResp, Src: d.ID, Dst: m.Src,
			Word: m.Word, Value: d.mem.ReadWord(m.Word), Tag: m.Tag,
		}, now, d.memLat)
	case network.MsgMemWrite:
		d.Stats.Counter("nst_writes").Inc()
		old := d.mem.ReadWord(m.Word)
		newVal := m.Value
		if m.SeqNo != 0 { // RMW flag, same encoding as UpdateReq
			newVal = rmwKindFromWire(m.SeqNo).Apply(old, m.Value)
		}
		d.mem.WriteWord(m.Word, newVal)
		d.net.PostAfter(network.Message{
			Type: network.MsgMemWrAck, Src: d.ID, Dst: m.Src,
			Word: m.Word, Value: old, Tag: m.Tag,
		}, now, d.memLat)
	case MsgReplaceHint:
		l := d.line(m.Line)
		if l.sharers.coarseMode() {
			// A coarse group bit may cover CPUs that still share the line,
			// so a single departure cannot clear it; the hint is dropped
			// (the line narrows again at the next invalidation sweep).
			d.Stats.Counter("hints_ignored_coarse").Inc()
		} else {
			l.sharers.remove(m.Src)
			if l.state == dirShared && l.sharers.empty() {
				l.state = dirUncached
				l.ver++
			}
		}
		d.Stats.Counter("replace_hints").Inc()
	default:
		panic(fmt.Sprintf("directory: unexpected message %v from %d", m.Type, m.Src))
	}
	return false
}

// Aliases so callers read naturally; the canonical constants live in the
// network package.
const (
	MsgGetS        = network.MsgGetS
	MsgGetX        = network.MsgGetX
	MsgWriteBack   = network.MsgWriteBack
	MsgReplaceHint = network.MsgReplaceHint
	MsgData        = network.MsgData
	MsgDataEx      = network.MsgDataEx
	MsgInv         = network.MsgInv
	MsgInvAck      = network.MsgInvAck
	MsgRecallShare = network.MsgRecallShare
	MsgRecallInv   = network.MsgRecallInv
	MsgWBAck       = network.MsgWBAck
	MsgUpdateReq   = network.MsgUpdateReq
	MsgUpdate      = network.MsgUpdate
	MsgUpdateDone  = network.MsgUpdateDone
)

// process serves one request on a non-busy line. It may mark the line busy
// (owner recall) in which case completion continues in handleWriteBack; the
// return reports whether m was kept as that recall's pending request.
func (d *Directory) process(l *dirLine, m *network.Message, now uint64) bool {
	switch m.Type {
	case MsgGetS:
		return d.processGetS(l, m, now)
	case MsgGetX:
		return d.processGetX(l, m, now)
	case MsgUpdateReq:
		return d.processUpdate(l, m, now)
	default:
		panic(fmt.Sprintf("directory: cannot process %v", m.Type))
	}
}

func (d *Directory) processGetS(l *dirLine, m *network.Message, now uint64) bool {
	d.Stats.Counter("gets").Inc()
	switch l.state {
	case dirUncached, dirShared:
		if d.protocol == ProtoMESI && l.state == dirUncached {
			// MESI exclusive-clean grant: no other copy exists, so the
			// reader gets the line exclusively (and clean) for free — its
			// first store then upgrades silently, with no bus traffic.
			l.state = dirExclusive
			l.owner = m.Src
			l.ver++
			d.Stats.Counter("exclusive_clean_grants").Inc()
			d.net.PostAfter(network.Message{
				Type: MsgDataEx, Src: d.ID, Dst: m.Src,
				Line: m.Line, Data: d.mem.ReadLine(m.Line), Tag: l.ver, AckCount: 0,
			}, now, d.memLat)
			return false
		}
		if l.sharers.has(d.sharerCfg, m.Src) {
			if !l.sharers.coarseMode() {
				panic(fmt.Sprintf("directory %d: GetS from existing sharer %d line=%#x ver=%d", d.ID, m.Src, m.Line, l.ver))
			}
			// Coarse membership is conservative: a silently departed sharer
			// (its replacement hint was ignored) can legitimately request
			// the line again while its group bit is still set. Re-grant.
			d.Stats.Counter("coarse_regrants").Inc()
		}
		l.state = dirShared
		l.sharers.add(d.sharerCfg, m.Src)
		l.ver++
		d.net.PostAfter(network.Message{
			Type: MsgData, Src: d.ID, Dst: m.Src,
			Line: m.Line, Data: d.mem.ReadLine(m.Line), Tag: l.ver,
		}, now, d.memLat)
		return false
	default: // dirExclusive
		if d.protocol == ProtoMESI && l.owner == m.Src {
			// A request from the presumed owner proves the clean-Exclusive
			// copy was silently evicted (a dirty eviction's writeback blocks
			// re-requests until acknowledged, and the ack settles the
			// directory first). Memory is current: re-grant exclusively.
			l.ver++
			d.Stats.Counter("silent_eviction_regrants").Inc()
			d.net.PostAfter(network.Message{
				Type: MsgDataEx, Src: d.ID, Dst: m.Src,
				Line: m.Line, Data: d.mem.ReadLine(m.Line), Tag: l.ver, AckCount: 0,
			}, now, d.memLat)
			return false
		}
		// Recall the dirty line from its owner; the transaction completes
		// when the owner's WriteBack arrives.
		d.beginRecall(l, m, MsgRecallShare, now)
		return true
	}
}

func (d *Directory) processGetX(l *dirLine, m *network.Message, now uint64) bool {
	d.Stats.Counter("getx").Inc()
	switch l.state {
	case dirUncached, dirShared:
		l.ver++
		acks := 0
		if l.sharers.coarseMode() {
			d.Stats.Counter("coarse_inv_sweeps").Inc()
		}
		// Ascending sweep order: on a contended topology the send order
		// books links, so it must be a fixed function of directory state.
		l.sharers.forEach(d.sharerCfg, m.Src, func(s network.NodeID) {
			acks++
			d.net.Post(network.Message{
				Type: MsgInv, Src: d.ID, Dst: s,
				Line: m.Line, Tag: l.ver, Requester: m.Src,
			}, now)
			d.Stats.Counter("invalidations").Inc()
		})
		l.sharers.clear()
		l.state = dirExclusive
		l.owner = m.Src
		d.net.PostAfter(network.Message{
			Type: MsgDataEx, Src: d.ID, Dst: m.Src,
			Line: m.Line, Data: d.mem.ReadLine(m.Line), Tag: l.ver, AckCount: acks,
		}, now, d.memLat)
		return false
	default: // dirExclusive
		if l.owner == m.Src {
			if d.protocol != ProtoMESI {
				panic("directory: GetX from current owner")
			}
			// Silent eviction of the clean-Exclusive copy (see processGetS):
			// re-grant exclusively from current memory.
			l.ver++
			d.Stats.Counter("silent_eviction_regrants").Inc()
			d.net.PostAfter(network.Message{
				Type: MsgDataEx, Src: d.ID, Dst: m.Src,
				Line: m.Line, Data: d.mem.ReadLine(m.Line), Tag: l.ver, AckCount: 0,
			}, now, d.memLat)
			return false
		}
		d.beginRecall(l, m, MsgRecallInv, now)
		return true
	}
}

// processUpdate handles a word write at the directory. Under the update
// protocol this is the normal write path. Under the invalidation protocol it
// is used only by cacheless agents (the experiment harness's adversary
// writer and the NST comparator do not use it; see package agent): the write
// is applied to memory and all cached copies are invalidated or recalled.
func (d *Directory) processUpdate(l *dirLine, m *network.Message, now uint64) bool {
	d.Stats.Counter("updates").Inc()
	if d.protocol != ProtoUpdate && l.state == dirExclusive {
		// Must recall the dirty copy before memory can be written.
		d.beginRecall(l, m, MsgRecallInv, now)
		return true
	}
	d.finishUpdate(l, m, now)
	return false
}

// finishUpdate applies a word write at memory and propagates it to sharers.
// Under the invalidation protocol sharers are invalidated instead.
func (d *Directory) finishUpdate(l *dirLine, m *network.Message, now uint64) {
	old := d.mem.ReadWord(m.Word)
	newVal := m.Value
	if m.SeqNo != 0 { // RMW flag: SeqNo carries 1+kind for atomic updates
		kind := rmwKindFromWire(m.SeqNo)
		newVal = kind.Apply(old, m.Value)
	}
	d.mem.WriteWord(m.Word, newVal)
	l.ver++
	acks := 0
	typ := MsgUpdate
	if d.protocol != ProtoUpdate {
		typ = MsgInv
	}
	l.sharers.forEach(d.sharerCfg, m.Src, func(s network.NodeID) {
		acks++
		d.net.Post(network.Message{
			Type: typ, Src: d.ID, Dst: s,
			Line: m.Line, Word: m.Word, Value: newVal, Tag: l.ver, Requester: m.Src,
		}, now)
	})
	if d.protocol != ProtoUpdate {
		l.sharers.clear()
		l.state = dirUncached
	}
	d.net.PostAfter(network.Message{
		Type: MsgUpdateDone, Src: d.ID, Dst: m.Src,
		Line: m.Line, Word: m.Word, Value: old, Tag: l.ver, AckCount: acks,
	}, now, d.memLat)
}

// beginRecall starts an owner-recall transaction and marks the line busy.
func (d *Directory) beginRecall(l *dirLine, m *network.Message, recall network.MsgType, now uint64) {
	l.ver++
	l.busy = true
	l.recallTag = l.ver
	l.pendingReq = m
	d.net.Post(network.Message{
		Type: recall, Src: d.ID, Dst: l.owner,
		Line: m.Line, Tag: l.ver, Requester: m.Src,
	}, now)
	d.Stats.Counter("recalls").Inc()
}

// handleWriteBack processes both recall responses and voluntary victim
// writebacks, distinguished by tag.
func (d *Directory) handleWriteBack(m *network.Message, now uint64) {
	l := d.line(m.Line)
	if l.busy && m.Tag == l.recallTag {
		d.completeRecall(l, m.Line, m.Data, m.AckCount, now)
		return
	}

	// Voluntary writeback. Accept only if the writer is still the owner at
	// the current version; otherwise the line has already been recalled (the
	// recall response carried the same data) and this message is stale.
	if !l.busy && l.state == dirExclusive && l.owner == m.Src && m.Tag == l.ver {
		d.mem.WriteLine(m.Line, m.Data)
		l.state = dirUncached
		l.owner = -1
		l.ver++
		d.Stats.Counter("writebacks").Inc()
	} else {
		d.Stats.Counter("stale_writebacks").Inc()
	}
	d.net.Post(network.Message{
		Type: MsgWBAck, Src: d.ID, Dst: m.Src, Line: m.Line,
	}, now)
	if !l.busy {
		d.drainWaitQ(l, now)
	}
}

// completeRecall finishes a busy recall transaction and serves the pending
// request. data is the recalled line image, or nil when the recall found no
// copy (a MESI no-copy response, or the directory self-completing a recall
// whose target provably evicted silently) — memory is already current then
// and is not rewritten. retained=1 means the responder kept a shared copy.
func (d *Directory) completeRecall(l *dirLine, line uint64, data []int64, retained int, now uint64) {
	if data != nil {
		d.mem.WriteLine(line, data)
	}
	req := l.pendingReq
	l.pendingReq = nil
	oldOwner := l.owner
	switch req.Type {
	case MsgGetS:
		l.state = dirShared
		if retained == 1 {
			// The owner still holds the line, downgraded to shared; a
			// response from a victim writeback buffer (or a no-copy
			// response) retains no copy.
			l.sharers.add(d.sharerCfg, oldOwner)
		}
		l.sharers.add(d.sharerCfg, req.Src)
		l.ver++
		d.net.PostAfter(network.Message{
			Type: MsgData, Src: d.ID, Dst: req.Src,
			Line: line, Data: d.mem.ReadLine(line), Tag: l.ver,
		}, now, d.memLat)
	case MsgGetX:
		l.state = dirExclusive
		l.owner = req.Src
		l.ver++
		d.net.PostAfter(network.Message{
			Type: MsgDataEx, Src: d.ID, Dst: req.Src,
			Line: line, Data: d.mem.ReadLine(line), Tag: l.ver, AckCount: 0,
		}, now, d.memLat)
	case MsgUpdateReq:
		l.state = dirUncached
		l.owner = -1
		d.finishUpdate(l, req, now)
	}
	d.net.Recycle(req) // retained since beginRecall; fully served now
	l.busy = false
	d.drainWaitQ(l, now)
}

// drainWaitQ serves queued requests until the line goes busy again or the
// queue empties. Requests served to completion are released back to the
// message pool; one that starts a recall stays held as pendingReq.
func (d *Directory) drainWaitQ(l *dirLine, now uint64) {
	for !l.busy && len(l.waitQ) > 0 {
		m := l.waitQ[0]
		copy(l.waitQ, l.waitQ[1:])
		l.waitQ = l.waitQ[:len(l.waitQ)-1]
		if !d.process(l, m, now) {
			d.net.Recycle(m)
		}
	}
}

// NextWake reports when the directory can next make progress without new
// network input. The directory only self-schedules work when bounded
// bandwidth left messages waiting in the ingress queue; busy lines and
// waitQ entries advance solely on message arrival, which the simulator
// accounts for via Network.NextDelivery.
func (d *Directory) NextWake(now uint64) (uint64, bool) {
	if len(d.ingress) > 0 {
		return now, true
	}
	return 0, false
}

// Quiescent reports whether the directory has no busy lines, no queued
// requests and an empty ingress; used by the simulator's termination check.
func (d *Directory) Quiescent() bool {
	if len(d.ingress) > 0 {
		return false
	}
	for _, l := range d.lines {
		if l.busy || len(l.waitQ) > 0 {
			return false
		}
	}
	return true
}

// StateOf returns a debug description of a line's directory state.
func (d *Directory) StateOf(lineAddr uint64) string {
	l, ok := d.lines[lineAddr]
	if !ok {
		return "uncached"
	}
	switch l.state {
	case dirUncached:
		return "uncached"
	case dirShared:
		if l.sharers.coarseMode() {
			return fmt.Sprintf("shared(~%d)", l.sharers.count(d.sharerCfg))
		}
		return fmt.Sprintf("shared(x%d)", l.sharers.count(d.sharerCfg))
	default:
		return fmt.Sprintf("exclusive(%d)", l.owner)
	}
}

// rmwWireEncode encodes an RMW kind into the SeqNo field of an UpdateReq;
// zero means "plain write".
func rmwWireEncode(kind int) uint64 { return uint64(kind) + 1 }

type rmwApplier interface{ Apply(old, src int64) int64 }

// rmwKindFromWire decodes the RMW kind from an UpdateReq SeqNo.
func rmwKindFromWire(wire uint64) wireRMW { return wireRMW(wire - 1) }

// wireRMW mirrors isa.RMWKind without importing package isa (coherence sits
// below the ISA layer). The numeric values must match isa.RMWKind.
type wireRMW uint64

// Apply mirrors isa.RMWKind.Apply for the three atomic flavours.
func (k wireRMW) Apply(old, src int64) int64 {
	switch k {
	case 0: // test-and-set
		return 1
	case 1: // fetch-add
		return old + src
	case 2: // swap
		return src
	default:
		return old
	}
}
