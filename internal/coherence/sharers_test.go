package coherence

import (
	"math/rand"
	"sort"
	"testing"

	"mcmsim/internal/network"
)

func cfgFor(cpus, pointers int) sharerConfig {
	d := &Directory{}
	d.ConfigureSharers(cpus, pointers, 0)
	return d.sharerCfg
}

func collect(s *sharerSet, cfg sharerConfig) []network.NodeID {
	var out []network.NodeID
	s.forEach(cfg, -1, func(id network.NodeID) { out = append(out, id) })
	return out
}

func TestSharerSetExactPath(t *testing.T) {
	cfg := cfgFor(8, 8)
	var s sharerSet
	for _, id := range []network.NodeID{5, 1, 7, 3, 1} { // dup 1 must be ignored
		s.add(cfg, id)
	}
	if s.coarseMode() {
		t.Fatal("4 sharers overflowed an 8-pointer set")
	}
	if got := collect(&s, cfg); !equalIDs(got, []network.NodeID{1, 3, 5, 7}) {
		t.Fatalf("forEach order = %v, want ascending 1,3,5,7", got)
	}
	if !s.has(cfg, 3) || s.has(cfg, 4) {
		t.Error("has() wrong on exact set")
	}
	s.remove(3)
	if s.has(cfg, 3) || s.count(cfg) != 3 {
		t.Error("remove(3) did not drop the pointer")
	}
	s.remove(3) // double remove is a no-op
	if s.count(cfg) != 3 {
		t.Error("double remove changed the set")
	}
}

func TestSharerSetOverflowToCoarse(t *testing.T) {
	cfg := cfgFor(16, 2) // group clamps to 1: coarse bits are exact singletons
	if cfg.group != 1 {
		t.Fatalf("group = %d, want 1 for 16 CPUs", cfg.group)
	}
	var s sharerSet
	s.add(cfg, 2)
	s.add(cfg, 9)
	if s.coarseMode() {
		t.Fatal("overflowed at capacity, should overflow past it")
	}
	s.add(cfg, 14) // third sharer: fold 2,9 and the newcomer into the vector
	if !s.coarseMode() {
		t.Fatal("third add did not overflow a 2-pointer set")
	}
	if len(s.ptrs) != 0 {
		t.Error("pointer list not dropped on overflow")
	}
	if got := collect(&s, cfg); !equalIDs(got, []network.NodeID{2, 9, 14}) {
		t.Errorf("coarse members = %v, want 2,9,14", got)
	}
	if s.coarseGroups() != 3 {
		t.Errorf("coarseGroups = %d, want 3", s.coarseGroups())
	}

	// Removal must be a no-op in coarse mode (a departure cannot prove the
	// group bit clearable), and membership stays conservative.
	s.remove(9)
	if !s.has(cfg, 9) {
		t.Error("coarse remove cleared a group bit")
	}

	// Only clear() leaves coarse mode; the set then tracks exactly again.
	s.clear()
	if s.coarseMode() || !s.empty() {
		t.Error("clear() did not return to empty exact mode")
	}
	s.add(cfg, 7)
	if s.coarseMode() || s.count(cfg) != 1 {
		t.Error("post-clear add should be exact")
	}
}

func TestSharerSetCoarseGrouping(t *testing.T) {
	// 256 CPUs, 4 per group: group bits must over-approximate whole groups.
	cfg := cfgFor(256, 2)
	if cfg.group != 4 {
		t.Fatalf("group = %d, want ceil(256/64) = 4", cfg.group)
	}
	var s sharerSet
	s.add(cfg, 0)
	s.add(cfg, 100)
	s.add(cfg, 255) // overflow: groups 0, 25, 63
	if !s.coarseMode() || s.coarseGroups() != 3 {
		t.Fatalf("want coarse mode with 3 groups, got coarse=%v groups=%d", s.coarseMode(), s.coarseGroups())
	}
	// Conservative membership: 101 shares group 25 with 100.
	if !s.has(cfg, 101) {
		t.Error("coarse has() should be true for group-mate of a sharer")
	}
	if s.has(cfg, 104) {
		t.Error("coarse has() true for a CPU in a clear group")
	}
	// Expansion covers every CPU of every set group, ascending, honoring
	// exclude — this is the over-invalidation fan-out.
	want := []network.NodeID{0, 1, 2, 3, 100, 101, 102, 103, 252, 253, 254}
	var got []network.NodeID
	s.forEach(cfg, 255, func(id network.NodeID) { got = append(got, id) })
	if !equalIDs(got, want) {
		t.Errorf("coarse forEach(exclude 255) = %v, want %v", got, want)
	}
	if n := s.count(cfg); n != 12 {
		t.Errorf("coarse count = %d, want 12 (3 groups x 4)", n)
	}
}

func TestSharerSetCoarsePartialTailGroup(t *testing.T) {
	// 70 CPUs, 2 per group: group 34 covers only CPUs 68-69. Expansion and
	// count must not run past the machine.
	cfg := cfgFor(70, 1)
	var s sharerSet
	s.add(cfg, 68)
	s.add(cfg, 69) // overflow into group 34
	if !s.coarseMode() {
		t.Fatal("want coarse mode")
	}
	if got := collect(&s, cfg); !equalIDs(got, []network.NodeID{68, 69}) {
		t.Errorf("tail group members = %v, want 68,69", got)
	}
	if s.count(cfg) != 2 {
		t.Errorf("tail group count = %d, want 2", s.count(cfg))
	}
}

// TestSharerSetCoarseIsSuperset is the safety property the protocol relies
// on: under any operation sequence, the tracked set always contains every
// CPU an exact tracker would list — coarse mode may over-approximate but
// never forgets a sharer, so invalidations always reach everyone.
func TestSharerSetCoarseIsSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		cpus := 2 + rng.Intn(127)
		cfg := cfgFor(cpus, 1+rng.Intn(6))
		var s sharerSet
		exact := map[network.NodeID]bool{}
		for op := 0; op < 60; op++ {
			id := network.NodeID(rng.Intn(cpus))
			switch rng.Intn(4) {
			case 0, 1:
				s.add(cfg, id)
				exact[id] = true
			case 2:
				s.remove(id)
				if !s.coarseMode() {
					delete(exact, id)
				}
				// In coarse mode the reference set keeps the member: the
				// tracker ignored the removal, and so must the bound.
			case 3:
				s.clear()
				exact = map[network.NodeID]bool{}
			}
			for id := range exact {
				if !s.has(cfg, id) {
					t.Fatalf("trial %d: lost sharer %d (cpus=%d ptrs=%d coarse=%v)",
						trial, id, cpus, cfg.pointers, s.coarseMode())
				}
			}
			got := collect(&s, cfg)
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("trial %d: forEach not ascending: %v", trial, got)
			}
			for _, id := range got {
				if !s.has(cfg, id) {
					t.Fatalf("trial %d: forEach visited %d but has() denies it", trial, id)
				}
			}
			if !s.coarseMode() && len(got) != len(exact) {
				t.Fatalf("trial %d: exact mode tracked %d sharers, want %d", trial, len(got), len(exact))
			}
		}
	}
}

func equalIDs(a, b []network.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
