package coherence

import (
	"testing"

	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// stub records messages delivered to a cache-side node. It retains each
// message so the pool cannot reclaim it while assertions still inspect it.
type stub struct {
	got []*network.Message
}

func (s *stub) HandleMessage(m *network.Message, now uint64) {
	m.Retain()
	s.got = append(s.got, m)
}

func (s *stub) byType(t network.MsgType) []*network.Message {
	var out []*network.Message
	for _, m := range s.got {
		if m.Type == t {
			out = append(out, m)
		}
	}
	return out
}

type dirRig struct {
	net   *network.Network
	mem   *memsys.Memory
	dir   *Directory
	nodes []*stub
	cycle uint64
}

func newDirRig(nCaches int, proto Protocol) *dirRig {
	geom := memsys.NewGeometry(4)
	r := &dirRig{
		net: network.New(1),
		mem: memsys.NewMemory(geom),
	}
	r.dir = New(network.NodeID(nCaches), r.net, r.mem, 1, proto)
	for i := 0; i < nCaches; i++ {
		s := &stub{}
		r.nodes = append(r.nodes, s)
		r.net.Attach(network.NodeID(i), s)
	}
	return r
}

func (r *dirRig) send(m *network.Message) {
	r.net.Send(m, r.cycle)
	r.drain()
}

func (r *dirRig) drain() {
	for i := 0; i < 100; i++ {
		r.cycle++
		r.net.Deliver(r.cycle)
		if r.net.Pending() == 0 {
			return
		}
	}
}

func TestGetSGrantsSharedData(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.mem.WriteLine(0x40, []int64{1, 2, 3, 4})
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	data := r.nodes[0].byType(MsgData)
	if len(data) != 1 {
		t.Fatalf("grants = %d", len(data))
	}
	if data[0].Data[2] != 3 {
		t.Errorf("grant data = %v", data[0].Data)
	}
	if r.dir.StateOf(0x40) != "shared(x1)" {
		t.Errorf("dir state = %s", r.dir.StateOf(0x40))
	}
}

func TestGetXInvalidatesSharersAndReportsAckCount(t *testing.T) {
	r := newDirRig(3, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetX, Src: 2, Dst: r.dir.ID, Line: 0x40})
	grants := r.nodes[2].byType(MsgDataEx)
	if len(grants) != 1 || grants[0].AckCount != 2 {
		t.Fatalf("DataEx grants = %+v", grants)
	}
	for i := 0; i < 2; i++ {
		invs := r.nodes[i].byType(MsgInv)
		if len(invs) != 1 || invs[0].Requester != 2 {
			t.Errorf("node %d invs = %+v", i, invs)
		}
	}
	if r.dir.StateOf(0x40) != "exclusive(2)" {
		t.Errorf("dir state = %s", r.dir.StateOf(0x40))
	}
}

func TestGetXFromSharerSkipsSelfInvalidation(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	if len(r.nodes[0].byType(MsgInv)) != 0 {
		t.Error("requester must not be invalidated on upgrade")
	}
	grants := r.nodes[0].byType(MsgDataEx)
	if len(grants) != 1 || grants[0].AckCount != 0 {
		t.Errorf("upgrade grant = %+v", grants)
	}
}

func TestRecallOnGetSOfDirtyLine(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	recalls := r.nodes[0].byType(MsgRecallShare)
	if len(recalls) != 1 {
		t.Fatalf("recalls = %d", len(recalls))
	}
	if !(!r.dir.Quiescent()) {
		t.Error("line must be busy during the recall")
	}
	// Owner responds with the dirty data, retaining a shared copy.
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{9, 9, 9, 9}, Tag: recalls[0].Tag, AckCount: 1,
	})
	grants := r.nodes[1].byType(MsgData)
	if len(grants) != 1 || grants[0].Data[0] != 9 {
		t.Fatalf("reader grant = %+v", grants)
	}
	if r.mem.ReadWord(0x40) != 9 {
		t.Error("recall data not written to memory")
	}
	if r.dir.StateOf(0x40) != "shared(x2)" {
		t.Errorf("dir state = %s, want shared(x2)", r.dir.StateOf(0x40))
	}
	if !r.dir.Quiescent() {
		t.Error("line still busy after recall response")
	}
}

func TestQueuedRequestsServedAfterRecall(t *testing.T) {
	r := newDirRig(3, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	// Two readers pile up while the line is busy.
	r.net.Send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40}, r.cycle)
	r.net.Send(&network.Message{Type: MsgGetS, Src: 2, Dst: r.dir.ID, Line: 0x40}, r.cycle)
	r.drain()
	recalls := r.nodes[0].byType(MsgRecallShare)
	if len(recalls) != 1 {
		t.Fatalf("recalls = %d (queued requests must not re-recall)", len(recalls))
	}
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{7, 0, 0, 0}, Tag: recalls[0].Tag, AckCount: 1,
	})
	if len(r.nodes[1].byType(MsgData)) != 1 {
		t.Error("first queued reader not served")
	}
	if len(r.nodes[2].byType(MsgData)) != 1 {
		t.Error("second queued reader not served")
	}
	if r.dir.StateOf(0x40) != "shared(x3)" {
		t.Errorf("dir state = %s", r.dir.StateOf(0x40))
	}
}

func TestVoluntaryWritebackAcceptedAndAcked(t *testing.T) {
	r := newDirRig(1, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	grant := r.nodes[0].byType(MsgDataEx)[0]
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{5, 6, 7, 8}, Tag: grant.Tag,
	})
	if len(r.nodes[0].byType(MsgWBAck)) != 1 {
		t.Fatal("voluntary writeback not acked")
	}
	if r.mem.ReadWord(0x42) != 7 {
		t.Error("writeback data not stored")
	}
	if r.dir.StateOf(0x40) != "uncached" {
		t.Errorf("dir state = %s", r.dir.StateOf(0x40))
	}
}

func TestStaleWritebackDropped(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	grant0 := r.nodes[0].byType(MsgDataEx)[0]
	// Ownership moves on: node 1 takes the line; node 0 responds to the
	// recall from its writeback buffer.
	r.net.Send(&network.Message{Type: MsgGetX, Src: 1, Dst: r.dir.ID, Line: 0x40}, r.cycle)
	r.drain()
	recall := r.nodes[0].byType(MsgRecallInv)[0]
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{3, 0, 0, 0}, Tag: recall.Tag, AckCount: 0,
	})
	// The stale voluntary writeback (old grant tag) arrives afterwards.
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{3, 0, 0, 0}, Tag: grant0.Tag,
	})
	if r.dir.Stats.Counter("stale_writebacks").Value() != 1 {
		t.Error("stale writeback not recognized")
	}
	if r.dir.StateOf(0x40) != "exclusive(1)" {
		t.Errorf("stale writeback corrupted state: %s", r.dir.StateOf(0x40))
	}
	if len(r.nodes[0].byType(MsgWBAck)) == 0 {
		t.Error("stale writeback still needs an ack to release the buffer")
	}
}

func TestReplaceHintPrunesSharer(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgReplaceHint, Src: 0, Dst: r.dir.ID, Line: 0x40})
	if r.dir.StateOf(0x40) != "shared(x1)" {
		t.Errorf("state after hint = %s", r.dir.StateOf(0x40))
	}
	r.send(&network.Message{Type: MsgReplaceHint, Src: 1, Dst: r.dir.ID, Line: 0x40})
	if r.dir.StateOf(0x40) != "uncached" {
		t.Errorf("state after all hints = %s", r.dir.StateOf(0x40))
	}
	// After pruning, a write needs no invalidations.
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	if g := r.nodes[0].byType(MsgDataEx); len(g) != 1 || g[0].AckCount != 0 {
		t.Errorf("grant after prune = %+v", g)
	}
}

func TestUpdateProtocolWriteAtDirectory(t *testing.T) {
	r := newDirRig(2, ProtoUpdate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgUpdateReq, Src: 0, Dst: r.dir.ID, Line: 0x40, Word: 0x41, Value: 55})
	if r.mem.ReadWord(0x41) != 55 {
		t.Error("update not applied to memory")
	}
	ups := r.nodes[1].byType(MsgUpdate)
	if len(ups) != 1 || ups[0].Value != 55 || ups[0].Word != 0x41 {
		t.Fatalf("peer update = %+v", ups)
	}
	dones := r.nodes[0].byType(MsgUpdateDone)
	if len(dones) != 1 || dones[0].AckCount != 1 {
		t.Fatalf("update done = %+v", dones)
	}
	if len(r.nodes[0].byType(MsgUpdate)) != 0 {
		t.Error("writer must not receive its own update")
	}
}

func TestUpdateRMWAtDirectoryReturnsOldValue(t *testing.T) {
	r := newDirRig(1, ProtoUpdate)
	r.mem.WriteWord(0x41, 10)
	// SeqNo = kind+1; fetch-add (kind 1) of 5.
	r.send(&network.Message{Type: MsgUpdateReq, Src: 0, Dst: r.dir.ID, Line: 0x40, Word: 0x41, Value: 5, SeqNo: 2})
	dones := r.nodes[0].byType(MsgUpdateDone)
	if len(dones) != 1 || dones[0].Value != 10 {
		t.Fatalf("RMW old value = %+v", dones)
	}
	if r.mem.ReadWord(0x41) != 15 {
		t.Errorf("RMW result = %d, want 15", r.mem.ReadWord(0x41))
	}
}

func TestNSTReadWrite(t *testing.T) {
	r := newDirRig(1, ProtoInvalidate)
	r.send(&network.Message{Type: network.MsgMemWrite, Src: 0, Dst: r.dir.ID, Word: 0x99, Value: 4, Tag: 11})
	acks := r.nodes[0].byType(network.MsgMemWrAck)
	if len(acks) != 1 || acks[0].Tag != 11 {
		t.Fatalf("write ack = %+v", acks)
	}
	r.send(&network.Message{Type: network.MsgMemRead, Src: 0, Dst: r.dir.ID, Word: 0x99, Tag: 12})
	resp := r.nodes[0].byType(network.MsgMemRdResp)
	if len(resp) != 1 || resp[0].Value != 4 || resp[0].Tag != 12 {
		t.Fatalf("read response = %+v", resp)
	}
}

func TestNSTRMWAtomicAtMemory(t *testing.T) {
	r := newDirRig(1, ProtoInvalidate)
	r.mem.WriteWord(0x50, 1)
	// Test-and-set wire encoding (kind 0 -> SeqNo 1).
	r.send(&network.Message{Type: network.MsgMemWrite, Src: 0, Dst: r.dir.ID, Word: 0x50, Value: 0, SeqNo: 1, Tag: 5})
	acks := r.nodes[0].byType(network.MsgMemWrAck)
	if len(acks) != 1 || acks[0].Value != 1 {
		t.Fatalf("NST rmw old = %+v", acks)
	}
	if r.mem.ReadWord(0x50) != 1 {
		t.Error("test-and-set must leave 1")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoInvalidate.String() != "invalidate" || ProtoUpdate.String() != "update" {
		t.Error("protocol names wrong")
	}
}
