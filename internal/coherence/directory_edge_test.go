package coherence

import (
	"testing"

	"mcmsim/internal/network"
)

// TestStaleReplaceHintIgnoredAfterReassignment races an eviction hint with
// a remote write: cache 0's ReplaceHint is still in flight when cache 1's
// GetX reassigns the line exclusively. The stale hint must not disturb the
// new owner's state.
func TestStaleReplaceHintIgnoredAfterReassignment(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgGetX, Src: 1, Dst: r.dir.ID, Line: 0x40})
	if got := r.dir.StateOf(0x40); got != "exclusive(1)" {
		t.Fatalf("dir state = %s", got)
	}
	// The hint cache 0 posted when it evicted, delayed past the GetX.
	r.send(&network.Message{Type: MsgReplaceHint, Src: 0, Dst: r.dir.ID, Line: 0x40})
	if got := r.dir.StateOf(0x40); got != "exclusive(1)" {
		t.Fatalf("stale hint disturbed ownership: %s", got)
	}
	if r.dir.Stats.Counter("replace_hints").Value() != 1 {
		t.Error("hint not counted")
	}
}

// TestReplaceHintPreventsSpuriousInvalidation checks that after the last
// sharer evicts (hint processed), a writer is granted exclusivity with zero
// pending acks — the directory must not invalidate the departed sharer.
func TestReplaceHintPreventsSpuriousInvalidation(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetS, Src: 0, Dst: r.dir.ID, Line: 0x40})
	r.send(&network.Message{Type: MsgReplaceHint, Src: 0, Dst: r.dir.ID, Line: 0x40})
	if got := r.dir.StateOf(0x40); got != "uncached" {
		t.Fatalf("dir state after last sharer left = %s", got)
	}
	r.send(&network.Message{Type: MsgGetX, Src: 1, Dst: r.dir.ID, Line: 0x40})
	grants := r.nodes[1].byType(MsgDataEx)
	if len(grants) != 1 || grants[0].AckCount != 0 {
		t.Fatalf("DataEx grants = %+v, want one grant with zero acks", grants)
	}
	if invs := r.nodes[0].byType(MsgInv); len(invs) != 0 {
		t.Errorf("departed sharer received %d spurious invalidations", len(invs))
	}
}

// TestDuplicateWritebackAfterRecall sends the owner's voluntary writeback
// after the same data already returned via a recall response: the duplicate
// is stale (version mismatch), must not overwrite newer memory contents,
// and must still be acked so the evicting cache can free its buffer.
func TestDuplicateWritebackAfterRecall(t *testing.T) {
	r := newDirRig(2, ProtoInvalidate)
	r.send(&network.Message{Type: MsgGetX, Src: 0, Dst: r.dir.ID, Line: 0x40})
	ownerTag := r.nodes[0].byType(MsgDataEx)[0].Tag

	// A reader triggers a recall; the owner answers it.
	r.send(&network.Message{Type: MsgGetS, Src: 1, Dst: r.dir.ID, Line: 0x40})
	recalls := r.nodes[0].byType(network.MsgRecallShare)
	if len(recalls) != 1 {
		t.Fatalf("recalls = %d", len(recalls))
	}
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{7, 7, 7, 7}, Tag: recalls[0].Tag, AckCount: 1,
	})
	if r.mem.ReadWord(0x40) != 7 {
		t.Fatal("recall response not written to memory")
	}

	// The owner's voluntary writeback with its original (now stale) grant
	// tag arrives afterwards, carrying older data.
	r.send(&network.Message{
		Type: MsgWriteBack, Src: 0, Dst: r.dir.ID, Line: 0x40,
		Data: []int64{1, 1, 1, 1}, Tag: ownerTag,
	})
	if got := r.mem.ReadWord(0x40); got != 7 {
		t.Errorf("stale writeback overwrote memory: %d, want 7", got)
	}
	if r.dir.Stats.Counter("stale_writebacks").Value() == 0 {
		t.Error("stale writeback not classified as stale")
	}
	if acks := r.nodes[0].byType(network.MsgWBAck); len(acks) != 1 {
		t.Errorf("stale writeback acks = %d, want 1 (buffer must be freed)", len(acks))
	}
}
