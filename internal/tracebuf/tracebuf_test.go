package tracebuf_test

import (
	"strings"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/tracebuf"
)

func build(t *testing.T) (*sim.System, *tracebuf.Tracer) {
	t.Helper()
	cfg := sim.PaperConfig()
	cfg.Model = core.SC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	b.LoadAbs(isa.R1, 0x100)
	b.StoreAbs(isa.R2, 0x200)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	tr := tracebuf.New(s, 0, map[string]uint64{"X": 0x100, "Y": 0x200})
	return s, tr
}

func TestTracerRecordsIssueAndCompletion(t *testing.T) {
	s, tr := build(t)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events recorded")
	}
	all := tr.String()
	for _, want := range []string{
		"read of X is issued",
		"value for X arrives",
		"write to Y is prefetched",
		"write to Y completes",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("trace missing %q:\n%s", want, all)
		}
	}
}

func TestTracerSnapshotsBuffers(t *testing.T) {
	s, tr := build(t)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The first event (load X issued) must show the load in the
	// speculative-load buffer and the store buffered.
	first := tr.Events[0]
	if len(first.SpecBuffer) == 0 {
		t.Errorf("first event has empty spec buffer: %+v", first)
	}
	if len(first.ROB) == 0 {
		t.Error("first event has empty reorder buffer")
	}
	if first.CacheState["X"] == "" || first.CacheState["Y"] == "" {
		t.Errorf("cache states missing: %+v", first.CacheState)
	}
	// The last event must show both lines resident: X shared, Y exclusive.
	last := tr.Events[len(tr.Events)-1]
	if last.CacheState["X"] != "shared" {
		t.Errorf("final X state = %q", last.CacheState["X"])
	}
	if last.CacheState["Y"] != "exclusive" {
		t.Errorf("final Y state = %q", last.CacheState["Y"])
	}
	if got := tr.CacheStateOf("Y"); got != "exclusive" {
		t.Errorf("CacheStateOf(Y) = %q", got)
	}
}

func TestTracerLabelsUnknownAddresses(t *testing.T) {
	s, tr := build(t)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Events never reference raw hex for watched labels.
	if strings.Contains(tr.String(), "0x100") {
		t.Errorf("trace leaked a raw address for a watched label:\n%s", tr.String())
	}
}
