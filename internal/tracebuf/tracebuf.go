// Package tracebuf records Figure-5-style execution traces: at each
// milestone event it snapshots the reorder buffer, the store buffer, the
// speculative-load buffer and the relevant cache-line states, mirroring the
// table the paper steps through in §4.3.
package tracebuf

import (
	"fmt"
	"strings"

	"mcmsim/internal/core"
	"mcmsim/internal/sim"
)

// Event is one milestone with full buffer snapshots.
type Event struct {
	Cycle       uint64
	Description string
	ROB         []string
	StoreBuffer []core.StoreRow
	SpecBuffer  []core.SpecRow
	CacheState  map[string]string // label -> state description
}

// Tracer accumulates milestone events for one processor.
type Tracer struct {
	sys       *sim.System
	proc      int
	watch     map[string]uint64 // label -> word address
	Events    []Event
	pendingMu []string // milestone descriptions raised this cycle by observer
}

// New attaches a tracer to processor proc of the system, watching the given
// labelled addresses for cache-state reporting. It hooks the LSU observer
// and the per-cycle trace hook.
func New(s *sim.System, proc int, watch map[string]uint64) *Tracer {
	t := &Tracer{sys: s, proc: proc, watch: watch}
	s.LSUs[proc].SetObserver(t.observe)
	s.TraceHooks = append(s.TraceHooks, func(_ *sim.System, cycle uint64) {
		t.flush(cycle)
	})
	return t
}

// labelFor maps a word address back to its watch label.
func (t *Tracer) labelFor(addr uint64) string {
	for label, a := range t.watch {
		if a == addr {
			return label
		}
	}
	return fmt.Sprintf("%#x", addr)
}

// observe converts LSU events into milestone descriptions. Issue-type
// events are folded into a single "issued" milestone per cycle batch; the
// flush hook snapshots state at end of cycle.
func (t *Tracer) observe(ev core.ObsEvent) {
	var desc string
	switch ev.Kind {
	case core.ObsLoadIssued, core.ObsSpecIssued:
		desc = fmt.Sprintf("read of %s is issued", t.labelFor(ev.Addr))
	case core.ObsPrefetch:
		desc = fmt.Sprintf("write to %s is prefetched", t.labelFor(ev.Addr))
	case core.ObsLoadDone:
		desc = fmt.Sprintf("value for %s arrives", t.labelFor(ev.Addr))
	case core.ObsStoreIssued:
		desc = fmt.Sprintf("store to %s is issued", t.labelFor(ev.Addr))
	case core.ObsStoreDone:
		desc = fmt.Sprintf("write to %s completes", t.labelFor(ev.Addr))
	case core.ObsSquashFlush:
		desc = fmt.Sprintf("speculated value for %s invalidated; load and following instructions discarded", t.labelFor(ev.Addr))
	case core.ObsSquashReissue:
		desc = fmt.Sprintf("speculative load of %s reissued (value unused)", t.labelFor(ev.Addr))
	case core.ObsRMWLateSquash:
		desc = fmt.Sprintf("read-modify-write of %s squashed after issue", t.labelFor(ev.Addr))
	case core.ObsForward:
		desc = fmt.Sprintf("load of %s forwarded from store buffer", t.labelFor(ev.Addr))
	default:
		return
	}
	t.pendingMu = append(t.pendingMu, desc)
}

// flush emits one Event per cycle that raised milestones, snapshotting the
// buffers after all phases of the cycle ran.
func (t *Tracer) flush(cycle uint64) {
	if len(t.pendingMu) == 0 {
		return
	}
	desc := strings.Join(t.pendingMu, "; ")
	t.pendingMu = t.pendingMu[:0]
	ev := Event{
		Cycle:       cycle,
		Description: desc,
		ROB:         t.sys.Procs[t.proc].ROBSnapshot(),
		StoreBuffer: t.sys.LSUs[t.proc].StoreBufferSnapshot(),
		SpecBuffer:  t.sys.LSUs[t.proc].SpecBufferSnapshot(),
		CacheState:  map[string]string{},
	}
	c := t.sys.Caches[t.proc]
	for label, addr := range t.watch {
		st := c.StateOf(addr).String()
		if out, ex := c.HasMSHR(addr); out {
			if ex {
				st += "+ex-fetch-pending"
			} else {
				st += "+fetch-pending"
			}
		}
		ev.CacheState[label] = st
	}
	t.Events = append(t.Events, ev)
}

// String renders the trace as a table in the spirit of Figure 5.
func (t *Tracer) String() string {
	var b strings.Builder
	for i, ev := range t.Events {
		fmt.Fprintf(&b, "Event %d (cycle %d): %s\n", i+1, ev.Cycle, ev.Description)
		fmt.Fprintf(&b, "  reorder buffer : %s\n", strings.Join(ev.ROB, " | "))
		if len(ev.StoreBuffer) > 0 {
			parts := make([]string, 0, len(ev.StoreBuffer))
			for _, r := range ev.StoreBuffer {
				s := fmt.Sprintf("%v@%s", r.Class, t.labelFor(r.Addr))
				if r.Issued {
					s += "*"
				}
				parts = append(parts, s)
			}
			fmt.Fprintf(&b, "  store buffer   : %s\n", strings.Join(parts, " | "))
		}
		if len(ev.SpecBuffer) > 0 {
			parts := make([]string, 0, len(ev.SpecBuffer))
			for _, r := range ev.SpecBuffer {
				s := fmt.Sprintf("ld %s", t.labelFor(r.LoadAddr))
				if r.Acq {
					s += " acq"
				}
				if r.Done {
					s += " done"
				}
				if r.HasTag {
					s += fmt.Sprintf(" tag=%v@%s", r.TagClass, t.labelFor(r.TagAddr))
				}
				parts = append(parts, s)
			}
			fmt.Fprintf(&b, "  spec-load buf  : %s\n", strings.Join(parts, " | "))
		}
		labels := make([]string, 0, len(ev.CacheState))
		for label := range ev.CacheState {
			labels = append(labels, label)
		}
		sortStrings(labels)
		parts := make([]string, 0, len(labels))
		for _, l := range labels {
			parts = append(parts, fmt.Sprintf("%s:%s", l, ev.CacheState[l]))
		}
		fmt.Fprintf(&b, "  cache          : %s\n", strings.Join(parts, " "))
	}
	return b.String()
}

// CacheStateOf exposes a cache line's state label from the last event, for
// tests.
func (t *Tracer) CacheStateOf(label string) string {
	if len(t.Events) == 0 {
		return ""
	}
	return t.Events[len(t.Events)-1].CacheState[label]
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
