package experiments

import (
	"bytes"
	"testing"

	"mcmsim/internal/runner"
)

// renderSweep executes the given jobs with the given worker count and
// renders the result table exactly as cmd/sweep would.
func renderSweep(t *testing.T, name string, jobs []runner.Job, workers int) []byte {
	t.Helper()
	rows, err := runner.Execute(jobs, workers)
	if err != nil {
		t.Fatalf("%s (j=%d): %v", name, workers, err)
	}
	var buf bytes.Buffer
	if err := runner.WriteReport(&buf, runner.FormatTable, []runner.Table{{Name: name, Rows: rows}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSweepDeterminism is the regression gate for the parallel
// execution engine: running the equalization and latency sweeps serially
// (-j 1) and on a saturated pool (-j 8) must produce byte-identical result
// tables. Each simulation is single-goroutine and jobs share no state, so
// any divergence here means the runner leaked state between workers or
// lost the enumeration order.
func TestParallelSweepDeterminism(t *testing.T) {
	sweeps := []struct {
		name string
		jobs func() []runner.Job
	}{
		{"equalization", func() []runner.Job { return EqualizationJobs(3, 7) }},
		{"latency", func() []runner.Job { return LatencySweepJobs(3, 7, []uint64{20, 100}) }},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			t.Parallel()
			serial := renderSweep(t, sw.name, sw.jobs(), 1)
			parallel := renderSweep(t, sw.name, sw.jobs(), 8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("-j 1 and -j 8 tables differ:\n--- j=1 ---\n%s--- j=8 ---\n%s", serial, parallel)
			}
		})
	}
}

// TestSuiteRegistry sanity-checks the registry: names are unique, every
// enumerator yields jobs, and lookups work.
func TestSuiteRegistry(t *testing.T) {
	p := DefaultParams()
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Errorf("duplicate sweep name %q", s.Name)
		}
		seen[s.Name] = true
		if s.ID == "" || s.Desc == "" {
			t.Errorf("sweep %q missing ID or description", s.Name)
		}
		jobs := s.Jobs(p)
		if len(jobs) == 0 {
			t.Errorf("sweep %q enumerates no jobs", s.Name)
		}
		for _, j := range jobs {
			if j.Name == "" || (j.Run == nil && j.Measure == nil) {
				t.Errorf("sweep %q has a malformed job: %+v", s.Name, j)
			}
		}
	}
	if _, ok := SweepByName("equalization"); !ok {
		t.Error("SweepByName failed to find equalization")
	}
	if _, ok := SweepByName("nope"); ok {
		t.Error("SweepByName found a nonexistent sweep")
	}
	if len(SuiteNames()) != len(Suite()) {
		t.Error("SuiteNames length mismatch")
	}
}
