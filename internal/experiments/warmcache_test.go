package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"mcmsim/internal/runner"
)

// renderSuiteCache renders the full suite through the same layers as
// cmd/sweep, with an explicit worker count and optional warmup-snapshot
// cache — the configuration matrix behind `sweep -j N -snapshot-cache=B`.
func renderSuiteCache(t *testing.T, format string, workers int, cache bool) []byte {
	t.Helper()
	p := DefaultParams()
	opts := runner.Options{Workers: workers}
	if cache {
		opts.WarmupCache = runner.NewWarmupCache()
	}
	var tables []runner.Table
	for _, s := range Suite() {
		rows, err := runner.Rows(runner.Run(s.Jobs(p), opts))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		tables = append(tables, runner.Table{Name: s.Name, Rows: rows})
	}
	var buf bytes.Buffer
	if err := runner.WriteReport(&buf, format, tables); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmupCacheSuiteByteIdentical is the end-to-end differential gate for
// the warmup-snapshot cache: the complete experiment suite must render
// byte-identical reports in every output format whether each job simulates
// its own warmup or restores a cloned machine snapshot from the cache, on
// one worker and on several. A divergence here means a snapshot failed to
// capture something a restored machine's measured phase could observe.
//
// Not t.Parallel: runs the full suite several times and shares the machine
// with the other full-suite differential tests.
func TestWarmupCacheSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run; skipped in -short mode")
	}
	for _, format := range []string{runner.FormatTable, runner.FormatJSON, runner.FormatCSV} {
		cold := renderSuiteCache(t, format, 1, false)
		warm := renderSuiteCache(t, format, 1, true)
		if !bytes.Equal(cold, warm) {
			t.Errorf("%s reports differ between cold warmups and the snapshot cache:\n--- cold ---\n%s--- cached ---\n%s", format, cold, warm)
		}
	}
	// Concurrency changes which job populates each cache entry (the
	// singleflight race) but must not change a byte of output.
	cold := renderSuiteCache(t, runner.FormatCSV, 4, false)
	warm := renderSuiteCache(t, runner.FormatCSV, 4, true)
	if !bytes.Equal(cold, warm) {
		t.Errorf("csv report differs with the snapshot cache on 4 workers")
	}
}

// TestWarmupCacheDedup pins the cache's reason to exist: the three E6
// variants declare the same warmup key, so a cached run simulates the
// warmup once and serves the other two jobs from the snapshot — with rows
// identical to the uncached run's.
func TestWarmupCacheDedup(t *testing.T) {
	cold, err := runner.Rows(runner.Run(AdveHillComparisonJobs(16), runner.Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	cache := runner.NewWarmupCache()
	warm, err := runner.Rows(runner.Run(AdveHillComparisonJobs(16), runner.Options{Workers: 1, WarmupCache: cache}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("rows differ: cold=%v cached=%v", cold, warm)
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 2 {
		t.Errorf("cache simulated %d warmups with %d hits; want 1 warmup, 2 hits", misses, hits)
	}
}
