package experiments

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// Row is one measurement of a sweep: a labelled configuration and its
// cycle count plus selected rates.
type Row struct {
	Labels map[string]string
	Cycles uint64
	Extra  map[string]float64
}

func (r Row) String() string {
	s := ""
	for k, v := range r.Labels {
		s += fmt.Sprintf("%s=%s ", k, v)
	}
	s += fmt.Sprintf("cycles=%d", r.Cycles)
	for k, v := range r.Extra {
		s += fmt.Sprintf(" %s=%.4f", k, v)
	}
	return s
}

// mixedWorkload is the standard multi-phase program set used by the
// equalization and latency experiments: lock-protected shared updates
// interleaved with private computation, the data-race-free style the paper
// argues is the common case (§5).
func mixedWorkload(nprocs int, seed int64) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.RandomSharing(p, nprocs, workload.EqualizationMix(seed))
	}
	return progs
}

// Equalization (experiment E1) measures every model under every technique
// on the mixed workload: the paper's §5 claim is that with both techniques
// the models' performance converges ("the performance of different
// consistency models is equalized").
func Equalization(nprocs int, seed int64) ([]Row, error) {
	var rows []Row
	for _, m := range core.AllModels {
		for _, t := range []core.Technique{TechConv, TechPf, TechSpec, TechBoth} {
			cfg := sim.RealisticConfig()
			cfg.Procs = nprocs
			cfg.Model = m
			cfg.Tech = t
			s := sim.New(cfg, mixedWorkload(nprocs, seed))
			cycles, err := s.Run()
			if err != nil {
				return nil, fmt.Errorf("equalization %v/%v: %w", m, t, err)
			}
			rows = append(rows, Row{
				Labels: map[string]string{"model": m.String(), "tech": t.String()},
				Cycles: cycles,
			})
		}
	}
	return rows, nil
}

// LatencySweep (E2) varies the miss latency and measures SC and RC with
// and without the techniques on the mixed workload: the gap between models
// grows with latency conventionally and stays narrow with the techniques.
func LatencySweep(nprocs int, seed int64, latencies []uint64) ([]Row, error) {
	var rows []Row
	for _, lat := range latencies {
		for _, m := range []core.Model{core.SC, core.RC} {
			for _, t := range []core.Technique{TechConv, TechBoth} {
				cfg := sim.RealisticConfig().WithMissLatency(lat)
				cfg.Procs = nprocs
				cfg.Model = m
				cfg.Tech = t
				s := sim.New(cfg, mixedWorkload(nprocs, seed))
				cycles, err := s.Run()
				if err != nil {
					return nil, fmt.Errorf("latency %d %v/%v: %w", lat, m, t, err)
				}
				rows = append(rows, Row{
					Labels: map[string]string{
						"miss": fmt.Sprint(lat), "model": m.String(), "tech": t.String(),
					},
					Cycles: cycles,
				})
			}
		}
	}
	return rows, nil
}

// ContentionSweep (E3) varies the fraction of shared accesses and measures
// the speculative-load squash rate and its cost under SC: §5 argues
// invalidated speculations are rare in well-behaved programs; this shows
// where that stops being true.
func ContentionSweep(nprocs int, seed int64, shareFracs []float64) ([]Row, error) {
	var rows []Row
	for _, frac := range shareFracs {
		cfg := sim.RealisticConfig()
		cfg.Procs = nprocs
		cfg.Model = core.SC
		cfg.Tech = TechBoth
		mix := workload.DefaultMix(seed)
		mix.ShareFrac = frac
		mix.Sync = false // racy sharing: worst case for speculation
		progs := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			progs[p] = workload.RandomSharing(p, nprocs, mix)
		}
		s := sim.New(cfg, progs)
		cycles, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("contention %.2f: %w", frac, err)
		}
		var entries, squashes, reissues uint64
		for _, u := range s.LSUs {
			entries += u.Stats.Counter("spec_entries").Value()
			squashes += u.Stats.Counter("spec_squashes").Value()
			reissues += u.Stats.Counter("spec_reissues").Value()
		}
		rate := 0.0
		if entries > 0 {
			rate = float64(squashes+reissues) / float64(entries)
		}
		rows = append(rows, Row{
			Labels: map[string]string{"share": fmt.Sprintf("%.2f", frac)},
			Cycles: cycles,
			Extra:  map[string]float64{"squash_rate": rate, "squashes": float64(squashes), "reissues": float64(reissues)},
		})
	}
	return rows, nil
}

// LookaheadSweep (E4) varies the reorder-buffer size under SC: §3.2 notes
// that hardware prefetching is limited by the instruction lookahead window,
// so small windows should blunt the techniques.
func LookaheadSweep(robSizes []int) ([]Row, error) {
	var rows []Row
	const n = 64
	prog := workload.ArraySweep(0, n)
	for _, size := range robSizes {
		for _, t := range []core.Technique{TechConv, TechBoth} {
			cfg := sim.PaperConfig()
			cfg.CPU.ROBSize = size
			cfg.Model = core.SC
			cfg.Tech = t
			cycles, err := sim.RunProgram(cfg, []*isa.Program{prog})
			if err != nil {
				return nil, fmt.Errorf("lookahead %d/%v: %w", size, t, err)
			}
			rows = append(rows, Row{
				Labels: map[string]string{"rob": fmt.Sprint(size), "tech": t.String()},
				Cycles: cycles,
			})
		}
	}
	return rows, nil
}

// ProtocolComparison (E5) contrasts the invalidation and update coherence
// protocols under RC with and without prefetching: §3.1 notes read-exclusive
// prefetch is only possible with invalidations, so the prefetch benefit on
// write traffic disappears under the update protocol.
func ProtocolComparison(nprocs int, seed int64) ([]Row, error) {
	var rows []Row
	for _, proto := range []coherence.Protocol{coherence.ProtoInvalidate, coherence.ProtoUpdate} {
		for _, t := range []core.Technique{TechConv, TechPf} {
			cfg := sim.RealisticConfig()
			cfg.Procs = nprocs
			cfg.Model = core.RC
			cfg.Tech = t
			cfg.Protocol = proto
			s := sim.New(cfg, mixedWorkload(nprocs, seed))
			cycles, err := s.Run()
			if err != nil {
				return nil, fmt.Errorf("protocol %v/%v: %w", proto, t, err)
			}
			var pf uint64
			for _, c := range s.Caches {
				pf += c.Stats.Counter("prefetches_issued").Value()
			}
			rows = append(rows, Row{
				Labels: map[string]string{"protocol": proto.String(), "tech": t.String()},
				Cycles: cycles,
				Extra:  map[string]float64{"prefetches": float64(pf)},
			})
		}
	}
	return rows, nil
}

// sharedWriterPrograms builds the E6 workload: processor 1 warms n lines
// shared; processor 0 then writes each of them in sequence, so every store
// must invalidate a remote copy — the case where gaining ownership is
// observably cheaper than performing the write everywhere.
func sharedWriterWarmup(n int) []*isa.Program {
	w := isa.NewBuilder()
	for i := 0; i < n; i++ {
		w.LoadAbs(isa.R1, int64(0x4000+i*0x10))
	}
	w.Halt()
	return []*isa.Program{workload.Idle(), w.Build()}
}

func sharedWriterMain(n int) []*isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	for i := 0; i < n; i++ {
		b.StoreAbs(isa.R2, int64(0x4000+i*0x10))
	}
	b.Halt()
	return []*isa.Program{b.Build(), workload.Idle()}
}

// AdveHillComparison (E6) measures sequential consistency conventionally,
// with the Adve-Hill ownership optimization, and with the paper's combined
// techniques, on a write-intensive workload with remote sharers. The paper
// predicts the Adve-Hill gains are limited — "the latency of obtaining
// ownership is often only slightly smaller than the latency for the write
// to complete" — while prefetching/speculation pipeline the whole stream.
func AdveHillComparison(nStores int) ([]Row, error) {
	var rows []Row
	variants := []struct {
		name string
		tech core.Technique
	}{
		{"conv", TechConv},
		{"advehill", core.Technique{AdveHill: true}},
		{"pf+spec", TechBoth},
	}
	for _, v := range variants {
		cfg := sim.PaperConfig()
		cfg.Procs = 2
		cfg.Model = core.SC
		cfg.Tech = v.tech
		s := sim.New(cfg, sharedWriterWarmup(nStores))
		if _, err := s.Run(); err != nil {
			return nil, fmt.Errorf("advehill warmup: %w", err)
		}
		s.LoadPrograms(sharedWriterMain(nStores))
		cycles, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("advehill %s: %w", v.name, err)
		}
		rows = append(rows, Row{
			Labels: map[string]string{"impl": v.name},
			Cycles: cycles,
		})
	}
	return rows, nil
}

// StenstromComparison (E7) contrasts cached SC — conventional and with the
// paper's techniques — against the cacheless NST scheme on a workload with
// reuse: §6 argues disallowing caches "can severely hinder performance" —
// every re-reference pays a full memory round trip, while cached runs hit
// after the first pass.
func StenstromComparison(n int) ([]Row, error) {
	var rows []Row
	// A reuse-heavy single-processor loop: the array is swept four times,
	// so the cached machine hits on later passes while NST pays full
	// latency every time.
	b := isa.NewBuilder()
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < n; i++ {
			b.LoadAbs(isa.R1, int64(0x10000+i))
			b.AddI(isa.R1, isa.R1, 1)
			b.StoreAbs(isa.R1, int64(0x10000+i))
		}
	}
	b.Halt()
	prog := b.Build()

	variants := []struct {
		name string
		nst  bool
		tech core.Technique
	}{
		{"cached-SC", false, TechConv},
		{"cached-SC-pf+spec", false, TechBoth},
		{"stenstrom-NST", true, TechConv},
	}
	for _, v := range variants {
		cfg := sim.PaperConfig()
		cfg.Model = core.SC
		cfg.NST = v.nst
		cfg.Tech = v.tech
		cycles, err := sim.RunProgram(cfg, []*isa.Program{prog})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rows = append(rows, Row{
			Labels: map[string]string{"impl": v.name},
			Cycles: cycles,
		})
	}
	return rows, nil
}

// SoftwarePrefetchComparison (E9) pits hardware-controlled prefetching
// against compiler-inserted software prefetches across instruction-window
// sizes, under SC. §6: "the prefetching window [of the hardware scheme] is
// limited to the size of the instruction lookahead buffer, while
// theoretically, software-controlled non-binding prefetching has an
// arbitrarily large window" — and the two "should ... complement one
// another".
func SoftwarePrefetchComparison(robSizes []int) ([]Row, error) {
	const n, dist = 64, 16
	var rows []Row
	variants := []struct {
		name string
		sw   bool
		tech core.Technique
	}{
		{"none", false, TechConv},
		{"hw", false, TechPf},
		{"sw", true, TechConv},
		{"hw+sw", true, TechPf},
	}
	for _, size := range robSizes {
		for _, v := range variants {
			prog := workload.ArraySweep(0, n)
			if v.sw {
				prog = workload.SoftwarePrefetchSweep(0, n, dist)
			}
			cfg := sim.PaperConfig()
			cfg.CPU.ROBSize = size
			cfg.Model = core.SC
			cfg.Tech = v.tech
			cycles, err := sim.RunProgram(cfg, []*isa.Program{prog})
			if err != nil {
				return nil, fmt.Errorf("swpf rob=%d %s: %w", size, v.name, err)
			}
			rows = append(rows, Row{
				Labels: map[string]string{"rob": fmt.Sprint(size), "prefetch": v.name},
				Cycles: cycles,
			})
		}
	}
	return rows, nil
}

// SCDetection (E10) exercises the §6 extension (the paper's reference
// [6]): running on release-consistent hardware with the detector on, a
// data-race-free program certifies as sequentially consistent (zero
// detections), while a racy program whose RC execution actually violates
// SC is flagged.
func SCDetection() ([]Row, error) {
	detect := core.Technique{DetectSC: true}
	var rows []Row

	// Racy case: the ordinary message-passing litmus, which RC reorders.
	mp := workload.MessagePassing(false)
	cell, err := RunLitmus(mp, core.RC, detect)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Labels: map[string]string{"program": "MP-racy", "relaxed": fmt.Sprint(cell.Relaxed)},
		Cycles: cell.Cycles,
		Extra:  map[string]float64{"detections": float64(litmusDetections)},
	})

	// Data-race-free case: producer/consumer with release/acquire.
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = core.RC
	cfg.Tech = detect
	prod, cons := workload.ProducerConsumer(8)
	s := sim.New(cfg, []*isa.Program{prod, cons})
	cycles, err := s.Run()
	if err != nil {
		return nil, err
	}
	var det uint64
	for _, u := range s.LSUs {
		det += u.SCViolations()
	}
	rows = append(rows, Row{
		Labels: map[string]string{"program": "producer-consumer-DRF", "relaxed": "false"},
		Cycles: cycles,
		Extra:  map[string]float64{"detections": float64(det)},
	})
	return rows, nil
}

// litmusDetections carries the detector count out of RunLitmus for the
// SCDetection experiment (set on every RunLitmus call).
var litmusDetections uint64

// DetectionPolicyComparison (E11) ablates the two detection mechanisms of
// §4.1 under SC with both techniques: the implemented snooping policy that
// conservatively squashes on any matching coherence transaction (footnote
// 2: false sharing and same-value writes included), against the
// repeat-and-compare alternative ("repeat the access when the consistency
// model would have allowed it to proceed and check the return value").
// False sharing is where they diverge: the re-read confirms the word and
// saves the rollback, at the price of a second cache access.
func DetectionPolicyComparison(nprocs, writes int) ([]Row, error) {
	var rows []Row
	// Both workloads hammer one 4-word line. In the false-sharing variant
	// each processor writes its own word and reads a word nobody writes:
	// every read is invalidated by a neighbour's write to the same line but
	// the value never changes, so revalidation always confirms. In the
	// true-sharing variant everybody reads the word processor 0 keeps
	// changing, so revalidation fails and the policies converge.
	buildLine := func(readWord int64, trueSharing bool) []*isa.Program {
		ps := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			b := isa.NewBuilder()
			for i := 0; i < writes; i++ {
				if !trueSharing || p == 0 {
					b.Li(isa.R1, int64(p*100+i+1))
					b.StoreAbs(isa.R1, 0x4000+int64(p))
				}
				// A cold private miss holds the speculative-load buffer
				// open so the following shared read stays speculative long
				// enough for remote writes to hit its window.
				b.LoadAbs(isa.R3, int64(0x20000+p*0x2000+i*0x40))
				b.LoadAbs(isa.R2, 0x4000+readWord)
			}
			b.Halt()
			ps[p] = b.Build()
		}
		return ps
	}
	workloads := []struct {
		name  string
		progs func() []*isa.Program
	}{
		{"false-sharing", func() []*isa.Program { return buildLine(3, false) }},
		{"true-sharing", func() []*isa.Program { return buildLine(0, true) }},
	}
	policies := []struct {
		name string
		tech core.Technique
	}{
		{"conservative", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
		{"revalidate", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true, Revalidate: true}},
	}
	for _, wl := range workloads {
		for _, pol := range policies {
			cfg := sim.RealisticConfig()
			cfg.Procs = nprocs
			cfg.Model = core.SC
			cfg.Tech = pol.tech
			cfg.LineWords = 4
			s := sim.New(cfg, wl.progs())
			cycles, err := s.Run()
			if err != nil {
				return nil, fmt.Errorf("detection %s/%s: %w", wl.name, pol.name, err)
			}
			var squashes, revalOK, revalFail uint64
			for _, u := range s.LSUs {
				squashes += u.Stats.Counter("spec_squashes").Value()
				revalOK += u.Stats.Counter("revalidations_ok").Value()
				revalFail += u.Stats.Counter("revalidations_failed").Value()
			}
			rows = append(rows, Row{
				Labels: map[string]string{"workload": wl.name, "policy": pol.name},
				Cycles: cycles,
				Extra: map[string]float64{
					"squashes": float64(squashes),
					"reval_ok": float64(revalOK),
				},
			})
			_ = revalFail
		}
	}
	return rows, nil
}

// BandwidthComparison (E12) measures memory-module pressure: once the
// techniques let every processor stream requests, a single bounded-service
// home module saturates and interleaving lines across several modules
// restores the bandwidth — the scalability dimension of the DASH-style
// distributed memory the paper's host machine has (and the reason
// Stenstrom's centralized NST table "is not scalable", §6).
func BandwidthComparison(nprocs int) ([]Row, error) {
	const lines = 64
	var rows []Row
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		// Disjoint streaming misses: proc p sweeps its own line range.
		b := isa.NewBuilder()
		for i := 0; i < lines; i++ {
			b.LoadAbs(isa.R1, int64(0x100000+p*0x10000+i*4))
		}
		b.Halt()
		progs[p] = b.Build()
	}
	for _, modules := range []int{1, 4} {
		for _, bw := range []int{1, 0} {
			cfg := sim.PaperConfig()
			cfg.Procs = nprocs
			cfg.LineWords = 4
			cfg.Model = core.SC
			cfg.Tech = TechBoth
			cfg.MemModules = modules
			cfg.DirBandwidth = bw
			s := sim.New(cfg, progs)
			cycles, err := s.Run()
			if err != nil {
				return nil, fmt.Errorf("bandwidth m=%d bw=%d: %w", modules, bw, err)
			}
			bwLabel := fmt.Sprint(bw)
			if bw == 0 {
				bwLabel = "inf"
			}
			rows = append(rows, Row{
				Labels: map[string]string{"modules": fmt.Sprint(modules), "bw": bwLabel},
				Cycles: cycles,
			})
		}
	}
	return rows, nil
}

// MSHRSweep (E13) varies the number of lockup-free-cache MSHRs under SC
// with both techniques: §3.2/§4.1 require "a high-bandwidth pipelined
// memory system, including lockup-free caches, to sustain several
// outstanding requests" — with a single MSHR the techniques collapse to
// nearly conventional performance.
func MSHRSweep(mshrs []int) ([]Row, error) {
	const n = 64
	var rows []Row
	prog := workload.ArraySweep(0, n)
	for _, m := range mshrs {
		for _, t := range []core.Technique{TechConv, TechBoth} {
			cfg := sim.PaperConfig()
			cfg.Cache.MaxMSHRs = m
			cfg.Model = core.SC
			cfg.Tech = t
			cycles, err := sim.RunProgram(cfg, []*isa.Program{prog})
			if err != nil {
				return nil, fmt.Errorf("mshr %d/%v: %w", m, t, err)
			}
			rows = append(rows, Row{
				Labels: map[string]string{"mshrs": fmt.Sprint(m), "tech": t.String()},
				Cycles: cycles,
			})
		}
	}
	return rows, nil
}

// ReissueAblation (E14) isolates §4.2's second-case optimization: when a
// coherence transaction matches a speculative load that has NOT yet
// completed, "only the speculative load needs to be reissued, since the
// instructions following it have not yet used an incorrect value". Without
// the optimization every match flushes the pipeline conservatively.
func ReissueAblation(nprocs int, seed int64) ([]Row, error) {
	var rows []Row
	mix := workload.DefaultMix(seed)
	mix.ShareFrac = 0.5
	mix.Sync = false // racy sharing keeps lines bouncing mid-flight
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.RandomSharing(p, nprocs, mix)
	}
	variants := []struct {
		name string
		tech core.Technique
	}{
		{"flush-always", core.Technique{Prefetch: true, SpecLoad: true}},
		{"reissue-opt", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
	}
	for _, v := range variants {
		cfg := sim.RealisticConfig()
		cfg.Procs = nprocs
		cfg.Model = core.SC
		cfg.Tech = v.tech
		s := sim.New(cfg, progs)
		cycles, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("reissue %s: %w", v.name, err)
		}
		var squashes, reissues uint64
		for _, u := range s.LSUs {
			squashes += u.Stats.Counter("spec_squashes").Value()
			reissues += u.Stats.Counter("spec_reissues").Value()
		}
		rows = append(rows, Row{
			Labels: map[string]string{"policy": v.name},
			Cycles: cycles,
			Extra:  map[string]float64{"flushes": float64(squashes), "reissues": float64(reissues)},
		})
	}
	return rows, nil
}
