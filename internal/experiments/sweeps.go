package experiments

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// Row is one measurement of a sweep: a labelled configuration and its
// cycle count plus selected rates. It is an alias for runner.Row — the
// sweeps enumerate runner jobs and the runner owns the result currency.
type Row = runner.Row

// Every sweep below comes in two forms: XxxJobs enumerates the sweep's
// configuration grid as independent runner jobs (each job constructs its
// own sim.System on whatever worker picks it up), and Xxx executes that
// job list on the default worker pool and returns the rows in enumeration
// order. The Jobs form is what cmd/sweep and the determinism tests feed to
// a shared pool; the plain form keeps the historical call sites (tests,
// benchmarks, examples) unchanged.

// simJob builds the common job shape: Configure assembles the machine,
// the executor drives it, and Measure labels the resulting cycle count.
// extra, if non-nil, harvests derived statistics from the finished
// machine. Declaring the drive-then-extract split (Measure instead of an
// opaque Run) is what lets the sweep farm checkpoint these jobs mid-run
// and resume them on another worker.
func simJob(name string, labels map[string]string, build func() *sim.System, extra func(*sim.System) map[string]float64) runner.Job {
	return runner.Job{
		Name:      name,
		Configure: func() (*sim.System, error) { return build(), nil },
		Measure: func(s *sim.System, cycles uint64) (Row, error) {
			row := Row{Labels: labels, Cycles: cycles}
			if extra != nil {
				row.Extra = extra(s)
			}
			return row, nil
		},
	}
}

// mixedWorkload is the standard multi-phase program set used by the
// equalization and latency experiments: lock-protected shared updates
// interleaved with private computation, the data-race-free style the paper
// argues is the common case (§5).
func mixedWorkload(nprocs int, seed int64) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.RandomSharing(p, nprocs, workload.EqualizationMix(seed))
	}
	return progs
}

// EqualizationJobs enumerates experiment E1: every model under every
// technique on the mixed workload. The paper's §5 claim is that with both
// techniques the models' performance converges ("the performance of
// different consistency models is equalized").
func EqualizationJobs(nprocs int, seed int64) []runner.Job {
	var jobs []runner.Job
	for _, m := range core.AllModels {
		for _, t := range []core.Technique{TechConv, TechPf, TechSpec, TechBoth} {
			jobs = append(jobs, simJob(
				fmt.Sprintf("equalization/%v/%v", m, t),
				map[string]string{"model": m.String(), "tech": t.String()},
				func() *sim.System {
					cfg := sim.RealisticConfig()
					cfg.Procs = nprocs
					cfg.Model = m
					cfg.Tech = t
					return sim.New(cfg, mixedWorkload(nprocs, seed))
				}, nil))
		}
	}
	return jobs
}

// Equalization executes E1 and returns its rows.
func Equalization(nprocs int, seed int64) ([]Row, error) {
	return runner.Execute(EqualizationJobs(nprocs, seed), 0)
}

// LatencySweepJobs enumerates E2: miss latency varied, SC and RC measured
// with and without the techniques on the mixed workload — the gap between
// models grows with latency conventionally and stays narrow with the
// techniques.
func LatencySweepJobs(nprocs int, seed int64, latencies []uint64) []runner.Job {
	var jobs []runner.Job
	for _, lat := range latencies {
		for _, m := range []core.Model{core.SC, core.RC} {
			for _, t := range []core.Technique{TechConv, TechBoth} {
				jobs = append(jobs, simJob(
					fmt.Sprintf("latency/%d/%v/%v", lat, m, t),
					map[string]string{
						"miss": fmt.Sprint(lat), "model": m.String(), "tech": t.String(),
					},
					func() *sim.System {
						cfg := sim.RealisticConfig().WithMissLatency(lat)
						cfg.Procs = nprocs
						cfg.Model = m
						cfg.Tech = t
						return sim.New(cfg, mixedWorkload(nprocs, seed))
					}, nil))
			}
		}
	}
	return jobs
}

// LatencySweep executes E2 and returns its rows.
func LatencySweep(nprocs int, seed int64, latencies []uint64) ([]Row, error) {
	return runner.Execute(LatencySweepJobs(nprocs, seed, latencies), 0)
}

// specStats sums the speculative-load counters across load/store units.
func specStats(s *sim.System) (entries, squashes, reissues uint64) {
	for _, u := range s.LSUs {
		entries += u.Stats.Counter("spec_entries").Value()
		squashes += u.Stats.Counter("spec_squashes").Value()
		reissues += u.Stats.Counter("spec_reissues").Value()
	}
	return
}

// ContentionSweepJobs enumerates E3: the fraction of shared accesses varied,
// measuring the speculative-load squash rate and its cost under SC. §5
// argues invalidated speculations are rare in well-behaved programs; this
// shows where that stops being true.
func ContentionSweepJobs(nprocs int, seed int64, shareFracs []float64) []runner.Job {
	var jobs []runner.Job
	for _, frac := range shareFracs {
		jobs = append(jobs, simJob(
			fmt.Sprintf("contention/%.2f", frac),
			map[string]string{"share": fmt.Sprintf("%.2f", frac)},
			func() *sim.System {
				cfg := sim.RealisticConfig()
				cfg.Procs = nprocs
				cfg.Model = core.SC
				cfg.Tech = TechBoth
				mix := workload.DefaultMix(seed)
				mix.ShareFrac = frac
				mix.Sync = false // racy sharing: worst case for speculation
				progs := make([]*isa.Program, nprocs)
				for p := 0; p < nprocs; p++ {
					progs[p] = workload.RandomSharing(p, nprocs, mix)
				}
				return sim.New(cfg, progs)
			},
			func(s *sim.System) map[string]float64 {
				entries, squashes, reissues := specStats(s)
				rate := 0.0
				if entries > 0 {
					rate = float64(squashes+reissues) / float64(entries)
				}
				return map[string]float64{"squash_rate": rate, "squashes": float64(squashes), "reissues": float64(reissues)}
			}))
	}
	return jobs
}

// ContentionSweep executes E3 and returns its rows.
func ContentionSweep(nprocs int, seed int64, shareFracs []float64) ([]Row, error) {
	return runner.Execute(ContentionSweepJobs(nprocs, seed, shareFracs), 0)
}

// LookaheadSweepJobs enumerates E4: the reorder-buffer size varied under
// SC. §3.2 notes that hardware prefetching is limited by the instruction
// lookahead window, so small windows should blunt the techniques.
func LookaheadSweepJobs(robSizes []int) []runner.Job {
	var jobs []runner.Job
	const n = 64
	for _, size := range robSizes {
		for _, t := range []core.Technique{TechConv, TechBoth} {
			jobs = append(jobs, simJob(
				fmt.Sprintf("lookahead/%d/%v", size, t),
				map[string]string{"rob": fmt.Sprint(size), "tech": t.String()},
				func() *sim.System {
					cfg := sim.PaperConfig()
					cfg.CPU.ROBSize = size
					cfg.Model = core.SC
					cfg.Tech = t
					return sim.New(cfg, []*isa.Program{workload.ArraySweep(0, n)})
				}, nil))
		}
	}
	return jobs
}

// LookaheadSweep executes E4 and returns its rows.
func LookaheadSweep(robSizes []int) ([]Row, error) {
	return runner.Execute(LookaheadSweepJobs(robSizes), 0)
}

// ProtocolComparisonJobs enumerates E5: invalidation versus update
// coherence under RC with and without prefetching. §3.1 notes
// read-exclusive prefetch is only possible with invalidations, so the
// prefetch benefit on write traffic disappears under the update protocol.
func ProtocolComparisonJobs(nprocs int, seed int64) []runner.Job {
	var jobs []runner.Job
	for _, proto := range []coherence.Protocol{coherence.ProtoInvalidate, coherence.ProtoUpdate} {
		for _, t := range []core.Technique{TechConv, TechPf} {
			jobs = append(jobs, simJob(
				fmt.Sprintf("protocol/%v/%v", proto, t),
				map[string]string{"protocol": proto.String(), "tech": t.String()},
				func() *sim.System {
					cfg := sim.RealisticConfig()
					cfg.Procs = nprocs
					cfg.Model = core.RC
					cfg.Tech = t
					cfg.Protocol = proto
					return sim.New(cfg, mixedWorkload(nprocs, seed))
				},
				func(s *sim.System) map[string]float64 {
					var pf uint64
					for _, c := range s.Caches {
						pf += c.Stats.Counter("prefetches_issued").Value()
					}
					return map[string]float64{"prefetches": float64(pf)}
				}))
		}
	}
	return jobs
}

// ProtocolComparison executes E5 and returns its rows.
func ProtocolComparison(nprocs int, seed int64) ([]Row, error) {
	return runner.Execute(ProtocolComparisonJobs(nprocs, seed), 0)
}

// sharedWriterWarmup builds the E6 warmup: processor 1 reads n lines so
// they are remotely shared before the measured writes.
func sharedWriterWarmup(n int) []*isa.Program {
	w := isa.NewBuilder()
	for i := 0; i < n; i++ {
		w.LoadAbs(isa.R1, int64(0x4000+i*0x10))
	}
	w.Halt()
	return []*isa.Program{workload.Idle(), w.Build()}
}

// sharedWriterMain is the measured E6 phase: processor 0 writes each warmed
// line in sequence, so every store must invalidate a remote copy — the
// case where gaining ownership is observably cheaper than performing the
// write everywhere.
func sharedWriterMain(n int) []*isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	for i := 0; i < n; i++ {
		b.StoreAbs(isa.R2, int64(0x4000+i*0x10))
	}
	b.Halt()
	return []*isa.Program{b.Build(), workload.Idle()}
}

// AdveHillComparisonJobs enumerates E6: sequential consistency measured
// conventionally, with the Adve-Hill ownership optimization, and with the
// paper's combined techniques, on a write-intensive workload with remote
// sharers. The paper predicts the Adve-Hill gains are limited — "the
// latency of obtaining ownership is often only slightly smaller than the
// latency for the write to complete" — while prefetching/speculation
// pipeline the whole stream.
//
// The warmup (the remote sharer's read pass) is declared as a
// runner.WarmupSpec so the pool can simulate it once and clone it for all
// three variants. It runs under the conventional technique for every
// variant: the measured technique is applied only by Finish, after the
// warmup. That keeps the three warmup keys equal, and it is exact — the
// warmup is a pure load stream whose final machine state (cache lines,
// sharing vectors, versions, memory) does not depend on the measured
// variant's store-side technique.
func AdveHillComparisonJobs(nStores int) []runner.Job {
	variants := []struct {
		name string
		tech core.Technique
	}{
		{"conv", TechConv},
		{"advehill", core.Technique{AdveHill: true}},
		{"pf+spec", TechBoth},
	}
	warmCfg := sim.PaperConfig()
	warmCfg.Procs = 2
	warmCfg.Model = core.SC
	warmCfg.Tech = TechConv
	key := runner.WarmupKey(warmCfg, sharedWriterWarmup(nStores), nil)
	var jobs []runner.Job
	for _, v := range variants {
		jobs = append(jobs, runner.Job{
			Name: "advehill/" + v.name,
			Warmup: &runner.WarmupSpec{
				Key: key,
				Build: func() (*sim.System, error) {
					s := sim.New(warmCfg, sharedWriterWarmup(nStores))
					if _, err := s.Run(); err != nil {
						return nil, fmt.Errorf("warmup: %w", err)
					}
					return s, nil
				},
				Finish: func(s *sim.System) error {
					s.Cfg.Tech = v.tech
					s.LoadPrograms(sharedWriterMain(nStores))
					return nil
				},
			},
			Measure: func(s *sim.System, cycles uint64) (Row, error) {
				return Row{Labels: map[string]string{"impl": v.name}, Cycles: cycles}, nil
			},
		})
	}
	return jobs
}

// AdveHillComparison executes E6 and returns its rows.
func AdveHillComparison(nStores int) ([]Row, error) {
	return runner.Execute(AdveHillComparisonJobs(nStores), 0)
}

// warmedGridLines is the warmed-array footprint of experiment E15: large
// enough that the shared warm pass dominates each point's simulation time,
// which is what the warmup-snapshot cache exists to amortize.
const warmedGridLines = 64

// warmedGridWarmup warms E15's array on both processors: each reads every
// line, so afterwards the whole array is resident Shared in both caches
// with the directory tracking both sharers. Pure load streams: the final
// machine state cannot depend on the consistency model or the store-side
// technique, which is what makes one canonical warmup exact for every grid
// point.
func warmedGridWarmup(n int) []*isa.Program {
	a, b := isa.NewBuilder(), isa.NewBuilder()
	for i := 0; i < n; i++ {
		addr := int64(0x8000 + i*0x10)
		a.LoadAbs(isa.R1, addr)
		b.LoadAbs(isa.R1, addr)
	}
	a.Halt()
	b.Halt()
	return []*isa.Program{a.Build(), b.Build()}
}

// warmedGridMain is E15's measured kernel: processor 0 sweeps the warmed
// array — every load hits — and stores to every eighth line, each store an
// upgrade that must invalidate processor 1's copy. The kernel is short
// relative to the warmup, so the sweep's cost is dominated by warm-state
// construction; the stores are what separate the models and techniques.
func warmedGridMain(n int) []*isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	for i := 0; i < n; i++ {
		addr := int64(0x8000 + i*0x10)
		b.LoadAbs(isa.R1, addr)
		if i%8 == 0 {
			b.StoreAbs(isa.R2, addr)
		}
	}
	b.Halt()
	return []*isa.Program{b.Build(), workload.Idle()}
}

// WarmedEqualizationJobs enumerates experiment E15: the §5 equalization
// claim measured on warmed caches — every consistency model, conventional
// and with both techniques, running a short store-bearing kernel over an
// array that a shared warmup pass made resident and remotely shared. With
// cold caches (E1) the grid mixes cold-miss cost into every cell; here the
// warm state isolates exactly what the techniques hide: the invalidation
// latency of the kernel's stores.
//
// All ten points declare the same warmup key: the warm pass runs once
// under a canonical configuration (SC, conventional) and each point's
// Finish applies its measured model and technique before loading the
// kernel — exact for the same reason as E6's shared warmup, since the pure
// load-stream warmup's final state is model- and technique-independent.
// The sweep is also the suite's showcase for the warmup-snapshot cache:
// one simulated warmup serves ten measured points.
func WarmedEqualizationJobs() []runner.Job {
	techs := []struct {
		name string
		tech core.Technique
	}{
		{"conv", TechConv},
		{"pf+spec", TechBoth},
	}
	warmCfg := sim.PaperConfig()
	warmCfg.Procs = 2
	warmCfg.Model = core.SC
	warmCfg.Tech = TechConv
	key := runner.WarmupKey(warmCfg, warmedGridWarmup(warmedGridLines), nil)
	var jobs []runner.Job
	for _, m := range core.AllModels {
		for _, tc := range techs {
			m, tc := m, tc
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("warmequal/%v/%s", m, tc.name),
				Warmup: &runner.WarmupSpec{
					Key: key,
					Build: func() (*sim.System, error) {
						s := sim.New(warmCfg, warmedGridWarmup(warmedGridLines))
						if _, err := s.Run(); err != nil {
							return nil, fmt.Errorf("warmup: %w", err)
						}
						return s, nil
					},
					Finish: func(s *sim.System) error {
						s.Cfg.Model = m
						s.Cfg.Tech = tc.tech
						s.LoadPrograms(warmedGridMain(warmedGridLines))
						return nil
					},
				},
				Measure: func(s *sim.System, cycles uint64) (Row, error) {
					return Row{Labels: map[string]string{"model": m.String(), "tech": tc.name}, Cycles: cycles}, nil
				},
			})
		}
	}
	return jobs
}

// WarmedEqualization executes E15 and returns its rows.
func WarmedEqualization() ([]Row, error) {
	return runner.Execute(WarmedEqualizationJobs(), 0)
}

// StenstromComparisonJobs enumerates E7: cached SC — conventional and with
// the paper's techniques — against the cacheless NST scheme on a workload
// with reuse. §6 argues disallowing caches "can severely hinder
// performance" — every re-reference pays a full memory round trip, while
// cached runs hit after the first pass.
func StenstromComparisonJobs(n int) []runner.Job {
	// A reuse-heavy single-processor loop: the array is swept four times,
	// so the cached machine hits on later passes while NST pays full
	// latency every time.
	buildProg := func() *isa.Program {
		b := isa.NewBuilder()
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < n; i++ {
				b.LoadAbs(isa.R1, int64(0x10000+i))
				b.AddI(isa.R1, isa.R1, 1)
				b.StoreAbs(isa.R1, int64(0x10000+i))
			}
		}
		b.Halt()
		return b.Build()
	}

	variants := []struct {
		name string
		nst  bool
		tech core.Technique
	}{
		{"cached-SC", false, TechConv},
		{"cached-SC-pf+spec", false, TechBoth},
		{"stenstrom-NST", true, TechConv},
	}
	var jobs []runner.Job
	for _, v := range variants {
		jobs = append(jobs, simJob(
			"nst/"+v.name,
			map[string]string{"impl": v.name},
			func() *sim.System {
				cfg := sim.PaperConfig()
				cfg.Model = core.SC
				cfg.NST = v.nst
				cfg.Tech = v.tech
				return sim.New(cfg, []*isa.Program{buildProg()})
			}, nil))
	}
	return jobs
}

// StenstromComparison executes E7 and returns its rows.
func StenstromComparison(n int) ([]Row, error) {
	return runner.Execute(StenstromComparisonJobs(n), 0)
}

// SoftwarePrefetchComparisonJobs enumerates E9: hardware-controlled
// prefetching against compiler-inserted software prefetches across
// instruction-window sizes, under SC. §6: "the prefetching window [of the
// hardware scheme] is limited to the size of the instruction lookahead
// buffer, while theoretically, software-controlled non-binding prefetching
// has an arbitrarily large window" — and the two "should ... complement
// one another".
func SoftwarePrefetchComparisonJobs(robSizes []int) []runner.Job {
	const n, dist = 64, 16
	variants := []struct {
		name string
		sw   bool
		tech core.Technique
	}{
		{"none", false, TechConv},
		{"hw", false, TechPf},
		{"sw", true, TechConv},
		{"hw+sw", true, TechPf},
	}
	var jobs []runner.Job
	for _, size := range robSizes {
		for _, v := range variants {
			jobs = append(jobs, simJob(
				fmt.Sprintf("swprefetch/%d/%s", size, v.name),
				map[string]string{"rob": fmt.Sprint(size), "prefetch": v.name},
				func() *sim.System {
					prog := workload.ArraySweep(0, n)
					if v.sw {
						prog = workload.SoftwarePrefetchSweep(0, n, dist)
					}
					cfg := sim.PaperConfig()
					cfg.CPU.ROBSize = size
					cfg.Model = core.SC
					cfg.Tech = v.tech
					return sim.New(cfg, []*isa.Program{prog})
				}, nil))
		}
	}
	return jobs
}

// SoftwarePrefetchComparison executes E9 and returns its rows.
func SoftwarePrefetchComparison(robSizes []int) ([]Row, error) {
	return runner.Execute(SoftwarePrefetchComparisonJobs(robSizes), 0)
}

// SCDetectionJobs enumerates E10, the §6 extension (the paper's reference
// [6]): running on release-consistent hardware with the detector on, a
// data-race-free program certifies as sequentially consistent (zero
// detections), while a racy program whose RC execution actually violates
// SC is flagged.
func SCDetectionJobs() []runner.Job {
	detect := core.Technique{DetectSC: true}
	return []runner.Job{
		{
			// Racy case: the ordinary message-passing litmus, which RC
			// reorders.
			Name: "scdetect/MP-racy",
			Configure: func() (*sim.System, error) {
				return litmusSystem(workload.MessagePassing(false), core.RC, detect, coherence.ProtoInvalidate)
			},
			Run: func(s *sim.System) (Row, error) {
				cell, err := litmusMeasure(workload.MessagePassing(false), core.RC, detect, s)
				if err != nil {
					return Row{}, err
				}
				return Row{
					Labels: map[string]string{"program": "MP-racy", "relaxed": fmt.Sprint(cell.Relaxed)},
					Cycles: cell.Cycles,
					Extra:  map[string]float64{"detections": float64(cell.Detections)},
				}, nil
			},
		},
		{
			// Data-race-free case: producer/consumer with release/acquire.
			Name: "scdetect/producer-consumer-DRF",
			Configure: func() (*sim.System, error) {
				cfg := sim.RealisticConfig()
				cfg.Procs = 2
				cfg.Model = core.RC
				cfg.Tech = detect
				prod, cons := workload.ProducerConsumer(8)
				return sim.New(cfg, []*isa.Program{prod, cons}), nil
			},
			Run: func(s *sim.System) (Row, error) {
				cycles, err := s.Run()
				if err != nil {
					return Row{}, err
				}
				var det uint64
				for _, u := range s.LSUs {
					det += u.SCViolations()
				}
				return Row{
					Labels: map[string]string{"program": "producer-consumer-DRF", "relaxed": "false"},
					Cycles: cycles,
					Extra:  map[string]float64{"detections": float64(det)},
				}, nil
			},
		},
	}
}

// SCDetection executes E10 and returns its rows.
func SCDetection() ([]Row, error) {
	return runner.Execute(SCDetectionJobs(), 0)
}

// DetectionPolicyComparisonJobs enumerates E11, ablating the two detection
// mechanisms of §4.1 under SC with both techniques: the implemented
// snooping policy that conservatively squashes on any matching coherence
// transaction (footnote 2: false sharing and same-value writes included),
// against the repeat-and-compare alternative ("repeat the access when the
// consistency model would have allowed it to proceed and check the return
// value"). False sharing is where they diverge: the re-read confirms the
// word and saves the rollback, at the price of a second cache access.
func DetectionPolicyComparisonJobs(nprocs, writes int) []runner.Job {
	// Both workloads hammer one 4-word line. In the false-sharing variant
	// each processor writes its own word and reads a word nobody writes:
	// every read is invalidated by a neighbour's write to the same line but
	// the value never changes, so revalidation always confirms. In the
	// true-sharing variant everybody reads the word processor 0 keeps
	// changing, so revalidation fails and the policies converge.
	buildLine := func(readWord int64, trueSharing bool) []*isa.Program {
		ps := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			b := isa.NewBuilder()
			for i := 0; i < writes; i++ {
				if !trueSharing || p == 0 {
					b.Li(isa.R1, int64(p*100+i+1))
					b.StoreAbs(isa.R1, 0x4000+int64(p))
				}
				// A cold private miss holds the speculative-load buffer
				// open so the following shared read stays speculative long
				// enough for remote writes to hit its window.
				b.LoadAbs(isa.R3, int64(0x20000+p*0x2000+i*0x40))
				b.LoadAbs(isa.R2, 0x4000+readWord)
			}
			b.Halt()
			ps[p] = b.Build()
		}
		return ps
	}
	workloads := []struct {
		name  string
		progs func() []*isa.Program
	}{
		{"false-sharing", func() []*isa.Program { return buildLine(3, false) }},
		{"true-sharing", func() []*isa.Program { return buildLine(0, true) }},
	}
	policies := []struct {
		name string
		tech core.Technique
	}{
		{"conservative", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
		{"revalidate", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true, Revalidate: true}},
	}
	var jobs []runner.Job
	for _, wl := range workloads {
		for _, pol := range policies {
			jobs = append(jobs, simJob(
				fmt.Sprintf("detection/%s/%s", wl.name, pol.name),
				map[string]string{"workload": wl.name, "policy": pol.name},
				func() *sim.System {
					cfg := sim.RealisticConfig()
					cfg.Procs = nprocs
					cfg.Model = core.SC
					cfg.Tech = pol.tech
					cfg.LineWords = 4
					return sim.New(cfg, wl.progs())
				},
				func(s *sim.System) map[string]float64 {
					var squashes, revalOK uint64
					for _, u := range s.LSUs {
						squashes += u.Stats.Counter("spec_squashes").Value()
						revalOK += u.Stats.Counter("revalidations_ok").Value()
					}
					return map[string]float64{
						"squashes": float64(squashes),
						"reval_ok": float64(revalOK),
					}
				}))
		}
	}
	return jobs
}

// DetectionPolicyComparison executes E11 and returns its rows.
func DetectionPolicyComparison(nprocs, writes int) ([]Row, error) {
	return runner.Execute(DetectionPolicyComparisonJobs(nprocs, writes), 0)
}

// BandwidthComparisonJobs enumerates E12, measuring memory-module
// pressure: once the techniques let every processor stream requests, a
// single bounded-service home module saturates and interleaving lines
// across several modules restores the bandwidth — the scalability
// dimension of the DASH-style distributed memory the paper's host machine
// has (and the reason Stenstrom's centralized NST table "is not
// scalable", §6).
func BandwidthComparisonJobs(nprocs int) []runner.Job {
	const lines = 64
	buildProgs := func() []*isa.Program {
		progs := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			// Disjoint streaming misses: proc p sweeps its own line range.
			b := isa.NewBuilder()
			for i := 0; i < lines; i++ {
				b.LoadAbs(isa.R1, int64(0x100000+p*0x10000+i*4))
			}
			b.Halt()
			progs[p] = b.Build()
		}
		return progs
	}
	var jobs []runner.Job
	for _, modules := range []int{1, 4} {
		for _, bw := range []int{1, 0} {
			bwLabel := fmt.Sprint(bw)
			if bw == 0 {
				bwLabel = "inf"
			}
			jobs = append(jobs, simJob(
				fmt.Sprintf("bandwidth/m%d/bw%s", modules, bwLabel),
				map[string]string{"modules": fmt.Sprint(modules), "bw": bwLabel},
				func() *sim.System {
					cfg := sim.PaperConfig()
					cfg.Procs = nprocs
					cfg.LineWords = 4
					cfg.Model = core.SC
					cfg.Tech = TechBoth
					cfg.MemModules = modules
					cfg.DirBandwidth = bw
					return sim.New(cfg, buildProgs())
				}, nil))
		}
	}
	return jobs
}

// BandwidthComparison executes E12 and returns its rows.
func BandwidthComparison(nprocs int) ([]Row, error) {
	return runner.Execute(BandwidthComparisonJobs(nprocs), 0)
}

// MSHRSweepJobs enumerates E13: the number of lockup-free-cache MSHRs
// varied under SC with both techniques. §3.2/§4.1 require "a
// high-bandwidth pipelined memory system, including lockup-free caches, to
// sustain several outstanding requests" — with a single MSHR the
// techniques collapse to nearly conventional performance.
func MSHRSweepJobs(mshrs []int) []runner.Job {
	const n = 64
	var jobs []runner.Job
	for _, m := range mshrs {
		for _, t := range []core.Technique{TechConv, TechBoth} {
			jobs = append(jobs, simJob(
				fmt.Sprintf("mshr/%d/%v", m, t),
				map[string]string{"mshrs": fmt.Sprint(m), "tech": t.String()},
				func() *sim.System {
					cfg := sim.PaperConfig()
					cfg.Cache.MaxMSHRs = m
					cfg.Model = core.SC
					cfg.Tech = t
					return sim.New(cfg, []*isa.Program{workload.ArraySweep(0, n)})
				}, nil))
		}
	}
	return jobs
}

// MSHRSweep executes E13 and returns its rows.
func MSHRSweep(mshrs []int) ([]Row, error) {
	return runner.Execute(MSHRSweepJobs(mshrs), 0)
}

// ReissueAblationJobs enumerates E14, isolating §4.2's second-case
// optimization: when a coherence transaction matches a speculative load
// that has NOT yet completed, "only the speculative load needs to be
// reissued, since the instructions following it have not yet used an
// incorrect value". Without the optimization every match flushes the
// pipeline conservatively.
func ReissueAblationJobs(nprocs int, seed int64) []runner.Job {
	buildProgs := func() []*isa.Program {
		mix := workload.DefaultMix(seed)
		mix.ShareFrac = 0.5
		mix.Sync = false // racy sharing keeps lines bouncing mid-flight
		progs := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			progs[p] = workload.RandomSharing(p, nprocs, mix)
		}
		return progs
	}
	variants := []struct {
		name string
		tech core.Technique
	}{
		{"flush-always", core.Technique{Prefetch: true, SpecLoad: true}},
		{"reissue-opt", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
	}
	var jobs []runner.Job
	for _, v := range variants {
		jobs = append(jobs, simJob(
			"reissue/"+v.name,
			map[string]string{"policy": v.name},
			func() *sim.System {
				cfg := sim.RealisticConfig()
				cfg.Procs = nprocs
				cfg.Model = core.SC
				cfg.Tech = v.tech
				return sim.New(cfg, buildProgs())
			},
			func(s *sim.System) map[string]float64 {
				_, squashes, reissues := specStats(s)
				return map[string]float64{"flushes": float64(squashes), "reissues": float64(reissues)}
			}))
	}
	return jobs
}

// ReissueAblation executes E14 and returns its rows.
func ReissueAblation(nprocs int, seed int64) ([]Row, error) {
	return runner.Execute(ReissueAblationJobs(nprocs, seed), 0)
}
