package experiments

import (
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/tracebuf"
	"mcmsim/internal/workload"
)

// Figure5Watch labels the addresses the §4.3 walkthrough tracks.
func Figure5Watch() map[string]uint64 {
	return map[string]uint64{
		"A":    workload.AddrA,
		"B":    workload.AddrB,
		"C":    workload.AddrC,
		"D":    workload.AddrD,
		"E[D]": workload.AddrEofD,
	}
}

// Figure5Result carries the recorded trace plus run metadata.
type Figure5Result struct {
	Trace  *tracebuf.Tracer
	Cycles uint64
}

// RunFigure5 reproduces the §4.3 walkthrough: the Figure 5 code segment
// (read A; write B; write C; read D; read E[D]) runs under sequential
// consistency with speculative loads and store prefetching; location D is
// warm in the cache; an external write invalidates D after D's speculated
// value has been consumed, exercising the detection and correction
// mechanism.
//
// Two deliberate substitutions versus the paper's hand-drawn timeline,
// documented in EXPERIMENTS.md: (1) location C starts dirty in another
// cache so the exclusive prefetch of C is still outstanding when D is
// reissued, giving the reissued load its "st C" store tag as in event 6;
// (2) with a single cache port the value for A arrives before B's
// ownership, and C's recall completes before D's reissued value returns, so
// the paper's events 2/3 and 7/8 appear swapped. Buffer contents at each
// milestone match the paper's table.
func RunFigure5() (Figure5Result, error) {
	cfg := sim.PaperConfig()
	cfg.Procs = 2
	cfg.Model = core.SC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}

	// Warm-up phase: processor 0 caches D (the assumed hit); processor 1
	// dirties C so the exclusive prefetch must recall it.
	w1 := isa.NewBuilder()
	w1.Li(isa.R1, 7)
	w1.StoreAbs(isa.R1, workload.AddrC)
	w1.Halt()
	s := sim.New(cfg, []*isa.Program{workload.Figure5Warmup(), w1.Build()})
	s.Preload(map[uint64]int64{workload.AddrD: workload.DValue})
	if _, err := s.Run(); err != nil {
		return Figure5Result{}, fmt.Errorf("figure5 warmup: %w", err)
	}

	s.LoadPrograms([]*isa.Program{workload.Figure5(), workload.Idle()})
	tr := tracebuf.New(s, 0, Figure5Watch())

	// The external invalidation for D: the agent's write is timed so the
	// invalidation reaches processor 0 after write B completes (event 4)
	// and while store C is still pending, as in the paper's event 5.
	base := s.Cycle
	s.ScheduleWrites([]sim.ScheduledWrite{{Cycle: base + 60, Addr: workload.AddrD, Value: workload.DValue}})

	cycles, err := s.Run()
	if err != nil {
		return Figure5Result{}, err
	}
	return Figure5Result{Trace: tr, Cycles: cycles}, nil
}
