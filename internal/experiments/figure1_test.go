package experiments

import (
	"fmt"
	"testing"
)

// TestFigure1OrderingMatrix verifies the delay arcs of Figure 1:
//
//   - conventionally, a model never exhibits an outcome it forbids, and
//     with this battery's engineered timing it does exhibit every
//     relaxation it permits;
//   - with prefetching and speculative loads enabled, forbidden outcomes
//     stay forbidden (the techniques must not weaken the model — §4's
//     detection mechanism is what guarantees this).
func TestFigure1OrderingMatrix(t *testing.T) {
	cells, err := Figure1Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		name := fmt.Sprintf("%s/%v/%v", c.Litmus, c.Model, c.Tech)
		if c.Relaxed && !c.Allowed {
			t.Errorf("%s: forbidden outcome observed", name)
		}
		if c.Tech == TechConv && c.Allowed && !c.Relaxed {
			t.Errorf("%s: permitted relaxation not exhibited (timing regression)", name)
		}
	}
	if len(cells) != 5*5*2 { // 5 litmus x 5 models x 2 technique sets
		t.Errorf("got %d cells, want 50", len(cells))
	}
}
