package experiments

import (
	"fmt"
	"testing"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/workload"
)

func rowsByLabel(rows []Row, keys ...string) map[string]uint64 {
	out := make(map[string]uint64, len(rows))
	for _, r := range rows {
		k := ""
		for _, key := range keys {
			k += r.Labels[key] + "/"
		}
		out[k] = r.Cycles
	}
	return out
}

// TestEqualization verifies §5's central claim: conventionally SC is
// noticeably slower than RC, and with both techniques the gap between the
// strictest and the most relaxed model shrinks substantially.
func TestEqualization(t *testing.T) {
	rows, err := Equalization(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "model", "tech")
	scConv, rcConv := c["SC/conv/"], c["RC/conv/"]
	scBoth, rcBoth := c["SC/pf+spec/"], c["RC/pf+spec/"]
	if scConv <= rcConv {
		t.Errorf("conventional SC (%d) should be slower than conventional RC (%d)", scConv, rcConv)
	}
	gapConv := float64(scConv) / float64(rcConv)
	gapBoth := float64(scBoth) / float64(rcBoth)
	if gapBoth >= gapConv {
		t.Errorf("techniques did not narrow the SC/RC gap: conv ratio %.3f, with techniques %.3f", gapConv, gapBoth)
	}
	if gapBoth > 1.15 {
		t.Errorf("SC and RC not equalized with techniques: ratio %.3f > 1.15", gapBoth)
	}
	// The techniques must speed SC up, not slow it down.
	if scBoth >= scConv {
		t.Errorf("techniques slowed SC down: %d -> %d", scConv, scBoth)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestLatencySweep checks the shape of E2: the conventional SC/RC gap grows
// with miss latency; the with-techniques gap stays small at every point.
func TestLatencySweep(t *testing.T) {
	lats := []uint64{20, 100, 400}
	rows, err := LatencySweep(3, 7, lats)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "miss", "model", "tech")
	var prevGap float64
	for i, lat := range lats {
		key := func(m, tech string) uint64 { return c[fmt.Sprintf("%d/%s/%s/", lat, m, tech)] }
		gapConv := float64(key("SC", "conv")) / float64(key("RC", "conv"))
		gapBoth := float64(key("SC", "pf+spec")) / float64(key("RC", "pf+spec"))
		if gapBoth > gapConv {
			t.Errorf("miss=%d: technique gap %.3f exceeds conventional gap %.3f", lat, gapBoth, gapConv)
		}
		if i > 0 && gapConv < prevGap*0.9 {
			t.Errorf("conventional SC/RC gap shrank sharply with latency: %.3f -> %.3f", prevGap, gapConv)
		}
		prevGap = gapConv
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestContentionSweep checks E3: the squash rate rises with write sharing.
func TestContentionSweep(t *testing.T) {
	rows, err := ContentionSweep(3, 11, []float64{0.05, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	lo := rows[0].Extra["squash_rate"]
	hi := rows[len(rows)-1].Extra["squash_rate"]
	if hi <= lo {
		t.Errorf("squash rate did not rise with sharing: %.4f -> %.4f", lo, hi)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestLookaheadSweep checks E4: with a tiny instruction window the
// techniques gain little; the benefit grows with the reorder buffer.
func TestLookaheadSweep(t *testing.T) {
	rows, err := LookaheadSweep([]int{2, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "rob", "tech")
	speedup := func(rob int) float64 {
		return float64(c[fmt.Sprintf("%d/conv/", rob)]) / float64(c[fmt.Sprintf("%d/pf+spec/", rob)])
	}
	if speedup(64) <= speedup(2) {
		t.Errorf("technique speedup did not grow with lookahead: rob2=%.3f rob64=%.3f", speedup(2), speedup(64))
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestProtocolComparison checks E5: under the update protocol no exclusive
// prefetches are issued and the prefetch benefit shrinks versus the
// invalidation protocol.
func TestProtocolComparison(t *testing.T) {
	rows, err := ProtocolComparison(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "protocol", "tech")
	invGain := float64(c["invalidate/conv/"]) / float64(c["invalidate/pf/"])
	updGain := float64(c["update/conv/"]) / float64(c["update/pf/"])
	if invGain < 1.0 {
		t.Errorf("prefetching slowed the invalidation protocol down: gain %.3f", invGain)
	}
	if updGain > invGain+0.05 {
		t.Errorf("update-protocol prefetch gain (%.3f) should not exceed invalidation's (%.3f)", updGain, invGain)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestAdveHillComparison checks E6: the ownership optimization helps SC a
// little; the paper's techniques help much more.
func TestAdveHillComparison(t *testing.T) {
	rows, err := AdveHillComparison(16)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "impl")
	conv, ah, both := c["conv/"], c["advehill/"], c["pf+spec/"]
	if ah > conv {
		t.Errorf("Adve-Hill slower than conventional: %d > %d", ah, conv)
	}
	if both >= ah {
		t.Errorf("pf+spec (%d) should beat Adve-Hill (%d)", both, ah)
	}
	convGain := float64(conv) / float64(ah)
	techGain := float64(conv) / float64(both)
	if techGain <= convGain {
		t.Errorf("techniques gain (%.3f) should exceed Adve-Hill gain (%.3f)", techGain, convGain)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestStenstromComparison checks E7: cached SC beats the cacheless NST
// scheme on a workload with reuse.
func TestStenstromComparison(t *testing.T) {
	rows, err := StenstromComparison(16)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "impl")
	if c["cached-SC/"] >= c["stenstrom-NST/"] {
		t.Errorf("cached SC (%d) should beat NST (%d) on reuse", c["cached-SC/"], c["stenstrom-NST/"])
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestSoftwarePrefetchComparison checks E9: software prefetching is
// insensitive to the instruction window; hardware prefetching degrades as
// the window shrinks; combined is at least as good as software alone.
func TestSoftwarePrefetchComparison(t *testing.T) {
	rows, err := SoftwarePrefetchComparison([]int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "rob", "prefetch")
	if c["4/sw/"] != c["64/sw/"] {
		t.Errorf("software prefetch should be window-independent: rob4=%d rob64=%d", c["4/sw/"], c["64/sw/"])
	}
	if !(c["4/hw/"] > c["64/hw/"]) {
		t.Errorf("hardware prefetch should degrade with a small window: rob4=%d rob64=%d", c["4/hw/"], c["64/hw/"])
	}
	if c["4/sw/"] >= c["4/hw/"] {
		t.Errorf("at a small window software prefetch (%d) should beat hardware (%d)", c["4/sw/"], c["4/hw/"])
	}
	if c["4/hw+sw/"] > c["4/sw/"] {
		t.Errorf("combined (%d) should not be worse than software alone (%d)", c["4/hw+sw/"], c["4/sw/"])
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestSCDetection checks E10 (the §6 / reference-[6] extension): the
// detector flags the racy message-passing execution whose RC reordering
// actually violates SC, and certifies the data-race-free producer/consumer
// (zero detections means the execution was sequentially consistent).
func TestSCDetection(t *testing.T) {
	rows, err := SCDetection()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		det := r.Extra["detections"]
		switch r.Labels["program"] {
		case "MP-racy":
			if r.Labels["relaxed"] == "true" && det == 0 {
				t.Error("SC-violating execution not detected")
			}
		case "producer-consumer-DRF":
			if det != 0 {
				t.Errorf("false positive: %v detections on a data-race-free program", det)
			}
		}
		t.Log(r)
	}
}

// TestDetectionPolicyComparison checks E11: under pure false sharing the
// repeat-and-compare policy eliminates the conservative squashes (footnote
// 2) and runs faster; under true sharing the policies do not diverge in
// the wrong direction.
func TestDetectionPolicyComparison(t *testing.T) {
	rows, err := DetectionPolicyComparison(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	get := func(wl, pol string) Row {
		for _, r := range rows {
			if r.Labels["workload"] == wl && r.Labels["policy"] == pol {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", wl, pol)
		return Row{}
	}
	fsCons, fsReval := get("false-sharing", "conservative"), get("false-sharing", "revalidate")
	if fsCons.Extra["squashes"] == 0 {
		t.Error("false-sharing workload produced no conservative squashes (workload regression)")
	}
	if fsReval.Extra["squashes"] != 0 {
		t.Errorf("revalidation still squashed %v times under pure false sharing", fsReval.Extra["squashes"])
	}
	if fsReval.Extra["reval_ok"] == 0 {
		t.Error("no confirmed revalidations under false sharing")
	}
	if fsReval.Cycles >= fsCons.Cycles {
		t.Errorf("revalidation (%d) should beat conservative squashing (%d) under false sharing",
			fsReval.Cycles, fsCons.Cycles)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestBandwidthComparison checks E12: with a bounded-service home module a
// single home saturates under streaming misses; interleaving lines across
// four modules recovers most of the unlimited-bandwidth performance.
func TestBandwidthComparison(t *testing.T) {
	rows, err := BandwidthComparison(8)
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "modules", "bw")
	single, inf := c["1/1/"], c["1/inf/"]
	four := c["4/1/"]
	if single <= inf {
		t.Errorf("bounded single module (%d) should be slower than unlimited (%d)", single, inf)
	}
	if four >= single {
		t.Errorf("four modules (%d) should beat one (%d) at the same per-module bandwidth", four, single)
	}
	if float64(four) > float64(inf)*1.2 {
		t.Errorf("four bounded modules (%d) should approach unlimited bandwidth (%d)", four, inf)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestMSHRSweep checks E13: the techniques need multiple outstanding
// requests; one MSHR strangles them, and the benefit grows with MSHRs.
func TestMSHRSweep(t *testing.T) {
	rows, err := MSHRSweep([]int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "mshrs", "tech")
	speedup := func(m int) float64 {
		return float64(c[fmt.Sprintf("%d/conv/", m)]) / float64(c[fmt.Sprintf("%d/pf+spec/", m)])
	}
	if speedup(1) > 1.5 {
		t.Errorf("one MSHR should strangle the techniques: speedup %.2f", speedup(1))
	}
	if speedup(16) <= speedup(1)*2 {
		t.Errorf("techniques should scale with MSHRs: 1->%.2f 16->%.2f", speedup(1), speedup(16))
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestUpdateProtocolPreservesModels runs the litmus battery under the
// write-update protocol with both techniques on SC: the detection
// mechanism must also work off update messages (§4.1 monitors
// "invalidations OR updates"), so no forbidden outcome may appear.
func TestUpdateProtocolPreservesModels(t *testing.T) {
	for _, l := range workload.AllLitmus() {
		cell, err := RunLitmusWithProtocol(l, core.SC, TechBoth, coherence.ProtoUpdate)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Relaxed {
			t.Errorf("%s: forbidden outcome under SC with the update protocol", l.Name)
		}
	}
}

// TestReissueAblation checks E14: §4.2's second-case optimization converts
// some pipeline flushes into bare load reissues and never loses time.
func TestReissueAblation(t *testing.T) {
	rows, err := ReissueAblation(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	c := map[string]Row{}
	for _, r := range rows {
		c[r.Labels["policy"]] = r
	}
	always, opt := c["flush-always"], c["reissue-opt"]
	if opt.Extra["reissues"] == 0 {
		t.Error("reissue path never exercised (workload regression)")
	}
	if opt.Extra["flushes"] >= always.Extra["flushes"] {
		t.Errorf("optimization did not reduce flushes: %v vs %v",
			opt.Extra["flushes"], always.Extra["flushes"])
	}
	if opt.Cycles > always.Cycles {
		t.Errorf("reissue optimization slower: %d vs %d", opt.Cycles, always.Cycles)
	}
	for _, r := range rows {
		t.Log(r)
	}
}

// TestWarmedEqualization checks E15: on fully warmed caches the measured
// kernel's misses are the stores' ownership upgrades, so conventional SC
// (which serializes on them) stays well behind, while both techniques pull
// SC down to exactly the relaxed-model cycle count — equalization in its
// sharpest form. The sweep exists to exercise the warmup-snapshot cache:
// all ten grid points declare the same warmup key.
func TestWarmedEqualization(t *testing.T) {
	rows, err := WarmedEqualization()
	if err != nil {
		t.Fatal(err)
	}
	c := rowsByLabel(rows, "model", "tech")
	scConv, scBoth := c["SC/conv/"], c["SC/pf+spec/"]
	rcConv, rcBoth := c["RC/conv/"], c["RC/pf+spec/"]
	if scConv <= 2*rcConv {
		t.Errorf("warmed conventional SC (%d) should trail RC (%d) by well over 2x", scConv, rcConv)
	}
	if scBoth != rcBoth {
		t.Errorf("with both techniques SC (%d) should exactly match RC (%d) on warmed caches", scBoth, rcBoth)
	}
	keys := map[string]bool{}
	for _, j := range WarmedEqualizationJobs() {
		if j.Warmup == nil {
			t.Fatalf("job %s declares no warmup", j.Name)
		}
		keys[j.Warmup.Key] = true
	}
	if len(keys) != 1 {
		t.Errorf("E15 jobs should share one warmup key, got %d distinct keys", len(keys))
	}
	for _, r := range rows {
		t.Log(r)
	}
}
