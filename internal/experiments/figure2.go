// Package experiments contains the runners that regenerate every table and
// figure of the paper (see DESIGN.md's experiment index). Each experiment
// is a pure function from configuration to results so the cmd/ tools, the
// benchmarks and the tests share one implementation.
package experiments

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// TechConv, TechPf, TechSpec, TechBoth are the technique grid used across
// experiments.
var (
	TechConv = core.Technique{}
	TechPf   = core.Technique{Prefetch: true}
	TechSpec = core.Technique{SpecLoad: true, ReissueOpt: true}
	TechBoth = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
)

// Figure2Result is one cell of the Figure 2 cycle-count analysis.
type Figure2Result struct {
	Example string
	Model   core.Model
	Tech    core.Technique
	Cycles  uint64
}

// RunExample1 measures the paper's Example 1 (lock; write A; write B;
// unlock) under the given model and techniques, returning the cycle count
// from program start to the completion of the last access.
func RunExample1(model core.Model, tech core.Technique) (uint64, error) {
	cfg := sim.PaperConfig()
	cfg.Model = model
	cfg.Tech = tech
	return sim.RunProgram(cfg, []*isa.Program{workload.Example1()})
}

// RunExample2 measures Example 2 (lock; read C; read D; read E[D]; unlock).
// Location D is warmed into the cache first, and memory is preloaded so
// D's value indexes E, exactly as the example assumes.
func RunExample2(model core.Model, tech core.Technique) (uint64, error) {
	cfg := sim.PaperConfig()
	cfg.Model = model
	cfg.Tech = tech
	s := sim.New(cfg, []*isa.Program{workload.Example2Warmup()})
	s.Preload(map[uint64]int64{workload.AddrD: workload.DValue})
	if _, err := s.Run(); err != nil {
		return 0, fmt.Errorf("warmup: %w", err)
	}
	s.LoadPrograms([]*isa.Program{workload.Example2()})
	return s.Run()
}

// Figure2Grid runs both examples across the {SC, RC} x {conv, pf, spec}
// grid of the paper's analysis. Speculative loads are combined with store
// prefetching, as §4 prescribes.
func Figure2Grid() ([]Figure2Result, error) {
	var out []Figure2Result
	for _, m := range []core.Model{core.SC, core.RC} {
		for _, t := range []core.Technique{TechConv, TechPf, TechBoth} {
			c1, err := RunExample1(m, t)
			if err != nil {
				return nil, fmt.Errorf("example1 %v/%v: %w", m, t, err)
			}
			out = append(out, Figure2Result{"example1", m, t, c1})
			c2, err := RunExample2(m, t)
			if err != nil {
				return nil, fmt.Errorf("example2 %v/%v: %w", m, t, err)
			}
			out = append(out, Figure2Result{"example2", m, t, c2})
		}
	}
	return out, nil
}

// PaperFigure2 returns the cycle counts the paper reports for the grid, for
// verification: (example, model, technique-name) -> cycles.
func PaperFigure2() map[string]uint64 {
	return map[string]uint64{
		"example1/SC/conv":    301,
		"example1/RC/conv":    202,
		"example1/SC/pf":      103,
		"example1/RC/pf":      103,
		"example1/SC/pf+spec": 103,
		"example1/RC/pf+spec": 103,
		"example2/SC/conv":    302,
		"example2/RC/conv":    203,
		"example2/SC/pf":      203,
		"example2/RC/pf":      202,
		"example2/SC/pf+spec": 104,
		"example2/RC/pf+spec": 104,
	}
}

// Key renders the lookup key of a result in PaperFigure2 format.
func (r Figure2Result) Key() string {
	return fmt.Sprintf("%s/%v/%v", r.Example, r.Model, r.Tech)
}

// ProtocolFor exposes the default protocol used by the figure experiments.
const ProtocolFor = coherence.ProtoInvalidate

// Figure2GridAll extends the paper's SC/RC analysis to every implemented
// model, including PC, WC and RCsc (extension data: the paper presents the
// techniques "only in the context of SC and RC since they represent the two
// extremes of the spectrum"; these rows fill in the middle).
func Figure2GridAll() ([]Figure2Result, error) {
	var out []Figure2Result
	for _, m := range core.AllModels {
		for _, t := range []core.Technique{TechConv, TechPf, TechBoth} {
			c1, err := RunExample1(m, t)
			if err != nil {
				return nil, fmt.Errorf("example1 %v/%v: %w", m, t, err)
			}
			out = append(out, Figure2Result{"example1", m, t, c1})
			c2, err := RunExample2(m, t)
			if err != nil {
				return nil, fmt.Errorf("example2 %v/%v: %w", m, t, err)
			}
			out = append(out, Figure2Result{"example2", m, t, c2})
		}
	}
	return out, nil
}
