package experiments

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// Figure1Cell is one litmus-test outcome under one model/technique.
type Figure1Cell struct {
	Litmus  string
	Model   core.Model
	Tech    core.Technique
	Relaxed bool // the SC-forbidden outcome occurred
	Allowed bool // the model's delay arcs permit that outcome
	Cycles  uint64
}

// RunLitmus executes one litmus test under the given model and techniques
// and reports whether the relaxed outcome occurred.
func RunLitmus(l workload.Litmus, model core.Model, tech core.Technique) (Figure1Cell, error) {
	return RunLitmusWithProtocol(l, model, tech, coherence.ProtoInvalidate)
}

// RunLitmusWithProtocol is RunLitmus under a chosen coherence protocol.
func RunLitmusWithProtocol(l workload.Litmus, model core.Model, tech core.Technique, proto coherence.Protocol) (Figure1Cell, error) {
	progs := l.Programs()
	cfg := sim.PaperConfig()
	cfg.Procs = len(progs)
	cfg.Model = model
	cfg.Tech = tech
	cfg.Protocol = proto

	var s *sim.System
	if l.Warmups != nil {
		warm := l.Warmups()
		ws := make([]*isa.Program, len(progs))
		for i := range ws {
			if i < len(warm) && warm[i] != nil {
				ws[i] = warm[i]
			} else {
				ws[i] = workload.Idle()
			}
		}
		s = sim.New(cfg, ws)
		if _, err := s.Run(); err != nil {
			return Figure1Cell{}, fmt.Errorf("%s warmup: %w", l.Name, err)
		}
		s.LoadPrograms(progs)
	} else {
		s = sim.New(cfg, progs)
	}
	cycles, err := s.Run()
	if err != nil {
		return Figure1Cell{}, fmt.Errorf("%s: %w", l.Name, err)
	}
	litmusDetections = 0
	for _, u := range s.LSUs {
		litmusDetections += u.SCViolations()
	}
	return Figure1Cell{
		Litmus:  l.Name,
		Model:   model,
		Tech:    tech,
		Relaxed: l.Relaxed(s.ReadCoherent),
		Allowed: l.AllowedUnder[model.String()],
		Cycles:  cycles,
	}, nil
}

// Figure1Matrix runs the full litmus battery across all four models,
// conventionally and with both techniques enabled. The conventional run
// both respects and (by construction of the tests' timing) exhibits each
// model's permitted relaxations; the technique runs must never introduce a
// relaxation the model forbids — that is the correctness claim of the
// paper's detection mechanism.
func Figure1Matrix() ([]Figure1Cell, error) {
	var out []Figure1Cell
	for _, l := range workload.AllLitmus() {
		for _, m := range core.AllModels {
			for _, t := range []core.Technique{TechConv, TechBoth} {
				cell, err := RunLitmus(l, m, t)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
