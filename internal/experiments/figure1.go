package experiments

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// Figure1Cell is one litmus-test outcome under one model/technique.
type Figure1Cell struct {
	Litmus     string
	Model      core.Model
	Tech       core.Technique
	Relaxed    bool // the SC-forbidden outcome occurred
	Allowed    bool // the model's delay arcs permit that outcome
	Cycles     uint64
	Detections uint64 // SC-violation detector hits (E10; zero unless DetectSC)
}

// RunLitmus executes one litmus test under the given model and techniques
// and reports whether the relaxed outcome occurred.
func RunLitmus(l workload.Litmus, model core.Model, tech core.Technique) (Figure1Cell, error) {
	return RunLitmusWithProtocol(l, model, tech, coherence.ProtoInvalidate)
}

// RunLitmusWithProtocol is RunLitmus under a chosen coherence protocol.
func RunLitmusWithProtocol(l workload.Litmus, model core.Model, tech core.Technique, proto coherence.Protocol) (Figure1Cell, error) {
	s, err := litmusSystem(l, model, tech, proto)
	if err != nil {
		return Figure1Cell{}, err
	}
	return litmusMeasure(l, model, tech, s)
}

// litmusSystem assembles (and, where the litmus requires it, warms up) the
// machine for one litmus run. It is the Configure half of a litmus job.
func litmusSystem(l workload.Litmus, model core.Model, tech core.Technique, proto coherence.Protocol) (*sim.System, error) {
	progs := l.Programs()
	cfg := sim.PaperConfig()
	cfg.Procs = len(progs)
	cfg.Model = model
	cfg.Tech = tech
	cfg.Protocol = proto

	if l.Warmups == nil {
		return sim.New(cfg, progs), nil
	}
	warm := l.Warmups()
	ws := make([]*isa.Program, len(progs))
	for i := range ws {
		if i < len(warm) && warm[i] != nil {
			ws[i] = warm[i]
		} else {
			ws[i] = workload.Idle()
		}
	}
	s := sim.New(cfg, ws)
	if _, err := s.Run(); err != nil {
		return nil, fmt.Errorf("%s warmup: %w", l.Name, err)
	}
	s.LoadPrograms(progs)
	return s, nil
}

// litmusMeasure drives a configured litmus machine to completion and
// extracts the cell, including the SC-violation detector count.
func litmusMeasure(l workload.Litmus, model core.Model, tech core.Technique, s *sim.System) (Figure1Cell, error) {
	cycles, err := s.Run()
	if err != nil {
		return Figure1Cell{}, fmt.Errorf("%s: %w", l.Name, err)
	}
	var detections uint64
	for _, u := range s.LSUs {
		detections += u.SCViolations()
	}
	return Figure1Cell{
		Litmus:     l.Name,
		Model:      model,
		Tech:       tech,
		Relaxed:    l.Relaxed(s.ReadCoherent),
		Allowed:    l.AllowedUnder[model.String()],
		Cycles:     cycles,
		Detections: detections,
	}, nil
}

// Figure1Matrix runs the full litmus battery across all four models,
// conventionally and with both techniques enabled. The conventional run
// both respects and (by construction of the tests' timing) exhibits each
// model's permitted relaxations; the technique runs must never introduce a
// relaxation the model forbids — that is the correctness claim of the
// paper's detection mechanism.
func Figure1Matrix() ([]Figure1Cell, error) {
	var out []Figure1Cell
	for _, l := range workload.AllLitmus() {
		for _, m := range core.AllModels {
			for _, t := range []core.Technique{TechConv, TechBoth} {
				cell, err := RunLitmus(l, m, t)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
