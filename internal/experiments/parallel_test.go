package experiments

import (
	"bytes"
	"testing"

	"mcmsim/internal/parsim"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// renderSuitePar renders the full suite with the given shard-parallelism
// degree (0 = sequential loop).
func renderSuitePar(t *testing.T, format string, par int) []byte {
	t.Helper()
	prev := sim.ParWorkers
	sim.ParWorkers = par
	defer func() { sim.ParWorkers = prev }()
	return renderSuite(t, format)
}

// TestParallelEngineSuiteByteIdentical is the end-to-end differential gate
// for the conservative parallel engine: the complete experiment suite
// (`sweep -exp all`) must render byte-identical reports in every output
// format whether each simulation runs on the sequential loop or on 2, 4 or
// 8 shard workers. Together with TestFastForwardSuiteByteIdentical this
// pins the full -dense × -par matrix the CLIs expose.
//
// Not t.Parallel: it toggles the package-wide sim.ParWorkers knob.
func TestParallelEngineSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run; skipped in -short mode")
	}
	parsim.SetWorkerBudget(8)

	for _, format := range []string{runner.FormatTable, runner.FormatJSON, runner.FormatCSV} {
		seq := renderSuitePar(t, format, 0)
		par := renderSuitePar(t, format, 4)
		if !bytes.Equal(seq, par) {
			t.Errorf("%s reports differ between -par 1 and -par 4:\n--- sequential ---\n%s--- parallel ---\n%s", format, seq, par)
		}
	}
	// The remaining worker counts on the cheapest format only: shard windows
	// are deterministic, so any divergence is count-independent and the
	// par=4 sweep above would have caught it; this guards the dispatch edges
	// (fewer workers than shards, more workers than shards).
	seq := renderSuitePar(t, runner.FormatCSV, 0)
	for _, par := range []int{2, 8} {
		got := renderSuitePar(t, runner.FormatCSV, par)
		if !bytes.Equal(seq, got) {
			t.Errorf("csv report differs between -par 1 and -par %d", par)
		}
	}
}

// TestParallelEngineFigure5TraceIdentical pins the trace-hook fallback end
// to end: Figure 5 attaches per-cycle trace hooks, which the parallel
// engine must decline, transparently producing the identical trace through
// the sequential loop.
func TestParallelEngineFigure5TraceIdentical(t *testing.T) {
	prev := sim.ParWorkers
	defer func() { sim.ParWorkers = prev }()

	sim.ParWorkers = 0
	seqRes, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		sim.ParWorkers = par
		parRes, err := RunFigure5()
		if err != nil {
			t.Fatal(err)
		}
		if seqRes.Cycles != parRes.Cycles {
			t.Errorf("par=%d halt cycle: seq=%d par=%d", par, seqRes.Cycles, parRes.Cycles)
		}
		if s, p := seqRes.Trace.String(), parRes.Trace.String(); s != p {
			t.Errorf("par=%d traces differ:\n--- sequential ---\n%s--- parallel ---\n%s", par, s, p)
		}
	}
}
