package experiments

import (
	"strings"
	"testing"

	"mcmsim/internal/workload"
)

// TestFigure5Trace reproduces the §4.3 walkthrough and checks the paper's
// nine milestones and the buffer semantics at the key events:
//
//  1. the reads issue speculatively and the writes are prefetched;
//  2. ownership/values arrive and write B completes by merging with its
//     exclusive prefetch;
//  3. the invalidation for D discards load D and everything after it
//     (load E), leaving only store C in flight;
//  4. load D is re-fetched and reissued as a speculative load whose store
//     tag names store C;
//  5. load D's entry leaves the speculative-load buffer only after store C
//     completes and its own value returns, after which E[D] completes the
//     run.
func TestFigure5Trace(t *testing.T) {
	res, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	evs := res.Trace.Events
	find := func(desc string, from int) int {
		for i := from; i < len(evs); i++ {
			if strings.Contains(evs[i].Description, desc) {
				return i
			}
		}
		t.Fatalf("milestone %q not found after event %d\ntrace:\n%s", desc, from, res.Trace.String())
		return -1
	}

	// Milestones in order.
	i1 := find("read of A is issued", 0)
	i2 := find("read of D is issued", i1)
	i3 := find("value for D arrives", i2)
	i4 := find("read of E[D] is issued", i2)
	i5 := find("write to B is prefetched", 0)
	i6 := find("write to C is prefetched", i5)
	i7 := find("value for A arrives", i6)
	i8 := find("write to B completes", i7)
	i9 := find("speculated value for D invalidated", i8)
	i10 := find("read of D is issued", i9) // the reissue
	i11 := find("write to C completes", i10)
	i12 := find("value for D arrives", i10)
	i13 := find("value for E[D] arrives", i12)
	_ = i3
	_ = i4
	_ = i13

	// The speculated value for D was consumed before the squash: D was done
	// in the spec buffer at the event before the invalidation.
	preSquash := evs[i9-1]
	foundD := false
	for _, r := range preSquash.SpecBuffer {
		if r.LoadAddr == workload.AddrD && r.Done {
			foundD = true
		}
	}
	if !foundD {
		t.Errorf("load D not done in spec buffer before the invalidation:\n%s", res.Trace.String())
	}

	// Event 5 of the paper: after the squash only store C remains in
	// flight; loads D and E are gone from the speculative-load buffer.
	squash := evs[i9]
	if len(squash.SpecBuffer) != 0 {
		t.Errorf("spec buffer not emptied by the squash: %+v", squash.SpecBuffer)
	}
	sawC := false
	for _, r := range squash.StoreBuffer {
		if r.Addr == workload.AddrC && r.Issued && !r.Done {
			sawC = true
		}
	}
	if !sawC {
		t.Errorf("store C not pending at the squash event: %+v", squash.StoreBuffer)
	}

	// Event 6 of the paper: the reissued load D carries store C's tag ("the
	// load is still speculative since the previous store has not completed").
	reissue := evs[i10]
	tagOK := false
	for _, r := range reissue.SpecBuffer {
		if r.LoadAddr == workload.AddrD && r.HasTag && r.TagAddr == workload.AddrC {
			tagOK = true
		}
	}
	if !tagOK {
		t.Errorf("reissued load D does not carry store C's tag: %+v", reissue.SpecBuffer)
	}

	// After store C completes, D's tag is nullified (paper event 8).
	afterC := evs[i11]
	for _, r := range afterC.SpecBuffer {
		if r.LoadAddr == workload.AddrD && r.HasTag {
			t.Errorf("load D still tagged after store C completed: %+v", afterC.SpecBuffer)
		}
	}

	// Sanity on final state: all five locations ended cached as the paper's
	// last row shows (A, D, E[D] valid; B, C exclusive).
	last := evs[len(evs)-1]
	for label, want := range map[string]string{
		"A": "shared", "D": "shared", "E[D]": "shared",
		"B": "exclusive", "C": "exclusive",
	} {
		if got := last.CacheState[label]; got != want {
			t.Errorf("final cache state of %s = %q, want %q", label, got, want)
		}
	}

	if i12 < i11 {
		t.Log("note: paper events 7/8 order (D's value before C's ownership) — see EXPERIMENTS.md")
	}
}
