package experiments

import (
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/machine"
	"mcmsim/internal/network"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// ScaleCPUCounts is the E16 machine-size grid: a 4x4, an 8x8, and a 16x16
// mesh. 256 CPUs is where full-bit-vector directories stop being plausible
// and where an invalidation can fan out to 100+ sharers — the regime the
// paper's 16-processor results cannot speak to.
var ScaleCPUCounts = []int{16, 64, 256}

// scaleWorkload is the wide-sharing workload sized to the machine: every
// CPU reads a block of shared lines each round (building machine-wide
// sharer sets) and a rotating writer invalidates them all. Rounds shrink as
// the machine grows so the 256-CPU rows stay affordable for CI — the
// fan-out per invalidation, which is what E16 measures, grows with the
// machine regardless of the round count.
func scaleWorkload(cpus int) []*isa.Program {
	rounds := 4
	switch {
	case cpus >= 128:
		rounds = 1
	case cpus >= 32:
		rounds = 2
	}
	progs := make([]*isa.Program, cpus)
	for p := 0; p < cpus; p++ {
		progs[p] = workload.WideSharing(p, cpus, 4, rounds)
	}
	return progs
}

// scaleStats harvests the traffic counters E16 reports: total messages,
// mesh hop and link-wait counts, and the invalidation volume including the
// coarse-vector over-invalidation sweeps.
func scaleStats(s *sim.System) map[string]float64 {
	ex := map[string]float64{"messages": float64(s.Net.MessagesSent)}
	if ms, ok := s.Net.Topology().(*network.Mesh); ok {
		ex["hops"] = float64(ms.HopsTraveled)
		ex["link_waits"] = float64(ms.LinkWaits)
	}
	var inv, sweeps uint64
	for _, d := range s.Dirs {
		inv += d.Stats.Counter("invalidations").Value()
		sweeps += d.Stats.Counter("coarse_inv_sweeps").Value()
	}
	ex["invalidations"] = float64(inv)
	ex["coarse_sweeps"] = float64(sweeps)
	return ex
}

// ScaleSweepJobs enumerates E16: the §5 equalization question re-asked on
// many-core mesh machines. Each machine is assembled by the machine
// builder (auto-sized mesh, one home module per tile, limited-pointer
// directory with coarse-vector fallback) and measured under SC
// conventional, SC prefetch, SC prefetch+speculation, RC conventional and
// RC prefetch+speculation. If prefetch+speculation still closes the SC/RC
// gap when an invalidation fans out across a 16x16 mesh, the paper's claim
// survives two orders of magnitude of scaling.
func ScaleSweepJobs(cpuCounts []int, topo string) []runner.Job {
	points := []struct {
		model core.Model
		tech  core.Technique
	}{
		{core.SC, TechConv},
		{core.SC, TechPf},
		{core.SC, TechBoth},
		{core.RC, TechConv},
		{core.RC, TechBoth},
	}
	var jobs []runner.Job
	for _, cpus := range cpuCounts {
		for _, pt := range points {
			cfg, err := machine.New().
				CPUs(cpus).
				Topology(topo).
				Model(pt.model).
				Technique(pt.tech).
				Config()
			if err != nil {
				panic(fmt.Sprintf("experiments: E16 machine rejected: %v", err))
			}
			cpus := cpus
			jobs = append(jobs, simJob(
				fmt.Sprintf("scale/%d/%v/%v", cpus, pt.model, pt.tech),
				map[string]string{
					"cpus": fmt.Sprint(cpus), "topo": cfg.Topo,
					"model": pt.model.String(), "tech": pt.tech.String(),
				},
				func() *sim.System { return sim.New(cfg, scaleWorkload(cpus)) },
				scaleStats))
		}
	}
	return jobs
}

// ScaleSweep executes E16 and returns its rows.
func ScaleSweep(cpuCounts []int, topo string) ([]Row, error) {
	return runner.Execute(ScaleSweepJobs(cpuCounts, topo), 0)
}
