package experiments

import "testing"

// TestFigure2PaperCycleCounts verifies the simulator reproduces every cycle
// count in the paper's §3.3/§4.1 analysis of Figure 2 exactly.
func TestFigure2PaperCycleCounts(t *testing.T) {
	want := PaperFigure2()
	results, err := Figure2Grid()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		w, ok := want[r.Key()]
		if !ok {
			t.Errorf("unexpected result key %q", r.Key())
			continue
		}
		if r.Cycles != w {
			t.Errorf("%s: got %d cycles, paper says %d", r.Key(), r.Cycles, w)
		}
	}
	if len(results) != len(want) {
		t.Errorf("got %d results, want %d", len(results), len(want))
	}
}

// TestFigure2ExtensionShape checks the all-model extension grid: PC behaves
// like SC on the write example (stores stay ordered), WC and both RC
// variants behave like RC (stores pipeline after the acquire), and every
// model converges to the same cycle count with both techniques.
func TestFigure2ExtensionShape(t *testing.T) {
	rows, err := Figure2GridAll()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]uint64{}
	for _, r := range rows {
		byKey[r.Key()] = r.Cycles
	}
	if byKey["example1/PC/conv"] != byKey["example1/SC/conv"] {
		t.Errorf("PC example1 conv = %d, want SC's %d (stores ordered)",
			byKey["example1/PC/conv"], byKey["example1/SC/conv"])
	}
	for _, m := range []string{"WC", "RCsc"} {
		if byKey["example1/"+m+"/conv"] != byKey["example1/RC/conv"] {
			t.Errorf("%s example1 conv = %d, want RC's %d (stores pipeline)",
				m, byKey["example1/"+m+"/conv"], byKey["example1/RC/conv"])
		}
	}
	for _, ex := range []string{"example1", "example2"} {
		want := byKey[ex+"/SC/pf+spec"]
		for _, m := range []string{"PC", "WC", "RCsc", "RC"} {
			if got := byKey[ex+"/"+m+"/pf+spec"]; got != want {
				t.Errorf("%s %s pf+spec = %d, want %d (equalized)", ex, m, got, want)
			}
		}
	}
}
