package experiments

import (
	"mcmsim/internal/runner"
)

// Params carries the knobs shared by the workload sweeps. The per-sweep
// grids (latency points, sharing fractions, ROB sizes, ...) are fixed by
// the suite so every consumer — cmd/sweep, the benchmarks, the
// EXPERIMENTS.md tables — reproduces the same rows.
type Params struct {
	Procs int   // processors for the workload experiments
	Seed  int64 // workload seed

	// ScaleCPUs and ScaleTopo size the E16 scale sweep's machines; the
	// other sweeps run the paper-scale machine and ignore them. Zero
	// values mean ScaleCPUCounts on an auto-sized mesh.
	ScaleCPUs []int
	ScaleTopo string
}

// DefaultParams are the values EXPERIMENTS.md's tables were recorded with.
func DefaultParams() Params { return Params{Procs: 3, Seed: 7} }

// Sweep is one named entry of the evaluation suite: an experiment ID (the
// DESIGN.md row), a short description, and the job enumerator.
type Sweep struct {
	Name string // cmd/sweep -exp name
	ID   string // DESIGN.md experiment row (E1..E16)
	Desc string
	Jobs func(Params) []runner.Job
}

// Suite returns the full evaluation suite in DESIGN.md order (E1..E16; E8
// is test/bench-only and has no sweep). The job lists of several sweeps
// can be concatenated and executed on one shared worker pool; rows come
// back partitioned per sweep because job order is preserved.
func Suite() []Sweep {
	return []Sweep{
		{"equalization", "E1", "model x technique grid (the §5 claim)",
			func(p Params) []runner.Job { return EqualizationJobs(p.Procs, p.Seed) }},
		{"latency", "E2", "miss-latency sweep, SC vs RC",
			func(p Params) []runner.Job {
				return LatencySweepJobs(p.Procs, p.Seed, []uint64{20, 50, 100, 200, 400})
			}},
		{"contention", "E3", "speculation squash rate vs write sharing",
			func(p Params) []runner.Job {
				return ContentionSweepJobs(p.Procs, p.Seed, []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8})
			}},
		{"lookahead", "E4", "reorder-buffer size vs technique benefit",
			func(p Params) []runner.Job { return LookaheadSweepJobs([]int{2, 4, 8, 16, 32, 64}) }},
		{"protocol", "E5", "invalidation vs update coherence",
			func(p Params) []runner.Job { return ProtocolComparisonJobs(p.Procs, p.Seed) }},
		{"advehill", "E6", "Adve-Hill SC comparator (§6)",
			func(p Params) []runner.Job { return AdveHillComparisonJobs(32) }},
		{"nst", "E7", "Stenstrom cacheless comparator (§6)",
			func(p Params) []runner.Job { return StenstromComparisonJobs(32) }},
		{"swprefetch", "E9", "hardware vs software prefetch windows (§6)",
			func(p Params) []runner.Job {
				return SoftwarePrefetchComparisonJobs([]int{4, 8, 16, 32, 64})
			}},
		{"scdetect", "E10", "SC-violation detection on relaxed hardware (§6, ref [6])",
			func(p Params) []runner.Job { return SCDetectionJobs() }},
		{"detection", "E11", "conservative vs repeat-and-compare detection (§4.1)",
			func(p Params) []runner.Job { return DetectionPolicyComparisonJobs(3, 8) }},
		{"bandwidth", "E12", "home-module bandwidth and interleaving (§6)",
			func(p Params) []runner.Job { return BandwidthComparisonJobs(8) }},
		{"mshr", "E13", "lockup-free cache MSHR sweep (§3.2)",
			func(p Params) []runner.Job { return MSHRSweepJobs([]int{1, 2, 4, 8, 16}) }},
		{"reissue", "E14", "reissue-only correction vs flush-always (§4.2)",
			func(p Params) []runner.Job { return ReissueAblationJobs(p.Procs, p.Seed) }},
		{"warmequal", "E15", "model x technique grid on warmed caches (shared-warmup sweep)",
			func(p Params) []runner.Job { return WarmedEqualizationJobs() }},
		{"scale", "E16", "many-core mesh scale sweep: SC vs RC at 16/64/256 CPUs",
			func(p Params) []runner.Job {
				cpus, topo := p.ScaleCPUs, p.ScaleTopo
				if len(cpus) == 0 {
					cpus = ScaleCPUCounts
				}
				if topo == "" {
					topo = "mesh"
				}
				return ScaleSweepJobs(cpus, topo)
			}},
	}
}

// SweepByName looks a suite entry up by its cmd/sweep name.
func SweepByName(name string) (Sweep, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Sweep{}, false
}

// SuiteNames lists the suite's sweep names in suite order.
func SuiteNames() []string {
	var names []string
	for _, s := range Suite() {
		names = append(names, s.Name)
	}
	return names
}
