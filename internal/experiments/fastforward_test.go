package experiments

import (
	"bytes"
	"testing"

	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// renderSuite runs every sweep in the registry on one worker pool and
// renders the full report in the given format — exactly what
// `sweep -exp all -format F` produces.
func renderSuite(t *testing.T, format string) []byte {
	t.Helper()
	p := DefaultParams()
	var tables []runner.Table
	for _, s := range Suite() {
		rows, err := runner.Execute(s.Jobs(p), 0)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		tables = append(tables, runner.Table{Name: s.Name, Rows: rows})
	}
	var buf bytes.Buffer
	if err := runner.WriteReport(&buf, format, tables); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFastForwardSuiteByteIdentical is the end-to-end differential gate
// for the idle-cycle fast-forward scheduler: the complete experiment suite
// (every E-series sweep, i.e. `sweep -exp all`) must render byte-identical
// reports in every output format whether cycles are stepped densely or
// fast-forwarded. This test deliberately goes through the same
// enumeration, execution and rendering layers as cmd/sweep, so a
// divergence anywhere — a skipped stall that a counter should have seen,
// a histogram observed at a shifted cycle — fails loudly with a report
// diff.
//
// Not t.Parallel: it toggles the package-wide sim.ForceDense knob, which
// must not race with other tests' simulations. (Parallel subtests of
// earlier top-level tests have fully completed before this runs.)
func TestFastForwardSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run; skipped in -short mode")
	}
	prev := sim.ForceDense
	defer func() { sim.ForceDense = prev }()

	for _, format := range []string{runner.FormatTable, runner.FormatJSON, runner.FormatCSV} {
		sim.ForceDense = true
		dense := renderSuite(t, format)
		sim.ForceDense = false
		fast := renderSuite(t, format)
		if !bytes.Equal(dense, fast) {
			t.Errorf("%s reports differ:\n--- dense ---\n%s--- fast-forward ---\n%s", format, dense, fast)
		}
	}
}

// TestFastForwardFigure5TraceIdentical pins the finest-grained observable:
// the §4.3 cycle-by-cycle execution trace. Fast-forward may skip only
// cycles in which nothing happens, so the traced walkthrough — every
// event annotated with its cycle number — must come out identical.
func TestFastForwardFigure5TraceIdentical(t *testing.T) {
	prev := sim.ForceDense
	defer func() { sim.ForceDense = prev }()

	sim.ForceDense = true
	denseRes, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	sim.ForceDense = false
	fastRes, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	if denseRes.Cycles != fastRes.Cycles {
		t.Errorf("halt cycle: dense=%d fast-forward=%d", denseRes.Cycles, fastRes.Cycles)
	}
	if d, f := denseRes.Trace.String(), fastRes.Trace.String(); d != f {
		t.Errorf("traces differ:\n--- dense ---\n%s--- fast-forward ---\n%s", d, f)
	}
}
