// Package network models the interconnection network of the simulated
// multiprocessor as a deterministic point-to-point transport over a
// pluggable Topology. The seed topology (Uniform) is a fixed one-way
// latency, which is what the paper's analytical cycle counts assume; Mesh
// models the paper's host class (the Stanford DASH prototype's 2-D mesh)
// with XY routing, per-hop latency and per-link contention.
//
// Delivery is deterministic: messages are delivered in (deliveryTime,
// sequence-number) order, and arrival times are computed by exactly one
// Arrival call per message in global send order, so contention state
// evolves identically across engines. On the uniform topology this also
// guarantees FIFO ordering between any source/destination pair; on a mesh,
// same-route messages stay ordered because each link is booked in send
// order, but the coherence protocol never relies on network FIFO (the
// per-line version numbers order racing messages).
package network

import (
	"container/heap"
	"fmt"
)

// NodeID identifies an endpoint attached to the network: processor caches
// occupy IDs 0..P-1 and directory/memory modules occupy subsequent IDs by
// convention (the network itself imposes no structure on IDs).
type NodeID int

// MsgType enumerates coherence and memory message types carried by the
// network. The invalidation protocol, the update protocol and the cacheless
// NST comparator each use a subset.
type MsgType uint8

// Message types. An upgrade request has no distinct type: a writer holding
// a shared copy sends a plain GetX (the directory skips invalidating the
// requester), which removes a whole class of upgrade/invalidate races.
const (
	// Invalidation-protocol requests (cache -> directory).
	MsgGetS        MsgType = iota // read miss: request line in shared state
	MsgGetX                       // write/RMW miss or upgrade: request line exclusively
	MsgWriteBack                  // victim writeback or recall response (data)
	MsgReplaceHint                // replaced a clean shared line (no data)

	// Invalidation-protocol responses/forwards.
	MsgData        // directory -> cache: line data, shared grant
	MsgDataEx      // directory -> cache: line data, exclusive grant (AckCount invalidations pending)
	MsgInv         // directory -> sharer: invalidate; ack to Requester
	MsgInvAck      // sharer -> requester: invalidation done
	MsgRecallShare // directory -> owner: downgrade to shared, send data back
	MsgRecallInv   // directory -> owner: invalidate, send data back
	MsgWBAck       // directory -> cache: voluntary writeback accepted

	// Update-protocol messages.
	MsgUpdateReq  // writer cache -> directory: write-through word update
	MsgUpdate     // directory -> sharer: word update; ack to Requester
	MsgUpdateAck  // sharer -> writer: update applied
	MsgUpdateDone // directory -> writer: memory updated (AckCount sharer acks pending)

	// Cacheless memory-side ordering (Stenstrom NST comparator).
	MsgMemRead   // processor -> memory module: sequenced read
	MsgMemWrite  // processor -> memory module: sequenced write
	MsgMemRdResp // memory module -> processor: read data
	MsgMemWrAck  // memory module -> processor: write performed

	// MsgSchedWrite is an engine-internal self-delivery: the parallel
	// engine injects one per scheduled external write (Exchange.Inject),
	// addressed to the write agent at the write's cycle, so the agent's
	// self-scheduling needs no special case outside the network layer. It
	// never crosses a real link and is excluded from the traffic counters.
	MsgSchedWrite

	numMsgTypes // sentinel: sizes the per-type arrays below
)

// msgTypeNames is indexed by MsgType; per-message String/stat paths must
// not hash a map.
var msgTypeNames = [numMsgTypes]string{
	MsgGetS: "GetS", MsgGetX: "GetX",
	MsgWriteBack: "WriteBack", MsgReplaceHint: "ReplaceHint",
	MsgData: "Data", MsgDataEx: "DataEx",
	MsgInv: "Inv", MsgInvAck: "InvAck",
	MsgRecallShare: "RecallShare", MsgRecallInv: "RecallInv",
	MsgWBAck:     "WBAck",
	MsgUpdateReq: "UpdateReq", MsgUpdate: "Update",
	MsgUpdateAck: "UpdateAck", MsgUpdateDone: "UpdateDone",
	MsgMemRead: "MemRead", MsgMemWrite: "MemWrite",
	MsgMemRdResp: "MemRdResp", MsgMemWrAck: "MemWrAck",
	MsgSchedWrite: "SchedWrite",
}

func (t MsgType) String() string {
	if t < numMsgTypes && msgTypeNames[t] != "" {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("Msg(%d)", uint8(t))
}

// Message is one packet in flight. Fields beyond Type/Src/Dst are used as
// each message type requires; unused fields are zero.
type Message struct {
	Type MsgType
	Src  NodeID
	Dst  NodeID

	Line      uint64  // line-aligned word address the message concerns
	Word      uint64  // word address for word-granular updates
	Data      []int64 // line data payload (Data/DataEx/WriteBack)
	Value     int64   // single-word payload (updates, NST reads/writes)
	AckCount  int     // invalidation/update acks the requester must collect
	Requester NodeID  // node acks should be sent to (Inv/Update forwards)
	SeqNo     uint64  // per-processor sequence number (NST comparator)
	Tag       uint64  // opaque request tag echoed in responses

	seq      uint64 // global arbitration order, assigned by Send
	deliver  uint64 // delivery cycle
	heapIdx  int
	enqueued bool
	pooled   bool // drawn from the network free list (sent via Post*)
	retained bool // handler kept the message past HandleMessage
}

// Retain marks a delivered pool message as kept by its handler beyond the
// HandleMessage call. The network then skips the automatic reclaim; the
// handler releases the message later with Network.Recycle. Messages sent
// with Send/SendAt (caller-owned allocations) ignore retention entirely.
func (m *Message) Retain() { m.retained = true }

// Handler receives delivered messages. Endpoints (caches, directories,
// memory modules) implement Handler and register with Attach.
type Handler interface {
	HandleMessage(m *Message, now uint64)
}

// Network is the deterministic transport. It is not safe for concurrent use;
// the simulator is single-goroutine by design (determinism first, use
// multiple Systems for throughput).
type Network struct {
	topo      Topology
	endpoints map[NodeID]Handler
	q         msgHeap
	nextSeq   uint64

	// free is the message free list: pool messages (sent via Post*) are
	// reclaimed after delivery and reused, so steady-state coherence
	// traffic allocates nothing.
	free []*Message

	// MessagesSent counts every Send for statistics.
	MessagesSent uint64
	// HopsByType counts sends per message type, indexed by MsgType.
	HopsByType [numMsgTypes]uint64
}

// New creates a uniform-topology network with the given one-way latency in
// cycles (the seed behavior: every node pair one latency apart, no
// contention).
func New(latency uint64) *Network {
	return NewWithTopology(Uniform{Lat: latency})
}

// NewWithTopology creates a network whose delivery times are computed by
// the given topology.
func NewWithTopology(t Topology) *Network {
	return &Network{
		topo:      t,
		endpoints: make(map[NodeID]Handler),
	}
}

// Latency returns the network's minimum one-way delay — the uniform
// latency on the seed topology, the per-hop latency on a mesh. It is the
// parallel engine's safe lookahead window; components never use it for
// protocol decisions.
func (n *Network) Latency() uint64 { return n.topo.MinDelay() }

// Topology returns the network's topology model.
func (n *Network) Topology() Topology { return n.topo }

// Attach registers an endpoint handler for a node ID. Attaching the same ID
// twice replaces the previous handler.
func (n *Network) Attach(id NodeID, h Handler) { n.endpoints[id] = h }

// Send enqueues a message departing now; the topology supplies the arrival
// cycle (now + latency on the uniform topology).
func (n *Network) Send(m *Message, now uint64) {
	n.SendAt(m, n.topo.Arrival(m.Src, m.Dst, now))
}

// SendAfter enqueues a message departing at now + extra. The extra delay
// models service time at the sender (e.g. the directory's memory access)
// without a separate event queue; transit time is the topology's.
func (n *Network) SendAfter(m *Message, now, extra uint64) {
	n.SendAt(m, n.topo.Arrival(m.Src, m.Dst, now+extra))
}

// Post sends a copy of proto drawn from the message free list for delivery
// at now + latency. Pool messages are reclaimed automatically after their
// destination handler returns, unless the handler called Retain — so a
// handler that keeps the pointer past HandleMessage must Retain it and
// Recycle it when done; handlers that copy what they need (the common case)
// need do nothing.
func (n *Network) Post(proto Message, now uint64) {
	n.PostAt(proto, n.topo.Arrival(proto.Src, proto.Dst, now))
}

// PostAfter is SendAfter for pool messages: departure at now+extra.
func (n *Network) PostAfter(proto Message, now, extra uint64) {
	n.PostAt(proto, n.topo.Arrival(proto.Src, proto.Dst, now+extra))
}

// PostAt enqueues a pooled copy of proto for delivery at the absolute cycle
// deliver.
func (n *Network) PostAt(proto Message, deliver uint64) {
	m := n.acquire()
	*m = proto
	m.pooled = true
	n.SendAt(m, deliver)
}

func (n *Network) acquire() *Message {
	if k := len(n.free); k > 0 {
		m := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return m
	}
	return &Message{}
}

// Recycle returns a retained pool message to the free list. Calling it on a
// caller-owned (non-pool) or still-enqueued message is a no-op, so handlers
// may recycle unconditionally.
func (n *Network) Recycle(m *Message) {
	if !m.pooled || m.enqueued {
		return
	}
	*m = Message{}
	n.free = append(n.free, m)
}

// SendAt enqueues a message for delivery at the absolute cycle deliver.
func (n *Network) SendAt(m *Message, deliver uint64) {
	if m.enqueued {
		panic("network: message enqueued twice")
	}
	m.enqueued = true
	m.deliver = deliver
	m.seq = n.nextSeq
	n.nextSeq++
	n.MessagesSent++
	n.HopsByType[m.Type]++
	heap.Push(&n.q, m)
}

// Deliver hands every message due at or before now to its destination
// handler, in deterministic order. Handlers may send new messages during
// delivery; those are delivered in a later cycle because latency >= 1.
func (n *Network) Deliver(now uint64) {
	for n.q.Len() > 0 && n.q[0].deliver <= now {
		m := heap.Pop(&n.q).(*Message)
		m.enqueued = false
		h, ok := n.endpoints[m.Dst]
		if !ok {
			panic("network: message to unattached node")
		}
		h.HandleMessage(m, now)
		if m.pooled {
			if m.retained {
				m.retained = false
			} else {
				n.Recycle(m)
			}
		}
	}
}

// Pending reports the number of undelivered messages; the simulator uses it
// to detect quiescence.
func (n *Network) Pending() int { return n.q.Len() }

// NextDelivery returns the earliest pending delivery cycle, or ok=false when
// the network is empty. The simulator can skip idle cycles with it.
func (n *Network) NextDelivery() (cycle uint64, ok bool) {
	if n.q.Len() == 0 {
		return 0, false
	}
	return n.q[0].deliver, true
}

// msgHeap orders messages by (deliver, seq). Engine-internal injections
// (MsgSchedWrite, found only in Exchange inboxes) carry injection ordinals
// rather than global sequence numbers and sort before every real message
// due the same cycle — the sequential loop runs the scheduled-writes phase
// before delivery.
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].deliver != h[j].deliver {
		return h[i].deliver < h[j].deliver
	}
	if ii, ij := h[i].Type == MsgSchedWrite, h[j].Type == MsgSchedWrite; ii != ij {
		return ii
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *msgHeap) Push(x any) {
	m := x.(*Message)
	m.heapIdx = len(*h)
	*h = append(*h, m)
}
func (h *msgHeap) Pop() any {
	old := *h
	m := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return m
}
