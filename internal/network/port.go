package network

// Port is the network access point a component (cache, directory, agent)
// sends through. Two implementations exist:
//
//   - *Network itself: the sequential engine's direct path. Messages go
//     straight into the global delivery heap and receive their arbitration
//     sequence number at send time.
//   - *Endpoint: the parallel engine's per-shard outbox. Messages are
//     buffered locally, stamped with the position the sequential loop would
//     have sent them at, and merged into the destination inboxes at the next
//     window barrier (Exchange.Barrier), where they receive sequence numbers
//     in exactly the order the sequential path would have assigned them.
//
// Components hold a Port, not a *Network, so the simulator can rebind them
// onto a shard-private endpoint for a parallel run and back afterwards
// without the component noticing. Both implementations provide the same
// message-pool semantics (Post*/Retain/Recycle).
type Port interface {
	// Latency returns the configured one-way latency.
	Latency() uint64
	// Send enqueues a caller-owned message for delivery at now + latency.
	Send(m *Message, now uint64)
	// SendAfter enqueues for delivery at now + latency + extra.
	SendAfter(m *Message, now, extra uint64)
	// SendAt enqueues for delivery at the absolute cycle deliver.
	SendAt(m *Message, deliver uint64)
	// Post sends a pooled copy of proto for delivery at now + latency.
	Post(proto Message, now uint64)
	// PostAfter is SendAfter for pooled messages.
	PostAfter(proto Message, now, extra uint64)
	// PostAt enqueues a pooled copy for delivery at the absolute cycle.
	PostAt(proto Message, deliver uint64)
	// Recycle returns a retained pool message to the free list.
	Recycle(m *Message)
}

var (
	_ Port = (*Network)(nil)
	_ Port = (*Endpoint)(nil)
)
