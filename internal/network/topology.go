package network

import "fmt"

// Topology computes when a message injected into the network arrives at its
// destination. It is the one point where physical structure (link layout,
// per-hop latency, link bandwidth) enters the simulator; everything above it
// sees only delivery cycles.
//
// Arrival must be called exactly once per message, in global send order:
// topologies with contention state (link occupancy clocks) advance that
// state inside Arrival, and the deterministic-delivery guarantee of the
// whole simulator rests on the sequence of Arrival calls being identical
// across engines. The sequential loop calls it at Send time; the parallel
// engine defers every send to the window barrier and calls it there in
// sorted sequential-send order — the same sequence, so the same arrivals.
type Topology interface {
	// MinDelay is the minimum one-way delay between any two nodes, in
	// cycles. It bounds how early any send can be observed and is therefore
	// the parallel engine's safe lookahead window. Must be >= 1 for the
	// parallel engine to engage.
	MinDelay() uint64

	// Arrival returns the delivery cycle for a message from src to dst that
	// departs its source at cycle dep (dep already includes any sender-side
	// service time). The result is always >= dep + MinDelay().
	Arrival(src, dst NodeID, dep uint64) uint64

	// State returns the topology's mutable state — contention clocks and
	// traffic counters — as a flat vector for snapshots; Restore replaces
	// it. A stateless topology returns nil and accepts only nil/empty.
	State() []uint64
	Restore([]uint64) error

	// String names the topology in reports.
	String() string
}

// Uniform is the seed topology: every pair of nodes is one latency apart,
// with no contention. It reproduces the paper's analytical model (a fixed
// one-way network latency) exactly.
type Uniform struct {
	Lat uint64
}

// MinDelay implements Topology.
func (u Uniform) MinDelay() uint64 { return u.Lat }

// Arrival implements Topology: arrival is departure plus the fixed latency.
func (u Uniform) Arrival(src, dst NodeID, dep uint64) uint64 { return dep + u.Lat }

// State implements Topology; a uniform network carries no mutable state.
func (u Uniform) State() []uint64 { return nil }

// Restore implements Topology.
func (u Uniform) Restore(st []uint64) error {
	if len(st) != 0 {
		return fmt.Errorf("network: uniform topology restore with %d state words", len(st))
	}
	return nil
}

func (u Uniform) String() string { return fmt.Sprintf("uniform(lat=%d)", u.Lat) }

// Mesh is a W×H 2-D mesh with XY dimension-order routing, a fixed per-hop
// latency, and per-directed-link contention: each link accepts one message
// every Gap cycles (store-and-forward, single-flit messages). Nodes are
// placed on tiles with Place; several nodes may share a tile (a DASH-style
// cluster of processor + home module).
//
// Routing is deterministic and minimal: first along X toward the
// destination column, then along Y. A message crossing h links arrives
// after at least max(h,1)*HopLat cycles — intra-tile messages still pay one
// hop through the local switch, which keeps MinDelay positive and the
// parallel window open. Contention adds waiting: a message books each link
// on its path in turn, departing a link no earlier than the link's next
// free cycle, and each booking blocks the link for Gap cycles. Bookings
// happen inside Arrival, in global send order, which makes queueing delays
// deterministic and engine-independent.
type Mesh struct {
	W, H   int
	HopLat uint64
	Gap    uint64

	tile []int32 // node ID -> tile index, -1 = unplaced

	// nextFree is the earliest cycle each directed link accepts another
	// message: 4 links per tile, indexed [tile*4 + direction].
	nextFree []uint64

	// Traffic observability, folded into reports.
	HopsTraveled uint64 // links crossed by all messages
	LinkWaits    uint64 // cycles messages spent queued on busy links
}

// Link directions, clockwise from east; index into nextFree.
const (
	linkEast = iota
	linkSouth
	linkWest
	linkNorth
	linksPerTile
)

// NewMesh creates a W×H mesh. hopLat is the per-link traversal latency
// (>= 1); gap is the per-link occupancy in cycles (>= 1: one message per
// gap cycles per directed link).
func NewMesh(w, h int, hopLat, gap uint64) *Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("network: invalid mesh %dx%d", w, h))
	}
	if hopLat == 0 {
		hopLat = 1
	}
	if gap == 0 {
		gap = 1
	}
	return &Mesh{
		W: w, H: h, HopLat: hopLat, Gap: gap,
		nextFree: make([]uint64, w*h*linksPerTile),
	}
}

// Place assigns a network node to a tile. Every node that ever sends or
// receives must be placed before traffic flows; Arrival panics otherwise,
// because silently guessing a location would corrupt timing.
func (ms *Mesh) Place(id NodeID, tile int) {
	if tile < 0 || tile >= ms.W*ms.H {
		panic(fmt.Sprintf("network: tile %d outside %dx%d mesh", tile, ms.W, ms.H))
	}
	for int(id) >= len(ms.tile) {
		ms.tile = append(ms.tile, -1)
	}
	ms.tile[id] = int32(tile)
}

// Tiles returns the number of tiles in the mesh.
func (ms *Mesh) Tiles() int { return ms.W * ms.H }

func (ms *Mesh) tileOf(id NodeID) int {
	if int(id) >= len(ms.tile) || ms.tile[id] < 0 {
		panic(fmt.Sprintf("network: node %d not placed on mesh", id))
	}
	return int(ms.tile[id])
}

// MinDelay implements Topology: one hop is the fastest any message moves.
func (ms *Mesh) MinDelay() uint64 { return ms.HopLat }

// Route reports the XY hop count between two nodes' tiles (0 for the same
// tile; Arrival still charges one local hop).
func (ms *Mesh) Route(src, dst NodeID) int {
	st, dt := ms.tileOf(src), ms.tileOf(dst)
	sx, sy := st%ms.W, st/ms.W
	dx, dy := dt%ms.W, dt/ms.W
	return abs(dx-sx) + abs(dy-sy)
}

// Arrival implements Topology: walk the XY route, booking each directed
// link in order. Must be called in global send order (see Topology).
func (ms *Mesh) Arrival(src, dst NodeID, dep uint64) uint64 {
	st, dt := ms.tileOf(src), ms.tileOf(dst)
	if st == dt {
		// Local delivery through the tile switch: one hop of latency, no
		// link booked. Keeps arrival >= dep + MinDelay for the window proof.
		ms.HopsTraveled++
		return dep + ms.HopLat
	}
	t := dep
	x, y := st%ms.W, st/ms.W
	dx, dy := dt%ms.W, dt/ms.W
	for x != dx || y != dy {
		// Each hop uses one directed link owned by the hop's source tile.
		from := y*ms.W + x
		var dir int
		switch {
		case x < dx:
			dir, x = linkEast, x+1
		case x > dx:
			dir, x = linkWest, x-1
		case y < dy:
			dir, y = linkSouth, y+1
		default:
			dir, y = linkNorth, y-1
		}
		// The message reaches this tile at t; wait for the link, occupy it
		// for Gap cycles, arrive at the next tile a hop later.
		link := from*linksPerTile + dir
		if free := ms.nextFree[link]; free > t {
			ms.LinkWaits += free - t
			t = free
		}
		ms.nextFree[link] = t + ms.Gap
		t += ms.HopLat
		ms.HopsTraveled++
	}
	return t
}

// State implements Topology: the link clocks followed by the counters.
func (ms *Mesh) State() []uint64 {
	out := make([]uint64, 0, len(ms.nextFree)+2)
	out = append(out, ms.nextFree...)
	out = append(out, ms.HopsTraveled, ms.LinkWaits)
	return out
}

// Restore implements Topology.
func (ms *Mesh) Restore(st []uint64) error {
	if len(st) != len(ms.nextFree)+2 {
		return fmt.Errorf("network: mesh restore with %d state words, want %d", len(st), len(ms.nextFree)+2)
	}
	copy(ms.nextFree, st[:len(ms.nextFree)])
	ms.HopsTraveled = st[len(ms.nextFree)]
	ms.LinkWaits = st[len(ms.nextFree)+1]
	return nil
}

func (ms *Mesh) String() string {
	return fmt.Sprintf("mesh(%dx%d,hop=%d,gap=%d)", ms.W, ms.H, ms.HopLat, ms.Gap)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
