package network

import (
	"testing"
	"testing/quick"
)

type collector struct {
	got []*Message
	at  []uint64
}

func (c *collector) HandleMessage(m *Message, now uint64) {
	c.got = append(c.got, m)
	c.at = append(c.at, now)
}

func TestDeliveryAfterLatency(t *testing.T) {
	n := New(10)
	dst := &collector{}
	n.Attach(1, dst)
	n.Send(&Message{Type: MsgGetS, Src: 0, Dst: 1, Line: 0x40}, 5)
	for cyc := uint64(0); cyc < 15; cyc++ {
		n.Deliver(cyc)
		if cyc < 15 && len(dst.got) != 0 {
			t.Fatalf("message delivered early at %d", cyc)
		}
	}
	n.Deliver(15)
	if len(dst.got) != 1 || dst.at[0] != 15 {
		t.Fatalf("message not delivered at 15: %v", dst.at)
	}
}

func TestSendAfterAddsServiceTime(t *testing.T) {
	n := New(10)
	dst := &collector{}
	n.Attach(1, dst)
	n.SendAfter(&Message{Type: MsgData, Dst: 1}, 0, 7)
	n.Deliver(16)
	if len(dst.got) != 0 {
		t.Fatal("delivered before latency+service")
	}
	n.Deliver(17)
	if len(dst.got) != 1 {
		t.Fatal("not delivered at latency+service")
	}
}

func TestFIFOPerPair(t *testing.T) {
	n := New(5)
	dst := &collector{}
	n.Attach(1, dst)
	for i := 0; i < 10; i++ {
		n.Send(&Message{Type: MsgGetS, Dst: 1, Tag: uint64(i)}, uint64(i))
	}
	n.Deliver(100)
	if len(dst.got) != 10 {
		t.Fatalf("delivered %d of 10", len(dst.got))
	}
	for i, m := range dst.got {
		if m.Tag != uint64(i) {
			t.Fatalf("message %d has tag %d: FIFO violated", i, m.Tag)
		}
	}
}

func TestSameCycleTieBreakBySendOrder(t *testing.T) {
	n := New(5)
	dst := &collector{}
	n.Attach(1, dst)
	n.Send(&Message{Type: MsgData, Dst: 1, Tag: 1}, 0)
	n.Send(&Message{Type: MsgInv, Dst: 1, Tag: 2}, 0)
	n.Deliver(5)
	if dst.got[0].Tag != 1 || dst.got[1].Tag != 2 {
		t.Error("same-cycle messages must deliver in send order")
	}
}

func TestPendingAndNextDelivery(t *testing.T) {
	n := New(3)
	n.Attach(1, &collector{})
	if _, ok := n.NextDelivery(); ok {
		t.Error("empty network reports a pending delivery")
	}
	n.Send(&Message{Dst: 1}, 4)
	if n.Pending() != 1 {
		t.Errorf("pending = %d", n.Pending())
	}
	if at, ok := n.NextDelivery(); !ok || at != 7 {
		t.Errorf("next delivery = %d,%v", at, ok)
	}
	n.Deliver(7)
	if n.Pending() != 0 {
		t.Error("message not drained")
	}
}

func TestUnattachedDestinationPanics(t *testing.T) {
	n := New(1)
	n.Send(&Message{Dst: 9}, 0)
	defer func() {
		if recover() == nil {
			t.Error("delivery to unattached node must panic")
		}
	}()
	n.Deliver(1)
}

func TestDoubleEnqueuePanics(t *testing.T) {
	n := New(1)
	n.Attach(1, &collector{})
	m := &Message{Dst: 1}
	n.Send(m, 0)
	defer func() {
		if recover() == nil {
			t.Error("re-sending an enqueued message must panic")
		}
	}()
	n.Send(m, 0)
}

func TestHopsByTypeCounting(t *testing.T) {
	n := New(1)
	n.Attach(1, &collector{})
	n.Send(&Message{Type: MsgGetS, Dst: 1}, 0)
	n.Send(&Message{Type: MsgGetS, Dst: 1}, 0)
	n.Send(&Message{Type: MsgInv, Dst: 1}, 0)
	if n.HopsByType[MsgGetS] != 2 || n.HopsByType[MsgInv] != 1 || n.MessagesSent != 3 {
		t.Errorf("counters wrong: %v total=%d", n.HopsByType, n.MessagesSent)
	}
}

func TestMsgTypeStringsDistinct(t *testing.T) {
	types := []MsgType{
		MsgGetS, MsgGetX, MsgWriteBack, MsgReplaceHint,
		MsgData, MsgDataEx, MsgInv, MsgInvAck,
		MsgRecallShare, MsgRecallInv, MsgWBAck,
		MsgUpdateReq, MsgUpdate, MsgUpdateAck, MsgUpdateDone,
		MsgMemRead, MsgMemWrite, MsgMemRdResp, MsgMemWrAck,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if s == "Msg(?)" {
			t.Errorf("type %d has no name", typ)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

// TestDeliveryOrderProperty property: for arbitrary send times, deliveries
// arrive in non-decreasing delivery-time order and nothing is lost.
func TestDeliveryOrderProperty(t *testing.T) {
	f := func(sendTimes []uint16) bool {
		n := New(9)
		dst := &collector{}
		n.Attach(1, dst)
		for _, st := range sendTimes {
			n.Send(&Message{Dst: 1}, uint64(st))
		}
		// Deliver in chunks to exercise partial drains.
		for cyc := uint64(0); cyc <= 1<<16+9; cyc += 1000 {
			n.Deliver(cyc)
		}
		n.Deliver(1<<17 + 10)
		if len(dst.got) != len(sendTimes) {
			return false
		}
		for i := 1; i < len(dst.at); i++ {
			if dst.at[i] < dst.at[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMsgTypeStringUnknown: String() on an out-of-range or unnamed type
// must degrade to a numeric form, not panic or index past the name table.
func TestMsgTypeStringUnknown(t *testing.T) {
	for _, typ := range []MsgType{numMsgTypes, MsgType(200), MsgType(255)} {
		got := typ.String()
		if got != "Msg("+itoa(uint8(typ))+")" {
			t.Errorf("MsgType(%d).String() = %q, want Msg(%d)", uint8(typ), got, uint8(typ))
		}
	}
}

func itoa(v uint8) string {
	if v == 0 {
		return "0"
	}
	var b [3]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = '0' + v%10
		v /= 10
	}
	return string(b[i:])
}

// capture is a handler that copies delivered messages by value, so the
// assertions survive the pool reclaiming the delivered pointer.
type capture struct{ got []Message }

func (c *capture) HandleMessage(m *Message, now uint64) { c.got = append(c.got, *m) }

// TestMessagePoolRoundTrip: a Post-sent message is recycled after delivery
// and the same backing object is reused by the next Post, while Send-sent
// messages (caller-owned) are never pooled.
func TestMessagePoolRoundTrip(t *testing.T) {
	n := New(3)
	dst := &capture{}
	n.Attach(1, dst)

	n.Post(Message{Type: MsgGetS, Dst: 1, Word: 0x40}, 0)
	n.Deliver(n.Latency() + 1)
	if len(dst.got) != 1 || dst.got[0].Word != 0x40 {
		t.Fatalf("first delivery wrong: %+v", dst.got)
	}
	if len(n.free) != 1 {
		t.Fatalf("free list has %d entries after delivery, want 1", len(n.free))
	}
	reused := n.free[0]

	n.Post(Message{Type: MsgInv, Dst: 1, Word: 0x80}, 100)
	if len(n.free) != 0 {
		t.Fatal("Post did not take the pooled message")
	}
	n.Deliver(100 + n.Latency() + 1)
	if len(dst.got) != 2 || dst.got[1].Type != MsgInv || dst.got[1].Word != 0x80 {
		t.Fatalf("second delivery wrong: %+v", dst.got)
	}
	if len(n.free) != 1 || n.free[0] != reused {
		t.Error("recycled message was not reused by the next Post")
	}

	// Send-sent messages are caller-owned: never recycled into the pool.
	own := &Message{Type: MsgData, Dst: 1}
	n.Send(own, 200)
	n.Deliver(200 + n.Latency() + 1)
	if own.Type != MsgData {
		t.Error("Send-sent message was wiped by the pool")
	}
	if len(n.free) != 1 {
		t.Errorf("free list grew to %d from a Send-sent message", len(n.free))
	}
}

// TestRetainDefersRecycle: a handler that retains a pooled message keeps
// ownership; the network must not reclaim it at delivery. Recycling it
// later returns it to the pool exactly once.
func TestRetainDefersRecycle(t *testing.T) {
	n := New(3)
	var held *Message
	n.Attach(1, handlerFunc(func(m *Message, now uint64) {
		m.Retain()
		held = m
	}))
	n.Post(Message{Type: MsgGetX, Dst: 1, Word: 0x40}, 0)
	n.Deliver(n.Latency() + 1)
	if held == nil || held.Word != 0x40 {
		t.Fatalf("retained message lost: %+v", held)
	}
	if len(n.free) != 0 {
		t.Fatal("retained message was recycled at delivery")
	}
	n.Recycle(held)
	if len(n.free) != 1 {
		t.Fatal("explicit Recycle of a retained message did not pool it")
	}
	if held.Word != 0 || held.Type != 0 {
		t.Error("Recycle did not wipe the message")
	}
}

type handlerFunc func(*Message, uint64)

func (f handlerFunc) HandleMessage(m *Message, now uint64) { f(m, now) }
