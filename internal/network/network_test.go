package network

import (
	"testing"
	"testing/quick"
)

type collector struct {
	got []*Message
	at  []uint64
}

func (c *collector) HandleMessage(m *Message, now uint64) {
	c.got = append(c.got, m)
	c.at = append(c.at, now)
}

func TestDeliveryAfterLatency(t *testing.T) {
	n := New(10)
	dst := &collector{}
	n.Attach(1, dst)
	n.Send(&Message{Type: MsgGetS, Src: 0, Dst: 1, Line: 0x40}, 5)
	for cyc := uint64(0); cyc < 15; cyc++ {
		n.Deliver(cyc)
		if cyc < 15 && len(dst.got) != 0 {
			t.Fatalf("message delivered early at %d", cyc)
		}
	}
	n.Deliver(15)
	if len(dst.got) != 1 || dst.at[0] != 15 {
		t.Fatalf("message not delivered at 15: %v", dst.at)
	}
}

func TestSendAfterAddsServiceTime(t *testing.T) {
	n := New(10)
	dst := &collector{}
	n.Attach(1, dst)
	n.SendAfter(&Message{Type: MsgData, Dst: 1}, 0, 7)
	n.Deliver(16)
	if len(dst.got) != 0 {
		t.Fatal("delivered before latency+service")
	}
	n.Deliver(17)
	if len(dst.got) != 1 {
		t.Fatal("not delivered at latency+service")
	}
}

func TestFIFOPerPair(t *testing.T) {
	n := New(5)
	dst := &collector{}
	n.Attach(1, dst)
	for i := 0; i < 10; i++ {
		n.Send(&Message{Type: MsgGetS, Dst: 1, Tag: uint64(i)}, uint64(i))
	}
	n.Deliver(100)
	if len(dst.got) != 10 {
		t.Fatalf("delivered %d of 10", len(dst.got))
	}
	for i, m := range dst.got {
		if m.Tag != uint64(i) {
			t.Fatalf("message %d has tag %d: FIFO violated", i, m.Tag)
		}
	}
}

func TestSameCycleTieBreakBySendOrder(t *testing.T) {
	n := New(5)
	dst := &collector{}
	n.Attach(1, dst)
	n.Send(&Message{Type: MsgData, Dst: 1, Tag: 1}, 0)
	n.Send(&Message{Type: MsgInv, Dst: 1, Tag: 2}, 0)
	n.Deliver(5)
	if dst.got[0].Tag != 1 || dst.got[1].Tag != 2 {
		t.Error("same-cycle messages must deliver in send order")
	}
}

func TestPendingAndNextDelivery(t *testing.T) {
	n := New(3)
	n.Attach(1, &collector{})
	if _, ok := n.NextDelivery(); ok {
		t.Error("empty network reports a pending delivery")
	}
	n.Send(&Message{Dst: 1}, 4)
	if n.Pending() != 1 {
		t.Errorf("pending = %d", n.Pending())
	}
	if at, ok := n.NextDelivery(); !ok || at != 7 {
		t.Errorf("next delivery = %d,%v", at, ok)
	}
	n.Deliver(7)
	if n.Pending() != 0 {
		t.Error("message not drained")
	}
}

func TestUnattachedDestinationPanics(t *testing.T) {
	n := New(1)
	n.Send(&Message{Dst: 9}, 0)
	defer func() {
		if recover() == nil {
			t.Error("delivery to unattached node must panic")
		}
	}()
	n.Deliver(1)
}

func TestDoubleEnqueuePanics(t *testing.T) {
	n := New(1)
	n.Attach(1, &collector{})
	m := &Message{Dst: 1}
	n.Send(m, 0)
	defer func() {
		if recover() == nil {
			t.Error("re-sending an enqueued message must panic")
		}
	}()
	n.Send(m, 0)
}

func TestHopsByTypeCounting(t *testing.T) {
	n := New(1)
	n.Attach(1, &collector{})
	n.Send(&Message{Type: MsgGetS, Dst: 1}, 0)
	n.Send(&Message{Type: MsgGetS, Dst: 1}, 0)
	n.Send(&Message{Type: MsgInv, Dst: 1}, 0)
	if n.HopsByType[MsgGetS] != 2 || n.HopsByType[MsgInv] != 1 || n.MessagesSent != 3 {
		t.Errorf("counters wrong: %v total=%d", n.HopsByType, n.MessagesSent)
	}
}

func TestMsgTypeStringsDistinct(t *testing.T) {
	types := []MsgType{
		MsgGetS, MsgGetX, MsgWriteBack, MsgReplaceHint,
		MsgData, MsgDataEx, MsgInv, MsgInvAck,
		MsgRecallShare, MsgRecallInv, MsgWBAck,
		MsgUpdateReq, MsgUpdate, MsgUpdateAck, MsgUpdateDone,
		MsgMemRead, MsgMemWrite, MsgMemRdResp, MsgMemWrAck,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if s == "Msg(?)" {
			t.Errorf("type %d has no name", typ)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

// TestDeliveryOrderProperty property: for arbitrary send times, deliveries
// arrive in non-decreasing delivery-time order and nothing is lost.
func TestDeliveryOrderProperty(t *testing.T) {
	f := func(sendTimes []uint16) bool {
		n := New(9)
		dst := &collector{}
		n.Attach(1, dst)
		for _, st := range sendTimes {
			n.Send(&Message{Dst: 1}, uint64(st))
		}
		// Deliver in chunks to exercise partial drains.
		for cyc := uint64(0); cyc <= 1<<16+9; cyc += 1000 {
			n.Deliver(cyc)
		}
		n.Deliver(1<<17 + 10)
		if len(dst.got) != len(sendTimes) {
			return false
		}
		for i := 1; i < len(dst.at); i++ {
			if dst.at[i] < dst.at[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
