package network

import (
	"fmt"
	"reflect"
	"testing"
)

func TestMeshRoute(t *testing.T) {
	ms := NewMesh(4, 4, 10, 1)
	for i := 0; i < 16; i++ {
		ms.Place(NodeID(i), i)
	}
	cases := []struct {
		src, dst NodeID
		hops     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 15, 6}, // corner to corner: 3 east + 3 south
		{5, 10, 2},
		{12, 3, 6},
	}
	for _, c := range cases {
		if got := ms.Route(c.src, c.dst); got != c.hops {
			t.Errorf("Route(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestMeshArrival(t *testing.T) {
	ms := NewMesh(4, 4, 10, 1)
	for i := 0; i < 16; i++ {
		ms.Place(NodeID(i), i)
	}
	// Same-tile traffic pays one hop (local loop), no link booking.
	if got := ms.Arrival(3, 3, 100); got != 110 {
		t.Errorf("same-tile arrival = %d, want 110", got)
	}
	// Two-hop XY route with empty links: dep + 2*HopLat.
	if got := ms.Arrival(0, 5, 100); got != 120 {
		t.Errorf("2-hop arrival = %d, want 120", got)
	}
	// Contention: a second message departing the same cycle over the same
	// first link (0 -> 1 east) waits for the 1-cycle link gap.
	ms2 := NewMesh(4, 4, 10, 1)
	for i := 0; i < 16; i++ {
		ms2.Place(NodeID(i), i)
	}
	if got := ms2.Arrival(0, 1, 50); got != 60 {
		t.Errorf("first arrival = %d, want 60", got)
	}
	if got := ms2.Arrival(0, 1, 50); got != 61 {
		t.Errorf("queued arrival = %d, want 61 (1-cycle link wait)", got)
	}
	if ms2.LinkWaits != 1 {
		t.Errorf("LinkWaits = %d, want 1", ms2.LinkWaits)
	}
	if ms2.HopsTraveled != 2 {
		t.Errorf("HopsTraveled = %d, want 2", ms2.HopsTraveled)
	}
	// Opposite directions between the same tiles are separate links: no wait.
	if got := ms2.Arrival(1, 0, 50); got != 60 {
		t.Errorf("reverse-direction arrival = %d, want 60 (own link)", got)
	}
}

func TestMeshXYRoutingIsDeterministic(t *testing.T) {
	// XY routing goes all the way east/west before turning: 0 -> 5 must use
	// link 0->1 then 1->5, never 0->4 then 4->5, so booking tile 0's south
	// link (the 0->4 route) must not delay it.
	ms := NewMesh(4, 4, 10, 5)
	for i := 0; i < 16; i++ {
		ms.Place(NodeID(i), i)
	}
	ms.Arrival(0, 4, 100) // books the 0->4 south link
	if got := ms.Arrival(0, 5, 100); got != 120 {
		t.Errorf("XY route shared a YX link: arrival = %d, want 120", got)
	}
	// But a message whose XY route shares 0->1 east does queue.
	if got := ms.Arrival(0, 1, 100); got != 115 {
		t.Errorf("east-link contention: arrival = %d, want 115 (5-cycle gap)", got)
	}
}

func TestMeshStateRoundTrip(t *testing.T) {
	ms := NewMesh(2, 2, 3, 2)
	for i := 0; i < 4; i++ {
		ms.Place(NodeID(i), i)
	}
	ms.Arrival(0, 3, 10)
	ms.Arrival(0, 3, 10)
	ms.Arrival(1, 2, 11)
	st := ms.State()

	ms2 := NewMesh(2, 2, 3, 2)
	for i := 0; i < 4; i++ {
		ms2.Place(NodeID(i), i)
	}
	if err := ms2.Restore(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if ms2.HopsTraveled != ms.HopsTraveled || ms2.LinkWaits != ms.LinkWaits {
		t.Errorf("counters not restored: got (%d,%d) want (%d,%d)",
			ms2.HopsTraveled, ms2.LinkWaits, ms.HopsTraveled, ms.LinkWaits)
	}
	// The restored link clocks must queue future traffic identically.
	if a, b := ms.Arrival(0, 3, 12), ms2.Arrival(0, 3, 12); a != b {
		t.Errorf("restored mesh queues differently: %d vs %d", a, b)
	}
	if err := ms2.Restore([]uint64{1, 2}); err == nil {
		t.Error("Restore accepted a state vector of the wrong length")
	}
}

func TestUniformTopologyState(t *testing.T) {
	u := Uniform{Lat: 7}
	if st := u.State(); st != nil {
		t.Errorf("uniform topology has state: %v", st)
	}
	if err := u.Restore(nil); err != nil {
		t.Errorf("uniform restore(nil): %v", err)
	}
	if err := u.Restore([]uint64{1}); err == nil {
		t.Error("uniform restore accepted stale mesh state")
	}
	if got := u.Arrival(0, 3, 100); got != 107 {
		t.Errorf("uniform arrival = %d, want 107", got)
	}
}

// meshNet builds a mesh-topology network with the first `nodes` node IDs
// placed one per tile (wrapping), mirroring sim's DASH-style placement.
func meshNet(w, h int, hop, gap uint64, nodes int) *Network {
	ms := NewMesh(w, h, hop, gap)
	for i := 0; i < nodes; i++ {
		ms.Place(NodeID(i), i%(w*h))
	}
	return NewWithTopology(ms)
}

// runLegacyNet and runWindowedNet mirror runLegacy/runWindowed from
// exchange_test.go but accept a pre-built network, so the same schedule can
// be driven over any topology.
func runLegacyNet(net *Network, nodes int, horizon uint64, sched []schedEvent) [][]string {
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{id: NodeID(i), port: net}
		net.Attach(NodeID(i), recs[i])
	}
	phases := []Phase{
		PhaseWrites, PhaseFrontend, PhaseDeliver, PhaseDirTick, PhaseCacheTick,
		PhaseLSUComplete, PhaseExecute, PhaseRetire, PhaseLSUIssue,
	}
	for t := uint64(0); t <= horizon; t++ {
		for _, ph := range phases {
			if ph == PhaseDeliver {
				net.Deliver(t)
				continue
			}
			for rank := 0; rank < nodes; rank++ {
				for _, ev := range sched {
					if ev.cycle == t && ev.phase == ph && ev.rank == rank {
						net.PostAfter(Message{
							Type: MsgData, Src: NodeID(ev.rank), Dst: NodeID(ev.dst),
							Value: ev.value, Word: uint64(ev.rank)<<16 | ev.cycle,
						}, t, ev.extra)
					}
				}
			}
		}
	}
	logs := make([][]string, nodes)
	for i, r := range recs {
		logs[i] = r.log
	}
	return logs
}

func runWindowedNet(t *testing.T, net *Network, nodes int, horizon uint64, sched []schedEvent) [][]string {
	t.Helper()
	window := net.Latency()
	x := NewExchange(net)
	recs := make([]*recorder, nodes)
	eps := make([]*Endpoint, nodes)
	for i := range recs {
		recs[i] = &recorder{id: NodeID(i)}
		eps[i] = x.Endpoint(NodeID(i), uint64(i), recs[i])
		recs[i].port = eps[i]
		net.Attach(NodeID(i), recs[i])
	}
	phases := []Phase{
		PhaseWrites, PhaseFrontend, PhaseDeliver, PhaseDirTick, PhaseCacheTick,
		PhaseLSUComplete, PhaseExecute, PhaseRetire, PhaseLSUIssue,
	}
	for t0 := uint64(0); t0 <= horizon; t0 += window {
		for tc := t0; tc < t0+window && tc <= horizon; tc++ {
			for _, ph := range phases {
				for rank := 0; rank < nodes; rank++ {
					ep := eps[rank]
					if ph == PhaseDeliver {
						ep.DeliverDue(tc)
						continue
					}
					ep.SetPhase(tc, ph)
					for _, ev := range sched {
						if ev.cycle == tc && ev.phase == ph && ev.rank == rank {
							ep.PostAfter(Message{
								Type: MsgData, Src: NodeID(ev.rank), Dst: NodeID(ev.dst),
								Value: ev.value, Word: uint64(ev.rank)<<16 | ev.cycle,
							}, tc, ev.extra)
						}
					}
				}
			}
		}
		x.Barrier()
	}
	if p := x.PendingTotal(); p != 0 {
		t.Fatalf("windowed run left %d messages undelivered; horizon too short", p)
	}
	x.Close()
	logs := make([][]string, nodes)
	for i, r := range recs {
		logs[i] = r.log
	}
	return logs
}

// TestExchangeMeshMatchesLegacy is the mesh extension of the random-schedule
// exchange property test: with variable hop latency AND stateful link
// contention, windowed delivery must still match the direct path exactly.
// This only holds because Barrier replays Arrival in sequential send order;
// any other replay order would book links differently and diverge.
func TestExchangeMeshMatchesLegacy(t *testing.T) {
	const nodes = 4
	for _, geom := range []struct {
		w, h     int
		hop, gap uint64
	}{
		{2, 2, 1, 1},
		{2, 2, 3, 2},
		{4, 1, 5, 3}, // a 1-D chain maximizes shared-link contention
	} {
		for seed := int64(0); seed < 6; seed++ {
			name := fmt.Sprintf("%dx%d/hop=%d/gap=%d/seed=%d", geom.w, geom.h, geom.hop, geom.gap, seed)
			t.Run(name, func(t *testing.T) {
				const cycles = 100
				horizon := uint64(cycles) + 60*(geom.hop*uint64(geom.w+geom.h)+geom.gap*8+4)
				sched := genSchedule(seed, nodes, cycles, 120)

				legacyNet := meshNet(geom.w, geom.h, geom.hop, geom.gap, nodes)
				legacyLogs := runLegacyNet(legacyNet, nodes, horizon, sched)
				winNet := meshNet(geom.w, geom.h, geom.hop, geom.gap, nodes)
				winLogs := runWindowedNet(t, winNet, nodes, horizon, sched)

				for i := range legacyLogs {
					if !reflect.DeepEqual(legacyLogs[i], winLogs[i]) {
						t.Errorf("node %d delivery order differs:\n--- legacy ---\n%v\n--- windowed ---\n%v",
							i, legacyLogs[i], winLogs[i])
					}
				}
				if legacyNet.MessagesSent != winNet.MessagesSent {
					t.Errorf("MessagesSent: legacy=%d windowed=%d", legacyNet.MessagesSent, winNet.MessagesSent)
				}
				lm, wm := legacyNet.Topology().(*Mesh), winNet.Topology().(*Mesh)
				if lm.HopsTraveled != wm.HopsTraveled || lm.LinkWaits != wm.LinkWaits {
					t.Errorf("mesh counters differ: legacy=(%d,%d) windowed=(%d,%d)",
						lm.HopsTraveled, lm.LinkWaits, wm.HopsTraveled, wm.LinkWaits)
				}
				if !reflect.DeepEqual(lm.State(), wm.State()) {
					t.Error("link-occupancy clocks diverged between legacy and windowed runs")
				}
			})
		}
	}
}
