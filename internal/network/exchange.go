// Per-endpoint inboxes and outboxes for the conservative parallel engine
// (internal/parsim).
//
// The sequential simulator funnels every message through one delivery heap;
// arbitration order is the global sequence number assigned at Send time,
// which in turn is fixed by the phase order of System.Step: scheduled
// writes, then processor frontends, then network delivery (handlers send in
// the (deliver, seq) order of the messages they handle), then directory
// ticks, cache ticks, LSU completion, execute, retire, LSU issue — each
// phase iterating components in index order.
//
// The parallel engine gives every shard a private Endpoint. During a
// lookahead window the shard's components send into the endpoint's outbox;
// each send is stamped with a key that encodes exactly where in the
// sequential phase order the send would have happened: (cycle, phase,
// major, ordinal), where major is the component's index within its phase —
// or, for sends made while handling a delivered message, the handled
// message's global sequence number. At the window barrier, Exchange.Barrier
// sorts all outboxes by that key, assigns the global sequence numbers in
// sorted order, and routes every message into its destination shard's
// inbox heap. Because the key order equals the sequential send order, the
// (deliver, seq) delivery order each endpoint observes is byte-for-byte the
// order the sequential engine would have produced.
package network

import (
	"container/heap"
	"fmt"
	"sort"
)

// Phase identifies one phase of the simulator's per-cycle step order; it is
// the second component of the send-order key. The values mirror
// sim.System.Step and must stay in that order.
type Phase uint8

// Step phases, in sequential execution order.
const (
	PhaseWrites      Phase = iota // scheduled external writes (agent)
	PhaseFrontend                 // cpu.Proc.TickFrontend
	PhaseDeliver                  // message delivery (handlers run here)
	PhaseDirTick                  // coherence.Directory.Tick
	PhaseCacheTick                // cache.Cache.Tick
	PhaseLSUComplete              // core.LSU.TickComplete
	PhaseExecute                  // cpu.Proc.TickExecute
	PhaseRetire                   // cpu.Proc.TickRetire
	PhaseLSUIssue                 // core.LSU.TickIssue
)

// sendKey is the total order on sends within one window. Two sends from
// the same endpoint differ in ord; sends from different endpoints in the
// same cycle differ in (phase, major): outside the deliver phase exactly
// one component kind runs per phase and major is its index, and inside the
// deliver phase major is the handled message's globally unique sequence
// number.
type sendKey struct {
	cycle uint64
	phase Phase
	major uint64
	ord   uint64
}

func (k sendKey) less(o sendKey) bool {
	if k.cycle != o.cycle {
		return k.cycle < o.cycle
	}
	if k.phase != o.phase {
		return k.phase < o.phase
	}
	if k.major != o.major {
		return k.major < o.major
	}
	return k.ord < o.ord
}

type pendingSend struct {
	m   *Message
	key sendKey
	// dep is the message's departure cycle (send time plus sender service
	// time); the barrier turns it into an arrival cycle via the topology.
	// abs marks messages sent with an explicit absolute delivery cycle
	// (SendAt/PostAt), which bypass the topology entirely.
	dep uint64
	abs bool
}

// Endpoint is one shard's private view of the network: an inbox of
// messages routed to it at previous barriers, an outbox of sends made
// during the current window, and a private message free list. It is used
// by exactly one goroutine between barriers; the Exchange (single-threaded
// at barriers) is the only other toucher.
type Endpoint struct {
	lat     uint64
	rank    uint64
	handler Handler

	inbox msgHeap
	out   []pendingSend
	free  []*Message

	// scratch is Rollback's staging area for the leftover inbox pointers it
	// reuses while rebuilding the inbox from a checkpoint.
	scratch []*Message

	ctx sendKey // ambient (cycle, phase, major); ord appended per send
	ord uint64

	// Counters folded into the Network at Exchange.Close.
	sent uint64
	hops [numMsgTypes]uint64

	// Received counts inbox deliveries (scheduler observability only).
	Received uint64
}

// Latency implements Port.
func (ep *Endpoint) Latency() uint64 { return ep.lat }

// SetPhase establishes the ambient send-order context for subsequent sends:
// the current cycle and step phase. The endpoint's component rank supplies
// the major key. DeliverDue overrides the context per handled message.
func (ep *Endpoint) SetPhase(cycle uint64, ph Phase) {
	ep.ctx = sendKey{cycle: cycle, phase: ph, major: ep.rank}
}

// Send implements Port: the message departs now; its arrival cycle is
// computed by the topology at the next barrier, in sequential send order,
// so topology contention state evolves exactly as in the sequential engine.
func (ep *Endpoint) Send(m *Message, now uint64) { ep.enqueue(m, now, false) }

// SendAfter implements Port: departure at now + extra (sender service time).
func (ep *Endpoint) SendAfter(m *Message, now, extra uint64) { ep.enqueue(m, now+extra, false) }

// SendAt implements Port: an explicit absolute delivery cycle, bypassing
// the topology (engine-internal and test traffic only).
func (ep *Endpoint) SendAt(m *Message, deliver uint64) { ep.enqueue(m, deliver, true) }

// enqueue buffers the message in the outbox, stamped with the sequential
// send-order key; it reaches its destination inbox at the next barrier.
func (ep *Endpoint) enqueue(m *Message, dep uint64, abs bool) {
	if m.enqueued {
		panic("network: message enqueued twice")
	}
	m.enqueued = true
	if abs {
		m.deliver = dep
	}
	ep.sent++
	ep.hops[m.Type]++
	key := ep.ctx
	key.ord = ep.ord
	ep.ord++
	ep.out = append(ep.out, pendingSend{m: m, key: key, dep: dep, abs: abs})
}

// Post implements Port.
func (ep *Endpoint) Post(proto Message, now uint64) { ep.post(proto, now, false) }

// PostAfter implements Port.
func (ep *Endpoint) PostAfter(proto Message, now, extra uint64) { ep.post(proto, now+extra, false) }

// PostAt implements Port, with an explicit absolute delivery cycle.
func (ep *Endpoint) PostAt(proto Message, deliver uint64) { ep.post(proto, deliver, true) }

// post draws from the endpoint's private free list and enqueues.
func (ep *Endpoint) post(proto Message, dep uint64, abs bool) {
	var m *Message
	if k := len(ep.free); k > 0 {
		m = ep.free[k-1]
		ep.free[k-1] = nil
		ep.free = ep.free[:k-1]
	} else {
		m = &Message{}
	}
	*m = proto
	m.pooled = true
	ep.enqueue(m, dep, abs)
}

// Recycle implements Port. Pool messages migrate between shards (a message
// posted by one shard is recycled into the free list of the shard that
// consumed it); barriers order every handoff.
func (ep *Endpoint) Recycle(m *Message) {
	if !m.pooled || m.enqueued {
		return
	}
	*m = Message{}
	ep.free = append(ep.free, m)
}

// DeliverDue hands every inbox message due at or before now to the shard's
// handler, in the same (deliver, seq) order the sequential Network.Deliver
// uses. Sends made by the handler are keyed by the handled message's
// sequence number, mirroring the sequential rule that handler sends happen
// in delivery order.
func (ep *Endpoint) DeliverDue(now uint64) {
	for ep.inbox.Len() > 0 && ep.inbox[0].deliver <= now {
		m := heap.Pop(&ep.inbox).(*Message)
		m.enqueued = false
		if m.Type == MsgSchedWrite {
			// An injected self-delivery is the writes phase of this cycle:
			// sends made while handling it must sort where the sequential
			// loop sent them — before every frontend/deliver-phase send —
			// and its injection ordinal cannot collide with the sequence
			// number of a real message handled elsewhere this cycle.
			ep.ctx = sendKey{cycle: now, phase: PhaseWrites, major: m.seq}
		} else {
			ep.ctx = sendKey{cycle: now, phase: PhaseDeliver, major: m.seq}
		}
		ep.Received++
		ep.handler.HandleMessage(m, now)
		if m.pooled {
			if m.retained {
				m.retained = false
			} else {
				ep.Recycle(m)
			}
		}
	}
}

// Pending reports undelivered inbox messages.
func (ep *Endpoint) Pending() int { return ep.inbox.Len() }

// NextDelivery returns the earliest pending inbox delivery cycle, or
// ok=false when the inbox is empty; the shard's intra-window fast-forward
// folds it into its wake horizon.
func (ep *Endpoint) NextDelivery() (cycle uint64, ok bool) {
	if ep.inbox.Len() == 0 {
		return 0, false
	}
	return ep.inbox[0].deliver, true
}

// Sent reports the endpoint's cumulative send count (scheduler
// observability; the canonical per-run totals are folded into
// Network.MessagesSent at Close).
func (ep *Endpoint) Sent() uint64 { return ep.sent }

// Exchange owns the barrier merge for one parallel run: it creates the
// per-shard endpoints, continues the network's global sequence counter, and
// at each barrier routes every outbox message into its destination inbox in
// sequential send order. All Exchange methods are single-threaded: they run
// between windows, when no shard goroutine is active.
type Exchange struct {
	net     *Network
	eps     []*Endpoint
	dest    map[NodeID]*Endpoint
	nextSeq uint64
	scratch []pendingSend

	// nextInject numbers Inject calls; injected messages order among
	// themselves by this ordinal, never against real sequence numbers.
	nextInject uint64

	// Exchanged counts messages routed across all barriers.
	Exchanged uint64
}

// NewExchange starts a parallel message exchange over n. The network must
// be quiescent (no pending deliveries); the exchange continues its sequence
// counter so a subsequent sequential run stays aligned.
func NewExchange(n *Network) *Exchange {
	if n.q.Len() != 0 {
		panic("network: NewExchange with pending deliveries")
	}
	return &Exchange{net: n, dest: make(map[NodeID]*Endpoint), nextSeq: n.nextSeq}
}

// Endpoint creates the endpoint for one shard: its network node, its
// component rank (index within its step phase), and the handler that
// receives its deliveries.
func (x *Exchange) Endpoint(id NodeID, rank uint64, h Handler) *Endpoint {
	ep := &Endpoint{lat: x.net.topo.MinDelay(), rank: rank, handler: h}
	x.eps = append(x.eps, ep)
	x.dest[id] = ep
	return ep
}

// AttachNode routes an additional node ID to an existing endpoint (a shard
// that owns several network nodes).
func (x *Exchange) AttachNode(id NodeID, ep *Endpoint) { x.dest[id] = ep }

// Inject places a copy of proto directly into the destination's inbox for
// delivery at the given absolute cycle, before the first window runs. This
// is how a component's self-scheduled future work (the write agent's
// scheduled external writes) enters the exchange without a special case in
// the shard loop: the work arrives as an ordinary delivery.
//
// Injected messages live outside the global sequence space (they would
// otherwise skew the counter the sequential engine and the snapshots keep
// exactly aligned): they carry injection ordinals instead, and the inbox
// order delivers an injection before any real message due the same cycle —
// exactly where the sequential loop puts the work, since its writes phase
// precedes delivery. They are not network traffic either: the
// MessagesSent/HopsByType counters never see them, and Close discards any
// still undelivered instead of reinjecting them into the network.
func (x *Exchange) Inject(proto Message, deliver uint64) {
	dst, ok := x.dest[proto.Dst]
	if !ok {
		panic(fmt.Sprintf("network: injection for unattached node %d", proto.Dst))
	}
	m := &Message{}
	*m = proto
	m.enqueued = true
	m.deliver = deliver
	m.seq = x.nextInject
	x.nextInject++
	heap.Push(&dst.inbox, m)
}

// Barrier merges every outbox into the destination inboxes: sends are
// sorted by their sequential-order key and receive consecutive global
// sequence numbers, so each inbox's (deliver, seq) order reproduces the
// sequential engine's delivery order exactly. Arrival cycles are computed
// here too, by one topology Arrival call per message in the sorted order —
// the same call sequence the sequential engine makes at Send time, so
// link-contention state (and with it every delivery time) is byte-for-byte
// engine-independent. Returns the number of messages routed.
func (x *Exchange) Barrier() int {
	x.scratch = x.scratch[:0]
	for _, ep := range x.eps {
		x.scratch = append(x.scratch, ep.out...)
		for i := range ep.out {
			ep.out[i] = pendingSend{}
		}
		ep.out = ep.out[:0]
	}
	sort.Slice(x.scratch, func(i, j int) bool { return x.scratch[i].key.less(x.scratch[j].key) })
	topo := x.net.topo
	for _, ps := range x.scratch {
		m := ps.m
		if !ps.abs {
			m.deliver = topo.Arrival(m.Src, m.Dst, ps.dep)
		}
		m.seq = x.nextSeq
		x.nextSeq++
		dst, ok := x.dest[m.Dst]
		if !ok {
			panic(fmt.Sprintf("network: message to unattached node %d", m.Dst))
		}
		heap.Push(&dst.inbox, m)
	}
	n := len(x.scratch)
	x.Exchanged += uint64(n)
	return n
}

// PendingTotal reports undelivered messages across all inboxes (the
// parallel engine's replacement for Network.Pending in its Done check).
func (x *Exchange) PendingTotal() int {
	total := 0
	for _, ep := range x.eps {
		total += ep.inbox.Len()
	}
	return total
}

// Close tears the exchange down and restores the Network to a state
// indistinguishable from having run sequentially: per-endpoint send
// counters fold into MessagesSent/HopsByType, the sequence counter is
// written back, endpoint free lists rejoin the global pool, and any
// undelivered inbox messages (error paths only) are reinjected into the
// delivery heap with their deliver cycle and sequence number intact.
func (x *Exchange) Close() {
	n := x.net
	for _, ep := range x.eps {
		if len(ep.out) != 0 {
			panic("network: Exchange.Close with unbarriered sends")
		}
		n.MessagesSent += ep.sent
		for t, c := range ep.hops {
			n.HopsByType[t] += c
		}
		ep.sent = 0
		ep.hops = [numMsgTypes]uint64{}
		for ep.inbox.Len() > 0 {
			m := heap.Pop(&ep.inbox).(*Message)
			if m.Type == MsgSchedWrite {
				// Undelivered injections (error paths only) are dropped,
				// not reinjected: the writes queue cursor only advances on
				// delivery, so the system still owns the pending writes and
				// the network sees the same state a sequential abort leaves.
				continue
			}
			heap.Push(&n.q, m) // deliver/seq/enqueued preserved
		}
		n.free = append(n.free, ep.free...)
		ep.free = nil
	}
	n.nextSeq = x.nextSeq
}
