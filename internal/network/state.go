package network

import (
	"container/heap"
	"fmt"
	"sort"
)

// State is the serializable network state. Besides the arbitration counter
// (restoring it keeps every subsequent sequence number, and therefore every
// delivery order, identical) and the traffic statistics, it carries the
// in-flight messages by value, so a machine can be captured mid-flight —
// between two cycles, with deliveries still queued — and restored exactly.
type State struct {
	NextSeq      uint64
	MessagesSent uint64
	// Hops is HopsByType indexed by MsgType. Its length pins the message
	// vocabulary of the snapshot's writer; a reader with a different
	// vocabulary must not reinterpret the counts.
	Hops []uint64
	// Topo is the topology's mutable state (link occupancy clocks and
	// traffic counters); nil for the stateless uniform topology. Its layout
	// is owned by the topology implementation, so restore requires a
	// machine built with the identical topology.
	Topo []uint64
	// InFlight is every undelivered message in canonical delivery order
	// (deliver, seq) — the heap's semantic order, not its array layout,
	// which depends on push/pop history and would break snapshot
	// canonicality. Empty at quiescence.
	InFlight []MessageState
}

// MessageState is one in-flight message by value, including its assigned
// delivery cycle and global sequence number. It is also how components
// (the directory) serialize messages they retained past delivery.
type MessageState struct {
	Type      MsgType
	Src       NodeID
	Dst       NodeID
	Line      uint64
	Word      uint64
	Data      []int64
	Value     int64
	AckCount  int
	Requester NodeID
	SeqNo     uint64
	Tag       uint64
	Seq       uint64
	Deliver   uint64
}

// ExportMessage captures a message by value for serialization. The data
// payload is deep-copied: the live message may be mutated or recycled after
// the export, and the exported state must not alias it.
func ExportMessage(m *Message) MessageState {
	ms := MessageState{
		Type: m.Type, Src: m.Src, Dst: m.Dst,
		Line: m.Line, Word: m.Word, Value: m.Value,
		AckCount: m.AckCount, Requester: m.Requester,
		SeqNo: m.SeqNo, Tag: m.Tag,
		Seq: m.seq, Deliver: m.deliver,
	}
	if m.Data != nil {
		ms.Data = append([]int64(nil), m.Data...)
	}
	return ms
}

// Instantiate materializes the exported message as a fresh allocation. The
// message is unpooled (delivery hands it to the garbage collector rather
// than a free list) and not enqueued; callers that re-queue it use
// RestoreInFlight or retain it directly.
func (ms MessageState) Instantiate() *Message {
	m := &Message{
		Type: ms.Type, Src: ms.Src, Dst: ms.Dst,
		Line: ms.Line, Word: ms.Word, Value: ms.Value,
		AckCount: ms.AckCount, Requester: ms.Requester,
		SeqNo: ms.SeqNo, Tag: ms.Tag,
		seq: ms.Seq, deliver: ms.Deliver,
	}
	if ms.Data != nil {
		m.Data = append([]int64(nil), ms.Data...)
	}
	return m
}

// exportQueue renders a message heap in canonical delivery order without
// disturbing it.
func exportQueue(q msgHeap) []MessageState {
	if len(q) == 0 {
		return nil
	}
	out := make([]MessageState, len(q))
	for i, m := range q {
		out[i] = ExportMessage(m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Deliver != out[j].Deliver {
			return out[i].Deliver < out[j].Deliver
		}
		if si, sj := out[i].Type == MsgSchedWrite, out[j].Type == MsgSchedWrite; si != sj {
			return si
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ExportState captures the network state, including messages still in
// flight.
func (n *Network) ExportState() (State, error) {
	st := State{
		NextSeq:      n.nextSeq,
		MessagesSent: n.MessagesSent,
		Hops:         make([]uint64, numMsgTypes),
		Topo:         n.topo.State(),
		InFlight:     exportQueue(n.q),
	}
	copy(st.Hops, n.HopsByType[:])
	return st, nil
}

// RestoreState replaces the network's persistent state with the exported
// one, re-queuing any in-flight messages. The network must be idle (freshly
// constructed or quiescent) so the restored queue is the whole queue.
func (n *Network) RestoreState(st State) error {
	if n.q.Len() != 0 {
		return fmt.Errorf("network: restore with %d pending deliveries", n.q.Len())
	}
	if len(st.Hops) != int(numMsgTypes) {
		return fmt.Errorf("network: snapshot has %d message types, this build has %d", len(st.Hops), numMsgTypes)
	}
	if err := n.topo.Restore(st.Topo); err != nil {
		return err
	}
	n.nextSeq = st.NextSeq
	n.MessagesSent = st.MessagesSent
	copy(n.HopsByType[:], st.Hops)
	for _, ms := range st.InFlight {
		m := ms.Instantiate()
		m.enqueued = true
		heap.Push(&n.q, m)
	}
	return nil
}
