package network

import "fmt"

// State is the serializable network state at quiescence. With no messages
// in flight (ExportState refuses otherwise), the only state that outlives
// a run is the arbitration counter — restoring it keeps every subsequent
// sequence number, and therefore every delivery order, identical — plus
// the traffic statistics.
type State struct {
	NextSeq      uint64
	MessagesSent uint64
	// Hops is HopsByType indexed by MsgType. Its length pins the message
	// vocabulary of the snapshot's writer; a reader with a different
	// vocabulary must not reinterpret the counts.
	Hops []uint64
	// Topo is the topology's mutable state (link occupancy clocks and
	// traffic counters); nil for the stateless uniform topology. Its layout
	// is owned by the topology implementation, so restore requires a
	// machine built with the identical topology.
	Topo []uint64
}

// ExportState captures the network state. It fails if deliveries are
// pending: an in-flight message is transient protocol state, and the
// snapshot layer only deals in quiescent machines.
func (n *Network) ExportState() (State, error) {
	if n.q.Len() != 0 {
		return State{}, fmt.Errorf("network: export with %d pending deliveries", n.q.Len())
	}
	st := State{
		NextSeq:      n.nextSeq,
		MessagesSent: n.MessagesSent,
		Hops:         make([]uint64, numMsgTypes),
		Topo:         n.topo.State(),
	}
	copy(st.Hops, n.HopsByType[:])
	return st, nil
}

// RestoreState replaces the network's persistent state with the exported
// one. The network must be idle (freshly constructed or quiescent).
func (n *Network) RestoreState(st State) error {
	if n.q.Len() != 0 {
		return fmt.Errorf("network: restore with %d pending deliveries", n.q.Len())
	}
	if len(st.Hops) != int(numMsgTypes) {
		return fmt.Errorf("network: snapshot has %d message types, this build has %d", len(st.Hops), numMsgTypes)
	}
	if err := n.topo.Restore(st.Topo); err != nil {
		return err
	}
	n.nextSeq = st.NextSeq
	n.MessagesSent = st.MessagesSent
	copy(n.HopsByType[:], st.Hops)
	return nil
}
