package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The exchange property test: an arbitrary message schedule driven through
// the per-endpoint inbox/outbox API (Endpoint + Exchange.Barrier, windows
// of W = latency cycles) must deliver every message to every handler in
// exactly the order the legacy direct-Send path does — including replies
// issued from inside handlers, which is where the sequence-number
// reconstruction is subtle (they must be ordered by the handled message's
// arbitration position, not by which endpoint flushed its outbox first).

// schedEvent is one scheduled send: at cycle t, during phase ph, the
// component with the given rank posts to dst with a delivery slack and
// payload. Replies are not scheduled — they are derived deterministically
// from delivered payloads by the recorder handler.
type schedEvent struct {
	cycle uint64
	phase Phase
	rank  int
	dst   int
	extra uint64
	value int64
}

// genSchedule builds a deterministic random schedule. Phases skip
// PhaseDeliver: scheduled sends model component ticks; deliver-phase sends
// arise only as handler replies.
func genSchedule(seed int64, nodes int, cycles uint64, events int) []schedEvent {
	rng := rand.New(rand.NewSource(seed))
	phases := []Phase{
		PhaseWrites, PhaseFrontend, PhaseDirTick, PhaseCacheTick,
		PhaseLSUComplete, PhaseExecute, PhaseRetire, PhaseLSUIssue,
	}
	out := make([]schedEvent, events)
	for i := range out {
		out[i] = schedEvent{
			cycle: uint64(rng.Intn(int(cycles))),
			phase: phases[rng.Intn(len(phases))],
			rank:  rng.Intn(nodes),
			dst:   rng.Intn(nodes),
			extra: uint64(rng.Intn(5)),
			value: int64(rng.Intn(40)),
		}
	}
	// Bucket by (cycle, phase, rank) preserving generation order inside a
	// bucket; the drivers below iterate buckets in the sequential loop's
	// order so both paths make the same calls in the same order.
	return out
}

// recorder logs every delivery and issues shrinking replies: a delivered
// odd value v > 0 triggers a reply to the sender carrying v-2 with slack
// v%4. The log line includes everything observable about the delivery.
type recorder struct {
	id    NodeID
	port  Port
	log   []string
	relay *[]string // interleaved global log (same-endpoint order check is per-log)
}

func (r *recorder) HandleMessage(m *Message, now uint64) {
	r.log = append(r.log, fmt.Sprintf("t=%d src=%d type=%v val=%d word=%d", now, m.Src, m.Type, m.Value, m.Word))
	if m.Value > 0 && m.Value%2 == 1 {
		r.port.PostAfter(Message{
			Type: MsgInvAck, Src: r.id, Dst: m.Src, Value: m.Value - 2, Word: m.Word + 1,
		}, now, uint64(m.Value%4))
	}
}

// runLegacy drives the schedule through the direct path: sends go straight
// into the Network's heap, Deliver runs once per cycle between the frontend
// and dirTick phase slots, mirroring sim.System.Step.
func runLegacy(latency uint64, nodes int, horizon uint64, sched []schedEvent) ([][]string, uint64, [numMsgTypes]uint64) {
	net := New(latency)
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{id: NodeID(i), port: net}
		net.Attach(NodeID(i), recs[i])
	}
	phases := []Phase{
		PhaseWrites, PhaseFrontend, PhaseDeliver, PhaseDirTick, PhaseCacheTick,
		PhaseLSUComplete, PhaseExecute, PhaseRetire, PhaseLSUIssue,
	}
	for t := uint64(0); t <= horizon; t++ {
		for _, ph := range phases {
			if ph == PhaseDeliver {
				net.Deliver(t)
				continue
			}
			for rank := 0; rank < nodes; rank++ {
				for _, ev := range sched {
					if ev.cycle == t && ev.phase == ph && ev.rank == rank {
						net.PostAfter(Message{
							Type: MsgData, Src: NodeID(ev.rank), Dst: NodeID(ev.dst),
							Value: ev.value, Word: uint64(ev.rank)<<16 | ev.cycle,
						}, t, ev.extra)
					}
				}
			}
		}
	}
	logs := make([][]string, nodes)
	for i, r := range recs {
		logs[i] = r.log
	}
	return logs, net.MessagesSent, net.HopsByType
}

// runWindowed drives the identical schedule through per-endpoint outboxes
// with a barrier every `latency` cycles, each endpoint delivering only its
// own inbox.
func runWindowed(t *testing.T, latency uint64, nodes int, horizon uint64, sched []schedEvent) ([][]string, uint64, [numMsgTypes]uint64) {
	t.Helper()
	net := New(latency)
	x := NewExchange(net)
	recs := make([]*recorder, nodes)
	eps := make([]*Endpoint, nodes)
	for i := range recs {
		recs[i] = &recorder{id: NodeID(i)}
		eps[i] = x.Endpoint(NodeID(i), uint64(i), recs[i])
		recs[i].port = eps[i]
		net.Attach(NodeID(i), recs[i]) // parity with legacy; unused while exchanging
	}
	phases := []Phase{
		PhaseWrites, PhaseFrontend, PhaseDeliver, PhaseDirTick, PhaseCacheTick,
		PhaseLSUComplete, PhaseExecute, PhaseRetire, PhaseLSUIssue,
	}
	for t0 := uint64(0); t0 <= horizon; t0 += latency {
		for t := t0; t < t0+latency && t <= horizon; t++ {
			for _, ph := range phases {
				for rank := 0; rank < nodes; rank++ {
					ep := eps[rank]
					if ph == PhaseDeliver {
						ep.DeliverDue(t)
						continue
					}
					ep.SetPhase(t, ph)
					for _, ev := range sched {
						if ev.cycle == t && ev.phase == ph && ev.rank == rank {
							ep.PostAfter(Message{
								Type: MsgData, Src: NodeID(ev.rank), Dst: NodeID(ev.dst),
								Value: ev.value, Word: uint64(ev.rank)<<16 | ev.cycle,
							}, t, ev.extra)
						}
					}
				}
			}
		}
		x.Barrier()
	}
	if p := x.PendingTotal(); p != 0 {
		t.Fatalf("windowed run left %d messages undelivered; horizon too short", p)
	}
	x.Close()
	logs := make([][]string, nodes)
	for i, r := range recs {
		logs[i] = r.log
	}
	return logs, net.MessagesSent, net.HopsByType
}

func TestExchangeDeliveryOrderMatchesLegacy(t *testing.T) {
	const nodes = 4
	for _, latency := range []uint64{1, 3, 7, 45} {
		for seed := int64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("latency=%d/seed=%d", latency, seed), func(t *testing.T) {
				const cycles = 120
				// Reply chains shrink by 2 per hop with slack < 4, so
				// everything lands well before this horizon.
				horizon := uint64(cycles) + 40*(latency+4)
				sched := genSchedule(seed, nodes, cycles, 150)

				legacyLogs, legacySent, legacyHops := runLegacy(latency, nodes, horizon, sched)
				winLogs, winSent, winHops := runWindowed(t, latency, nodes, horizon, sched)

				for i := range legacyLogs {
					if !reflect.DeepEqual(legacyLogs[i], winLogs[i]) {
						t.Errorf("node %d delivery order differs:\n--- legacy ---\n%v\n--- windowed ---\n%v",
							i, legacyLogs[i], winLogs[i])
					}
				}
				if legacySent != winSent {
					t.Errorf("MessagesSent: legacy=%d windowed=%d", legacySent, winSent)
				}
				if legacyHops != winHops {
					t.Errorf("HopsByType: legacy=%v windowed=%v", legacyHops, winHops)
				}
			})
		}
	}
}

// TestExchangeSeqContinuation pins that a network keeps arbitrating
// consistently after an exchange closes: messages posted directly post-
// Close are ordered after everything the exchange assigned, so a parallel
// phase followed by a sequential phase (LoadPrograms chaining) observes one
// uninterrupted arbitration stream.
func TestExchangeSeqContinuation(t *testing.T) {
	net := New(2)
	rec := &recorder{id: 0}
	net.Attach(0, rec)
	rec.port = net

	x := NewExchange(net)
	// Node 0's endpoint receives but is never drained in-window, so its
	// inbox survives to Close and must be reinjected into the network.
	x.Endpoint(0, 0, rec)
	ep := x.Endpoint(1, 1, &recorder{id: 1})
	ep.SetPhase(0, PhaseCacheTick)
	// Two same-cycle deliveries; arbitration must follow send order.
	ep.PostAt(Message{Type: MsgData, Src: 1, Dst: 0, Value: 1}, 5)
	ep.PostAt(Message{Type: MsgData, Src: 1, Dst: 0, Value: 2}, 5)
	x.Barrier()
	x.Close()
	// net.q now holds both messages (reinjected undelivered); a direct post
	// at the same cycle must arbitrate after them.
	net.PostAt(Message{Type: MsgData, Src: 1, Dst: 0, Value: 3}, 5)
	net.Deliver(5)
	want := []string{
		"t=5 src=1 type=Data val=1 word=0",
		"t=5 src=1 type=Data val=2 word=0",
		"t=5 src=1 type=Data val=3 word=0",
	}
	if !reflect.DeepEqual(rec.log, want) {
		t.Errorf("post-Close arbitration order:\ngot  %v\nwant %v", rec.log, want)
	}
}
