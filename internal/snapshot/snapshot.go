// Package snapshot defines the exact serialized form of a simulated
// machine and its gob-based persistence.
//
// A snapshot may be taken between any two cycles, quiescent or not: every
// transient structure — in-flight messages (with their assigned delivery
// cycles and arbitration sequence numbers), MSHRs with their merged
// waiters and deferred coherence events, scheduled completions,
// reorder-buffer entries, speculative-load and SC-monitor buffers, store
// buffers, directory recall transactions and ingress queues, pending
// scheduled external writes — serializes by value alongside the
// architectural state (memory image, cache arrays, directory sharing
// vectors and version counters, registers and program counters), the
// monotonic counters (clock, network arbitration sequence, instruction
// IDs, LRU clocks, link occupancy), and the statistics. Restoring that
// vector into a freshly constructed machine reproduces every subsequent
// observable — stats reports, memory images, sweep rows, conformance
// verdicts — byte for byte, under the dense loop, the fast-forward
// scheduler and the parallel engines alike (the differential tests
// enforce this). At quiescence the transient sections are simply empty.
//
// Encoding is deterministic: no Go map appears anywhere in the serialized
// types (gob iterates maps in random order), every keyed collection is a
// slice sorted by its key, and identical machines therefore encode to
// identical bytes.
package snapshot

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/cpu"
	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// FormatVersion identifies the snapshot layout. Readers reject snapshots
// written by a different version instead of misinterpreting them.
//
// History:
//
//	1 — quiescent-only machines (all transient sections absent).
//	2 — mid-flight machines: in-flight messages, MSHR/ROB/LSU/directory
//	    transients, pending scheduled writes; ProcState.LSU widened from
//	    bare statistics to the full load/store-unit state.
const FormatVersion = 2

// magic guards against feeding arbitrary gob streams to Read.
const magic = "mcmsim-snapshot"

// Config mirrors sim.Config in a map-free, deterministic form. (The sim
// package converts to and from this; snapshot cannot import sim.)
type Config struct {
	Procs     int
	Model     core.Model
	Tech      core.Technique
	Protocol  coherence.Protocol
	LineWords uint64

	NetLatency uint64
	MemLatency uint64

	Topo       string
	HopLatency uint64
	LinkGap    uint64

	Cache cache.Config
	CPU   cpu.Config

	ForwardLatency  uint64
	MaxAddrPerCycle int
	NST             bool
	UncachedRMW     []uint64 // ascending; the enabled addresses only

	MemModules   int
	DirBandwidth int
	DirPointers  int
	MaxCycles    uint64
	DenseLoop    bool
}

// Label is one program label (the isa.Program Labels map, sorted by name).
type Label struct {
	Name   string
	Target int
}

// ProgramState is one processor's program.
type ProgramState struct {
	Instrs []isa.Instruction
	Labels []Label
}

// ProcState bundles one processor's serialized state: its program, its
// pipeline state (reorder buffer included) and its load/store unit
// (queues, speculative buffers and statistics).
type ProcState struct {
	Prog ProgramState
	CPU  cpu.State
	LSU  core.LSUState
}

// ScheduledWriteState is one external write not yet performed by the
// harness agent (mirrors sim.ScheduledWrite; snapshot cannot import sim).
type ScheduledWriteState struct {
	Cycle uint64
	Addr  uint64
	Value int64
}

// Machine is the complete serialized state of a machine, mid-flight
// included.
type Machine struct {
	Config Config

	Cycle         uint64
	BaseCycle     uint64
	FastForwarded uint64

	Net    network.State
	Mem    memsys.State
	Dirs   []coherence.State
	Caches []cache.SavedState
	Procs  []ProcState

	// PendingWrites are the scheduled external writes still due, in schedule
	// order; AgentOutstanding counts writes sent but not yet acknowledged by
	// the directory. Both are zero at quiescence.
	PendingWrites    []ScheduledWriteState
	AgentOutstanding int
}

// envelope is the on-disk framing: magic and version first, so Read can
// reject foreign or stale streams before decoding the machine.
type envelope struct {
	Magic   string
	Version int
	Machine Machine
}

// Write encodes the machine to w.
func Write(w io.Writer, m *Machine) error {
	return gob.NewEncoder(w).Encode(envelope{Magic: magic, Version: FormatVersion, Machine: *m})
}

// Read decodes a machine from r, validating the framing.
func Read(r io.Reader) (*Machine, error) {
	var e envelope
	if err := gob.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if e.Magic != magic {
		return nil, fmt.Errorf("snapshot: not a machine snapshot (magic %q)", e.Magic)
	}
	if e.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", e.Version, FormatVersion)
	}
	return &e.Machine, nil
}

// WriteFile encodes the machine to a file.
func WriteFile(path string, m *Machine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, m); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a machine from a file.
func ReadFile(path string) (*Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
