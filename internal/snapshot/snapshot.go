// Package snapshot defines the exact serialized form of a quiescent
// simulated machine and its gob-based persistence.
//
// A snapshot is only ever taken at quiescence (sim.System.Snapshot refuses
// otherwise), which is what makes it exact with a small state vector: when
// every processor has halted and every queue drained, all transient
// machine state — in-flight messages, MSHRs, scheduled completions,
// reorder-buffer entries, speculative-load buffers, store buffers, recall
// transactions — is provably empty, so the machine reduces to its
// architectural state (memory image, cache arrays, directory sharing
// vectors and version counters, registers and program counters), its
// monotonic counters (clock, network arbitration sequence, instruction
// IDs, LRU clocks), and its statistics. Restoring that vector into a
// freshly constructed machine reproduces every subsequent observable —
// stats reports, memory images, sweep rows, conformance verdicts — byte
// for byte, under the dense loop, the fast-forward scheduler and the
// parallel engine alike (the differential tests enforce this).
//
// Encoding is deterministic: no Go map appears anywhere in the serialized
// types (gob iterates maps in random order), every keyed collection is a
// slice sorted by its key, and identical machines therefore encode to
// identical bytes.
package snapshot

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/cpu"
	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// FormatVersion identifies the snapshot layout. Readers reject snapshots
// written by a different version instead of misinterpreting them.
const FormatVersion = 1

// magic guards against feeding arbitrary gob streams to Read.
const magic = "mcmsim-snapshot"

// Config mirrors sim.Config in a map-free, deterministic form. (The sim
// package converts to and from this; snapshot cannot import sim.)
type Config struct {
	Procs     int
	Model     core.Model
	Tech      core.Technique
	Protocol  coherence.Protocol
	LineWords uint64

	NetLatency uint64
	MemLatency uint64

	Topo       string
	HopLatency uint64
	LinkGap    uint64

	Cache cache.Config
	CPU   cpu.Config

	ForwardLatency  uint64
	MaxAddrPerCycle int
	NST             bool
	UncachedRMW     []uint64 // ascending; the enabled addresses only

	MemModules   int
	DirBandwidth int
	DirPointers  int
	MaxCycles    uint64
	DenseLoop    bool
}

// Label is one program label (the isa.Program Labels map, sorted by name).
type Label struct {
	Name   string
	Target int
}

// ProgramState is one processor's program.
type ProgramState struct {
	Instrs []isa.Instruction
	Labels []Label
}

// ProcState bundles one processor's serialized state: its program, its
// pipeline-architectural state, and its load/store unit's statistics (the
// LSU drains completely at quiescence; only its metrics persist).
type ProcState struct {
	Prog ProgramState
	CPU  cpu.State
	LSU  stats.State
}

// Machine is the complete serialized state of a quiescent machine.
type Machine struct {
	Config Config

	Cycle         uint64
	BaseCycle     uint64
	FastForwarded uint64

	Net    network.State
	Mem    memsys.State
	Dirs   []coherence.State
	Caches []cache.SavedState
	Procs  []ProcState
}

// envelope is the on-disk framing: magic and version first, so Read can
// reject foreign or stale streams before decoding the machine.
type envelope struct {
	Magic   string
	Version int
	Machine Machine
}

// Write encodes the machine to w.
func Write(w io.Writer, m *Machine) error {
	return gob.NewEncoder(w).Encode(envelope{Magic: magic, Version: FormatVersion, Machine: *m})
}

// Read decodes a machine from r, validating the framing.
func Read(r io.Reader) (*Machine, error) {
	var e envelope
	if err := gob.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if e.Magic != magic {
		return nil, fmt.Errorf("snapshot: not a machine snapshot (magic %q)", e.Magic)
	}
	if e.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", e.Version, FormatVersion)
	}
	return &e.Machine, nil
}

// WriteFile encodes the machine to a file.
func WriteFile(path string, m *Machine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, m); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a machine from a file.
func ReadFile(path string) (*Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
