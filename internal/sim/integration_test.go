package sim_test

import (
	"fmt"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

var allTechs = []core.Technique{
	{},
	{Prefetch: true},
	{SpecLoad: true},
	{SpecLoad: true, ReissueOpt: true},
	{Prefetch: true, SpecLoad: true, ReissueOpt: true},
}

// TestCriticalSectionMutualExclusion runs contended lock-protected counter
// increments on 4 processors under every model and technique combination
// and checks that no increment is lost: locks, RMWs, coherence and
// speculation squashes must all compose correctly.
func TestCriticalSectionMutualExclusion(t *testing.T) {
	const nprocs, rounds, updates = 4, 3, 2
	for _, model := range core.AllModels {
		for _, tech := range allTechs {
			name := fmt.Sprintf("%v/%v", model, tech)
			t.Run(name, func(t *testing.T) {
				cfg := sim.RealisticConfig()
				cfg.Procs = nprocs
				cfg.Model = model
				cfg.Tech = tech
				progs := make([]*isa.Program, nprocs)
				for p := 0; p < nprocs; p++ {
					progs[p] = workload.CriticalSection(p, nprocs, rounds, updates, 1)
				}
				s := sim.New(cfg, progs)
				cycles, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				got := s.ReadCoherent(workload.CounterAddr(0))
				want := int64(nprocs * rounds * updates)
				if got != want {
					t.Errorf("counter = %d, want %d (cycles=%d)", got, want, cycles)
				}
			})
		}
	}
}

// TestProducerConsumer checks the flag-synchronized handoff the paper's
// examples are built from: the consumer must observe every produced item
// once the release-store flag is visible, under every model and technique.
func TestProducerConsumer(t *testing.T) {
	const items = 8
	for _, model := range core.AllModels {
		for _, tech := range allTechs {
			name := fmt.Sprintf("%v/%v", model, tech)
			t.Run(name, func(t *testing.T) {
				cfg := sim.RealisticConfig()
				cfg.Procs = 2
				cfg.Model = model
				cfg.Tech = tech
				prod, cons := workload.ProducerConsumer(items)
				s := sim.New(cfg, []*isa.Program{prod, cons})
				if _, err := s.Run(); err != nil {
					t.Fatal(err)
				}
				want := int64(items * (items + 1) / 2)
				if got := s.ReadCoherent(workload.SumAddr); got != want {
					t.Errorf("consumer checksum = %d, want %d", got, want)
				}
			})
		}
	}
}

// TestTechniquesPreserveFinalState runs an identical random workload under
// every technique combination and checks the per-processor private memory
// matches the conventional run exactly: the techniques are performance
// mechanisms only and must never change single-thread results. (Shared
// words written by racing critical sections legitimately end with whichever
// processor's section ran last, so only the private regions are compared;
// the lock must end released everywhere.)
func TestTechniquesPreserveFinalState(t *testing.T) {
	const nprocs = 3
	privateWord := func(a uint64) bool { return a >= 0x10000 }
	for _, model := range core.AllModels {
		t.Run(model.String(), func(t *testing.T) {
			var baseline map[uint64]int64
			for _, tech := range allTechs {
				cfg := sim.RealisticConfig()
				cfg.Procs = nprocs
				cfg.Model = model
				cfg.Tech = tech
				progs := make([]*isa.Program, nprocs)
				for p := 0; p < nprocs; p++ {
					progs[p] = workload.RandomSharing(p, nprocs, workload.DefaultMix(42))
				}
				s := sim.New(cfg, progs)
				if _, err := s.Run(); err != nil {
					t.Fatalf("%v: %v", tech, err)
				}
				if lock := s.ReadCoherent(0x1000); lock != 0 {
					t.Errorf("%v: lock not released, value %d", tech, lock)
				}
				snap := make(map[uint64]int64)
				for a, v := range s.CoherentSnapshot() {
					if privateWord(a) {
						snap[a] = v
					}
				}
				if baseline == nil {
					baseline = snap
					continue
				}
				if len(snap) != len(baseline) {
					t.Errorf("%v: %d private words, baseline %d", tech, len(snap), len(baseline))
					continue
				}
				for a, v := range baseline {
					if snap[a] != v {
						t.Errorf("%v: mem[%#x] = %d, baseline %d", tech, a, snap[a], v)
					}
				}
			}
		})
	}
}

// TestFalseSharingConservativeSquash runs neighbours hammering words in the
// same line with speculative loads on: footnote 2's conservative policy
// (invalidation due to false sharing squashes) must still converge to the
// correct final values.
func TestFalseSharingConservativeSquash(t *testing.T) {
	const nprocs, writes = 4, 6
	cfg := sim.RealisticConfig()
	cfg.Procs = nprocs
	cfg.Model = core.SC
	cfg.Tech = core.Technique{SpecLoad: true, ReissueOpt: true, Prefetch: true}
	cfg.LineWords = 4 // neighbours share lines
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.FalseSharing(p, writes)
	}
	s := sim.New(cfg, progs)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nprocs; p++ {
		got := s.ReadCoherent(uint64(0x4000 + p))
		if got != int64(writes-1) {
			t.Errorf("proc %d word = %d, want %d", p, got, writes-1)
		}
	}
	// Each processor must also have read back its own last write.
	for p := 0; p < nprocs; p++ {
		if got := s.Procs[p].Reg(isa.R2); got != int64(writes-1) {
			t.Errorf("proc %d read back %d, want %d", p, got, writes-1)
		}
	}
}

// TestBarrierPhases runs the sense-reversing barrier (atomic fetch-add
// arrival + release-published sense + acquire spinning) across all models
// and techniques: every phase must run exactly once on every processor, so
// the per-processor checksums are invariant across configurations and the
// final sense equals the phase count.
func TestBarrierPhases(t *testing.T) {
	const nprocs, phases, work = 4, 5, 3
	var baseline []int64
	for _, model := range core.AllModels {
		for _, tech := range allTechs {
			name := fmt.Sprintf("%v/%v", model, tech)
			cfg := sim.RealisticConfig()
			cfg.Procs = nprocs
			cfg.Model = model
			cfg.Tech = tech
			progs := make([]*isa.Program, nprocs)
			for p := 0; p < nprocs; p++ {
				progs[p] = workload.BarrierPhases(p, nprocs, phases, work)
			}
			s := sim.New(cfg, progs)
			if _, err := s.Run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := s.ReadCoherent(workload.BarrierSenseAddr); got != int64(phases) {
				t.Errorf("%s: final sense = %d, want %d", name, got, phases)
			}
			if got := s.ReadCoherent(workload.BarrierCountAddr); got != 0 {
				t.Errorf("%s: arrival counter not reset: %d", name, got)
			}
			sums := make([]int64, nprocs)
			for p := 0; p < nprocs; p++ {
				sums[p] = s.ReadCoherent(uint64(workload.PhaseSumBase + int64(p)))
			}
			if baseline == nil {
				baseline = sums
				continue
			}
			for p := range sums {
				if sums[p] != baseline[p] {
					t.Errorf("%s: proc %d checksum %d, baseline %d", name, p, sums[p], baseline[p])
				}
			}
		}
	}
}

// TestMultiHomeInvariance checks that interleaving lines across several
// home modules (with unlimited bandwidth and uniform latency) changes no
// architectural result and — for the paper's worked examples — no cycle
// count either.
func TestMultiHomeInvariance(t *testing.T) {
	const nprocs = 3
	for _, modules := range []int{2, 4} {
		cfg := sim.RealisticConfig()
		cfg.Procs = nprocs
		cfg.Model = core.SC
		cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
		cfg.MemModules = modules
		progs := make([]*isa.Program, nprocs)
		for p := 0; p < nprocs; p++ {
			progs[p] = workload.CriticalSection(p, nprocs, 3, 2, 1)
		}
		s := sim.New(cfg, progs)
		if _, err := s.Run(); err != nil {
			t.Fatalf("modules=%d: %v", modules, err)
		}
		if got := s.ReadCoherent(workload.CounterAddr(0)); got != int64(nprocs*3*2) {
			t.Errorf("modules=%d: counter = %d", modules, got)
		}
	}
}

// TestUncachedRMWLocks runs contended locks whose lock word is declared
// non-cachable (Appendix A's first case): the atomics perform at the memory
// module, mutual exclusion still holds under every model and technique, and
// the lock line never becomes resident in any cache.
func TestUncachedRMWLocks(t *testing.T) {
	const nprocs, rounds, updates = 3, 2, 2
	for _, model := range core.AllModels {
		for _, tech := range []core.Technique{{}, {Prefetch: true, SpecLoad: true, ReissueOpt: true}} {
			name := fmt.Sprintf("%v/%v", model, tech)
			cfg := sim.RealisticConfig()
			cfg.Procs = nprocs
			cfg.Model = model
			cfg.Tech = tech
			cfg.UncachedRMW = map[uint64]bool{0x1000: true} // the lock word
			progs := make([]*isa.Program, nprocs)
			for p := 0; p < nprocs; p++ {
				progs[p] = workload.CriticalSection(p, nprocs, rounds, updates, 1)
			}
			s := sim.New(cfg, progs)
			if _, err := s.Run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := int64(nprocs * rounds * updates)
			if got := s.ReadCoherent(workload.CounterAddr(0)); got != want {
				t.Errorf("%s: counter = %d, want %d", name, got, want)
			}
			// The lock word's releases are plain stores (cachable); only the
			// RMW path is uncached — the atomics must have run at the module.
			var uncached uint64
			for _, u := range s.LSUs {
				uncached += u.Stats.Counter("uncached_rmws").Value()
			}
			if uncached == 0 {
				t.Errorf("%s: no uncached RMWs performed", name)
			}
		}
	}
}
