package sim

import (
	"fmt"
	"sort"

	"mcmsim/internal/isa"
	"mcmsim/internal/snapshot"
)

// Snapshot serializes the machine's complete state. It requires
// quiescence (Done): at that point every transient structure — in-flight
// messages, MSHRs, recall transactions, reorder buffers, store buffers,
// speculative-load buffers, pending scheduled writes — is provably empty,
// so the captured vector (memory image, cache arrays, directory state,
// architectural registers, clocks and counters, statistics) is the whole
// machine. Restore rebuilds a system that is byte-identical to this one
// for every subsequent output.
func (s *System) Snapshot() (*snapshot.Machine, error) {
	if !s.Done() {
		return nil, fmt.Errorf("sim: snapshot requires a quiescent machine (all processors halted, queues drained)")
	}
	m := &snapshot.Machine{
		Config:        exportConfig(s.Cfg),
		Cycle:         s.Cycle,
		BaseCycle:     s.baseCycle,
		FastForwarded: s.FastForwarded,
		Mem:           s.Mem.ExportState(),
	}
	var err error
	if m.Net, err = s.Net.ExportState(); err != nil {
		return nil, err
	}
	for _, d := range s.Dirs {
		st, err := d.ExportState()
		if err != nil {
			return nil, err
		}
		m.Dirs = append(m.Dirs, st)
	}
	for _, c := range s.Caches {
		st, err := c.ExportState()
		if err != nil {
			return nil, err
		}
		m.Caches = append(m.Caches, st)
	}
	for i, p := range s.Procs {
		cpuSt, err := p.ExportState()
		if err != nil {
			return nil, err
		}
		m.Procs = append(m.Procs, snapshot.ProcState{
			Prog: exportProgram(p.Program()),
			CPU:  cpuSt,
			LSU:  s.LSUs[i].Stats.ExportState(),
		})
	}
	return m, nil
}

// Restore builds a fresh System from a snapshot. The restored machine is
// quiescent at the snapshot's cycle, running the snapshot's programs (all
// halted); continue it exactly like the original — LoadPrograms for the
// next phase, ScheduleWrites, Run. Restore never mutates or aliases the
// Machine, so many systems may be restored concurrently from one snapshot
// (the warmup cache does exactly that).
func Restore(m *snapshot.Machine) (*System, error) {
	cfg := importConfig(m.Config)
	if len(m.Procs) != cfg.Procs {
		return nil, fmt.Errorf("sim: snapshot has %d processor states for %d processors", len(m.Procs), cfg.Procs)
	}
	progs := make([]*isa.Program, cfg.Procs)
	for i := range m.Procs {
		progs[i] = importProgram(m.Procs[i].Prog)
	}
	s := New(cfg, progs)
	if err := s.Net.RestoreState(m.Net); err != nil {
		return nil, err
	}
	if err := s.Mem.RestoreState(m.Mem); err != nil {
		return nil, err
	}
	if len(m.Dirs) != len(s.Dirs) {
		return nil, fmt.Errorf("sim: snapshot has %d home modules for %d", len(m.Dirs), len(s.Dirs))
	}
	for i, d := range s.Dirs {
		if err := d.RestoreState(m.Dirs[i]); err != nil {
			return nil, err
		}
	}
	if len(m.Caches) != len(s.Caches) {
		return nil, fmt.Errorf("sim: snapshot has %d caches for %d", len(m.Caches), len(s.Caches))
	}
	for i, c := range s.Caches {
		if err := c.RestoreState(m.Caches[i]); err != nil {
			return nil, err
		}
	}
	for i, p := range s.Procs {
		if err := p.RestoreState(m.Procs[i].CPU); err != nil {
			return nil, err
		}
		s.LSUs[i].Stats.RestoreState(m.Procs[i].LSU)
	}
	s.Cycle = m.Cycle
	s.baseCycle = m.BaseCycle
	s.FastForwarded = m.FastForwarded
	return s, nil
}

// exportConfig converts the live configuration to the snapshot's map-free
// mirror.
func exportConfig(c Config) snapshot.Config {
	out := snapshot.Config{
		Procs:           c.Procs,
		Model:           c.Model,
		Tech:            c.Tech,
		Protocol:        c.Protocol,
		LineWords:       c.LineWords,
		NetLatency:      c.NetLatency,
		MemLatency:      c.MemLatency,
		Topo:            c.Topo,
		HopLatency:      c.HopLatency,
		LinkGap:         c.LinkGap,
		Cache:           c.Cache,
		CPU:             c.CPU,
		ForwardLatency:  c.ForwardLatency,
		MaxAddrPerCycle: c.MaxAddrPerCycle,
		NST:             c.NST,
		MemModules:      c.MemModules,
		DirBandwidth:    c.DirBandwidth,
		DirPointers:     c.DirPointers,
		MaxCycles:       c.MaxCycles,
		DenseLoop:       c.DenseLoop,
	}
	for a, on := range c.UncachedRMW {
		if on {
			out.UncachedRMW = append(out.UncachedRMW, a)
		}
	}
	sort.Slice(out.UncachedRMW, func(i, j int) bool { return out.UncachedRMW[i] < out.UncachedRMW[j] })
	return out
}

func importConfig(c snapshot.Config) Config {
	out := Config{
		Procs:           c.Procs,
		Model:           c.Model,
		Tech:            c.Tech,
		Protocol:        c.Protocol,
		LineWords:       c.LineWords,
		NetLatency:      c.NetLatency,
		MemLatency:      c.MemLatency,
		Topo:            c.Topo,
		HopLatency:      c.HopLatency,
		LinkGap:         c.LinkGap,
		Cache:           c.Cache,
		CPU:             c.CPU,
		ForwardLatency:  c.ForwardLatency,
		MaxAddrPerCycle: c.MaxAddrPerCycle,
		NST:             c.NST,
		MemModules:      c.MemModules,
		DirBandwidth:    c.DirBandwidth,
		DirPointers:     c.DirPointers,
		MaxCycles:       c.MaxCycles,
		DenseLoop:       c.DenseLoop,
	}
	if len(c.UncachedRMW) > 0 {
		out.UncachedRMW = make(map[uint64]bool, len(c.UncachedRMW))
		for _, a := range c.UncachedRMW {
			out.UncachedRMW[a] = true
		}
	}
	return out
}

func exportProgram(p *isa.Program) snapshot.ProgramState {
	st := snapshot.ProgramState{Instrs: make([]isa.Instruction, len(p.Instrs))}
	copy(st.Instrs, p.Instrs)
	for name, target := range p.Labels {
		st.Labels = append(st.Labels, snapshot.Label{Name: name, Target: target})
	}
	sort.Slice(st.Labels, func(i, j int) bool { return st.Labels[i].Name < st.Labels[j].Name })
	return st
}

func importProgram(st snapshot.ProgramState) *isa.Program {
	p := &isa.Program{Instrs: make([]isa.Instruction, len(st.Instrs))}
	copy(p.Instrs, st.Instrs)
	if len(st.Labels) > 0 {
		p.Labels = make(map[string]int, len(st.Labels))
		for _, l := range st.Labels {
			p.Labels[l.Name] = l.Target
		}
	}
	return p
}
