package sim

import (
	"fmt"
	"sort"

	"mcmsim/internal/isa"
	"mcmsim/internal/snapshot"
)

// SnapshotVersion is the machine-snapshot format version this build reads
// and writes (re-exported from internal/snapshot so consumers that hold a
// *System never import the serialization package). The farm handshake
// exchanges it: a fleet whose members disagree on SnapshotVersion cannot
// ship warmup snapshots or checkpoints and is rejected before any
// deserialization is attempted.
const SnapshotVersion = snapshot.FormatVersion

// Snapshot serializes the machine's complete state between two cycles,
// mid-flight included: besides the architectural state (memory image,
// cache arrays, directory state, registers, clocks, counters, statistics)
// it captures every transient structure by value — in-flight messages,
// MSHRs, recall transactions, reorder buffers, store buffers,
// speculative-load buffers, pending scheduled writes. Restore rebuilds a
// system that is byte-identical to this one for every subsequent output.
// Snapshot must not be called mid-cycle (from a trace hook).
func (s *System) Snapshot() (*snapshot.Machine, error) {
	m := &snapshot.Machine{
		Config:        exportConfig(s.Cfg),
		Cycle:         s.Cycle,
		BaseCycle:     s.baseCycle,
		FastForwarded: s.FastForwarded,
		Mem:           s.Mem.ExportState(),
	}
	var err error
	if m.Net, err = s.Net.ExportState(); err != nil {
		return nil, err
	}
	for _, d := range s.Dirs {
		st, err := d.ExportState()
		if err != nil {
			return nil, err
		}
		m.Dirs = append(m.Dirs, st)
	}
	for _, c := range s.Caches {
		st, err := c.ExportState()
		if err != nil {
			return nil, err
		}
		m.Caches = append(m.Caches, st)
	}
	for i, p := range s.Procs {
		cpuSt, err := p.ExportState()
		if err != nil {
			return nil, err
		}
		lsuSt, err := s.LSUs[i].ExportState()
		if err != nil {
			return nil, err
		}
		m.Procs = append(m.Procs, snapshot.ProcState{
			Prog: exportProgram(p.Program()),
			CPU:  cpuSt,
			LSU:  lsuSt,
		})
	}
	for _, w := range s.writes[s.nextWrite:] {
		m.PendingWrites = append(m.PendingWrites, snapshot.ScheduledWriteState{Cycle: w.Cycle, Addr: w.Addr, Value: w.Value})
	}
	m.AgentOutstanding = s.agent.outstanding
	return m, nil
}

// Restore builds a fresh System from a snapshot, resuming at exactly the
// captured cycle — mid-flight work, in-flight messages and pending
// scheduled writes included. Continue it exactly like the original (Run,
// or LoadPrograms + ScheduleWrites for the next phase of a quiescent
// snapshot). Restore never mutates or aliases the Machine, so many systems
// may be restored concurrently from one snapshot (the warmup cache does
// exactly that).
func Restore(m *snapshot.Machine) (*System, error) {
	cfg := importConfig(m.Config)
	if len(m.Procs) != cfg.Procs {
		return nil, fmt.Errorf("sim: snapshot has %d processor states for %d processors", len(m.Procs), cfg.Procs)
	}
	progs := make([]*isa.Program, cfg.Procs)
	for i := range m.Procs {
		progs[i] = importProgram(m.Procs[i].Prog)
	}
	s := New(cfg, progs)
	if err := s.Net.RestoreState(m.Net); err != nil {
		return nil, err
	}
	if err := s.Mem.RestoreState(m.Mem); err != nil {
		return nil, err
	}
	if len(m.Dirs) != len(s.Dirs) {
		return nil, fmt.Errorf("sim: snapshot has %d home modules for %d", len(m.Dirs), len(s.Dirs))
	}
	for i, d := range s.Dirs {
		if err := d.RestoreState(m.Dirs[i]); err != nil {
			return nil, err
		}
	}
	if len(m.Caches) != len(s.Caches) {
		return nil, fmt.Errorf("sim: snapshot has %d caches for %d", len(m.Caches), len(s.Caches))
	}
	for i, c := range s.Caches {
		if err := c.RestoreState(m.Caches[i]); err != nil {
			return nil, err
		}
	}
	for i, p := range s.Procs {
		if err := p.RestoreState(m.Procs[i].CPU); err != nil {
			return nil, err
		}
		if err := s.LSUs[i].RestoreState(m.Procs[i].LSU); err != nil {
			return nil, err
		}
	}
	for _, w := range m.PendingWrites {
		s.writes = append(s.writes, ScheduledWrite{Cycle: w.Cycle, Addr: w.Addr, Value: w.Value})
	}
	s.agent.outstanding = m.AgentOutstanding
	s.Cycle = m.Cycle
	s.baseCycle = m.BaseCycle
	s.FastForwarded = m.FastForwarded
	return s, nil
}

// exportConfig converts the live configuration to the snapshot's map-free
// mirror.
func exportConfig(c Config) snapshot.Config {
	out := snapshot.Config{
		Procs:           c.Procs,
		Model:           c.Model,
		Tech:            c.Tech,
		Protocol:        c.Protocol,
		LineWords:       c.LineWords,
		NetLatency:      c.NetLatency,
		MemLatency:      c.MemLatency,
		Topo:            c.Topo,
		HopLatency:      c.HopLatency,
		LinkGap:         c.LinkGap,
		Cache:           c.Cache,
		CPU:             c.CPU,
		ForwardLatency:  c.ForwardLatency,
		MaxAddrPerCycle: c.MaxAddrPerCycle,
		NST:             c.NST,
		MemModules:      c.MemModules,
		DirBandwidth:    c.DirBandwidth,
		DirPointers:     c.DirPointers,
		MaxCycles:       c.MaxCycles,
		DenseLoop:       c.DenseLoop,
	}
	for a, on := range c.UncachedRMW {
		if on {
			out.UncachedRMW = append(out.UncachedRMW, a)
		}
	}
	sort.Slice(out.UncachedRMW, func(i, j int) bool { return out.UncachedRMW[i] < out.UncachedRMW[j] })
	return out
}

func importConfig(c snapshot.Config) Config {
	out := Config{
		Procs:           c.Procs,
		Model:           c.Model,
		Tech:            c.Tech,
		Protocol:        c.Protocol,
		LineWords:       c.LineWords,
		NetLatency:      c.NetLatency,
		MemLatency:      c.MemLatency,
		Topo:            c.Topo,
		HopLatency:      c.HopLatency,
		LinkGap:         c.LinkGap,
		Cache:           c.Cache,
		CPU:             c.CPU,
		ForwardLatency:  c.ForwardLatency,
		MaxAddrPerCycle: c.MaxAddrPerCycle,
		NST:             c.NST,
		MemModules:      c.MemModules,
		DirBandwidth:    c.DirBandwidth,
		DirPointers:     c.DirPointers,
		MaxCycles:       c.MaxCycles,
		DenseLoop:       c.DenseLoop,
	}
	if len(c.UncachedRMW) > 0 {
		out.UncachedRMW = make(map[uint64]bool, len(c.UncachedRMW))
		for _, a := range c.UncachedRMW {
			out.UncachedRMW[a] = true
		}
	}
	return out
}

func exportProgram(p *isa.Program) snapshot.ProgramState {
	st := snapshot.ProgramState{Instrs: make([]isa.Instruction, len(p.Instrs))}
	copy(st.Instrs, p.Instrs)
	for name, target := range p.Labels {
		st.Labels = append(st.Labels, snapshot.Label{Name: name, Target: target})
	}
	sort.Slice(st.Labels, func(i, j int) bool { return st.Labels[i].Name < st.Labels[j].Name })
	return st
}

func importProgram(st snapshot.ProgramState) *isa.Program {
	p := &isa.Program{Instrs: make([]isa.Instruction, len(st.Instrs))}
	copy(p.Instrs, st.Instrs)
	if len(st.Labels) > 0 {
		p.Labels = make(map[string]int, len(st.Labels))
		for _, l := range st.Labels {
			p.Labels[l.Name] = l.Target
		}
	}
	return p
}
