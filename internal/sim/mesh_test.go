package sim_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

func wideProgs(nprocs, lines, rounds int) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.WideSharing(p, nprocs, lines, rounds)
	}
	return progs
}

func meshConfig(procs int) sim.Config {
	cfg := sim.RealisticConfig()
	cfg.Procs = procs
	cfg.Topo = "mesh"
	cfg.MemModules = procs
	cfg.DirPointers = 8
	return cfg
}

// TestMeshMachineRuns drives a 16-CPU mesh with the wide-sharing workload
// end to end: it must converge, count mesh traffic, and normalize the
// topology spec.
func TestMeshMachineRuns(t *testing.T) {
	cfg := meshConfig(16)
	s := sim.New(cfg, wideProgs(16, 4, 4))
	cycles, err := s.Run()
	if err != nil {
		t.Fatalf("mesh run: %v", err)
	}
	if cycles == 0 {
		t.Fatal("mesh run reported 0 cycles")
	}
	if s.Cfg.Topo != "mesh:4x4" {
		t.Errorf("topology not normalized: %q", s.Cfg.Topo)
	}
	report := s.StatsReport()
	if !strings.Contains(report, "network.hops = ") || !strings.Contains(report, "network.link_waits = ") {
		t.Errorf("mesh report missing traffic rows:\n%s", report)
	}
}

// TestMeshDims pins the topology spec grammar.
func TestMeshDims(t *testing.T) {
	cases := []struct {
		spec  string
		procs int
		w, h  int
	}{
		{"mesh", 16, 4, 4},
		{"mesh", 64, 8, 8},
		{"mesh", 256, 16, 16},
		{"mesh", 5, 3, 2},
		{"mesh", 1, 1, 1},
		{"mesh:2x8", 16, 2, 8},
	}
	for _, c := range cases {
		w, h, err := sim.MeshDims(c.spec, c.procs)
		if err != nil || w != c.w || h != c.h {
			t.Errorf("MeshDims(%q, %d) = %d,%d,%v; want %d,%d", c.spec, c.procs, w, h, err, c.w, c.h)
		}
	}
	for _, bad := range []string{"mesh:0x4", "mesh:4", "mesh:axb", "torus"} {
		if err := sim.ValidateTopo(bad, 4); err == nil {
			t.Errorf("ValidateTopo(%q) accepted", bad)
		}
	}
	if err := sim.ValidateTopo("uniform", 4); err != nil {
		t.Errorf("ValidateTopo(uniform): %v", err)
	}
}

// TestFastForwardMeshMatchesDense is the mesh extension of the PR 2
// differential gate: the idle-skip scheduler must change nothing on a
// machine with variable hop latency and link contention.
func TestFastForwardMeshMatchesDense(t *testing.T) {
	for _, m := range []core.Model{core.SC, core.RC} {
		t.Run(m.String(), func(t *testing.T) {
			cfg := meshConfig(9)
			cfg.Model = m
			cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
			progs := wideProgs(9, 3, 3)

			dense := cfg
			dense.DenseLoop = true
			sd := sim.New(dense, progs)
			cd, err := sd.Run()
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			sf := sim.New(cfg, progs)
			cf, err := sf.Run()
			if err != nil {
				t.Fatalf("fast-forward: %v", err)
			}
			if cd != cf || sd.Cycle != sf.Cycle {
				t.Errorf("halt/clock differ: dense=(%d,%d) ff=(%d,%d)", cd, sd.Cycle, cf, sf.Cycle)
			}
			if sd.StatsReport() != sf.StatsReport() {
				t.Errorf("stats reports differ:\n--- dense ---\n%s--- ff ---\n%s", sd.StatsReport(), sf.StatsReport())
			}
			if !reflect.DeepEqual(sd.CoherentSnapshot(), sf.CoherentSnapshot()) {
				t.Error("coherent memory images differ")
			}
		})
	}
}

// TestSnapshotMeshRoundTrip saves a quiescent mesh machine — link
// contention clocks, coarse directory vectors and all — and checks the
// restored machine continues byte-identically.
func TestSnapshotMeshRoundTrip(t *testing.T) {
	cfg := meshConfig(16)
	cfg.DirPointers = 2 // force coarse-vector lines into the snapshot
	progs := wideProgs(16, 4, 2)

	warm := sim.New(cfg, progs)
	if _, err := warm.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Continue the original and a restored copy with a second phase.
	phase2 := wideProgs(16, 4, 2)
	warm.LoadPrograms(phase2)
	c1, err := warm.Run()
	if err != nil {
		t.Fatalf("original phase 2: %v", err)
	}

	restored, err := sim.Restore(snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	restored.LoadPrograms(phase2)
	c2, err := restored.Run()
	if err != nil {
		t.Fatalf("restored phase 2: %v", err)
	}
	if c1 != c2 || warm.Cycle != restored.Cycle {
		t.Errorf("restored continuation diverged: (%d,%d) vs (%d,%d)", c1, warm.Cycle, c2, restored.Cycle)
	}
	if warm.StatsReport() != restored.StatsReport() {
		t.Errorf("stats reports differ after restore:\n--- original ---\n%s--- restored ---\n%s",
			warm.StatsReport(), restored.StatsReport())
	}
	if !reflect.DeepEqual(warm.CoherentSnapshot(), restored.CoherentSnapshot()) {
		t.Error("coherent memory images differ after restore")
	}
}

// TestLimitedPointerMatchesFullBitVector is the exact-equivalence gate: on
// a machine whose sharer sets fit the pointer capacity, limited-pointer
// tracking must be byte-identical to full tracking — same halt cycle, same
// stats report, same memory image — because it only changes representation.
func TestLimitedPointerMatchesFullBitVector(t *testing.T) {
	for _, procs := range []int{4, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			cfg := sim.RealisticConfig()
			cfg.Procs = procs
			cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
			progs := wideProgs(procs, 4, 3)

			full := cfg // DirPointers 0: unbounded exact
			sf := sim.New(full, progs)
			cf, err := sf.Run()
			if err != nil {
				t.Fatalf("full: %v", err)
			}

			ltd := cfg
			ltd.DirPointers = procs // capacity covers every possible sharer set
			sl := sim.New(ltd, progs)
			cl, err := sl.Run()
			if err != nil {
				t.Fatalf("limited: %v", err)
			}

			if cf != cl {
				t.Errorf("halt cycles differ: full=%d limited=%d", cf, cl)
			}
			if sf.StatsReport() != sl.StatsReport() {
				t.Errorf("stats reports differ:\n--- full ---\n%s--- limited ---\n%s", sf.StatsReport(), sl.StatsReport())
			}
			if !reflect.DeepEqual(sf.CoherentSnapshot(), sl.CoherentSnapshot()) {
				t.Error("memory images differ")
			}
		})
	}
}

// TestCoarseVectorOverflowCorrect forces limited-pointer overflow (2
// pointers, 8 CPUs, everyone spinning on one lock line) and checks the
// protocol still computes the right answer: coarse mode may
// over-invalidate (performance) but never corrupts coherence
// (correctness). The lock-protected counter is timing-independent ground
// truth, so it must be exact even though coarse timing differs from full
// tracking.
func TestCoarseVectorOverflowCorrect(t *testing.T) {
	const procs, rounds, updates = 8, 3, 2
	cfg := sim.RealisticConfig()
	cfg.Procs = procs
	cfg.DirPointers = 2
	progs := make([]*isa.Program, procs)
	for p := range progs {
		progs[p] = workload.CriticalSection(p, procs, rounds, updates, 1)
	}
	s := sim.New(cfg, progs)
	if _, err := s.Run(); err != nil {
		t.Fatalf("coarse run: %v", err)
	}
	if got, want := s.ReadCoherent(workload.CounterAddr(0)), int64(procs*rounds*updates); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	report := s.StatsReport()
	if !strings.Contains(report, "coarse_inv_sweeps") {
		t.Errorf("overflow never reached coarse mode:\n%s", report)
	}
}
