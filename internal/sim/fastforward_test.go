package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// The technique grid used by the paper's experiments (mirrors
// experiments.TechConv etc.; duplicated so the sim tests stay free of the
// experiments package).
var ffTechniques = []struct {
	name string
	tech core.Technique
}{
	{"conv", core.Technique{}},
	{"pf", core.Technique{Prefetch: true}},
	{"spec", core.Technique{SpecLoad: true, ReissueOpt: true}},
	{"pf+spec", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
}

func mixProgs(nprocs int, seed int64) []*isa.Program {
	progs := make([]*isa.Program, nprocs)
	for p := 0; p < nprocs; p++ {
		progs[p] = workload.RandomSharing(p, nprocs, workload.EqualizationMix(seed))
	}
	return progs
}

// TestFastForwardMatchesDense is the differential gate for the idle-cycle
// fast-forward scheduler: for every consistency model under every
// technique, running the mixed workload with fast-forward enabled must
// produce exactly the same halt cycle, statistics report and coherent
// memory image as stepping every cycle (Config.DenseLoop). Fast-forward
// may only skip cycles in which a dense Step would change no state at all
// — including statistics counters — so any divergence here means a
// component's NextWake underestimated its own activity.
func TestFastForwardMatchesDense(t *testing.T) {
	var skippedTotal uint64
	for _, m := range core.AllModels {
		for _, tc := range ffTechniques {
			t.Run(fmt.Sprintf("%v/%s", m, tc.name), func(t *testing.T) {
				run := func(dense bool) (uint64, string, map[uint64]int64, uint64) {
					cfg := sim.RealisticConfig()
					cfg.Procs = 3
					cfg.Model = m
					cfg.Tech = tc.tech
					cfg.DenseLoop = dense
					s := sim.New(cfg, mixProgs(3, 7))
					cycles, err := s.Run()
					if err != nil {
						t.Fatalf("dense=%v: %v", dense, err)
					}
					return cycles, s.StatsReport(), s.CoherentSnapshot(), s.FastForwarded
				}
				dCycles, dStats, dMem, dSkipped := run(true)
				fCycles, fStats, fMem, fSkipped := run(false)
				if dSkipped != 0 {
					t.Errorf("dense run fast-forwarded %d cycles, want 0", dSkipped)
				}
				if dCycles != fCycles {
					t.Errorf("halt cycle: dense=%d fast-forward=%d", dCycles, fCycles)
				}
				if dStats != fStats {
					t.Errorf("stats reports differ:\n--- dense ---\n%s--- fast-forward ---\n%s", dStats, fStats)
				}
				if !reflect.DeepEqual(dMem, fMem) {
					t.Errorf("coherent memory images differ: dense=%v fast-forward=%v", dMem, fMem)
				}
				skippedTotal += fSkipped
			})
		}
	}
	// The grid includes long-latency misses under the conventional
	// technique, where nearly every cycle is an idle wait; if nothing was
	// ever skipped the scheduler is not actually engaging.
	if skippedTotal == 0 {
		t.Error("fast-forward skipped 0 cycles across the whole model x technique grid")
	}
}

// TestFastForwardSkipsStallCycles pins that the scheduler actually jumps
// on the configuration it was built for: conventional SC waiting out a
// long miss, where the machine is provably inert for hundreds of cycles.
func TestFastForwardSkipsStallCycles(t *testing.T) {
	cfg := sim.RealisticConfig().WithMissLatency(400)
	cfg.Procs = 3
	cfg.Model = core.SC
	s := sim.New(cfg, mixProgs(3, 7))
	cycles, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.FastForwarded == 0 {
		t.Fatal("conventional SC at miss=400 fast-forwarded 0 cycles")
	}
	// Most of the run is miss stall; the scheduler should reclaim the bulk
	// of it (conservatively: over half of all simulated cycles).
	if 2*s.FastForwarded < cycles {
		t.Errorf("fast-forwarded only %d of %d cycles; expected the majority", s.FastForwarded, cycles)
	}
}

// TestStepZeroAllocSteadyState asserts the zero-allocation hot path: once
// a simulation reaches steady state (here: deep inside a 400-cycle miss
// window, after fetch and issue have settled), a dense Step() must not
// touch the heap at all. Any regression — a per-cycle map, a re-grown
// scratch slice, a message allocated instead of pooled — shows up as a
// nonzero allocation count.
func TestStepZeroAllocSteadyState(t *testing.T) {
	cfg := sim.PaperConfig().WithMissLatency(400)
	cfg.DenseLoop = true
	s := sim.New(cfg, []*isa.Program{workload.Example1()})
	// Step past fetch/decode and the first access issue so every
	// lazily-grown structure (ROB, scratch slices, message pool) is warm.
	for i := 0; i < 50; i++ {
		s.Step()
	}
	if s.Done() {
		t.Fatal("workload finished before steady state; miss latency not in effect?")
	}
	if allocs := testing.AllocsPerRun(100, s.Step); allocs != 0 {
		t.Errorf("steady-state Step() allocates %.1f objects/cycle, want 0", allocs)
	}
}

// benchmarkE2Row runs the E2 latency-sweep row at its most expensive point
// (miss=400): both models of interest under conventional and combined
// techniques, exactly as `sweep -exp latency` enumerates them. ns/op is
// the wall time of the whole row; "simcycles/s" is aggregate simulated
// throughput. Comparing the Dense and FastForward variants measures what
// the idle-cycle scheduler reclaims.
func benchmarkE2Row(b *testing.B, dense bool) {
	progs := mixProgs(3, 7)
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, m := range []core.Model{core.SC, core.RC} {
			for _, tc := range []core.Technique{
				{},
				{Prefetch: true, SpecLoad: true, ReissueOpt: true},
			} {
				cfg := sim.RealisticConfig().WithMissLatency(400)
				cfg.Procs = 3
				cfg.Model = m
				cfg.Tech = tc
				cfg.DenseLoop = dense
				s := sim.New(cfg, progs)
				cycles, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				total += cycles
			}
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkStepDense(b *testing.B)       { benchmarkE2Row(b, true) }
func BenchmarkStepFastForward(b *testing.B) { benchmarkE2Row(b, false) }
