package sim

import (
	"fmt"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/cpu"
	"mcmsim/internal/network"
)

// This file partitions a System into node shards for the conservative
// parallel engine (internal/parsim). A shard is a set of components that
// share no mutable state with any other shard — they interact only through
// network messages, whose one-way latency bounds how far a shard can run
// ahead privately. Three shard kinds cover the whole machine:
//
//   - one per processor: the CPU pipeline, its load/store unit and its
//     private cache (network node i);
//   - one per home module: the directory and its memory bank (node P+j; the
//     shared Memory is banked by the same line-interleaving that picks a
//     line's home, so module j only ever touches bank j);
//   - one for the external-write agent, which also owns the scheduled-write
//     queue (node P+M).

type shardKind uint8

const (
	shardProc shardKind = iota
	shardDir
	shardAgent
)

// NodeShard is one independently-steppable partition of the machine.
// Between barriers a shard is owned by exactly one goroutine; all of its
// methods except accessors mutate only shard-private state plus the
// endpoint it is given.
type NodeShard struct {
	kind shardKind
	idx  int // proc or home-module index
	sys  *System

	proc  *cpu.Proc
	lsu   *core.LSU
	cache *cache.Cache
	dir   *coherence.Directory
}

// Shards partitions the system's current components. Call it after any
// LoadPrograms: shards capture the live component pointers.
func (s *System) Shards() []*NodeShard {
	out := make([]*NodeShard, 0, len(s.Procs)+len(s.Dirs)+1)
	for i := range s.Procs {
		out = append(out, &NodeShard{
			kind: shardProc, idx: i, sys: s,
			proc: s.Procs[i], lsu: s.LSUs[i], cache: s.Caches[i],
		})
	}
	for j := range s.Dirs {
		out = append(out, &NodeShard{kind: shardDir, idx: j, sys: s, dir: s.Dirs[j]})
	}
	out = append(out, &NodeShard{kind: shardAgent, sys: s})
	return out
}

// ShardKind identifies a shard's component family, for engine policies
// that depend on it (the optimistic engine checkpoints the shared memory
// image only when a home shard is dispatched).
type ShardKind uint8

// Shard kinds, mirroring the internal partition.
const (
	ShardKindProc ShardKind = iota
	ShardKindDir
	ShardKindAgent
)

// Kind reports the shard's component family.
func (sh *NodeShard) Kind() ShardKind { return ShardKind(sh.kind) }

// NodeID returns the network node the shard receives messages at.
func (sh *NodeShard) NodeID() network.NodeID {
	switch sh.kind {
	case shardProc:
		return network.NodeID(sh.idx)
	case shardDir:
		return network.NodeID(sh.sys.Cfg.Procs + sh.idx)
	default:
		return network.NodeID(sh.sys.Cfg.Procs + sh.sys.Cfg.MemModules)
	}
}

// Rank is the shard's index within its step phase — the tiebreak the
// sequential loop applies between same-phase components (it iterates them
// in index order), and therefore the major send-order key outside the
// deliver phase.
func (sh *NodeShard) Rank() uint64 {
	if sh.kind == shardAgent {
		return 0
	}
	return uint64(sh.idx)
}

// Handler returns the component that receives the shard's deliveries.
func (sh *NodeShard) Handler() network.Handler {
	switch sh.kind {
	case shardProc:
		return sh.cache
	case shardDir:
		return sh.dir
	default:
		return sh.sys.agent
	}
}

// Label names the shard in scheduler reports.
func (sh *NodeShard) Label() string {
	switch sh.kind {
	case shardProc:
		return fmt.Sprintf("proc%d", sh.idx)
	case shardDir:
		return fmt.Sprintf("home%d", sh.idx)
	default:
		return "agent"
	}
}

// BindPort points the shard's network-facing components at p — an Endpoint
// for the parallel run, the System's Network to restore the sequential path.
func (sh *NodeShard) BindPort(p network.Port) {
	switch sh.kind {
	case shardProc:
		sh.cache.SetPort(p)
	case shardDir:
		sh.dir.SetPort(p)
	default:
		sh.sys.agent.setPort(p)
	}
}

// StepCycle advances the shard one cycle, running its components in the
// same relative order System.Step runs them, with the endpoint's phase
// context set so every send is stamped with the position the sequential
// loop would have sent it at. Components on other shards cannot observe
// anything this does until the next barrier, and vice versa, because every
// cross-shard interaction is a message at least one full window away.
func (sh *NodeShard) StepCycle(now uint64, ep *network.Endpoint) {
	switch sh.kind {
	case shardAgent:
		// Scheduled writes arrive as injected self-deliveries
		// (InjectScheduledWrites), so the agent shard is pure delivery like
		// every other shard.
		ep.DeliverDue(now)
	case shardDir:
		ep.SetPhase(now, network.PhaseDeliver)
		ep.DeliverDue(now)
		ep.SetPhase(now, network.PhaseDirTick)
		sh.dir.Tick(now)
	case shardProc:
		sh.proc.TickFrontend(now)
		ep.SetPhase(now, network.PhaseDeliver)
		ep.DeliverDue(now)
		ep.SetPhase(now, network.PhaseCacheTick)
		sh.cache.Tick(now)
		ep.SetPhase(now, network.PhaseLSUComplete)
		sh.lsu.TickComplete(now)
		ep.SetPhase(now, network.PhaseExecute)
		sh.proc.TickExecute(now)
		ep.SetPhase(now, network.PhaseRetire)
		sh.proc.TickRetire(now)
		ep.SetPhase(now, network.PhaseLSUIssue)
		sh.lsu.TickIssue(now)
	}
}

// NextEvent reports the earliest cycle ≥ some pending work for the shard: a
// component self-wake, a scheduled write, or an inbox delivery. A result at
// or before now means the shard is busy this cycle. ok=false means the
// shard cannot change state again until new messages arrive at a barrier.
// The same per-component NextWake contract the sequential fast-forward
// relies on (a skipped cycle is provably a no-op, stats included) makes the
// shard-local skip exact.
func (sh *NodeShard) NextEvent(now uint64, ep *network.Endpoint) (uint64, bool) {
	best, ok := ep.NextDelivery()
	fold := func(c uint64, o bool) {
		if o && (!ok || c < best) {
			best, ok = c, true
		}
	}
	switch sh.kind {
	case shardDir:
		fold(sh.dir.NextWake(now))
	case shardProc:
		fold(sh.cache.NextWake(now))
		fold(sh.lsu.NextWake(now))
		fold(sh.proc.NextWake(now))
	}
	return best, ok
}

// Quiescent reports the shard's contribution to System.Done: together with
// empty inboxes across all endpoints, all shards quiescent is exactly the
// sequential termination condition.
func (sh *NodeShard) Quiescent() bool {
	switch sh.kind {
	case shardProc:
		return sh.proc.Halted() && !sh.cache.PendingWork()
	case shardDir:
		return sh.dir.Quiescent()
	default:
		// Writes not yet performed sit in the agent's inbox as injected
		// self-deliveries, so the exchange's pending count covers them.
		return sh.sys.agent.idle()
	}
}

// ShardState is one shard's component checkpoint, taken and restored by
// the optimistic engine (internal/parsim) at window granularity. Only the
// fields for the shard's kind are populated. The memory image is not here:
// home shards only ever touch their own banks, so the engine checkpoints
// the one shared Memory once per window alongside the per-shard states.
type ShardState struct {
	CPU   cpu.State
	LSU   core.LSUState
	Cache cache.SavedState
	Dir   coherence.State

	AgentOutstanding int
	NextWrite        int
}

// ExportState captures the shard's components mid-flight.
func (sh *NodeShard) ExportState() (ShardState, error) {
	var st ShardState
	err := sh.ExportStateInto(&st)
	return st, err
}

// ExportStateInto captures the shard into st, reusing st's backing storage
// (the optimistic engine checkpoints every dispatched shard once per
// window).
func (sh *NodeShard) ExportStateInto(st *ShardState) error {
	switch sh.kind {
	case shardProc:
		if err := sh.proc.ExportStateInto(&st.CPU); err != nil {
			return err
		}
		if err := sh.lsu.ExportStateInto(&st.LSU); err != nil {
			return err
		}
		return sh.cache.ExportStateInto(&st.Cache)
	case shardDir:
		return sh.dir.ExportStateInto(&st.Dir)
	default:
		st.AgentOutstanding = sh.sys.agent.outstanding
		st.NextWrite = sh.sys.nextWrite
		return nil
	}
}

// RestoreState rolls the shard's components back to the exported state.
func (sh *NodeShard) RestoreState(st ShardState) error {
	switch sh.kind {
	case shardProc:
		if err := sh.proc.RestoreState(st.CPU); err != nil {
			return err
		}
		if err := sh.lsu.RestoreState(st.LSU); err != nil {
			return err
		}
		return sh.cache.RestoreState(st.Cache)
	case shardDir:
		return sh.dir.RestoreState(st.Dir)
	default:
		sh.sys.agent.outstanding = st.AgentOutstanding
		sh.sys.nextWrite = st.NextWrite
		return nil
	}
}

// InjectScheduledWrites hands every not-yet-performed scheduled write to
// the exchange as a self-delivery to the agent's node at the write's
// cycle (in queue order, which injection ordinals preserve). The queue
// cursor advances only when the agent handles each delivery, and
// Exchange.Close discards undelivered injections — so an engine teardown
// on an error path leaves the remaining writes exactly where the
// sequential loop expects them.
func (s *System) InjectScheduledWrites(x *network.Exchange) {
	for _, w := range s.writes[s.nextWrite:] {
		x.Inject(network.Message{Type: network.MsgSchedWrite, Src: s.agent.id, Dst: s.agent.id}, w.Cycle)
	}
}

// HaltCycle returns the cycle the last processor halted at (absolute).
func (s *System) HaltCycle() uint64 {
	var last uint64
	for _, p := range s.Procs {
		if hc := p.HaltCycle; hc > last {
			last = hc
		}
	}
	return last
}
