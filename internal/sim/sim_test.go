package sim_test

import (
	"strings"
	"testing"

	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

func TestWithMissLatency(t *testing.T) {
	for _, miss := range []uint64{10, 20, 50, 100, 123, 400} {
		cfg := sim.PaperConfig().WithMissLatency(miss)
		got := cfg.MissLatency()
		want := miss
		if want < 4 {
			want = 4
		}
		// Rounded up by at most one cycle to keep the split integral.
		if got != want && got != want+1 {
			t.Errorf("WithMissLatency(%d): end-to-end = %d", miss, got)
		}
	}
}

// TestPaperConfigMissIs100 pins the paper's canonical latency split.
func TestPaperConfigMissIs100(t *testing.T) {
	cfg := sim.PaperConfig()
	if cfg.MissLatency() != 100 {
		t.Fatalf("paper miss latency = %d, want 100", cfg.MissLatency())
	}
	if cfg.Cache.HitLatency != 1 {
		t.Fatalf("paper hit latency = %d, want 1", cfg.Cache.HitLatency)
	}
}

func TestRunProgramConvenience(t *testing.T) {
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x40)
	b.Halt()
	cycles, err := sim.RunProgram(sim.PaperConfig(), []*isa.Program{b.Build()})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 100 {
		t.Errorf("single cold load = %d cycles, want 100", cycles)
	}
}

func TestDumpAndStatsReport(t *testing.T) {
	cfg := sim.PaperConfig()
	cfg.Procs = 2
	prod, cons := workload.ProducerConsumer(2)
	s := sim.New(cfg, []*isa.Program{prod, cons})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	dump := s.Dump()
	for _, want := range []string{"proc0", "proc1", "halted=true"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	report := s.StatsReport()
	for _, want := range []string{"directory.", "cpu0.", "lsu0.", "cache0.", "network.messages"} {
		if !strings.Contains(report, want) {
			t.Errorf("stats report missing %q", want)
		}
	}
}

func TestCoherentSnapshotOverlaysDirtyLines(t *testing.T) {
	cfg := sim.PaperConfig()
	b := isa.NewBuilder()
	b.Li(isa.R1, 5)
	b.StoreAbs(isa.R1, 0x40)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The dirty line lives in the cache; main memory still says 0, the
	// coherent view says 5.
	if s.Mem.ReadWord(0x40) != 0 {
		t.Skip("line was written back; overlay not exercised")
	}
	if got := s.CoherentSnapshot()[0x40]; got != 5 {
		t.Errorf("coherent snapshot = %d, want 5", got)
	}
	if got := s.ReadCoherent(0x40); got != 5 {
		t.Errorf("ReadCoherent = %d, want 5", got)
	}
}

func TestScheduledWriteInvalidatesCachedCopy(t *testing.T) {
	cfg := sim.PaperConfig()
	// The program reads X twice with a long delay loop in between; the
	// scheduled external write must invalidate the cached copy so the
	// second read sees the new value.
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x40) // cold: 0
	b.Li(isa.R3, 40)
	b.Label("delay")
	b.AddI(isa.R3, isa.R3, -1)
	b.Bnez(isa.R3, "delay")
	// Serialize: a dependent private load chain to burn ~200 cycles.
	b.LoadAbs(isa.R4, 0x800)
	b.LoadAbs(isa.R5, 0x900)
	b.LoadAbs(isa.R2, 0x40) // must see 9
	b.StoreAbs(isa.R2, 0x600)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	s.ScheduleWrites([]sim.ScheduledWrite{{Cycle: 150, Addr: 0x40, Value: 9}})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadCoherent(0x600); got != 9 {
		t.Errorf("second read stored %d, want 9 (external write not observed)", got)
	}
}

func TestDirBandwidthConfigPlumbed(t *testing.T) {
	cfg := sim.PaperConfig()
	cfg.DirBandwidth = 1
	cfg.MemModules = 2
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x40)
	b.LoadAbs(isa.R2, 0x44)
	b.Halt()
	s := sim.New(cfg, []*isa.Program{b.Build()})
	if len(s.Dirs) != 2 {
		t.Fatalf("modules = %d, want 2", len(s.Dirs))
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var serviced uint64
	for _, d := range s.Dirs {
		serviced += d.Stats.Counter("serviced").Value()
	}
	if serviced == 0 {
		t.Error("bounded-bandwidth service path not exercised")
	}
}

func TestNSTFlagDisablesCaching(t *testing.T) {
	cfg := sim.PaperConfig()
	cfg.NST = true
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, 0x40)
	b.LoadAbs(isa.R2, 0x40) // same word again: no cache, full cost again
	b.Halt()
	cycles, err := sim.RunProgram(cfg, []*isa.Program{b.Build()})
	if err != nil {
		t.Fatal(err)
	}
	// Two full round trips (pipelined by one cycle under NST issue rules
	// would be ~101; conventional-cached would be ~101 too but the second
	// as a hit; NST must not be dramatically cheaper than one round trip).
	if cycles < 100 {
		t.Errorf("NST run too fast: %d cycles", cycles)
	}
}
