package sim_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"

	// Registers the parallel engine so the par variants actually shard.
	_ "mcmsim/internal/parsim"
)

// snapTechniques extends the fast-forward grid with the Adve-Hill
// comparator, so the round trip covers every store-side path the
// experiments exercise.
var snapTechniques = []struct {
	name string
	tech core.Technique
}{
	{"conv", core.Technique{}},
	{"pf", core.Technique{Prefetch: true}},
	{"spec", core.Technique{SpecLoad: true, ReissueOpt: true}},
	{"pf+spec", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
	{"advehill", core.Technique{AdveHill: true}},
}

// snapEngines are the execution engines a snapshot must be exact under:
// the dense every-cycle loop, the fast-forward scheduler, and the parallel
// shard engine at two worker counts.
var snapEngines = []struct {
	name  string
	dense bool
	par   int
}{
	{"dense", true, 1},
	{"ff", false, 1},
	{"par2", false, 2},
	{"par4", false, 4},
}

// TestSnapshotRoundTrip is the differential gate for machine snapshots:
// across the full model x technique grid under every execution engine, a
// machine serialized at quiescence and restored must be indistinguishable
// from the original for every subsequent observation. Concretely, for each
// configuration it checks that
//
//   - the snapshot survives an encode/decode/re-encode cycle byte-identically
//     (the gob image is canonical: no map iteration order leaks in),
//   - re-snapshotting the restored machine reproduces the original bytes
//     (restore loses nothing the snapshot captures), and
//   - loading a second program phase into the original and the restored
//     machine yields identical halt cycles, statistics reports and coherent
//     memory images (restore loses nothing the snapshot doesn't capture
//     either — transient state is provably empty at quiescence).
func TestSnapshotRoundTrip(t *testing.T) {
	defer func(d bool, p int) { sim.ForceDense, sim.ParWorkers = d, p }(sim.ForceDense, sim.ParWorkers)
	for _, eng := range snapEngines {
		for _, m := range core.AllModels {
			for _, tc := range snapTechniques {
				t.Run(fmt.Sprintf("%s/%v/%s", eng.name, m, tc.name), func(t *testing.T) {
					sim.ForceDense = eng.dense
					sim.ParWorkers = eng.par

					cfg := sim.RealisticConfig()
					cfg.Procs = 3
					cfg.Model = m
					cfg.Tech = tc.tech

					phase1, phase2 := mixProgs(3, 7), mixProgs(3, 11)
					s1 := sim.New(cfg, phase1)
					if _, err := s1.Run(); err != nil {
						t.Fatalf("phase 1: %v", err)
					}
					snap, err := s1.Snapshot()
					if err != nil {
						t.Fatalf("snapshot: %v", err)
					}

					var buf1 bytes.Buffer
					if err := snapshot.Write(&buf1, snap); err != nil {
						t.Fatalf("encode: %v", err)
					}
					decoded, err := snapshot.Read(bytes.NewReader(buf1.Bytes()))
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					var buf2 bytes.Buffer
					if err := snapshot.Write(&buf2, decoded); err != nil {
						t.Fatalf("re-encode: %v", err)
					}
					if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
						t.Fatal("snapshot is not canonical: encode/decode/re-encode changed the bytes")
					}

					s2, err := sim.Restore(decoded)
					if err != nil {
						t.Fatalf("restore: %v", err)
					}
					resnap, err := s2.Snapshot()
					if err != nil {
						t.Fatalf("re-snapshot: %v", err)
					}
					var buf3 bytes.Buffer
					if err := snapshot.Write(&buf3, resnap); err != nil {
						t.Fatalf("re-encode restored: %v", err)
					}
					if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
						t.Fatal("restored machine snapshots differently than the original")
					}

					run2 := func(s *sim.System) (uint64, string, map[uint64]int64) {
						s.LoadPrograms(phase2)
						cycles, err := s.Run()
						if err != nil {
							t.Fatalf("phase 2: %v", err)
						}
						return cycles, s.StatsReport(), s.CoherentSnapshot()
					}
					c1, stats1, mem1 := run2(s1)
					c2, stats2, mem2 := run2(s2)
					if c1 != c2 {
						t.Errorf("phase-2 halt cycle: original=%d restored=%d", c1, c2)
					}
					if stats1 != stats2 {
						t.Errorf("phase-2 stats reports differ:\n--- original ---\n%s--- restored ---\n%s", stats1, stats2)
					}
					if !reflect.DeepEqual(mem1, mem2) {
						t.Errorf("phase-2 memory images differ")
					}
				})
			}
		}
	}
}

// TestSnapshotFileRoundTrip covers the file envelope (magic and version
// validation) used by mcsim -save-state/-load-state.
func TestSnapshotFileRoundTrip(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 3
	cfg.Model = core.SC
	s := sim.New(cfg, mixProgs(3, 7))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/machine.snap"
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Restore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadPrograms(mixProgs(3, 11))
	s2.LoadPrograms(mixProgs(3, 11))
	c1, err1 := s.Run()
	c2, err2 := s2.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	if c1 != c2 {
		t.Errorf("halt cycle after file round trip: original=%d restored=%d", c1, c2)
	}

	if _, err := snapshot.Read(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("Read accepted garbage input")
	}
}
