package sim_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"

	// Registers the parallel engine so the par variants actually shard.
	_ "mcmsim/internal/parsim"
)

// snapTechniques extends the fast-forward grid with the Adve-Hill
// comparator, so the round trip covers every store-side path the
// experiments exercise.
var snapTechniques = []struct {
	name string
	tech core.Technique
}{
	{"conv", core.Technique{}},
	{"pf", core.Technique{Prefetch: true}},
	{"spec", core.Technique{SpecLoad: true, ReissueOpt: true}},
	{"pf+spec", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
	{"advehill", core.Technique{AdveHill: true}},
}

// snapEngines are the execution engines a snapshot must be exact under:
// the dense every-cycle loop, the fast-forward scheduler, and the parallel
// shard engine at two worker counts.
var snapEngines = []struct {
	name  string
	dense bool
	par   int
}{
	{"dense", true, 1},
	{"ff", false, 1},
	{"par2", false, 2},
	{"par4", false, 4},
}

// TestSnapshotRoundTrip is the differential gate for machine snapshots:
// across the full model x technique grid under every execution engine, a
// machine serialized at quiescence and restored must be indistinguishable
// from the original for every subsequent observation. Concretely, for each
// configuration it checks that
//
//   - the snapshot survives an encode/decode/re-encode cycle byte-identically
//     (the gob image is canonical: no map iteration order leaks in),
//   - re-snapshotting the restored machine reproduces the original bytes
//     (restore loses nothing the snapshot captures), and
//   - loading a second program phase into the original and the restored
//     machine yields identical halt cycles, statistics reports and coherent
//     memory images (restore loses nothing the snapshot doesn't capture
//     either — transient state is provably empty at quiescence).
func TestSnapshotRoundTrip(t *testing.T) {
	defer func(d bool, p int) { sim.ForceDense, sim.ParWorkers = d, p }(sim.ForceDense, sim.ParWorkers)
	for _, eng := range snapEngines {
		for _, m := range core.AllModels {
			for _, tc := range snapTechniques {
				t.Run(fmt.Sprintf("%s/%v/%s", eng.name, m, tc.name), func(t *testing.T) {
					sim.ForceDense = eng.dense
					sim.ParWorkers = eng.par

					cfg := sim.RealisticConfig()
					cfg.Procs = 3
					cfg.Model = m
					cfg.Tech = tc.tech

					phase1, phase2 := mixProgs(3, 7), mixProgs(3, 11)
					s1 := sim.New(cfg, phase1)
					if _, err := s1.Run(); err != nil {
						t.Fatalf("phase 1: %v", err)
					}
					snap, err := s1.Snapshot()
					if err != nil {
						t.Fatalf("snapshot: %v", err)
					}

					var buf1 bytes.Buffer
					if err := snapshot.Write(&buf1, snap); err != nil {
						t.Fatalf("encode: %v", err)
					}
					decoded, err := snapshot.Read(bytes.NewReader(buf1.Bytes()))
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					var buf2 bytes.Buffer
					if err := snapshot.Write(&buf2, decoded); err != nil {
						t.Fatalf("re-encode: %v", err)
					}
					if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
						t.Fatal("snapshot is not canonical: encode/decode/re-encode changed the bytes")
					}

					s2, err := sim.Restore(decoded)
					if err != nil {
						t.Fatalf("restore: %v", err)
					}
					resnap, err := s2.Snapshot()
					if err != nil {
						t.Fatalf("re-snapshot: %v", err)
					}
					var buf3 bytes.Buffer
					if err := snapshot.Write(&buf3, resnap); err != nil {
						t.Fatalf("re-encode restored: %v", err)
					}
					if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
						t.Fatal("restored machine snapshots differently than the original")
					}

					run2 := func(s *sim.System) (uint64, string, map[uint64]int64) {
						s.LoadPrograms(phase2)
						cycles, err := s.Run()
						if err != nil {
							t.Fatalf("phase 2: %v", err)
						}
						return cycles, s.StatsReport(), s.CoherentSnapshot()
					}
					c1, stats1, mem1 := run2(s1)
					c2, stats2, mem2 := run2(s2)
					if c1 != c2 {
						t.Errorf("phase-2 halt cycle: original=%d restored=%d", c1, c2)
					}
					if stats1 != stats2 {
						t.Errorf("phase-2 stats reports differ:\n--- original ---\n%s--- restored ---\n%s", stats1, stats2)
					}
					if !reflect.DeepEqual(mem1, mem2) {
						t.Errorf("phase-2 memory images differ")
					}
				})
			}
		}
	}
}

// TestSnapshotFileRoundTrip covers the file envelope (magic and version
// validation) used by mcsim -save-state/-load-state.
func TestSnapshotFileRoundTrip(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 3
	cfg.Model = core.SC
	s := sim.New(cfg, mixProgs(3, 7))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/machine.snap"
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Restore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadPrograms(mixProgs(3, 11))
	s2.LoadPrograms(mixProgs(3, 11))
	c1, err1 := s.Run()
	c2, err2 := s2.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	if c1 != c2 {
		t.Errorf("halt cycle after file round trip: original=%d restored=%d", c1, c2)
	}

	if _, err := snapshot.Read(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("Read accepted garbage input")
	}
}

// TestSnapshotMidFlight is the mid-flight property test: interrupting a
// run at an arbitrary (pseudo-randomly chosen, non-quiescent) cycle,
// snapshotting, and restoring into a fresh machine must be invisible — the
// resumed run's halt cycle, statistics report and coherent memory image
// must equal the uninterrupted run's, across network shape x coherence
// protocol, and the snapshot bytes themselves must be identical whether
// the interrupted run stepped every cycle or fast-forwarded (the scheduler
// clamps its idle jumps to the interruption target, so both stop in the
// same state). A re-snapshot of the restored machine must reproduce the
// original bytes: restore loses nothing mid-flight state included.
func TestSnapshotMidFlight(t *testing.T) {
	type shape struct {
		name  string
		cfg   sim.Config
		progs func() []*isa.Program
	}
	uniform := sim.RealisticConfig().WithMissLatency(100)
	uniform.Procs = 4
	uniform.Model = core.RC
	uniform.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	mesh := meshConfig(16)
	mesh.Model = core.SC
	mesh.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
	shapes := []shape{
		{"uniform", uniform, func() []*isa.Program { return mixProgs(4, 11) }},
		{"mesh", mesh, func() []*isa.Program { return wideProgs(16, 3, 3) }},
	}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		for _, proto := range []struct {
			name string
			p    coherence.Protocol
		}{{"msi", coherence.ProtoInvalidate}, {"mesi", coherence.ProtoMESI}} {
			t.Run(sh.name+"/"+proto.name, func(t *testing.T) {
				cfg := sh.cfg
				cfg.Protocol = proto.p

				ref := sim.New(cfg, sh.progs())
				if _, err := ref.Run(); err != nil {
					t.Fatalf("reference run: %v", err)
				}
				refStats, refMem, refEnd := ref.StatsReport(), ref.CoherentSnapshot(), ref.Cycle

				for trial := 0; trial < 3; trial++ {
					span := refEnd - ref.BaseCycle()
					cut := ref.BaseCycle() + 1 + uint64(rng.Int63n(int64(span-1)))
					snapAt := func(dense bool) []byte {
						c := cfg
						c.DenseLoop = dense
						s := sim.New(c, sh.progs())
						done, err := s.RunUntil(cut)
						if err != nil {
							t.Fatalf("cut=%d: %v", cut, err)
						}
						if done {
							t.Fatalf("cut=%d: machine quiesced early (end=%d)", cut, refEnd)
						}
						if s.Cycle != cut {
							t.Fatalf("cut=%d: RunUntil stopped at %d", cut, s.Cycle)
						}
						snap, err := s.Snapshot()
						if err != nil {
							t.Fatalf("cut=%d: snapshot: %v", cut, err)
						}
						// The skipped-cycle diagnostic is the one field that
						// legitimately depends on the scheduler; normalize it so
						// the comparison covers everything else.
						snap.FastForwarded = 0
						snap.Config.DenseLoop = false
						var buf bytes.Buffer
						if err := snapshot.Write(&buf, snap); err != nil {
							t.Fatalf("cut=%d: encode: %v", cut, err)
						}
						return buf.Bytes()
					}
					ffBytes := snapAt(false)
					if denseBytes := snapAt(true); !bytes.Equal(ffBytes, denseBytes) {
						t.Fatalf("cut=%d: dense and fast-forward machines diverge at the cut", cut)
					}

					decoded, err := snapshot.Read(bytes.NewReader(ffBytes))
					if err != nil {
						t.Fatalf("cut=%d: decode: %v", cut, err)
					}
					restored, err := sim.Restore(decoded)
					if err != nil {
						t.Fatalf("cut=%d: restore: %v", cut, err)
					}
					resnap, err := restored.Snapshot()
					if err != nil {
						t.Fatalf("cut=%d: re-snapshot: %v", cut, err)
					}
					var buf2 bytes.Buffer
					if err := snapshot.Write(&buf2, resnap); err != nil {
						t.Fatalf("cut=%d: re-encode: %v", cut, err)
					}
					if !bytes.Equal(ffBytes, buf2.Bytes()) {
						t.Fatalf("cut=%d: restored machine snapshots differently than the original", cut)
					}

					if _, err := restored.Run(); err != nil {
						t.Fatalf("cut=%d: resumed run: %v", cut, err)
					}
					if restored.Cycle != refEnd {
						t.Errorf("cut=%d: final clock resumed=%d uninterrupted=%d", cut, restored.Cycle, refEnd)
					}
					if got := restored.StatsReport(); got != refStats {
						t.Errorf("cut=%d: stats reports differ:\n--- resumed ---\n%s--- uninterrupted ---\n%s", cut, got, refStats)
					}
					if !reflect.DeepEqual(restored.CoherentSnapshot(), refMem) {
						t.Errorf("cut=%d: coherent memory images differ", cut)
					}
				}
			})
		}
	}
}

// TestSnapshotVersionMismatch pins the format-version gate: a snapshot
// stamped with a foreign version must be rejected with an error naming
// both versions, never misinterpreted.
func TestSnapshotVersionMismatch(t *testing.T) {
	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	s := sim.New(cfg, mixProgs(2, 7))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	// The envelope is gob: re-encode it with a bumped version by decoding
	// into the raw structure is not exposed, so patch the version byte via
	// the public API instead — write with a build that disagrees is what we
	// simulate by checking the error text contract on a crafted stream.
	stale := gobEnvelopeWithVersion(t, snap, snapshot.FormatVersion+40)
	_, err = snapshot.Read(bytes.NewReader(stale))
	if err == nil {
		t.Fatal("Read accepted a snapshot from a different format version")
	}
	want := fmt.Sprintf("format version %d, this build reads %d", snapshot.FormatVersion+40, snapshot.FormatVersion)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("version mismatch error %q does not name both versions (want %q)", err, want)
	}
}

// gobEnvelopeWithVersion re-frames a machine under a different format
// version, simulating a snapshot written by another build of the tool.
func gobEnvelopeWithVersion(t *testing.T, m *snapshot.Machine, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	env := struct {
		Magic   string
		Version int
		Machine snapshot.Machine
	}{"mcmsim-snapshot", version, *m}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
