// Package sim assembles the full simulated multiprocessor: out-of-order
// processors (internal/cpu) with consistency-enforcing load/store units
// (internal/core), lockup-free caches (internal/cache), the directory
// (internal/coherence) and the interconnect (internal/network), and drives
// them with a deterministic cycle loop.
package sim

import (
	"fmt"
	"strings"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/cpu"
	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// Config describes a complete machine.
type Config struct {
	Procs     int
	Model     core.Model
	Tech      core.Technique
	Protocol  coherence.Protocol
	LineWords uint64

	// NetLatency is the one-way interconnect latency; MemLatency the
	// directory/memory service time. A clean miss costs
	// 2*NetLatency + MemLatency cycles end to end.
	NetLatency uint64
	MemLatency uint64

	// Topo selects the interconnect topology. "" or "uniform" is the seed
	// network: every node pair NetLatency apart, no contention. "mesh" is a
	// 2-D mesh auto-sized to ceil(sqrt(P)) columns; "mesh:WxH" fixes the
	// dimensions. On a mesh, CPU i and home module i share tile i (mod
	// tiles) — a DASH-style cluster — and NetLatency is ignored in favor of
	// HopLatency. New normalizes the field to its explicit form
	// ("mesh:WxH", or "" for uniform).
	Topo string
	// HopLatency is the mesh per-link traversal latency (default 10, so a
	// one-hop round trip with MemLatency 10 costs 2*10+10 = 30 cycles and
	// cross-machine traffic pays distance on top).
	HopLatency uint64
	// LinkGap is the mesh per-directed-link occupancy per message: each
	// link accepts one message every LinkGap cycles; later messages queue
	// deterministically (default 1).
	LinkGap uint64

	// DirPointers bounds each directory entry to this many exact sharer
	// pointers; an overflowing line falls back to a coarse vector over
	// groups of ceil(P/64) CPUs, which over-invalidates but keeps directory
	// storage per line O(DirPointers) instead of O(P). 0 = unbounded exact
	// tracking (the seed behavior).
	DirPointers int

	Cache cache.Config
	CPU   cpu.Config

	// ForwardLatency is the store-buffer forwarding latency (default 1).
	ForwardLatency uint64
	// MaxAddrPerCycle bounds the LSU address unit (0 = unlimited).
	MaxAddrPerCycle int

	// NST enables the Stenstrom comparator (paper §6): caches bypassed,
	// ordering guaranteed at the memory module.
	NST bool

	// UncachedRMW lists word addresses whose RMWs bypass the cache
	// (Appendix A's non-cached synchronization locations).
	UncachedRMW map[uint64]bool

	// MemModules interleaves lines across this many home directory/memory
	// modules (0 or 1 = a single home). DASH-style distributed memory.
	MemModules int
	// DirBandwidth bounds the messages each home module services per cycle
	// (0 = unlimited, the paper's pipelined-memory assumption).
	DirBandwidth int

	// MaxCycles aborts a run that fails to converge (deadlock guard).
	MaxCycles uint64

	// DenseLoop disables the idle-cycle fast-forward scheduler: Run steps
	// every cycle even when all components are provably inert. The
	// escape hatch for debugging and for the differential tests that prove
	// fast-forward changes nothing.
	DenseLoop bool
}

// ForceDense disables fast-forward for every Run in the process, regardless
// of per-config DenseLoop — the CLI (-dense) and differential-test knob. It
// must only be toggled while no simulations are running.
var ForceDense bool

// ParWorkers is the shard-parallelism degree applied to every Run in the
// process (the -par flag): 0 or 1 selects the sequential loop, N ≥ 2 asks
// the registered parallel engine (internal/parsim) to advance up to N node
// shards concurrently. Like ForceDense it must only change while no
// simulations are running; concurrent Runs (cmd/sweep -j) all observe the
// same value.
var ParWorkers int

// ParEngine selects which parallel engine Run asks for when ParWorkers ≥ 2
// (the -engine flag): "auto" tries the conservative engine and falls back
// to the optimistic one for configurations it declines (deliveries already
// in flight); "conservative" and "optimistic" force one engine, falling
// back to the sequential loop when it declines. Every engine produces
// byte-identical results, so this is purely a performance/diagnostics
// knob. Like ForceDense it must only change while no simulations run.
var ParEngine = "auto"

// parallelRunner is installed by internal/parsim (an init-time hook keeps
// sim free of an import cycle: parsim imports sim). It returns handled=false
// when the engine declines the configuration — zero network latency, trace
// hooks attached, pending messages — in which case Run falls back to the
// sequential loop below.
var parallelRunner func(s *System, workers int) (halt uint64, handled bool, err error)

// RegisterParallelRunner installs the parallel engine Run consults when
// ParWorkers ≥ 2.
func RegisterParallelRunner(f func(s *System, workers int) (uint64, bool, error)) {
	parallelRunner = f
}

// BaseProtocol is the invalidation-family protocol PaperConfig installs:
// coherence.ProtoInvalidate (MSI, the seed default) or coherence.ProtoMESI.
// cmd/sweep -protocol rebinds it so every sweep runs on the chosen
// protocol; experiments that set Config.Protocol explicitly (the
// update-vs-invalidation comparison) are unaffected.
var BaseProtocol = coherence.ProtoInvalidate

// PaperConfig reproduces the abstract machine of the paper's examples:
// 1-cycle cache hits, 100-cycle misses (45+10+45), one access accepted per
// cycle, free instruction supply, single-word lines so the examples never
// interact through false sharing.
func PaperConfig() Config {
	return Config{
		Procs:      1,
		Model:      core.SC,
		Protocol:   BaseProtocol,
		LineWords:  1,
		NetLatency: 45,
		MemLatency: 10,
		Cache:      cache.DefaultConfig(),
		CPU:        cpu.PaperConfig(),
		MaxCycles:  2_000_000,
	}
}

// RealisticConfig is a 4-wide machine with 4-word lines and the same
// 100-cycle miss, used by the workload experiments.
func RealisticConfig() Config {
	c := PaperConfig()
	c.LineWords = 4
	c.CPU = cpu.RealisticConfig()
	return c
}

// MissLatency returns the end-to-end clean-miss cost of the configuration.
func (c Config) MissLatency() uint64 { return 2*c.NetLatency + c.MemLatency }

// WithMissLatency rescales the network/memory latencies so a clean miss
// costs the given number of cycles (used by the latency sweeps). The memory
// service time is kept at ~10% of the total.
func (c Config) WithMissLatency(miss uint64) Config {
	if miss < 4 {
		miss = 4
	}
	mem := miss / 10
	if mem == 0 {
		mem = 1
	}
	if (miss-mem)%2 != 0 {
		mem++
	}
	c.NetLatency = (miss - mem) / 2
	c.MemLatency = mem
	return c
}

// ScheduledWrite injects an external write at a fixed cycle, performed by a
// cacheless agent at the directory (used by the Figure 5 trace and the
// contention tests: "assume an invalidation arrives for location D").
type ScheduledWrite struct {
	Cycle uint64
	Addr  uint64
	Value int64
}

// System is one assembled machine plus its programs.
type System struct {
	Cfg    Config
	Net    *network.Network
	Mem    *memsys.Memory
	Dir    *coherence.Directory // first home module (convenience accessor)
	Dirs   []*coherence.Directory
	Caches []*cache.Cache
	LSUs   []*core.LSU
	Procs  []*cpu.Proc

	agent      *agent
	writes     []ScheduledWrite
	nextWrite  int
	Cycle      uint64
	baseCycle  uint64 // cycle at which the current programs were loaded
	TraceHooks []TraceHook

	// FastForwarded counts the cycles Run skipped via the event-horizon
	// scheduler (diagnostics only; deliberately absent from StatsReport so
	// dense and fast-forward reports stay byte-identical).
	FastForwarded uint64

	// ParReport is the parallel engine's scheduler summary for the most
	// recent Run (per-shard cycles, windows, skips, exchanged messages).
	// Empty after a sequential run. Diagnostics only — like FastForwarded it
	// is deliberately absent from StatsReport, so sequential and parallel
	// reports stay byte-identical.
	ParReport string
}

// BaseCycle returns the cycle at which the current programs were loaded;
// halt cycles are reported relative to it.
func (s *System) BaseCycle() uint64 { return s.baseCycle }

// TraceHook observes every cycle after all phases ran; used by the
// Figure 5 tracer.
type TraceHook func(s *System, cycle uint64)

// New builds a system running the given per-processor programs. len(progs)
// must equal cfg.Procs.
func New(cfg Config, progs []*isa.Program) *System {
	if len(progs) != cfg.Procs {
		panic(fmt.Sprintf("sim: %d programs for %d processors", len(progs), cfg.Procs))
	}
	if cfg.LineWords == 0 {
		cfg.LineWords = 1
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000
	}
	if cfg.MemModules <= 0 {
		cfg.MemModules = 1
	}
	geom := memsys.NewGeometry(cfg.LineWords)
	// One storage bank per home module: each directory shard then touches
	// only its own map, which is what lets the parallel engine run home
	// nodes on separate goroutines against the one Memory.
	mem := memsys.NewBankedMemory(geom, cfg.MemModules)
	net := buildNetwork(&cfg)
	homes := make([]network.NodeID, cfg.MemModules)
	dirs := make([]*coherence.Directory, cfg.MemModules)
	for i := range dirs {
		homes[i] = network.NodeID(cfg.Procs + i)
		dirs[i] = coherence.New(homes[i], net, mem, cfg.MemLatency, cfg.Protocol)
		dirs[i].MaxPerCycle = cfg.DirBandwidth
		if cfg.DirPointers > 0 {
			dirs[i].ConfigureSharers(cfg.Procs, cfg.DirPointers, 0)
		}
	}

	s := &System{Cfg: cfg, Net: net, Mem: mem, Dir: dirs[0], Dirs: dirs}
	s.agent = newAgent(network.NodeID(cfg.Procs+cfg.MemModules), net, homes, geom)
	s.agent.sys = s

	for i := 0; i < cfg.Procs; i++ {
		lcfg := core.Config{
			Model:           cfg.Model,
			Tech:            cfg.Tech,
			ForwardLatency:  cfg.ForwardLatency,
			MaxAddrPerCycle: cfg.MaxAddrPerCycle,
		}
		// The cache's client is the LSU; construct LSU first with a
		// placeholder cache, then the cache, then bind.
		lcfg.NST = cfg.NST
		lcfg.UncachedRMW = cfg.UncachedRMW
		lsu := core.NewLSU(i, lcfg, nil, geom)
		c := cache.New(network.NodeID(i), homes[0], net, geom, cfg.Cache, cache.Protocol(cfg.Protocol), lsu)
		if cfg.MemModules > 1 {
			c.SetHomes(homes)
		}
		if cfg.NST {
			c.EnableBypass()
		}
		lsu.BindCache(c)
		p := cpu.New(i, cfg.CPU, progs[i], lsu)
		s.Caches = append(s.Caches, c)
		s.LSUs = append(s.LSUs, lsu)
		s.Procs = append(s.Procs, p)
	}
	return s
}

// CoherentSnapshot returns the architecturally visible memory image: main
// memory overlaid with every dirty cached line. Tests and examples read
// results through it (dirty lines are not written back at quiescence).
func (s *System) CoherentSnapshot() map[uint64]int64 {
	snap := s.Mem.Snapshot()
	geom := s.Mem.Geometry()
	for _, c := range s.Caches {
		for lineAddr, data := range c.DirtyLines() {
			for i, v := range data {
				a := lineAddr + uint64(i)
				if v == 0 {
					delete(snap, a)
				} else {
					snap[a] = v
				}
			}
		}
	}
	_ = geom
	return snap
}

// ReadCoherent returns the architecturally visible value of one word.
func (s *System) ReadCoherent(addr uint64) int64 {
	lineAddr := s.Mem.Geometry().LineOf(addr)
	off := s.Mem.Geometry().Offset(addr)
	for _, c := range s.Caches {
		if data, ok := c.DirtyLines()[lineAddr]; ok {
			return data[off]
		}
	}
	return s.Mem.ReadWord(addr)
}

// Preload writes initial values directly into memory before the run.
func (s *System) Preload(values map[uint64]int64) {
	for a, v := range values {
		s.Mem.WriteWord(a, v)
	}
}

// ScheduleWrites registers external writes; they must be sorted by cycle.
func (s *System) ScheduleWrites(ws []ScheduledWrite) {
	s.writes = append(s.writes, ws...)
}

// LoadPrograms replaces the processors and load/store units with fresh ones
// running new programs, keeping memory, caches and directory state intact.
// This is how warmed-cache experiments are built (e.g. "the read to
// location D is assumed to hit in the cache").
func (s *System) LoadPrograms(progs []*isa.Program) {
	if len(progs) != s.Cfg.Procs {
		panic("sim: wrong program count")
	}
	geom := s.Mem.Geometry()
	for i := range progs {
		lcfg := core.Config{
			Model:           s.Cfg.Model,
			Tech:            s.Cfg.Tech,
			ForwardLatency:  s.Cfg.ForwardLatency,
			MaxAddrPerCycle: s.Cfg.MaxAddrPerCycle,
		}
		lcfg.NST = s.Cfg.NST
		lcfg.UncachedRMW = s.Cfg.UncachedRMW
		lsu := core.NewLSU(i, lcfg, s.Caches[i], geom)
		s.Caches[i].SetClient(lsu)
		lsu.BindCache(s.Caches[i])
		s.Procs[i] = cpu.New(i, s.Cfg.CPU, progs[i], lsu)
		s.LSUs[i] = lsu
	}
	s.baseCycle = s.Cycle
}

// Step advances the machine one cycle. Phase order (documented in
// DESIGN.md) is what gives the paper's exact cycle counts: fetch/decode at
// cycle start, then message delivery and completions, then execution and
// retirement, then the load/store issue stage.
func (s *System) Step() {
	now := s.Cycle
	for s.nextWrite < len(s.writes) && s.writes[s.nextWrite].Cycle <= now {
		s.agent.write(s.writes[s.nextWrite], now)
		s.nextWrite++
	}
	for _, p := range s.Procs {
		p.TickFrontend(now)
	}
	s.Net.Deliver(now)
	for _, d := range s.Dirs {
		d.Tick(now)
	}
	for _, c := range s.Caches {
		c.Tick(now)
	}
	for _, u := range s.LSUs {
		u.TickComplete(now)
	}
	for _, p := range s.Procs {
		p.TickExecute(now)
	}
	for _, p := range s.Procs {
		p.TickRetire(now)
	}
	for _, u := range s.LSUs {
		u.TickIssue(now)
	}
	for _, h := range s.TraceHooks {
		h(s, now)
	}
	s.Cycle++
}

// Done reports whether every processor halted and all queues drained.
func (s *System) Done() bool {
	for _, p := range s.Procs {
		if !p.Halted() {
			return false
		}
	}
	if s.Net.Pending() > 0 || !s.agent.idle() {
		return false
	}
	for _, d := range s.Dirs {
		if !d.Quiescent() {
			return false
		}
	}
	for _, c := range s.Caches {
		if c.PendingWork() {
			return false
		}
	}
	return s.nextWrite >= len(s.writes)
}

// Run steps the machine until Done or the cycle budget is exhausted; it
// returns the cycle at which the last processor halted, relative to the
// most recent program load.
//
// Unless Config.DenseLoop or ForceDense is set, Run fast-forwards over
// provably idle stretches: when no component can change state at the
// current cycle, the clock jumps straight to the event horizon — the
// earliest cycle at which anything (a network delivery, a scheduled write,
// a component's own timer) can happen. Because skipIdleCycles only skips
// cycles where Step would have been a pure no-op, halt cycles, statistics,
// memory images and traces are identical to the dense loop's.
func (s *System) Run() (uint64, error) {
	if w := ParWorkers; w > 1 && parallelRunner != nil {
		if halt, handled, err := parallelRunner(s, w); handled {
			return halt, err
		}
	}
	dense := s.Cfg.DenseLoop || ForceDense
	for !s.Done() {
		if s.Cycle-s.baseCycle > s.Cfg.MaxCycles {
			return 0, fmt.Errorf("sim: no convergence after %d cycles\n%s", s.Cfg.MaxCycles, s.Dump())
		}
		if !dense && s.skipIdleCycles(^uint64(0)) {
			continue
		}
		s.Step()
	}
	var last uint64
	for _, p := range s.Procs {
		if hc := p.HaltCycle; hc > last {
			last = hc
		}
	}
	return last - s.baseCycle, nil
}

// RunUntil advances the machine until it is Done or the clock reaches the
// absolute cycle target, whichever comes first, and reports whether the
// machine finished. Fast-forward jumps are clamped to the target, so the
// machine stops at exactly that cycle regardless of the loop flavor — the
// state there is identical either way (only provably idle cycles are
// skipped) — which makes it the place to take a mid-flight Snapshot.
// RunUntil always drives the sequential loop; checkpointed runs trade the
// parallel engines for an interruptible clock.
func (s *System) RunUntil(target uint64) (bool, error) {
	dense := s.Cfg.DenseLoop || ForceDense
	for !s.Done() {
		if s.Cycle >= target {
			return false, nil
		}
		if s.Cycle-s.baseCycle > s.Cfg.MaxCycles {
			return false, fmt.Errorf("sim: no convergence after %d cycles\n%s", s.Cfg.MaxCycles, s.Dump())
		}
		if !dense && s.skipIdleCycles(target) {
			continue
		}
		s.Step()
	}
	return true, nil
}

// skipIdleCycles advances the clock past cycles in which no component can
// make progress (never past limit), reporting whether it moved. The horizon
// is the earliest of every self-scheduled event in the machine: the next
// scheduled external write, the next network delivery, and each component's
// NextWake. A component that can act at the current cycle vetoes the skip
// entirely. No component may ever schedule work earlier than its reported
// wake, so every skipped cycle is one the dense loop would have stepped
// through without any state change — including statistics.
func (s *System) skipIdleCycles(limit uint64) bool {
	now := s.Cycle
	// A machine with no wake candidates at all (yet not Done) is
	// deadlocked: jump straight past the cycle budget so Run reports the
	// same no-convergence error, at the same cycle, that dense would.
	horizon := s.baseCycle + s.Cfg.MaxCycles + 1
	// earlier folds one wake candidate into the horizon; a candidate at or
	// before now means the machine is busy and nothing can be skipped.
	earlier := func(c uint64, ok bool) (busy bool) {
		if !ok {
			return false
		}
		if c <= now {
			return true
		}
		if c < horizon {
			horizon = c
		}
		return false
	}
	if s.nextWrite < len(s.writes) && earlier(s.writes[s.nextWrite].Cycle, true) {
		return false
	}
	if earlier(s.Net.NextDelivery()) {
		return false
	}
	for _, d := range s.Dirs {
		if earlier(d.NextWake(now)) {
			return false
		}
	}
	for _, c := range s.Caches {
		if earlier(c.NextWake(now)) {
			return false
		}
	}
	for _, u := range s.LSUs {
		if earlier(u.NextWake(now)) {
			return false
		}
	}
	for _, p := range s.Procs {
		if earlier(p.NextWake(now)) {
			return false
		}
	}
	if horizon > limit {
		horizon = limit
	}
	if horizon <= now {
		return false
	}
	s.FastForwarded += horizon - now
	s.Cycle = horizon
	return true
}

// RunCheckpointed drives the machine to completion through RunUntil slices
// of every cycles, invoking save on the quiescent-clock boundary between
// slices, and returns the halt cycle exactly as Run reports it. The slice
// boundaries land at the same absolute cycles no matter where the run
// started, so a machine restored from one of the saved checkpoints and
// driven by RunCheckpointed again produces the identical remaining
// boundary sequence — and, because RunUntil state is loop-flavor
// independent, the identical final machine. Like RunUntil it always drives
// the sequential loop: checkpointed runs trade the parallel shard engines
// for an interruptible clock.
func (s *System) RunCheckpointed(every uint64, save func(*System) error) (uint64, error) {
	if every == 0 {
		return s.Run()
	}
	// Align slice boundaries to multiples of every on the absolute clock,
	// so a resumed run (which starts at a boundary) slices exactly like the
	// run it resumes.
	for {
		target := (s.Cycle/every + 1) * every
		done, err := s.RunUntil(target)
		if err != nil {
			return 0, err
		}
		if done {
			break
		}
		if save != nil {
			if err := save(s); err != nil {
				return 0, err
			}
		}
	}
	return s.HaltCycle() - s.baseCycle, nil
}

// RunProgram is the one-shot convenience: build, run, return the halt cycle.
func RunProgram(cfg Config, progs []*isa.Program) (uint64, error) {
	return New(cfg, progs).Run()
}

// Dump renders a debugging summary of machine state.
func (s *System) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d netPending=%d\n", s.Cycle, s.Net.Pending())
	for i, p := range s.Procs {
		fmt.Fprintf(&b, "proc%d halted=%v rob=%d\n", i, p.Halted(), p.ROBLen())
	}
	for i, c := range s.Caches {
		fmt.Fprintf(&b, "cache%d fills=%d pending=%v\n", i, c.OutstandingFills(), c.PendingWork())
	}
	return b.String()
}

// StatsReport aggregates every component's metrics into one table.
func (s *System) StatsReport() string {
	var b strings.Builder
	for _, d := range s.Dirs {
		b.WriteString(d.Stats.String())
	}
	for i := range s.Procs {
		b.WriteString(s.Procs[i].Stats.String())
		b.WriteString(s.LSUs[i].Stats.String())
		b.WriteString(s.Caches[i].Stats.String())
	}
	fmt.Fprintf(&b, "network.messages = %d\n", s.Net.MessagesSent)
	if ms, ok := s.Net.Topology().(*network.Mesh); ok {
		// Mesh-only rows: keeping them out of uniform reports preserves the
		// seed's byte-exact outputs. Both counters advance inside
		// Topology.Arrival, whose call sequence is engine-independent, so
		// these rows are too.
		fmt.Fprintf(&b, "network.hops = %d\n", ms.HopsTraveled)
		fmt.Fprintf(&b, "network.link_waits = %d\n", ms.LinkWaits)
	}
	return b.String()
}
