package sim

import (
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// agent is a cacheless network node that performs directory-serialized
// writes on behalf of the test harness — the "another processor writes the
// location" actor in the paper's examples. Under the invalidation protocol
// the directory invalidates or recalls all cached copies before applying
// the write, so caches observe exactly the coherence transactions the
// detection mechanism of §4 monitors.
type agent struct {
	id    network.NodeID
	homes []network.NodeID
	net   network.Port
	geom  memsys.Geometry
	sys   *System // owner; the scheduled-write queue lives there

	outstanding int // writes awaiting UpdateDone
}

func newAgent(id network.NodeID, net *network.Network, homes []network.NodeID, geom memsys.Geometry) *agent {
	a := &agent{id: id, homes: homes, net: net, geom: geom}
	net.Attach(id, a)
	return a
}

// setPort rebinds the agent onto a shard-private endpoint (and back).
func (a *agent) setPort(p network.Port) { a.net = p }

// write sends one external word write into the memory system.
func (a *agent) write(w ScheduledWrite, now uint64) {
	a.outstanding++
	line := a.geom.LineOf(w.Addr)
	home := a.homes[(line/a.geom.LineWords)%uint64(len(a.homes))]
	a.net.Post(network.Message{
		Type: network.MsgUpdateReq, Src: a.id, Dst: home,
		Line: line, Word: w.Addr, Value: w.Value,
	}, now)
}

// idle reports whether all injected writes have completed at the directory.
func (a *agent) idle() bool { return a.outstanding == 0 }

// HandleMessage implements network.Handler: the agent counts completions
// (invalidation acks from sharers are informational) and, under the
// parallel engine, performs scheduled writes when their injected
// self-deliveries arrive (System.InjectScheduledWrites). Injections are
// delivered in schedule order, so the queue cursor just advances.
func (a *agent) HandleMessage(m *network.Message, now uint64) {
	switch m.Type {
	case network.MsgUpdateDone:
		a.outstanding--
	case network.MsgInvAck, network.MsgUpdateAck:
		// Sharers acknowledging; nothing to do.
	case network.MsgSchedWrite:
		s := a.sys
		a.write(s.writes[s.nextWrite], now)
		s.nextWrite++
	default:
		panic("agent: unexpected message " + m.Type.String())
	}
}
