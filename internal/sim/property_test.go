package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// randomProgram generates a deterministic pseudo-random single-processor
// program: ALU ops, loads, stores, RMWs over a small address space, plus
// bounded counted loops — enough structure to shake out pipeline, renaming,
// forwarding and speculation bugs.
func randomProgram(seed int64, ops int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder()
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6}
	addr := func() int64 { return int64(0x100 + rng.Intn(24)) }
	reg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			b.Li(reg(), int64(rng.Intn(100)))
		case 2:
			b.Add(reg(), reg(), reg())
		case 3:
			b.AddI(reg(), reg(), int64(rng.Intn(8)))
		case 4, 5:
			b.LoadAbs(reg(), addr())
		case 6, 7:
			b.StoreAbs(reg(), addr())
		case 8:
			b.RMW(isa.RMWFetchAdd, reg(), reg(), isa.R0, addr())
		case 9:
			// Bounded counted loop: 1-3 iterations. The body register must
			// differ from the counter or the loop never terminates.
			cnt := reg()
			body := reg()
			for body == cnt {
				body = reg()
			}
			b.Li(cnt, int64(1+rng.Intn(3)))
			label := b.FreshLabel("loop")
			b.Label(label)
			b.AddI(body, body, 1)
			b.AddI(cnt, cnt, -1)
			b.Bnez(cnt, label)
		}
	}
	// Deposit every register so the test can compare architectural state
	// through memory.
	for i, r := range regs {
		b.StoreAbs(r, int64(0x800+i))
	}
	b.Halt()
	return b.Build()
}

// archResult runs a program and returns a canonical string of the final
// coherent memory image.
func archResult(t *testing.T, cfg sim.Config, prog *isa.Program) string {
	t.Helper()
	s := sim.New(cfg, []*isa.Program{prog})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := s.CoherentSnapshot()
	out := ""
	for a := uint64(0x100); a < 0x820; a++ {
		if v, ok := snap[a]; ok {
			out += fmt.Sprintf("%x=%d;", a, v)
		}
	}
	return out
}

// TestSequentialSemanticsInvariance: for random single-processor programs,
// the final architectural state is identical under every consistency model
// and every technique combination — consistency models and latency-hiding
// techniques must never change single-thread semantics.
func TestSequentialSemanticsInvariance(t *testing.T) {
	techs := []core.Technique{
		{},
		{Prefetch: true},
		{SpecLoad: true},
		{SpecLoad: true, ReissueOpt: true},
		{Prefetch: true, SpecLoad: true, ReissueOpt: true},
	}
	for seed := int64(1); seed <= 12; seed++ {
		prog := randomProgram(seed, 40)
		var want string
		for _, model := range core.AllModels {
			for _, tech := range techs {
				cfg := sim.RealisticConfig()
				cfg.Model = model
				cfg.Tech = tech
				got := archResult(t, cfg, prog)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("seed %d: %v/%v diverged:\n got %s\nwant %s", seed, model, tech, got, want)
				}
			}
		}
	}
}

// TestPaperVsRealisticSameResults: the machine configuration (widths,
// latencies) must never change architectural results either.
func TestPaperVsRealisticSameResults(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		prog := randomProgram(seed, 30)
		a := archResult(t, sim.PaperConfig(), prog)
		cfgB := sim.RealisticConfig()
		cfgB.LineWords = 1
		b := archResult(t, cfgB, prog)
		if a != b {
			t.Fatalf("seed %d: paper vs realistic configs diverge:\n%s\n%s", seed, a, b)
		}
	}
}

// TestNSTSameResults: the Stenström comparator is a different memory
// system entirely but must compute the same program results.
func TestNSTSameResults(t *testing.T) {
	for seed := int64(30); seed < 34; seed++ {
		prog := randomProgram(seed, 25)
		a := archResult(t, sim.PaperConfig(), prog)
		cfg := sim.PaperConfig()
		cfg.NST = true
		b := archResult(t, cfg, prog)
		if a != b {
			t.Fatalf("seed %d: NST diverges:\n%s\n%s", seed, a, b)
		}
	}
}

// TestUpdateProtocolSameResults: the write-update protocol must compute the
// same single-processor results as write-invalidate.
func TestUpdateProtocolSameResults(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		prog := randomProgram(seed, 25)
		a := archResult(t, sim.RealisticConfig(), prog)
		cfg := sim.RealisticConfig()
		cfg.Protocol = 1 // coherence.ProtoUpdate
		b := archResult(t, cfg, prog)
		if a != b {
			t.Fatalf("seed %d: update protocol diverges:\n%s\n%s", seed, a, b)
		}
	}
}

// TestDeterminism: identical configurations produce identical cycle counts
// and results — the whole simulator is deterministic by construction.
func TestDeterminism(t *testing.T) {
	prog := randomProgram(99, 50)
	runOnce := func() (uint64, string) {
		cfg := sim.RealisticConfig()
		cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}
		s := sim.New(cfg, []*isa.Program{prog})
		cycles, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cycles, fmt.Sprint(s.CoherentSnapshot())
	}
	c1, r1 := runOnce()
	c2, r2 := runOnce()
	if c1 != c2 || r1 != r2 {
		t.Errorf("nondeterministic run: %d vs %d cycles", c1, c2)
	}
}

// TestMultiProcDRFInvariance: a data-race-free two-processor handoff
// (producer/consumer through a release/acquire flag) must deliver identical
// consumer results under every model/technique — the DRF guarantee the
// paper's §5 relies on.
func TestMultiProcDRFInvariance(t *testing.T) {
	build := func(seed int64) (*isa.Program, *isa.Program) {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		pb := isa.NewBuilder()
		sum := int64(0)
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(50))
			sum += v
			pb.Li(isa.R1, v)
			pb.StoreAbs(isa.R1, int64(0x400+i))
		}
		pb.Li(isa.R2, 1)
		pb.ReleaseStoreAbs(isa.R2, 0x500)
		pb.Halt()
		cb := isa.NewBuilder()
		spin := cb.FreshLabel("spin")
		cb.Label(spin)
		cb.AcquireLoadAbs(isa.R1, 0x500)
		cb.Beqz(isa.R1, spin)
		cb.Li(isa.R10, 0)
		for i := 0; i < n; i++ {
			cb.LoadAbs(isa.R2, int64(0x400+i))
			cb.Add(isa.R10, isa.R10, isa.R2)
		}
		cb.StoreAbs(isa.R10, 0x600)
		cb.Halt()
		_ = sum
		return pb.Build(), cb.Build()
	}
	techs := []core.Technique{{}, {Prefetch: true, SpecLoad: true, ReissueOpt: true}}
	for seed := int64(50); seed < 55; seed++ {
		prod, cons := build(seed)
		var want int64 = -1
		for _, model := range core.AllModels {
			for _, tech := range techs {
				cfg := sim.RealisticConfig()
				cfg.Procs = 2
				cfg.Model = model
				cfg.Tech = tech
				s := sim.New(cfg, []*isa.Program{prod, cons})
				if _, err := s.Run(); err != nil {
					t.Fatal(err)
				}
				got := s.ReadCoherent(0x600)
				if want == -1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("seed %d %v/%v: consumer sum %d, want %d", seed, model, tech, got, want)
				}
			}
		}
	}
}
