package sim

import (
	"fmt"
	"strconv"
	"strings"

	"mcmsim/internal/network"
)

// IsMeshTopo reports whether a -topo spec names a mesh.
func IsMeshTopo(spec string) bool {
	return spec == "mesh" || strings.HasPrefix(spec, "mesh:")
}

// MeshDims resolves a mesh spec to its dimensions: "mesh" auto-sizes to
// the squarest W×H grid with at least procs tiles (W = ceil(sqrt(P)));
// "mesh:WxH" is explicit. Explicit dimensions may be smaller than the CPU
// count — tiles are then shared — but must be positive.
func MeshDims(spec string, procs int) (w, h int, err error) {
	if spec == "mesh" {
		w = 1
		for w*w < procs {
			w++
		}
		h = (procs + w - 1) / w
		if h < 1 {
			h = 1
		}
		return w, h, nil
	}
	dims, ok := strings.CutPrefix(spec, "mesh:")
	if !ok {
		return 0, 0, fmt.Errorf("sim: not a mesh topology spec: %q", spec)
	}
	ws, hs, ok := strings.Cut(dims, "x")
	if ok {
		w, err = strconv.Atoi(ws)
		if err == nil {
			h, err = strconv.Atoi(hs)
		}
	}
	if !ok || err != nil || w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("sim: bad mesh dimensions %q (want mesh:WxH)", spec)
	}
	return w, h, nil
}

// ValidateTopo rejects malformed -topo specs early (the CLIs call it before
// building machines; New panics instead, as it does for all bad configs).
func ValidateTopo(spec string, procs int) error {
	switch {
	case spec == "" || spec == "uniform":
		return nil
	case IsMeshTopo(spec):
		_, _, err := MeshDims(spec, procs)
		return err
	default:
		return fmt.Errorf("sim: unknown topology %q (want uniform, mesh, or mesh:WxH)", spec)
	}
}

// buildNetwork constructs the interconnect the config describes and
// normalizes the config's topology fields to their explicit values (so
// snapshots and warmup-cache keys capture the machine actually built).
func buildNetwork(cfg *Config) *network.Network {
	switch {
	case cfg.Topo == "" || cfg.Topo == "uniform":
		cfg.Topo = ""
		cfg.HopLatency, cfg.LinkGap = 0, 0
		return network.New(cfg.NetLatency)
	case IsMeshTopo(cfg.Topo):
		w, h, err := MeshDims(cfg.Topo, cfg.Procs)
		if err != nil {
			panic(err.Error())
		}
		if cfg.HopLatency == 0 {
			cfg.HopLatency = 10
		}
		if cfg.LinkGap == 0 {
			cfg.LinkGap = 1
		}
		cfg.Topo = fmt.Sprintf("mesh:%dx%d", w, h)
		m := network.NewMesh(w, h, cfg.HopLatency, cfg.LinkGap)
		tiles := m.Tiles()
		// DASH-style clusters: CPU i and home module i share a tile, so a
		// processor's slice of the distributed memory is one local hop away.
		// The write agent (harness-only traffic) sits on tile 0.
		for i := 0; i < cfg.Procs; i++ {
			m.Place(network.NodeID(i), i%tiles)
		}
		for j := 0; j < cfg.MemModules; j++ {
			m.Place(network.NodeID(cfg.Procs+j), j%tiles)
		}
		m.Place(network.NodeID(cfg.Procs+cfg.MemModules), 0)
		return network.NewWithTopology(m)
	default:
		panic(fmt.Sprintf("sim: unknown topology %q (want uniform, mesh, or mesh:WxH)", cfg.Topo))
	}
}
