package sim_test

import (
	"fmt"
	"log"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
	"mcmsim/internal/workload"
)

// ExampleRunProgram runs the paper's Example 1 (lock; write A; write B;
// unlock) on the abstract paper machine under sequential consistency,
// conventionally and with both techniques — reproducing the §3.3/§4.1
// headline: 301 cycles collapse to 103.
func ExampleRunProgram() {
	for _, tech := range []core.Technique{
		{}, // conventional: every delayed access serializes
		{Prefetch: true, SpecLoad: true, ReissueOpt: true}, // §3 + §4
	} {
		cfg := sim.PaperConfig()
		cfg.Model = core.SC
		cfg.Tech = tech

		cycles, err := sim.RunProgram(cfg, []*isa.Program{workload.Example1()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SC %-8v: %d cycles\n", tech, cycles)
	}
	// Output:
	// SC conv    : 301 cycles
	// SC pf+spec : 103 cycles
}

// ExampleSystem builds a two-processor machine by hand and runs a litmus
// program: processor 0 publishes data behind a release flag, processor 1
// spins with acquire loads and copies the data out. The architecturally
// visible result is read back through the coherent snapshot.
func ExampleSystem() {
	prod := isa.NewBuilder()
	prod.Li(isa.R1, 42)
	prod.StoreAbs(isa.R1, 0x200) // data = 42
	prod.Li(isa.R2, 1)
	prod.ReleaseStoreAbs(isa.R2, 0x100) // flag = 1 (release)
	prod.Halt()

	cons := isa.NewBuilder()
	cons.Label("spin")
	cons.AcquireLoadAbs(isa.R3, 0x100) // flag (acquire)
	cons.Beqz(isa.R3, "spin")
	cons.LoadAbs(isa.R4, 0x200)  // data
	cons.StoreAbs(isa.R4, 0x300) // result = data
	cons.Halt()

	cfg := sim.RealisticConfig()
	cfg.Procs = 2
	cfg.Model = core.RC
	cfg.Tech = core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}

	s := sim.New(cfg, []*isa.Program{prod.Build(), cons.Build()})
	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", s.ReadCoherent(0x300))
	// Output:
	// result: 42
}
