package machine_test

import (
	"strings"
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/machine"
	"mcmsim/internal/sim"
)

func TestBuilderDefaults(t *testing.T) {
	cfg, err := machine.New().Config()
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	base := sim.RealisticConfig()
	if cfg.Procs != base.Procs || cfg.Topo != "" || cfg.MemModules != 1 || cfg.DirPointers != 0 {
		t.Errorf("default machine deviates from the seed: procs=%d topo=%q homes=%d ptrs=%d",
			cfg.Procs, cfg.Topo, cfg.MemModules, cfg.DirPointers)
	}
}

func TestBuilderMeshAutoScaling(t *testing.T) {
	cases := []struct {
		cpus  int
		topo  string
		homes int
		ptrs  int
	}{
		{4, "mesh:2x2", 4, 0},   // small machine: full bit-vector is fine
		{16, "mesh:4x4", 16, 8}, // past 8 CPUs: limited pointers
		{64, "mesh:8x8", 64, 8},
		{256, "mesh:16x16", 256, 8},
	}
	for _, c := range cases {
		cfg, err := machine.New().CPUs(c.cpus).Topology("mesh").Config()
		if err != nil {
			t.Fatalf("cpus=%d: %v", c.cpus, err)
		}
		if cfg.Topo != c.topo || cfg.MemModules != c.homes || cfg.DirPointers != c.ptrs {
			t.Errorf("cpus=%d: got topo=%q homes=%d ptrs=%d, want %q/%d/%d",
				c.cpus, cfg.Topo, cfg.MemModules, cfg.DirPointers, c.topo, c.homes, c.ptrs)
		}
	}
}

func TestBuilderExplicitOverridesWin(t *testing.T) {
	cfg, err := machine.New().
		CPUs(64).
		Topology("mesh:4x16").
		MemModules(4).
		DirPointers(0).
		HopLatency(3).
		LinkGap(2).
		Model(core.RC).
		Config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	if cfg.Topo != "mesh:4x16" || cfg.MemModules != 4 || cfg.DirPointers != 0 ||
		cfg.HopLatency != 3 || cfg.LinkGap != 2 || cfg.Model != core.RC {
		t.Errorf("overrides lost: %+v", cfg)
	}
}

func TestBuilderErrorsLatch(t *testing.T) {
	_, err := machine.New().CPUs(0).Topology("mesh").Config()
	if err == nil || !strings.Contains(err.Error(), "CPU") {
		t.Errorf("CPUs(0) error = %v", err)
	}
	_, err = machine.New().Topology("torus").Config()
	if err == nil {
		t.Error("Topology(torus) accepted")
	}
	_, err = machine.New().CPUs(2).Build(make([]*isa.Program, 3))
	if err == nil || !strings.Contains(err.Error(), "programs") {
		t.Errorf("program-count mismatch error = %v", err)
	}
}

func TestFromConfigKeepsShape(t *testing.T) {
	base := sim.RealisticConfig()
	base.MemModules = 2
	base.DirPointers = 4
	cfg, err := machine.FromConfig(base).CPUs(16).Topology("mesh").Config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	if cfg.MemModules != 2 || cfg.DirPointers != 4 {
		t.Errorf("FromConfig auto-scaled explicit shape: homes=%d ptrs=%d", cfg.MemModules, cfg.DirPointers)
	}
}
