package machine_test

import (
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/machine"
	"mcmsim/internal/workload"
)

// Assemble a 16-CPU mesh multiprocessor and run a machine-wide sharing
// workload under release consistency with both latency-hiding techniques.
// The builder picks the scale-appropriate structure: a 4x4 mesh, one home
// memory module per tile, and a limited-pointer directory.
func Example() {
	b := machine.New().
		CPUs(16).
		Topology("mesh").
		Model(core.RC).
		Technique(core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true})

	cfg, err := b.Config()
	if err != nil {
		panic(err)
	}
	fmt.Printf("topology=%s homes=%d dirptrs=%d\n", cfg.Topo, cfg.MemModules, cfg.DirPointers)

	progs := make([]*isa.Program, 16)
	for p := range progs {
		progs[p] = workload.WideSharing(p, 16, 4, 2)
	}
	s, err := b.Build(progs)
	if err != nil {
		panic(err)
	}
	cycles, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("halted after %d cycles\n", cycles)
	// Output:
	// topology=mesh:4x4 homes=16 dirptrs=8
	// halted after 438 cycles
}
