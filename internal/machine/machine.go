// Package machine assembles simulated multiprocessors from a declarative
// description, in the spirit of mgpusim's component builders: callers name
// the machine they want (CPU count, topology, consistency model, technique)
// and the builder fills in the scale-appropriate structure — mesh
// dimensions, distributed home modules, limited-pointer directories —
// instead of every experiment hand-wiring sim.Config.
//
// The zero-argument path reproduces the repo's workload-experiment machine
// (sim.RealisticConfig); every option overrides one knob. Build validates
// the combination and returns the assembled sim.System.
package machine

import (
	"fmt"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/sim"
)

// autoDirPointers is the exact-pointer capacity mesh machines default to
// once they outgrow it; 8 pointers is the classic Dir_8_B sweet spot —
// small synchronized sharing sets stay exact, wide read-sharing overflows
// to the coarse vector.
const autoDirPointers = 8

// Builder accumulates a machine description. Methods chain; the first
// invalid option latches an error that Config/Build report.
type Builder struct {
	cfg        sim.Config
	memModules int // -1 = auto (mesh: one per CPU; uniform: one)
	dirPtrs    int // -1 = auto (mesh with > autoDirPointers CPUs: limited)
	err        error
}

// New starts a builder from the standard workload-experiment machine
// (4-word lines, realistic CPU, 100-cycle uniform miss) with one CPU.
func New() *Builder {
	return &Builder{cfg: sim.RealisticConfig(), memModules: -1, dirPtrs: -1}
}

// FromConfig starts a builder from an explicit base configuration; its
// MemModules and DirPointers are kept as set (no auto-scaling).
func FromConfig(cfg sim.Config) *Builder {
	return &Builder{cfg: cfg, memModules: cfg.MemModules, dirPtrs: cfg.DirPointers}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return b
}

// CPUs sets the processor count.
func (b *Builder) CPUs(n int) *Builder {
	if n < 1 {
		return b.fail("machine: need at least 1 CPU, got %d", n)
	}
	b.cfg.Procs = n
	return b
}

// Topology selects the interconnect: "uniform", "mesh" (auto-sized), or
// "mesh:WxH".
func (b *Builder) Topology(spec string) *Builder {
	if err := sim.ValidateTopo(spec, 1); err != nil {
		return b.fail("%s", err.Error())
	}
	b.cfg.Topo = spec
	return b
}

// HopLatency sets the mesh per-link latency (mesh topologies only).
func (b *Builder) HopLatency(cycles uint64) *Builder {
	b.cfg.HopLatency = cycles
	return b
}

// LinkGap sets the mesh per-link occupancy per message, in cycles.
func (b *Builder) LinkGap(cycles uint64) *Builder {
	b.cfg.LinkGap = cycles
	return b
}

// Model sets the memory consistency model.
func (b *Builder) Model(m core.Model) *Builder {
	b.cfg.Model = m
	return b
}

// Technique sets the latency-hiding technique combination.
func (b *Builder) Technique(t core.Technique) *Builder {
	b.cfg.Tech = t
	return b
}

// Protocol sets the coherence protocol.
func (b *Builder) Protocol(p coherence.Protocol) *Builder {
	b.cfg.Protocol = p
	return b
}

// MissLatency rescales the uniform network/memory latencies so a clean
// miss costs the given total (uniform topology; a mesh's miss cost is
// distance-dependent instead).
func (b *Builder) MissLatency(cycles uint64) *Builder {
	b.cfg = b.cfg.WithMissLatency(cycles)
	return b
}

// MemModules fixes the number of home directory/memory modules, overriding
// the topology default (one per CPU tile on a mesh, one on uniform).
func (b *Builder) MemModules(n int) *Builder {
	if n < 1 {
		return b.fail("machine: need at least 1 memory module, got %d", n)
	}
	b.memModules = n
	return b
}

// DirPointers fixes the directory's exact-pointer capacity (0 = unbounded
// full tracking), overriding the scale default.
func (b *Builder) DirPointers(n int) *Builder {
	if n < 0 {
		return b.fail("machine: negative directory pointer count %d", n)
	}
	b.dirPtrs = n
	return b
}

// DirBandwidth bounds the messages each home module services per cycle
// (0 = unlimited).
func (b *Builder) DirBandwidth(n int) *Builder {
	b.cfg.DirBandwidth = n
	return b
}

// MaxCycles sets the non-convergence abort budget.
func (b *Builder) MaxCycles(n uint64) *Builder {
	b.cfg.MaxCycles = n
	return b
}

// Config resolves the accumulated description to a concrete sim.Config:
// auto knobs are fixed to the machine's scale, and the combination is
// validated. The result is self-contained — sim.New(cfg, progs) builds the
// same machine Build would.
func (b *Builder) Config() (sim.Config, error) {
	if b.err != nil {
		return sim.Config{}, b.err
	}
	cfg := b.cfg
	if err := sim.ValidateTopo(cfg.Topo, cfg.Procs); err != nil {
		return sim.Config{}, err
	}
	mesh := sim.IsMeshTopo(cfg.Topo)
	if mesh {
		// Normalize auto-sized specs to the concrete geometry now so the
		// returned config names the machine exactly ("mesh" -> "mesh:4x4").
		w, h, err := sim.MeshDims(cfg.Topo, cfg.Procs)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Topo = fmt.Sprintf("mesh:%dx%d", w, h)
	}
	cfg.MemModules = b.memModules
	if b.memModules < 0 {
		// Mesh machines distribute memory DASH-style, one home per CPU
		// tile; the uniform machine keeps the seed's single home.
		if mesh {
			cfg.MemModules = cfg.Procs
		} else {
			cfg.MemModules = 1
		}
	}
	cfg.DirPointers = b.dirPtrs
	if b.dirPtrs < 0 {
		cfg.DirPointers = 0
		if mesh && cfg.Procs > autoDirPointers {
			cfg.DirPointers = autoDirPointers
		}
	}
	return cfg, nil
}

// Build assembles the machine running the given per-CPU programs.
func (b *Builder) Build(progs []*isa.Program) (*sim.System, error) {
	cfg, err := b.Config()
	if err != nil {
		return nil, err
	}
	if len(progs) != cfg.Procs {
		return nil, fmt.Errorf("machine: %d programs for %d CPUs", len(progs), cfg.Procs)
	}
	return sim.New(cfg, progs), nil
}
