package conformance

import (
	"strings"
	"testing"

	"mcmsim/internal/core"
)

// TestExactCoRR pins the first hole the exact oracle closes over the
// legacy superset: same-address read-read ordering. Two program-order
// loads of one variable can never observe new-then-old — the load queue
// issues head-only and same-line requests are served in order — yet the
// legacy model leaves same-address read pairs unordered wherever the
// model's arcs do not happen to order them (WC and both RC flavours).
func TestExactCoRR(t *testing.T) {
	p := Program{NAddr: 1, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}},
		{{Kind: KLoad, Addr: 0}, {Kind: KLoad, Addr: 0}},
	}}
	newThenOld := out([][]int64{{}, {2, 0}}, []int64{2})
	for _, m := range core.AllModels {
		if set := oracleFor(t, p, m); set.Has(newThenOld) {
			t.Errorf("%v: exact oracle allows the new-then-old read pair", m)
		}
	}
	for _, m := range []core.Model{core.WC, core.RCsc, core.RC} {
		if set := legacyFor(t, p, m); !set.Has(newThenOld) {
			t.Errorf("%v: legacy oracle no longer admits new-then-old — it stopped being a strict superset here", m)
		}
	}
	// The simulator must side with the exact oracle: the full grid checks
	// every cell's outcome for containment in the exact set, which forbids
	// new-then-old under every model.
	if _, viols := CheckProgram(p, CheckOptions{}); len(viols) > 0 {
		for _, v := range viols {
			t.Errorf("%v", v)
		}
	}
}

// TestExactStoreFIFO pins the second hole: the store buffer issues writes
// in program order across addresses, not just per address. Under RC an
// ordinary store after a release carries no delay arc, so the legacy
// model lets it perform first; in the machine it cannot even issue until
// the release has issued, and the release's own arcs wait for everything
// older to perform. Observing the last store therefore proves the first
// store performed.
func TestExactStoreFIFO(t *testing.T) {
	p := Program{NAddr: 3, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}, {Kind: KStore, Addr: 2, Val: 4}},
		{{Kind: KAcquire, Addr: 2}, {Kind: KLoad, Addr: 0}},
	}}
	bad := out([][]int64{{}, {4, 0}}, []int64{2, 3, 4})
	for _, m := range core.AllModels {
		if set := oracleFor(t, p, m); set.Has(bad) {
			t.Errorf("%v: exact oracle allows the FIFO-violating outcome", m)
		}
	}
	for _, m := range []core.Model{core.RCsc, core.RC} {
		if set := legacyFor(t, p, m); !set.Has(bad) {
			t.Errorf("%v: legacy oracle no longer admits the FIFO-violating outcome — it stopped being a strict superset here", m)
		}
	}
	if _, viols := CheckProgram(p, CheckOptions{}); len(viols) > 0 {
		for _, v := range viols {
			t.Errorf("%v", v)
		}
	}
}

// TestOracleDifferential is the standing property check between the two
// reference models: over a batch of seeded random programs, the exact set
// is contained in the legacy superset for every model, and the two agree
// exactly under SC. A failure is 1-minimized before reporting.
func TestOracleDifferential(t *testing.T) {
	const programs = 120
	diverges := func(c Program, m core.Model) bool {
		if c.NumOps() == 0 {
			return false
		}
		exact, err := ModelOutcomes(c.Build(), c.SharedAddrs(), m)
		if err != nil {
			return false
		}
		legacy, err := LegacyModelOutcomes(c.Build(), c.SharedAddrs(), m)
		if err != nil {
			return false
		}
		if !exact.Subset(legacy) {
			return true
		}
		return m == core.SC && !legacy.Subset(exact)
	}
	for seed := int64(1); seed <= programs; seed++ {
		p := Generate(seed, Params{})
		for _, m := range core.AllModels {
			if !diverges(p, m) {
				continue
			}
			min := Minimize(p, func(c Program) bool { return diverges(c, m) })
			exact, _ := ModelOutcomes(min.Build(), min.SharedAddrs(), m)
			legacy, _ := LegacyModelOutcomes(min.Build(), min.SharedAddrs(), m)
			t.Fatalf("oracle differential failed under %v (seed %d); minimized reproducer:\n%v\nexact: %v\nlegacy: %v",
				m, seed, min, exact.Sorted(), legacy.Sorted())
		}
	}
}

// TestOracleStateCapHardError pins the cap semantics of both oracles: a
// state space over the cap is a hard error from Outcomes, never a
// silently truncated outcome set. The cap is set one below each oracle's
// measured state count for the same program, making the program
// just-over-cap by construction.
func TestOracleStateCapHardError(t *testing.T) {
	p := Generate(3, Params{})
	progs, shared := p.Build(), p.SharedAddrs()

	exact, err := NewExactOracle(progs, shared, core.RC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exact.Outcomes(); err != nil {
		t.Fatalf("under the default cap: %v", err)
	}
	capped, err := NewExactOracle(progs, shared, core.RC)
	if err != nil {
		t.Fatal(err)
	}
	capped.maxStates = len(exact.memo) - 1
	if _, err := capped.Outcomes(); err == nil {
		t.Errorf("exact oracle returned outcomes despite exceeding the state cap")
	} else if !strings.Contains(err.Error(), "state space exceeds") {
		t.Errorf("exact oracle cap error = %v, want a state-space message", err)
	}

	legacy, err := NewLegacyOracle(progs, shared, core.RC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.Outcomes(); err != nil {
		t.Fatalf("under the default cap: %v", err)
	}
	lcapped, err := NewLegacyOracle(progs, shared, core.RC)
	if err != nil {
		t.Fatal(err)
	}
	lcapped.maxStates = len(legacy.memo) - 1
	if _, err := lcapped.Outcomes(); err == nil {
		t.Errorf("legacy oracle returned outcomes despite exceeding the state cap")
	} else if !strings.Contains(err.Error(), "state space exceeds") {
		t.Errorf("legacy oracle cap error = %v, want a state-space message", err)
	}
}
