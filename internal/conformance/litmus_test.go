package conformance

import (
	"testing"

	"mcmsim/internal/core"
)

// legacyFor builds the legacy superset oracle's outcome set for an abstract
// program under m.
func legacyFor(t *testing.T, p Program, m core.Model) OutcomeSet {
	t.Helper()
	set, err := LegacyModelOutcomes(p.Build(), p.SharedAddrs(), m)
	if err != nil {
		t.Fatalf("legacy oracle(%v): %v", m, err)
	}
	return set
}

// litmusCase is one named litmus program with the exact oracle's expected
// verdict on its distinguishing relaxed outcome, per model.
type litmusCase struct {
	name    string
	prog    Program
	relaxed string              // the outcome that distinguishes the models
	allowed map[core.Model]bool // exact-oracle expectation for relaxed
}

// litmusCorpus is the named litmus suite: the classic shapes with their
// textbook per-model verdicts under this machine (single multi-copy-atomic
// memory, FIFO store buffers, precise retirement). IRIW needs four
// processors, one more than the fuzz codec can express, which is exactly
// why it is pinned here as a direct table entry.
func litmusCorpus() []litmusCase {
	forbidEverywhere := map[core.Model]bool{
		core.SC: false, core.PC: false, core.WC: false, core.RCsc: false, core.RC: false,
	}
	return []litmusCase{
		{
			// Dekker / store buffering: both processors read zero only if
			// each read bypasses its own processor's pending store.
			name: "SB",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 1}},
				{{Kind: KStore, Addr: 1, Val: 3}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{0}, {0}}, []int64{2, 3}),
			allowed: map[core.Model]bool{
				core.SC: false, core.PC: true, core.WC: true, core.RCsc: true, core.RC: true,
			},
		},
		{
			// Message passing, unsynchronized: flag observed but data stale.
			// PC forbids it too: writes stay ordered and reads stay ordered.
			name: "MP",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KStore, Addr: 1, Val: 3}},
				{{Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {3, 0}}, []int64{2, 3}),
			allowed: map[core.Model]bool{
				core.SC: false, core.PC: false, core.WC: true, core.RCsc: true, core.RC: true,
			},
		},
		{
			// Message passing across a release/acquire pair: forbidden under
			// every model the machine implements.
			name: "MP+sync",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}},
				{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {3, 0}}, []int64{2, 3}),
			allowed: forbidEverywhere,
		},
		{
			// Load buffering: both loads observe the other processor's later
			// store. The machine never speculates stores (a write issues only
			// after every older read has bound), so no model allows it.
			name: "LB",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 2}},
				{{Kind: KLoad, Addr: 1}, {Kind: KStore, Addr: 0, Val: 3}},
			}},
			relaxed: out([][]int64{{3}, {2}}, []int64{3, 2}),
			allowed: forbidEverywhere,
		},
		{
			// Write-to-read causality, three processors, unsynchronized: P2
			// sees P1's flag but not the datum P1 itself saw. Memory is
			// multi-copy atomic here, so the outcome needs P2's reads to
			// reorder — possible only where read-read arcs are absent.
			name: "WRC",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}},
				{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 3}},
				{{Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {2}, {3, 0}}, []int64{2, 3}),
			allowed: map[core.Model]bool{
				core.SC: false, core.PC: false, core.WC: true, core.RCsc: true, core.RC: true,
			},
		},
		{
			// WRC with the flag release/acquire synced: forbidden everywhere.
			name: "WRC+sync",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}},
				{{Kind: KLoad, Addr: 0}, {Kind: KRelease, Addr: 1, Val: 3}},
				{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {2}, {3, 0}}, []int64{2, 3}),
			allowed: forbidEverywhere,
		},
		{
			// IRIW, four processors: the two readers disagree on the order of
			// the two independent writes. Multi-copy-atomic memory means the
			// outcome needs read-read reordering at both readers.
			name: "IRIW",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}},
				{{Kind: KStore, Addr: 1, Val: 3}},
				{{Kind: KLoad, Addr: 0}, {Kind: KLoad, Addr: 1}},
				{{Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {}, {2, 0}, {3, 0}}, []int64{2, 3}),
			allowed: map[core.Model]bool{
				core.SC: false, core.PC: false, core.WC: true, core.RCsc: true, core.RC: true,
			},
		},
		{
			// IRIW with acquiring readers: acquires order with older acquires
			// under RC/RCsc and with everything under SC/PC/WC.
			name: "IRIW+acq",
			prog: Program{NAddr: 2, Ops: [][]Op{
				{{Kind: KStore, Addr: 0, Val: 2}},
				{{Kind: KStore, Addr: 1, Val: 3}},
				{{Kind: KAcquire, Addr: 0}, {Kind: KAcquire, Addr: 1}},
				{{Kind: KAcquire, Addr: 1}, {Kind: KAcquire, Addr: 0}},
			}},
			relaxed: out([][]int64{{}, {}, {2, 0}, {3, 0}}, []int64{2, 3}),
			allowed: forbidEverywhere,
		},
	}
}

// TestLitmusCorpusOracles pins the named corpus against both reference
// models: the exact oracle must give the textbook verdict on each case's
// distinguishing outcome for every model, the legacy superset must contain
// the exact set everywhere, and the two must coincide under SC.
func TestLitmusCorpusOracles(t *testing.T) {
	for _, tc := range litmusCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			for _, m := range core.AllModels {
				exact := oracleFor(t, tc.prog, m)
				legacy := legacyFor(t, tc.prog, m)
				if got, want := exact.Has(tc.relaxed), tc.allowed[m]; got != want {
					t.Errorf("%v: exact.Has(relaxed) = %v, want %v; set: %v",
						m, got, want, exact.Sorted())
				}
				if !exact.Subset(legacy) {
					t.Errorf("%v: exact set escapes the legacy superset\nexact: %v\nlegacy: %v",
						m, exact.Sorted(), legacy.Sorted())
				}
				if m == core.SC && !exact.Equal(legacy) {
					t.Errorf("SC: exact and legacy disagree\nexact: %v\nlegacy: %v",
						exact.Sorted(), legacy.Sorted())
				}
			}
		})
	}
}

// TestLitmusCorpusSimulator runs every corpus program (including the
// 4-processor IRIW pair, which the fuzz codec cannot reach) through the
// paper-timing grid: all models, techniques, and both protocols, checked
// against the exact oracle.
func TestLitmusCorpusSimulator(t *testing.T) {
	for _, tc := range litmusCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			_, viols := CheckProgram(tc.prog, CheckOptions{Quick: true})
			for _, v := range viols {
				t.Errorf("%v", v)
			}
		})
	}
}
