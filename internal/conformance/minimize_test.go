package conformance

import "testing"

// TestMinimizeFakePredicate drives the minimizer with a synthetic failure
// predicate — the program "fails" while processor 0 stores to A0 and
// processor 1 loads A0 — and checks it reaches the 2-op 1-minimal core.
func TestMinimizeFakePredicate(t *testing.T) {
	failing := func(p Program) bool {
		st, ld := false, false
		for _, op := range p.Ops[0] {
			if op.Kind == KStore && op.Addr == 0 {
				st = true
			}
		}
		for _, op := range p.Ops[1] {
			if op.Kind == KLoad && op.Addr == 0 {
				ld = true
			}
		}
		return st && ld
	}
	p := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KLoad, Addr: 1}, {Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}},
		{{Kind: KStore, Addr: 1, Val: 4}, {Kind: KLoad, Addr: 0}, {Kind: KLoad, Addr: 1}},
	}}
	if !failing(p) {
		t.Fatal("setup: seed program must fail")
	}
	m := Minimize(p, failing)
	if !failing(m) {
		t.Fatal("minimized program no longer fails")
	}
	if m.NumOps() != 2 {
		t.Fatalf("minimized to %d ops, want 2:\n%v", m.NumOps(), m)
	}
}

// TestMinimizeKeepsPassingUntouched: a predicate nothing satisfies leaves
// the program as-is (Minimize only commits reductions that still fail).
func TestMinimizeNoFalseReduction(t *testing.T) {
	p := Generate(3, Params{})
	m := Minimize(p, func(Program) bool { return false })
	if m.NumOps() != p.NumOps() {
		t.Fatalf("minimizer reduced a program whose reductions never fail")
	}
}
