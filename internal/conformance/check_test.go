package conformance

import (
	"reflect"
	"testing"
)

// TestCheckProgramLitmusGrid runs the full model x technique x timing grid
// on the classic litmus shapes — the hand-written core of what cmd/conform
// does at scale.
func TestCheckProgramLitmusGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	programs := map[string]Program{
		"SB": {NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 1}},
			{{Kind: KStore, Addr: 1, Val: 3}, {Kind: KLoad, Addr: 0}},
		}},
		"MP+sync": {NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}},
			{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
		}},
	}
	for name, p := range programs {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, viols := CheckProgram(p, CheckOptions{})
			for _, v := range viols {
				t.Errorf("%v", v)
			}
		})
	}
}

// TestCheckBatchSmoke runs a small random batch through the full grid.
func TestCheckBatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	rep := CheckBatch(1, 4, Params{}, 0, CheckOptions{}, nil)
	for _, v := range rep.Violations {
		t.Errorf("%v\nprogram:\n%v", v, v.Program)
	}
	if rep.Stats.Cells != 4*CellsPerProgram() {
		t.Errorf("cells = %d, want %d", rep.Stats.Cells, 4*CellsPerProgram())
	}
}

// TestCheckBatchDeterministicAcrossWorkers: the report must not depend on
// the worker count (results are collected in seed order).
func TestCheckBatchDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	a := CheckBatch(7, 3, Params{}, 1, CheckOptions{Quick: true}, nil)
	b := CheckBatch(7, 3, Params{}, 4, CheckOptions{Quick: true}, nil)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across worker counts:\n%+v\n%+v", a, b)
	}
}
