package conformance

import (
	"testing"

	"mcmsim/internal/isa"
)

// TestReproDeferredInvSuperseded is the minimized reproducer the conformance
// fuzzer found at generator seed 62 (PR 3). P1 speculatively acquires A1
// exclusively for its RMW, the line is recalled away before the atomic
// issues, and P0's invalidation then arrives while the atomic's refill is
// pending. The refill's grant version superseded the deferred invalidation,
// and the cache dropped it without notifying the client — so the
// speculative-load buffer never squashed the stale speculated value and the
// LSU panicked on the value mismatch ("RMW speculation mismatch without
// coherence event") under the relaxed models with speculative loads enabled.
// The fix delivers superseded deferred events as pure notifications before
// fill waiters complete.
func TestReproDeferredInvSuperseded(t *testing.T) {
	p := Program{NAddr: 3, Ops: [][]Op{
		{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 2}},
		{{Kind: KRMW, Addr: 0, Val: 3, RMW: isa.RMWFetchAdd}, {Kind: KRMW, Addr: 1, Val: 4, RMW: isa.RMWTestAndSet}},
		{{Kind: KLoad, Addr: 2}, {Kind: KLoad, Addr: 1}},
	}}
	_, viols := CheckProgram(p, CheckOptions{})
	for _, v := range viols {
		t.Errorf("%v", v)
	}
}

// TestReproForwardedLoadStaleAfterPerform is the minimized reproducer from
// generator seed 288 (found widening the conform batch to 512). P0's final
// acquire forwards 2 from its own release while the release is still
// buffered; the release then performs, P1's store to the same address
// invalidates the line, and the forwarded load — permanently exempt from
// coherence matches at the time — retired the stale 2 even though its
// older stores performed after P1's write, a non-SC outcome under SC (and
// a detector miss under every model with the prefetch technique). The fix
// ends the forwarding exemption when the source store completes
// (internal/core/lsu.go storeCompleted; pinned as a unit test in
// TestForwardedLoadSquashedAfterStorePerforms).
func TestReproForwardedLoadStaleAfterPerform(t *testing.T) {
	p := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KRelease, Addr: 0, Val: 2}, {Kind: KStore, Addr: 1, Val: 3}, {Kind: KStore, Addr: 1, Val: 4}, {Kind: KAcquire, Addr: 0}},
		{{Kind: KStore, Addr: 0, Val: 5}, {Kind: KRMW, Addr: 1, Val: 6, RMW: isa.RMWFetchAdd}},
	}}
	_, viols := CheckProgram(p, CheckOptions{})
	for _, v := range viols {
		t.Errorf("%v", v)
	}
}
