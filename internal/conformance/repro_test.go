package conformance

import (
	"testing"

	"mcmsim/internal/isa"
)

// TestReproDeferredInvSuperseded is the minimized reproducer the conformance
// fuzzer found at generator seed 62 (PR 3). P1 speculatively acquires A1
// exclusively for its RMW, the line is recalled away before the atomic
// issues, and P0's invalidation then arrives while the atomic's refill is
// pending. The refill's grant version superseded the deferred invalidation,
// and the cache dropped it without notifying the client — so the
// speculative-load buffer never squashed the stale speculated value and the
// LSU panicked on the value mismatch ("RMW speculation mismatch without
// coherence event") under the relaxed models with speculative loads enabled.
// The fix delivers superseded deferred events as pure notifications before
// fill waiters complete.
func TestReproDeferredInvSuperseded(t *testing.T) {
	p := Program{NAddr: 3, Ops: [][]Op{
		{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 2}},
		{{Kind: KRMW, Addr: 0, Val: 3, RMW: isa.RMWFetchAdd}, {Kind: KRMW, Addr: 1, Val: 4, RMW: isa.RMWTestAndSet}},
		{{Kind: KLoad, Addr: 2}, {Kind: KLoad, Addr: 1}},
	}}
	_, viols := CheckProgram(p, CheckOptions{})
	for _, v := range viols {
		t.Errorf("%v", v)
	}
}
