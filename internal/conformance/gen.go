// Package conformance is the model-conformance fuzzing tier: a seeded
// random litmus-program generator, an exhaustive reference oracle that
// enumerates every outcome a consistency model allows, and a driver that
// runs each generated program through the full simulator across the
// model x technique x timing grid and checks the paper's invariants
// (§4.2, §5.2, §6):
//
//   - every outcome of an SC configuration is in the exhaustive SC
//     outcome set;
//   - prefetching and speculative loads never produce an outcome the
//     base model's conventional delay arcs forbid;
//   - the idle-cycle fast-forward scheduler is observationally identical
//     to dense stepping;
//   - the SC-violation detector's certificate holds: zero detections
//     implies the execution was sequentially consistent.
//
// Any divergence is a real simulator bug; the package minimizes the
// failing program before reporting it.
package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"mcmsim/internal/isa"
)

// Memory layout of generated programs. Shared variables are spaced a full
// 64-word stride apart so they never share a cache line at any LineWords
// the simulator uses; observation slots live in a disjoint region.
const (
	sharedBase   = 0x300
	sharedStride = 0x40
	obsBase      = 0xA00
	obsProcBase  = 0x100 // per-processor observation region stride
	obsSlotSize  = 0x10
)

// Generator bounds. MaxTotalOps keeps the oracle's state space tractable
// (ISSUE: ~10-op programs); MaxProcOps bounds one processor's share.
const (
	MaxProcs    = 3
	MaxAddrs    = 4
	MaxProcOps  = 5
	MaxTotalOps = 12
)

// OpKind enumerates the generated operation kinds.
type OpKind uint8

// Generated operation kinds.
const (
	KLoad OpKind = iota
	KStore
	KAcquire
	KRelease
	KRMW
	KPrefetch
	KPrefetchEx
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case KLoad:
		return "ld"
	case KStore:
		return "st"
	case KAcquire:
		return "ld.acq"
	case KRelease:
		return "st.rel"
	case KRMW:
		return "rmw"
	case KPrefetch:
		return "pf"
	case KPrefetchEx:
		return "pf.x"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one generated operation: a kind, a shared-variable index, and for
// writes the stored value (or the RMW operand and flavour).
type Op struct {
	Kind OpKind
	Addr int // index into the shared-variable set
	Val  int64
	RMW  isa.RMWKind
}

// Program is an abstract multi-processor litmus program: per-processor
// straight-line operation lists over a small set of shared variables.
// Build lowers it onto the ISA; the oracle enumerates its allowed
// outcomes; Check runs it through the simulator grid.
type Program struct {
	Seed  int64 // generator seed, for reproducers (0 for decoded inputs)
	NAddr int
	Ops   [][]Op
}

// Params bounds the generator. Zero values select the defaults noted.
type Params struct {
	Procs   int // processors; 0 = random in [2, MaxProcs]
	Addrs   int // shared variables; 0 = random in [2, MaxAddrs]
	ProcOps int // max ops per processor; 0 = MaxProcOps
}

// Generate draws one random program. The same seed always yields the same
// program (math/rand's deterministic stream), which is what makes every
// conformance failure reproducible from its seed alone.
func Generate(seed int64, params Params) Program {
	rng := rand.New(rand.NewSource(seed))
	procs := params.Procs
	if procs <= 0 {
		procs = 2 + rng.Intn(MaxProcs-1)
	}
	naddr := params.Addrs
	if naddr <= 0 {
		naddr = 2 + rng.Intn(MaxAddrs-1)
	}
	maxOps := params.ProcOps
	if maxOps <= 0 {
		maxOps = MaxProcOps
	}
	p := Program{Seed: seed, NAddr: naddr, Ops: make([][]Op, procs)}
	total := 0
	nextVal := int64(2) // 1 is test-and-set's stored value; keep constants distinct
	for i := range p.Ops {
		n := 1 + rng.Intn(maxOps)
		if rem := MaxTotalOps - total; n > rem {
			n = rem
		}
		for k := 0; k < n; k++ {
			op := Op{Addr: rng.Intn(naddr)}
			switch draw := rng.Intn(100); {
			case draw < 30:
				op.Kind = KLoad
			case draw < 58:
				op.Kind = KStore
			case draw < 68:
				op.Kind = KAcquire
			case draw < 78:
				op.Kind = KRelease
			case draw < 90:
				op.Kind = KRMW
				op.RMW = isa.RMWKind(rng.Intn(3))
			case draw < 95:
				op.Kind = KPrefetch
			default:
				op.Kind = KPrefetchEx
			}
			if op.Kind == KStore || op.Kind == KRelease || op.Kind == KRMW {
				op.Val = nextVal
				nextVal++
			}
			p.Ops[i] = append(p.Ops[i], op)
		}
		total += len(p.Ops[i])
	}
	return p
}

// SharedAddr returns the word address of shared variable i.
func SharedAddr(i int) uint64 { return sharedBase + uint64(i)*sharedStride }

// ObsSlot returns the observation-slot address for the k-th
// register-binding read (load, acquire, or RMW) of processor p.
func ObsSlot(p, k int) uint64 {
	return obsBase + uint64(p)*obsProcBase + uint64(k)*obsSlotSize
}

// SharedAddrs lists the program's shared-variable addresses.
func (p Program) SharedAddrs() []uint64 {
	out := make([]uint64, p.NAddr)
	for i := range out {
		out[i] = SharedAddr(i)
	}
	return out
}

// NumReads returns the number of register-binding reads of processor i.
func (p Program) NumReads(i int) int {
	n := 0
	for _, op := range p.Ops[i] {
		if op.Kind == KLoad || op.Kind == KAcquire || op.Kind == KRMW {
			n++
		}
	}
	return n
}

// Build lowers the abstract program onto the ISA. Each processor performs
// its operations in order, keeps every read's value in a dedicated
// register, then deposits the observed values into its observation slots
// (the LitR0/LitR1 idiom of internal/workload) and halts. The observation
// stores touch only processor-private addresses, so they never perturb the
// shared-memory behaviour under test.
func (p Program) Build() []*isa.Program {
	progs := make([]*isa.Program, len(p.Ops))
	for i, ops := range p.Ops {
		b := isa.NewBuilder()
		nextReg := isa.R1
		var obsRegs []isa.Reg
		for _, op := range ops {
			addr := int64(SharedAddr(op.Addr))
			switch op.Kind {
			case KLoad:
				b.LoadAbs(nextReg, addr)
				obsRegs = append(obsRegs, nextReg)
				nextReg++
			case KAcquire:
				b.AcquireLoadAbs(nextReg, addr)
				obsRegs = append(obsRegs, nextReg)
				nextReg++
			case KStore:
				b.Li(nextReg, op.Val)
				b.StoreAbs(nextReg, addr)
				nextReg++
			case KRelease:
				b.Li(nextReg, op.Val)
				b.ReleaseStoreAbs(nextReg, addr)
				nextReg++
			case KRMW:
				src := nextReg
				b.Li(src, op.Val)
				nextReg++
				b.RMW(op.RMW, nextReg, src, isa.R0, addr)
				obsRegs = append(obsRegs, nextReg)
				nextReg++
			case KPrefetch:
				b.PrefetchAbs(addr)
			case KPrefetchEx:
				b.PrefetchExAbs(addr)
			}
		}
		for k, r := range obsRegs {
			b.StoreAbs(r, int64(ObsSlot(i, k)))
		}
		b.Halt()
		progs[i] = b.Build()
	}
	return progs
}

// NumOps returns the total operation count.
func (p Program) NumOps() int {
	n := 0
	for _, ops := range p.Ops {
		n += len(ops)
	}
	return n
}

// String renders the abstract program, one processor per line.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d addrs=%d\n", p.Seed, p.NAddr)
	for i, ops := range p.Ops {
		fmt.Fprintf(&b, "  P%d:", i)
		for _, op := range ops {
			switch op.Kind {
			case KStore, KRelease:
				fmt.Fprintf(&b, " %s[A%d]=%d;", op.Kind, op.Addr, op.Val)
			case KRMW:
				fmt.Fprintf(&b, " rmw.%s[A%d],%d;", op.RMW, op.Addr, op.Val)
			default:
				fmt.Fprintf(&b, " %s[A%d];", op.Kind, op.Addr)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WithoutOp returns a copy of the program with operation idx of processor
// proc removed (the minimizer's one-step reduction). Empty processors are
// kept so processor indices remain stable.
func (p Program) WithoutOp(proc, idx int) Program {
	out := Program{Seed: p.Seed, NAddr: p.NAddr, Ops: make([][]Op, len(p.Ops))}
	for i, ops := range p.Ops {
		if i != proc {
			out.Ops[i] = append([]Op(nil), ops...)
			continue
		}
		out.Ops[i] = append(append([]Op(nil), ops[:idx]...), ops[idx+1:]...)
	}
	return out
}
