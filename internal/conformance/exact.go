package conformance

import (
	"encoding/binary"
	"fmt"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
)

// ExactOracle is the exact operational reference model, in the
// instantaneous-instruction-execution style: a monolithic multi-copy-atomic
// memory plus, per processor, a FIFO store buffer whose entries are the
// issued-but-unperformed writes. Where the LegacyOracle collapses each
// access to a single atomic "perform" step, the exact machine splits every
// write into two steps — issue (enter the store buffer) and perform (drain
// to memory) — which is precisely the structure of the simulator's LSU, so
// the enabledness rules below can mirror it clause for clause:
//
//   - perform-read (loads and acquires; one atomic step):
//     a. delay arcs: no older unperformed access blocks it under the model
//     (core.Blocks — the LSU's predicateOK over non-Done entries);
//     b. same-address read-read order: every older same-address read has
//     performed (the load queue issues head-only in program order and
//     the memory system serves same-line requests in order, so
//     same-address reads bind in program order under every model);
//     c. forwarding is forced, not optional: if any older same-address
//     write is unperformed, the read MUST bind the youngest one's value
//     (the LSU's dependence check never lets a load read memory past a
//     buffered store). An older unperformed RMW or a write whose data
//     is unbound stalls the read instead. With no pending write the
//     read binds memory.
//
//   - issue-write (stores, releases, RMWs enter the store buffer):
//     a. write FIFO: every older write has issued (nextStoreCandidate is
//     strict FIFO — an ineligible store blocks younger stores);
//     b. precise retirement: every older load and acquire has performed (a
//     store reaches the store buffer head only at ROB head, by which
//     point every older load has retired with its value bound);
//     c. delay arcs against every older unperformed access;
//     d. the store's data is bound.
//     Issuing changes no memory or binding — it only moves the write into
//     the buffer — but it is globally visible in one way: younger writes'
//     FIFO clause sees it. That is the paper's write pipelining: a release
//     may sit unperformed while younger ordinary writes issue AND perform
//     behind it only if the model's arcs say so; under RC they do not wait,
//     but the FIFO clause still forces issue order, which is what the
//     pinned store-FIFO litmus (TestExactStoreFIFO) observes.
//
//   - perform-write (an issued write drains to memory):
//     a. every older same-address write has performed (same-line requests
//     are served in order; different lines drain out of order through
//     the lockup-free cache).
//     An RMW binds its read from memory and applies its update in this one
//     atomic step.
//
// The state space is finite (two bits per op plus bounded memory/binding
// values), searched by the same memoized DFS as the legacy oracle. Every
// exact trace maps to a legacy trace by dropping issue steps, so
// exact ⊆ legacy holds model by model — the conformance driver asserts it
// on every program as a built-in differential — and under SC the issue
// step is unobservable (arcs delay everything younger anyway), so
// exact(SC) == legacy(SC).
type ExactOracle struct {
	model     core.Model
	procs     [][]oracleOp
	naddr     int
	nreads    []int
	maxStates int
	memo      map[string]struct{}
	out       OutcomeSet
}

// NewExactOracle extracts the abstract program (see extractOps) and wires
// up the exact two-phase search for model m.
func NewExactOracle(progs []*isa.Program, shared []uint64, m core.Model) (*ExactOracle, error) {
	procs, nreads, err := extractOps(progs, shared)
	if err != nil {
		return nil, err
	}
	return &ExactOracle{
		model:     m,
		procs:     procs,
		naddr:     len(shared),
		nreads:    nreads,
		maxStates: maxOracleStates,
	}, nil
}

// exactState extends the legacy state with per-processor issue masks: bit i
// of issued[p] is set once write op i has entered p's store buffer. Issued
// bits of performed writes stay set, so perf[p] & writeMask ⊆ issued[p].
type exactState struct {
	perf   []uint32
	issued []uint32
	mem    []int64
	binds  [][]int64
}

func (st *exactState) clone() *exactState {
	c := &exactState{
		perf:   append([]uint32(nil), st.perf...),
		issued: append([]uint32(nil), st.issued...),
		mem:    append([]int64(nil), st.mem...),
		binds:  make([][]int64, len(st.binds)),
	}
	for i, b := range st.binds {
		c.binds[i] = append([]int64(nil), b...)
	}
	return c
}

func (st *exactState) key() string {
	var b []byte
	for i := range st.perf {
		b = binary.LittleEndian.AppendUint32(b, st.perf[i])
		b = binary.LittleEndian.AppendUint32(b, st.issued[i])
	}
	for _, v := range st.mem {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	for _, pb := range st.binds {
		for _, v := range pb {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	return string(b)
}

// isReadOnly reports whether op is a load or acquire (binds a value without
// writing). RMWs are write-class for scheduling: they live in the store
// buffer and bind their read at perform time.
func isReadOnly(op oracleOp) bool {
	return op.class.IsRead() && op.op != isa.OpRMW
}

// arcsPermit checks Figure 1's delay arcs for op i of processor p against
// every older unperformed access (issued-but-unperformed writes still
// block: the LSU's predicate tests Done, not issued).
func (o *ExactOracle) arcsPermit(st *exactState, p, i int) bool {
	ops := o.procs[p]
	for j := 0; j < i; j++ {
		if st.perf[p]&(1<<j) != 0 {
			continue
		}
		if core.Blocks(o.model, ops[j].class, ops[i].class) {
			return false
		}
	}
	return true
}

// enabledRead implements the perform-read step's enabledness and resolves
// the forwarding source: fwd >= 0 forces a bind from that op's data.
func (o *ExactOracle) enabledRead(st *exactState, p, i int) (ok bool, fwd int) {
	ops := o.procs[p]
	cur := ops[i]
	if !o.arcsPermit(st, p, i) {
		return false, -1
	}
	for j := 0; j < i; j++ {
		if st.perf[p]&(1<<j) != 0 {
			continue
		}
		if ops[j].class.IsRead() && ops[j].addr == cur.addr {
			return false, -1 // same-address reads bind in program order
		}
	}
	// Store-buffer dependence check: youngest older unperformed
	// same-address write wins; forwarding from it is mandatory.
	for j := i - 1; j >= 0; j-- {
		if st.perf[p]&(1<<j) != 0 || ops[j].addr != cur.addr || !ops[j].class.IsWrite() {
			continue
		}
		if ops[j].op == isa.OpRMW {
			return false, -1 // atomics never forward
		}
		if !ops[j].data.IsConst() && !readPerformed(o.procs, st.perf, p, ops[j].data.FromLoad) {
			return false, -1 // forwarding source's data not yet available
		}
		return true, j
	}
	return true, -1
}

// enabledIssue implements the issue-write step's enabledness.
func (o *ExactOracle) enabledIssue(st *exactState, p, i int) bool {
	ops := o.procs[p]
	for j := 0; j < i; j++ {
		if ops[j].class.IsWrite() && st.issued[p]&(1<<j) == 0 {
			return false // store buffer issues strictly FIFO
		}
		if st.perf[p]&(1<<j) != 0 {
			continue
		}
		if isReadOnly(ops[j]) {
			return false // ROB head: every older load has bound
		}
		if core.Blocks(o.model, ops[j].class, ops[i].class) {
			return false
		}
	}
	if !ops[i].data.IsConst() && !readPerformed(o.procs, st.perf, p, ops[i].data.FromLoad) {
		return false // store data not yet available
	}
	return true
}

// enabledDrain implements the perform-write step's enabledness for an
// already-issued write.
func (o *ExactOracle) enabledDrain(st *exactState, p, i int) bool {
	ops := o.procs[p]
	for j := 0; j < i; j++ {
		if st.perf[p]&(1<<j) != 0 {
			continue
		}
		if ops[j].class.IsWrite() && ops[j].addr == ops[i].addr {
			return false // same-address writes drain in program order
		}
	}
	return true
}

// performRead binds op i of processor p on a copy of st.
func (o *ExactOracle) performRead(st *exactState, p, i, fwd int) *exactState {
	ns := st.clone()
	op := o.procs[p][i]
	if fwd >= 0 {
		ns.binds[p][op.read] = resolveData(ns.binds, p, o.procs[p][fwd].data)
	} else {
		ns.binds[p][op.read] = ns.mem[op.addr]
	}
	ns.perf[p] |= 1 << i
	return ns
}

// issueWrite moves op i of processor p into the store buffer on a copy.
func (o *ExactOracle) issueWrite(st *exactState, p, i int) *exactState {
	ns := st.clone()
	ns.issued[p] |= 1 << i
	return ns
}

// performWrite drains issued op i of processor p to memory on a copy.
func (o *ExactOracle) performWrite(st *exactState, p, i int) *exactState {
	ns := st.clone()
	op := o.procs[p][i]
	if op.op == isa.OpRMW {
		old := ns.mem[op.addr]
		ns.mem[op.addr] = op.rmw.Apply(old, resolveData(ns.binds, p, op.data))
		ns.binds[p][op.read] = old
	} else {
		ns.mem[op.addr] = resolveData(ns.binds, p, op.data)
	}
	ns.perf[p] |= 1 << i
	return ns
}

// Outcomes runs the exhaustive search and returns exactly the outcomes the
// model allows. A state space above the cap is a hard error, never a
// truncated set.
func (o *ExactOracle) Outcomes() (OutcomeSet, error) {
	o.memo = make(map[string]struct{})
	o.out = make(OutcomeSet)
	st := &exactState{
		perf:   make([]uint32, len(o.procs)),
		issued: make([]uint32, len(o.procs)),
		mem:    make([]int64, o.naddr),
		binds:  make([][]int64, len(o.procs)),
	}
	for p := range st.binds {
		st.binds[p] = make([]int64, o.nreads[p])
	}
	if err := o.search(st); err != nil {
		return nil, err
	}
	return o.out, nil
}

// search explores every interleaving of enabled steps. The oldest
// unperformed op of any processor is always eventually steppable (its
// older ops are all performed, hence issued), so no reachable non-final
// state is stuck and every DFS branch extends to a complete outcome.
func (o *ExactOracle) search(st *exactState) error {
	k := st.key()
	if _, seen := o.memo[k]; seen {
		return nil
	}
	if len(o.memo) >= o.maxStates {
		return fmt.Errorf("conformance: oracle state space exceeds %d states", o.maxStates)
	}
	o.memo[k] = struct{}{}
	done := true
	for p := range o.procs {
		for i := range o.procs[p] {
			if st.perf[p]&(1<<i) != 0 {
				continue
			}
			done = false
			op := o.procs[p][i]
			switch {
			case isReadOnly(op):
				if ok, fwd := o.enabledRead(st, p, i); ok {
					if err := o.search(o.performRead(st, p, i, fwd)); err != nil {
						return err
					}
				}
			case st.issued[p]&(1<<i) == 0:
				if o.enabledIssue(st, p, i) {
					if err := o.search(o.issueWrite(st, p, i)); err != nil {
						return err
					}
				}
			default:
				if o.enabledDrain(st, p, i) {
					if err := o.search(o.performWrite(st, p, i)); err != nil {
						return err
					}
				}
			}
		}
	}
	if done {
		o.out[outcomeString(st.binds, st.mem)] = struct{}{}
	}
	return nil
}

// ModelOutcomes is the one-call convenience wrapper for the exact oracle:
// extract, search, return the outcome set for model m. This is the
// conformance tier's containment reference; LegacyModelOutcomes keeps the
// superset model available for the differential cross-check.
func ModelOutcomes(progs []*isa.Program, shared []uint64, m core.Model) (OutcomeSet, error) {
	o, err := NewExactOracle(progs, shared, m)
	if err != nil {
		return nil, err
	}
	return o.Outcomes()
}
