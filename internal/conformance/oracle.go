package conformance

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
)

// The legacy oracle is an operational reference model: an abstract machine
// with a single multi-copy-atomic memory and per-processor op lists, where
// one enabled operation performs atomically per step. Exhaustive memoized
// DFS over the interleavings of enabled operations yields a superset of the
// final outcomes the consistency model allows.
//
// An operation is enabled exactly when the LSU's issue conditions would let
// it perform with every older-but-unperformed access still outstanding:
//
//   - Figure 1's delay arcs (core.Blocks) against every older unperformed
//     op — this is the whole per-model difference; under SC every arc
//     blocks, so the oracle degenerates to exact program-order
//     interleavings;
//   - writes (stores, releases, RMWs) additionally wait for all older
//     reads (precise retirement: the store buffer accepts a store only at
//     ROB head, by which point every older load has bound) and for older
//     same-address writes (the store buffer is FIFO, so same-line writes
//     perform in program order);
//   - a plain or acquire read with a youngest older unperformed
//     same-address plain store binds that store's value by forwarding —
//     the read performs early, the store stays pending (read-own-write-
//     early, §2's "read bypasses write" relaxation). A pending older
//     same-address RMW blocks the read instead: atomics never forward.
//
// Two deliberate over-approximations make this a strict superset for the
// relaxed models while leaving SC exact (both are gated behind arcs that
// block under SC): same-address read-read pairs are unordered, and the
// store-buffer write-FIFO is modeled only per address, not across
// addresses. The ExactOracle (exact.go) closes both holes; the legacy
// oracle is kept as a differential cross-check — every fuzz run asserts
// exact ⊆ legacy, so a bug in either model surfaces as a containment
// failure.

// oracleOp is one abstract operation of the reference machine.
type oracleOp struct {
	class core.AccessClass
	op    isa.Op
	addr  int // shared-variable index
	data  isa.DataRef
	rmw   isa.RMWKind
	read  int // per-processor read-binding index, or -1
}

// maxOracleStates bounds the memo table; the generator's MaxTotalOps keeps
// real programs far below it, so hitting the cap means a harness bug. The
// cap is a hard error from Outcomes, never a silent truncation: a truncated
// outcome set would turn containment checks into false violations (or,
// worse, false passes for the differential).
const maxOracleStates = 1 << 22

// ErrNotAnalyzable reports a program outside the oracle's fragment (not
// straight-line, or a register-binding read from a non-shared address).
var ErrNotAnalyzable = errors.New("conformance: program not analyzable by the oracle")

// LegacyOracle enumerates a superset of the outcomes one consistency model
// allows for one program. Build it once per (program, model) pair; Outcomes
// runs the search.
type LegacyOracle struct {
	model     core.Model
	procs     [][]oracleOp
	naddr     int
	nreads    []int
	maxStates int
	memo      map[string]struct{}
	out       OutcomeSet
}

// OutcomeSet is a set of canonical outcome strings (see outcomeString).
type OutcomeSet map[string]struct{}

// Has reports membership.
func (s OutcomeSet) Has(o string) bool { _, ok := s[o]; return ok }

// Sorted returns the outcomes in lexicographic order.
func (s OutcomeSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Subset reports whether every outcome of s is in t.
func (s OutcomeSet) Subset(t OutcomeSet) bool {
	for o := range s {
		if !t.Has(o) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same outcomes.
func (s OutcomeSet) Equal(t OutcomeSet) bool {
	return len(s) == len(t) && s.Subset(t)
}

// extractOps builds the abstract per-processor op lists from the built ISA
// programs. shared lists the shared-variable addresses (index order defines
// variable numbering). Operations on other addresses are processor-private
// scaffolding (observation-slot stores) and are dropped; prefetches are
// non-binding hints and are dropped too. A register-binding read from a
// private address would make outcome extraction ambiguous, so it is
// rejected with ErrNotAnalyzable.
func extractOps(progs []*isa.Program, shared []uint64) (procs [][]oracleOp, nreads []int, err error) {
	idx := make(map[uint64]int, len(shared))
	for i, a := range shared {
		idx[a] = i
	}
	procs = make([][]oracleOp, len(progs))
	nreads = make([]int, len(progs))
	for p, prog := range progs {
		mops, ok := prog.MemOps()
		if !ok {
			return nil, nil, fmt.Errorf("%w: P%d is not straight-line", ErrNotAnalyzable, p)
		}
		// Remap MemOp read indices to the kept-op read numbering. Since
		// binding reads from private addresses are rejected, the map is
		// the identity, but building it keeps the invariant explicit.
		readMap := make(map[int]int)
		reads := 0
		for _, mo := range mops {
			if mo.Op == isa.OpPrefetch || mo.Op == isa.OpPrefetchEx {
				continue
			}
			ai, isShared := idx[mo.Addr]
			if !isShared {
				if mo.IsRead() {
					return nil, nil, fmt.Errorf("%w: P%d reads private address %#x", ErrNotAnalyzable, p, mo.Addr)
				}
				continue // observation-slot store: no shared-memory effect
			}
			oop := oracleOp{
				class: core.ClassOfOp(mo.Op),
				op:    mo.Op,
				addr:  ai,
				rmw:   mo.RMW,
				read:  -1,
			}
			if mo.IsWrite() {
				d := mo.Data
				if !d.IsConst() {
					r, ok := readMap[d.FromLoad]
					if !ok {
						return nil, nil, fmt.Errorf("%w: P%d store data from dropped read %d", ErrNotAnalyzable, p, d.FromLoad)
					}
					d.FromLoad = r
				}
				oop.data = d
			}
			if mo.IsRead() {
				readMap[mo.ReadIdx] = reads
				oop.read = reads
				reads++
			}
			procs[p] = append(procs[p], oop)
			if len(procs[p]) > 16 {
				return nil, nil, fmt.Errorf("%w: P%d has more than 16 shared ops", ErrNotAnalyzable, p)
			}
		}
		nreads[p] = reads
	}
	return procs, nreads, nil
}

// NewLegacyOracle extracts the abstract program (see extractOps) and wires
// up the superset search for model m.
func NewLegacyOracle(progs []*isa.Program, shared []uint64, m core.Model) (*LegacyOracle, error) {
	procs, nreads, err := extractOps(progs, shared)
	if err != nil {
		return nil, err
	}
	return &LegacyOracle{
		model:     m,
		procs:     procs,
		naddr:     len(shared),
		nreads:    nreads,
		maxStates: maxOracleStates,
	}, nil
}

// oracleState is the abstract machine state during the search.
type oracleState struct {
	mask  []uint32  // per-proc bitmask of performed ops
	mem   []int64   // shared memory image
	binds [][]int64 // per-proc read bindings (valid once the read performed)
}

func (st *oracleState) clone() *oracleState {
	c := &oracleState{
		mask:  append([]uint32(nil), st.mask...),
		mem:   append([]int64(nil), st.mem...),
		binds: make([][]int64, len(st.binds)),
	}
	for i, b := range st.binds {
		c.binds[i] = append([]int64(nil), b...)
	}
	return c
}

func (st *oracleState) key() string {
	var b []byte
	for _, m := range st.mask {
		b = binary.LittleEndian.AppendUint32(b, m)
	}
	for _, v := range st.mem {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	for _, pb := range st.binds {
		for _, v := range pb {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	return string(b)
}

// readPerformed reports whether read-binding index r of processor p has its
// perform bit set in mask.
func readPerformed(procs [][]oracleOp, mask []uint32, p, r int) bool {
	for i, op := range procs[p] {
		if op.read == r {
			return mask[p]&(1<<i) != 0
		}
	}
	return false
}

// resolveData evaluates a data reference against processor p's bindings.
func resolveData(binds [][]int64, p int, d isa.DataRef) int64 {
	if d.IsConst() {
		return d.Const
	}
	return binds[p][d.FromLoad]
}

// enabled reports whether op i of processor p may perform in state st, and
// if it is a read that must forward, the index of the source store.
func (o *LegacyOracle) enabled(st *oracleState, p, i int) (ok bool, fwd int) {
	ops := o.procs[p]
	cur := ops[i]
	mask := st.mask[p]
	fwd = -1
	// Figure 1 delay arcs against every older outstanding access.
	for j := 0; j < i; j++ {
		if mask&(1<<j) != 0 {
			continue
		}
		if core.Blocks(o.model, ops[j].class, cur.class) {
			return false, -1
		}
	}
	if cur.class.IsWrite() {
		for j := 0; j < i; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			if ops[j].class.IsRead() {
				return false, -1 // precise retirement: writes wait for older reads
			}
			if ops[j].addr == cur.addr {
				return false, -1 // FIFO store buffer: same-address writes in order
			}
		}
		if !cur.data.IsConst() && !readPerformed(o.procs, st.mask, p, cur.data.FromLoad) {
			return false, -1 // store data not yet available
		}
		return true, -1
	}
	// Plain or acquire read: check the store buffer for forwarding.
	for j := i - 1; j >= 0; j-- {
		if mask&(1<<j) != 0 || ops[j].addr != cur.addr || !ops[j].class.IsWrite() {
			continue
		}
		if ops[j].op == isa.OpRMW {
			return false, -1 // atomics never forward
		}
		if !ops[j].data.IsConst() && !readPerformed(o.procs, st.mask, p, ops[j].data.FromLoad) {
			return false, -1 // forwarding source's data not yet available
		}
		return true, j
	}
	return true, -1
}

// perform applies op i of processor p to a copy of st and returns it.
func (o *LegacyOracle) perform(st *oracleState, p, i, fwd int) *oracleState {
	ns := st.clone()
	op := o.procs[p][i]
	switch {
	case op.op == isa.OpRMW:
		old := ns.mem[op.addr]
		ns.mem[op.addr] = op.rmw.Apply(old, resolveData(ns.binds, p, op.data))
		ns.binds[p][op.read] = old
	case op.class.IsWrite():
		ns.mem[op.addr] = resolveData(ns.binds, p, op.data)
	case fwd >= 0:
		ns.binds[p][op.read] = resolveData(ns.binds, p, o.procs[p][fwd].data)
	default:
		ns.binds[p][op.read] = ns.mem[op.addr]
	}
	ns.mask[p] |= 1 << i
	return ns
}

// Outcomes runs the exhaustive search and returns every outcome the model
// allows (plus the deliberate over-approximations documented above). A
// state space above the cap is a hard error, never a truncated set.
func (o *LegacyOracle) Outcomes() (OutcomeSet, error) {
	o.memo = make(map[string]struct{})
	o.out = make(OutcomeSet)
	st := &oracleState{
		mask:  make([]uint32, len(o.procs)),
		mem:   make([]int64, o.naddr),
		binds: make([][]int64, len(o.procs)),
	}
	for p := range st.binds {
		st.binds[p] = make([]int64, o.nreads[p])
	}
	if err := o.search(st); err != nil {
		return nil, err
	}
	return o.out, nil
}

func (o *LegacyOracle) search(st *oracleState) error {
	k := st.key()
	if _, seen := o.memo[k]; seen {
		return nil
	}
	if len(o.memo) >= o.maxStates {
		return fmt.Errorf("conformance: oracle state space exceeds %d states", o.maxStates)
	}
	o.memo[k] = struct{}{}
	done := true
	for p := range o.procs {
		for i := range o.procs[p] {
			if st.mask[p]&(1<<i) != 0 {
				continue
			}
			done = false
			ok, fwd := o.enabled(st, p, i)
			if !ok {
				continue
			}
			if err := o.search(o.perform(st, p, i, fwd)); err != nil {
				return err
			}
		}
	}
	if done {
		o.out[outcomeString(st.binds, st.mem)] = struct{}{}
	}
	return nil
}

// outcomeString renders an outcome canonically: each processor's read
// bindings in program order, then the final shared-memory image. The
// driver renders the simulator's observed outcome with the same function,
// so set membership is plain string equality.
func outcomeString(binds [][]int64, mem []int64) string {
	var b strings.Builder
	for p, pb := range binds {
		if p > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "P%d:%v", p, pb)
	}
	fmt.Fprintf(&b, " mem:%v", mem)
	return b.String()
}

// LegacyModelOutcomes is the one-call convenience wrapper for the superset
// oracle: extract, search, return the outcome set for model m.
func LegacyModelOutcomes(progs []*isa.Program, shared []uint64, m core.Model) (OutcomeSet, error) {
	o, err := NewLegacyOracle(progs, shared, m)
	if err != nil {
		return nil, err
	}
	return o.Outcomes()
}
