package conformance

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/isa"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// The driver: run one generated program through the simulator across the
// model x technique x timing x protocol grid and check each cell against
// the exact oracle.
//
// Invariants checked per cell (model m, technique t, timing g, protocol c):
//
//  1. Containment: the observed outcome is in oracle(m), the exact
//     operational outcome set (exact.go). For m == SC this is the paper's
//     §1 baseline claim; for every m it implies techniques never add
//     outcomes the conventional model forbids (§4.2, §5.2), because
//     oracle(m) is computed from the conventional delay arcs alone. The
//     protocol axis must be invisible here: MSI and MESI only change when
//     a line is writable locally, never which values a read may bind.
//  2. Detector certificate: if the §6 detector reported zero possible
//     violations, the outcome is sequentially consistent — it is in
//     oracle(SC). The converse is deliberately NOT checked: the detector
//     is conservative (cache-line granular, speculative-buffer matches),
//     so it may fire on executions that happen to be SC.
//  3. Fast-forward transparency: for a sample of cells the same
//     configuration is re-run with DenseLoop set; halt cycle and outcome
//     must match exactly.
//
// Before any cell runs, the two reference models are cross-checked on the
// program: exact(m) ⊆ legacy(m) for every model and exact(SC) ==
// legacy(SC). The legacy oracle's deliberate over-approximations make
// these relations theorems (see exact.go), so any breach is a bug in one
// of the oracles and is reported as an "oracle-diff" violation.
//
// AdveHill and NST are deliberately outside the default grid: the former
// is a §6 comparator machine whose early-store-commit window is the very
// behaviour under study, the latter bypasses caching entirely; both are
// covered by their own tests.

// TechCell names one technique combination of the grid.
type TechCell struct {
	Name string
	Tech core.Technique
}

// GridTechs is the technique axis: conventional, prefetch alone,
// speculative loads (with the §4.2 reissue optimization), both combined
// (the paper's headline configuration), and speculation with the §4.1
// revalidate policy instead of reissue.
func GridTechs() []TechCell {
	return []TechCell{
		{"conv", core.Technique{}},
		{"pf", core.Technique{Prefetch: true}},
		{"spec", core.Technique{SpecLoad: true, ReissueOpt: true}},
		{"pf+spec", core.Technique{Prefetch: true, SpecLoad: true, ReissueOpt: true}},
		{"spec+reval", core.Technique{SpecLoad: true, Revalidate: true}},
	}
}

// TimingCell names one timing perturbation of the grid.
type TimingCell struct {
	Name string
	Cfg  func() sim.Config
}

// GridTimings is the timing axis: the paper's canonical 100-cycle miss,
// a near-hit machine (latency 24) that compresses every overlap window,
// and a congested distributed machine (latency 220, two interleaved home
// modules, one directory message per cycle) that stretches and reorders
// them.
func GridTimings() []TimingCell {
	return []TimingCell{
		{"paper", sim.PaperConfig},
		{"fast", func() sim.Config { return sim.PaperConfig().WithMissLatency(24) }},
		{"congested", func() sim.Config {
			c := sim.PaperConfig().WithMissLatency(220)
			c.MemModules = 2
			c.DirBandwidth = 1
			return c
		}},
	}
}

// GridProtocols is the coherence-protocol axis: the seed's MSI
// invalidation protocol and the MESI extension (exclusive-clean state,
// silent eviction, exclusive grant on a read to an uncached line). The
// update protocol is outside the default grid — read-exclusive prefetch
// and cached atomics are structurally unavailable under it, so it has its
// own experiments.
func GridProtocols() []coherence.Protocol {
	return []coherence.Protocol{coherence.ProtoInvalidate, coherence.ProtoMESI}
}

// protoName renders the protocol's grid-cell segment.
func protoName(p coherence.Protocol) string {
	switch p {
	case coherence.ProtoInvalidate:
		return "msi"
	case coherence.ProtoMESI:
		return "mesi"
	default:
		return p.String()
	}
}

// Violation is one failed invariant: the cell, what was observed, and why
// it is wrong. Program carries the abstract program for minimization.
type Violation struct {
	Program Program
	Cell    string // "model/tech/timing/proto"
	Kind    string // "containment" | "detector" | "dense" | "oracle-diff" | "error"
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Cell, v.Kind, v.Detail)
}

// CheckOptions trims the grid and sizes the machine. The zero value is the
// full grid on the program's own machine.
type CheckOptions struct {
	// Quick restricts the timing axis to the paper configuration and the
	// dense twins to SC/conv — the per-exec budget of the fuzz target.
	Quick bool
	// CPUs runs every cell on a machine with at least this many
	// processors: the litmus program occupies the first CPUs and the rest
	// run an immediate Halt. The padding CPUs never touch shared data, so
	// the oracle's exhaustive interleaving set stays that of the 2-3
	// processor program while the simulation exercises a full-size
	// machine. 0 = the program's processor count.
	CPUs int
	// Topo selects the interconnect for every cell: "" or "uniform" keeps
	// the timing axis's uniform-latency network; "mesh" / "mesh:WxH" runs
	// the grid on a mesh machine with one home module per tile and the
	// limited-pointer directory above 8 CPUs (the machine builder's scale
	// defaults).
	Topo string
	// Protocols restricts the protocol axis; nil runs the full
	// GridProtocols set.
	Protocols []coherence.Protocol
}

// idleProgram is the padding CPUs' program: halt immediately. Programs are
// immutable once built, so one instance serves every cell.
var idleProgram = isa.NewBuilder().Halt().Build()

// machineFor applies the options' machine shape to a cell config.
func machineFor(cfg sim.Config, progs []*isa.Program, opts CheckOptions) (sim.Config, []*isa.Program) {
	cfg.Procs = len(progs)
	if opts.CPUs > len(progs) {
		padded := make([]*isa.Program, opts.CPUs)
		copy(padded, progs)
		for i := len(progs); i < opts.CPUs; i++ {
			padded[i] = idleProgram
		}
		progs = padded
		cfg.Procs = opts.CPUs
	}
	if opts.Topo != "" && opts.Topo != "uniform" {
		cfg.Topo = opts.Topo
		cfg.MemModules = cfg.Procs
		if cfg.Procs > 8 {
			cfg.DirPointers = 8
		}
	}
	return cfg, progs
}

// cellResult is one simulator run's observables.
type cellResult struct {
	outcome    string
	cycles     uint64
	detections uint64
}

// runCell builds and runs one configuration and extracts the outcome.
func runCell(p Program, progs []*isa.Program, m core.Model, tech core.Technique, proto coherence.Protocol, cfg sim.Config, dense bool, opts CheckOptions) (cellResult, error) {
	cfg, progs = machineFor(cfg, progs, opts)
	cfg.Model = m
	cfg.Tech = tech
	cfg.Protocol = proto
	cfg.Tech.DetectSC = true // the §6 monitor is passive; always watch
	cfg.DenseLoop = dense
	s := sim.New(cfg, progs)
	cycles, err := s.Run()
	if err != nil {
		return cellResult{}, err
	}
	binds := make([][]int64, len(p.Ops))
	for i := range p.Ops {
		n := p.NumReads(i)
		binds[i] = make([]int64, n)
		for k := 0; k < n; k++ {
			binds[i][k] = s.ReadCoherent(ObsSlot(i, k))
		}
	}
	mem := make([]int64, p.NAddr)
	for a := range mem {
		mem[a] = s.ReadCoherent(SharedAddr(a))
	}
	var det uint64
	for _, u := range s.LSUs {
		det += u.SCViolations()
	}
	return cellResult{outcome: outcomeString(binds, mem), cycles: cycles, detections: det}, nil
}

// Stats aggregates what a check actually exercised — in particular how
// many cells produced an outcome outside the SC set. If Relaxed stays
// zero across a large batch the containment checks for the weak models
// are vacuous, so the driver surfaces it.
type Stats struct {
	Cells      int // fast-forward grid cells run
	Relaxed    int // cells whose outcome is outside oracle(SC)
	Detections int // cells where the §6 detector reported >= 1 possible violation
}

func (s *Stats) add(o Stats) {
	s.Cells += o.Cells
	s.Relaxed += o.Relaxed
	s.Detections += o.Detections
}

// CheckProgram runs the whole grid for one program and returns every
// violation found (empty = conformant). Oracle extraction failure is
// reported as a single "error" violation rather than an invariant breach.
func CheckProgram(p Program, opts CheckOptions) (Stats, []Violation) {
	var stats Stats
	progs := p.Build()
	shared := p.SharedAddrs()

	oracle := make(map[core.Model]OutcomeSet, len(core.AllModels))
	var viols []Violation
	for _, m := range core.AllModels {
		set, err := ModelOutcomes(progs, shared, m)
		if err != nil {
			return stats, []Violation{{Program: p, Cell: "oracle/" + m.String(), Kind: "error", Detail: err.Error()}}
		}
		oracle[m] = set
		// Built-in oracle differential: the legacy superset model must
		// contain the exact set for every model and coincide with it
		// under SC.
		legacy, err := LegacyModelOutcomes(progs, shared, m)
		if err != nil {
			return stats, []Violation{{Program: p, Cell: "oracle/" + m.String(), Kind: "error", Detail: err.Error()}}
		}
		if !set.Subset(legacy) {
			viols = append(viols, Violation{
				Program: p, Cell: "oracle/" + m.String(), Kind: "oracle-diff",
				Detail: fmt.Sprintf("exact set not contained in legacy superset; exact: %v legacy: %v",
					set.Sorted(), legacy.Sorted()),
			})
		} else if m == core.SC && !legacy.Subset(set) {
			viols = append(viols, Violation{
				Program: p, Cell: "oracle/" + m.String(), Kind: "oracle-diff",
				Detail: fmt.Sprintf("legacy SC set differs from exact SC set; exact: %v legacy: %v",
					set.Sorted(), legacy.Sorted()),
			})
		}
	}
	scSet := oracle[core.SC]

	timings := GridTimings()
	if opts.Quick {
		timings = timings[:1]
	}
	protocols := opts.Protocols
	if len(protocols) == 0 {
		protocols = GridProtocols()
	}

	for _, m := range core.AllModels {
		for _, tc := range GridTechs() {
			for _, tg := range timings {
				for _, proto := range protocols {
					cell := fmt.Sprintf("%s/%s/%s/%s", m, tc.Name, tg.Name, protoName(proto))
					res, err := runCell(p, progs, m, tc.Tech, proto, tg.Cfg(), false, opts)
					if err != nil {
						viols = append(viols, Violation{Program: p, Cell: cell, Kind: "error", Detail: err.Error()})
						continue
					}
					stats.Cells++
					if !scSet.Has(res.outcome) {
						stats.Relaxed++
					}
					if res.detections > 0 {
						stats.Detections++
					}
					if !oracle[m].Has(res.outcome) {
						viols = append(viols, Violation{
							Program: p, Cell: cell, Kind: "containment",
							Detail: fmt.Sprintf("outcome %q not allowed by %s; allowed: %v",
								res.outcome, m, oracle[m].Sorted()),
						})
					}
					if res.detections == 0 && !scSet.Has(res.outcome) {
						viols = append(viols, Violation{
							Program: p, Cell: cell, Kind: "detector",
							Detail: fmt.Sprintf("detector silent but outcome %q is not SC; SC set: %v",
								res.outcome, scSet.Sorted()),
						})
					}
					// Fast-forward transparency: dense twin of the paper-timing
					// cells for the boundary techniques (conv and pf+spec).
					if tg.Name == "paper" && (tc.Name == "conv" || tc.Name == "pf+spec") {
						if opts.Quick && !(m == core.SC && tc.Name == "conv") {
							continue
						}
						dres, derr := runCell(p, progs, m, tc.Tech, proto, tg.Cfg(), true, opts)
						if derr != nil {
							viols = append(viols, Violation{Program: p, Cell: cell + "/dense", Kind: "error", Detail: derr.Error()})
							continue
						}
						if dres.outcome != res.outcome || dres.cycles != res.cycles {
							viols = append(viols, Violation{
								Program: p, Cell: cell, Kind: "dense",
								Detail: fmt.Sprintf("fast-forward (%q, %d cycles) != dense (%q, %d cycles)",
									res.outcome, res.cycles, dres.outcome, dres.cycles),
							})
						}
					}
				}
			}
		}
	}
	return stats, viols
}

// Report is the aggregate of a conformance batch.
type Report struct {
	Programs   int
	Stats      Stats
	Violations []Violation
}

// CellsPerProgram is the number of fast-forward grid cells CheckProgram
// visits with the full grid (dense twins excluded).
func CellsPerProgram() int {
	return len(core.AllModels) * len(GridTechs()) * len(GridTimings()) * len(GridProtocols())
}

// BatchJobs enumerates a conformance batch as independent runner jobs, one
// per generated program. Each job's row carries the program's grid
// statistics and any violations in encoded form, so a batch can execute on
// any executor that transports rows — the local pool or the sweep farm —
// and BatchReport reassembles the identical Report either way.
func BatchJobs(seed int64, n int, params Params, opts CheckOptions) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := 0; i < n; i++ {
		p := Generate(seed+int64(i), params)
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("conform/seed%d", p.Seed),
			Run: func(*sim.System) (runner.Row, error) {
				stats, viols := CheckProgram(p, opts)
				return encodeProgramRow(stats, viols)
			},
		}
	}
	return jobs
}

// encodeProgramRow flattens one program's check result into the runner's
// row currency: the statistics as extra metrics, the violations (rich
// structures, including the program itself for minimization) as a gob
// blob. Gob encodes these map-free structs deterministically, so the rows
// — like every other farm observable — are byte-stable.
func encodeProgramRow(stats Stats, viols []Violation) (runner.Row, error) {
	row := runner.Row{
		Extra: map[string]float64{
			"cells":      float64(stats.Cells),
			"relaxed":    float64(stats.Relaxed),
			"detections": float64(stats.Detections),
		},
	}
	if len(viols) > 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(viols); err != nil {
			return runner.Row{}, fmt.Errorf("conformance: encode violations: %w", err)
		}
		row.Labels = map[string]string{"violations": base64.StdEncoding.EncodeToString(buf.Bytes())}
	}
	return row, nil
}

// decodeProgramRow inverts encodeProgramRow.
func decodeProgramRow(row runner.Row) (Stats, []Violation, error) {
	stats := Stats{
		Cells:      int(row.Extra["cells"]),
		Relaxed:    int(row.Extra["relaxed"]),
		Detections: int(row.Extra["detections"]),
	}
	blob, ok := row.Labels["violations"]
	if !ok {
		return stats, nil, nil
	}
	raw, err := base64.StdEncoding.DecodeString(blob)
	if err != nil {
		return stats, nil, fmt.Errorf("conformance: decode violations: %w", err)
	}
	var viols []Violation
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&viols); err != nil {
		return stats, nil, fmt.Errorf("conformance: decode violations: %w", err)
	}
	return stats, viols, nil
}

// BatchReport reassembles the results of a BatchJobs run (in job order, as
// every executor returns them) into the batch report. A failed job — a
// panic inside CheckProgram, wherever it ran — is itself a conformance
// failure, attributed to the program that provoked it.
func BatchReport(seed int64, n int, params Params, results []runner.Result) Report {
	rep := Report{Programs: n}
	for i, res := range results {
		if res.Err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Program: Generate(seed+int64(i), params),
				Cell:    res.Name, Kind: "error", Detail: res.Err.Error(),
			})
			continue
		}
		stats, viols, err := decodeProgramRow(res.Row)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Program: Generate(seed+int64(i), params),
				Cell:    res.Name, Kind: "error", Detail: err.Error(),
			})
			continue
		}
		rep.Stats.add(stats)
		rep.Violations = append(rep.Violations, viols...)
	}
	return rep
}

// CheckBatch generates programs for seeds seed..seed+n-1 and checks each
// across the grid, running programs in parallel on the runner's worker
// pool. Results are deterministic for any worker count: each program is an
// independent job and violations are collected in seed order.
func CheckBatch(seed int64, n int, params Params, workers int, opts CheckOptions, progress func(done, total int)) Report {
	jobs := BatchJobs(seed, n, params, opts)
	done := 0
	results := runner.Run(jobs, runner.Options{Workers: workers, OnProgress: func(pr runner.Progress) {
		done++
		if progress != nil {
			progress(done, n)
		}
	}})
	return BatchReport(seed, n, params, results)
}

// Summarize renders a batch report exactly as cmd/conform prints it: the
// one-line OK summary, or the violation list with a 1-minimal reproducer
// per failing program. A negative elapsed omits the wall-clock figure —
// the form the farm's byte-comparison gates use, wall time being the one
// nondeterministic field. Returns true when the report is clean.
func Summarize(w io.Writer, rep Report, seed int64, n int, opts CheckOptions, elapsed time.Duration) bool {
	if len(rep.Violations) == 0 {
		fmt.Fprintf(w, "conform: OK — %d programs, %d grid cells (%d relaxed outcomes, %d detector hits), seeds %d..%d",
			rep.Programs, rep.Stats.Cells, rep.Stats.Relaxed, rep.Stats.Detections,
			seed, seed+int64(n)-1)
		if elapsed >= 0 {
			fmt.Fprintf(w, ", %.1fs", elapsed.Seconds())
		}
		fmt.Fprintln(w)
		return true
	}
	fmt.Fprintf(w, "conform: %d violation(s) across %d programs\n\n", len(rep.Violations), rep.Programs)
	// Group violations by program (seed) and minimize each failing program
	// once; the grid is deterministic, so the reproducer is exact.
	minimized := make(map[int64]bool)
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "%v\n", v)
		if minimized[v.Program.Seed] {
			continue
		}
		minimized[v.Program.Seed] = true
		min := MinimizeViolation(v.Program, opts)
		fmt.Fprintf(w, "minimized reproducer:\n%v", min)
		_, mviols := CheckProgram(min, opts)
		for _, mv := range mviols {
			fmt.Fprintf(w, "  still fails: %v\n", mv)
		}
		fmt.Fprintln(w)
	}
	return false
}
