package conformance

import (
	"testing"

	"mcmsim/internal/isa"
)

// litmusSeeds is the fuzz seed corpus: the classic litmus shapes of
// internal/workload expressed as abstract programs (spin loops approximated
// by a single acquire load — the generator fragment is loop-free), plus a
// 3-processor write-to-read causality test, an atomic-handoff test, and
// the two shapes that separate the exact oracle from the legacy superset
// (same-address read pairs and cross-address store FIFO).
func litmusSeeds() []Program {
	return []Program{
		// Store buffering (Dekker).
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 1}},
			{{Kind: KStore, Addr: 1, Val: 3}, {Kind: KLoad, Addr: 0}},
		}},
		// Store buffering with release/acquire ordering.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KRelease, Addr: 0, Val: 2}, {Kind: KAcquire, Addr: 1}},
			{{Kind: KRelease, Addr: 1, Val: 3}, {Kind: KAcquire, Addr: 0}},
		}},
		// Message passing, unsynchronized.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KStore, Addr: 1, Val: 3}},
			{{Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
		}},
		// Message passing with release/acquire.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}},
			{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
		}},
		// Load buffering.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 2}},
			{{Kind: KLoad, Addr: 1}, {Kind: KStore, Addr: 0, Val: 3}},
		}},
		// Write-to-read causality, three processors.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}},
			{{Kind: KLoad, Addr: 0}, {Kind: KRelease, Addr: 1, Val: 3}},
			{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
		}},
		// Atomic handoff: contended test-and-set guarding a plain store.
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KRMW, Addr: 0, Val: 9, RMW: isa.RMWTestAndSet}, {Kind: KStore, Addr: 1, Val: 2}},
			{{Kind: KRMW, Addr: 0, Val: 9, RMW: isa.RMWTestAndSet}, {Kind: KLoad, Addr: 1}},
		}},
		// Same-address read pair racing a remote store (the exact oracle's
		// read-read ordering; TestExactCoRR).
		{NAddr: 2, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}},
			{{Kind: KLoad, Addr: 0}, {Kind: KLoad, Addr: 0}},
		}},
		// Cross-address store-buffer FIFO through a release
		// (TestExactStoreFIFO).
		{NAddr: 3, Ops: [][]Op{
			{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}, {Kind: KStore, Addr: 2, Val: 4}},
			{{Kind: KAcquire, Addr: 2}, {Kind: KLoad, Addr: 0}},
		}},
	}
}

// FuzzConformance decodes arbitrary bytes into a litmus program and checks
// the paper-timing grid against the oracle. Every input decodes to some
// valid program, so the fuzzer explores program shapes, not parser errors.
func FuzzConformance(f *testing.F) {
	for _, p := range litmusSeeds() {
		f.Add(Encode(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Decode(data)
		if p.NumOps() == 0 {
			return
		}
		_, viols := CheckProgram(p, CheckOptions{Quick: true})
		for _, v := range viols {
			t.Errorf("%v\nprogram:\n%v", v, p)
		}
	})
}
