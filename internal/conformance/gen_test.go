package conformance

import (
	"reflect"
	"testing"

	"mcmsim/internal/core"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, Params{})
		b := Generate(seed, Params{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%v\n%v", seed, a, b)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, Params{})
		if len(p.Ops) < 2 || len(p.Ops) > MaxProcs {
			t.Fatalf("seed %d: %d processors", seed, len(p.Ops))
		}
		if p.NAddr < 2 || p.NAddr > MaxAddrs {
			t.Fatalf("seed %d: %d addresses", seed, p.NAddr)
		}
		if p.NumOps() > MaxTotalOps {
			t.Fatalf("seed %d: %d ops", seed, p.NumOps())
		}
		for _, ops := range p.Ops {
			for _, op := range ops {
				if op.Addr < 0 || op.Addr >= p.NAddr {
					t.Fatalf("seed %d: address index %d out of range", seed, op.Addr)
				}
			}
		}
	}
}

// TestGeneratedProgramsAnalyzable: everything the generator emits must be
// inside the oracle's fragment once built onto the ISA.
func TestGeneratedProgramsAnalyzable(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Params{})
		if _, err := NewLegacyOracle(p.Build(), p.SharedAddrs(), core.SC); err != nil {
			t.Fatalf("seed %d not analyzable: %v\n%v", seed, err, p)
		}
	}
}

// TestEncodeDecodeRoundTrip: Decode(Encode(p)) reproduces the program
// exactly — Decode assigns store values in the same canonical order the
// generator does.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Params{})
		q := Decode(Encode(p))
		if !reflect.DeepEqual(p.Ops, q.Ops) || p.NAddr != q.NAddr {
			t.Fatalf("seed %d: roundtrip mismatch:\n%v\n%v", seed, p, q)
		}
	}
}

// TestDecodeTotal: arbitrary bytes always decode to an in-bounds program.
func TestDecodeTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0xff},
		{0xff, 0xff, 0xff},
		{1, 2, 5, 4, 0, 4, 1, 4, 2},
		{9, 9, 200, 200, 200, 200, 200, 200, 200, 200, 200, 200, 200, 200},
	}
	for _, in := range inputs {
		p := Decode(in)
		if len(p.Ops) < 2 || p.NAddr < 2 || p.NumOps() > MaxTotalOps {
			t.Fatalf("Decode(%v) out of bounds: %v", in, p)
		}
		for _, ops := range p.Ops {
			if len(ops) > MaxProcOps {
				t.Fatalf("Decode(%v): processor with %d ops", in, len(ops))
			}
			for _, op := range ops {
				if op.Addr >= p.NAddr || op.Kind >= numOpKinds {
					t.Fatalf("Decode(%v): bad op %+v", in, op)
				}
			}
		}
	}
}

func TestWithoutOp(t *testing.T) {
	p := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 1}},
		{{Kind: KLoad, Addr: 0}},
	}}
	q := p.WithoutOp(0, 0)
	if len(q.Ops[0]) != 1 || q.Ops[0][0].Kind != KLoad {
		t.Fatalf("WithoutOp(0,0) = %v", q)
	}
	if len(p.Ops[0]) != 2 {
		t.Fatal("WithoutOp mutated the original")
	}
	if len(q.Ops[1]) != 1 {
		t.Fatalf("WithoutOp touched another processor: %v", q)
	}
}
