package conformance

// Minimize greedily shrinks a failing program: it repeatedly removes a
// single operation and keeps the removal whenever the program still fails,
// until no single-op removal preserves the failure (1-minimality). failing
// must be a pure predicate of the program; Minimize never returns a
// passing program when given a failing one.
func Minimize(p Program, failing func(Program) bool) Program {
	for changed := true; changed; {
		changed = false
		for proc := range p.Ops {
			for i := 0; i < len(p.Ops[proc]); {
				cand := p.WithoutOp(proc, i)
				if failing(cand) {
					p = cand
					changed = true
					continue // same index now names the next op
				}
				i++
			}
		}
	}
	return p
}

// MinimizeViolation shrinks a program that produced conformance
// violations, re-running the (deterministic) grid on each candidate. A
// candidate that panics the simulator counts as failing — panics are the
// most valuable reproducers.
func MinimizeViolation(p Program, opts CheckOptions) Program {
	return Minimize(p, func(c Program) (failed bool) {
		if c.NumOps() == 0 {
			return false
		}
		defer func() {
			if recover() != nil {
				failed = true
			}
		}()
		_, viols := CheckProgram(c, opts)
		return len(viols) > 0
	})
}
