package conformance

import (
	"testing"

	"mcmsim/internal/core"
	"mcmsim/internal/isa"
)

// oracleFor builds the oracle outcome set for an abstract program under m,
// going through the real Build/MemOps extraction path.
func oracleFor(t *testing.T, p Program, m core.Model) OutcomeSet {
	t.Helper()
	set, err := ModelOutcomes(p.Build(), p.SharedAddrs(), m)
	if err != nil {
		t.Fatalf("oracle(%v): %v", m, err)
	}
	return set
}

func out(binds [][]int64, mem []int64) string { return outcomeString(binds, mem) }

// TestOracleStoreBuffering pins the canonical SB litmus: the both-read-zero
// outcome is forbidden under SC, allowed once reads may bypass writes (PC
// and weaker), and SC allows exactly the three interleaving outcomes.
func TestOracleStoreBuffering(t *testing.T) {
	sb := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 1}},
		{{Kind: KStore, Addr: 1, Val: 3}, {Kind: KLoad, Addr: 0}},
	}}
	relaxed := out([][]int64{{0}, {0}}, []int64{2, 3})

	sc := oracleFor(t, sb, core.SC)
	if sc.Has(relaxed) {
		t.Errorf("SC allows the store-buffering outcome %q", relaxed)
	}
	if len(sc) != 3 {
		t.Errorf("SC outcome count = %d, want 3: %v", len(sc), sc.Sorted())
	}
	for _, w := range []string{
		out([][]int64{{0}, {2}}, []int64{2, 3}),
		out([][]int64{{3}, {0}}, []int64{2, 3}),
		out([][]int64{{3}, {2}}, []int64{2, 3}),
	} {
		if !sc.Has(w) {
			t.Errorf("SC is missing interleaving outcome %q", w)
		}
	}
	for _, m := range []core.Model{core.PC, core.WC, core.RCsc, core.RC} {
		set := oracleFor(t, sb, m)
		if !set.Has(relaxed) {
			t.Errorf("%v forbids the store-buffering outcome", m)
		}
		if !sc.Subset(set) {
			t.Errorf("SC set is not a subset of %v set", m)
		}
	}
}

// TestOracleMessagePassing pins MP: stale-data-after-flag is forbidden by
// SC always, forbidden by RC only when the flag is release/acquire synced.
func TestOracleMessagePassing(t *testing.T) {
	stale := func(p Program) string {
		// P1 saw the flag (3) but read stale data (0).
		return out([][]int64{{}, {3, 0}}, []int64{2, 3})
	}
	plain := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KStore, Addr: 1, Val: 3}},
		{{Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
	}}
	synced := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KRelease, Addr: 1, Val: 3}},
		{{Kind: KAcquire, Addr: 1}, {Kind: KLoad, Addr: 0}},
	}}
	if set := oracleFor(t, plain, core.SC); set.Has(stale(plain)) {
		t.Error("SC allows stale message passing")
	}
	if set := oracleFor(t, plain, core.RC); !set.Has(stale(plain)) {
		t.Error("RC forbids stale message passing without synchronization")
	}
	for _, m := range core.AllModels {
		if set := oracleFor(t, synced, m); set.Has(stale(synced)) {
			t.Errorf("%v allows stale message passing across release/acquire", m)
		}
	}
}

// TestOracleLoadBuffering pins LB: since the machine never speculates
// stores (writes wait for all older reads), the both-read-new outcome is
// forbidden under every model.
func TestOracleLoadBuffering(t *testing.T) {
	lb := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KLoad, Addr: 0}, {Kind: KStore, Addr: 1, Val: 2}},
		{{Kind: KLoad, Addr: 1}, {Kind: KStore, Addr: 0, Val: 3}},
	}}
	bad := out([][]int64{{3}, {2}}, []int64{3, 2})
	for _, m := range core.AllModels {
		if set := oracleFor(t, lb, m); set.Has(bad) {
			t.Errorf("%v allows the load-buffering outcome", m)
		}
	}
}

// TestOracleForwarding pins read-own-write-early: each processor reads its
// own buffered store before the store performs globally. PC exhibits it
// (store-buffer forwarding); SC must not.
func TestOracleForwarding(t *testing.T) {
	p := Program{NAddr: 2, Ops: [][]Op{
		{{Kind: KStore, Addr: 0, Val: 2}, {Kind: KLoad, Addr: 0}, {Kind: KLoad, Addr: 1}},
		{{Kind: KStore, Addr: 1, Val: 3}, {Kind: KLoad, Addr: 1}, {Kind: KLoad, Addr: 0}},
	}}
	fwd := out([][]int64{{2, 0}, {3, 0}}, []int64{2, 3})
	if set := oracleFor(t, p, core.SC); set.Has(fwd) {
		t.Error("SC allows the forwarding outcome")
	}
	if set := oracleFor(t, p, core.PC); !set.Has(fwd) {
		t.Error("PC forbids read-own-write-early; forwarding rule is broken")
	}
}

// TestOracleRMWAtomicity: two test-and-sets on one word can never both
// observe zero, under any model.
func TestOracleRMWAtomicity(t *testing.T) {
	p := Program{NAddr: 1, Ops: [][]Op{
		{{Kind: KRMW, Addr: 0, Val: 9, RMW: isa.RMWTestAndSet}},
		{{Kind: KRMW, Addr: 0, Val: 9, RMW: isa.RMWTestAndSet}},
	}}
	bothZero := out([][]int64{{0}, {0}}, []int64{1})
	for _, m := range core.AllModels {
		set := oracleFor(t, p, m)
		if set.Has(bothZero) {
			t.Errorf("%v allows both test-and-sets to win", m)
		}
		if len(set) != 2 {
			t.Errorf("%v outcome count = %d, want 2: %v", m, len(set), set.Sorted())
		}
	}
}

// TestOracleAtomicsDoNotForward: a load after a pending RMW to the same
// address must wait for the RMW rather than forward, so the load always
// observes the RMW's result, never a stale pre-RMW value.
func TestOracleAtomicsDoNotForward(t *testing.T) {
	p := Program{NAddr: 1, Ops: [][]Op{
		{{Kind: KRMW, Addr: 0, Val: 5, RMW: isa.RMWFetchAdd}, {Kind: KLoad, Addr: 0}},
	}}
	for _, m := range core.AllModels {
		set := oracleFor(t, p, m)
		want := out([][]int64{{0, 5}}, []int64{5})
		if len(set) != 1 || !set.Has(want) {
			t.Errorf("%v = %v, want exactly %q", m, set.Sorted(), want)
		}
	}
}
