package conformance

import (
	"strings"
	"testing"

	"mcmsim/internal/coherence"
	"mcmsim/internal/core"
	"mcmsim/internal/sim"
)

// singleWriterPerAddr reports whether every shared address in p is written
// by at most one processor. For such programs the final value of each
// address is fixed by that writer's program order (the store buffer drains
// in FIFO order and coherence serializes same-line writes), so final
// memory is independent of interleaving — and in particular of the
// coherence protocol.
func singleWriterPerAddr(p Program) bool {
	writer := map[int]int{}
	for proc, ops := range p.Ops {
		for _, op := range ops {
			switch op.Kind {
			case KStore, KRelease, KRMW:
				if w, ok := writer[op.Addr]; ok && w != proc {
					return false
				}
				writer[op.Addr] = proc
			}
		}
	}
	return true
}

// TestProtocolFinalMemoryEquiv is the MSI≡MESI observational-equivalence
// property: on single-writer-per-address programs the two protocols must
// agree on final memory exactly, cell by cell. MESI only elides traffic
// (exclusive-clean grants, silent evictions); it must never change what
// ends up in memory.
func TestProtocolFinalMemoryEquiv(t *testing.T) {
	cells := []struct {
		model core.Model
		tech  TechCell
	}{
		{core.SC, GridTechs()[0]}, // conv
		{core.SC, GridTechs()[3]}, // pf+spec
		{core.RC, GridTechs()[0]}, // conv
		{core.RC, GridTechs()[3]}, // pf+spec
	}
	const want = 40
	checked := 0
	for seed := int64(1); checked < want; seed++ {
		if seed > 10*want {
			t.Fatalf("only %d single-writer programs in %d seeds", checked, seed-1)
		}
		p := Generate(seed, Params{})
		if p.NumOps() == 0 || !singleWriterPerAddr(p) {
			continue
		}
		checked++
		for _, c := range cells {
			var mem [2]string
			for i, proto := range []coherence.Protocol{coherence.ProtoInvalidate, coherence.ProtoMESI} {
				res, err := runCell(p, p.Build(), c.model, c.tech.Tech, proto, sim.PaperConfig(), false, CheckOptions{})
				if err != nil {
					t.Fatalf("seed %d %v/%s/%s: %v", seed, c.model, c.tech.Name, protoName(proto), err)
				}
				idx := strings.LastIndex(res.outcome, " mem:")
				if idx < 0 {
					t.Fatalf("seed %d: outcome %q has no memory suffix", seed, res.outcome)
				}
				mem[i] = res.outcome[idx:]
			}
			if mem[0] != mem[1] {
				t.Errorf("seed %d %v/%s: final memory diverges between protocols\nmsi: %q\nmesi: %q\nprogram:\n%v",
					seed, c.model, c.tech.Name, mem[0], mem[1], p)
			}
		}
	}
}
