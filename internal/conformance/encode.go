package conformance

import "mcmsim/internal/isa"

// rmwKinds enumerates the atomic flavours the codec can express.
var rmwKinds = [...]isa.RMWKind{isa.RMWTestAndSet, isa.RMWFetchAdd, isa.RMWSwap}

func rmwIndex(k isa.RMWKind) int {
	for i, r := range rmwKinds {
		if r == k {
			return i
		}
	}
	return 0
}

// Byte codec between fuzzer inputs and abstract programs. Decode is total
// over arbitrary byte strings (every input maps to some valid program, so
// the fuzzer never wastes executions on rejected inputs); Encode produces
// the canonical bytes Decode maps back to the same program, which is how
// the litmus seed corpus is expressed.
//
// Layout: [procs%2] [naddr%3] then per processor [count%(MaxProcOps+1)]
// followed by count (kind, addr) byte pairs. Store values are assigned
// sequentially by Decode, exactly like Generate, so they never collide
// with test-and-set's constant 1.

// Decode maps fuzzer bytes to a program. Truncated input yields fewer
// operations; excess input is ignored.
func Decode(data []byte) Program {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	b0, _ := next()
	b1, _ := next()
	procs := 2 + int(b0)%(MaxProcs-1)
	naddr := 2 + int(b1)%(MaxAddrs-1)
	p := Program{NAddr: naddr, Ops: make([][]Op, procs)}
	total := 0
	nextVal := int64(2)
	for i := range p.Ops {
		cb, ok := next()
		if !ok {
			break
		}
		n := int(cb) % (MaxProcOps + 1)
		for k := 0; k < n && total < MaxTotalOps; k++ {
			kb, ok := next()
			if !ok {
				return p
			}
			ab, _ := next()
			op := Op{
				Kind: OpKind(kb % byte(numOpKinds)),
				Addr: int(ab) % naddr,
			}
			if op.Kind == KRMW {
				op.RMW = rmwKinds[(int(kb)/int(numOpKinds))%len(rmwKinds)]
			}
			if op.Kind == KStore || op.Kind == KRelease || op.Kind == KRMW {
				op.Val = nextVal
				nextVal++
			}
			p.Ops[i] = append(p.Ops[i], op)
			total++
		}
	}
	return p
}

// Encode produces the canonical byte string for a program, suitable as a
// fuzz corpus entry: Decode(Encode(p)) reproduces p's shape (kinds and
// addresses; values are reassigned canonically).
func Encode(p Program) []byte {
	var out []byte
	out = append(out, byte(len(p.Ops)-2), byte(p.NAddr-2))
	for _, ops := range p.Ops {
		out = append(out, byte(len(ops)))
		for _, op := range ops {
			kb := byte(op.Kind)
			if op.Kind == KRMW {
				kb += byte(numOpKinds) * byte(rmwIndex(op.RMW))
			}
			out = append(out, kb, byte(op.Addr))
		}
	}
	return out
}
