package stats

// State is the serializable contents of a Set, used by the machine
// snapshots (internal/snapshot). Counters and histograms are listed in
// sorted name order so that encoding a State is deterministic (the Set's
// maps must never be serialized directly: map iteration order would leak
// into the bytes).
type State struct {
	Counters   []CounterState
	Histograms []HistogramState
}

// CounterState is one named counter value.
type CounterState struct {
	Name  string
	Value uint64
}

// HistogramState is one named histogram's raw samples. Samples are stored
// as recorded; summary statistics (sum, order statistics) are recomputed
// on restore, so the encoded form carries no derivable state.
type HistogramState struct {
	Name    string
	Samples []int64
}

// ExportState captures every metric in the set, including zero-valued
// counters and empty histograms: a metric's presence (it was registered)
// is itself observable in String().
func (s *Set) ExportState() State {
	var st State
	s.ExportStateInto(&st)
	return st
}

// ExportStateInto captures the set into st, reusing st's backing storage.
// The optimistic shard engine checkpoints every component once per window;
// reusing the previous window's buffers keeps that off the allocator.
func (s *Set) ExportStateInto(st *State) {
	st.Counters = st.Counters[:0]
	for _, n := range s.CounterNames() {
		st.Counters = append(st.Counters, CounterState{Name: n, Value: s.counters[n].Value()})
	}
	prev := st.Histograms
	st.Histograms = st.Histograms[:0]
	for i, n := range s.HistogramNames() {
		var buf []int64
		if i < len(prev) {
			buf = prev[i].Samples[:0]
		}
		st.Histograms = append(st.Histograms, HistogramState{Name: n, Samples: append(buf, s.hists[n].samples...)})
	}
}

// RestoreState replaces the set's metrics with the exported ones. Existing
// Counter/Histogram pointers registered by components stay valid when their
// names appear in the state (values are overwritten in place); metrics not
// in the state are dropped.
func (s *Set) RestoreState(st State) {
	s.cNames, s.hNames = nil, nil
	keepC := make(map[string]bool, len(st.Counters))
	for _, cs := range st.Counters {
		keepC[cs.Name] = true
		s.Counter(cs.Name).n = cs.Value
	}
	for n := range s.counters {
		if !keepC[n] {
			delete(s.counters, n)
		}
	}
	keepH := make(map[string]bool, len(st.Histograms))
	for _, hs := range st.Histograms {
		keepH[hs.Name] = true
		h := s.Histogram(hs.Name)
		h.samples = append(h.samples[:0], hs.Samples...)
		h.sorted = false
		h.sum = 0
		for _, v := range hs.Samples {
			h.sum += v
		}
	}
	for n := range s.hists {
		if !keepH[n] {
			delete(s.hists, n)
		}
	}
}
