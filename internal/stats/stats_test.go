package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Inc()
	c.Add(5)
	if c.Value() != 7 {
		t.Fatalf("counter = %d, want 7", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 25 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Mean() != 5 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 5 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("p0 = %d", p)
	}
	if p := h.Percentile(100); p != 9 {
		t.Errorf("p100 = %d", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestHistogramPercentileOrder property: percentiles are monotonically
// non-decreasing and bounded by min/max for arbitrary sample sets.
func TestHistogramPercentileOrder(t *testing.T) {
	f := func(samples []int64) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, v := range samples {
			h.Observe(v)
		}
		prev := h.Min()
		for p := 0.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHistogramSumMatchesManual property: Sum equals the manual sum, and
// Max equals the sorted maximum.
func TestHistogramSumMatchesManual(t *testing.T) {
	f := func(samples []int16) bool {
		var h Histogram
		var want int64
		for _, v := range samples {
			h.Observe(int64(v))
			want += int64(v)
		}
		if h.Sum() != want {
			return false
		}
		if len(samples) > 0 {
			s := make([]int64, len(samples))
			for i, v := range samples {
				s[i] = int64(v)
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			if h.Max() != s[len(s)-1] || h.Min() != s[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetCreatesAndReuses(t *testing.T) {
	s := NewSet("comp")
	c1 := s.Counter("hits")
	c1.Inc()
	c2 := s.Counter("hits")
	if c2.Value() != 1 {
		t.Error("counter not reused by name")
	}
	h1 := s.Histogram("lat")
	h1.Observe(3)
	if s.Histogram("lat").Count() != 1 {
		t.Error("histogram not reused by name")
	}
	if s.Name() != "comp" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet("x")
	s.Counter("zeta")
	s.Counter("alpha")
	s.Counter("mid")
	names := s.CounterNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("names not sorted: %v", names)
	}
	if len(names) != 3 {
		t.Errorf("len = %d", len(names))
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet("x")
	s.Counter("a").Add(10)
	s.Histogram("h").Observe(4)
	s.Reset()
	if s.Counter("a").Value() != 0 || s.Histogram("h").Count() != 0 {
		t.Error("reset did not clear metrics")
	}
}

func TestSetStringRendering(t *testing.T) {
	s := NewSet("unit")
	s.Counter("events").Add(3)
	s.Histogram("lat").Observe(7)
	out := s.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"unit.events = 3", "unit.lat"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		h.Observe(rng.Int63n(1000))
	}
}
