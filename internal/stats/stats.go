// Package stats provides lightweight counters and histograms used by every
// component of the simulator. All collection is deterministic and
// allocation-light so that statistics can stay enabled during benchmarks.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Histogram collects integer samples and reports summary order statistics.
// It retains every sample; simulator runs are bounded so this is fine and it
// keeps percentile computation exact.
type Histogram struct {
	samples []int64
	sorted  bool
	sum     int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.samples))
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or 0 when empty.
func (h *Histogram) Percentile(p float64) int64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p / 100 * float64(len(h.samples)))
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum = 0
}

func (h *Histogram) ensureSorted() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// Set is a named collection of counters and histograms. Components create
// one Set and register the metrics they expose; the simulator aggregates
// Sets for reporting.
type Set struct {
	name     string
	counters map[string]*Counter
	hists    map[string]*Histogram

	// Cached sorted name lists (nil = stale). Metric registration is rare
	// and enumeration is hot: reports and per-window engine checkpoints
	// both walk the names in sorted order.
	cNames, hNames []string
}

// NewSet creates an empty metric set with the given component name.
func NewSet(name string) *Set {
	return &Set{
		name:     name,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Name returns the component name the set was created with.
func (s *Set) Name() string { return s.name }

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
		s.cNames = nil
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (s *Set) Histogram(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
		s.hNames = nil
	}
	return h
}

// Reset zeroes every metric in the set.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
	for _, h := range s.hists {
		h.Reset()
	}
}

// CounterNames returns the sorted names of all counters in the set. The
// returned slice is shared; callers must not modify it.
func (s *Set) CounterNames() []string {
	if s.cNames == nil {
		s.cNames = make([]string, 0, len(s.counters))
		for n := range s.counters {
			s.cNames = append(s.cNames, n)
		}
		sort.Strings(s.cNames)
	}
	return s.cNames
}

// HistogramNames returns the sorted names of all histograms in the set.
// The returned slice is shared; callers must not modify it.
func (s *Set) HistogramNames() []string {
	if s.hNames == nil {
		s.hNames = make([]string, 0, len(s.hists))
		for n := range s.hists {
			s.hNames = append(s.hNames, n)
		}
		sort.Strings(s.hNames)
	}
	return s.hNames
}

// String renders the set as a human-readable table, one metric per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%s.%s = %d\n", s.name, n, s.counters[n].Value())
	}
	for _, n := range s.HistogramNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "%s.%s = {n=%d mean=%.2f min=%d p50=%d p99=%d max=%d}\n",
			s.name, n, h.Count(), h.Mean(), h.Min(), h.Percentile(50), h.Percentile(99), h.Max())
	}
	return b.String()
}
