package memsys

import (
	"fmt"
	"sort"
)

// State is the serializable memory image: per bank, the non-zero words in
// ascending address order. The sparse zero-is-absent invariant of WriteWord
// makes this exact — restoring the listed words into empty banks reproduces
// the storage byte for byte — and the sorted order makes the encoding
// deterministic.
type State struct {
	Banks []BankState
}

// BankState is one storage bank's non-zero words.
type BankState struct {
	Words []WordState
}

// WordState is one stored word.
type WordState struct {
	Addr  uint64
	Value int64
}

// ExportState captures the memory image.
func (m *Memory) ExportState() State {
	var st State
	m.ExportStateInto(&st)
	return st
}

// ExportStateInto captures the memory image into st, reusing its backing
// storage (the optimistic shard engine checkpoints memory every window a
// home shard is dispatched in).
func (m *Memory) ExportStateInto(st *State) {
	if cap(st.Banks) < len(m.banks) {
		st.Banks = make([]BankState, len(m.banks))
	}
	st.Banks = st.Banks[:len(m.banks)]
	for i, b := range m.banks {
		words := st.Banks[i].Words[:0]
		for a, v := range b {
			words = append(words, WordState{Addr: a, Value: v})
		}
		sort.Slice(words, func(x, y int) bool { return words[x].Addr < words[y].Addr })
		st.Banks[i].Words = words
	}
}

// RestoreState replaces the memory contents with the exported image. The
// bank count must match the memory's interleaving (it is derived from the
// machine configuration, which the snapshot carries alongside).
func (m *Memory) RestoreState(st State) error {
	if len(st.Banks) != len(m.banks) {
		return fmt.Errorf("memsys: snapshot has %d banks, memory has %d", len(st.Banks), len(m.banks))
	}
	for i := range m.banks {
		bank := make(map[uint64]int64, len(st.Banks[i].Words))
		for _, w := range st.Banks[i].Words {
			bank[w.Addr] = w.Value
		}
		m.banks[i] = bank
	}
	return nil
}
