// Package memsys provides the flat shared-memory storage backing the
// directory, plus the line-geometry helper shared by the cache, coherence
// and consistency layers.
//
// Addresses are word addresses (one 64-bit value per address). Lines group
// LineWords consecutive words; coherence state is kept per line.
package memsys

import "fmt"

// Geometry describes the line size of the memory system. LineWords must be a
// power of two.
type Geometry struct {
	LineWords uint64
}

// NewGeometry validates and returns a Geometry.
func NewGeometry(lineWords uint64) Geometry {
	if lineWords == 0 || lineWords&(lineWords-1) != 0 {
		panic(fmt.Sprintf("memsys: line words must be a power of two, got %d", lineWords))
	}
	return Geometry{LineWords: lineWords}
}

// LineOf returns the line-aligned address containing addr.
func (g Geometry) LineOf(addr uint64) uint64 { return addr &^ (g.LineWords - 1) }

// Offset returns the word offset of addr within its line.
func (g Geometry) Offset(addr uint64) uint64 { return addr & (g.LineWords - 1) }

// SameLine reports whether two word addresses share a line (the false-sharing
// predicate that footnote 2 of the paper discusses).
func (g Geometry) SameLine(a, b uint64) bool { return g.LineOf(a) == g.LineOf(b) }

// Memory is the flat word-addressed backing store. Untouched words read as
// zero. Storage is split into per-module banks keyed by the same
// line-interleaving the directory uses to pick a line's home, so each home
// module touches only its own bank: the parallel engine can then give every
// directory shard the one Memory while shards write disjoint maps. Memory
// is still not safe for arbitrary concurrent use — only the per-bank
// partition is.
type Memory struct {
	geom  Geometry
	banks []map[uint64]int64
}

// NewMemory creates an empty single-bank memory with the given geometry.
func NewMemory(geom Geometry) *Memory { return NewBankedMemory(geom, 1) }

// NewBankedMemory creates an empty memory whose storage is interleaved
// across banks home modules, matching the directory's
// (line / LineWords) % modules home function.
func NewBankedMemory(geom Geometry, banks int) *Memory {
	if banks < 1 {
		banks = 1
	}
	m := &Memory{geom: geom, banks: make([]map[uint64]int64, banks)}
	for i := range m.banks {
		m.banks[i] = make(map[uint64]int64)
	}
	return m
}

// Geometry returns the memory's line geometry.
func (m *Memory) Geometry() Geometry { return m.geom }

// bank returns the storage map owning addr. Every word of a line lands in
// the same bank because addr/LineWords is constant across the line.
func (m *Memory) bank(addr uint64) map[uint64]int64 {
	return m.banks[(addr/m.geom.LineWords)%uint64(len(m.banks))]
}

// ReadWord returns the value at a word address.
func (m *Memory) ReadWord(addr uint64) int64 { return m.bank(addr)[addr] }

// WriteWord stores a value at a word address.
func (m *Memory) WriteWord(addr uint64, v int64) {
	b := m.bank(addr)
	if v == 0 {
		// Keep the map sparse: zero is the default.
		delete(b, addr)
		return
	}
	b[addr] = v
}

// ReadLine returns a fresh copy of the line containing addr.
func (m *Memory) ReadLine(addr uint64) []int64 {
	base := m.geom.LineOf(addr)
	b := m.bank(base)
	line := make([]int64, m.geom.LineWords)
	for i := uint64(0); i < m.geom.LineWords; i++ {
		line[i] = b[base+i]
	}
	return line
}

// WriteLine stores a full line at the line containing addr. The data slice
// must have exactly LineWords entries.
func (m *Memory) WriteLine(addr uint64, data []int64) {
	if uint64(len(data)) != m.geom.LineWords {
		panic(fmt.Sprintf("memsys: WriteLine with %d words, line is %d", len(data), m.geom.LineWords))
	}
	base := m.geom.LineOf(addr)
	for i := uint64(0); i < m.geom.LineWords; i++ {
		m.WriteWord(base+i, data[i])
	}
}

// Snapshot returns a copy of all non-zero words, for end-of-run verification
// (the property tests compare final memory across configurations).
func (m *Memory) Snapshot() map[uint64]int64 {
	n := 0
	for _, b := range m.banks {
		n += len(b)
	}
	out := make(map[uint64]int64, n)
	for _, b := range m.banks {
		for k, v := range b {
			out[k] = v
		}
	}
	return out
}
