package memsys

import (
	"testing"
	"testing/quick"
)

func TestGeometryLineMath(t *testing.T) {
	g := NewGeometry(4)
	cases := []struct {
		addr, line, off uint64
	}{
		{0, 0, 0},
		{3, 0, 3},
		{4, 4, 0},
		{7, 4, 3},
		{0x1002, 0x1000, 2},
	}
	for _, c := range cases {
		if got := g.LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.line)
		}
		if got := g.Offset(c.addr); got != c.off {
			t.Errorf("Offset(%#x) = %d, want %d", c.addr, got, c.off)
		}
	}
}

func TestGeometrySingleWordLines(t *testing.T) {
	g := NewGeometry(1)
	if g.LineOf(42) != 42 || g.Offset(42) != 0 {
		t.Error("one-word lines must be identity-mapped")
	}
	if g.SameLine(1, 2) {
		t.Error("distinct words must not share one-word lines")
	}
}

func TestGeometryRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []uint64{0, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGeometry(%d) must panic", n)
				}
			}()
			NewGeometry(n)
		}()
	}
}

// TestGeometryDecomposition property: addr == LineOf(addr) + Offset(addr)
// and SameLine is consistent with LineOf, for every line size.
func TestGeometryDecomposition(t *testing.T) {
	for _, words := range []uint64{1, 2, 4, 8, 16} {
		g := NewGeometry(words)
		f := func(a, b uint64) bool {
			if g.LineOf(a)+g.Offset(a) != a {
				return false
			}
			if g.Offset(a) >= words {
				return false
			}
			return g.SameLine(a, b) == (g.LineOf(a) == g.LineOf(b))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("words=%d: %v", words, err)
		}
	}
}

func TestMemoryReadWriteWord(t *testing.T) {
	m := NewMemory(NewGeometry(4))
	if m.ReadWord(100) != 0 {
		t.Error("untouched word must read 0")
	}
	m.WriteWord(100, 42)
	if m.ReadWord(100) != 42 {
		t.Error("write not visible")
	}
	m.WriteWord(100, 0)
	if m.ReadWord(100) != 0 {
		t.Error("zero write not visible")
	}
	if len(m.Snapshot()) != 0 {
		t.Error("zero writes must keep the snapshot sparse")
	}
}

func TestMemoryLineRoundTrip(t *testing.T) {
	m := NewMemory(NewGeometry(4))
	m.WriteLine(8, []int64{1, 2, 3, 4})
	line := m.ReadLine(10) // within the same line
	for i, want := range []int64{1, 2, 3, 4} {
		if line[i] != want {
			t.Errorf("line[%d] = %d, want %d", i, line[i], want)
		}
	}
	if m.ReadWord(9) != 2 {
		t.Error("word view inconsistent with line view")
	}
}

func TestMemoryReadLineIsCopy(t *testing.T) {
	m := NewMemory(NewGeometry(2))
	m.WriteLine(0, []int64{5, 6})
	line := m.ReadLine(0)
	line[0] = 99
	if m.ReadWord(0) != 5 {
		t.Error("mutating a read line must not affect memory")
	}
}

func TestMemoryWriteLineWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short WriteLine must panic")
		}
	}()
	NewMemory(NewGeometry(4)).WriteLine(0, []int64{1})
}

// TestMemoryWordLineConsistency property: after arbitrary word writes,
// ReadLine agrees with ReadWord for every word of every touched line.
func TestMemoryWordLineConsistency(t *testing.T) {
	g := NewGeometry(4)
	f := func(writes []struct {
		A uint16
		V int64
	}) bool {
		m := NewMemory(g)
		for _, w := range writes {
			m.WriteWord(uint64(w.A), w.V)
		}
		for _, w := range writes {
			line := m.ReadLine(uint64(w.A))
			for i := uint64(0); i < g.LineWords; i++ {
				if line[i] != m.ReadWord(g.LineOf(uint64(w.A))+i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIndependence(t *testing.T) {
	m := NewMemory(NewGeometry(1))
	m.WriteWord(1, 10)
	snap := m.Snapshot()
	m.WriteWord(1, 20)
	if snap[1] != 10 {
		t.Error("snapshot must be decoupled from later writes")
	}
}
