package cache_test

import (
	"testing"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/network"
)

// TestEvictionDuringPendingPrefetch fills the only way of a one-way cache
// with a dirty line, then prefetches a conflicting line: the prefetch fill
// must evict the dirty victim (writeback + replacement event) and a demand
// access merged into the prefetch must still complete from the fill.
func TestEvictionDuringPendingPrefetch(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
	h := newHarness(t, 1, cfg, 1, coherence.ProtoInvalidate)
	h.mem.WriteWord(0x41, 3)
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 7}, h.cycle)
	h.settle(t)

	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetch, Addr: 0x41}, h.cycle); res != cache.Miss {
		t.Fatalf("conflicting prefetch = %v, want Miss", res)
	}
	// While the prefetch is pending the dirty victim is still resident.
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Fatalf("victim state during prefetch = %v, want exclusive", st)
	}
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle); res != cache.Merged {
		t.Fatalf("demand read on pending prefetch = %v, want Merged", res)
	}
	h.settle(t)

	if v, ok := h.clients[0].done(2); !ok || v != 3 {
		t.Fatalf("merged read = %d,%v, want 3", v, ok)
	}
	if h.mem.ReadWord(0x40) != 7 {
		t.Error("dirty victim of the prefetch fill not written back")
	}
	sawReplace := false
	for _, ev := range h.clients[0].events {
		if ev.line == 0x40 && ev.kind == cache.EvReplace {
			sawReplace = true
		}
	}
	if !sawReplace {
		t.Error("replacement of the victim not reported to the client")
	}
	if st := h.caches[0].StateOf(0x41); st != cache.Shared {
		t.Errorf("prefetched line state = %v, want shared", st)
	}
}

// TestEarlyAndDuplicateInvAcksPooled injects invalidation acks that arrive
// before the data response of an exclusive fill (and a duplicate of one):
// they must be pooled by tag, not complete the fill early, and acks whose
// tag never matches a grant must linger harmlessly.
func TestEarlyAndDuplicateInvAcksPooled(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 9}, h.cycle); res != cache.Miss {
		t.Fatalf("write = %v, want Miss", res)
	}
	// Two acks with a tag no directory grant will ever use, delivered while
	// the MSHR is still waiting for its data response.
	const bogusTag = 1 << 40
	for i := 0; i < 2; i++ {
		h.net.Post(network.Message{
			Type: network.MsgInvAck, Src: 0, Dst: 0, Line: 0x40, Tag: bogusTag,
		}, h.cycle)
	}
	h.run(2)
	if _, ok := h.clients[0].done(1); ok {
		t.Fatal("stray acks completed the write before the data arrived")
	}
	h.settle(t)
	count := 0
	for _, comp := range h.clients[0].completions {
		if comp.id == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("write completed %d times, want exactly once", count)
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Fatalf("state = %v, want exclusive", st)
	}
}

// TestInvalidationRacesEviction slides a remote write across the window in
// which the local sharer evicts the line (replacement hint in flight): in
// every interleaving — invalidation before the eviction, after it (absent
// line, still acked promptly), or hint processed first (no invalidation at
// all) — the writer completes exactly once and both caches converge on the
// written value.
func TestInvalidationRacesEviction(t *testing.T) {
	for offset := uint64(0); offset < 30; offset++ {
		cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
		h := newHarness(t, 2, cfg, 1, coherence.ProtoInvalidate)
		// Cache 0 shares 0x40, then reads 0x41 to evict it.
		h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
		h.settle(t)
		h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle)
		h.run(offset)
		// Cache 1 writes 0x40 somewhere inside the eviction window.
		if h.caches[1].Access(cache.Request{Kind: cache.ReqWrite, ID: 3, Addr: 0x40, Data: 5}, h.cycle) == cache.Blocked {
			t.Fatalf("offset %d: write blocked", offset)
		}
		h.settle(t)
		count := 0
		for _, comp := range h.clients[1].completions {
			if comp.id == 3 {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("offset %d: write completed %d times", offset, count)
		}
		for c := 0; c < 2; c++ {
			id := uint64(10 + c)
			h.caches[c].Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: 0x40}, h.cycle)
			h.settle(t)
			if v, ok := h.clients[c].done(id); !ok || v != 5 {
				t.Fatalf("offset %d: cache %d reads %d,%v, want 5", offset, c, v, ok)
			}
		}
	}
}
