package cache

import (
	"fmt"

	"mcmsim/internal/network"
)

// Access issues one request against the cache at cycle now. The returned
// Result tells the load/store unit whether the access hit (completion
// scheduled), missed (request sent), merged with an in-flight fill, was a
// discarded prefetch, or must be retried.
func (c *Cache) Access(req Request, now uint64) Result {
	if c.bypass {
		return c.bypassAccess(req, now)
	}
	lineAddr := c.geom.LineOf(req.Addr)
	l := c.lookup(lineAddr)
	m := c.mshrs[lineAddr]
	if _, wbPending := c.wb[lineAddr]; wbPending && m == nil {
		// A victim writeback for this line is still in flight; re-requesting
		// now would race the directory's view of ownership. Stall until the
		// writeback is acknowledged.
		c.Stats.Counter("wb_stalls").Inc()
		if req.Kind == ReqPrefetch || req.Kind == ReqPrefetchEx {
			return PrefetchDropped
		}
		return Blocked
	}

	switch req.Kind {
	case ReqPrefetch, ReqPrefetchEx:
		return c.accessPrefetch(req, lineAddr, l, m, now)
	case ReqRead:
		if l != nil {
			l.lastUse = c.useClock
			c.useClock++
			c.schedule(req, now)
			c.Stats.Counter("read_hits").Inc()
			return Hit
		}
		if m != nil {
			m.waiters = append(m.waiters, waiter{req: req})
			c.Stats.Counter("read_merges").Inc()
			return Merged
		}
		return c.startMiss(req, lineAddr, false, false, now)
	case ReqWrite, ReqRMW, ReqReadEx:
		if c.proto == ProtoUpdate {
			if req.Kind == ReqReadEx {
				panic("cache: ReqReadEx is not available under the update protocol")
			}
			return c.accessWriteUpdate(req, lineAddr, l, m, now)
		}
		if l != nil && writableState(l.state) {
			l.lastUse = c.useClock
			c.useClock++
			c.schedule(req, now)
			c.Stats.Counter("write_hits").Inc()
			return Hit
		}
		if m != nil {
			// Merge with the in-flight fill. If the fill is only shared the
			// write cannot perform from it; escalate to exclusive after the
			// fill installs.
			if !m.exclusive {
				m.escalate = true
			}
			m.waiters = append(m.waiters, waiter{req: req})
			c.Stats.Counter("write_merges").Inc()
			return Merged
		}
		// A Shared copy is insufficient for a write: request exclusivity.
		// The directory will not invalidate the requester, and the data
		// response refreshes our copy.
		return c.startMiss(req, lineAddr, true, false, now)
	default:
		panic(fmt.Sprintf("cache: unknown request kind %v", req.Kind))
	}
}

// accessPrefetch handles the paper's hardware-controlled non-binding
// prefetches: probe the cache; discard if the line is already present with
// sufficient permission or already being fetched; otherwise start a fill
// with no waiters.
func (c *Cache) accessPrefetch(req Request, lineAddr uint64, l *line, m *mshr, now uint64) Result {
	if c.proto == ProtoUpdate && req.Kind == ReqPrefetchEx {
		// Read-exclusive prefetch is not possible under an update protocol
		// (paper §3.1); treat as dropped so the issuer wastes no request.
		c.Stats.Counter("prefetch_dropped").Inc()
		return PrefetchDropped
	}
	wantEx := req.Kind == ReqPrefetchEx
	if m != nil {
		// The line is already being fetched; a duplicate request must not
		// be sent out (§3.2). An exclusive prefetch overlapping a shared
		// fill records its intent so the fill upgrades immediately after
		// installing - otherwise the store it anticipates would pay a full
		// second transaction later.
		if wantEx && !m.exclusive {
			m.escalate = true
		}
		c.Stats.Counter("prefetch_dropped").Inc()
		return PrefetchDropped
	}
	if l != nil {
		sufficient := !wantEx || writableState(l.state)
		if sufficient {
			c.Stats.Counter("prefetch_dropped").Inc()
			return PrefetchDropped
		}
		// Shared copy but an exclusive prefetch: upgrade via GetX.
		return c.startMiss(req, lineAddr, true, true, now)
	}
	return c.startMiss(req, lineAddr, wantEx, true, now)
}

// accessWriteUpdate handles stores and RMWs under the update protocol:
// writes go to the directory as word updates (write-through with respect to
// the home memory) and complete when the directory's done message plus all
// sharer acks arrive. A store to an uncached line first fills the line in
// shared state (write-allocate), then sends the update.
func (c *Cache) accessWriteUpdate(req Request, lineAddr uint64, l *line, m *mshr, now uint64) Result {
	if req.Kind == ReqRMW {
		// Atomics serialize at the directory under the update protocol.
		c.sendUpdateReq(req, now)
		c.Stats.Counter("rmw_at_directory").Inc()
		return Miss
	}
	if l != nil {
		c.sendUpdateReq(req, now)
		c.Stats.Counter("write_throughs").Inc()
		return Miss // cost of a directory round trip, like a miss
	}
	if m != nil {
		m.waiters = append(m.waiters, waiter{req: req})
		c.Stats.Counter("write_merges").Inc()
		return Merged
	}
	// Write-allocate: fill shared first; the fill completion path sends the
	// update for the waiting store.
	return c.startMiss(req, lineAddr, false, false, now)
}

func (c *Cache) sendUpdateReq(req Request, now uint64) {
	x := &updateXact{req: req, word: req.Addr}
	c.xacts = append(c.xacts, x)
	var rmwWire uint64
	if req.Kind == ReqRMW {
		rmwWire = uint64(req.RMW) + 1
	}
	c.net.Post(network.Message{
		Type: network.MsgUpdateReq, Src: c.ID, Dst: c.homeFor(c.geom.LineOf(req.Addr)),
		Line: c.geom.LineOf(req.Addr), Word: req.Addr, Value: req.Data, SeqNo: rmwWire,
	}, now)
}

// startMiss allocates an MSHR and sends the fill request to the directory.
func (c *Cache) startMiss(req Request, lineAddr uint64, exclusive, prefetch bool, now uint64) Result {
	if len(c.mshrs) >= c.cfg.MaxMSHRs {
		c.Stats.Counter("mshr_blocked").Inc()
		return Blocked
	}
	if _, dup := c.mshrs[lineAddr]; dup {
		panic(fmt.Sprintf("cache %d: duplicate fill request for line %#x", c.ID, lineAddr))
	}
	m := &mshr{lineAddr: lineAddr, exclusive: exclusive}
	if !prefetch {
		m.waiters = append(m.waiters, waiter{req: req})
	}
	c.mshrs[lineAddr] = m
	typ := network.MsgGetS
	if exclusive {
		typ = network.MsgGetX
	}
	c.net.Post(network.Message{
		Type: typ, Src: c.ID, Dst: c.homeFor(lineAddr), Line: lineAddr,
	}, now)
	if prefetch {
		c.Stats.Counter("prefetches_issued").Inc()
	} else {
		c.Stats.Counter("misses").Inc()
	}
	return Miss
}

// schedule queues a hit completion HitLatency cycles in the future. The
// access re-validates its hit at completion time (the line may have been
// invalidated or recalled in the window); if the line was lost the access
// restarts as a miss. The line is pinned against replacement until the
// completion fires.
func (c *Cache) schedule(req Request, now uint64) {
	c.pinned[c.geom.LineOf(req.Addr)]++
	c.completions = append(c.completions, completion{at: now + c.cfg.HitLatency, req: req})
}

// Tick processes due hit completions and retries stalled installs. Call
// once per cycle after network delivery so that fills arriving this cycle
// are visible.
func (c *Cache) Tick(now uint64) {
	if len(c.retryInstalls) > 0 {
		retry := c.retryInstalls
		c.retryInstalls = nil
		for _, ms := range retry {
			c.installFill(ms, now)
		}
	}
	if len(c.completions) == 0 {
		return
	}
	remaining := c.completions[:0]
	for _, comp := range c.completions {
		if comp.at > now {
			remaining = append(remaining, comp)
			continue
		}
		c.unpin(c.geom.LineOf(comp.req.Addr))
		c.finishHit(comp.req, now)
	}
	c.completions = remaining
}

func (c *Cache) unpin(lineAddr uint64) {
	if n := c.pinned[lineAddr]; n <= 1 {
		delete(c.pinned, lineAddr)
	} else {
		c.pinned[lineAddr] = n - 1
	}
}

// finishHit completes a previously scheduled hit, re-validating permission.
func (c *Cache) finishHit(req Request, now uint64) {
	lineAddr := c.geom.LineOf(req.Addr)
	l := c.lookup(lineAddr)
	needsEx := req.Kind == ReqWrite || req.Kind == ReqRMW || req.Kind == ReqReadEx
	lost := l == nil
	if !lost && needsEx && c.proto != ProtoUpdate && !writableState(l.state) {
		lost = true
	}
	if lost {
		// The line was invalidated or recalled between issue and completion.
		// Restart the access as a miss (merging if a fill is now pending).
		c.Stats.Counter("hits_lost_to_coherence").Inc()
		if _, wbPending := c.wb[lineAddr]; wbPending && c.mshrs[lineAddr] == nil {
			// The line was evicted out from under the access and its
			// writeback is in flight; retry after the ack.
			if DebugRetries {
				println("cache", int(c.ID), "finishHit wb-retry", int(req.Addr), "@", int(now))
			}
			c.pinned[lineAddr]++
			c.completions = append(c.completions, completion{at: now + 1, req: req})
			return
		}
		if m := c.mshrs[lineAddr]; m != nil {
			if needsEx && !m.exclusive {
				m.escalate = true
			}
			m.waiters = append(m.waiters, waiter{req: req})
			return
		}
		if c.startMiss(req, lineAddr, needsEx, false, now) == Blocked {
			// No MSHR free: retry next cycle via the completion queue.
			if DebugRetries {
				println("cache", int(c.ID), "finishHit blocked-retry", int(req.Addr), "@", int(now))
			}
			c.pinned[lineAddr]++
			c.completions = append(c.completions, completion{at: now + 1, req: req})
		}
		return
	}
	off := c.geom.Offset(req.Addr)
	switch req.Kind {
	case ReqRead, ReqReadEx:
		c.client.AccessComplete(req.ID, l.data[off], now)
	case ReqWrite:
		l.state = Modified // MESI: a store silently upgrades Exclusive
		l.data[off] = req.Data
		c.client.AccessComplete(req.ID, req.Data, now)
	case ReqRMW:
		l.state = Modified
		old := l.data[off]
		l.data[off] = req.RMW.Apply(old, req.Data)
		if DebugCacheTrace != nil && lineAddr == DebugCacheTraceLine {
			DebugCacheTrace(fmt.Sprintf("cache%d@%d: ATOMIC(hit) old=%d id=%d", c.ID, now, old, req.ID))
		}
		c.client.AccessComplete(req.ID, old, now)
	default:
		panic("cache: prefetch in completion queue")
	}
}
