// Package cache implements the lockup-free (non-blocking) private cache of
// each simulated processor, in the style of Kroft's lockup-free organization
// that the paper requires for both of its techniques: multiple outstanding
// misses are tracked in MSHRs, later references merge with in-flight
// requests (in particular, a demand access merges with an earlier prefetch
// of the same line and completes as soon as the prefetch result returns),
// and coherence traffic is serviced while misses are pending.
//
// The cache is also the detection point for the speculative-load technique:
// every invalidation, update and replacement that removes or changes a line
// is reported to the cache's client (the load/store unit), which matches it
// against the speculative-load buffer.
package cache

import (
	"fmt"

	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// State is the local state of a cached line. Under MSI the paper's
// "valid exclusive" corresponds to Modified. Under MESI a line granted
// exclusively but never written sits in Exclusive: it is clean (memory is
// current), writable without a directory transaction (a store silently
// upgrades it to Modified), and evictable silently (no writeback, no
// replacement hint — the directory discovers the departure lazily).
type State uint8

// Line states.
const (
	Invalid State = iota
	Shared
	Modified
	Exclusive // MESI only: exclusive and clean
)

func (s State) String() string {
	switch s {
	case Shared:
		return "shared"
	case Modified:
		return "exclusive"
	case Exclusive:
		return "exclusive-clean"
	default:
		return "invalid"
	}
}

// writableState reports whether a store may perform against the resident
// copy without a directory transaction: Modified always, Exclusive under
// MESI (the state never arises under MSI). The write itself must move an
// Exclusive line to Modified.
func writableState(s State) bool { return s == Modified || s == Exclusive }

// ReqKind distinguishes the request types the load/store unit can issue.
type ReqKind uint8

// Request kinds.
const (
	ReqRead       ReqKind = iota // demand load
	ReqWrite                     // demand store
	ReqRMW                       // demand atomic read-modify-write
	ReqPrefetch                  // non-binding read prefetch (line -> Shared)
	ReqPrefetchEx                // non-binding read-exclusive prefetch (line -> Modified)
	ReqReadEx                    // binding read that acquires exclusive ownership
	// (the speculative read-exclusive part of an RMW,
	// paper Appendix A)
)

func (k ReqKind) String() string {
	switch k {
	case ReqRead:
		return "read"
	case ReqWrite:
		return "write"
	case ReqRMW:
		return "rmw"
	case ReqPrefetch:
		return "prefetch"
	case ReqPrefetchEx:
		return "prefetch-ex"
	case ReqReadEx:
		return "read-ex"
	default:
		return "req(?)"
	}
}

// Request is one cache access from the load/store unit.
type Request struct {
	Kind ReqKind
	ID   uint64 // access identifier echoed in AccessComplete
	Addr uint64 // word address
	Data int64  // store data / RMW operand
	RMW  isa.RMWKind
}

// Result describes how an access was handled at issue time.
type Result uint8

// Access results.
const (
	// Hit: the line is present with sufficient permission; completion is
	// scheduled HitLatency cycles later. Consumes the cache port.
	Hit Result = iota
	// Miss: an MSHR was allocated and a request sent to the directory.
	// Consumes the cache port.
	Miss
	// Merged: the access joined an in-flight MSHR (typically a prefetch)
	// and will complete when that fill returns. Does not consume the port:
	// the combining happens in the miss buffers ("the reference request is
	// combined with the prefetch request so that a duplicate request is not
	// sent out").
	Merged
	// PrefetchDropped: the prefetch found the line already present or
	// already being fetched and was discarded. Consumes the port (the
	// prefetch probed the cache).
	PrefetchDropped
	// Blocked: no MSHR is available; the issuer must retry later. Does not
	// consume the port.
	Blocked
)

// EventKind classifies coherence events reported to the client for the
// speculative-load buffer's detection mechanism (paper §4.2: invalidations,
// updates, and replacements are monitored).
type EventKind uint8

// Coherence events.
const (
	EvInvalidate EventKind = iota
	EvUpdate
	EvReplace
)

func (e EventKind) String() string {
	switch e {
	case EvInvalidate:
		return "invalidate"
	case EvUpdate:
		return "update"
	default:
		return "replace"
	}
}

// OwnershipListener is an optional extension of Client used by the
// Adve-Hill comparator (paper §6): it is told when exclusive ownership for
// a write arrives even though the write has not performed everywhere
// (invalidation acks are still outstanding).
type OwnershipListener interface {
	AccessOwnership(id uint64, now uint64)
}

// Client receives completion callbacks and coherence events. The load/store
// unit implements Client.
type Client interface {
	// AccessComplete reports that the access with the given ID performed.
	// For loads and RMWs, value is the bound return value.
	AccessComplete(id uint64, value int64, now uint64)
	// CoherenceEvent reports an invalidation, update or replacement of a
	// line so the speculative-load buffer can match addresses against it.
	CoherenceEvent(line uint64, kind EventKind, now uint64)
}

// Config holds cache geometry and timing.
type Config struct {
	Sets       int    // number of sets (power of two)
	Ways       int    // associativity
	MaxMSHRs   int    // maximum outstanding line fills
	HitLatency uint64 // cycles from issue to completion for a hit
}

// DefaultConfig returns a configuration large enough that the paper's
// examples never conflict-miss: 256 sets, 4 ways, 16 MSHRs, 1-cycle hits.
func DefaultConfig() Config {
	return Config{Sets: 256, Ways: 4, MaxMSHRs: 16, HitLatency: 1}
}

type line struct {
	addr     uint64 // line-aligned address
	state    State
	data     []int64
	grantVer uint64 // directory version of the grant that installed it
	lastUse  uint64 // for LRU
}

type waiter struct {
	req Request
}

type deferredEvent struct {
	typ       network.MsgType
	tag       uint64
	word      uint64
	value     int64
	requester network.NodeID
}

type mshr struct {
	lineAddr  uint64
	exclusive bool
	waiters   []waiter
	deferred  []deferredEvent

	dataArrived bool
	data        []int64
	grantVer    uint64
	acksNeeded  int
	acksGot     int
	ackKnown    bool // DataEx arrived, acksNeeded is valid

	escalate bool // a write merged into a shared fill: re-request exclusively
}

func (m *mshr) fillComplete() bool {
	return m.dataArrived && m.ackKnown && m.acksGot >= m.acksNeeded
}

type completion struct {
	at  uint64
	req Request
}

type wbEntry struct {
	data []int64
}

// updateXact tracks one outstanding write under the update protocol (or an
// agent-style direct write): it completes when the directory's UpdateDone
// and all sharer acks arrive.
type updateXact struct {
	req        Request
	word       uint64
	dirTag     uint64 // 0 until UpdateDone arrives
	acksNeeded int
	acksGot    int
	doneSeen   bool
	oldValue   int64
}

// Cache is one processor's private lockup-free cache.
type Cache struct {
	ID    network.NodeID
	DirID network.NodeID
	// homes, when non-nil, interleaves lines across several home nodes
	// (distributed memory); DirID is the fallback single home.
	homes  []network.NodeID
	net    network.Port
	geom   memsys.Geometry
	cfg    Config
	proto  Protocol
	client Client

	sets        [][]*line
	mshrs       map[uint64]*mshr // by line address
	wb          map[uint64]*wbEntry
	completions []completion
	xacts       []*updateXact
	ackPool     map[ackKey]int
	useClock    uint64

	// pinned counts scheduled-but-unfinished hit completions per line;
	// pinned lines cannot be victimized (paper footnote 3: a replacement of
	// a line with an outstanding access must be delayed).
	pinned map[uint64]int
	// retryInstalls holds completed fills that found no victimizable way;
	// they retry each Tick.
	retryInstalls []*mshr

	// mshrPool / wbPool are RestoreState scratch: the discarded state's
	// objects, collected for in-place reuse (rollback restores once per
	// mis-speculated window, so this path must stay off the allocator).
	mshrPool []*mshr
	wbPool   []*wbEntry

	// NST bypass mode (paper §6 Stenstrom comparator).
	bypass         bool
	nstOutstanding int

	Stats *stats.Set
}

// Protocol mirrors coherence.Protocol; redeclared to keep the cache free of
// a dependency on the coherence package (they communicate only via network
// messages). The numeric values must match.
type Protocol uint8

// Protocol values (must match coherence.ProtoInvalidate / ProtoUpdate /
// ProtoMESI).
const (
	ProtoInvalidate Protocol = iota
	ProtoUpdate
	ProtoMESI
)

type ackKey struct {
	lineAddr uint64
	tag      uint64
}

// New creates a cache attached to the network.
func New(id, dirID network.NodeID, net *network.Network, geom memsys.Geometry, cfg Config, proto Protocol, client Client) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets must be a power of two, got %d", cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	c := &Cache{
		ID: id, DirID: dirID, net: net, geom: geom, cfg: cfg, proto: proto, client: client,
		sets:    make([][]*line, cfg.Sets),
		mshrs:   make(map[uint64]*mshr),
		wb:      make(map[uint64]*wbEntry),
		ackPool: make(map[ackKey]int),
		pinned:  make(map[uint64]int),
		Stats:   stats.NewSet(fmt.Sprintf("cache%d", id)),
	}
	net.Attach(id, c)
	return c
}

func (c *Cache) setIndex(lineAddr uint64) int {
	return int((lineAddr / c.geom.LineWords) % uint64(c.cfg.Sets))
}

// lookup returns the resident line, or nil.
func (c *Cache) lookup(lineAddr uint64) *line {
	for _, l := range c.sets[c.setIndex(lineAddr)] {
		if l.addr == lineAddr && l.state != Invalid {
			return l
		}
	}
	return nil
}

// Proto returns the coherence protocol the cache participates in.
func (c *Cache) Proto() Protocol { return c.proto }

// SetClient rebinds the completion/event listener; used when a fresh
// load/store unit is attached to a warmed cache between program phases.
func (c *Cache) SetClient(cl Client) { c.client = cl }

// SetHomes interleaves lines across several home directory nodes.
func (c *Cache) SetHomes(homes []network.NodeID) { c.homes = homes }

// SetPort rebinds the cache onto a different network port (a shard-private
// endpoint during a parallel run, the network itself after).
func (c *Cache) SetPort(p network.Port) { c.net = p }

// homeFor returns the home node for a line.
func (c *Cache) homeFor(lineAddr uint64) network.NodeID {
	if len(c.homes) == 0 {
		return c.DirID
	}
	return c.homes[(lineAddr/c.geom.LineWords)%uint64(len(c.homes))]
}

// StateOf returns the local state of the line containing addr, without side
// effects. The prefetcher uses it to discard useless prefetches.
func (c *Cache) StateOf(addr uint64) State {
	l := c.lookup(c.geom.LineOf(addr))
	if l == nil {
		return Invalid
	}
	return l.state
}

// HasMSHR reports whether a fill is outstanding for the line containing
// addr, and whether that fill is exclusive.
func (c *Cache) HasMSHR(addr uint64) (outstanding, exclusive bool) {
	m, ok := c.mshrs[c.geom.LineOf(addr)]
	if !ok {
		return false, false
	}
	return true, m.exclusive
}

// OutstandingFills reports the number of active MSHRs (used by the
// quiescence check and by tests).
func (c *Cache) OutstandingFills() int { return len(c.mshrs) }

// PendingWork reports whether the cache still has scheduled completions,
// outstanding fills, writebacks awaiting ack, or update transactions.
func (c *Cache) PendingWork() bool {
	return len(c.completions) > 0 || len(c.mshrs) > 0 || len(c.wb) > 0 ||
		len(c.xacts) > 0 || len(c.retryInstalls) > 0 || c.nstOutstanding > 0
}

// NextWake reports when the cache's own clock next matters: a stalled
// install retries every cycle (and counts the retry in its stats, so the
// dense loop must run), and a scheduled hit completion fires at its
// recorded cycle. MSHRs, writebacks and update transactions advance only on
// message arrival, which the simulator tracks via Network.NextDelivery.
func (c *Cache) NextWake(now uint64) (uint64, bool) {
	if len(c.retryInstalls) > 0 {
		return now, true
	}
	var wake uint64
	ok := false
	for _, comp := range c.completions {
		if comp.at <= now {
			return now, true
		}
		if !ok || comp.at < wake {
			wake, ok = comp.at, true
		}
	}
	return wake, ok
}
