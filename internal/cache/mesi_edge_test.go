package cache_test

import (
	"testing"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
)

// TestMESIStoreToExclusiveIsSilent: under MESI a read miss to an uncached
// line installs Exclusive, and a later store upgrades it to Modified with
// no bus traffic at all — one miss total. Under MSI the same sequence pays
// a second transaction (the GetX upgrade from Shared).
func TestMESIStoreToExclusiveIsSilent(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoMESI)
	h.mem.WriteWord(0x40, 7)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	if st := h.caches[0].StateOf(0x40); st != cache.Exclusive {
		t.Fatalf("state after read fill = %v, want exclusive-clean", st)
	}
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x40, Data: 9}, h.cycle); res != cache.Hit {
		t.Fatalf("store to exclusive-clean line = %v, want Hit", res)
	}
	h.settle(t)
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Errorf("state after store = %v, want exclusive (Modified)", st)
	}
	if v, ok := h.clients[0].done(2); !ok || v != 9 {
		t.Errorf("store completion = %d,%v, want 9", v, ok)
	}
	if got := h.caches[0].Stats.Counter("misses").Value(); got != 1 {
		t.Errorf("MESI misses = %d, want 1 (silent upgrade)", got)
	}

	// The MSI control: same sequence, one extra exclusive transaction.
	m := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	m.mem.WriteWord(0x40, 7)
	m.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, m.cycle)
	m.settle(t)
	if st := m.caches[0].StateOf(0x40); st != cache.Shared {
		t.Fatalf("MSI state after read fill = %v, want shared", st)
	}
	if res := m.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x40, Data: 9}, m.cycle); res != cache.Miss {
		t.Fatalf("MSI store to shared line = %v, want Miss (GetX upgrade)", res)
	}
	m.settle(t)
	if got := m.caches[0].Stats.Counter("misses").Value(); got != 2 {
		t.Errorf("MSI misses = %d, want 2 (read fill + upgrade)", got)
	}
}

// TestMESISilentCleanEviction: evicting an exclusive-clean line sends
// nothing — no writeback, no replacement hint — and the directory finds
// out only when the cache next asks for the line, via the silent-eviction
// re-grant.
func TestMESISilentCleanEviction(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
	h := newHarness(t, 1, cfg, 1, coherence.ProtoMESI)
	h.mem.WriteWord(0x40, 7)
	h.mem.WriteWord(0x41, 8)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)

	// The conflicting read evicts the exclusive-clean 0x40.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle)
	h.settle(t)
	if st := h.caches[0].StateOf(0x40); st != cache.Invalid {
		t.Fatalf("victim state = %v, want invalid", st)
	}
	if got := h.caches[0].Stats.Counter("silent_evictions").Value(); got != 1 {
		t.Errorf("silent evictions = %d, want 1", got)
	}
	if got := h.dir.Stats.Counter("replace_hints").Value(); got != 0 {
		t.Errorf("replace hints = %d, want 0 (eviction must be silent)", got)
	}
	sawReplace := false
	for _, ev := range h.clients[0].events {
		if ev.line == 0x40 && ev.kind == cache.EvReplace {
			sawReplace = true
		}
	}
	if !sawReplace {
		t.Error("silent eviction not reported to the client as a replacement")
	}

	// Re-reading the line exercises the directory's re-grant path
	// end-to-end: the directory still lists cache 0 as owner.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 3, Addr: 0x40}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(3); !ok || v != 7 {
		t.Fatalf("re-read after silent eviction = %d,%v, want 7", v, ok)
	}
	if got := h.dir.Stats.Counter("silent_eviction_regrants").Value(); got != 1 {
		t.Errorf("silent-eviction re-grants = %d, want 1", got)
	}
}

// TestMESIRecallAfterSilentEviction: a remote writer recalls a line whose
// exclusive-clean owner silently dropped it. The owner answers with a
// no-copy writeback, memory's copy stands, and the writer completes;
// everyone then converges on the written value.
func TestMESIRecallAfterSilentEviction(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
	h := newHarness(t, 2, cfg, 1, coherence.ProtoMESI)
	h.mem.WriteWord(0x40, 7)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	// Evict 0x40 silently; the directory still believes cache 0 owns it.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle)
	h.settle(t)

	if h.caches[1].Access(cache.Request{Kind: cache.ReqWrite, ID: 3, Addr: 0x40, Data: 5}, h.cycle) == cache.Blocked {
		t.Fatal("remote write blocked")
	}
	h.settle(t)
	if v, ok := h.clients[1].done(3); !ok || v != 5 {
		t.Fatalf("remote write completion = %d,%v, want 5", v, ok)
	}
	if got := h.caches[0].Stats.Counter("recall_nocopy").Value(); got != 1 {
		t.Errorf("no-copy recall answers = %d, want 1", got)
	}
	for c := 0; c < 2; c++ {
		id := uint64(10 + c)
		h.caches[c].Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: 0x40}, h.cycle)
		h.settle(t)
		if v, ok := h.clients[c].done(id); !ok || v != 5 {
			t.Fatalf("cache %d converged on %d,%v, want 5", c, v, ok)
		}
	}
}
