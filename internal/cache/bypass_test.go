package cache_test

import (
	"testing"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/isa"
)

func TestBypassRMWReturnsOldValue(t *testing.T) {
	h := newHarness(t, 2, smallConfig(), 1, coherence.ProtoInvalidate)
	for _, c := range h.caches {
		c.EnableBypass()
	}
	h.mem.WriteWord(0x40, 10)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRMW, ID: 1, Addr: 0x40, Data: 5, RMW: isa.RMWFetchAdd}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(1); !ok || v != 10 {
		t.Fatalf("bypass RMW old value = %d,%v, want 10", v, ok)
	}
	if got := h.mem.ReadWord(0x40); got != 15 {
		t.Fatalf("memory after fetch-add = %d, want 15", got)
	}
	// The atomicity point is the memory module: a second RMW from another
	// processor sees the first one's result.
	h.caches[1].Access(cache.Request{Kind: cache.ReqRMW, ID: 2, Addr: 0x40, Data: 1, RMW: isa.RMWFetchAdd}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[1].done(2); !ok || v != 15 {
		t.Fatalf("second RMW old value = %d,%v, want 15", v, ok)
	}
	if got := h.mem.ReadWord(0x40); got != 16 {
		t.Fatalf("memory after both = %d, want 16", got)
	}
}

func TestBypassProgramOrderPreserved(t *testing.T) {
	// Stenström's scheme relies on the memory module seeing one processor's
	// requests in issue order (the next-sequence-number table; here the FIFO
	// network). A write followed by a read of the same word from the same
	// processor must read the written value.
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].EnableBypass()
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 4}, h.cycle)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle)
	if h.caches[0].PendingWork() == false {
		t.Fatal("bypass accesses should be outstanding")
	}
	h.settle(t)
	if v, ok := h.clients[0].done(2); !ok || v != 4 {
		t.Fatalf("read after write = %d,%v, want 4", v, ok)
	}
}

func TestUncachedAccessLeavesCacheCold(t *testing.T) {
	// Appendix A: RMWs to non-cached synchronization locations go straight
	// to memory even on a machine that otherwise caches everything.
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.mem.WriteWord(0x40, 1)
	if h.caches[0].BypassEnabled() {
		t.Fatal("cache unexpectedly in NST mode")
	}
	h.caches[0].UncachedAccess(cache.Request{Kind: cache.ReqRMW, ID: 1, Addr: 0x40, Data: 1, RMW: isa.RMWTestAndSet}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(1); !ok || v != 1 {
		t.Fatalf("uncached TAS old value = %d,%v, want 1", v, ok)
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Invalid {
		t.Fatalf("uncached access installed a line: %v", st)
	}
	// The same cache can still use normal cached accesses afterwards.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(2); !ok || v != 1 {
		t.Fatalf("cached read after uncached RMW = %d,%v, want 1", v, ok)
	}
}
