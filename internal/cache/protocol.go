package cache

import (
	"fmt"

	"mcmsim/internal/network"
)

// HandleMessage implements network.Handler for the processor-side cache.
func (c *Cache) HandleMessage(m *network.Message, now uint64) {
	if DebugCacheTrace != nil && m.Line == DebugCacheTraceLine {
		st := "absent"
		if l := c.lookup(m.Line); l != nil {
			st = l.state.String()
		}
		_, hasWB := c.wb[m.Line]
		DebugCacheTrace(fmt.Sprintf("cache%d@%d: %v tag=%d | line=%s mshr=%v wb=%v", c.ID, now, m.Type, m.Tag, st, c.mshrs[m.Line] != nil, hasWB))
	}
	switch m.Type {
	case network.MsgData:
		c.handleData(m, false, now)
	case network.MsgDataEx:
		c.handleData(m, true, now)
	case network.MsgInvAck:
		c.handleInvAck(m, now)
	case network.MsgInv:
		c.handleInv(m, now)
	case network.MsgUpdate:
		c.handleUpdate(m, now)
	case network.MsgUpdateAck:
		c.handleUpdateAck(m, now)
	case network.MsgUpdateDone:
		c.handleUpdateDone(m, now)
	case network.MsgRecallShare, network.MsgRecallInv:
		c.handleRecall(m, now)
	case network.MsgWBAck:
		delete(c.wb, m.Line)
	case network.MsgMemRdResp, network.MsgMemWrAck:
		c.handleBypassResponse(m, now)
	default:
		panic(fmt.Sprintf("cache %d: unexpected message %v", c.ID, m.Type))
	}
}

// handleData processes a fill response (shared or exclusive grant).
func (c *Cache) handleData(m *network.Message, exclusive bool, now uint64) {
	ms, ok := c.mshrs[m.Line]
	if !ok {
		panic(fmt.Sprintf("cache %d: fill for line %#x with no MSHR", c.ID, m.Line))
	}
	ms.dataArrived = true
	ms.data = append([]int64(nil), m.Data...)
	ms.grantVer = m.Tag
	ms.ackKnown = true
	if exclusive {
		ms.acksNeeded = m.AckCount
	} else {
		ms.acksNeeded = 0
	}
	ms.exclusive = exclusive
	if key := (ackKey{m.Line, m.Tag}); c.ackPool[key] > 0 {
		// Invalidation acks that raced ahead of the data response.
		ms.acksGot += c.ackPool[key]
		delete(c.ackPool, key)
	}
	if ms.fillComplete() {
		c.installFill(ms, now)
		return
	}
	if exclusive {
		// Ownership has arrived but invalidation acks are outstanding:
		// tell an Adve-Hill-style client (paper §6 comparator).
		c.notifyOwnership(ms, now)
	}
}

// notifyOwnership reports early exclusive ownership for the write-class
// waiters of an MSHR to a client that cares.
func (c *Cache) notifyOwnership(ms *mshr, now uint64) {
	ol, ok := c.client.(OwnershipListener)
	if !ok {
		return
	}
	for _, w := range ms.waiters {
		switch w.req.Kind {
		case ReqWrite, ReqRMW, ReqReadEx:
			ol.AccessOwnership(w.req.ID, now)
		}
	}
}

// handleInvAck counts an invalidation ack for a pending exclusive fill.
// Acks can arrive before the data response; they are pooled by tag until the
// MSHR learns its grant tag.
func (c *Cache) handleInvAck(m *network.Message, now uint64) {
	ms, ok := c.mshrs[m.Line]
	if ok && ms.dataArrived && ms.grantVer == m.Tag {
		ms.acksGot++
		if ms.fillComplete() {
			c.installFill(ms, now)
		}
		return
	}
	if ok {
		c.ackPool[ackKey{m.Line, m.Tag}]++
		return
	}
	panic(fmt.Sprintf("cache %d: InvAck for line %#x with no MSHR", c.ID, m.Line))
}

// installFill installs a completed fill: victimize a way, install the line,
// complete waiters in order, then apply any coherence events that arrived
// during the fill, in directory order (version-checked).
func (c *Cache) installFill(ms *mshr, now uint64) {
	state := Shared
	if ms.exclusive {
		// Under MESI an exclusive grant installs clean; the first store
		// upgrades it to Modified in place (below, or in finishHit). Under
		// MSI the grant installs dirty as before.
		if c.proto == ProtoMESI {
			state = Exclusive
		} else {
			state = Modified
		}
	}
	// An exclusive grant for a line we already hold shared is an upgrade:
	// refresh the resident copy in place rather than allocating a new way.
	l := c.lookup(ms.lineAddr)
	if l != nil {
		l.state = state
		l.data = ms.data
		l.grantVer = ms.grantVer
		l.lastUse = c.useClock
		c.useClock++
		delete(c.mshrs, ms.lineAddr)
	} else {
		if !c.victimize(ms.lineAddr, now) {
			// Every way in the set holds a line with an outstanding access
			// (paper footnote 3: such replacements must be delayed). Retry
			// the install next cycle; the MSHR stays allocated meanwhile.
			c.retryInstalls = append(c.retryInstalls, ms)
			c.Stats.Counter("install_retries").Inc()
			return
		}
		delete(c.mshrs, ms.lineAddr)
		l = &line{addr: ms.lineAddr, state: state, data: ms.data, grantVer: ms.grantVer, lastUse: c.useClock}
		c.useClock++
		set := c.sets[c.setIndex(ms.lineAddr)]
		placed := false
		for i, existing := range set {
			if existing.state == Invalid {
				set[i] = l
				placed = true
				break
			}
		}
		if !placed {
			panic("cache: victimize left no free way")
		}
	}

	if DebugCacheTrace != nil && ms.lineAddr == DebugCacheTraceLine {
		DebugCacheTrace(fmt.Sprintf("cache%d@%d: installFill ex=%v ver=%d data=%v waiters=%d deferred=%d", c.ID, now, ms.exclusive, ms.grantVer, ms.data, len(ms.waiters), len(ms.deferred)))
	}

	// Deferred events serialized before our grant are superseded for the
	// line state (the fill data already reflects them) but must still reach
	// the client before any waiter completes: the speculative-load buffer
	// matches by address, and a value speculated from the line's previous
	// incarnation is exactly what such an event invalidates. Dropping the
	// notification would let a stale speculation commit undetected.
	c.notifySupersededDeferred(ms, now)

	// For a shared fill, coherence events that arrived during the fill are
	// ordered before the waiting loads bind: applying them first lets the
	// speculative-load buffer catch the match while the load is still
	// incomplete — §4.2's second case, where only the load is reissued.
	// An exclusive fill must complete its waiters first: the written data
	// is what a deferred recall has to carry away.
	if !ms.exclusive {
		c.applyDeferred(ms, now)
	}

	// Complete waiters in arrival order, applying writes as they complete.
	// A deferred invalidation (applied first on shared fills) may have
	// emptied the resident line; reads then bind from the fill data, which
	// is the value their coherence order entitles them to. (If the read was
	// speculative, the same deferred event already reissued or squashed it
	// and this completion is dropped as stale.)
	readData := l.data
	if len(readData) == 0 {
		readData = ms.data
	}
	var escalated []waiter
	for _, w := range ms.waiters {
		req := w.req
		off := c.geom.Offset(req.Addr)
		switch req.Kind {
		case ReqRead:
			c.client.AccessComplete(req.ID, readData[off], now)
		case ReqReadEx:
			if !writableState(l.state) {
				escalated = append(escalated, w)
				continue
			}
			c.client.AccessComplete(req.ID, l.data[off], now)
		case ReqWrite:
			if c.proto == ProtoUpdate {
				// Write-allocate fill finished; now send the word update.
				c.sendUpdateReq(req, now)
				continue
			}
			if !writableState(l.state) {
				escalated = append(escalated, w)
				continue
			}
			l.state = Modified
			l.data[off] = req.Data
			if DebugCacheTrace != nil && ms.lineAddr == DebugCacheTraceLine {
				DebugCacheTrace(fmt.Sprintf("cache%d@%d: WRITE(fill) val=%d id=%d", c.ID, now, req.Data, req.ID))
			}
			c.client.AccessComplete(req.ID, req.Data, now)
		case ReqRMW:
			if !writableState(l.state) {
				escalated = append(escalated, w)
				continue
			}
			l.state = Modified
			old := l.data[off]
			l.data[off] = req.RMW.Apply(old, req.Data)
			if DebugCacheTrace != nil && ms.lineAddr == DebugCacheTraceLine {
				DebugCacheTrace(fmt.Sprintf("cache%d@%d: ATOMIC(fill) old=%d id=%d", c.ID, now, old, req.ID))
			}
			c.client.AccessComplete(req.ID, old, now)
		}
	}

	if len(escalated) > 0 || (ms.escalate && !writableState(l.state)) {
		// A write merged into a shared fill: immediately request
		// exclusivity, carrying the unserved writes as waiters.
		nm := &mshr{lineAddr: ms.lineAddr, exclusive: true, waiters: escalated}
		c.mshrs[ms.lineAddr] = nm
		c.net.Post(network.Message{
			Type: network.MsgGetX, Src: c.ID, Dst: c.homeFor(ms.lineAddr), Line: ms.lineAddr,
		}, now)
		c.Stats.Counter("escalations").Inc()
	}

	// Exclusive fills apply deferred coherence events after the waiters.
	if ms.exclusive {
		c.applyDeferred(ms, now)
	}
}

// notifySupersededDeferred filters out deferred events whose directory
// version precedes the grant — the fill data already reflects them, so they
// must not be applied to the line — while still reporting each one to the
// client as a pure notification. Under MSI a recall can never be
// superseded: the directory does not grant past an unanswered recall. Under
// MESI it can: a recall aimed at a silently evicted Exclusive copy races
// our re-request, the directory proves the copy is gone from the request
// itself and self-completes the recall, and the grant it then issues
// carries a newer version than the recall. The stale recall is dropped
// (the directory is not waiting for an answer), with a conservative
// invalidate notification for the speculative-load buffer.
func (c *Cache) notifySupersededDeferred(ms *mshr, now uint64) {
	keep := ms.deferred[:0]
	for _, ev := range ms.deferred {
		if ev.tag > ms.grantVer {
			keep = append(keep, ev)
			continue
		}
		switch ev.typ {
		case network.MsgInv:
			c.client.CoherenceEvent(ms.lineAddr, EvInvalidate, now)
		case network.MsgUpdate:
			c.client.CoherenceEvent(ms.lineAddr, EvUpdate, now)
		case network.MsgRecallShare, network.MsgRecallInv:
			if c.proto != ProtoMESI {
				panic(fmt.Sprintf("cache %d: dropping deferred recall tag=%d grant=%d line=%#x", c.ID, ev.tag, ms.grantVer, ms.lineAddr))
			}
			c.Stats.Counter("superseded_recalls").Inc()
			c.client.CoherenceEvent(ms.lineAddr, EvInvalidate, now)
		default:
			panic(fmt.Sprintf("cache %d: dropping deferred %v tag=%d grant=%d line=%#x", c.ID, ev.typ, ev.tag, ms.grantVer, ms.lineAddr))
		}
	}
	ms.deferred = keep
}

// applyDeferred processes the coherence events that arrived while the fill
// was pending, in directory order. Superseded events were already filtered
// (and notified) by notifySupersededDeferred.
func (c *Cache) applyDeferred(ms *mshr, now uint64) {
	deferred := ms.deferred
	ms.deferred = nil
	for _, ev := range deferred {
		switch ev.typ {
		case network.MsgInv:
			c.applyInvalidate(ms.lineAddr, now)
		case network.MsgUpdate:
			c.applyUpdate(ms.lineAddr, ev.word, ev.value, ev.tag, now)
		case network.MsgRecallShare, network.MsgRecallInv:
			c.respondRecall(ms.lineAddr, ev.typ, ev.tag, now)
		}
	}
}

// victimize ensures the set for lineAddr has a free way, evicting the LRU
// line if necessary, and reports whether a way is available. Lines with a
// scheduled hit completion are pinned and cannot be victims (paper footnote
// 3); a replacement of a line with a matching speculative-load-buffer entry
// is allowed and reported to the client, which conservatively squashes
// (§4.1).
func (c *Cache) victimize(lineAddr uint64, now uint64) bool {
	idx := c.setIndex(lineAddr)
	set := c.sets[idx]
	if set == nil {
		set = make([]*line, c.cfg.Ways)
		for i := range set {
			set[i] = &line{state: Invalid}
		}
		c.sets[idx] = set
	}
	for _, l := range set {
		if l.state == Invalid {
			return true
		}
	}
	// Evict the least recently used unpinned resident line.
	var victim *line
	for _, l := range set {
		if c.pinned[l.addr] > 0 {
			continue
		}
		if victim == nil || l.lastUse < victim.lastUse {
			victim = l
		}
	}
	if victim == nil {
		return false
	}
	c.evict(victim, now)
	return true
}

// evict removes a resident line, writing back dirty data and notifying both
// the directory and the client (replacement detection for the
// speculative-load buffer).
func (c *Cache) evict(l *line, now uint64) {
	c.Stats.Counter("evictions").Inc()
	switch l.state {
	case Modified:
		c.wb[l.addr] = &wbEntry{data: append([]int64(nil), l.data...)}
		c.net.Post(network.Message{
			Type: network.MsgWriteBack, Src: c.ID, Dst: c.homeFor(l.addr),
			Line: l.addr, Data: append([]int64(nil), l.data...), Tag: l.grantVer,
		}, now)
	case Exclusive:
		// MESI silent clean eviction: memory is current and the directory
		// still names us owner; it learns of the departure from our next
		// request for the line or from an unanswerable recall.
		c.Stats.Counter("silent_evictions").Inc()
	default:
		c.net.Post(network.Message{
			Type: network.MsgReplaceHint, Src: c.ID, Dst: c.homeFor(l.addr), Line: l.addr,
		}, now)
	}
	addr := l.addr
	l.state = Invalid
	l.data = nil
	c.client.CoherenceEvent(addr, EvReplace, now)
}

// handleInv processes an invalidation. The ack is always sent promptly to
// the requesting writer (early acknowledgment; safe because the directory
// serialized our copy before the write, and conservative for the
// speculative-load buffer, which squashes on the event). Application is
// deferred if a fill is pending, ordered by version.
func (c *Cache) handleInv(m *network.Message, now uint64) {
	c.net.Post(network.Message{
		Type: network.MsgInvAck, Src: c.ID, Dst: m.Requester, Line: m.Line, Tag: m.Tag,
	}, now)
	if ms, ok := c.mshrs[m.Line]; ok {
		ms.deferred = append(ms.deferred, deferredEvent{typ: network.MsgInv, tag: m.Tag})
		return
	}
	if l := c.lookup(m.Line); l != nil {
		if m.Tag > l.grantVer {
			c.applyInvalidate(m.Line, now)
		} else {
			// Superseded by a newer grant: the resident copy already
			// reflects the write this invalidation announces, but the
			// speculative-load buffer may hold values bound from the
			// line's previous incarnation — notify without applying.
			c.client.CoherenceEvent(m.Line, EvInvalidate, now)
		}
	}
	// Absent line: whatever removed it (eviction, recall, earlier
	// invalidation) already produced its own coherence event.
}

func (c *Cache) applyInvalidate(lineAddr uint64, now uint64) {
	if l := c.lookup(lineAddr); l != nil {
		l.state = Invalid
		l.data = nil
		c.Stats.Counter("invalidations_received").Inc()
		c.client.CoherenceEvent(lineAddr, EvInvalidate, now)
	}
}

// handleUpdate processes a word update from the update protocol.
func (c *Cache) handleUpdate(m *network.Message, now uint64) {
	c.net.Post(network.Message{
		Type: network.MsgUpdateAck, Src: c.ID, Dst: m.Requester, Line: m.Line, Tag: m.Tag,
	}, now)
	if ms, ok := c.mshrs[m.Line]; ok {
		ms.deferred = append(ms.deferred, deferredEvent{typ: network.MsgUpdate, tag: m.Tag, word: m.Word, value: m.Value})
		return
	}
	c.applyUpdate(m.Line, m.Word, m.Value, m.Tag, now)
}

func (c *Cache) applyUpdate(lineAddr, word uint64, value int64, tag uint64, now uint64) {
	l := c.lookup(lineAddr)
	if l == nil {
		return
	}
	if tag > l.grantVer {
		l.data[c.geom.Offset(word)] = value
		l.grantVer = tag
		c.Stats.Counter("updates_received").Inc()
	}
	// Notified even when superseded by a newer grant: the update still
	// announces a write the speculative-load buffer may have raced.
	c.client.CoherenceEvent(lineAddr, EvUpdate, now)
}

// handleUpdateAck credits a sharer ack to the outstanding write transaction
// with the matching directory tag, pooling early acks.
func (c *Cache) handleUpdateAck(m *network.Message, now uint64) {
	for _, x := range c.xacts {
		if x.doneSeen && x.dirTag == m.Tag && c.geom.LineOf(x.word) == m.Line {
			x.acksGot++
			c.completeUpdateXacts(now)
			return
		}
	}
	c.ackPool[ackKey{m.Line, m.Tag}]++
}

// handleUpdateDone records the directory's completion of a word write. The
// oldest transaction for this word without a directory tag is the match
// (directory responses arrive in request order).
func (c *Cache) handleUpdateDone(m *network.Message, now uint64) {
	for _, x := range c.xacts {
		if !x.doneSeen && x.word == m.Word {
			x.doneSeen = true
			x.dirTag = m.Tag
			x.acksNeeded = m.AckCount
			x.oldValue = m.Value
			if n := c.ackPool[ackKey{m.Line, m.Tag}]; n > 0 {
				x.acksGot += n
				delete(c.ackPool, ackKey{m.Line, m.Tag})
			}
			c.completeUpdateXacts(now)
			return
		}
	}
	panic(fmt.Sprintf("cache %d: UpdateDone with no matching transaction", c.ID))
}

// completeUpdateXacts retires finished update transactions in order and
// applies the written value to the local copy.
func (c *Cache) completeUpdateXacts(now uint64) {
	remaining := c.xacts[:0]
	for _, x := range c.xacts {
		if !(x.doneSeen && x.acksGot >= x.acksNeeded) {
			remaining = append(remaining, x)
			continue
		}
		if l := c.lookup(c.geom.LineOf(x.word)); l != nil && x.dirTag > l.grantVer {
			newVal := x.req.Data
			if x.req.Kind == ReqRMW {
				newVal = x.req.RMW.Apply(x.oldValue, x.req.Data)
			}
			l.data[c.geom.Offset(x.word)] = newVal
			l.grantVer = x.dirTag
		}
		value := x.req.Data
		if x.req.Kind == ReqRMW {
			value = x.oldValue // RMWs return the old value
		}
		c.client.AccessComplete(x.req.ID, value, now)
	}
	c.xacts = remaining
}

// handleRecall serves a directory recall of a dirty line: respond with the
// data and downgrade (RecallShare) or invalidate (RecallInv). If the line
// was voluntarily written back, the recall refers to that old copy — answer
// from the writeback buffer even if a new fill for the line is already in
// flight (the directory serialized the recall before our new request). Only
// when no writeback is pending does a recall wait for the outstanding fill.
func (c *Cache) handleRecall(m *network.Message, now uint64) {
	if wbe, ok := c.wb[m.Line]; ok {
		// AckCount=0 tells the directory the responder retains no copy.
		c.net.Post(network.Message{
			Type: network.MsgWriteBack, Src: c.ID, Dst: c.homeFor(m.Line),
			Line: m.Line, Data: append([]int64(nil), wbe.data...), Tag: m.Tag, AckCount: 0,
		}, now)
		return
	}
	if ms, ok := c.mshrs[m.Line]; ok {
		ms.deferred = append(ms.deferred, deferredEvent{typ: m.Type, tag: m.Tag, requester: m.Requester})
		return
	}
	c.respondRecall(m.Line, m.Type, m.Tag, now)
}

func (c *Cache) respondRecall(lineAddr uint64, typ network.MsgType, tag uint64, now uint64) {
	if l := c.lookup(lineAddr); l != nil {
		retained := 0
		if typ == network.MsgRecallShare {
			retained = 1
		}
		c.net.Post(network.Message{
			Type: network.MsgWriteBack, Src: c.ID, Dst: c.homeFor(lineAddr),
			Line: lineAddr, Data: append([]int64(nil), l.data...), Tag: tag, AckCount: retained,
		}, now)
		if typ == network.MsgRecallInv {
			c.applyInvalidate(lineAddr, now)
		} else {
			l.state = Shared
			l.grantVer = tag
		}
		return
	}
	if wbe, ok := c.wb[lineAddr]; ok {
		c.net.Post(network.Message{
			Type: network.MsgWriteBack, Src: c.ID, Dst: c.homeFor(lineAddr),
			Line: lineAddr, Data: append([]int64(nil), wbe.data...), Tag: tag, AckCount: 0,
		}, now)
		return
	}
	if c.proto == ProtoMESI {
		// The recall found nothing: our Exclusive copy was silently evicted
		// (it was clean, so memory is current). Answer "no copy" — nil data
		// tells the directory to skip the memory write, AckCount=0 that no
		// copy is retained.
		c.Stats.Counter("recall_nocopy").Inc()
		c.net.Post(network.Message{
			Type: network.MsgWriteBack, Src: c.ID, Dst: c.homeFor(lineAddr),
			Line: lineAddr, Data: nil, Tag: tag, AckCount: 0,
		}, now)
		return
	}
	panic(fmt.Sprintf("cache %d: recall for absent line %#x", c.ID, lineAddr))
}
