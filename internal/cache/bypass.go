package cache

import (
	"fmt"

	"mcmsim/internal/network"
)

// Bypass mode implements the Stenström comparator of paper §6: the cache is
// disabled and every access is a sequenced request to the memory module.
// Ordering is guaranteed at the memory side (the next-sequence-number table
// of Stenström's scheme reduces, under this simulator's FIFO network and
// single home node, to in-order delivery), so the processor never stalls
// for consistency. The paper's criticism — "the major disadvantage is that
// caches are not allowed" — is exactly what the E7 experiment measures.

// EnableBypass switches the cache into cacheless NST mode. Must be called
// before any access.
func (c *Cache) EnableBypass() { c.bypass = true }

// BypassEnabled reports whether NST mode is active.
func (c *Cache) BypassEnabled() bool { return c.bypass }

// UncachedAccess performs one access directly at the memory module without
// caching the line — used for Appendix A's non-cached read-modify-write
// locations (and internally for every access in NST mode).
func (c *Cache) UncachedAccess(req Request, now uint64) Result {
	return c.bypassAccess(req, now)
}

// bypassAccess sends the request straight to the memory module. Every
// access costs a full memory round trip; the port still admits one request
// per cycle, and requests complete out of order only across processors.
func (c *Cache) bypassAccess(req Request, now uint64) Result {
	// The FIFO network plays the role of the next-sequence-number table:
	// requests arrive at the module in issue order, so no explicit sequence
	// numbers are needed. SeqNo carries only the RMW wire encoding.
	var m network.Message
	home := c.homeFor(c.geom.LineOf(req.Addr))
	switch req.Kind {
	case ReqRead, ReqReadEx:
		m = network.Message{
			Type: network.MsgMemRead, Src: c.ID, Dst: home,
			Word: req.Addr, Tag: req.ID,
		}
	case ReqWrite:
		m = network.Message{
			Type: network.MsgMemWrite, Src: c.ID, Dst: home,
			Word: req.Addr, Value: req.Data, Tag: req.ID,
		}
	case ReqRMW:
		m = network.Message{
			Type: network.MsgMemWrite, Src: c.ID, Dst: home,
			Word: req.Addr, Value: req.Data, Tag: req.ID,
			SeqNo: uint64(req.RMW) + 1, // RMW wire encoding
		}
	case ReqPrefetch, ReqPrefetchEx:
		// Nothing to prefetch into; drop.
		return PrefetchDropped
	default:
		panic(fmt.Sprintf("cache: bypass cannot handle %v", req.Kind))
	}
	c.net.Post(m, now)
	c.nstOutstanding++
	c.Stats.Counter("nst_requests").Inc()
	return Miss
}

// handleBypassResponse completes a sequenced memory access.
func (c *Cache) handleBypassResponse(m *network.Message, now uint64) {
	c.nstOutstanding--
	c.client.AccessComplete(m.Tag, m.Value, now)
}
