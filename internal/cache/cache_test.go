package cache_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// harness wires N caches to a directory over a network, with recording
// clients, so protocol behaviour can be tested without processors.
type harness struct {
	net     *network.Network
	mem     *memsys.Memory
	dir     *coherence.Directory
	caches  []*cache.Cache
	clients []*client
	cycle   uint64
}

type completion struct {
	id    uint64
	value int64
	at    uint64
}

type event struct {
	line uint64
	kind cache.EventKind
	at   uint64
}

type client struct {
	completions []completion
	events      []event
}

func (c *client) AccessComplete(id uint64, value int64, now uint64) {
	c.completions = append(c.completions, completion{id, value, now})
}

func (c *client) CoherenceEvent(line uint64, kind cache.EventKind, now uint64) {
	c.events = append(c.events, event{line, kind, now})
}

func (c *client) done(id uint64) (int64, bool) {
	for _, comp := range c.completions {
		if comp.id == id {
			return comp.value, true
		}
	}
	return 0, false
}

func newHarness(t *testing.T, nCaches int, cfg cache.Config, lineWords uint64, proto coherence.Protocol) *harness {
	t.Helper()
	geom := memsys.NewGeometry(lineWords)
	h := &harness{
		net: network.New(5),
		mem: memsys.NewMemory(geom),
	}
	dirID := network.NodeID(nCaches)
	h.dir = coherence.New(dirID, h.net, h.mem, 2, proto)
	for i := 0; i < nCaches; i++ {
		cl := &client{}
		h.clients = append(h.clients, cl)
		h.caches = append(h.caches, cache.New(network.NodeID(i), dirID, h.net, geom, cfg, cache.Protocol(proto), cl))
	}
	return h
}

// run advances the harness n cycles.
func (h *harness) run(n uint64) {
	for i := uint64(0); i < n; i++ {
		h.net.Deliver(h.cycle)
		for _, c := range h.caches {
			c.Tick(h.cycle)
		}
		h.cycle++
	}
}

// settle runs until the network drains and no cache has pending work.
func (h *harness) settle(t *testing.T) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		busy := h.net.Pending() > 0 || !h.dir.Quiescent()
		for _, c := range h.caches {
			if c.PendingWork() {
				busy = true
			}
		}
		if !busy {
			return
		}
		h.run(1)
	}
	t.Fatal("harness did not settle")
}

func smallConfig() cache.Config {
	return cache.Config{Sets: 8, Ways: 2, MaxMSHRs: 4, HitLatency: 1}
}

func TestReadMissFillsShared(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.mem.WriteWord(0x40, 7)
	res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	if res != cache.Miss {
		t.Fatalf("first read = %v, want Miss", res)
	}
	h.settle(t)
	if v, ok := h.clients[0].done(1); !ok || v != 7 {
		t.Fatalf("read completion = %d,%v", v, ok)
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Shared {
		t.Fatalf("state = %v, want shared", st)
	}
}

func TestReadHitLatency(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	start := h.cycle
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle); res != cache.Hit {
		t.Fatalf("second read = %v, want Hit", res)
	}
	h.settle(t)
	for _, comp := range h.clients[0].completions {
		if comp.id == 2 && comp.at != start+1 {
			t.Errorf("hit completed at %d, want %d", comp.at, start+1)
		}
	}
}

func TestWriteMissFillsModifiedAndWritesData(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 4, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x42, Data: 9}, h.cycle)
	h.settle(t)
	if st := h.caches[0].StateOf(0x42); st != cache.Modified {
		t.Fatalf("state = %v, want exclusive", st)
	}
	if data := h.caches[0].DirtyLines()[0x40]; data == nil || data[2] != 9 {
		t.Fatalf("dirty line data = %v", data)
	}
}

func TestPrefetchThenDemandMerge(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetch, Addr: 0x40}, h.cycle); res != cache.Miss {
		t.Fatalf("prefetch = %v", res)
	}
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle); res != cache.Merged {
		t.Fatalf("demand on in-flight prefetch = %v, want Merged", res)
	}
	// A second prefetch for the same line must be dropped, not duplicated.
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetch, Addr: 0x40}, h.cycle); res != cache.PrefetchDropped {
		t.Fatalf("duplicate prefetch = %v, want PrefetchDropped", res)
	}
	h.settle(t)
	if _, ok := h.clients[0].done(1); !ok {
		t.Fatal("merged demand read never completed")
	}
}

func TestPrefetchOnResidentLineDropped(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetch, Addr: 0x40}, h.cycle); res != cache.PrefetchDropped {
		t.Fatalf("prefetch on resident line = %v", res)
	}
	// But an exclusive prefetch on a shared line upgrades.
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetchEx, Addr: 0x40}, h.cycle); res != cache.Miss {
		t.Fatalf("exclusive prefetch on shared line = %v, want Miss (upgrade)", res)
	}
	h.settle(t)
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Fatalf("state after upgrade prefetch = %v", st)
	}
}

func TestWriteInvalidatesRemoteSharer(t *testing.T) {
	h := newHarness(t, 2, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	h.caches[1].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x40, Data: 5}, h.cycle)
	h.settle(t)
	if st := h.caches[0].StateOf(0x40); st != cache.Invalid {
		t.Fatalf("sharer not invalidated: %v", st)
	}
	// The sharer's client must have seen the invalidation event (the
	// speculative-load buffer's detection signal).
	sawInv := false
	for _, ev := range h.clients[0].events {
		if ev.line == 0x40 && ev.kind == cache.EvInvalidate {
			sawInv = true
		}
	}
	if !sawInv {
		t.Error("invalidation event not reported to the client")
	}
}

func TestReadRecallsDirtyRemote(t *testing.T) {
	h := newHarness(t, 2, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 11}, h.cycle)
	h.settle(t)
	h.caches[1].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[1].done(2); !ok || v != 11 {
		t.Fatalf("reader got %d,%v, want 11", v, ok)
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Shared {
		t.Fatalf("old owner state = %v, want shared (downgrade)", st)
	}
	if h.mem.ReadWord(0x40) != 11 {
		t.Error("recall did not write memory back")
	}
}

func TestRMWAtomicity(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.mem.WriteWord(0x40, 10)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRMW, ID: 1, Addr: 0x40, Data: 5, RMW: 1 /* fetch-add */}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(1); !ok || v != 10 {
		t.Fatalf("rmw old value = %d,%v, want 10", v, ok)
	}
	if data := h.caches[0].DirtyLines()[0x40]; data == nil || data[0] != 15 {
		t.Fatalf("rmw result = %v, want 15", data)
	}
}

func TestReadExReturnsValueAndOwnership(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.mem.WriteWord(0x40, 3)
	h.caches[0].Access(cache.Request{Kind: cache.ReqReadEx, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(1); !ok || v != 3 {
		t.Fatalf("read-ex value = %d,%v", v, ok)
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Fatalf("read-ex state = %v, want exclusive", st)
	}
	if data := h.caches[0].DirtyLines()[0x40]; data[0] != 3 {
		t.Error("read-ex must not modify the data")
	}
}

func TestEvictionWritesBackAndNotifies(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
	h := newHarness(t, 1, cfg, 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 7}, h.cycle)
	h.settle(t)
	// Second line maps to the same (only) set: evicts the dirty line.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle)
	h.settle(t)
	if h.mem.ReadWord(0x40) != 7 {
		t.Error("dirty victim not written back")
	}
	sawReplace := false
	for _, ev := range h.clients[0].events {
		if ev.line == 0x40 && ev.kind == cache.EvReplace {
			sawReplace = true
		}
	}
	if !sawReplace {
		t.Error("replacement event not reported (footnote 3 detection)")
	}
	if st := h.caches[0].StateOf(0x41); st != cache.Shared {
		t.Errorf("new line state = %v", st)
	}
}

func TestMSHRLimitBlocks(t *testing.T) {
	cfg := smallConfig() // MaxMSHRs: 4
	h := newHarness(t, 1, cfg, 1, coherence.ProtoInvalidate)
	for i := 0; i < 4; i++ {
		res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: uint64(i), Addr: uint64(0x100 + i*8)}, h.cycle)
		if res != cache.Miss {
			t.Fatalf("miss %d = %v", i, res)
		}
	}
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 99, Addr: 0x200}, h.cycle); res != cache.Blocked {
		t.Fatalf("5th outstanding miss = %v, want Blocked", res)
	}
	h.settle(t)
}

func TestUpdateProtocolPropagatesWord(t *testing.T) {
	h := newHarness(t, 2, smallConfig(), 4, coherence.ProtoUpdate)
	// Both caches read the line.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.caches[1].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle)
	h.settle(t)
	// Cache 0 writes: cache 1's copy must be updated, not invalidated.
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 3, Addr: 0x41, Data: 99}, h.cycle)
	h.settle(t)
	if _, ok := h.clients[0].done(3); !ok {
		t.Fatal("update-protocol write never completed")
	}
	if st := h.caches[1].StateOf(0x40); st != cache.Shared {
		t.Fatalf("peer state = %v, want shared (update keeps copies)", st)
	}
	sawUpdate := false
	for _, ev := range h.clients[1].events {
		if ev.line == 0x40 && ev.kind == cache.EvUpdate {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Error("update event not reported to peer client")
	}
	if h.mem.ReadWord(0x41) != 99 {
		t.Error("update protocol must write through to memory")
	}
	// Read back through cache 1: must see the new value.
	h.caches[1].Access(cache.Request{Kind: cache.ReqRead, ID: 4, Addr: 0x41}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[1].done(4); !ok || v != 99 {
		t.Fatalf("peer read = %d,%v, want 99", v, ok)
	}
}

func TestUpdateProtocolRejectsExclusivePrefetch(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoUpdate)
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetchEx, Addr: 0x40}, h.cycle); res != cache.PrefetchDropped {
		t.Fatalf("exclusive prefetch under update protocol = %v, want dropped (§3.1)", res)
	}
}

func TestFalseSharingInvalidationEvent(t *testing.T) {
	h := newHarness(t, 2, smallConfig(), 4, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle)
	h.settle(t)
	// Cache 1 writes a DIFFERENT word of the same line.
	h.caches[1].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x43, Data: 1}, h.cycle)
	h.settle(t)
	// Cache 0's client must see an invalidation for the whole line (the
	// conservative false-sharing policy of footnote 2).
	saw := false
	for _, ev := range h.clients[0].events {
		if ev.line == 0x40 && ev.kind == cache.EvInvalidate {
			saw = true
		}
	}
	if !saw {
		t.Error("false-sharing invalidation not reported")
	}
}

// TestCoherenceInvariantRandom drives random reads/writes/RMWs from several
// caches and checks two invariants at quiescence after every burst:
// (1) single-writer — at most one cache holds a line exclusively, and then
// no other cache holds it at all; (2) value integrity — a final read
// through any cache returns the globally last-written value.
func TestCoherenceInvariantRandom(t *testing.T) {
	for _, proto := range []coherence.Protocol{coherence.ProtoInvalidate, coherence.ProtoUpdate} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			h := newHarness(t, 3, smallConfig(), 4, proto)
			lines := []uint64{0x40, 0x80, 0xc0}
			lastWrite := map[uint64]int64{}
			id := uint64(100)
			for burst := 0; burst < 60; burst++ {
				c := rng.Intn(3)
				addr := lines[rng.Intn(len(lines))] + uint64(rng.Intn(4))
				id++
				if rng.Intn(2) == 0 {
					v := int64(burst*10 + c)
					res := h.caches[c].Access(cache.Request{Kind: cache.ReqWrite, ID: id, Addr: addr, Data: v}, h.cycle)
					if res == cache.Blocked {
						continue
					}
					lastWrite[addr] = v
				} else {
					h.caches[c].Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: addr}, h.cycle)
				}
				h.settle(t)

				for _, line := range lines {
					owners, sharers := 0, 0
					for _, ca := range h.caches {
						switch ca.StateOf(line) {
						case cache.Modified:
							owners++
						case cache.Shared:
							sharers++
						}
					}
					if owners > 1 || (owners == 1 && sharers > 0 && proto == coherence.ProtoInvalidate) {
						t.Fatalf("burst %d line %#x: owners=%d sharers=%d", burst, line, owners, sharers)
					}
				}
			}
			// Value integrity: read every written word through every cache.
			for addr, want := range lastWrite {
				for c := range h.caches {
					id++
					h.caches[c].Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: addr}, h.cycle)
					h.settle(t)
					if v, ok := h.clients[c].done(id); !ok || v != want {
						t.Fatalf("cache %d reads mem[%#x] = %d,%v, want %d", c, addr, v, ok, want)
					}
				}
			}
		})
	}
}

// TestConcurrentWritersConverge property-style stress: two caches write the
// same word alternately with random partial progress between writes. The
// cross-processor serialization order is coherence's choice (a write that
// merges into an in-flight fill may legitimately serialize before a remote
// write issued later), so the invariants checked are: every cache converges
// to the SAME final value, and that value is the last write of one of the
// two writers.
func TestConcurrentWritersConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := newHarness(t, 2, smallConfig(), 1, coherence.ProtoInvalidate)
		id := uint64(0)
		lastPer := map[int]int64{}
		for i := 0; i < 8; i++ {
			c := rng.Intn(2)
			id++
			v := int64(trial*100 + i + 1)
			if h.caches[c].Access(cache.Request{Kind: cache.ReqWrite, ID: id, Addr: 0x40, Data: v}, h.cycle) == cache.Blocked {
				h.settle(t)
				continue
			}
			lastPer[c] = v
			// Random partial progress between writes.
			h.run(uint64(rng.Intn(30)))
		}
		h.settle(t)
		var got [2]int64
		for c := 0; c < 2; c++ {
			id++
			h.caches[c].Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: 0x40}, h.cycle)
			h.settle(t)
			v, ok := h.clients[c].done(id)
			if !ok {
				t.Fatalf("trial %d: cache %d read never completed", trial, c)
			}
			got[c] = v
		}
		if got[0] != got[1] {
			t.Fatalf("trial %d: caches disagree: %d vs %d", trial, got[0], got[1])
		}
		if got[0] != lastPer[0] && got[0] != lastPer[1] {
			t.Fatalf("trial %d: final value %d is not either writer's last (%d, %d)",
				trial, got[0], lastPer[0], lastPer[1])
		}
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[cache.State]string{
		cache.Invalid: "invalid", cache.Shared: "shared", cache.Modified: "exclusive",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	kinds := []cache.ReqKind{cache.ReqRead, cache.ReqWrite, cache.ReqRMW, cache.ReqPrefetch, cache.ReqPrefetchEx, cache.ReqReadEx}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] || s == "req(?)" {
			t.Errorf("bad kind name %q", s)
		}
		seen[s] = true
	}
}

func TestHarnessDeterminism(t *testing.T) {
	runOnce := func() string {
		h := newHarness(t, 2, smallConfig(), 4, coherence.ProtoInvalidate)
		h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 1}, h.cycle)
		h.caches[1].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x40, Data: 2}, h.cycle)
		h.settle(t)
		return fmt.Sprintf("%v|%v|%d", h.clients[0].completions, h.clients[1].completions, h.mem.ReadWord(0x40))
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic protocol behaviour:\n%s\n%s", a, b)
	}
}

func TestWriteMergeIntoSharedFillEscalates(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	// A read starts a shared fill; a write merges into it before the fill
	// returns: the cache must escalate to exclusive after installing.
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 1, Addr: 0x40}, h.cycle); res != cache.Miss {
		t.Fatalf("read = %v", res)
	}
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 2, Addr: 0x40, Data: 9}, h.cycle); res != cache.Merged {
		t.Fatalf("write merge = %v", res)
	}
	h.settle(t)
	if _, ok := h.clients[0].done(1); !ok {
		t.Fatal("read never completed")
	}
	if _, ok := h.clients[0].done(2); !ok {
		t.Fatal("escalated write never completed")
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Modified {
		t.Fatalf("state = %v, want exclusive after escalation", st)
	}
	if h.caches[0].Stats.Counter("escalations").Value() == 0 {
		t.Error("escalation not counted")
	}
}

func TestUpdateProtocolAckPooling(t *testing.T) {
	// Three sharers; one writes. The two UpdateAcks and the UpdateDone race
	// back to the writer; regardless of arrival order the write completes
	// exactly once.
	h := newHarness(t, 3, smallConfig(), 4, coherence.ProtoUpdate)
	for i := 0; i < 3; i++ {
		h.caches[i].Access(cache.Request{Kind: cache.ReqRead, ID: uint64(i + 1), Addr: 0x40}, h.cycle)
		h.settle(t)
	}
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 10, Addr: 0x41, Data: 77}, h.cycle)
	h.settle(t)
	count := 0
	for _, comp := range h.clients[0].completions {
		if comp.id == 10 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("write completed %d times", count)
	}
	for i := 1; i < 3; i++ {
		h.caches[i].Access(cache.Request{Kind: cache.ReqRead, ID: uint64(20 + i), Addr: 0x41}, h.cycle)
		h.settle(t)
		if v, _ := h.clients[i].done(uint64(20 + i)); v != 77 {
			t.Errorf("sharer %d sees %d, want 77", i, v)
		}
	}
}

func TestBypassModeRoundTrips(t *testing.T) {
	h := newHarness(t, 1, smallConfig(), 1, coherence.ProtoInvalidate)
	h.caches[0].EnableBypass()
	if !h.caches[0].BypassEnabled() {
		t.Fatal("bypass not enabled")
	}
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 3}, h.cycle)
	h.settle(t)
	if h.mem.ReadWord(0x40) != 3 {
		t.Fatal("bypass write not applied at memory")
	}
	if st := h.caches[0].StateOf(0x40); st != cache.Invalid {
		t.Fatalf("bypass must not cache: state %v", st)
	}
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x40}, h.cycle)
	h.settle(t)
	if v, ok := h.clients[0].done(2); !ok || v != 3 {
		t.Fatalf("bypass read = %d,%v", v, ok)
	}
	// Prefetches are meaningless without a cache.
	if res := h.caches[0].Access(cache.Request{Kind: cache.ReqPrefetch, Addr: 0x80}, h.cycle); res != cache.PrefetchDropped {
		t.Fatalf("bypass prefetch = %v", res)
	}
}

func TestDirtyLinesIncludesWritebackBuffer(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 1, MaxMSHRs: 4, HitLatency: 1}
	h := newHarness(t, 1, cfg, 1, coherence.ProtoInvalidate)
	h.caches[0].Access(cache.Request{Kind: cache.ReqWrite, ID: 1, Addr: 0x40, Data: 7}, h.cycle)
	h.settle(t)
	// Evict the dirty line; while the writeback is in flight the data must
	// still be visible through DirtyLines.
	h.caches[0].Access(cache.Request{Kind: cache.ReqRead, ID: 2, Addr: 0x41}, h.cycle)
	h.run(3) // WB sent but not yet acked
	if data := h.caches[0].DirtyLines()[0x40]; data == nil || data[0] != 7 {
		t.Errorf("writeback-buffered line missing from DirtyLines: %v", data)
	}
	h.settle(t)
}

func TestEventKindStrings(t *testing.T) {
	for ev, want := range map[cache.EventKind]string{
		cache.EvInvalidate: "invalidate", cache.EvUpdate: "update", cache.EvReplace: "replace",
	} {
		if ev.String() != want {
			t.Errorf("%d.String() = %q", ev, ev.String())
		}
	}
}
