package cache

import (
	"fmt"
	"sort"

	"mcmsim/internal/stats"
)

// LineState is one serialized way of a set, including Invalid entries:
// the physical slice order and the lastUse stamps are what the LRU victim
// scan observes, so both are captured verbatim rather than re-derived.
type LineState struct {
	Addr     uint64
	State    uint8
	Data     []int64
	GrantVer uint64
	LastUse  uint64
}

// AckPoolState is one banked early acknowledgement (an InvAck that arrived
// before its requester's fill): (line, transaction tag) -> count.
type AckPoolState struct {
	LineAddr uint64
	Tag      uint64
	Count    int
}

// SavedState is the serializable state of one private cache at quiescence:
// the data arrays, the LRU clock, any banked early acks, and the
// statistics. Everything else in the Cache — MSHRs, scheduled completions,
// writebacks, update transactions, retry queues, pins — is transient and
// provably empty when PendingWork() is false. (Named SavedState because
// State is the per-line MSI enum.)
type SavedState struct {
	Sets     [][]LineState // [set][way], physical order preserved
	UseClock uint64
	AckPool  []AckPoolState // sorted by (LineAddr, Tag)
	Stats    stats.State
}

// ExportState captures the cache state. It fails while any transaction is
// outstanding.
func (c *Cache) ExportState() (SavedState, error) {
	if c.PendingWork() {
		return SavedState{}, fmt.Errorf("cache %d: export with pending work", c.ID)
	}
	if len(c.pinned) != 0 {
		return SavedState{}, fmt.Errorf("cache %d: export with %d pinned lines", c.ID, len(c.pinned))
	}
	st := SavedState{Sets: make([][]LineState, len(c.sets)), UseClock: c.useClock, Stats: c.Stats.ExportState()}
	for i, set := range c.sets {
		ways := make([]LineState, len(set))
		for w, l := range set {
			data := make([]int64, len(l.data))
			copy(data, l.data)
			ways[w] = LineState{Addr: l.addr, State: uint8(l.state), Data: data, GrantVer: l.grantVer, LastUse: l.lastUse}
		}
		st.Sets[i] = ways
	}
	for k, n := range c.ackPool {
		st.AckPool = append(st.AckPool, AckPoolState{LineAddr: k.lineAddr, Tag: k.tag, Count: n})
	}
	sort.Slice(st.AckPool, func(i, j int) bool {
		if st.AckPool[i].LineAddr != st.AckPool[j].LineAddr {
			return st.AckPool[i].LineAddr < st.AckPool[j].LineAddr
		}
		return st.AckPool[i].Tag < st.AckPool[j].Tag
	})
	return st, nil
}

// RestoreState replaces the cache arrays and statistics with the exported
// ones. The geometry must match the cache's configuration; the cache must
// be idle (freshly constructed or quiescent).
func (c *Cache) RestoreState(st SavedState) error {
	if c.PendingWork() {
		return fmt.Errorf("cache %d: restore with pending work", c.ID)
	}
	if len(st.Sets) != c.cfg.Sets {
		return fmt.Errorf("cache %d: snapshot has %d sets, cache has %d", c.ID, len(st.Sets), c.cfg.Sets)
	}
	sets := make([][]*line, c.cfg.Sets)
	for i, ways := range st.Sets {
		// A set is either untouched (nil — victimize lazily populates it
		// with cfg.Ways Invalid lines on first install) or fully populated;
		// restoring an empty set as a non-nil zero-way slice would defeat
		// the lazy init and leave installs retrying forever.
		if len(ways) == 0 {
			continue
		}
		if len(ways) != c.cfg.Ways {
			return fmt.Errorf("cache %d: snapshot set %d has %d ways, cache has %d", c.ID, i, len(ways), c.cfg.Ways)
		}
		set := make([]*line, len(ways))
		for w, ls := range ways {
			data := make([]int64, len(ls.Data))
			copy(data, ls.Data)
			set[w] = &line{addr: ls.Addr, state: State(ls.State), data: data, grantVer: ls.GrantVer, lastUse: ls.LastUse}
		}
		sets[i] = set
	}
	c.sets = sets
	c.useClock = st.UseClock
	c.ackPool = make(map[ackKey]int, len(st.AckPool))
	for _, a := range st.AckPool {
		c.ackPool[ackKey{lineAddr: a.LineAddr, tag: a.Tag}] = a.Count
	}
	c.Stats.RestoreState(st.Stats)
	return nil
}
