package cache

import (
	"fmt"
	"sort"

	"mcmsim/internal/network"
	"mcmsim/internal/stats"
)

// LineState is one serialized way of a set, including Invalid entries:
// the physical slice order and the lastUse stamps are what the LRU victim
// scan observes, so both are captured verbatim rather than re-derived.
type LineState struct {
	Addr     uint64
	State    uint8
	Data     []int64
	GrantVer uint64
	LastUse  uint64
}

// AckPoolState is one banked early acknowledgement (an InvAck that arrived
// before its requester's fill): (line, transaction tag) -> count.
type AckPoolState struct {
	LineAddr uint64
	Tag      uint64
	Count    int
}

// DeferredEventState is one coherence event that arrived during a fill and
// waits in the MSHR to be applied in directory order.
type DeferredEventState struct {
	Type      network.MsgType
	Tag       uint64
	Word      uint64
	Value     int64
	Requester network.NodeID
}

// MSHRState is one outstanding line fill, mid-flight: the merged waiters in
// arrival order, the deferred coherence events in directory order, and the
// partial fill response.
type MSHRState struct {
	LineAddr    uint64
	Exclusive   bool
	Waiters     []Request
	Deferred    []DeferredEventState
	DataArrived bool
	Data        []int64
	GrantVer    uint64
	AcksNeeded  int
	AcksGot     int
	AckKnown    bool
	Escalate    bool
}

// CompletionState is one scheduled hit completion.
type CompletionState struct {
	At  uint64
	Req Request
}

// WritebackState is one writeback awaiting the directory's acknowledgement.
type WritebackState struct {
	LineAddr uint64
	Data     []int64
}

// UpdateXactState is one outstanding update-protocol write transaction.
type UpdateXactState struct {
	Req        Request
	Word       uint64
	DirTag     uint64
	AcksNeeded int
	AcksGot    int
	DoneSeen   bool
	OldValue   int64
}

// PinState is one line's count of scheduled-but-unfinished hit completions.
type PinState struct {
	LineAddr uint64
	Count    int
}

// SavedState is the serializable state of one private cache, mid-flight
// included: the data arrays, the LRU clock, banked early acks, every
// outstanding transaction (MSHRs with their waiters and deferred events,
// scheduled completions, writebacks, update transactions, install retries,
// pins, NST credits) and the statistics. At quiescence the transient
// sections are empty and the encoding matches the old quiescent-only form
// field for field. (Named SavedState because State is the per-line MSI
// enum.)
type SavedState struct {
	Sets     [][]LineState // [set][way], physical order preserved
	UseClock uint64
	AckPool  []AckPoolState // sorted by (LineAddr, Tag)
	Stats    stats.State

	MSHRs []MSHRState // sorted by LineAddr
	// RetryInstalls references MSHRs by line address, in retry order: a
	// stalled install's MSHR stays allocated, so the slice entries alias the
	// map entries and are restored as the same pointers.
	RetryInstalls  []uint64
	Completions    []CompletionState // schedule order preserved
	Writebacks     []WritebackState  // sorted by LineAddr
	Xacts          []UpdateXactState // FIFO order preserved
	Pinned         []PinState        // sorted by LineAddr
	NSTOutstanding int
}

// copyWordsInto copies w into buf's backing storage, preserving nil-ness
// (buf is a spent buffer from a previous checkpoint, or nil).
func copyWordsInto(buf, w []int64) []int64 {
	if w == nil {
		return nil
	}
	return append(buf[:0], w...)
}

// ExportState captures the cache state, mid-flight transactions included.
func (c *Cache) ExportState() (SavedState, error) {
	var st SavedState
	if err := c.ExportStateInto(&st); err != nil {
		return SavedState{}, err
	}
	return st, nil
}

// ExportStateInto captures the cache into st, reusing st's backing storage
// (per-window engine checkpoints call this on every dispatched shard). Each
// reused inner buffer is read out of the previous capture's slot before
// append overwrites that slot of the shared backing array.
func (c *Cache) ExportStateInto(st *SavedState) error {
	c.Stats.ExportStateInto(&st.Stats)
	st.UseClock = c.useClock
	if cap(st.Sets) < len(c.sets) {
		st.Sets = make([][]LineState, len(c.sets))
	}
	st.Sets = st.Sets[:len(c.sets)]
	for i, set := range c.sets {
		prev := st.Sets[i]
		ways := prev[:0]
		for w, l := range set {
			var buf []int64
			if w < len(prev) {
				buf = prev[w].Data
			}
			ways = append(ways, LineState{Addr: l.addr, State: uint8(l.state), Data: copyWordsInto(buf, l.data), GrantVer: l.grantVer, LastUse: l.lastUse})
		}
		st.Sets[i] = ways
	}
	st.AckPool = st.AckPool[:0]
	for k, n := range c.ackPool {
		st.AckPool = append(st.AckPool, AckPoolState{LineAddr: k.lineAddr, Tag: k.tag, Count: n})
	}
	sort.Slice(st.AckPool, func(i, j int) bool {
		if st.AckPool[i].LineAddr != st.AckPool[j].LineAddr {
			return st.AckPool[i].LineAddr < st.AckPool[j].LineAddr
		}
		return st.AckPool[i].Tag < st.AckPool[j].Tag
	})

	prevM := st.MSHRs
	st.MSHRs = st.MSHRs[:0]
	mi := 0
	for _, ms := range c.mshrs {
		var dataBuf []int64
		var waitBuf []Request
		var defBuf []DeferredEventState
		if mi < len(prevM) {
			dataBuf, waitBuf, defBuf = prevM[mi].Data, prevM[mi].Waiters[:0], prevM[mi].Deferred[:0]
		}
		mi++
		e := MSHRState{
			LineAddr: ms.lineAddr, Exclusive: ms.exclusive,
			DataArrived: ms.dataArrived, Data: copyWordsInto(dataBuf, ms.data), GrantVer: ms.grantVer,
			AcksNeeded: ms.acksNeeded, AcksGot: ms.acksGot, AckKnown: ms.ackKnown,
			Escalate: ms.escalate,
		}
		e.Waiters = waitBuf
		for _, w := range ms.waiters {
			e.Waiters = append(e.Waiters, w.req)
		}
		e.Deferred = defBuf
		for _, d := range ms.deferred {
			e.Deferred = append(e.Deferred, DeferredEventState{
				Type: d.typ, Tag: d.tag, Word: d.word, Value: d.value, Requester: d.requester,
			})
		}
		st.MSHRs = append(st.MSHRs, e)
	}
	sort.Slice(st.MSHRs, func(i, j int) bool { return st.MSHRs[i].LineAddr < st.MSHRs[j].LineAddr })

	st.RetryInstalls = st.RetryInstalls[:0]
	for _, ms := range c.retryInstalls {
		if c.mshrs[ms.lineAddr] != ms {
			return fmt.Errorf("cache %d: retrying install for line %#x has no live MSHR", c.ID, ms.lineAddr)
		}
		st.RetryInstalls = append(st.RetryInstalls, ms.lineAddr)
	}
	st.Completions = st.Completions[:0]
	for _, comp := range c.completions {
		st.Completions = append(st.Completions, CompletionState{At: comp.at, Req: comp.req})
	}
	prevW := st.Writebacks
	st.Writebacks = st.Writebacks[:0]
	wi := 0
	for addr, wb := range c.wb {
		var buf []int64
		if wi < len(prevW) {
			buf = prevW[wi].Data
		}
		wi++
		st.Writebacks = append(st.Writebacks, WritebackState{LineAddr: addr, Data: copyWordsInto(buf, wb.data)})
	}
	sort.Slice(st.Writebacks, func(i, j int) bool { return st.Writebacks[i].LineAddr < st.Writebacks[j].LineAddr })
	st.Xacts = st.Xacts[:0]
	for _, x := range c.xacts {
		st.Xacts = append(st.Xacts, UpdateXactState{
			Req: x.req, Word: x.word, DirTag: x.dirTag,
			AcksNeeded: x.acksNeeded, AcksGot: x.acksGot, DoneSeen: x.doneSeen, OldValue: x.oldValue,
		})
	}
	st.Pinned = st.Pinned[:0]
	for addr, n := range c.pinned {
		st.Pinned = append(st.Pinned, PinState{LineAddr: addr, Count: n})
	}
	sort.Slice(st.Pinned, func(i, j int) bool { return st.Pinned[i].LineAddr < st.Pinned[j].LineAddr })
	st.NSTOutstanding = c.nstOutstanding
	return nil
}

// RestoreState replaces the cache's entire state — arrays, transients and
// statistics — with the exported one. The geometry must match the cache's
// configuration. Any in-progress state the cache held is discarded, which
// is exactly what the optimistic engine's rollback requires.
func (c *Cache) RestoreState(st SavedState) error {
	if len(st.Sets) != c.cfg.Sets {
		return fmt.Errorf("cache %d: snapshot has %d sets, cache has %d", c.ID, len(st.Sets), c.cfg.Sets)
	}
	// The rollback path restores as often as it checkpoints, so the discarded
	// state's allocations — line objects, their data arrays, the transient
	// maps — are reused in place. Safe because the cache's data arrays are
	// pairwise disjoint at any step boundary: a fill's MSHR hands its array
	// to the installed line and is deleted in the same step, and every
	// message or writeback carries a fresh copy.
	if c.sets == nil {
		c.sets = make([][]*line, c.cfg.Sets)
	}
	for i, ways := range st.Sets {
		// A set is either untouched (nil — victimize lazily populates it
		// with cfg.Ways Invalid lines on first install) or fully populated;
		// restoring an empty set as a non-nil zero-way slice would defeat
		// the lazy init and leave installs retrying forever.
		if len(ways) == 0 {
			c.sets[i] = nil
			continue
		}
		if len(ways) != c.cfg.Ways {
			return fmt.Errorf("cache %d: snapshot set %d has %d ways, cache has %d", c.ID, i, len(ways), c.cfg.Ways)
		}
		set := c.sets[i]
		if cap(set) < len(ways) {
			set = make([]*line, len(ways))
		}
		set = set[:len(ways)]
		for w, ls := range ways {
			l := set[w]
			if l == nil {
				l = new(line)
				set[w] = l
			}
			buf := l.data
			*l = line{addr: ls.Addr, state: State(ls.State), data: copyWordsInto(buf, ls.Data), grantVer: ls.GrantVer, lastUse: ls.LastUse}
		}
		c.sets[i] = set
	}
	c.useClock = st.UseClock
	if c.ackPool == nil {
		c.ackPool = make(map[ackKey]int, len(st.AckPool))
	} else {
		clear(c.ackPool)
	}
	for _, a := range st.AckPool {
		c.ackPool[ackKey{lineAddr: a.LineAddr, tag: a.Tag}] = a.Count
	}

	c.mshrPool = c.mshrPool[:0]
	for _, ms := range c.mshrs {
		c.mshrPool = append(c.mshrPool, ms)
	}
	if c.mshrs == nil {
		c.mshrs = make(map[uint64]*mshr, len(st.MSHRs))
	} else {
		clear(c.mshrs)
	}
	for i, e := range st.MSHRs {
		var ms *mshr
		if i < len(c.mshrPool) {
			ms = c.mshrPool[i]
		} else {
			ms = new(mshr)
		}
		dataBuf, waitBuf, defBuf := ms.data, ms.waiters[:0], ms.deferred[:0]
		*ms = mshr{
			lineAddr: e.LineAddr, exclusive: e.Exclusive,
			dataArrived: e.DataArrived, data: copyWordsInto(dataBuf, e.Data), grantVer: e.GrantVer,
			acksNeeded: e.AcksNeeded, acksGot: e.AcksGot, ackKnown: e.AckKnown,
			escalate: e.Escalate,
		}
		ms.waiters = waitBuf
		for _, req := range e.Waiters {
			ms.waiters = append(ms.waiters, waiter{req: req})
		}
		ms.deferred = defBuf
		for _, d := range e.Deferred {
			ms.deferred = append(ms.deferred, deferredEvent{
				typ: d.Type, tag: d.Tag, word: d.Word, value: d.Value, requester: d.Requester,
			})
		}
		c.mshrs[e.LineAddr] = ms
	}
	c.retryInstalls = c.retryInstalls[:0]
	for _, addr := range st.RetryInstalls {
		ms, ok := c.mshrs[addr]
		if !ok {
			return fmt.Errorf("cache %d: snapshot retries install for line %#x with no MSHR", c.ID, addr)
		}
		c.retryInstalls = append(c.retryInstalls, ms)
	}
	c.completions = c.completions[:0]
	for _, comp := range st.Completions {
		c.completions = append(c.completions, completion{at: comp.At, req: comp.Req})
	}
	c.wbPool = c.wbPool[:0]
	for _, wb := range c.wb {
		c.wbPool = append(c.wbPool, wb)
	}
	if c.wb == nil {
		c.wb = make(map[uint64]*wbEntry, len(st.Writebacks))
	} else {
		clear(c.wb)
	}
	for i, wb := range st.Writebacks {
		var e *wbEntry
		if i < len(c.wbPool) {
			e = c.wbPool[i]
		} else {
			e = new(wbEntry)
		}
		e.data = copyWordsInto(e.data, wb.Data)
		c.wb[wb.LineAddr] = e
	}
	c.xacts = c.xacts[:0]
	for _, x := range st.Xacts {
		c.xacts = append(c.xacts, &updateXact{
			req: x.Req, word: x.Word, dirTag: x.DirTag,
			acksNeeded: x.AcksNeeded, acksGot: x.AcksGot, doneSeen: x.DoneSeen, oldValue: x.OldValue,
		})
	}
	if c.pinned == nil {
		c.pinned = make(map[uint64]int, len(st.Pinned))
	} else {
		clear(c.pinned)
	}
	for _, p := range st.Pinned {
		c.pinned[p.LineAddr] = p.Count
	}
	c.nstOutstanding = st.NSTOutstanding
	c.Stats.RestoreState(st.Stats)
	return nil
}
