package cache

import "fmt"

// DebugMSHRs renders outstanding fills for diagnostics.
func (c *Cache) DebugMSHRs() []string {
	var out []string
	for a, m := range c.mshrs {
		out = append(out, fmt.Sprintf("line=%#x ex=%v data=%v ackKnown=%v acks=%d/%d waiters=%d deferred=%d",
			a, m.exclusive, m.dataArrived, m.ackKnown, m.acksGot, m.acksNeeded, len(m.waiters), len(m.deferred)))
	}
	return out
}

// DebugLine renders the resident state of one line.
func (c *Cache) DebugLine(lineAddr uint64) string {
	l := c.lookup(lineAddr)
	if l == nil {
		return "absent"
	}
	return fmt.Sprintf("%v ver=%d data=%v", l.state, l.grantVer, l.data)
}

// DirtyLines returns a copy of every Modified line's data, keyed by line
// address, including lines in the victim writeback buffer. The simulator
// overlays these on main memory to produce the coherent memory view.
func (c *Cache) DirtyLines() map[uint64][]int64 {
	out := make(map[uint64][]int64)
	for _, set := range c.sets {
		for _, l := range set {
			if l != nil && l.state == Modified {
				out[l.addr] = append([]int64(nil), l.data...)
			}
		}
	}
	for a, e := range c.wb {
		if _, dup := out[a]; !dup {
			out[a] = append([]int64(nil), e.data...)
		}
	}
	return out
}

// DebugPending renders the completion queue, writeback buffer and retry
// queue for diagnostics.
func (c *Cache) DebugPending() string {
	s := ""
	for _, comp := range c.completions {
		s += fmt.Sprintf("  completion at=%d kind=%v addr=%#x id=%d\n", comp.at, comp.req.Kind, comp.req.Addr, comp.req.ID)
	}
	for a := range c.wb {
		s += fmt.Sprintf("  wb line=%#x\n", a)
	}
	for _, ms := range c.retryInstalls {
		s += fmt.Sprintf("  retryInstall line=%#x\n", ms.lineAddr)
	}
	return s
}

// DebugRetries prints completion-retry loops (diagnostic aid).
var DebugRetries bool

// DebugCacheTrace and DebugCacheTraceLine trace per-cache message handling
// for one line (diagnostic aid).
var (
	DebugCacheTrace     func(string)
	DebugCacheTraceLine uint64
)
