package core

import (
	"fmt"

	"mcmsim/internal/cache"
	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/stats"
)

// CPU is the interface the load/store unit uses to talk back to the
// out-of-order core (implemented by internal/cpu). All calls are
// synchronous within the current cycle.
type CPU interface {
	// LoadComplete delivers a load (or RMW) return value for the ROB entry.
	// Under the speculative-load technique this may happen long before the
	// entry is allowed to retire; dependent instructions consume the value
	// immediately (that is the speculation).
	LoadComplete(rob uint64, value int64, now uint64)
	// StoreComplete reports that a store has performed, for the SC
	// retirement policy (a store at the head of the reorder buffer is not
	// retired until it completes).
	StoreComplete(rob uint64, now uint64)
	// FlushFrom squashes the ROB entry rob and everything after it, exactly
	// like a branch misprediction: the instructions are re-fetched and
	// re-executed. The CPU must call LSU.Flush as part of handling this.
	FlushFrom(rob uint64, now uint64)
	// InvalidateLoadValue withdraws a previously delivered (speculated)
	// value: dependents must wait for a fresh LoadComplete. Used when an
	// RMW's speculated value is squashed after the atomic has issued but
	// before it completes (Appendix A): the re-executed consumers must see
	// the atomic's return value, not the stale speculation.
	InvalidateLoadValue(rob uint64)
}

// Config carries the consistency model, the enabled techniques and LSU
// timing parameters.
type Config struct {
	Model Model
	Tech  Technique
	// ForwardLatency is the store-buffer forwarding latency for a load that
	// hits an older store in the store buffer. Default 1 (like a cache hit).
	ForwardLatency uint64
	// MaxAddrPerCycle bounds how many effective addresses the address unit
	// computes per cycle; 0 means unlimited (the paper's abstract machine).
	MaxAddrPerCycle int
	// NST selects the Stenstrom comparator (paper §6): the cache is
	// bypassed and accesses are sequenced at the memory module, so the
	// processor issues them in program order without waiting for
	// completions. Stores still wait for the head of the reorder buffer
	// (wrong-path stores must never reach memory).
	NST bool
	// UncachedRMW lists word addresses that are never cached — typically
	// synchronization words whose read-modify-writes the hardware performs
	// at the memory module (Appendix A: "Some read-modify-write locations
	// may not be cached. The simplest way to handle such locations is to
	// delay the access until previous accesses that are required to
	// complete by the consistency model have completed. Thus, there is no
	// speculative load for non-cached read-modify-write accesses."). Every
	// access to such a word — the atomic, the releasing store, any read —
	// bypasses the cache and performs at the module.
	UncachedRMW map[uint64]bool
}

// entryRole distinguishes cache-access completions for the same entry.
type entryRole uint8

const (
	roleDemand entryRole = iota // the access itself (load, store, atomic RMW)
	roleSpec                    // the speculative read-exclusive part of an RMW
	roleReval                   // a revalidation repeat-read (§4.1 policy)
)

// Entry is one memory access flowing through the load/store unit. Entries
// are created at dispatch in program order; Seq equals the ROB identifier,
// which increases monotonically.
type Entry struct {
	Seq   uint64
	Class AccessClass
	RMW   isa.RMWKind

	base      int64
	baseReady bool
	imm       int64
	Addr      uint64
	AddrReady bool
	data      int64
	dataReady bool

	inStoreBuf bool
	atHead     bool // reorder buffer signaled the store part may issue
	issued     bool // demand access handed to the cache
	issuedAt   uint64
	dispatchAt uint64
	Done       bool // access performed
	Value      int64

	specIssued bool // RMW: speculative read-exclusive issued
	specDone   bool // RMW: speculative read-exclusive completed
	specValue  int64

	prefetched  bool
	ownershipOK bool   // Adve-Hill: exclusive ownership acquired
	forwarded   bool   // load satisfied by store-buffer forwarding
	fwdFrom     *Entry // the buffered store the value came from

	// squashedAfterIssue marks an RMW whose speculative value was squashed
	// after the atomic was already issued: the atomic's return value must be
	// re-delivered (paper Appendix A).
	squashedAfterIssue bool

	retired bool // committed by the reorder buffer

	demandID uint64 // current cache access id (re-assigned on reissue)
	specID   uint64
}

// IsWrite reports whether the entry writes memory.
func (e *Entry) IsWrite() bool { return e.Class.isWrite() }

// IsRead reports whether the entry binds a register from memory.
func (e *Entry) IsRead() bool { return e.Class.isRead() }

// specEntry is one row of the speculative-load buffer (Figure 4): load
// address, acq, done, store tag. done and the address live on the Entry.
type specEntry struct {
	e        *Entry
	acq      bool
	storeTag *Entry // nil when the load depends on no previous store
	isRMW    bool   // entry for the read-exclusive part of an RMW

	// Revalidation policy state (Technique.Revalidate, §4.1).
	suspect     bool // a coherence event matched; value must be re-checked
	revalIssued bool // the repeat access is in flight
	revalOK     bool // the repeat access confirmed the speculated value
}

func (s *specEntry) done() bool {
	if s.isRMW {
		return s.e.specDone
	}
	return s.e.Done
}

type idTarget struct {
	e    *Entry
	role entryRole
}

// LSU is the load/store functional unit of Figure 4: the load/store
// reservation station, the address unit, the store buffer and the
// speculative-load buffer, plus the prefetch engine of §3.
type LSU struct {
	Proc  int
	cfg   Config
	cache *cache.Cache
	cpu   CPU
	geom  memsys.Geometry

	entries  []*Entry // all live entries in program order
	rs       []*Entry // awaiting effective-address computation (FIFO)
	loadQ    []*Entry // reads with addresses, awaiting issue (FIFO)
	storeBuf []*Entry // writes/RMWs with addresses (FIFO)
	swpfQ    []*Entry // software prefetches with addresses (FIFO)
	spec     []*specEntry
	monitor  []*specEntry // SC-violation detector entries (Technique.DetectSC)

	ids        map[uint64]idTarget
	nextID     uint64
	revalBySeq map[uint64]*specEntry // pending revalidations by entry Seq

	// forwards holds store-buffer-forwarded loads completing later;
	// fireScratch is TickComplete's reusable due-list.
	forwards    []forwardCompletion
	fireScratch []forwardCompletion

	observe func(ObsEvent)

	Stats *stats.Set
	// latHist caches the per-class completion-latency histograms so the
	// completion path does not rebuild "latency_<class>" keys per access.
	latHist [numAccessClasses]*stats.Histogram
}

// numAccessClasses sizes per-class lookup arrays.
const numAccessClasses = int(ClassPrefetchEx) + 1

// latencyHist returns the completion-latency histogram for a class,
// creating it on first use (so StatsReport still lists only classes that
// actually completed).
func (u *LSU) latencyHist(c AccessClass) *stats.Histogram {
	h := u.latHist[c]
	if h == nil {
		h = u.Stats.Histogram("latency_" + c.String())
		u.latHist[c] = h
	}
	return h
}

type forwardCompletion struct {
	at    uint64
	id    uint64
	value int64
}

// NewLSU creates a load/store unit bound to a cache. Call SetCPU before the
// first cycle.
func NewLSU(proc int, cfg Config, c *cache.Cache, geom memsys.Geometry) *LSU {
	if cfg.ForwardLatency == 0 {
		cfg.ForwardLatency = 1
	}
	return &LSU{
		Proc:       proc,
		cfg:        cfg,
		cache:      c,
		geom:       geom,
		ids:        make(map[uint64]idTarget),
		revalBySeq: make(map[uint64]*specEntry),
		Stats:      stats.NewSet(fmt.Sprintf("lsu%d", proc)),
	}
}

// SetCPU wires the back-pointer to the out-of-order core.
func (u *LSU) SetCPU(cpu CPU) { u.cpu = cpu }

// BindCache attaches the cache the LSU issues to. Separate from the
// constructor because the cache's client is the LSU (mutual references).
func (u *LSU) BindCache(c *cache.Cache) { u.cache = c }

// Model returns the configured consistency model.
func (u *LSU) Model() Model { return u.cfg.Model }

// Tech returns the configured techniques.
func (u *LSU) Tech() Technique { return u.cfg.Tech }

// classOf maps an instruction to its access class.
func classOf(in isa.Instruction) AccessClass {
	switch in.Op {
	case isa.OpLoad:
		return ClassLoad
	case isa.OpStore:
		return ClassStore
	case isa.OpAcquire:
		return ClassAcquire
	case isa.OpRelease:
		return ClassRelease
	case isa.OpRMW:
		return ClassRMW
	case isa.OpPrefetch:
		return ClassPrefetch
	case isa.OpPrefetchEx:
		return ClassPrefetchEx
	default:
		panic("core: not a memory instruction")
	}
}

// Dispatch enters a decoded memory instruction into the load/store
// reservation station. rob is the reorder-buffer identifier (monotonic).
// Operands already available are passed via the ready flags; the CPU
// forwards late operands through SetBaseOperand / SetDataOperand.
func (u *LSU) Dispatch(rob uint64, in isa.Instruction, baseReady bool, base int64, dataReady bool, data int64) *Entry {
	e := &Entry{
		Seq:       rob,
		Class:     classOf(in),
		RMW:       in.RMW,
		imm:       in.Imm,
		base:      base,
		baseReady: baseReady,
		data:      data,
		dataReady: dataReady,
	}
	if !e.IsWrite() {
		e.dataReady = true
	}
	u.entries = append(u.entries, e)
	u.rs = append(u.rs, e)
	u.Stats.Counter("dispatched").Inc()
	return e
}

// SetBaseOperand delivers the base-address register value for entry rob.
func (u *LSU) SetBaseOperand(rob uint64, v int64) {
	if e := u.find(rob); e != nil {
		e.base = v
		e.baseReady = true
	}
}

// SetDataOperand delivers the store-data register value for entry rob.
func (u *LSU) SetDataOperand(rob uint64, v int64) {
	if e := u.find(rob); e != nil {
		e.data = v
		e.dataReady = true
	}
}

// StoreAtHead is the reorder buffer's signal that the store (or RMW) at rob
// has reached the head of the buffer and may issue to the memory system
// (the precise-interrupt gate of §4.2).
func (u *LSU) StoreAtHead(rob uint64) {
	if e := u.find(rob); e != nil {
		e.atHead = true
	}
}

// StoreAddrReady reports whether a store's effective address has been
// computed; the reorder buffer retires stores under WC/RC/PC as soon as
// this holds (and the store has reached the head).
func (u *LSU) StoreAddrReady(rob uint64) bool {
	e := u.find(rob)
	return e != nil && e.AddrReady
}

// StoreDone reports whether the store has performed (the SC retirement
// policy keeps the store at the head of the reorder buffer until then).
// Under the Adve-Hill comparator a store is retirable as soon as exclusive
// ownership is acquired: the scheme stalls only until ownership, relying on
// visibility control for the rest (paper §6).
func (u *LSU) StoreDone(rob uint64) bool {
	e := u.find(rob)
	if e == nil {
		return false
	}
	if e.Done {
		return true
	}
	return u.cfg.Tech.AdveHill && e.ownershipOK
}

// PrefetchDone reports whether a software prefetch has been sent to the
// memory system (it retires immediately after; prefetches are non-binding).
func (u *LSU) PrefetchDone(rob uint64) bool {
	e := u.find(rob)
	return e != nil && e.Done
}

// CanRetireLoad reports whether a load (or RMW) may retire from the reorder
// buffer: its value must have arrived and it must no longer be in the
// speculative-load buffer (Figure 5, event 8: "load D is no longer
// considered a speculative load and is retired from both the reorder and
// the speculative-load buffers").
func (u *LSU) CanRetireLoad(rob uint64) bool {
	e := u.find(rob)
	if e == nil {
		return false
	}
	if !e.Done {
		return false
	}
	for _, s := range u.spec {
		if s.e == e {
			return false
		}
	}
	return true
}

// MarkRetired records that the reorder buffer committed the entry; only
// retired, completed entries are pruned from the live window.
func (u *LSU) MarkRetired(rob uint64) {
	if e := u.find(rob); e != nil {
		e.retired = true
	}
}

// find locates a live entry by ROB id. Linear scan: the live window is
// small (bounded by the reorder buffer).
func (u *LSU) find(rob uint64) *Entry {
	for _, e := range u.entries {
		if e.Seq == rob {
			return e
		}
	}
	return nil
}

// Drained reports whether the LSU has no live incomplete entries.
func (u *LSU) Drained() bool {
	for _, e := range u.entries {
		if !e.Done {
			return false
		}
	}
	return len(u.forwards) == 0
}

// Flush removes every entry with Seq >= rob from all LSU structures: the
// reservation station, the load queue, the store buffer and the
// speculative-load buffer. In-flight cache accesses for flushed entries are
// orphaned; their completions are dropped by the id map (the fill still
// installs in the cache, acting as a prefetch). Issued stores are never
// flushed: a store issues only after everything older has retired, so no
// older instruction remains to cause a flush.
func (u *LSU) Flush(rob uint64) {
	keep := func(es []*Entry) []*Entry {
		out := es[:0]
		for _, e := range es {
			if e.Seq < rob {
				out = append(out, e)
			}
		}
		return out
	}
	for _, e := range u.entries {
		if e.Seq >= rob {
			if e.issued && e.IsWrite() && !e.Done {
				panic(fmt.Sprintf("core: flushing issued store seq=%d", e.Seq))
			}
			if DebugFlushes && e.IsWrite() && e.Done {
				println("lsu", u.Proc, "FLUSHING COMPLETED WRITE seq", int(e.Seq), "class", int(e.Class))
			}
			delete(u.ids, e.demandID)
			delete(u.ids, e.specID)
		}
	}
	u.entries = keep(u.entries)
	u.rs = keep(u.rs)
	u.loadQ = keep(u.loadQ)
	u.storeBuf = keep(u.storeBuf)
	u.swpfQ = keep(u.swpfQ)
	sp := u.spec[:0]
	for _, s := range u.spec {
		if s.e.Seq < rob {
			sp = append(sp, s)
		}
	}
	u.spec = sp
	u.flushMonitor(rob)
	for seq := range u.revalBySeq {
		if seq >= rob {
			delete(u.revalBySeq, seq)
		}
	}
	fw := u.forwards[:0]
	for _, f := range u.forwards {
		if _, live := u.ids[f.id]; live {
			fw = append(fw, f)
		}
	}
	u.forwards = fw
}

// newID allocates a cache access id bound to (entry, role).
func (u *LSU) newID(e *Entry, role entryRole) uint64 {
	u.nextID++
	id := u.nextID
	u.ids[id] = idTarget{e: e, role: role}
	if role == roleSpec {
		e.specID = id
	} else {
		e.demandID = id
	}
	return id
}

// AccessComplete implements cache.Client: a cache access performed.
func (u *LSU) AccessComplete(id uint64, value int64, now uint64) {
	t, ok := u.ids[id]
	if !ok {
		// Stale completion for a flushed or reissued access: drop. The fill
		// it performed stays in the cache, so no work is wasted.
		u.Stats.Counter("stale_completions").Inc()
		return
	}
	delete(u.ids, id)
	e := t.e
	switch t.role {
	case roleReval:
		u.completeRevalidation(e, value, now)
		return
	case roleSpec:
		e.specDone = true
		e.specValue = value
		e.Value = value
		u.cpu.LoadComplete(e.Seq, value, now)
		u.emit(ObsLoadDone, e, value, now)
	case roleDemand:
		e.Done = true
		u.latencyHist(e.Class).Observe(int64(now - e.issuedAt))
		switch {
		case e.Class == ClassRMW:
			if e.specIssued {
				// The register value was speculated from the read-exclusive
				// part. If no coherence event squashed it, the atomic's
				// return value must agree; if a squash already discarded the
				// consumers, deliver the authoritative value now.
				if e.squashedAfterIssue {
					e.Value = value
					u.cpu.LoadComplete(e.Seq, value, now)
				} else if e.specDone && e.specValue != value {
					panic(fmt.Sprintf("core: RMW speculation mismatch without coherence event (spec=%d atomic=%d)", e.specValue, value))
				}
			} else {
				e.Value = value
				u.cpu.LoadComplete(e.Seq, value, now)
			}
			u.storeCompleted(e, now)
			u.cpu.StoreComplete(e.Seq, now)
			u.emit(ObsStoreDone, e, value, now)
		case e.IsRead():
			e.Value = value
			u.cpu.LoadComplete(e.Seq, value, now)
			u.emit(ObsLoadDone, e, value, now)
		default: // store, release
			u.storeCompleted(e, now)
			u.cpu.StoreComplete(e.Seq, now)
			u.emit(ObsStoreDone, e, value, now)
		}
	}
	u.retireSpecEntries(now)
}

// AccessOwnership implements the optional ownership listener used by the
// Adve-Hill comparator: the cache acquired exclusive ownership for a write
// whose invalidations are still pending.
func (u *LSU) AccessOwnership(id uint64, now uint64) {
	if t, ok := u.ids[id]; ok {
		t.e.ownershipOK = true
		u.Stats.Counter("ownership_early").Inc()
	}
}

// storeCompleted nullifies speculative-load-buffer store tags naming the
// completed store (paper §4.2: "When a store completes, its corresponding
// tag in the speculative-load buffer is nullified if present"). Loads that
// forwarded their value from this store also lose their coherence-event
// exemption here: while the store was buffered the forwarded value was
// guaranteed by the store's own future perform, but from now on a remote
// write to the line can make the value stale before the load retires, so
// the load must match coherence traffic like any other speculated load.
func (u *LSU) storeCompleted(e *Entry, now uint64) {
	for _, s := range u.spec {
		if s.storeTag == e {
			s.storeTag = nil
		}
		if s.e.fwdFrom == e {
			s.e.forwarded = false
			s.e.fwdFrom = nil
		}
	}
	for _, s := range u.monitor {
		if s.storeTag == e {
			s.storeTag = nil
		}
		if s.e.fwdFrom == e {
			s.e.forwarded = false
			s.e.fwdFrom = nil
		}
	}
}

// retireSpecEntries pops satisfied entries from the head of the
// speculative-load buffer: the store tag must be null and, if the acq field
// is set, the load must have completed (§4.2).
func (u *LSU) retireSpecEntries(now uint64) {
	n := 0
	for _, s := range u.spec {
		if s.storeTag != nil {
			break
		}
		if s.acq && !s.done() {
			break
		}
		if s.isRMW && !s.e.Done {
			// The RMW's speculative entry is retired when the atomic
			// completes (Appendix A), which also nullifies its store tag.
			break
		}
		if s.suspect && !s.revalOK {
			// Revalidation policy: the entry holds its place until the
			// repeat access confirms the speculated value.
			break
		}
		n++
	}
	if n > 0 {
		u.spec = u.spec[:copy(u.spec, u.spec[n:])]
		u.Stats.Counter("spec_retired").Add(uint64(n))
	}
	if u.cfg.Tech.DetectSC {
		u.retireMonitorEntries()
	}
}

// CoherenceEvent implements cache.Client: an invalidation, update or
// replacement touched a line. This is the paper's detection mechanism: the
// speculative-load buffer associatively matches the line address; the match
// closest to the head is handled first. A match against a completed load
// squashes the load and everything after it (the branch-misprediction
// machinery); a match against a pending load needs only a reissue when the
// optimization is enabled (§4.2).
func (u *LSU) CoherenceEvent(line uint64, kind cache.EventKind, now uint64) {
	if u.cfg.Tech.DetectSC {
		u.monitorCoherenceEvent(line)
	}
	for i := 0; i < len(u.spec); i++ {
		s := u.spec[i]
		if u.geom.LineOf(s.e.Addr) != line {
			continue
		}
		if s.e.forwarded {
			// Value came from a store still sitting in our own store
			// buffer: the store's future perform guarantees the value, so
			// coherence traffic cannot invalidate it. The exemption ends
			// when the source store completes (storeCompleted).
			continue
		}
		u.Stats.Counter("spec_matches").Inc()
		if DebugFlushes {
			println("lsu", u.Proc, "specMatch seq", int(s.e.Seq), "class", int(s.e.Class), "isRMW", s.isRMW, "done", s.done(), "issued", s.e.issued, "specIss", s.e.specIssued, "specDone", s.e.specDone)
		}
		if s.isRMW && s.e.issued {
			// Appendix A: match after the atomic issued — discard only the
			// computation following the RMW; the atomic's own return value
			// is authoritative. If the atomic is still in flight, withdraw
			// the speculated value so re-executed consumers wait for the
			// atomic's result instead of re-reading the stale speculation.
			u.Stats.Counter("rmw_squash_after_issue").Inc()
			u.emit(ObsRMWLateSquash, s.e, 0, now)
			if !s.e.Done {
				s.e.squashedAfterIssue = true
				u.cpu.InvalidateLoadValue(s.e.Seq)
			}
			u.cpu.FlushFrom(s.e.Seq+1, now)
			return
		}
		if !s.done() && !s.e.issued && !s.e.specIssued {
			// Not yet issued: nothing speculated, nothing to do.
			continue
		}
		if !s.done() && u.cfg.Tech.ReissueOpt && !s.isRMW {
			// Second case of §4.2: the coherence transaction arrived before
			// the speculative load completed; the instructions after it
			// have not used a wrong value, so only the load is reissued.
			u.emit(ObsSquashReissue, s.e, 0, now)
			u.reissue(s.e)
			u.Stats.Counter("spec_reissues").Inc()
			continue
		}
		if s.done() && u.cfg.Tech.Revalidate && !s.isRMW {
			// §4.1's alternative policy: defer judgement; repeat the access
			// once the model would have allowed it and compare values.
			u.markSuspect(s)
			continue
		}
		// First case of §4.2: the value may have been consumed. Treat the
		// load as mispredicted: discard it and everything after it.
		u.Stats.Counter("spec_squashes").Inc()
		u.emit(ObsSquashFlush, s.e, 0, now)
		u.cpu.FlushFrom(s.e.Seq, now)
		return
	}
}

// reissue re-executes just the load: the old in-flight access is orphaned
// (its return value is dropped by the id map — the paper's tagging of
// initial versus repeated return values) and the entry goes back to the
// issue stage.
func (u *LSU) reissue(e *Entry) {
	delete(u.ids, e.demandID)
	e.issued = false
	e.Done = false
	e.forwarded = false
	e.fwdFrom = nil
	// Entry is still in loadQ order? It left loadQ at issue; re-queue at
	// the correct program-order position.
	pos := len(u.loadQ)
	for i, q := range u.loadQ {
		if q.Seq > e.Seq {
			pos = i
			break
		}
	}
	u.loadQ = append(u.loadQ, nil)
	copy(u.loadQ[pos+1:], u.loadQ[pos:])
	u.loadQ[pos] = e
}

// PendingWork reports whether the LSU still has queued or in-flight work.
func (u *LSU) PendingWork() bool {
	return len(u.rs) > 0 || len(u.loadQ) > 0 || len(u.storeBuf) > 0 ||
		len(u.swpfQ) > 0 || len(u.forwards) > 0 || !u.Drained()
}

// Prune discards completed entries from the front of the live-entry list
// once they can no longer influence predicates or tags. An entry is
// prunable when it is done and no speculative-load-buffer entry references
// it as a store tag.
func (u *LSU) Prune() {
	n := 0
	for _, e := range u.entries {
		if !e.Done || !e.retired || u.specReferenced(e) {
			break
		}
		n++
	}
	if n > 0 {
		u.entries = u.entries[:copy(u.entries, u.entries[n:])]
	}
	// Stores retire from the store buffer when they complete (Figure 5).
	sb := u.storeBuf[:0]
	for _, e := range u.storeBuf {
		if !e.Done {
			sb = append(sb, e)
		}
	}
	u.storeBuf = sb
}

// specReferenced reports whether a speculative-load-buffer row still names
// e (as its load or as its store tag). The direct scan replaces a per-cycle
// map build: the buffer is small and Prune runs every cycle.
func (u *LSU) specReferenced(e *Entry) bool {
	for _, s := range u.spec {
		if s.e == e || s.storeTag == e {
			return true
		}
	}
	return false
}
