package core

import (
	"fmt"
	"sort"

	"mcmsim/internal/isa"
	"mcmsim/internal/stats"
)

// This file serializes the load/store unit mid-flight. The LSU is a graph
// of *Entry pointers shared between the live-entry list, the issue queues,
// the speculative-load buffer, the SC-violation monitor, the id map and the
// store-forwarding links; the serialized form flattens every reference to
// the entry's Seq (ROB identifier — unique for the lifetime of a program
// phase) and restore rebuilds the pointer graph from one table.

// EntryState mirrors Entry by value.
type EntryState struct {
	Seq   uint64
	Class AccessClass
	RMW   isa.RMWKind

	Base      int64
	BaseReady bool
	Imm       int64
	Addr      uint64
	AddrReady bool
	Data      int64
	DataReady bool

	InStoreBuf bool
	AtHead     bool
	Issued     bool
	IssuedAt   uint64
	DispatchAt uint64
	Done       bool
	Value      int64

	SpecIssued bool
	SpecDone   bool
	SpecValue  int64

	Prefetched  bool
	OwnershipOK bool
	Forwarded   bool
	// FwdFromSeq is the Seq of the buffered store the value was forwarded
	// from; valid only when HasFwdFrom (Seq 0 is a legitimate identifier).
	HasFwdFrom bool
	FwdFromSeq uint64

	SquashedAfterIssue bool
	Retired            bool

	DemandID uint64
	SpecID   uint64
}

// SpecRowState is one speculative-load-buffer or SC-monitor row, with the
// entry references flattened to Seqs.
type SpecRowState struct {
	Seq         uint64
	Acq         bool
	HasStoreTag bool
	StoreTagSeq uint64
	IsRMW       bool
	Suspect     bool
	RevalIssued bool
	RevalOK     bool
}

// IDState is one live cache-access identifier: the entry it belongs to and
// the role (demand access, speculative read-exclusive, revalidation).
type IDState struct {
	ID   uint64
	Seq  uint64
	Role uint8
}

// ForwardState is one scheduled store-buffer forwarding completion.
type ForwardState struct {
	At    uint64
	ID    uint64
	Value int64
}

// LSUState is the serializable state of one load/store unit, mid-flight
// included: the live entries in program order, each queue as Seq references
// in queue order, the speculative-load and monitor buffers, the id map, the
// pending revalidations and the scheduled forwards, plus the statistics.
type LSUState struct {
	Stats stats.State

	Entries []EntryState // program order (u.entries verbatim)
	// MonitorOrphans are entries referenced by monitor rows after being
	// pruned from the live-entry list (the monitor holds its own pointer and
	// does not pin entries the way the speculative-load buffer does).
	MonitorOrphans []EntryState // ascending by Seq

	RS       []uint64 // Seq refs, queue order
	LoadQ    []uint64
	StoreBuf []uint64
	SwpfQ    []uint64

	Spec    []SpecRowState // buffer order (head first)
	Monitor []SpecRowState

	IDs      []IDState // ascending by ID
	NextID   uint64
	RevalSeq []uint64       // entry Seqs with a pending revalidation, ascending
	Forwards []ForwardState // schedule order
}

func exportEntry(e *Entry) EntryState {
	st := EntryState{
		Seq: e.Seq, Class: e.Class, RMW: e.RMW,
		Base: e.base, BaseReady: e.baseReady, Imm: e.imm,
		Addr: e.Addr, AddrReady: e.AddrReady,
		Data: e.data, DataReady: e.dataReady,
		InStoreBuf: e.inStoreBuf, AtHead: e.atHead,
		Issued: e.issued, IssuedAt: e.issuedAt, DispatchAt: e.dispatchAt,
		Done: e.Done, Value: e.Value,
		SpecIssued: e.specIssued, SpecDone: e.specDone, SpecValue: e.specValue,
		Prefetched: e.prefetched, OwnershipOK: e.ownershipOK, Forwarded: e.forwarded,
		SquashedAfterIssue: e.squashedAfterIssue, Retired: e.retired,
		DemandID: e.demandID, SpecID: e.specID,
	}
	if e.fwdFrom != nil {
		st.HasFwdFrom = true
		st.FwdFromSeq = e.fwdFrom.Seq
	}
	return st
}

func fillEntry(e *Entry, st EntryState) {
	*e = Entry{
		Seq: st.Seq, Class: st.Class, RMW: st.RMW,
		base: st.Base, baseReady: st.BaseReady, imm: st.Imm,
		Addr: st.Addr, AddrReady: st.AddrReady,
		data: st.Data, dataReady: st.DataReady,
		inStoreBuf: st.InStoreBuf, atHead: st.AtHead,
		issued: st.Issued, issuedAt: st.IssuedAt, dispatchAt: st.DispatchAt,
		Done: st.Done, Value: st.Value,
		specIssued: st.SpecIssued, specDone: st.SpecDone, specValue: st.SpecValue,
		prefetched: st.Prefetched, ownershipOK: st.OwnershipOK, forwarded: st.Forwarded,
		squashedAfterIssue: st.SquashedAfterIssue, retired: st.Retired,
		demandID: st.DemandID, specID: st.SpecID,
	}
}

func exportSpecRow(s *specEntry) SpecRowState {
	row := SpecRowState{
		Seq: s.e.Seq, Acq: s.acq, IsRMW: s.isRMW,
		Suspect: s.suspect, RevalIssued: s.revalIssued, RevalOK: s.revalOK,
	}
	if s.storeTag != nil {
		row.HasStoreTag = true
		row.StoreTagSeq = s.storeTag.Seq
	}
	return row
}

// ExportState captures the LSU, mid-flight work included.
func (u *LSU) ExportState() (LSUState, error) {
	var st LSUState
	if err := u.ExportStateInto(&st); err != nil {
		return LSUState{}, err
	}
	return st, nil
}

// ExportStateInto captures the LSU into st, reusing st's backing storage.
// Per-window engine checkpoints call this on every dispatched processor
// shard, so the capture must stay off the allocator once the buffers have
// grown to steady state.
func (u *LSU) ExportStateInto(st *LSUState) error {
	u.Stats.ExportStateInto(&st.Stats)
	st.NextID = u.nextID
	st.Entries = st.Entries[:0]
	inEntries := make(map[uint64]bool, len(u.entries))
	for _, e := range u.entries {
		st.Entries = append(st.Entries, exportEntry(e))
		inEntries[e.Seq] = true
	}
	orphans := map[uint64]*Entry{}
	noteOrphan := func(e *Entry) {
		if e != nil && !inEntries[e.Seq] {
			orphans[e.Seq] = e
		}
	}
	seqs := func(buf []uint64, es []*Entry) []uint64 {
		buf = buf[:0]
		for _, e := range es {
			if !inEntries[e.Seq] {
				return nil // caught below with a precise error
			}
			buf = append(buf, e.Seq)
		}
		return buf
	}
	for name, q := range map[string][]*Entry{"rs": u.rs, "loadQ": u.loadQ, "storeBuf": u.storeBuf, "swpfQ": u.swpfQ} {
		for _, e := range q {
			if !inEntries[e.Seq] {
				return fmt.Errorf("core: lsu%d %s references seq %d outside the live window", u.Proc, name, e.Seq)
			}
		}
	}
	st.RS, st.LoadQ, st.StoreBuf, st.SwpfQ = seqs(st.RS, u.rs), seqs(st.LoadQ, u.loadQ), seqs(st.StoreBuf, u.storeBuf), seqs(st.SwpfQ, u.swpfQ)
	for _, e := range u.entries {
		// A load can keep its forwarding link after the source store
		// retired and was pruned (the link is only ever compared against
		// still-buffered stores, but it must survive a round trip).
		noteOrphan(e.fwdFrom)
	}
	st.Spec = st.Spec[:0]
	for _, s := range u.spec {
		if !inEntries[s.e.Seq] {
			return fmt.Errorf("core: lsu%d spec row references seq %d outside the live window", u.Proc, s.e.Seq)
		}
		noteOrphan(s.storeTag)
		st.Spec = append(st.Spec, exportSpecRow(s))
	}
	st.Monitor = st.Monitor[:0]
	for _, s := range u.monitor {
		noteOrphan(s.e)
		noteOrphan(s.storeTag)
		st.Monitor = append(st.Monitor, exportSpecRow(s))
	}
	st.IDs = st.IDs[:0]
	for id, t := range u.ids {
		if !inEntries[t.e.Seq] {
			noteOrphan(t.e)
		}
		st.IDs = append(st.IDs, IDState{ID: id, Seq: t.e.Seq, Role: uint8(t.role)})
	}
	sort.Slice(st.IDs, func(i, j int) bool { return st.IDs[i].ID < st.IDs[j].ID })
	st.RevalSeq = st.RevalSeq[:0]
	for seq := range u.revalBySeq {
		st.RevalSeq = append(st.RevalSeq, seq)
	}
	sort.Slice(st.RevalSeq, func(i, j int) bool { return st.RevalSeq[i] < st.RevalSeq[j] })
	st.Forwards = st.Forwards[:0]
	for _, f := range u.forwards {
		st.Forwards = append(st.Forwards, ForwardState{At: f.at, ID: f.id, Value: f.value})
	}
	// Close the orphan set over forwarding links, so restore can rebuild
	// the full pointer graph. (In practice one pass suffices — forwarding
	// sources are stores and stores never forward — but a worklist keeps
	// the invariant rather than the assumption.)
	for changed := true; changed; {
		changed = false
		for _, e := range orphans {
			if e.fwdFrom != nil && !inEntries[e.fwdFrom.Seq] && orphans[e.fwdFrom.Seq] == nil {
				orphans[e.fwdFrom.Seq] = e.fwdFrom
				changed = true
			}
		}
	}
	st.MonitorOrphans = st.MonitorOrphans[:0]
	for _, e := range orphans {
		st.MonitorOrphans = append(st.MonitorOrphans, exportEntry(e))
	}
	sort.Slice(st.MonitorOrphans, func(i, j int) bool { return st.MonitorOrphans[i].Seq < st.MonitorOrphans[j].Seq })
	return nil
}

// RestoreState replaces the LSU's entire state — entries, queues, buffers,
// ids and statistics — with the exported one. Any in-progress state is
// discarded (the optimistic engine's rollback path). The cached histogram
// pointers are dropped: Stats.RestoreState recreates the histogram objects,
// so stale pointers would record into orphaned metrics.
func (u *LSU) RestoreState(st LSUState) error {
	// Reuse the discarded entries' allocations: *Entry pointers never escape
	// the package (cross-component references are by cache-access id), so the
	// old entries can be overwritten in place. Each loop iteration reads
	// old[i] before append writes slot i of the shared backing array, and the
	// orphan loop only consumes slots past len(st.Entries), which the appends
	// never touched.
	old := u.entries
	nextOld := 0
	alloc := func(es EntryState) *Entry {
		var e *Entry
		if nextOld < len(old) {
			e = old[nextOld]
			nextOld++
		} else {
			e = new(Entry)
		}
		fillEntry(e, es)
		return e
	}
	bySeq := make(map[uint64]*Entry, len(st.Entries)+len(st.MonitorOrphans))
	u.entries = u.entries[:0]
	for _, es := range st.Entries {
		e := alloc(es)
		u.entries = append(u.entries, e)
		bySeq[e.Seq] = e
	}
	for _, es := range st.MonitorOrphans {
		bySeq[es.Seq] = alloc(es)
	}
	link := func(es []EntryState) error {
		for _, s := range es {
			if !s.HasFwdFrom {
				continue
			}
			src, ok := bySeq[s.FwdFromSeq]
			if !ok {
				return fmt.Errorf("core: lsu%d snapshot forwards seq %d from unknown seq %d", u.Proc, s.Seq, s.FwdFromSeq)
			}
			bySeq[s.Seq].fwdFrom = src
		}
		return nil
	}
	if err := link(st.Entries); err != nil {
		return err
	}
	if err := link(st.MonitorOrphans); err != nil {
		return err
	}
	resolve := func(what string, dst []*Entry, seqs []uint64) ([]*Entry, error) {
		dst = dst[:0]
		for _, seq := range seqs {
			e, ok := bySeq[seq]
			if !ok {
				return nil, fmt.Errorf("core: lsu%d snapshot %s references unknown seq %d", u.Proc, what, seq)
			}
			dst = append(dst, e)
		}
		return dst, nil
	}
	var err error
	if u.rs, err = resolve("rs", u.rs, st.RS); err != nil {
		return err
	}
	if u.loadQ, err = resolve("loadQ", u.loadQ, st.LoadQ); err != nil {
		return err
	}
	if u.storeBuf, err = resolve("storeBuf", u.storeBuf, st.StoreBuf); err != nil {
		return err
	}
	if u.swpfQ, err = resolve("swpfQ", u.swpfQ, st.SwpfQ); err != nil {
		return err
	}
	rows := func(what string, dst []*specEntry, rs []SpecRowState) ([]*specEntry, error) {
		oldRows := dst
		nextRow := 0
		dst = dst[:0]
		for _, r := range rs {
			e, ok := bySeq[r.Seq]
			if !ok {
				return nil, fmt.Errorf("core: lsu%d snapshot %s row references unknown seq %d", u.Proc, what, r.Seq)
			}
			var s *specEntry
			if nextRow < len(oldRows) {
				s = oldRows[nextRow] // read before append writes this slot
				nextRow++
			} else {
				s = new(specEntry)
			}
			*s = specEntry{e: e, acq: r.Acq, isRMW: r.IsRMW, suspect: r.Suspect, revalIssued: r.RevalIssued, revalOK: r.RevalOK}
			if r.HasStoreTag {
				tag, ok := bySeq[r.StoreTagSeq]
				if !ok {
					return nil, fmt.Errorf("core: lsu%d snapshot %s row tags unknown seq %d", u.Proc, what, r.StoreTagSeq)
				}
				s.storeTag = tag
			}
			dst = append(dst, s)
		}
		return dst, nil
	}
	if u.spec, err = rows("spec", u.spec, st.Spec); err != nil {
		return err
	}
	if u.monitor, err = rows("monitor", u.monitor, st.Monitor); err != nil {
		return err
	}
	if u.ids == nil {
		u.ids = make(map[uint64]idTarget, len(st.IDs))
	} else {
		clear(u.ids)
	}
	for _, is := range st.IDs {
		e, ok := bySeq[is.Seq]
		if !ok {
			return fmt.Errorf("core: lsu%d snapshot id %d references unknown seq %d", u.Proc, is.ID, is.Seq)
		}
		u.ids[is.ID] = idTarget{e: e, role: entryRole(is.Role)}
	}
	u.nextID = st.NextID
	if u.revalBySeq == nil {
		u.revalBySeq = make(map[uint64]*specEntry, len(st.RevalSeq))
	} else {
		clear(u.revalBySeq)
	}
	for _, seq := range st.RevalSeq {
		var row *specEntry
		for _, s := range u.spec {
			if s.e.Seq == seq {
				row = s
				break
			}
		}
		if row == nil {
			return fmt.Errorf("core: lsu%d snapshot revalidates seq %d with no spec row", u.Proc, seq)
		}
		u.revalBySeq[seq] = row
	}
	u.forwards = u.forwards[:0]
	for _, f := range st.Forwards {
		u.forwards = append(u.forwards, forwardCompletion{at: f.At, id: f.ID, value: f.Value})
	}
	u.latHist = [numAccessClasses]*stats.Histogram{}
	u.Stats.RestoreState(st.Stats)
	return nil
}
