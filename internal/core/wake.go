package core

// NextWake is the LSU's quiescence probe for the simulator's idle-cycle
// fast-forward scheduler. It answers, without mutating anything: can
// TickComplete or TickIssue change state at cycle `now`, and if not, at
// which future cycle could they on their own? The checks mirror TickIssue's
// phases via the read-only candidate selectors; any existing candidate
// counts as busy even if the cache would block it, because the dense loop
// retries blocked candidates every cycle and counts those retries in the
// stats (mshr_blocked, wb_stalls) — skipping them would change the report.
func (u *LSU) NextWake(now uint64) (uint64, bool) {
	wake := uint64(0)
	ok := false
	for _, f := range u.forwards {
		if f.at <= now {
			return now, true
		}
		if !ok || f.at < wake {
			wake, ok = f.at, true
		}
	}
	// Address computation: the unit is FIFO, so only a ready head makes
	// progress (an unready head's operand arrival is the CPU's wake).
	if len(u.rs) > 0 && u.rs[0].baseReady {
		return now, true
	}
	if u.peekLoadCandidate() != nil {
		return now, true
	}
	if u.nextStoreCandidate() != nil {
		return now, true
	}
	if u.cfg.Tech.Revalidate && u.revalidationCandidate() != nil {
		return now, true
	}
	if len(u.swpfQ) > 0 {
		return now, true
	}
	if u.cfg.Tech.Prefetch {
		if e, _ := u.prefetchCandidate(); e != nil {
			return now, true
		}
	}
	return wake, ok
}
