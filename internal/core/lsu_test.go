package core

import (
	"testing"

	"mcmsim/internal/cache"
	"mcmsim/internal/coherence"
	"mcmsim/internal/isa"
	"mcmsim/internal/memsys"
	"mcmsim/internal/network"
)

// fakeCPU records LSU callbacks so the load/store unit can be unit-tested
// without the out-of-order core.
type fakeCPU struct {
	loads      map[uint64]int64
	stores     map[uint64]bool
	flushes    []uint64
	withdrawn  []uint64
	lsu        *LSU
	selfDriven bool // auto-signal StoreAtHead for every store on dispatch
}

func newFakeCPU() *fakeCPU {
	return &fakeCPU{loads: map[uint64]int64{}, stores: map[uint64]bool{}}
}

func (f *fakeCPU) LoadComplete(rob uint64, v int64, now uint64) { f.loads[rob] = v }
func (f *fakeCPU) StoreComplete(rob uint64, now uint64)         { f.stores[rob] = true }
func (f *fakeCPU) FlushFrom(rob uint64, now uint64) {
	f.flushes = append(f.flushes, rob)
	f.lsu.Flush(rob)
}
func (f *fakeCPU) InvalidateLoadValue(rob uint64) { f.withdrawn = append(f.withdrawn, rob) }

// rig is a one-LSU test system with a real cache, directory and network.
type rig struct {
	net   *network.Network
	mem   *memsys.Memory
	dir   *coherence.Directory
	cache *cache.Cache
	lsu   *LSU
	cpu   *fakeCPU
	cycle uint64
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	geom := memsys.NewGeometry(1)
	r := &rig{
		net: network.New(5),
		mem: memsys.NewMemory(geom),
		cpu: newFakeCPU(),
	}
	r.dir = coherence.New(1, r.net, r.mem, 2, coherence.ProtoInvalidate)
	r.lsu = NewLSU(0, cfg, nil, geom)
	r.cache = cache.New(0, 1, r.net, geom, cache.DefaultConfig(), cache.ProtoInvalidate, r.lsu)
	r.lsu.BindCache(r.cache)
	r.lsu.SetCPU(r.cpu)
	r.cpu.lsu = r.lsu
	return r
}

func (r *rig) step() {
	r.net.Deliver(r.cycle)
	r.cache.Tick(r.cycle)
	r.lsu.TickComplete(r.cycle)
	r.lsu.TickIssue(r.cycle)
	r.cycle++
}

func (r *rig) run(n int) {
	for i := 0; i < n; i++ {
		r.step()
	}
}

func ld(addr int64) isa.Instruction {
	return isa.Instruction{Op: isa.OpLoad, Dst: isa.R1, Base: isa.R0, Imm: addr}
}

func st(addr int64) isa.Instruction {
	return isa.Instruction{Op: isa.OpStore, Src: isa.R2, Base: isa.R0, Imm: addr}
}

func TestConventionalSCSerializesLoads(t *testing.T) {
	r := newRig(t, Config{Model: SC})
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.lsu.Dispatch(2, ld(0x200), true, 0, true, 0)
	r.run(1)
	// Only the first load may be in flight under conventional SC.
	if got := r.lsu.Stats.Counter("loads_issued").Value(); got != 1 {
		t.Fatalf("issued %d loads in cycle 0, want 1", got)
	}
	r.run(30) // first miss completes (latency 12 in the rig)
	if _, ok := r.cpu.loads[1]; !ok {
		t.Fatal("first load never completed")
	}
	r.run(30)
	if _, ok := r.cpu.loads[2]; !ok {
		t.Fatal("second load never completed")
	}
}

func TestSpeculativeLoadsPipeline(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.lsu.Dispatch(2, ld(0x200), true, 0, true, 0)
	r.run(2)
	if got := r.lsu.Stats.Counter("loads_issued").Value(); got != 2 {
		t.Fatalf("issued %d loads in 2 cycles, want 2 (speculative pipelining)", got)
	}
	r.run(30)
	if len(r.cpu.loads) != 2 {
		t.Fatalf("completions = %d, want 2", len(r.cpu.loads))
	}
	// Both entries retire from the speculative-load buffer once done.
	if rows := r.lsu.SpecBufferSnapshot(); len(rows) != 0 {
		t.Errorf("spec buffer not drained: %+v", rows)
	}
}

func TestStoreWaitsForHeadSignal(t *testing.T) {
	r := newRig(t, Config{Model: RC})
	r.lsu.Dispatch(1, st(0x100), true, 0, true, 5)
	r.run(3)
	if r.lsu.Stats.Counter("stores_issued").Value() != 0 {
		t.Fatal("store issued without the reorder-buffer head signal")
	}
	r.lsu.StoreAtHead(1)
	r.run(1)
	if r.lsu.Stats.Counter("stores_issued").Value() != 1 {
		t.Fatal("store did not issue after the head signal")
	}
	r.run(30)
	if !r.cpu.stores[1] {
		t.Fatal("store never completed")
	}
	if r.mem.ReadWord(0x100) == 5 {
		t.Log("note: value still in cache (write-back); memory holds stale data as expected")
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	r := newRig(t, Config{Model: RC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, st(0x100), true, 0, true, 42)
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0)
	r.run(3)
	if v, ok := r.cpu.loads[2]; !ok || v != 42 {
		t.Fatalf("forwarded load = %d,%v, want 42 (store not yet issued)", v, ok)
	}
	if r.lsu.Stats.Counter("store_forwards").Value() != 1 {
		t.Error("forwarding not counted")
	}
}

func TestLoadStallsOnUnreadyStoreData(t *testing.T) {
	r := newRig(t, Config{Model: RC, Tech: Technique{SpecLoad: true}})
	// Store's data operand not ready yet.
	r.lsu.Dispatch(1, st(0x100), true, 0, false, 0)
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0)
	r.run(3)
	if _, ok := r.cpu.loads[2]; ok {
		t.Fatal("load bypassed a same-address store with unknown data")
	}
	r.lsu.SetDataOperand(1, 99)
	r.run(3)
	if v, ok := r.cpu.loads[2]; !ok || v != 99 {
		t.Fatalf("load after data ready = %d,%v, want 99", v, ok)
	}
}

func TestPrefetchForDelayedStore(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{Prefetch: true}})
	// A load miss delays the store behind it under SC; the store should be
	// prefetched exclusively meanwhile.
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.lsu.Dispatch(2, st(0x200), true, 0, true, 7)
	r.run(3)
	if r.lsu.Stats.Counter("prefetch_attempts").Value() == 0 {
		t.Fatal("delayed store was not prefetched")
	}
	if out, ex := r.cache.HasMSHR(0x200); !out || !ex {
		t.Fatalf("no exclusive fill outstanding for the prefetched store (out=%v ex=%v)", out, ex)
	}
}

func TestSpecLoadSquashOnInvalidation(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	// Warm the line so the speculative load hits and completes quickly.
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.run(20)
	if _, ok := r.cpu.loads[1]; !ok {
		t.Fatal("warm load incomplete")
	}
	r.lsu.MarkRetired(1)

	// A long miss ahead of a fast hit: the hit completes speculatively.
	r.lsu.Dispatch(2, ld(0x300), true, 0, true, 0) // miss
	r.lsu.Dispatch(3, ld(0x100), true, 0, true, 0) // hit, speculative
	r.run(3)
	if _, ok := r.cpu.loads[3]; !ok {
		t.Fatal("speculative hit did not complete early")
	}
	if r.lsu.CanRetireLoad(3) {
		t.Fatal("speculative load must not be retirable while buffered behind an incomplete acquire-load")
	}
	// An invalidation for the speculated line arrives (simulated directly).
	r.lsu.CoherenceEvent(0x100, cache.EvInvalidate, r.cycle)
	if len(r.cpu.flushes) != 1 || r.cpu.flushes[0] != 3 {
		t.Fatalf("squash flush = %v, want [3]", r.cpu.flushes)
	}
	if r.lsu.Stats.Counter("spec_squashes").Value() != 1 {
		t.Error("squash not counted")
	}
}

func TestSpecLoadReissueWhenNotDone(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true, ReissueOpt: true}})
	r.lsu.Dispatch(1, ld(0x300), true, 0, true, 0) // miss, in flight
	r.run(2)
	// Invalidation arrives before the load completes: with the
	// optimization only the load is reissued; no flush.
	r.lsu.CoherenceEvent(0x300, cache.EvInvalidate, r.cycle)
	if len(r.cpu.flushes) != 0 {
		t.Fatalf("reissue case must not flush: %v", r.cpu.flushes)
	}
	if r.lsu.Stats.Counter("spec_reissues").Value() != 1 {
		t.Error("reissue not counted")
	}
	r.run(40)
	if _, ok := r.cpu.loads[1]; !ok {
		t.Fatal("reissued load never completed")
	}
}

func TestSpecBufferFIFORetirement(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, ld(0x300), true, 0, true, 0) // long miss
	r.lsu.Dispatch(2, ld(0x400), true, 0, true, 0) // long miss
	r.run(2)
	rows := r.lsu.SpecBufferSnapshot()
	if len(rows) != 2 {
		t.Fatalf("spec buffer rows = %d, want 2", len(rows))
	}
	if !rows[0].Acq || !rows[1].Acq {
		t.Error("under SC all loads must set acq")
	}
	r.run(30)
	if rows := r.lsu.SpecBufferSnapshot(); len(rows) != 0 {
		t.Errorf("spec buffer not drained after completion: %+v", rows)
	}
}

func TestStoreTagAssignmentAndNullify(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, st(0x200), true, 0, true, 7) // incomplete store
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0) // load behind it
	r.run(2)
	rows := r.lsu.SpecBufferSnapshot()
	if len(rows) != 1 || !rows[0].HasTag || rows[0].TagAddr != 0x200 {
		t.Fatalf("load's store tag wrong: %+v", rows)
	}
	// Let the store complete: tag must be nullified.
	r.lsu.StoreAtHead(1)
	r.run(40)
	for _, row := range r.lsu.SpecBufferSnapshot() {
		if row.HasTag {
			t.Errorf("tag not nullified after store completion: %+v", row)
		}
	}
}

func TestRMWSplitSpeculativeReadEx(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	rmw := isa.Instruction{Op: isa.OpRMW, RMW: isa.RMWTestAndSet, Dst: isa.R1, Src: isa.R0, Base: isa.R0, Imm: 0x100}
	r.lsu.Dispatch(1, rmw, true, 0, true, 0)
	r.run(1)
	// The read-exclusive part issues immediately; the atomic waits for the
	// head signal.
	if out, ex := r.cache.HasMSHR(0x100); !out || !ex {
		t.Fatal("speculative read-exclusive not issued")
	}
	rows := r.lsu.SpecBufferSnapshot()
	if len(rows) != 1 || !rows[0].IsRMW || !rows[0].Acq || !rows[0].HasTag {
		t.Fatalf("RMW spec entry wrong: %+v", rows)
	}
	r.lsu.StoreAtHead(1)
	r.run(40)
	if v, ok := r.cpu.loads[1]; !ok || v != 0 {
		t.Fatalf("rmw old value = %d,%v, want 0", v, ok)
	}
	if !r.cpu.stores[1] {
		t.Fatal("atomic part never completed")
	}
	if !r.lsu.CanRetireLoad(1) {
		t.Fatal("completed RMW must be retirable")
	}
}

func TestFlushRemovesYoungerEntries(t *testing.T) {
	r := newRig(t, Config{Model: RC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.lsu.Dispatch(2, ld(0x200), true, 0, true, 0)
	r.lsu.Dispatch(3, st(0x300), true, 0, true, 1)
	r.run(2)
	r.lsu.Flush(2)
	if r.lsu.find(2) != nil || r.lsu.find(3) != nil {
		t.Fatal("flushed entries still live")
	}
	if r.lsu.find(1) == nil {
		t.Fatal("older entry lost by flush")
	}
	// The orphaned access's completion must be dropped silently.
	r.run(30)
	if _, ok := r.cpu.loads[2]; ok {
		t.Fatal("completion delivered for a flushed load")
	}
	if r.lsu.Stats.Counter("stale_completions").Value() == 0 {
		t.Error("stale completion not counted")
	}
}

func TestForwardedLoadImmuneToCoherence(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, st(0x100), true, 0, true, 5)
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0)
	r.run(3)
	if v := r.cpu.loads[2]; v != 5 {
		t.Fatalf("forward = %d", v)
	}
	// An invalidation for the line must not squash the forwarded load: its
	// value came from this processor's own store.
	r.lsu.CoherenceEvent(0x100, cache.EvInvalidate, r.cycle)
	if len(r.cpu.flushes) != 0 {
		t.Fatalf("forwarded load squashed: %v", r.cpu.flushes)
	}
}

// TestForwardedLoadSquashedAfterStorePerforms pins the limit of the
// forwarding exemption: it holds only while the source store sits in the
// store buffer. Once that store performs, a remote write can slide in
// between the store and the load's retirement, so an invalidation for the
// line must squash the forwarded load like any other completed speculated
// load. (Found by conform seed 288: a release/store/store/acquire program
// retired an acquire bound to its own already-performed release while the
// line held a newer remote value — a non-SC outcome under SC.)
func TestForwardedLoadSquashedAfterStorePerforms(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true}})
	r.lsu.Dispatch(1, st(0x100), true, 0, true, 5)
	r.lsu.Dispatch(2, st(0x200), true, 0, true, 7)
	r.lsu.Dispatch(3, ld(0x100), true, 0, true, 0)
	r.run(3)
	if v := r.cpu.loads[3]; v != 5 {
		t.Fatalf("forward = %d, want 5", v)
	}
	// The source store performs; the second store never reaches the head,
	// keeping the forwarded load buffered and unretired.
	r.lsu.StoreAtHead(1)
	r.run(40)
	if !r.cpu.stores[1] {
		t.Fatal("source store never completed")
	}
	r.lsu.CoherenceEvent(0x100, cache.EvInvalidate, r.cycle)
	if len(r.cpu.flushes) != 1 || r.cpu.flushes[0] != 3 {
		t.Fatalf("squash flush = %v, want [3]", r.cpu.flushes)
	}
	if r.lsu.Stats.Counter("spec_squashes").Value() != 1 {
		t.Error("squash not counted")
	}
}

func TestAdveHillOwnershipUnblocks(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{AdveHill: true}})
	e := r.lsu.Dispatch(1, st(0x100), true, 0, true, 5)
	r.lsu.Dispatch(2, ld(0x200), true, 0, true, 0)
	r.lsu.StoreAtHead(1)
	r.run(1)
	// Simulate early ownership (no remote sharers in this rig would give
	// ownership == completion; poke the flag directly to test the predicate).
	e.ownershipOK = true
	if r.lsu.predicateOK(r.lsu.find(2)) != true {
		t.Fatal("Adve-Hill: owned store must not block the following load")
	}
}

func TestRevalidationConfirmsFalseSharing(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true, Revalidate: true}})
	// A long miss ahead keeps the window open; the second load hits and is
	// consumed speculatively.
	r.lsu.Dispatch(1, ld(0x300), true, 0, true, 0) // miss
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0) // will miss then be re-run
	r.run(20)                                      // both complete; entries retire
	r.lsu.MarkRetired(1)
	r.lsu.MarkRetired(2)
	r.run(5)
	// Fresh pair: the hit is speculative behind a new miss.
	r.lsu.Dispatch(3, ld(0x400), true, 0, true, 0) // miss, holds the buffer
	r.lsu.Dispatch(4, ld(0x100), true, 0, true, 0) // hit, value 0 consumed
	r.run(3)
	if _, ok := r.cpu.loads[4]; !ok {
		t.Fatal("speculative hit did not complete")
	}
	// A false-sharing invalidation arrives: same line, value unchanged.
	r.lsu.CoherenceEvent(0x100, cache.EvInvalidate, r.cycle)
	if len(r.cpu.flushes) != 0 {
		t.Fatalf("revalidation policy must not flush on the event: %v", r.cpu.flushes)
	}
	r.run(40) // miss 3 completes; revalidation re-reads 0x100 (same value 0)
	if r.lsu.Stats.Counter("revalidations_ok").Value() != 1 {
		t.Errorf("revalidation not confirmed: %s", r.lsu.DebugState())
	}
	if len(r.cpu.flushes) != 0 {
		t.Errorf("confirmed revalidation must not flush: %v", r.cpu.flushes)
	}
	if rows := r.lsu.SpecBufferSnapshot(); len(rows) != 0 {
		t.Errorf("spec buffer not drained after confirmation: %+v", rows)
	}
}

// sink swallows messages addressed to the adversary writer node.
type sink struct{}

func (sink) HandleMessage(m *network.Message, now uint64) {}

func TestRevalidationFailureSquashes(t *testing.T) {
	r := newRig(t, Config{Model: SC, Tech: Technique{SpecLoad: true, Revalidate: true}})
	r.net.Attach(2, sink{}) // adversary node for directory-serialized writes
	// Warm 0x100 so the speculative read hits with value 0.
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.run(20)
	r.lsu.MarkRetired(1)
	r.lsu.Dispatch(2, ld(0x500), true, 0, true, 0) // long miss holds the window
	r.lsu.Dispatch(3, ld(0x100), true, 0, true, 0) // speculative hit, value 0
	// An external writer changes the value while the window is open: the
	// directory invalidates our copy, the LSU marks the entry suspect, and
	// the later repeat read returns the new value, so the revalidation must
	// fail and squash.
	r.net.Send(&network.Message{
		Type: network.MsgUpdateReq, Src: 2, Dst: 1,
		Line: 0x100, Word: 0x100, Value: 77,
	}, r.cycle)
	r.run(3)
	if _, ok := r.cpu.loads[3]; !ok {
		t.Fatal("speculative hit did not complete")
	}
	r.run(60)
	if r.lsu.Stats.Counter("revalidations").Value() == 0 {
		t.Fatalf("revalidation never issued: %s", r.lsu.DebugState())
	}
	if r.lsu.Stats.Counter("revalidations_failed").Value() != 1 {
		t.Fatalf("revalidation should have failed: %s", r.lsu.DebugState())
	}
	if len(r.cpu.flushes) != 1 || r.cpu.flushes[0] != 3 {
		t.Fatalf("failed revalidation must flush from the load: %v", r.cpu.flushes)
	}
}

func swpf(addr int64) isa.Instruction {
	return isa.Instruction{Op: isa.OpPrefetchEx, Base: isa.R0, Imm: addr}
}

func TestSoftwarePrefetchFiresAndRetires(t *testing.T) {
	r := newRig(t, Config{Model: SC}) // no hardware techniques needed
	r.lsu.Dispatch(1, swpf(0x200), true, 0, true, 0)
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0)
	r.run(2)
	if !r.lsu.PrefetchDone(1) {
		t.Fatal("software prefetch did not issue")
	}
	if out, ex := r.cache.HasMSHR(0x200); !out || !ex {
		t.Fatalf("no exclusive fill for the software prefetch (out=%v ex=%v)", out, ex)
	}
	// The prefetch is non-binding: it must not delay the load under SC.
	r.run(30)
	if _, ok := r.cpu.loads[2]; !ok {
		t.Fatal("load delayed behind a software prefetch")
	}
	if r.lsu.Stats.Counter("sw_prefetches").Value() != 1 {
		t.Error("software prefetch not counted")
	}
}

func TestSoftwarePrefetchInvisibleToPredicates(t *testing.T) {
	// An unissued software prefetch must never block a following access
	// under SC (it is non-binding and unordered).
	r := newRig(t, Config{Model: SC})
	// The prefetch's base register is not ready: it cannot even compute its
	// address, so it sits in the reservation station...
	r.lsu.Dispatch(1, isa.Instruction{Op: isa.OpPrefetch, Base: isa.R5, Imm: 0x200}, false, 0, true, 0)
	r.lsu.Dispatch(2, ld(0x100), true, 0, true, 0)
	r.run(3)
	// ...and because the address unit is FIFO the load waits for the
	// address, but once the base arrives everything drains.
	r.lsu.SetBaseOperand(1, 0)
	r.run(30)
	if _, ok := r.cpu.loads[2]; !ok {
		t.Fatal("load never completed after prefetch address resolved")
	}
}

func TestDetectorFlagsEarlyLoad(t *testing.T) {
	r := newRig(t, Config{Model: RC, Tech: Technique{DetectSC: true}})
	r.net.Attach(2, sink{})
	// Warm 0x100.
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.run(20)
	r.lsu.MarkRetired(1)
	// Under RC both loads pipeline; the second is "early" w.r.t. SC.
	r.lsu.Dispatch(2, ld(0x300), true, 0, true, 0) // miss
	r.lsu.Dispatch(3, ld(0x100), true, 0, true, 0) // hit, early
	// An external write invalidates the early load's line inside the window.
	r.net.Send(&network.Message{
		Type: network.MsgUpdateReq, Src: 2, Dst: 1,
		Line: 0x100, Word: 0x100, Value: 9,
	}, r.cycle)
	r.run(40)
	if r.lsu.SCViolations() != 1 {
		t.Fatalf("detector found %d violations, want 1", r.lsu.SCViolations())
	}
	// No correction: nothing flushed.
	if len(r.cpu.flushes) != 0 {
		t.Fatalf("detector must not correct: %v", r.cpu.flushes)
	}
}

func TestDetectorIgnoresInOrderLoad(t *testing.T) {
	r := newRig(t, Config{Model: RC, Tech: Technique{DetectSC: true}})
	r.net.Attach(2, sink{})
	// A single load with nothing older is never early; an invalidation
	// during its flight must not count.
	r.lsu.Dispatch(1, ld(0x100), true, 0, true, 0)
	r.run(1)
	r.net.Send(&network.Message{
		Type: network.MsgUpdateReq, Src: 2, Dst: 1,
		Line: 0x100, Word: 0x100, Value: 9,
	}, r.cycle)
	r.run(40)
	if r.lsu.SCViolations() != 0 {
		t.Fatalf("false positive: %d violations for an in-order load", r.lsu.SCViolations())
	}
}
