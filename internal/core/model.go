// Package core implements the paper's primary contribution: enforcement of
// memory consistency models in a dynamically scheduled processor, together
// with the two latency-hiding techniques the paper proposes —
// hardware-controlled non-binding prefetch (§3) and speculative execution
// for load accesses (§4) — plus the related-work comparator modes (§6).
//
// The package models the load/store functional unit of Figure 4: the
// load/store reservation station, the address unit, the store buffer, and
// the speculative-load buffer, layered on the lockup-free cache from
// internal/cache. The surrounding out-of-order processor lives in
// internal/cpu and interacts with the LSU through the CPU interface
// declared here.
package core

import "fmt"

// Model enumerates the supported memory consistency models, from strictest
// to most relaxed (paper §2, Figure 1).
type Model uint8

// Consistency models.
const (
	// SC is Lamport's sequential consistency: shared accesses perform in
	// program order.
	SC Model = iota
	// PC is Goodman's processor consistency: reads may bypass previous
	// writes, but reads stay ordered with reads and writes with writes.
	PC
	// WC is Dubois' weak consistency (WCsc): ordinary accesses between
	// synchronization points pipeline freely; synchronization accesses wait
	// for everything before them and block everything after them.
	WC
	// RC is release consistency (RCpc): ordinary accesses wait only for
	// previous acquires; a release waits for all previous accesses but does
	// not block accesses after it; special accesses are processor
	// consistent among themselves.
	RC
	// RCsc is the release-consistency variant whose special accesses are
	// sequentially consistent among themselves (paper footnote 1 names the
	// figure's models WCsc and RCpc; RCsc is the other point of the
	// framework of reference [8]): an acquire additionally waits for
	// previous releases.
	RCsc
)

func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case PC:
		return "PC"
	case WC:
		return "WC"
	case RC:
		return "RC"
	case RCsc:
		return "RCsc"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// AllModels lists the models in strictness order, for sweeps. RCsc sits
// between WC and RCpc in strictness.
var AllModels = []Model{SC, PC, WC, RCsc, RC}

// ParseModel converts a model name ("SC", "pc", ...) to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "SC", "sc":
		return SC, nil
	case "PC", "pc":
		return PC, nil
	case "WC", "wc":
		return WC, nil
	case "RC", "rc", "RCpc", "rcpc":
		return RC, nil
	case "RCsc", "rcsc":
		return RCsc, nil
	}
	return SC, fmt.Errorf("unknown consistency model %q", s)
}

// Technique selects which of the paper's mechanisms are active.
type Technique struct {
	// Prefetch enables hardware-controlled non-binding prefetching (§3):
	// accesses delayed in the load/store buffers by consistency constraints
	// are issued as read or read-exclusive prefetches.
	Prefetch bool
	// SpecLoad enables speculative execution for load accesses (§4): loads
	// issue as soon as their effective address is known and the
	// speculative-load buffer detects and corrects mis-speculation.
	SpecLoad bool
	// ReissueOpt enables the paper's optimization for the case where a
	// coherence event matches a speculative load that has not yet completed:
	// only the load is reissued instead of flushing the pipeline (§4.2,
	// second case). Without it every match flushes conservatively.
	ReissueOpt bool
	// AdveHill enables the §6 comparator: an SC implementation that stalls
	// a store only until ownership is acquired rather than until the write
	// has performed everywhere (Adve & Hill 1990). Only meaningful with
	// Model == SC and the invalidation protocol.
	AdveHill bool
	// Revalidate selects the alternative detection policy of §4.1: when a
	// coherence transaction matches a completed speculative load, instead
	// of squashing immediately the entry is marked suspect, and once the
	// consistency model would have allowed the access to perform the load
	// is repeated and its return value compared with the speculated value
	// ("a naive way to detect an incorrect speculated value is to repeat
	// the access when the consistency model would have allowed it to
	// proceed ... and to check the return value with the speculated
	// value"). Equal values — false sharing, or a write of the same value —
	// avoid the rollback at the price of a second cache access.
	Revalidate bool
	// DetectSC enables the §6 extension of the detection mechanism
	// (Gharachorloo & Gibbons, SPAA 1991, the paper's reference [6]): on a
	// relaxed-model machine, a monitor shaped like the speculative-load
	// buffer — but with sequential consistency's ordering rules and no
	// correction — watches coherence traffic and counts accesses whose
	// early performance may have violated SC. For every execution it then
	// certifies either "this execution was sequentially consistent" (zero
	// detections) or "the program has data races". Our monitor is
	// conservative (line-granular, like footnote 2), so detections imply
	// *possible* violations; zero detections is a guarantee.
	DetectSC bool
}

func (t Technique) String() string {
	switch {
	case t.Prefetch && t.SpecLoad:
		return "pf+spec"
	case t.Prefetch:
		return "pf"
	case t.SpecLoad:
		return "spec"
	case t.AdveHill:
		return "advehill"
	default:
		return "conv"
	}
}

// AccessClass classifies a memory access for the consistency predicates.
type AccessClass uint8

// Access classes.
const (
	ClassLoad    AccessClass = iota // ordinary load
	ClassStore                      // ordinary store
	ClassAcquire                    // acquire synchronization read
	ClassRelease                    // release synchronization write
	ClassRMW                        // atomic read-modify-write (acquire)
	// ClassPrefetch / ClassPrefetchEx are software prefetch instructions
	// (paper §6): non-binding, never ordered by any model, fire-and-forget.
	ClassPrefetch
	ClassPrefetchEx
)

func (c AccessClass) String() string {
	switch c {
	case ClassLoad:
		return "ld"
	case ClassStore:
		return "st"
	case ClassAcquire:
		return "ld.acq"
	case ClassRelease:
		return "st.rel"
	case ClassRMW:
		return "rmw"
	case ClassPrefetch:
		return "pf"
	case ClassPrefetchEx:
		return "pf.x"
	default:
		return "?"
	}
}

// isRead reports whether the class binds a register value from memory.
func (c AccessClass) isRead() bool {
	return c == ClassLoad || c == ClassAcquire || c == ClassRMW
}

// isWrite reports whether the class modifies memory.
func (c AccessClass) isWrite() bool {
	return c == ClassStore || c == ClassRelease || c == ClassRMW
}

// isSync reports whether the class is a synchronization access.
func (c AccessClass) isSync() bool {
	return c == ClassAcquire || c == ClassRelease || c == ClassRMW
}

// isAcquire reports whether the class has acquire semantics.
func (c AccessClass) isAcquire() bool {
	return c == ClassAcquire || c == ClassRMW
}

// isSWPrefetch reports whether the class is a software prefetch, which is
// invisible to every consistency predicate (non-binding, §3.1/§6).
func (c AccessClass) isSWPrefetch() bool {
	return c == ClassPrefetch || c == ClassPrefetchEx
}

// blocksIssue evaluates the conventional delay arcs of Figure 1: it reports
// whether an incomplete older access of class `older` forces access `cur`
// to be delayed under model m.
//
// The speculative-load technique bypasses this predicate for reads; the
// prefetch technique issues a non-binding prefetch when the predicate says
// "delay".
func blocksIssue(m Model, older, cur AccessClass) bool {
	switch m {
	case SC:
		// Every access waits for every previous access.
		return true
	case PC:
		// Reads wait for previous reads; writes wait for everything
		// (reads bypass previous writes only).
		if cur.isRead() && !cur.isWrite() {
			return older.isRead()
		}
		return true
	case WC:
		// Synchronization accesses wait for everything; ordinary accesses
		// wait for previous synchronization accesses.
		if cur.isSync() {
			return true
		}
		return older.isSync()
	case RC:
		// A release waits for everything previous. Ordinary accesses wait
		// only for previous acquires. Special accesses are processor
		// consistent among themselves: an acquire (a sync read) waits for
		// previous acquires but may bypass a pending release (a sync
		// write); a release waits for everything anyway.
		if cur == ClassRelease {
			return true
		}
		if cur.isAcquire() {
			return older.isAcquire()
		}
		return older.isAcquire()
	case RCsc:
		// As RC, but special accesses are sequentially consistent among
		// themselves: an acquire also waits for previous releases.
		if cur == ClassRelease {
			return true
		}
		if cur.isAcquire() {
			return older.isSync()
		}
		return older.isAcquire()
	default:
		panic("core: unknown model")
	}
}

// loadIsAcquireInSpecBuffer reports whether a load of the given class must
// set the acq field of its speculative-load-buffer entry under model m: the
// entry then stays in the buffer until the load completes, delaying the
// retirement of all later entries (paper §4.2: "for SC, all loads are
// treated as acquires").
func loadIsAcquireInSpecBuffer(m Model, c AccessClass) bool {
	switch m {
	case SC, PC:
		return true
	case WC:
		return c.isSync()
	case RC, RCsc:
		return c.isAcquire()
	default:
		panic("core: unknown model")
	}
}

// loadWaitsForStores reports whether, under model m, a speculative load of
// class c must carry a store tag naming the most recent incomplete older
// store (the load may not become non-speculative until that store
// completes).
func loadWaitsForStores(m Model, c AccessClass) bool {
	switch m {
	case SC:
		return true
	case PC:
		return false // reads bypass previous writes
	case WC:
		return true // waits for previous releases; tag selects sync stores
	case RC:
		return false
	case RCsc:
		// Only acquires wait for previous releases (SC among specials).
		return c.isAcquire()
	default:
		panic("core: unknown model")
	}
}

// storeTagRelevant reports whether an older incomplete store of class
// `older` is the kind of store a speculative load must wait for under model
// m (SC: any store; WC: only synchronization stores).
func storeTagRelevant(m Model, older AccessClass) bool {
	if !older.isWrite() {
		return false
	}
	if m == WC || m == RCsc {
		return older.isSync()
	}
	return true
}
