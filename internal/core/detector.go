package core

import "mcmsim/internal/cache"

// The SC-violation detector (§6 / reference [6]): a second buffer with the
// speculative-load buffer's shape but sequential consistency's retirement
// rules and no correction mechanism. Every load enters at issue; an entry
// leaves once the load and everything older have performed — the window in
// which an incoming invalidation, update or replacement of its line means
// the load may have bound a value SC would have forbidden. Matches are
// counted, not corrected.

// addMonitorEntry registers an issued access with the detector — but only
// when the access is actually early: if everything older has performed, the
// access performs in sequentially consistent order by construction and
// needs no watching. Both reads and writes are monitored ("the extended
// technique needs to check for violations of SC arising from performing
// either a read or a write access out of order", §6).
func (u *LSU) addMonitorEntry(e *Entry) {
	if !u.olderAccessIncomplete(e) {
		return
	}
	u.monitor = append(u.monitor, &specEntry{e: e, acq: true})
}

// olderAccessIncomplete reports whether any access older than e has not
// performed (software prefetches excluded — they are unordered).
func (u *LSU) olderAccessIncomplete(e *Entry) bool {
	for _, o := range u.entries {
		if o.Seq >= e.Seq {
			return false
		}
		if !o.Done && !o.Class.isSWPrefetch() {
			return true
		}
	}
	return false
}

// monitorCoherenceEvent matches a coherence event against the detector and
// counts possible SC violations. Matched entries are removed so one early
// access is counted once.
func (u *LSU) monitorCoherenceEvent(line uint64) {
	kept := u.monitor[:0]
	for _, s := range u.monitor {
		if u.geom.LineOf(s.e.Addr) == line && !s.e.forwarded {
			u.Stats.Counter("sc_violations_detected").Inc()
			continue
		}
		kept = append(kept, s)
	}
	u.monitor = kept
}

// retireMonitorEntries pops detector entries whose access has performed
// and has no older incomplete access — by SC's rules it is no longer
// early. FIFO, mirroring the speculative-load buffer; but unlike the
// buffer's single store tag, the detector checks *all* older accesses
// directly, because on relaxed hardware they complete out of order and a
// nullified youngest-tag would under-approximate the SC window (the
// zero-detections guarantee must hold).
func (u *LSU) retireMonitorEntries() {
	n := 0
	for _, s := range u.monitor {
		if !s.e.Done {
			break
		}
		if u.olderAccessIncomplete(s.e) {
			break
		}
		n++
	}
	if n > 0 {
		u.monitor = u.monitor[:copy(u.monitor, u.monitor[n:])]
	}
}

// flushMonitor drops detector entries at or after rob (pipeline flush).
func (u *LSU) flushMonitor(rob uint64) {
	kept := u.monitor[:0]
	for _, s := range u.monitor {
		if s.e.Seq < rob {
			kept = append(kept, s)
		}
	}
	u.monitor = kept
}

// SCViolations reports the number of possible sequential-consistency
// violations the detector observed.
func (u *LSU) SCViolations() uint64 {
	return u.Stats.Counter("sc_violations_detected").Value()
}

var _ = cache.EvInvalidate // the detector consumes the same events as the spec buffer
