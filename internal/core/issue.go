package core

import (
	"mcmsim/internal/cache"
)

// predicateOK evaluates the conventional delay arcs of Figure 1 for entry
// e: it reports whether every older incomplete access permits e to issue
// under the configured model. The Adve-Hill comparator treats a store whose
// ownership has been acquired as performed for ordering purposes.
func (u *LSU) predicateOK(e *Entry) bool {
	adveHill := u.cfg.Tech.AdveHill && u.cfg.Model == SC
	for _, o := range u.entries {
		if o.Seq >= e.Seq {
			break
		}
		if o.Done || o.Class.isSWPrefetch() {
			// Software prefetches are non-binding and never order anything.
			continue
		}
		if adveHill && o.IsWrite() && !o.IsRead() && o.ownershipOK {
			// Adve-Hill: a store whose ownership has been gained no longer
			// stalls later accesses; the new value is held back from other
			// processors instead.
			continue
		}
		if blocksIssue(u.cfg.Model, o.Class, e.Class) {
			return false
		}
	}
	return true
}

// computeAddresses runs the address unit: effective addresses are computed
// in FIFO order from the load/store reservation station; an entry whose
// base operand is unavailable stalls the unit (§4.2: "The retiring of
// instructions is stalled until the effective address for the instruction
// at the head can be computed").
func (u *LSU) computeAddresses(now uint64) {
	budget := u.cfg.MaxAddrPerCycle
	for len(u.rs) > 0 {
		if budget == 0 && u.cfg.MaxAddrPerCycle != 0 {
			return
		}
		e := u.rs[0]
		if !e.baseReady {
			return
		}
		e.Addr = uint64(e.base + e.imm)
		e.AddrReady = true
		u.rs = u.rs[:copy(u.rs, u.rs[1:])]
		budget--
		switch e.Class {
		case ClassPrefetch, ClassPrefetchEx:
			u.swpfQ = append(u.swpfQ, e)
		case ClassLoad, ClassAcquire:
			u.loadQ = append(u.loadQ, e)
		case ClassStore, ClassRelease:
			e.inStoreBuf = true
			u.storeBuf = append(u.storeBuf, e)
		case ClassRMW:
			// Appendix A: the reservation station splits a read-modify-write
			// into a speculative read-exclusive load and the actual atomic.
			// The atomic is placed in the store buffer; with the speculative
			// technique the read-exclusive part is issued via the load path.
			// Under the update protocol atomics serialize at the directory,
			// and non-cached read-modify-write locations have no speculative
			// part at all (Appendix A).
			e.inStoreBuf = true
			u.storeBuf = append(u.storeBuf, e)
			if u.cfg.Tech.SpecLoad && u.cache.Proto() != cache.ProtoUpdate && !u.cfg.UncachedRMW[e.Addr] {
				u.loadQ = append(u.loadQ, e)
			}
		}
	}
}

// olderStoresIssued reports whether every older write-class entry has been
// sent to the memory system (NST program-order issue rule).
func (u *LSU) olderStoresIssued(e *Entry) bool {
	for _, o := range u.entries {
		if o.Seq >= e.Seq {
			break
		}
		if o.IsWrite() && !o.issued {
			return false
		}
	}
	return true
}

// olderStoreConflict checks the store buffer for an older store to the same
// word address. It returns the youngest such store and whether the load
// must stall (an older RMW or a store whose data is not yet available).
func (u *LSU) olderStoreConflict(e *Entry) (fwd *Entry, stall bool) {
	for _, s := range u.storeBuf {
		if s.Seq >= e.Seq || s.Done {
			continue
		}
		if !s.AddrReady || s.Addr != e.Addr {
			continue
		}
		if s.Class == ClassRMW {
			// Atomics do not forward; wait until the RMW performs.
			return nil, true
		}
		if !s.dataReady {
			return nil, true
		}
		fwd = s // keep scanning: youngest older store wins
	}
	return fwd, false
}

// TickIssue is the LSU's per-cycle issue stage: run the address unit, issue
// at most one port-consuming demand access (merges with in-flight prefetches
// are free, per §3.2), then spend a free port cycle on a prefetch.
func (u *LSU) TickIssue(now uint64) {
	u.computeAddresses(now)
	portFree := true

	for {
		ld := u.nextLoadCandidate()
		st := u.nextStoreCandidate()
		var e *Entry
		var isStorePath bool
		switch {
		case ld == nil && st == nil:
			e = nil
		case ld == nil:
			e, isStorePath = st, true
		case st == nil:
			e = ld
		case ld.Seq < st.Seq:
			e = ld
		default:
			e, isStorePath = st, true
		}
		if e == nil {
			break
		}
		if !portFree {
			// Only a merge with an in-flight fill is free; anything else
			// must wait for the next cycle.
			if out, _ := u.cache.HasMSHR(e.Addr); !out {
				break
			}
		}
		usedPort, blocked := u.issueOne(e, isStorePath, now)
		if blocked {
			break
		}
		if usedPort {
			portFree = false
		}
	}

	if portFree && u.cfg.Tech.Revalidate {
		if s := u.revalidationCandidate(); s != nil {
			portFree = !u.issueRevalidation(s, now)
		}
	}
	if portFree {
		portFree = !u.swPrefetchTick(now)
	}
	if portFree && u.cfg.Tech.Prefetch {
		u.prefetchTick(now)
	}
	u.retireSpecEntries(now)
	u.Prune()
}

// swPrefetchTick issues the oldest pending software prefetch instruction
// (paper §6). Software prefetches are available regardless of the hardware
// technique flags — they are ordinary instructions. Returns whether the
// port was used.
func (u *LSU) swPrefetchTick(now uint64) bool {
	for len(u.swpfQ) > 0 {
		e := u.swpfQ[0]
		kind := cache.ReqPrefetch
		if e.Class == ClassPrefetchEx {
			kind = cache.ReqPrefetchEx
		}
		res := u.cache.Access(cache.Request{Kind: kind, Addr: e.Addr}, now)
		if res == cache.Blocked {
			return false
		}
		// Fire and forget: the prefetch retires immediately whether it
		// started a fill or was discarded against a resident line.
		e.Done = true
		u.swpfQ = u.swpfQ[:copy(u.swpfQ, u.swpfQ[1:])]
		u.emit(ObsPrefetch, e, 0, now)
		u.Stats.Counter("sw_prefetches").Inc()
		return true // probe or fill, the port was used either way
	}
	return false
}

// nextLoadCandidate returns the load-queue head if it is allowed to issue,
// dropping already-issued entries off the head as it goes.
func (u *LSU) nextLoadCandidate() *Entry {
	for len(u.loadQ) > 0 {
		e := u.loadQ[0]
		if e.issued {
			// Already issued: for an RMW the atomic issued before its
			// speculative read-exclusive part became useful; either way the
			// head is stale, drop it.
			u.loadQ = u.loadQ[:copy(u.loadQ, u.loadQ[1:])]
			continue
		}
		return u.loadEligible(e)
	}
	return nil
}

// peekLoadCandidate is nextLoadCandidate without the stale-head cleanup:
// the read-only variant NextWake uses so the quiescence probe cannot
// perturb queue state.
func (u *LSU) peekLoadCandidate() *Entry {
	for _, e := range u.loadQ {
		if e.issued {
			continue
		}
		return u.loadEligible(e)
	}
	return nil
}

// loadEligible applies the issue rules to the first live load-queue entry.
func (u *LSU) loadEligible(e *Entry) *Entry {
	// Conventional enforcement delays the load per the model's arcs;
	// the speculative technique issues as soon as the address is known.
	// Under NST, ordering is the memory module's job: the load needs
	// only program order of issue, i.e. all older stores sent.
	// Non-cached locations never speculate (Appendix A): they wait for
	// everything older under every model.
	if u.cfg.NST {
		if !u.olderStoresIssued(e) {
			return nil
		}
	} else if u.cfg.UncachedRMW[e.Addr] {
		if !u.allOlderDone(e) {
			return nil
		}
	} else if !u.cfg.Tech.SpecLoad && !u.predicateOK(e) {
		return nil
	}
	fwd, stall := u.olderStoreConflict(e)
	if stall || (fwd != nil && e.Class == ClassRMW) {
		// The RMW's read-exclusive part must not bypass an older
		// buffered store to the same address.
		return nil
	}
	return e
}

// nextStoreCandidate returns the first unissued store-buffer entry if it is
// allowed to issue: it must have been signaled by the reorder buffer
// (reached the head: the precise-interrupt gate), have address and data,
// and satisfy the model's delay arcs. Issue is FIFO: an ineligible store
// blocks younger stores.
func (u *LSU) nextStoreCandidate() *Entry {
	for _, e := range u.storeBuf {
		if e.issued {
			if e.Done {
				continue
			}
			// Outstanding store: under every model stores issue from the
			// buffer in FIFO order, but whether the next may overlap is the
			// predicate's decision, so keep scanning.
			continue
		}
		if !e.atHead || !e.AddrReady || !e.dataReady {
			return nil
		}
		if u.cfg.NST {
			return e // memory-side ordering; no processor-side delays
		}
		if u.cfg.UncachedRMW[e.Addr] {
			// Appendix A: an access to a non-cached location is delayed
			// until everything older has performed, under every model.
			if !u.allOlderDone(e) {
				return nil
			}
			return e
		}
		if !u.predicateOK(e) {
			return nil
		}
		return e
	}
	return nil
}

// issueOne sends one access to the memory system. Returns whether the cache
// port was consumed and whether the issuer must stop for this cycle.
func (u *LSU) issueOne(e *Entry, storePath bool, now uint64) (usedPort, blocked bool) {
	if storePath {
		return u.issueStore(e, now)
	}
	return u.issueLoad(e, now)
}

func (u *LSU) issueLoad(e *Entry, now uint64) (usedPort, blocked bool) {
	// Store-buffer forwarding: dependence checking on the store buffer
	// (§4.2) lets a load take its value from an older buffered store.
	if fwd, _ := u.olderStoreConflict(e); fwd != nil && e.Class != ClassRMW {
		id := u.newID(e, roleDemand)
		e.issued = true
		e.forwarded = true
		e.fwdFrom = fwd
		u.forwards = append(u.forwards, forwardCompletion{at: now + u.cfg.ForwardLatency, id: id, value: fwd.data})
		u.popLoadQ(e)
		if u.cfg.Tech.SpecLoad {
			u.addSpecEntry(e, false)
		}
		if u.cfg.Tech.DetectSC {
			u.addMonitorEntry(e)
		}
		u.emit(ObsForward, e, fwd.data, now)
		u.Stats.Counter("store_forwards").Inc()
		return true, false
	}

	if u.cfg.UncachedRMW[e.Addr] && e.Class != ClassRMW {
		// Non-cached location: read it at the memory module, conventionally
		// ordered (the candidate filter already held it back).
		req := cache.Request{Kind: cache.ReqRead, ID: u.newID(e, roleDemand), Addr: e.Addr}
		u.cache.UncachedAccess(req, now)
		e.issued = true
		e.issuedAt = now
		u.popLoadQ(e)
		u.emit(ObsLoadIssued, e, 0, now)
		u.Stats.Counter("uncached_loads").Inc()
		return true, false
	}

	isRMW := e.Class == ClassRMW
	var req cache.Request
	if isRMW {
		req = cache.Request{Kind: cache.ReqReadEx, ID: u.newID(e, roleSpec), Addr: e.Addr}
	} else {
		req = cache.Request{Kind: cache.ReqRead, ID: u.newID(e, roleDemand), Addr: e.Addr}
	}
	res := u.cache.Access(req, now)
	switch res {
	case cache.Blocked:
		delete(u.ids, req.ID)
		return false, true
	case cache.Hit, cache.Miss, cache.Merged:
		if isRMW {
			e.specIssued = true
			u.emit(ObsSpecIssued, e, 0, now)
		} else {
			e.issued = true
			e.issuedAt = now
			u.emit(ObsLoadIssued, e, 0, now)
		}
		u.popLoadQ(e)
		if u.cfg.Tech.SpecLoad {
			u.addSpecEntry(e, isRMW)
		}
		if u.cfg.Tech.DetectSC {
			u.addMonitorEntry(e)
		}
		u.Stats.Counter("loads_issued").Inc()
		return res != cache.Merged, false
	default:
		panic("core: unexpected access result for load")
	}
}

// allOlderDone reports whether every access older than e has performed.
func (u *LSU) allOlderDone(e *Entry) bool {
	for _, o := range u.entries {
		if o.Seq >= e.Seq {
			return true
		}
		if !o.Done && !o.Class.isSWPrefetch() {
			return false
		}
	}
	return true
}

func (u *LSU) issueStore(e *Entry, now uint64) (usedPort, blocked bool) {
	kind := cache.ReqWrite
	if e.Class == ClassRMW {
		kind = cache.ReqRMW
	}
	req := cache.Request{Kind: kind, ID: u.newID(e, roleDemand), Addr: e.Addr, Data: e.data, RMW: e.RMW}
	if u.cfg.UncachedRMW[e.Addr] {
		// Perform at the memory module, never caching the line.
		u.cache.UncachedAccess(req, now)
		e.issued = true
		e.issuedAt = now
		u.emit(ObsStoreIssued, e, 0, now)
		u.Stats.Counter("uncached_rmws").Inc()
		return true, false
	}
	res := u.cache.Access(req, now)
	switch res {
	case cache.Blocked:
		delete(u.ids, req.ID)
		return false, true
	case cache.Hit, cache.Miss, cache.Merged:
		e.issued = true
		e.issuedAt = now
		if u.cfg.Tech.DetectSC {
			u.addMonitorEntry(e)
		}
		u.emit(ObsStoreIssued, e, 0, now)
		u.Stats.Counter("stores_issued").Inc()
		return res != cache.Merged, false
	default:
		panic("core: unexpected access result for store")
	}
}

func (u *LSU) popLoadQ(e *Entry) {
	for i, q := range u.loadQ {
		if q == e {
			copy(u.loadQ[i:], u.loadQ[i+1:])
			u.loadQ = u.loadQ[:len(u.loadQ)-1]
			return
		}
	}
}

// addSpecEntry appends a row to the speculative-load buffer at issue time
// (§4.2: "Loads that are retired from the reservation station are put into
// the buffer in addition to being issued to the memory system"). A
// reissued load keeps its original row — the buffer stays in program order
// and never holds two rows for one access.
func (u *LSU) addSpecEntry(e *Entry, isRMW bool) {
	for _, existing := range u.spec {
		if existing.e == e {
			return
		}
	}
	s := &specEntry{
		e:     e,
		acq:   loadIsAcquireInSpecBuffer(u.cfg.Model, e.Class),
		isRMW: isRMW,
	}
	if isRMW {
		// Appendix A: the store tag names the RMW's own atomic operation in
		// the store buffer.
		s.storeTag = e
	} else if loadWaitsForStores(u.cfg.Model, e.Class) {
		for _, o := range u.entries {
			if o.Seq >= e.Seq {
				break
			}
			if !o.Done && storeTagRelevant(u.cfg.Model, o.Class) {
				s.storeTag = o // youngest such store wins
			}
		}
	}
	u.spec = append(u.spec, s)
	u.Stats.Counter("spec_entries").Inc()
}

// prefetchTick issues at most one hardware prefetch for an access that is
// delayed by consistency constraints (§3.2: prefetches are generated for
// accesses sitting in the load or store buffers that are delayed; they use
// cache cycles that demand accesses are not using).
func (u *LSU) prefetchTick(now uint64) {
	e, kind := u.prefetchCandidate()
	if e == nil {
		return
	}
	res := u.cache.Access(cache.Request{Kind: kind, Addr: e.Addr}, now)
	switch res {
	case cache.Miss, cache.PrefetchDropped:
		e.prefetched = true
		if res == cache.Miss {
			u.emit(ObsPrefetch, e, 0, now)
		}
		u.Stats.Counter("prefetch_attempts").Inc()
		// Port consumed either way.
	case cache.Blocked:
		return
	default:
		panic("core: unexpected access result for prefetch")
	}
}

// prefetchCandidate selects the entry prefetchTick would attempt (and the
// request kind) without side effects, so NextWake can share the selection.
func (u *LSU) prefetchCandidate() (*Entry, cache.ReqKind) {
	for _, e := range u.entries {
		if e.Done || e.issued || e.specIssued || e.prefetched || e.forwarded || !e.AddrReady {
			continue
		}
		var kind cache.ReqKind
		switch e.Class {
		case ClassLoad, ClassAcquire:
			// With speculative loads enabled, reads issue eagerly anyway.
			if u.cfg.Tech.SpecLoad {
				continue
			}
			if u.predicateOK(e) {
				continue // not delayed: it will issue as a demand access
			}
			kind = cache.ReqPrefetch
		case ClassStore, ClassRelease, ClassRMW:
			if e.atHead && u.predicateOK(e) {
				continue
			}
			if e.Class == ClassRMW && u.cfg.Tech.SpecLoad {
				continue // the speculative read-exclusive covers it
			}
			kind = cache.ReqPrefetchEx
		}
		return e, kind
	}
	return nil, 0
}

// TickComplete processes store-buffer forwarding completions; call once per
// cycle after cache.Tick.
func (u *LSU) TickComplete(now uint64) {
	if len(u.forwards) == 0 {
		return
	}
	due := u.forwards[:0]
	fire := u.fireScratch[:0]
	for _, f := range u.forwards {
		if f.at <= now {
			fire = append(fire, f)
		} else {
			due = append(due, f)
		}
	}
	u.forwards = due
	for _, f := range fire {
		u.AccessComplete(f.id, f.value, now)
	}
	u.fireScratch = fire[:0]
}
