package core

import "fmt"

// DebugState renders the LSU's queues for diagnostics.
func (u *LSU) DebugState() string {
	s := fmt.Sprintf("entries=%d rs=%d loadQ=%d storeBuf=%d spec=%d\n", len(u.entries), len(u.rs), len(u.loadQ), len(u.storeBuf), len(u.spec))
	for i, e := range u.entries {
		if i > 12 {
			s += "  ...\n"
			break
		}
		s += fmt.Sprintf("  seq=%d %v addr=%#x addrRdy=%v dataRdy=%v atHead=%v issued=%v specIss=%v done=%v fwd=%v ret=%v\n",
			e.Seq, e.Class, e.Addr, e.AddrReady, e.dataReady, e.atHead, e.issued, e.specIssued, e.Done, e.forwarded, e.retired)
	}
	for i, sp := range u.spec {
		if i > 6 {
			s += "  ...\n"
			break
		}
		tag := int64(-1)
		if sp.storeTag != nil {
			tag = int64(sp.storeTag.Seq)
		}
		s += fmt.Sprintf("  spec[%d]: seq=%d acq=%v done=%v tag=%d rmw=%v\n", i, sp.e.Seq, sp.acq, sp.done(), tag, sp.isRMW)
	}
	return s
}

// DebugFlushes prints flushes of completed writes (diagnostic aid).
var DebugFlushes bool
