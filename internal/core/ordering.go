package core

import "mcmsim/internal/isa"

// Exported views of the consistency predicates for reference interpreters
// (the conformance tier's oracle). The oracle must enable accesses under
// exactly the delay arcs the LSU enforces, so it consumes these instead of
// duplicating Figure 1.

// Blocks reports whether an incomplete older access of class older forces
// an access of class cur to be delayed under model m (Figure 1's delay
// arcs; the predicate behind conventional issue).
func Blocks(m Model, older, cur AccessClass) bool {
	return blocksIssue(m, older, cur)
}

// ClassOfOp maps a memory opcode to its access class.
func ClassOfOp(op isa.Op) AccessClass {
	return classOf(isa.Instruction{Op: op})
}

// IsRead reports whether the class binds a register value from memory.
func (c AccessClass) IsRead() bool { return c.isRead() }

// IsWrite reports whether the class modifies memory.
func (c AccessClass) IsWrite() bool { return c.isWrite() }

// IsSync reports whether the class is a synchronization access.
func (c AccessClass) IsSync() bool { return c.isSync() }
