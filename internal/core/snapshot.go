package core

// ObsKind classifies LSU observer events (used by the Figure 5 tracer and
// by white-box tests).
type ObsKind uint8

// Observer event kinds.
const (
	ObsLoadIssued    ObsKind = iota // demand or speculative load sent to the cache
	ObsSpecIssued                   // RMW speculative read-exclusive sent
	ObsPrefetch                     // hardware prefetch sent
	ObsForward                      // load satisfied from the store buffer
	ObsLoadDone                     // load value bound
	ObsStoreIssued                  // store/atomic sent to the cache
	ObsStoreDone                    // store performed
	ObsSquashFlush                  // speculative load squashed, pipeline flushed
	ObsSquashReissue                // speculative load reissued only
	ObsRMWLateSquash                // match after the atomic issued (Appendix A)
)

func (k ObsKind) String() string {
	switch k {
	case ObsLoadIssued:
		return "load-issued"
	case ObsSpecIssued:
		return "spec-readex-issued"
	case ObsPrefetch:
		return "prefetch-issued"
	case ObsForward:
		return "store-forward"
	case ObsLoadDone:
		return "load-done"
	case ObsStoreIssued:
		return "store-issued"
	case ObsStoreDone:
		return "store-done"
	case ObsSquashFlush:
		return "squash-flush"
	case ObsSquashReissue:
		return "squash-reissue"
	case ObsRMWLateSquash:
		return "rmw-late-squash"
	default:
		return "obs(?)"
	}
}

// ObsEvent is one observer notification.
type ObsEvent struct {
	Kind  ObsKind
	Seq   uint64
	Class AccessClass
	Addr  uint64
	Value int64
	Cycle uint64
}

// Observe, when set, receives LSU events as they happen. Nil by default;
// the hook must not mutate LSU state.
func (u *LSU) SetObserver(f func(ObsEvent)) { u.observe = f }

func (u *LSU) emit(k ObsKind, e *Entry, value int64, now uint64) {
	if u.observe != nil {
		u.observe(ObsEvent{Kind: k, Seq: e.Seq, Class: e.Class, Addr: e.Addr, Value: value, Cycle: now})
	}
}

// SpecRow is one visible row of the speculative-load buffer (Figure 4's
// four fields).
type SpecRow struct {
	Seq      uint64
	LoadAddr uint64
	Acq      bool
	Done     bool
	HasTag   bool        // store tag is non-null
	TagClass AccessClass // tagged store's class
	TagAddr  uint64      // tagged store's address
	IsRMW    bool
}

// SpecBufferSnapshot renders the speculative-load buffer head-first.
func (u *LSU) SpecBufferSnapshot() []SpecRow {
	rows := make([]SpecRow, 0, len(u.spec))
	for _, s := range u.spec {
		row := SpecRow{
			Seq:      s.e.Seq,
			LoadAddr: s.e.Addr,
			Acq:      s.acq,
			Done:     s.done(),
			IsRMW:    s.isRMW,
		}
		if s.storeTag != nil {
			row.HasTag = true
			row.TagClass = s.storeTag.Class
			row.TagAddr = s.storeTag.Addr
		}
		rows = append(rows, row)
	}
	return rows
}

// StoreRow is one visible store-buffer entry.
type StoreRow struct {
	Seq    uint64
	Class  AccessClass
	Addr   uint64
	Issued bool
	Done   bool
}

// StoreBufferSnapshot renders the store buffer in FIFO order.
func (u *LSU) StoreBufferSnapshot() []StoreRow {
	rows := make([]StoreRow, 0, len(u.storeBuf))
	for _, e := range u.storeBuf {
		rows = append(rows, StoreRow{Seq: e.Seq, Class: e.Class, Addr: e.Addr, Issued: e.issued, Done: e.Done})
	}
	return rows
}

// EntryByAddr returns the youngest live entry accessing the given word
// address, for tests.
func (u *LSU) EntryByAddr(addr uint64) *Entry {
	var found *Entry
	for _, e := range u.entries {
		if e.AddrReady && e.Addr == addr {
			found = e
		}
	}
	return found
}
