package core

import "mcmsim/internal/cache"

// The revalidation detection policy (§4.1's repeat-and-compare): suspect
// entries wait until the model would have allowed the load, are re-read,
// and squash only if the fresh value differs from the speculated one.

// markSuspect records a coherence match against a completed speculative
// load under the revalidation policy.
func (u *LSU) markSuspect(s *specEntry) {
	if !s.suspect {
		s.suspect = true
		u.Stats.Counter("spec_suspects").Inc()
	}
}

// revalidationCandidate returns the spec-buffer head if it is a suspect
// entry whose constraints are satisfied (the point at which the
// conventional implementation would have performed the access) and whose
// re-read has not been issued yet.
func (u *LSU) revalidationCandidate() *specEntry {
	if len(u.spec) == 0 {
		return nil
	}
	s := u.spec[0]
	if !s.suspect || s.revalIssued || s.isRMW {
		return nil
	}
	if s.storeTag != nil || !s.done() {
		return nil
	}
	return s
}

// issueRevalidation sends the repeat access. Consumes the cache port (the
// policy's cost: the cache is accessed a second time). Returns whether the
// port was used.
func (u *LSU) issueRevalidation(s *specEntry, now uint64) bool {
	id := u.newRevalID(s)
	res := u.cache.Access(cache.Request{Kind: cache.ReqRead, ID: id, Addr: s.e.Addr}, now)
	if res == cache.Blocked {
		delete(u.ids, id)
		return false
	}
	s.revalIssued = true
	u.Stats.Counter("revalidations").Inc()
	return res != cache.Merged
}

// newRevalID allocates a cache-access id that routes back to the spec entry
// rather than the entry's normal completion path.
func (u *LSU) newRevalID(s *specEntry) uint64 {
	u.nextID++
	id := u.nextID
	u.ids[id] = idTarget{e: s.e, role: roleReval}
	u.revalBySeq[s.e.Seq] = s
	return id
}

// completeRevalidation resolves a repeat-read: equal values retire the
// entry (the speculation was correct despite the coherence event — false
// sharing or a same-value write); different values squash from the load,
// exactly like the conservative policy's rollback.
func (u *LSU) completeRevalidation(e *Entry, fresh int64, now uint64) {
	s, ok := u.revalBySeq[e.Seq]
	if !ok {
		return
	}
	delete(u.revalBySeq, e.Seq)
	if fresh == e.Value {
		s.revalOK = true
		u.Stats.Counter("revalidations_ok").Inc()
		u.retireSpecEntries(now)
		return
	}
	u.Stats.Counter("revalidations_failed").Inc()
	u.Stats.Counter("spec_squashes").Inc()
	u.emit(ObsSquashFlush, e, 0, now)
	u.cpu.FlushFrom(e.Seq, now)
}
