package core

import "testing"

// TestBlocksIssueMatrix pins the full Figure 1 delay-arc matrix: for every
// model and every ordered pair of access classes, whether an incomplete
// older access delays the younger one.
func TestBlocksIssueMatrix(t *testing.T) {
	type pair struct{ older, cur AccessClass }
	allClasses := []AccessClass{ClassLoad, ClassStore, ClassAcquire, ClassRelease, ClassRMW}

	// Expected delays per model, expressed as exceptions from a base rule.
	expect := func(m Model, older, cur AccessClass) bool {
		switch m {
		case SC:
			return true
		case PC:
			// Pure reads (load, acquire) bypass previous writes but wait for
			// previous reads. Everything else waits for everything.
			if cur.isRead() && !cur.isWrite() {
				return older.isRead()
			}
			return true
		case WC:
			if cur.isSync() {
				return true
			}
			return older.isSync()
		case RC:
			if cur == ClassRelease {
				return true
			}
			return older.isAcquire()
		case RCsc:
			if cur == ClassRelease {
				return true
			}
			if cur.isAcquire() {
				return older.isSync()
			}
			return older.isAcquire()
		}
		panic("unreachable")
	}

	for _, m := range AllModels {
		for _, older := range allClasses {
			for _, cur := range allClasses {
				want := expect(m, older, cur)
				if got := blocksIssue(m, older, cur); got != want {
					t.Errorf("%v: blocksIssue(%v -> %v) = %v, want %v", m, older, cur, got, want)
				}
			}
		}
	}
}

// TestStrictnessOrdering property over the matrix: SC delays everything any
// other model delays; RC's ordinary accesses are the least constrained.
func TestStrictnessOrdering(t *testing.T) {
	allClasses := []AccessClass{ClassLoad, ClassStore, ClassAcquire, ClassRelease, ClassRMW}
	for _, older := range allClasses {
		for _, cur := range allClasses {
			sc := blocksIssue(SC, older, cur)
			for _, m := range []Model{PC, WC, RCsc, RC} {
				if blocksIssue(m, older, cur) && !sc {
					t.Errorf("%v delays (%v -> %v) but SC does not", m, older, cur)
				}
			}
			// Ordinary-after-ordinary is free under WC and both RCs.
			if !older.isSync() && !cur.isSync() {
				if blocksIssue(WC, older, cur) || blocksIssue(RC, older, cur) || blocksIssue(RCsc, older, cur) {
					t.Errorf("ordinary pair (%v -> %v) delayed under WC/RC", older, cur)
				}
			}
		}
	}
}

// TestRCReleaseAndAcquireArcs pins the distinguishing RCpc rules.
func TestRCReleaseAndAcquireArcs(t *testing.T) {
	// A release waits for everything previous.
	for _, older := range []AccessClass{ClassLoad, ClassStore, ClassAcquire, ClassRelease, ClassRMW} {
		if !blocksIssue(RC, older, ClassRelease) {
			t.Errorf("RC: release must wait for older %v", older)
		}
	}
	// An acquire may bypass a pending release (PC among specials) but waits
	// for older acquires.
	if blocksIssue(RC, ClassRelease, ClassAcquire) {
		t.Error("RCpc: acquire must be allowed to bypass a pending release")
	}
	if !blocksIssue(RC, ClassAcquire, ClassAcquire) {
		t.Error("RCpc: acquire must wait for older acquires")
	}
	// Ordinary accesses wait only for acquires.
	if blocksIssue(RC, ClassRelease, ClassLoad) || blocksIssue(RC, ClassStore, ClassLoad) {
		t.Error("RC: ordinary load must not wait for older release/store")
	}
	if !blocksIssue(RC, ClassAcquire, ClassLoad) || !blocksIssue(RC, ClassRMW, ClassStore) {
		t.Error("RC: ordinary accesses must wait for older acquires")
	}
	// RCsc keeps special accesses sequentially consistent: the acquire may
	// NOT bypass a pending release, but ordinary accesses are as free as
	// under RCpc.
	if !blocksIssue(RCsc, ClassRelease, ClassAcquire) {
		t.Error("RCsc: acquire must wait for a pending release")
	}
	if blocksIssue(RCsc, ClassRelease, ClassLoad) {
		t.Error("RCsc: ordinary load must not wait for older release")
	}
}

// TestWCSyncArcs pins WCsc: sync accesses are barriers in both directions.
func TestWCSyncArcs(t *testing.T) {
	if !blocksIssue(WC, ClassLoad, ClassRelease) || !blocksIssue(WC, ClassStore, ClassAcquire) {
		t.Error("WC: a sync access must wait for all previous accesses")
	}
	if !blocksIssue(WC, ClassRelease, ClassLoad) || !blocksIssue(WC, ClassAcquire, ClassStore) {
		t.Error("WC: accesses after a sync must wait for it")
	}
	if blocksIssue(WC, ClassLoad, ClassStore) {
		t.Error("WC: ordinary accesses between syncs must pipeline")
	}
}

// TestSpecBufferFlags pins the acq-bit and store-tag policies of §4.2.
func TestSpecBufferFlags(t *testing.T) {
	// "For SC, all loads are treated as acquires."
	for _, c := range []AccessClass{ClassLoad, ClassAcquire} {
		if !loadIsAcquireInSpecBuffer(SC, c) {
			t.Errorf("SC: %v must set acq", c)
		}
		if !loadIsAcquireInSpecBuffer(PC, c) {
			t.Errorf("PC: %v must set acq (reads stay ordered)", c)
		}
	}
	// RC/WC set acq only for synchronization reads.
	if loadIsAcquireInSpecBuffer(RC, ClassLoad) || loadIsAcquireInSpecBuffer(WC, ClassLoad) {
		t.Error("RC/WC: ordinary loads must not set acq")
	}
	if !loadIsAcquireInSpecBuffer(RC, ClassAcquire) || !loadIsAcquireInSpecBuffer(WC, ClassAcquire) {
		t.Error("RC/WC: acquires must set acq")
	}
	if !loadIsAcquireInSpecBuffer(SC, ClassRMW) || !loadIsAcquireInSpecBuffer(RC, ClassRMW) || !loadIsAcquireInSpecBuffer(RCsc, ClassRMW) {
		t.Error("RMW must always set acq")
	}
	// RCsc: acquires carry release tags (SC among specials); ordinary loads
	// carry none.
	if !loadWaitsForStores(RCsc, ClassAcquire) || loadWaitsForStores(RCsc, ClassLoad) {
		t.Error("RCsc store-tag policy wrong")
	}
	if !storeTagRelevant(RCsc, ClassRelease) || storeTagRelevant(RCsc, ClassStore) {
		t.Error("RCsc tag relevance wrong")
	}

	// Store tags: SC loads wait for any previous store; WC loads wait for
	// previous sync stores; PC and RC loads carry no tag.
	if !loadWaitsForStores(SC, ClassLoad) || !loadWaitsForStores(WC, ClassLoad) {
		t.Error("SC/WC loads must carry store tags")
	}
	if loadWaitsForStores(PC, ClassLoad) || loadWaitsForStores(RC, ClassLoad) {
		t.Error("PC/RC loads must not carry store tags")
	}
	if !storeTagRelevant(SC, ClassStore) || !storeTagRelevant(SC, ClassRelease) {
		t.Error("SC: any store is tag-relevant")
	}
	if storeTagRelevant(WC, ClassStore) {
		t.Error("WC: ordinary stores are not tag-relevant")
	}
	if !storeTagRelevant(WC, ClassRelease) {
		t.Error("WC: releases are tag-relevant")
	}
	if storeTagRelevant(SC, ClassLoad) {
		t.Error("loads are never tag-relevant")
	}
}

func TestAccessClassPredicates(t *testing.T) {
	cases := []struct {
		c                          AccessClass
		read, write, sync, acquire bool
	}{
		{ClassLoad, true, false, false, false},
		{ClassStore, false, true, false, false},
		{ClassAcquire, true, false, true, true},
		{ClassRelease, false, true, true, false},
		{ClassRMW, true, true, true, true},
	}
	for _, c := range cases {
		if c.c.isRead() != c.read || c.c.isWrite() != c.write ||
			c.c.isSync() != c.sync || c.c.isAcquire() != c.acquire {
			t.Errorf("%v predicates wrong", c.c)
		}
	}
}

func TestModelParsing(t *testing.T) {
	for _, m := range AllModels {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("TSO"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestTechniqueNames(t *testing.T) {
	cases := map[string]Technique{
		"conv":     {},
		"pf":       {Prefetch: true},
		"spec":     {SpecLoad: true},
		"pf+spec":  {Prefetch: true, SpecLoad: true},
		"advehill": {AdveHill: true},
	}
	for want, tech := range cases {
		if tech.String() != want {
			t.Errorf("%+v.String() = %q, want %q", tech, tech.String(), want)
		}
	}
}
