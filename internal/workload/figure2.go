// Package workload builds the programs the experiments run: the paper's
// worked examples (Figure 2, Figure 5), litmus tests for the ordering rules
// of Figure 1, and synthetic applications (producer/consumer, critical
// sections, data-race-free sharing) for the equalization and sweep
// experiments the paper defers to "extensive simulation experiments".
package workload

import "mcmsim/internal/isa"

// Addresses used by the paper's examples. Each lives on its own line under
// the paper configuration (one word per line).
const (
	AddrLock = 0x100 // location L
	AddrA    = 0x110
	AddrB    = 0x120
	AddrC    = 0x130
	AddrD    = 0x140
	AddrE    = 0x200 // base of array E; E[D] = AddrE + value(D)
	DValue   = 8     // the value stored at D, indexing E
	AddrEofD = AddrE + DValue
	AddrFlag = 0x150
	AddrSeen = 0x160
)

// Example1 is the left code segment of Figure 2 — a producer updating two
// locations inside a critical section:
//
//	lock L     (miss)
//	write A    (miss)
//	write B    (miss)
//	unlock L   (hit)
//
// Expected cycles (§3.3): SC 301, RC 202; with prefetching 103 under both.
func Example1() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	b.Lock(isa.R1, AddrLock)
	b.StoreAbs(isa.R2, AddrA)
	b.StoreAbs(isa.R2, AddrB)
	b.Unlock(AddrLock)
	b.Halt()
	return b.Build()
}

// Example2 is the right code segment of Figure 2 — a consumer reading
// several locations, one dependent on another:
//
//	lock L      (miss)
//	read C      (miss)
//	read D      (hit)
//	read E[D]   (miss)
//	unlock L    (hit)
//
// Expected cycles: SC 302, RC 203 conventionally; SC 203, RC 202 with
// prefetching; 104 under both with speculative loads (§4.1).
func Example2() *isa.Program {
	b := isa.NewBuilder()
	b.Lock(isa.R1, AddrLock)
	b.LoadAbs(isa.R2, AddrC)
	b.LoadAbs(isa.R3, AddrD)
	b.Load(isa.R4, isa.R3, AddrE) // read E[D]: address depends on D's value
	b.Unlock(AddrLock)
	b.Halt()
	return b.Build()
}

// Example2Warmup brings location D into the cache so the "read D" of
// Example2 hits, as the paper assumes. Run it, then LoadPrograms(Example2).
func Example2Warmup() *isa.Program {
	b := isa.NewBuilder()
	b.LoadAbs(isa.R1, AddrD)
	b.Halt()
	return b.Build()
}

// Figure5 is the code segment stepped through in §4.3:
//
//	read A     (miss)
//	write B    (miss)
//	write C    (miss)
//	read D     (hit)
//	read E[D]  (miss)
//
// run under SC with speculative loads and store prefetching; an external
// invalidation for D arrives mid-run.
func Figure5() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R2, 1)
	b.LoadAbs(isa.R1, AddrA)
	b.StoreAbs(isa.R2, AddrB)
	b.StoreAbs(isa.R2, AddrC)
	b.LoadAbs(isa.R3, AddrD)
	b.Load(isa.R4, isa.R3, AddrE)
	b.Halt()
	return b.Build()
}

// Figure5Warmup caches D (the assumed hit).
func Figure5Warmup() *isa.Program {
	return Example2Warmup()
}

// Idle is a program that halts immediately (for processors that only exist
// to hold cache state or to contend).
func Idle() *isa.Program {
	b := isa.NewBuilder()
	b.Halt()
	return b.Build()
}
