package workload

import "mcmsim/internal/isa"

// Litmus addresses and result slots. X and Y are the contended variables;
// each processor deposits what it observed into a result word so tests can
// read outcomes from the coherent memory image.
const (
	LitX  = 0x300
	LitY  = 0x310
	LitR0 = 0x900 // processor 0's observation
	LitR1 = 0x910 // processor 1's observation
	// LitData/LitFlag are the message-passing variables.
	LitData = 0x320
	LitFlag = 0x330
)

// Litmus is a named two-(or three-)processor ordering test with the set of
// models (run conventionally) that permit its "relaxed" outcome, per the
// delay arcs of Figure 1.
type Litmus struct {
	Name string
	// Programs builds the per-processor programs (the last processor may be
	// a helper that seeds cache state).
	Programs func() []*isa.Program
	// Warmups optionally run first to establish cache residency (nil entries
	// mean Idle).
	Warmups func() []*isa.Program
	// Relaxed inspects final memory and reports whether the relaxed
	// (SC-forbidden) outcome occurred.
	Relaxed func(read func(uint64) int64) bool
	// AllowedUnder lists the models whose conventional implementation
	// permits — and with this test's timing, deterministically exhibits —
	// the relaxed outcome.
	AllowedUnder map[string]bool
}

// spinUntilNonzero emits a spin loop reading addr (plain or acquire load)
// into dst until it is nonzero.
func spinUntilNonzero(b *isa.Builder, dst isa.Reg, addr int64, acquire bool) {
	spin := b.FreshLabel("spin")
	b.Label(spin)
	if acquire {
		b.AcquireLoadAbs(dst, addr)
	} else {
		b.LoadAbs(dst, addr)
	}
	b.Beqz(dst, spin)
}

// StoreBuffering is the Dekker-style test. Each processor writes its
// variable then reads the other's. The relaxed outcome — both read 0 —
// requires a read to bypass the processor's own pending write (the W->R
// relaxation). Figure 1: permitted by PC, WC and RC; forbidden by SC.
//
// Both loads hit locally (the lines are warmed shared) while both stores
// miss, so any model that lets reads bypass writes exhibits both-0.
func StoreBuffering(sync bool) Litmus {
	name := "SB"
	allowed := map[string]bool{"PC": true, "WC": true, "RC": true, "RCsc": true}
	if sync {
		// Release stores and acquire loads: WCsc keeps synchronization
		// accesses in order with each other, so WC now forbids the
		// relaxation; RCpc keeps special accesses only processor consistent,
		// so an acquire still bypasses a pending release.
		name = "SB+sync"
		allowed = map[string]bool{"PC": true, "RC": true} // RCsc orders specials: forbidden
	}
	return Litmus{
		Name:         name,
		AllowedUnder: allowed,
		Warmups: func() []*isa.Program {
			w0 := isa.NewBuilder()
			w0.LoadAbs(isa.R1, LitY)
			w0.Halt()
			w1 := isa.NewBuilder()
			w1.LoadAbs(isa.R1, LitX)
			w1.Halt()
			return []*isa.Program{w0.Build(), w1.Build()}
		},
		Programs: func() []*isa.Program {
			b0 := isa.NewBuilder()
			b0.Li(isa.R1, 1)
			if sync {
				b0.ReleaseStoreAbs(isa.R1, LitX)
				b0.AcquireLoadAbs(isa.R2, LitY)
			} else {
				b0.StoreAbs(isa.R1, LitX)
				b0.LoadAbs(isa.R2, LitY)
			}
			b0.StoreAbs(isa.R2, LitR0)
			b0.Halt()
			b1 := isa.NewBuilder()
			b1.Li(isa.R1, 1)
			if sync {
				b1.ReleaseStoreAbs(isa.R1, LitY)
				b1.AcquireLoadAbs(isa.R2, LitX)
			} else {
				b1.StoreAbs(isa.R1, LitY)
				b1.LoadAbs(isa.R2, LitX)
			}
			b1.StoreAbs(isa.R2, LitR1)
			b1.Halt()
			return []*isa.Program{b0.Build(), b1.Build()}
		},
		Relaxed: func(read func(uint64) int64) bool {
			return read(LitR0) == 0 && read(LitR1) == 0
		},
	}
}

// MessagePassing is the producer/consumer visibility test. Processor 0
// writes DATA then FLAG; processor 1 reads FLAG then DATA. The relaxed
// outcome — FLAG observed set but DATA observed stale — requires either the
// two writes or the two reads to be reordered: the W->W / R->R relaxation.
// Figure 1: permitted by WC and RC for ordinary accesses; forbidden by SC
// and PC. With a release store and an acquire spin every model forbids it.
//
// Timing for the ordinary variant: DATA is warmed shared at the consumer
// (its read hits and can bind 0 immediately if the model lets it), while
// the consumer's FLAG read is delayed past the producer's FLAG write by a
// chain of port-staggering dummy loads. Under WC/RC the consumer's two
// reads pipeline, so DATA binds old before FLAG binds new; under SC/PC the
// DATA read waits for the FLAG read, by which time the producer's
// invalidation has removed the stale copy. Under SC with speculative loads
// the early-bound stale DATA value is squashed by that invalidation — the
// detection mechanism at work.
func MessagePassing(sync bool) Litmus {
	if sync {
		return Litmus{
			Name:         "MP+sync",
			AllowedUnder: map[string]bool{},
			Programs: func() []*isa.Program {
				b0 := isa.NewBuilder()
				b0.Li(isa.R1, 1)
				b0.StoreAbs(isa.R1, LitData)
				b0.ReleaseStoreAbs(isa.R1, LitFlag)
				b0.Halt()
				b1 := isa.NewBuilder()
				spinUntilNonzero(b1, isa.R1, LitFlag, true)
				b1.LoadAbs(isa.R2, LitData)
				b1.StoreAbs(isa.R2, LitR1)
				b1.Halt()
				return []*isa.Program{b0.Build(), b1.Build()}
			},
			Relaxed: func(read func(uint64) int64) bool {
				// FLAG was certainly observed set (the spin exited), so a
				// stale DATA read is the violation.
				return read(LitR1) == 0
			},
		}
	}
	const dummies = 8 // stays under the MSHR limit so the loads pipeline
	return Litmus{
		Name:         "MP",
		AllowedUnder: map[string]bool{"WC": true, "RC": true, "RCsc": true},
		Warmups: func() []*isa.Program {
			// The consumer warms DATA so its read hits locally.
			w1 := isa.NewBuilder()
			w1.LoadAbs(isa.R1, LitData)
			w1.Halt()
			return []*isa.Program{nil, w1.Build()}
		},
		Programs: func() []*isa.Program {
			b0 := isa.NewBuilder()
			b0.Li(isa.R1, 1)
			b0.StoreAbs(isa.R1, LitData)
			b0.StoreAbs(isa.R1, LitFlag)
			b0.Halt()
			b1 := isa.NewBuilder()
			// Port-staggering dummy loads: each occupies the issue port for
			// a cycle, so the FLAG read reaches the directory after the
			// producer's FLAG write has been granted ownership.
			for i := 0; i < dummies; i++ {
				b1.LoadAbs(isa.R3, int64(privBase+0x800+i*0x10))
			}
			b1.LoadAbs(isa.R1, LitFlag)
			b1.LoadAbs(isa.R2, LitData)
			b1.StoreAbs(isa.R1, LitR0)
			b1.StoreAbs(isa.R2, LitR1)
			b1.Halt()
			return []*isa.Program{b0.Build(), b1.Build()}
		},
		Relaxed: func(read func(uint64) int64) bool {
			return read(LitR0) == 1 && read(LitR1) == 0
		},
	}
}

// LoadBuffering checks that a store never bypasses an older load on the
// same processor (no model in Figure 1 relaxes R->W into visibility before
// the load binds... every model forbids the both-1 outcome because stores
// are held until they reach the head of the reorder buffer).
func LoadBuffering() Litmus {
	return Litmus{
		Name:         "LB",
		AllowedUnder: map[string]bool{},
		Programs: func() []*isa.Program {
			b0 := isa.NewBuilder()
			b0.LoadAbs(isa.R2, LitX)
			b0.Li(isa.R1, 1)
			b0.StoreAbs(isa.R1, LitY)
			b0.StoreAbs(isa.R2, LitR0)
			b0.Halt()
			b1 := isa.NewBuilder()
			b1.LoadAbs(isa.R2, LitY)
			b1.Li(isa.R1, 1)
			b1.StoreAbs(isa.R1, LitX)
			b1.StoreAbs(isa.R2, LitR1)
			b1.Halt()
			return []*isa.Program{b0.Build(), b1.Build()}
		},
		Relaxed: func(read func(uint64) int64) bool {
			return read(LitR0) == 1 && read(LitR1) == 1
		},
	}
}

// AllLitmus returns the Figure 1 test battery.
func AllLitmus() []Litmus {
	return []Litmus{
		StoreBuffering(false),
		MessagePassing(false),
		StoreBuffering(true),
		MessagePassing(true),
		LoadBuffering(),
	}
}
