package workload

import (
	"testing"

	"mcmsim/internal/isa"
)

func TestCriticalSectionShape(t *testing.T) {
	p := CriticalSection(0, 4, 2, 3, 2)
	// 2 rounds x (lock(2) + 3*(ld,addi,st) + unlock) + halt
	want := 2*(2+9+1) + 1
	if p.Len() != want {
		t.Errorf("program length = %d, want %d", p.Len(), want)
	}
	// First instruction of each round is a test-and-set.
	if p.Instrs[0].Op != isa.OpRMW {
		t.Error("critical section must start with a lock RMW")
	}
}

func TestCriticalSectionLockRotation(t *testing.T) {
	p0 := CriticalSection(0, 2, 2, 1, 2)
	// Round 0 uses lock 0, round 1 uses lock 1 for processor 0.
	var lockAddrs []int64
	for _, in := range p0.Instrs {
		if in.Op == isa.OpRMW {
			lockAddrs = append(lockAddrs, in.Imm)
		}
	}
	if len(lockAddrs) != 2 || lockAddrs[0] == lockAddrs[1] {
		t.Errorf("locks not rotated: %v", lockAddrs)
	}
}

func TestProducerConsumerUsesSyncAccesses(t *testing.T) {
	prod, cons := ProducerConsumer(4)
	hasRelease := false
	for _, in := range prod.Instrs {
		if in.Op == isa.OpRelease {
			hasRelease = true
		}
	}
	if !hasRelease {
		t.Error("producer must publish with a release store")
	}
	hasAcquire := false
	for _, in := range cons.Instrs {
		if in.Op == isa.OpAcquire {
			hasAcquire = true
		}
	}
	if !hasAcquire {
		t.Error("consumer must spin with acquire loads")
	}
}

func TestRandomSharingDeterministic(t *testing.T) {
	a := RandomSharing(1, 4, DefaultMix(5))
	b := RandomSharing(1, 4, DefaultMix(5))
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instruction %d differs for identical seeds", i)
		}
	}
	c := RandomSharing(2, 4, DefaultMix(5))
	same := a.Len() == c.Len()
	if same {
		same = false
		for i := range a.Instrs {
			if a.Instrs[i] != c.Instrs[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different processors produced identical programs")
	}
}

func TestRandomSharingLockPairing(t *testing.T) {
	// Every lock acquire must have a matching release of the same lock
	// before the next acquire or halt.
	for seed := int64(0); seed < 5; seed++ {
		p := RandomSharing(0, 2, DefaultMix(seed))
		var held int64 = -1
		for i, in := range p.Instrs {
			switch in.Op {
			case isa.OpRMW:
				if held != -1 {
					t.Fatalf("seed %d: nested lock at %d", seed, i)
				}
				held = in.Imm
			case isa.OpRelease:
				if held == -1 || in.Imm != held {
					t.Fatalf("seed %d: unmatched release at %d (held=%#x, rel=%#x)", seed, i, held, in.Imm)
				}
				held = -1
			}
		}
		if held != -1 {
			t.Fatalf("seed %d: program ends holding lock %#x", seed, held)
		}
	}
}

func TestRandomSharingPartitionsAreDisjoint(t *testing.T) {
	// With Sync on, shared accesses under lock k must stay inside partition
	// k, which is the property that makes the workload data-race-free.
	mix := DefaultMix(3)
	p := RandomSharing(0, 2, mix)
	var held int64 = -1
	for i, in := range p.Instrs {
		switch in.Op {
		case isa.OpRMW:
			held = (in.Imm - 0x1000) / 0x10
		case isa.OpRelease:
			held = -1
		case isa.OpLoad, isa.OpStore:
			addr := in.Imm
			if addr >= 0x4000 && addr < 0x10000 { // shared region
				if held < 0 {
					t.Fatalf("unsynchronized shared access at %d", i)
				}
				part := (addr - 0x4000) / int64(mix.SharedWords)
				if part != held {
					t.Fatalf("access at %d in partition %d while holding lock %d", i, part, held)
				}
			}
		}
	}
}

func TestFalseSharingNeighboursShareLine(t *testing.T) {
	p0 := FalseSharing(0, 1)
	p1 := FalseSharing(1, 1)
	var a0, a1 int64
	for _, in := range p0.Instrs {
		if in.Op == isa.OpStore {
			a0 = in.Imm
		}
	}
	for _, in := range p1.Instrs {
		if in.Op == isa.OpStore {
			a1 = in.Imm
		}
	}
	if a1 != a0+1 {
		t.Errorf("false-sharing words not adjacent: %#x %#x", a0, a1)
	}
}

func TestLitmusBatteryShape(t *testing.T) {
	battery := AllLitmus()
	if len(battery) != 5 {
		t.Fatalf("battery size = %d", len(battery))
	}
	names := map[string]bool{}
	for _, l := range battery {
		if names[l.Name] {
			t.Errorf("duplicate litmus name %s", l.Name)
		}
		names[l.Name] = true
		progs := l.Programs()
		if len(progs) < 2 {
			t.Errorf("%s: %d programs", l.Name, len(progs))
		}
		for i, p := range progs {
			if p.Len() == 0 || p.Instrs[p.Len()-1].Op != isa.OpHalt {
				t.Errorf("%s prog %d must end in halt", l.Name, i)
			}
		}
	}
	for _, want := range []string{"SB", "MP", "SB+sync", "MP+sync", "LB"} {
		if !names[want] {
			t.Errorf("missing litmus %s", want)
		}
	}
}

func TestExamplesEndWithHalt(t *testing.T) {
	for name, p := range map[string]*isa.Program{
		"example1":       Example1(),
		"example2":       Example2(),
		"example2warmup": Example2Warmup(),
		"figure5":        Figure5(),
		"idle":           Idle(),
		"arraysweep":     ArraySweep(0, 4),
	} {
		if p.Instrs[p.Len()-1].Op != isa.OpHalt {
			t.Errorf("%s does not end with halt", name)
		}
	}
}

func TestExample2AccessSequence(t *testing.T) {
	p := Example2()
	var memOps []isa.Op
	var addrs []int64
	for _, in := range p.Instrs {
		if in.IsMemory() {
			memOps = append(memOps, in.Op)
			addrs = append(addrs, in.Imm)
		}
	}
	wantOps := []isa.Op{isa.OpRMW, isa.OpLoad, isa.OpLoad, isa.OpLoad, isa.OpRelease}
	if len(memOps) != len(wantOps) {
		t.Fatalf("memory ops = %v", memOps)
	}
	for i := range wantOps {
		if memOps[i] != wantOps[i] {
			t.Errorf("op %d = %v, want %v", i, memOps[i], wantOps[i])
		}
	}
	if addrs[1] != AddrC || addrs[2] != AddrD || addrs[3] != AddrE {
		t.Errorf("addresses = %#x", addrs)
	}
}

func TestBarrierPhasesShape(t *testing.T) {
	p := BarrierPhases(1, 4, 3, 2)
	var rmws, releases, acquires int
	for _, in := range p.Instrs {
		switch in.Op {
		case isa.OpRMW:
			if in.RMW != isa.RMWFetchAdd {
				t.Error("barrier arrival must be a fetch-add")
			}
			rmws++
		case isa.OpRelease:
			releases++
		case isa.OpAcquire:
			acquires++
		}
	}
	if rmws != 3 {
		t.Errorf("rmws = %d, want one per phase", rmws)
	}
	if releases != 3 {
		t.Errorf("releases = %d, want one per phase (last-arriver path)", releases)
	}
	if acquires == 0 {
		t.Error("no acquire spin loads emitted")
	}
}

func TestSoftwarePrefetchSweepShape(t *testing.T) {
	p := SoftwarePrefetchSweep(0, 8, 3)
	var pf, loads, stores int
	firstLoad := -1
	for i, in := range p.Instrs {
		switch in.Op {
		case isa.OpPrefetchEx:
			pf++
		case isa.OpLoad:
			loads++
			if firstLoad < 0 {
				firstLoad = i
			}
		case isa.OpStore:
			stores++
		}
	}
	if loads != 8 || stores != 8 {
		t.Errorf("loads/stores = %d/%d, want 8/8", loads, stores)
	}
	if pf != 8 {
		t.Errorf("prefetches = %d, want one per element", pf)
	}
	// The prologue prefetches run before the first demand load.
	if firstLoad < 3 {
		t.Errorf("prologue missing: first load at %d", firstLoad)
	}
}

func TestEqualizationMixGentler(t *testing.T) {
	d := DefaultMix(1)
	e := EqualizationMix(1)
	if e.ShareFrac >= d.ShareFrac {
		t.Error("equalization mix must share less than the default")
	}
	if e.Locks <= d.Locks {
		t.Error("equalization mix must stripe across more locks")
	}
	if !e.Sync {
		t.Error("equalization mix must stay data-race-free")
	}
}
