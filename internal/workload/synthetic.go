package workload

import (
	"math/rand"

	"mcmsim/internal/isa"
)

// Layout constants for the synthetic workloads. Shared data regions are
// placed far apart so distinct structures never share lines even with
// multi-word lines.
const (
	lockBase    = 0x1000
	counterBase = 0x2000
	arrayBase   = 0x4000
	flagBase    = 0x8000
	privBase    = 0x10000 // per-processor private regions
	privStride  = 0x1000
)

// CriticalSection builds a program for processor p of nprocs that acquires
// a lock, increments a shared counter multiple times, and releases, for
// `rounds` rounds. With nlocks > 1, rounds rotate through different locks
// (reducing contention). The total over all processors of the counter
// increments is rounds*updates per processor, which tests use to verify
// mutual exclusion and coherence.
func CriticalSection(p, nprocs, rounds, updates, nlocks int) *isa.Program {
	b := isa.NewBuilder()
	for r := 0; r < rounds; r++ {
		lock := int64(lockBase + ((p+r)%nlocks)*0x10)
		counter := int64(counterBase + ((p+r)%nlocks)*0x10)
		b.Lock(isa.R1, lock)
		for u := 0; u < updates; u++ {
			b.LoadAbs(isa.R2, counter)
			b.AddI(isa.R2, isa.R2, 1)
			b.StoreAbs(isa.R2, counter)
		}
		b.Unlock(lock)
	}
	b.Halt()
	return b.Build()
}

// CounterAddr returns the shared counter address for lock index i.
func CounterAddr(i int) uint64 { return uint64(counterBase + i*0x10) }

// ProducerConsumer builds the paper's motivating pair: the producer fills
// `items` slots and sets a flag with a release store; the consumer spins on
// the flag with acquire loads and then reads all slots. Returns the two
// programs. The consumer accumulates the sum of the items into R10 and
// stores it to SumAddr so tests can check it.
func ProducerConsumer(items int) (producer, consumer *isa.Program) {
	pb := isa.NewBuilder()
	for i := 0; i < items; i++ {
		pb.Li(isa.R2, int64(i+1))
		pb.StoreAbs(isa.R2, int64(arrayBase)+int64(i))
	}
	pb.Li(isa.R3, 1)
	pb.ReleaseStoreAbs(isa.R3, flagBase)
	pb.Halt()

	cb := isa.NewBuilder()
	spin := cb.FreshLabel("spin")
	cb.Label(spin)
	cb.AcquireLoadAbs(isa.R1, flagBase)
	cb.Beqz(isa.R1, spin)
	cb.Li(isa.R10, 0)
	for i := 0; i < items; i++ {
		cb.LoadAbs(isa.R2, int64(arrayBase)+int64(i))
		cb.Add(isa.R10, isa.R10, isa.R2)
	}
	cb.StoreAbs(isa.R10, SumAddr)
	cb.Halt()
	return pb.Build(), cb.Build()
}

// SumAddr is where the ProducerConsumer consumer deposits its checksum.
const SumAddr = 0x9000

// ArraySweep builds a program that walks a private array of n words,
// reading, transforming and writing back each element — a cache-friendly
// loop with no sharing. Used to measure pure pipelining behaviour.
func ArraySweep(p, n int) *isa.Program {
	base := int64(privBase + p*privStride)
	b := isa.NewBuilder()
	for i := 0; i < n; i++ {
		b.LoadAbs(isa.R1, base+int64(i))
		b.AddI(isa.R1, isa.R1, 3)
		b.StoreAbs(isa.R1, base+int64(i))
	}
	b.Halt()
	return b.Build()
}

// WideSharing builds the E16 scale-sweep program for processor p of
// nprocs: each round every processor reads `lines` widely shared lines
// (accumulating into R10), then the round's rotating writer bumps each of
// them — so every write invalidates up to nprocs-1 sharers, the 100+-sharer
// fan-out the paper-level scale question asks about. A short private stride
// between rounds keeps the pipeline busy while invalidations propagate.
// Lines are spaced 0x40 words apart so they stay distinct under any line
// size the experiments use.
func WideSharing(p, nprocs, lines, rounds int) *isa.Program {
	b := isa.NewBuilder()
	priv := int64(privBase + p*privStride)
	for r := 0; r < rounds; r++ {
		for i := 0; i < lines; i++ {
			b.LoadAbs(isa.R1, int64(arrayBase+i*0x40))
			b.Add(isa.R10, isa.R10, isa.R1)
		}
		if r%nprocs == p {
			for i := 0; i < lines; i++ {
				addr := int64(arrayBase + i*0x40)
				b.LoadAbs(isa.R2, addr)
				b.AddI(isa.R2, isa.R2, 1)
				b.StoreAbs(isa.R2, addr)
			}
		}
		for i := 0; i < 4; i++ {
			b.LoadAbs(isa.R3, priv+int64(i))
			b.AddI(isa.R3, isa.R3, 1)
			b.StoreAbs(isa.R3, priv+int64(i))
		}
	}
	b.StoreAbs(isa.R10, priv+8) // per-processor checksum, for debugging only
	b.Halt()
	return b.Build()
}

// MixOptions parameterizes RandomSharing.
type MixOptions struct {
	Ops          int     // memory operations to generate
	SharedWords  int     // size of the shared region
	PrivateWords int     // size of the per-processor private region
	ShareFrac    float64 // fraction of accesses to the shared region
	WriteFrac    float64 // fraction of accesses that are writes
	Sync         bool    // bracket shared bursts in lock/unlock (data-race-free)
	Locks        int     // number of distinct locks (1 = a single hot lock);
	// more locks mean less contention, the common case §5 argues for
	Seed int64
}

// DefaultMix returns the mix used by the equalization experiment: mostly
// private traffic with a synchronized shared fraction, the data-race-free
// style of program the paper argues is the common case (§5).
func DefaultMix(seed int64) MixOptions {
	return MixOptions{
		Ops:          400,
		SharedWords:  64,
		PrivateWords: 256,
		ShareFrac:    0.3,
		WriteFrac:    0.4,
		Sync:         true,
		Locks:        8,
		Seed:         seed,
	}
}

// EqualizationMix is the low-contention data-race-free mix for the
// §5 equalization experiment: the paper's argument assumes releases happen
// long before the next acquire of the same lock, so invalidated
// speculations are rare.
func EqualizationMix(seed int64) MixOptions {
	m := DefaultMix(seed)
	m.ShareFrac = 0.15
	m.Locks = 16
	return m
}

// RandomSharing builds a pseudo-random but deterministic workload for
// processor p: bursts of private computation interleaved with accesses to
// a shared region, optionally protected by a lock (making the program
// data-race-free). Different seeds give different access patterns.
func RandomSharing(p, nprocs int, o MixOptions) *isa.Program {
	rng := rand.New(rand.NewSource(o.Seed + int64(p)*7919))
	if o.Locks <= 0 {
		o.Locks = 1
	}
	b := isa.NewBuilder()
	priv := int64(privBase + p*privStride)
	inCS := false
	curLock := int64(lockBase)
	budget := 0
	for i := 0; i < o.Ops; i++ {
		shared := rng.Float64() < o.ShareFrac
		write := rng.Float64() < o.WriteFrac
		if shared && o.Sync && !inCS {
			curLock = int64(lockBase + rng.Intn(o.Locks)*0x10)
			b.Lock(isa.R1, curLock)
			inCS = true
			budget = 2 + rng.Intn(6) // accesses before releasing
		}
		var addr int64
		if shared {
			// Each lock guards its own partition of the shared region, so
			// synchronized runs are data-race-free: distinct critical
			// sections never touch the same shared words concurrently.
			part := int64(0)
			if o.Sync {
				part = (curLock - lockBase) / 0x10 * int64(o.SharedWords)
			}
			addr = int64(arrayBase) + part + int64(rng.Intn(o.SharedWords))
		} else {
			if inCS {
				// Leave the critical section before private bursts so locks
				// are not held across unrelated work.
				b.Unlock(curLock)
				inCS = false
			}
			addr = priv + int64(rng.Intn(o.PrivateWords))
		}
		if write {
			b.Li(isa.R2, int64(i+1))
			b.StoreAbs(isa.R2, addr)
		} else {
			b.LoadAbs(isa.R3, addr)
		}
		if inCS {
			budget--
			if budget <= 0 {
				b.Unlock(curLock)
				inCS = false
			}
		}
	}
	if inCS {
		b.Unlock(curLock)
	}
	b.Halt()
	return b.Build()
}

// FalseSharing builds a workload where each processor hammers a distinct
// word that shares a line with its neighbours' words (line size permitting),
// exercising footnote 2's conservative squashing.
func FalseSharing(p, writes int) *isa.Program {
	addr := int64(arrayBase) + int64(p) // consecutive words, same line
	b := isa.NewBuilder()
	for i := 0; i < writes; i++ {
		b.Li(isa.R1, int64(i))
		b.StoreAbs(isa.R1, addr)
		b.LoadAbs(isa.R2, addr)
	}
	b.Halt()
	return b.Build()
}

// SoftwarePrefetchSweep is the ArraySweep with compiler-style software
// prefetching (paper §6): each iteration issues an exclusive prefetch
// `dist` elements ahead, so lines are resident by the time the demand
// accesses arrive regardless of the hardware's instruction window.
func SoftwarePrefetchSweep(p, n, dist int) *isa.Program {
	base := int64(privBase + p*privStride)
	b := isa.NewBuilder()
	for i := 0; i < dist && i < n; i++ {
		b.PrefetchExAbs(base + int64(i))
	}
	for i := 0; i < n; i++ {
		if i+dist < n {
			b.PrefetchExAbs(base + int64(i+dist))
		}
		b.LoadAbs(isa.R1, base+int64(i))
		b.AddI(isa.R1, isa.R1, 3)
		b.StoreAbs(isa.R1, base+int64(i))
	}
	b.Halt()
	return b.Build()
}

// Barrier-related addresses.
const (
	BarrierCountAddr = 0xA000 // fetch-add arrival counter
	BarrierSenseAddr = 0xA010 // release-published phase sense
	PhaseSumBase     = 0xB000 // per-processor phase checksums
)

// BarrierPhases builds a program for processor p of nprocs that alternates
// private computation with sense-reversing barriers — the canonical
// bulk-synchronous pattern. Arrival uses an atomic fetch-add; the last
// arriver resets the counter and publishes the new sense with a release
// store; everyone else spins on the sense with acquire loads. Each phase
// also accumulates a checksum of the processor's private work into
// PhaseSumBase+p so tests can verify every phase ran exactly once.
func BarrierPhases(p, nprocs, phases, work int) *isa.Program {
	b := isa.NewBuilder()
	priv := int64(privBase + p*privStride)
	const (
		rSense = isa.R10 // local copy of the sense we are waiting to flip to
		rTick  = isa.R11 // arrival ticket from fetch-add
		rSum   = isa.R12 // running checksum
		rTmp   = isa.R1
		rObs   = isa.R13 // observed sense while spinning
	)
	b.Li(rSense, 0)
	b.Li(rSum, 0)
	for ph := 0; ph < phases; ph++ {
		// Private work: touch `work` words, accumulate.
		for w := 0; w < work; w++ {
			addr := priv + int64((ph*work+w)%0x200)
			b.LoadAbs(rTmp, addr)
			b.AddI(rTmp, rTmp, int64(ph+1))
			b.StoreAbs(rTmp, addr)
			b.Add(rSum, rSum, rTmp)
		}
		// Barrier arrival: ticket = fetch-add(count, 1).
		b.Li(rTmp, 1)
		b.RMW(isa.RMWFetchAdd, rTick, rTmp, isa.R0, BarrierCountAddr)
		// The expected sense after this barrier is ph+1.
		b.AddI(rSense, isa.R0, int64(ph+1))
		// Last arriver (ticket == nprocs-1): reset the counter, publish the
		// new sense with a release store. Others spin on the sense.
		last := b.FreshLabel("last")
		spin := b.FreshLabel("spin")
		out := b.FreshLabel("out")
		b.SltI(rTmp, rTick, int64(nprocs-1))
		b.Beqz(rTmp, last) // ticket >= nprocs-1 -> we are last
		b.Label(spin)
		b.AcquireLoadAbs(rObs, BarrierSenseAddr)
		b.Sub(rObs, rObs, rSense)
		b.Bnez(rObs, spin)
		b.Jmp(out)
		b.Label(last)
		b.StoreAbs(isa.R0, BarrierCountAddr) // reset arrivals
		b.ReleaseStoreAbs(rSense, BarrierSenseAddr)
		b.Label(out)
	}
	b.StoreAbs(rSum, PhaseSumBase+int64(p))
	b.Halt()
	return b.Build()
}
