package farm

import (
	"bytes"
	"errors"
	"net/rpc"
	"testing"
	"time"

	"mcmsim/internal/isa"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// TestFarmWorkerDeathResumesFromCheckpoint kills a worker right after its
// first checkpoint upload and asserts the full fault path: the hangup
// releases the lease immediately, a healthy worker is reassigned the job,
// resumes from the dead worker's checkpoint rather than cycle zero, and
// the final report is byte-identical to an undisturbed local run.
func TestFarmWorkerDeathResumesFromCheckpoint(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}
	coord, err := NewCoordinator(spec, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	ln, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	// Worker A dies at its first checkpoint: the hook error abandons the
	// job and terminates the worker, whose closing connection releases
	// the lease (no TTL wait — equivalent to the process being killed).
	injected := errors.New("injected worker death")
	victim := &Worker{Name: "victim", CheckpointHook: func(job int, cycle uint64) error {
		if cycle == 0 {
			t.Errorf("checkpoint at cycle 0")
		}
		return injected
	}}
	if err := victim.Run(addr); !errors.Is(err, injected) {
		t.Fatalf("victim exited with %v, want the injected death", err)
	}

	st := coord.Stats()
	if st.Checkpoints < 1 {
		t.Fatalf("victim died without an accepted checkpoint (stats %+v)", st)
	}
	if st.Completed != 0 {
		t.Fatalf("victim completed %d jobs before dying at its first checkpoint", st.Completed)
	}

	// A healthy worker drains the farm, the victim's job included.
	if err := (&Worker{Name: "healthy"}).Run(addr); err != nil {
		t.Fatal(err)
	}
	st = coord.Stats()
	if st.Completed != st.Jobs {
		t.Fatalf("farm incomplete after recovery: %d of %d (stats %+v)", st.Completed, st.Jobs, st)
	}
	if st.Reassigned < 1 {
		t.Errorf("victim's hangup released no lease (stats %+v)", st)
	}
	if st.Resumed < 1 {
		t.Errorf("reassigned job restarted from cycle zero instead of the checkpoint (stats %+v)", st)
	}

	results := coord.Results()
	for _, format := range []string{runner.FormatTable, runner.FormatJSON, runner.FormatCSV} {
		farm := render(t, results, format)
		local := renderLocal(t, spec, 2, format)
		if !bytes.Equal(farm, local) {
			t.Errorf("%s output differs after worker death:\n--- farm ---\n%s--- local ---\n%s", format, farm, local)
		}
	}
}

// TestFarmLeaseExpiryReassigns covers the worker that stalls while keeping
// its connection open: no hangup fires, so the TTL janitor must reassign
// its job, a stale completion must be refused, and the report must still
// be byte-identical to a local run.
func TestFarmLeaseExpiryReassigns(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}
	coord, err := NewCoordinator(spec, 100*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	ln, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	// The staller leases a job over a raw connection and never heartbeats.
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var w Welcome
	hello := Hello{Protocol: ProtocolVersion, Snapshot: sim.SnapshotVersion, Worker: "staller"}
	if err := client.Call("Farm.Hello", hello, &w); err != nil {
		t.Fatal(err)
	}
	var lease LeaseReply
	if err := client.Call("Farm.Lease", LeaseArgs{Fingerprint: w.Fingerprint}, &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Done || lease.Wait {
		t.Fatalf("staller got no job: %+v", lease)
	}

	// A healthy worker drains the farm; it has to Wait out the staller's
	// TTL before the janitor hands it the stalled job.
	if err := (&Worker{Name: "healthy"}).Run(addr); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.Completed != st.Jobs {
		t.Fatalf("farm incomplete: %d of %d", st.Completed, st.Jobs)
	}
	if st.Reassigned < 1 {
		t.Errorf("stalled lease never expired (stats %+v)", st)
	}

	// The staller finally answers — with a wrong row. The lease is stale,
	// so the result must be refused and the report unaffected.
	var cr CompleteReply
	if err := client.Call("Farm.Complete", CompleteArgs{
		Job: lease.Job, Seq: lease.Seq,
		Result: WireResult{Name: "bogus", Row: runner.Row{Cycles: 1}},
	}, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Accepted {
		t.Error("stale completion accepted")
	}
	if st := coord.Stats(); st.StaleCompletes != 1 {
		t.Errorf("StaleCompletes = %d, want 1", st.StaleCompletes)
	}

	farm := render(t, coord.Results(), runner.FormatTable)
	local := renderLocal(t, spec, 2, runner.FormatTable)
	if !bytes.Equal(farm, local) {
		t.Errorf("table output differs after lease expiry:\n--- farm ---\n%s--- local ---\n%s", farm, local)
	}
}

// tinySnapshot builds a valid serialized machine snapshot (any machine —
// the coordinator validates framing and version, not job identity).
func tinySnapshot(t *testing.T) []byte {
	t.Helper()
	cfg := sim.PaperConfig()
	cfg.Procs = 2
	halt := isa.NewBuilder().Halt().Build()
	s := sim.New(cfg, []*isa.Program{halt, halt})
	m, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFarmCorruptCheckpointRejected covers the worker killed mid-upload:
// a corrupt or truncated checkpoint payload must be refused without
// disturbing the previously stored one, and the eventual reassignment
// must resume from that intact previous checkpoint.
func TestFarmCorruptCheckpointRejected(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}
	coord, err := NewCoordinator(spec, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	sess := &session{coord: coord, held: map[int]bool{}}
	lease, err := coord.lease(sess, coord.fingerprint)
	if err != nil {
		t.Fatal(err)
	}

	good := tinySnapshot(t)
	if held := coord.checkpoint(sess, CheckpointArgs{Job: lease.Job, Seq: lease.Seq, Cycle: 1000, Snapshot: good}); !held {
		t.Fatal("valid checkpoint refused")
	}
	if st := coord.Stats(); st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", st.Checkpoints)
	}

	// Garbage payload and truncated payload (a worker dying mid-upload):
	// both refused, lease intact, stored checkpoint untouched.
	for _, bad := range [][]byte{[]byte("not a snapshot"), good[:len(good)/2]} {
		if held := coord.checkpoint(sess, CheckpointArgs{Job: lease.Job, Seq: lease.Seq, Cycle: 2000, Snapshot: bad}); !held {
			t.Error("corrupt upload revoked the lease; it should only refuse the payload")
		}
	}
	// Stale lease: refused outright.
	if held := coord.checkpoint(sess, CheckpointArgs{Job: lease.Job, Seq: lease.Seq + 99, Cycle: 2000, Snapshot: good}); held {
		t.Error("checkpoint accepted under a stale lease")
	}
	st := coord.Stats()
	if st.CheckpointsRejected != 3 {
		t.Errorf("CheckpointsRejected = %d, want 3", st.CheckpointsRejected)
	}
	if st.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1 (corrupt uploads must not count)", st.Checkpoints)
	}

	// The owner dies; the reassigned lease must carry the intact snapshot.
	sess.close()
	sess2 := &session{coord: coord, held: map[int]bool{}}
	lease2, err := coord.lease(sess2, coord.fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Job != lease.Job {
		t.Fatalf("reassignment leased job %d, want the released job %d", lease2.Job, lease.Job)
	}
	if !bytes.Equal(lease2.Checkpoint, good) {
		t.Error("reassigned lease does not carry the last valid checkpoint")
	}
	if lease2.CheckpointCycle != 1000 {
		t.Errorf("CheckpointCycle = %d, want 1000", lease2.CheckpointCycle)
	}
	if st := coord.Stats(); st.Resumed != 1 || st.Reassigned != 1 {
		t.Errorf("Resumed/Reassigned = %d/%d, want 1/1", st.Resumed, st.Reassigned)
	}
}

// TestFarmDeadWarmupBuilderPromoted kills the worker holding a warmup
// build grant and asserts a waiting asker is promoted to builder instead
// of polling forever.
func TestFarmDeadWarmupBuilderPromoted(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"warmequal"}, Procs: 3, Seed: 7}
	coord, err := NewCoordinator(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	dead := &session{coord: coord, held: map[int]bool{}}
	if r := coord.warmup(dead, "key"); !r.Build {
		t.Fatal("first asker was not granted the build")
	}
	other := &session{coord: coord, held: map[int]bool{}}
	if r := coord.warmup(other, "key"); r.Build || r.Snapshot != nil || r.Error != "" {
		t.Fatalf("second asker should wait while the builder lives, got %+v", r)
	}
	dead.close() // builder dies before uploading
	if r := coord.warmup(other, "key"); !r.Build {
		t.Fatal("waiting asker was not promoted after the builder died")
	}
	if st := coord.Stats(); st.WarmBuilds != 2 || st.WarmKeys != 1 {
		t.Errorf("WarmBuilds/WarmKeys = %d/%d, want 2/1 (one re-grant)", st.WarmBuilds, st.WarmKeys)
	}
}
