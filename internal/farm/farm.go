package farm

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"mcmsim/internal/runner"
)

// Options configures a one-call farm run.
type Options struct {
	// Listen is the coordinator's address; "" serves on an ephemeral
	// loopback port (pure-local farms, tests).
	Listen string
	// Advertise is the address invited daemons dial back; "" uses the
	// listener's own address (fine on one host; multi-host fleets must
	// set it to a reachable name).
	Advertise string
	// LocalWorkers is how many in-process workers to attach over loopback.
	LocalWorkers int
	// Invite lists sweepd worker daemons (host:port) to attach.
	Invite []string
	// LeaseTTL and CheckpointEvery parameterize NewCoordinator.
	LeaseTTL        time.Duration
	CheckpointEvery uint64
	// OnProgress observes accepted completions (completion order).
	OnProgress func(runner.Progress)
	// OnWorkerError observes local worker failures; nil logs nowhere.
	OnWorkerError func(name string, err error)
}

// Run executes the spec on a farm assembled from the options and returns
// the results in enumeration order plus the coordinator's final counters.
// With only local workers this is semantically `runner.Run` with extra
// steps — and byte-identical output, which `make differential` gates.
func Run(spec JobSpec, opts Options) ([]runner.Result, Stats, error) {
	coord, err := NewCoordinator(spec, opts.LeaseTTL, opts.CheckpointEvery)
	if err != nil {
		return nil, Stats{}, err
	}
	defer coord.Stop()
	coord.OnProgress = opts.OnProgress

	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := coord.Listen(addr)
	if err != nil {
		return nil, Stats{}, err
	}
	defer ln.Close()

	advertise := opts.Advertise
	if advertise == "" {
		advertise = ln.Addr().String()
	}

	if opts.LocalWorkers <= 0 && len(opts.Invite) == 0 && opts.Listen == "" {
		// A loopback-only farm with no workers can never complete. An
		// explicit Listen address means external workers will attach.
		return nil, Stats{}, fmt.Errorf("farm: no workers: need LocalWorkers, Invite, or an explicit Listen address for external workers")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, opts.LocalWorkers)
	for i := 0; i < opts.LocalWorkers; i++ {
		name := fmt.Sprintf("local%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := (&Worker{Name: name}).Run(advertise); err != nil {
				if opts.OnWorkerError != nil {
					opts.OnWorkerError(name, err)
				}
				errCh <- err
			}
		}()
	}
	for _, daemon := range opts.Invite {
		n, err := Invite(daemon, advertise)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("farm: invite %s: %w", daemon, err)
		}
		_ = n
	}

	// With external workers possible (an invite, or an explicit listen
	// address), the farm waits for completion however long it takes. A
	// pure-loopback farm instead fails fast once its last worker exits
	// with the farm incomplete — nothing else could ever finish it.
	external := len(opts.Invite) > 0 || opts.Listen != ""
	if opts.LocalWorkers > 0 && !external {
		localsDone := make(chan struct{})
		go func() {
			wg.Wait()
			close(localsDone)
		}()
		select {
		case <-coord.Done():
		case <-localsDone:
			select {
			case <-coord.Done():
			default:
				select {
				case err := <-errCh:
					return nil, coord.Stats(), fmt.Errorf("farm: all workers exited before completion: %w", err)
				default:
					return nil, coord.Stats(), fmt.Errorf("farm: all workers exited before completion")
				}
			}
		}
	} else {
		<-coord.Done()
	}
	results := coord.Results()
	// Let attached workers observe completion (their next Lease returns
	// Done) and hang up before the listener and process go away, so a
	// clean farm leaves no worker with a reset connection.
	coord.WaitIdle(2 * time.Second)
	return results, coord.Stats(), nil
}

// AttachArgs invites a worker daemon to a coordinator.
type AttachArgs struct {
	Coordinator string // address the daemon's workers should dial
}

// AttachReply reports how many worker loops the daemon started.
type AttachReply struct {
	Workers int
}

// Daemon is the invited-worker service behind `sweepd -worker -listen`:
// it waits for Attach calls and runs a batch of worker loops against each
// coordinator that invites it.
type Daemon struct {
	// Name prefixes the spawned workers' names.
	Name string
	// Workers is how many concurrent worker loops to run per Attach.
	Workers int
	// Logf, if non-nil, receives worker lifecycle messages.
	Logf func(format string, args ...any)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Attach starts the daemon's workers against the given coordinator. It
// returns as soon as they are spawned; they drain the farm and exit on
// their own.
func (d *Daemon) Attach(a AttachArgs, reply *AttachReply) error {
	n := d.Workers
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", d.Name, i)
		go func() {
			d.logf("worker %s: attaching to %s", name, a.Coordinator)
			if err := (&Worker{Name: name}).Run(a.Coordinator); err != nil {
				d.logf("worker %s: %v", name, err)
				return
			}
			d.logf("worker %s: farm drained", name)
		}()
	}
	reply.Workers = n
	return nil
}

// ListenAndServe serves the daemon's control service on addr until the
// listener fails (never, in practice — kill the process to stop it).
func (d *Daemon) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	d.logf("worker daemon listening on %s (%d workers per farm)", ln.Addr(), d.Workers)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		srv := rpc.NewServer()
		_ = srv.RegisterName("Daemon", d)
		go srv.ServeConn(conn)
	}
}

// Invite asks the worker daemon at daemonAddr to attach its workers to
// the coordinator at coordAddr, returning how many it started.
func Invite(daemonAddr, coordAddr string) (int, error) {
	client, err := rpc.Dial("tcp", daemonAddr)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	var reply AttachReply
	if err := client.Call("Daemon.Attach", AttachArgs{Coordinator: coordAddr}, &reply); err != nil {
		return 0, err
	}
	return reply.Workers, nil
}
