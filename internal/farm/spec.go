package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"mcmsim/internal/coherence"
	"mcmsim/internal/conformance"
	"mcmsim/internal/experiments"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// JobSpec is the serializable description of a workload: enough for any
// fleet member to reproduce the coordinator's job list, closure-free. A
// worker applies the spec's process globals, re-enumerates the jobs, and
// cross-checks the Fingerprint before taking any lease — so the indices
// the coordinator hands out are guaranteed to name the same simulations
// everywhere.
type JobSpec struct {
	// Kind selects the enumerator: "sweep" (the evaluation suite) or
	// "conform" (a conformance fuzz batch). RegisterKind adds more.
	Kind string

	// Process globals, applied identically on every fleet member before
	// enumeration. These steer execution strategy (never results — the
	// differential gates hold them observation-transparent), but they
	// fingerprint anyway: a homogeneous fleet is cheaper than reasoning
	// about which knob could matter.
	Protocol string // base coherence protocol: "", "msi", "mesi"
	Engine   string // parallel shard engine: "", "auto", "conservative", "optimistic"
	Par      int    // shard workers per simulation
	Dense    bool   // disable idle-cycle fast-forward

	// "sweep" fields (mirror cmd/sweep flags).
	Exps      []string // sweep names in suite order; nil = the whole suite
	Procs     int
	Seed      int64
	ScaleCPUs []int
	ScaleTopo string

	// "conform" fields (mirror cmd/conform flags).
	CSeed     int64
	N         int
	CProcs    int
	Ops       int
	Quick     bool
	PadCPUs   int
	Topo      string
	Protocols string // conformance protocol axis: "", "both", "msi", "mesi"
}

// Enumerator reproduces a job list from a spec.
type Enumerator func(JobSpec) ([]runner.Job, error)

var kinds = map[string]Enumerator{}

// RegisterKind installs an enumerator for a spec kind. The "sweep" and
// "conform" kinds are built in; experiments outside this module can add
// their own, provided every fleet member's binary registers it.
func RegisterKind(name string, e Enumerator) {
	if _, dup := kinds[name]; dup {
		panic(fmt.Sprintf("farm: duplicate spec kind %q", name))
	}
	kinds[name] = e
}

func init() {
	RegisterKind("sweep", enumerateSweep)
	RegisterKind("conform", enumerateConform)
}

// globalsMu serializes ApplyGlobals: every member of an in-process fleet
// (coordinator plus loopback workers, or a daemon's worker batch) applies
// the same spec, so after the first application the rest are compare-only
// no-ops — no global is ever rewritten while a sibling's simulation reads
// it. Heterogeneous specs in one process are not supported.
var globalsMu sync.Mutex

// ApplyGlobals installs the spec's process globals, exactly as the
// corresponding cmd/sweep and cmd/conform flags would. Idempotent and
// write-on-change, so fleet members sharing a process can each call it.
func ApplyGlobals(spec JobSpec) error {
	proto := coherence.ProtoInvalidate
	switch spec.Protocol {
	case "", "msi":
	case "mesi":
		proto = coherence.ProtoMESI
	default:
		return fmt.Errorf("farm: unknown protocol %q in spec", spec.Protocol)
	}
	engine := spec.Engine
	switch engine {
	case "":
		engine = "auto"
	case "auto", "conservative", "optimistic":
	default:
		return fmt.Errorf("farm: unknown engine %q in spec", spec.Engine)
	}
	par := spec.Par
	if par <= 0 {
		par = 1
	}
	globalsMu.Lock()
	defer globalsMu.Unlock()
	if sim.BaseProtocol != proto {
		sim.BaseProtocol = proto
	}
	if sim.ParEngine != engine {
		sim.ParEngine = engine
	}
	if sim.ForceDense != spec.Dense {
		sim.ForceDense = spec.Dense
	}
	if sim.ParWorkers != par {
		sim.ParWorkers = par
	}
	return nil
}

// Enumerate reproduces the spec's job list. Deterministic: the same spec
// yields the same jobs in the same order on every fleet member (the
// Fingerprint handshake enforces it).
func Enumerate(spec JobSpec) ([]runner.Job, error) {
	e, ok := kinds[spec.Kind]
	if !ok {
		return nil, fmt.Errorf("farm: unknown spec kind %q", spec.Kind)
	}
	return e(spec)
}

// sweepsFor resolves a "sweep" spec's experiment selection.
func sweepsFor(spec JobSpec) ([]experiments.Sweep, error) {
	sweeps := experiments.Suite()
	if len(spec.Exps) > 0 {
		sweeps = sweeps[:0:0]
		for _, name := range spec.Exps {
			s, ok := experiments.SweepByName(name)
			if !ok {
				return nil, fmt.Errorf("farm: unknown experiment %q in spec", name)
			}
			sweeps = append(sweeps, s)
		}
	}
	return sweeps, nil
}

func sweepParams(spec JobSpec) experiments.Params {
	return experiments.Params{
		Procs:     spec.Procs,
		Seed:      spec.Seed,
		ScaleCPUs: spec.ScaleCPUs,
		ScaleTopo: spec.ScaleTopo,
	}
}

func enumerateSweep(spec JobSpec) ([]runner.Job, error) {
	sweeps, err := sweepsFor(spec)
	if err != nil {
		return nil, err
	}
	params := sweepParams(spec)
	var jobs []runner.Job
	for _, s := range sweeps {
		jobs = append(jobs, s.Jobs(params)...)
	}
	return jobs, nil
}

// SweepTables partitions a "sweep" spec's result rows (in enumeration
// order) back into per-sweep tables, exactly as cmd/sweep's local path
// slices its concatenated job list — so a farm report renders to the
// same bytes.
func SweepTables(spec JobSpec, rows []runner.Row) ([]runner.Table, error) {
	if spec.Kind != "sweep" {
		return nil, fmt.Errorf("farm: SweepTables on a %q spec", spec.Kind)
	}
	sweeps, err := sweepsFor(spec)
	if err != nil {
		return nil, err
	}
	params := sweepParams(spec)
	tables := make([]runner.Table, len(sweeps))
	off := 0
	for i, s := range sweeps {
		n := len(s.Jobs(params))
		if off+n > len(rows) {
			return nil, fmt.Errorf("farm: %d rows cannot fill the spec's enumeration", len(rows))
		}
		tables[i] = runner.Table{Name: s.Name, Rows: rows[off : off+n]}
		off += n
	}
	if off != len(rows) {
		return nil, fmt.Errorf("farm: %d rows left over after partitioning", len(rows)-off)
	}
	return tables, nil
}

// ConformOptions translates a "conform" spec into the checker's options.
func ConformOptions(spec JobSpec) (conformance.Params, conformance.CheckOptions, error) {
	var protocols []coherence.Protocol
	switch spec.Protocols {
	case "", "both":
	case "msi":
		protocols = []coherence.Protocol{coherence.ProtoInvalidate}
	case "mesi":
		protocols = []coherence.Protocol{coherence.ProtoMESI}
	default:
		return conformance.Params{}, conformance.CheckOptions{},
			fmt.Errorf("farm: unknown conformance protocol axis %q in spec", spec.Protocols)
	}
	params := conformance.Params{Procs: spec.CProcs, ProcOps: spec.Ops}
	opts := conformance.CheckOptions{Quick: spec.Quick, CPUs: spec.PadCPUs, Topo: spec.Topo, Protocols: protocols}
	return params, opts, nil
}

func enumerateConform(spec JobSpec) ([]runner.Job, error) {
	params, opts, err := ConformOptions(spec)
	if err != nil {
		return nil, err
	}
	return conformance.BatchJobs(spec.CSeed, spec.N, params, opts), nil
}

// Fingerprint hashes a spec and its enumeration. Two fleet members agree
// on a fingerprint only if they parsed the same spec into the same job
// list — the property that makes leasing bare indices sound. Job names
// stand in for the jobs themselves (closures have no canonical form); the
// enumerators derive every closure from the spec, so divergent closures
// with identical names would mean divergent binaries, which the build-hash
// handshake already rejects for stamped fleets.
func Fingerprint(spec JobSpec, jobs []runner.Job) string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v\x00%d\x00", spec, len(jobs))
	for _, j := range jobs {
		fmt.Fprintf(h, "%s\x00", j.Name)
	}
	return hex.EncodeToString(h.Sum(nil))
}
