package farm

import (
	"testing"

	"mcmsim/internal/runner"
)

// benchSpec is a small fixed workload: the E1 grid, 16 jobs of a few
// thousand cycles each — enough work that scheduling overhead is visible
// as a ratio, small enough for the benchdiff gate.
var benchSpec = JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}

// BenchmarkFarmLocalVsInProcess prices the farm's transport: the same job
// list through the in-process pool at -j 2 versus a coordinator with two
// loopback workers (handshake, leases, heartbeats, gob-encoded results).
// The two sub-benchmarks produce byte-identical reports; the delta is
// pure coordination overhead.
func BenchmarkFarmLocalVsInProcess(b *testing.B) {
	b.Run("inproc-j2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ApplyGlobals(benchSpec); err != nil {
				b.Fatal(err)
			}
			jobs, err := Enumerate(benchSpec)
			if err != nil {
				b.Fatal(err)
			}
			results := runner.Run(jobs, runner.Options{Workers: 2, WarmupCache: runner.NewWarmupCache()})
			if _, err := runner.Rows(results); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("farm-2workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, _, err := Run(benchSpec, Options{LocalWorkers: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runner.Rows(results); err != nil {
				b.Fatal(err)
			}
		}
	})
}
